
func.func @vec_norm(%vs: tensor<20000x3xf32>) -> tensor<20000xf32> {
  %c0 = arith.constant 0 : index
  %c1i = arith.constant 1 : index
  %c2 = arith.constant 2 : index
  %n = arith.constant 20000 : index
  %one = arith.constant 1.0 : f32
  %init = tensor.empty() : tensor<20000xf32>
  %out = scf.for %i = %c0 to %n step %c1i iter_args(%acc = %init) -> (tensor<20000xf32>) {
    %x = tensor.extract %vs[%i, %c0] : tensor<20000x3xf32>
    %y = tensor.extract %vs[%i, %c1i] : tensor<20000x3xf32>
    %z = tensor.extract %vs[%i, %c2] : tensor<20000x3xf32>
    %xx = arith.mulf %x, %x fastmath<fast> : f32
    %yy = arith.mulf %y, %y fastmath<fast> : f32
    %zz = arith.mulf %z, %z fastmath<fast> : f32
    %s1 = arith.addf %xx, %yy fastmath<fast> : f32
    %s2 = arith.addf %s1, %zz fastmath<fast> : f32
    %norm = math.sqrt %s2 fastmath<fast> : f32
    %inv = arith.divf %one, %norm fastmath<fast> : f32
    %acc2 = tensor.insert %inv into %acc[%i] : tensor<20000xf32>
    scf.yield %acc2 : tensor<20000xf32>
  }
  func.return %out : tensor<20000xf32>
}

func.func @fast_inv_sqrt(%x: f32) -> f32 {
  %bits = arith.bitcast %x : f32 to i32
  %c1 = arith.constant 1 : i32
  %half_bits = arith.shrsi %bits, %c1 : i32
  %magic = arith.constant 1597463007 : i32
  %guess_bits = arith.subi %magic, %half_bits : i32
  %y0 = arith.bitcast %guess_bits : i32 to f32
  %half = arith.constant 0.5 : f32
  %three_halves = arith.constant 1.5 : f32
  %hx = arith.mulf %half, %x fastmath<fast> : f32
  %yy = arith.mulf %y0, %y0 fastmath<fast> : f32
  %t = arith.mulf %hx, %yy fastmath<fast> : f32
  %s = arith.subf %three_halves, %t fastmath<fast> : f32
  %y1 = arith.mulf %y0, %s fastmath<fast> : f32
  func.return %y1 : f32
}
