
func.func @poly_eval(%coeffs: tensor<20000x4xf64>, %x: f64) -> tensor<20000xf64> {
  %i0 = arith.constant 0 : index
  %i1 = arith.constant 1 : index
  %i2 = arith.constant 2 : index
  %i3 = arith.constant 3 : index
  %n = arith.constant 20000 : index
  %two = arith.constant 2.0 : f64
  %three = arith.constant 3.0 : f64
  %init = tensor.empty() : tensor<20000xf64>
  %out = scf.for %i = %i0 to %n step %i1 iter_args(%acc = %init) -> (tensor<20000xf64>) {
    %c0 = tensor.extract %coeffs[%i, %i0] : tensor<20000x4xf64>
    %c1 = tensor.extract %coeffs[%i, %i1] : tensor<20000x4xf64>
    %c2 = tensor.extract %coeffs[%i, %i2] : tensor<20000x4xf64>
    %c3 = tensor.extract %coeffs[%i, %i3] : tensor<20000x4xf64>
    %x2 = math.powf %x, %two : f64
    %x3 = math.powf %x, %three : f64
    %t1 = arith.mulf %c1, %x : f64
    %t2 = arith.mulf %c2, %x2 : f64
    %t3 = arith.mulf %c3, %x3 : f64
    %s1 = arith.addf %c0, %t1 : f64
    %s2 = arith.addf %s1, %t2 : f64
    %v = arith.addf %s2, %t3 : f64
    %acc2 = tensor.insert %v into %acc[%i] : tensor<20000xf64>
    scf.yield %acc2 : tensor<20000xf64>
  }
  func.return %out : tensor<20000xf64>
}
