
func.func @img_to_gray(%img: tensor<144x256x3xi64>) -> tensor<144x256xi64> {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %c2 = arith.constant 2 : index
  %h = arith.constant 144 : index
  %w = arith.constant 256 : index
  %w77 = arith.constant 77 : i64
  %w150 = arith.constant 150 : i64
  %w29 = arith.constant 29 : i64
  %c256 = arith.constant 256 : i64
  %init = tensor.empty() : tensor<144x256xi64>
  %out = scf.for %i = %c0 to %h step %c1 iter_args(%acc = %init) -> (tensor<144x256xi64>) {
    %row = scf.for %j = %c0 to %w step %c1 iter_args(%acc2 = %acc) -> (tensor<144x256xi64>) {
      %r = tensor.extract %img[%i, %j, %c0] : tensor<144x256x3xi64>
      %g = tensor.extract %img[%i, %j, %c1] : tensor<144x256x3xi64>
      %b = tensor.extract %img[%i, %j, %c2] : tensor<144x256x3xi64>
      %tr = arith.muli %r, %w77 : i64
      %tg = arith.muli %g, %w150 : i64
      %tb = arith.muli %b, %w29 : i64
      %s1 = arith.addi %tr, %tg : i64
      %s2 = arith.addi %s1, %tb : i64
      %gray = arith.divsi %s2, %c256 : i64
      %acc3 = tensor.insert %gray into %acc2[%i, %j] : tensor<144x256xi64>
      scf.yield %acc3 : tensor<144x256xi64>
    }
    scf.yield %row : tensor<144x256xi64>
  }
  func.return %out : tensor<144x256xi64>
}
