func.func @mm_chain(%m0: tensor<100x10xf64>, %m1: tensor<10x150xf64>, %m2: tensor<150x8xf64>) -> tensor<100x8xf64> {
  %e1 = tensor.empty() : tensor<100x150xf64>
  %acc1 = linalg.matmul ins(%m0, %m1 : tensor<100x10xf64>, tensor<10x150xf64>) outs(%e1 : tensor<100x150xf64>) -> tensor<100x150xf64>
  %e2 = tensor.empty() : tensor<100x8xf64>
  %acc2 = linalg.matmul ins(%acc1, %m2 : tensor<100x150xf64>, tensor<150x8xf64>) outs(%e2 : tensor<100x8xf64>) -> tensor<100x8xf64>
  func.return %acc2 : tensor<100x8xf64>
}
