test/support/gen_mlir.ml: Array Int64 List Mlir QCheck
