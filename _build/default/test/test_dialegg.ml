(* Tests for the DialEgg core: type/attribute translation, the preparation
   phase (signatures), eggify/de-eggify round trips, opaque handling,
   custom hooks, and end-to-end reproductions of every §7 case study. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let default_cfg rules = { Dialegg.Pipeline.default_config with rules }

let optimize ?(config = Dialegg.Pipeline.default_config) src =
  let m = Mlir.Parser.parse_module src in
  Mlir.Verifier.verify_exn m;
  let t = Dialegg.Pipeline.optimize_module ~config m in
  (m, t)

let count_op name m =
  List.length (Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = name) m)

(* ------------------------------------------------------------------ *)
(* Type / attribute translation round trips                            *)
(* ------------------------------------------------------------------ *)

(* evaluate a type/attr expr in a prelude-initialized engine, extract it
   back, and compare *)
let engine_with_prelude () =
  let t = Egglog.Interp.create () in
  Egglog.Interp.run_commands t (Lazy.force Dialegg.Prelude.commands);
  t

let roundtrip_type (ty : Mlir.Typ.t) : Mlir.Typ.t =
  let t = engine_with_prelude () in
  let e = Dialegg.Translate.expr_of_type ty in
  let v = Dialegg.Pipeline.default_config |> fun _ -> Egglog.Interp.eval t Egglog.Matcher.Env.empty e in
  let term, _ = Egglog.Extract.extract (Egglog.Interp.egraph t) v in
  Dialegg.Translate.type_of_term term

let test_type_roundtrip () =
  List.iter
    (fun ty -> checkb (Mlir.Typ.to_string ty) true (Mlir.Typ.equal ty (roundtrip_type ty)))
    [
      Mlir.Typ.i1;
      Mlir.Typ.i32;
      Mlir.Typ.Integer 7;
      Mlir.Typ.f32;
      Mlir.Typ.index;
      Mlir.Typ.None_type;
      Mlir.Typ.Ranked_tensor ([ 2; 3 ], Mlir.Typ.i64);
      Mlir.Typ.Ranked_tensor ([], Mlir.Typ.f32);
      Mlir.Typ.Unranked_tensor Mlir.Typ.f64;
      Mlir.Typ.Memref ([ 4; 4 ], Mlir.Typ.f32);
      Mlir.Typ.Complex Mlir.Typ.f64;
      Mlir.Typ.Tuple [ Mlir.Typ.i1; Mlir.Typ.f32 ];
      Mlir.Typ.Function ([ Mlir.Typ.f32 ], [ Mlir.Typ.f32 ]);
    ]

let test_type_roundtrip_prop () =
  (* random types via the dialegg-independent generator in gen_mlir is in
     the mlir test binary; here we use a local quick generator *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"type translation roundtrip" ~count:100
       (QCheck.make
          QCheck.Gen.(
            let scalar =
              oneofl [ Mlir.Typ.i1; Mlir.Typ.i8; Mlir.Typ.i64; Mlir.Typ.f32; Mlir.Typ.f64 ]
            in
            oneof
              [
                scalar;
                (let* dims = list_size (int_range 0 3) (int_range 1 10) in
                 let* e = scalar in
                 return (Mlir.Typ.Ranked_tensor (dims, e)));
                map (fun e -> Mlir.Typ.Complex e) scalar;
                (let* ts = list_size (int_range 1 3) scalar in
                 return (Mlir.Typ.Tuple ts));
              ]))
       (fun ty -> Mlir.Typ.equal ty (roundtrip_type ty)))

let roundtrip_attr (a : Mlir.Attr.t) : Mlir.Attr.t =
  let t = engine_with_prelude () in
  let e = Dialegg.Translate.expr_of_attr a in
  let v = Egglog.Interp.eval t Egglog.Matcher.Env.empty e in
  let term, _ = Egglog.Extract.extract (Egglog.Interp.egraph t) v in
  Dialegg.Translate.attr_of_term term

let test_attr_roundtrip () =
  List.iter
    (fun a -> checkb (Mlir.Attr.to_string a) true (Mlir.Attr.equal a (roundtrip_attr a)))
    [
      Mlir.Attr.Int (42L, Mlir.Typ.i64);
      Mlir.Attr.Int (-3L, Mlir.Typ.i8);
      Mlir.Attr.Float (2.5, Mlir.Typ.f32);
      Mlir.Attr.String "hello world";
      Mlir.Attr.Bool true;
      Mlir.Attr.Symbol_ref "callee";
      Mlir.Attr.Unit;
      Mlir.Attr.Type (Mlir.Typ.Ranked_tensor ([ 2 ], Mlir.Typ.f64));
      Mlir.Attr.Array [ Mlir.Attr.Int (1L, Mlir.Typ.i64); Mlir.Attr.String "x" ];
      Mlir.Attr.Fastmath Mlir.Attr.Fm_none;
      Mlir.Attr.Fastmath Mlir.Attr.Fm_fast;
      Mlir.Attr.Fastmath (Mlir.Attr.Fm_flags [ "nnan" ]);
    ]

(* ------------------------------------------------------------------ *)
(* Signatures (preparation phase)                                      *)
(* ------------------------------------------------------------------ *)

let test_sigs_scan () =
  let t = engine_with_prelude () in
  let sigs = Dialegg.Sigs.scan (Egglog.Interp.egraph t) in
  (match Dialegg.Sigs.find_egg sigs "arith_addi" with
  | Some s ->
    checks "mlir name" "arith.addi" s.Dialegg.Sigs.mlir_name;
    checki "operands" 2 s.Dialegg.Sigs.n_operands;
    checki "attrs" 0 s.Dialegg.Sigs.n_attrs;
    checkb "typed" true s.Dialegg.Sigs.has_type
  | None -> Alcotest.fail "arith_addi not registered");
  (match Dialegg.Sigs.find_egg sigs "func_call_3" with
  | Some s ->
    checks "variadic name" "func.call" s.Dialegg.Sigs.mlir_name;
    checki "variadic operands" 3 s.Dialegg.Sigs.n_operands;
    checki "variadic attrs" 1 s.Dialegg.Sigs.n_attrs
  | None -> Alcotest.fail "func_call_3 not registered");
  (match Dialegg.Sigs.find_egg sigs "scf_if" with
  | Some s ->
    checki "regions" 2 s.Dialegg.Sigs.n_regions;
    checki "if operands" 1 s.Dialegg.Sigs.n_operands
  | None -> Alcotest.fail "scf_if not registered");
  (* lookup by MLIR name + arities *)
  (match Dialegg.Sigs.find_mlir sigs ~name:"func.return" ~n_operands:1 ~n_results:0 with
  | Some s -> checks "return variant" "func_return_1" s.Dialegg.Sigs.egg_name
  | None -> Alcotest.fail "func.return/1 lookup failed");
  checkb "no match for wrong arity" true
    (Dialegg.Sigs.find_mlir sigs ~name:"arith.addi" ~n_operands:3 ~n_results:1 = None)

let test_sigs_rejects_bad_order () =
  let t = Egglog.Interp.create () in
  Egglog.Interp.run_string t
    "(sort Type)(sort Op)(sort AttrPair)(function bad_op (AttrPair Op Type) Op)";
  match Dialegg.Sigs.scan (Egglog.Interp.egraph t) with
  | exception Dialegg.Sigs.Error _ -> ()
  | _ -> Alcotest.fail "operand-after-attr declaration must be rejected"

let test_variadic_suffix_parse () =
  checkb "strip" true (Dialegg.Sigs.split_variadic "func_call_3" = ("func_call", Some 3));
  checkb "no suffix" true (Dialegg.Sigs.split_variadic "arith_addi" = ("arith_addi", None));
  checks "name map" "tensor.from_elements" (Dialegg.Sigs.mlir_name_of_egg "tensor_from_elements_2")

(* ------------------------------------------------------------------ *)
(* Round trip without rules (identity)                                 *)
(* ------------------------------------------------------------------ *)

let identity_roundtrip src =
  let m = Mlir.Parser.parse_module src in
  Mlir.Verifier.verify_exn m;
  let before = Mlir.Printer.module_to_string m in
  let _ = Dialegg.Pipeline.optimize_module m in
  Mlir.Verifier.verify_exn m;
  (before, Mlir.Printer.module_to_string m, m)

let test_identity_scalar () =
  let before, after, _ =
    identity_roundtrip
      {|
func.func @f(%x: i64, %y: i64) -> i64 {
  %a = arith.addi %x, %y : i64
  %b = arith.muli %a, %x : i64
  func.return %b : i64
}|}
  in
  checks "unchanged" before after

let test_identity_regions () =
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%n: index, %t: tensor<8xf64>) -> f64 {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %z = arith.constant 0.0 : f64
  %r = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %z) -> (f64) {
    %v = tensor.extract %t[%i] : tensor<8xf64>
    %acc2 = arith.addf %acc, %v : f64
    scf.yield %acc2 : f64
  }
  func.return %r : f64
}|}
  in
  checki "loop survives" 1 (count_op "scf.for" m);
  (* semantics preserved *)
  let t = Mlir.Interp.Rt { shape = [| 8 |]; data = Mlir.Interp.Df (Array.init 8 float_of_int) } in
  let r = Mlir.Interp.run m "f" [ Mlir.Interp.Ri (8L, 64); t ] in
  match r.Mlir.Interp.values with
  | [ Mlir.Interp.Rf (28.0, _) ] -> ()
  | [ v ] -> Alcotest.fail (Fmt.str "wrong sum: %a" Mlir.Interp.pp_rv v)
  | _ -> Alcotest.fail "arity"

let test_identity_if () =
  let _, _, m =
    identity_roundtrip
      {|
func.func @sqrt_abs(%x: f32) -> f32 {
  %zero = arith.constant 0.0 : f32
  %cond = arith.cmpf oge, %x, %zero : f32
  %sqrt = scf.if %cond -> (f32) {
    %s = math.sqrt %x fastmath<fast> : f32
    scf.yield %s : f32
  } else {
    %neg = arith.negf %x : f32
    %s = math.sqrt %neg : f32
    scf.yield %s : f32
  }
  func.return %sqrt : f32
}|}
  in
  checki "if survives" 1 (count_op "scf.if" m);
  let r = Mlir.Interp.run m "sqrt_abs" [ Mlir.Interp.Rf (-16.0, Mlir.Typ.F32) ] in
  match r.Mlir.Interp.values with
  | [ Mlir.Interp.Rf (4.0, _) ] -> ()
  | _ -> Alcotest.fail "sqrt_abs(-16) should be 4"

let test_identity_dedupes () =
  (* two syntactically identical pure ops land in one e-class and come back
     as a single SSA definition (hash-consing as CSE) *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: i64) -> i64 {
  %a = arith.muli %x, %x : i64
  %b = arith.muli %x, %x : i64
  %c = arith.addi %a, %b : i64
  func.return %c : i64
}|}
  in
  checki "duplicate multiply merged" 1 (count_op "arith.muli" m)

let test_identity_drops_dead_code () =
  (* extraction from the return anchor performs DCE *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: i64) -> i64 {
  %dead = arith.addi %x, %x : i64
  func.return %x : i64
}|}
  in
  checki "dead op dropped" 0 (count_op "arith.addi" m)

(* ------------------------------------------------------------------ *)
(* Opaque handling                                                     *)
(* ------------------------------------------------------------------ *)

let test_opaque_survives () =
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: i64) -> i64 {
  %a = arith.addi %x, %x : i64
  %r = "mystery.op"(%a) : (i64) -> i64
  %b = arith.muli %r, %x : i64
  func.return %b : i64
}|}
  in
  checki "opaque op survives" 1 (count_op "mystery.op" m);
  Mlir.Verifier.verify_exn m

let test_opaque_operands_rewritten () =
  (* the opaque op's operand is itself subject to optimization *)
  let config = default_cfg Dialegg.Rules.const_fold in
  let m, _ =
    optimize ~config
      {|
func.func @f() -> i64 {
  %c1 = arith.constant 1 : i64
  %c2 = arith.constant 2 : i64
  %s = arith.addi %c1, %c2 : i64
  %r = "mystery.op"(%s) : (i64) -> i64
  func.return %r : i64
}|}
  in
  checki "opaque survives" 1 (count_op "mystery.op" m);
  checki "operand folded" 0 (count_op "arith.addi" m);
  let consts = Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "arith.constant") m in
  checkb "folded constant feeds the opaque op" true
    (List.exists
       (fun c -> Mlir.Ir.attr c "value" = Some (Mlir.Attr.Int (3L, Mlir.Typ.i64)))
       consts)

let test_opaque_zero_result_anchor () =
  (* zero-result unregistered ops are anchors: kept, in order *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: i64) -> i64 {
  "effects.store"(%x) : (i64) -> ()
  %a = arith.addi %x, %x : i64
  "effects.store"(%a) : (i64) -> ()
  func.return %a : i64
}|}
  in
  checki "both stores kept" 2 (count_op "effects.store" m);
  Mlir.Verifier.verify_exn m

let test_opaque_with_region () =
  (* an unregistered op with a region keeps its region contents *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: i64) -> i64 {
  %r = "weird.loop"(%x) ({
    ^bb(%a: i64):
    %y = arith.addi %a, %a : i64
  }) : (i64) -> i64
  func.return %r : i64
}|}
  in
  checki "region op survives" 1 (count_op "weird.loop" m);
  checki "region body intact" 1 (count_op "arith.addi" m)

let test_multi_result_opaque () =
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: i64) -> i64 {
  %a, %b = "multi.results"(%x) : (i64) -> (i64, i64)
  %s = arith.addi %a, %b : i64
  func.return %s : i64
}|}
  in
  checki "multi-result op survives" 1 (count_op "multi.results" m);
  Mlir.Verifier.verify_exn m

(* ------------------------------------------------------------------ *)
(* Paper §7 case studies                                               *)
(* ------------------------------------------------------------------ *)

let test_case_const_fold () =
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.const_fold)
      {|
func.func @fold() -> i32 {
  %c2 = arith.constant 2 : i32
  %c3 = arith.constant 3 : i32
  %sum = arith.addi %c2, %c3 : i32
  func.return %sum : i32
}|}
  in
  checki "no addi left" 0 (count_op "arith.addi" m);
  let consts = Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "arith.constant") m in
  checki "single constant" 1 (List.length consts);
  checkb "value 5" true
    (Mlir.Ir.attr (List.hd consts) "value" = Some (Mlir.Attr.Int (5L, Mlir.Typ.i32)))

let test_case_div_pow2 () =
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.div_pow2)
      {|
func.func @divs(%x: i64) -> i64 {
  %c256 = arith.constant 256 : i64
  %r = arith.divsi %x, %c256 : i64
  func.return %r : i64
}|}
  in
  checki "no division" 0 (count_op "arith.divsi" m);
  checki "one shift" 1 (count_op "arith.shrsi" m);
  let consts = Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "arith.constant") m in
  checkb "shift amount 8" true
    (List.exists
       (fun c -> Mlir.Ir.attr c "value" = Some (Mlir.Attr.Int (8L, Mlir.Typ.i64)))
       consts);
  (* semantics *)
  let r = Mlir.Interp.run m "divs" [ Mlir.Interp.Ri (51200L, 64) ] in
  checkb "divides" true (r.Mlir.Interp.values = [ Mlir.Interp.Ri (200L, 64) ])

let test_case_div_pow2_negative () =
  (* divisor 100: not a power of two, must stay a division *)
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.div_pow2)
      {|
func.func @divs(%x: i64) -> i64 {
  %c100 = arith.constant 100 : i64
  %r = arith.divsi %x, %c100 : i64
  func.return %r : i64
}|}
  in
  checki "division stays" 1 (count_op "arith.divsi" m);
  checki "no shift" 0 (count_op "arith.shrsi" m)

let test_case_fast_inv_sqrt () =
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.fast_inv_sqrt)
      {|
func.func @inv_dist(%x: f32) -> f32 {
  %c1 = arith.constant 1.0 : f32
  %dist = math.sqrt %x fastmath<fast> : f32
  %inv = arith.divf %c1, %dist fastmath<fast> : f32
  func.return %inv : f32
}|}
  in
  checki "sqrt gone" 0 (count_op "math.sqrt" m);
  checki "divf gone" 0 (count_op "arith.divf" m);
  let calls = Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "func.call") m in
  checki "one call" 1 (List.length calls);
  checkb "to fast_inv_sqrt" true
    (Mlir.Ir.attr (List.hd calls) "callee" = Some (Mlir.Attr.Symbol_ref "fast_inv_sqrt"))

let test_case_fast_inv_sqrt_requires_fastmath () =
  (* without fastmath<fast> the rule must NOT fire (attribute matching) *)
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.fast_inv_sqrt)
      {|
func.func @inv_dist(%x: f32) -> f32 {
  %c1 = arith.constant 1.0 : f32
  %dist = math.sqrt %x : f32
  %inv = arith.divf %c1, %dist : f32
  func.return %inv : f32
}|}
  in
  checki "sqrt kept" 1 (count_op "math.sqrt" m);
  checki "no call introduced" 0 (count_op "func.call" m)

let mm2_src =
  {|
func.func @mm2(%A: tensor<100x10xf64>, %B: tensor<10x150xf64>, %C: tensor<150x8xf64>) -> tensor<100x8xf64> {
  %e1 = tensor.empty() : tensor<100x150xf64>
  %AB = linalg.matmul ins(%A, %B : tensor<100x10xf64>, tensor<10x150xf64>) outs(%e1 : tensor<100x150xf64>) -> tensor<100x150xf64>
  %e2 = tensor.empty() : tensor<100x8xf64>
  %ABC = linalg.matmul ins(%AB, %C : tensor<100x150xf64>, tensor<150x8xf64>) outs(%e2 : tensor<100x8xf64>) -> tensor<100x8xf64>
  func.return %ABC : tensor<100x8xf64>
}|}

let test_case_matmul_assoc () =
  (* §7.4: 270,000 multiplications become 20,000 *)
  let m, t = optimize ~config:(default_cfg Dialegg.Rules.matmul_assoc) mm2_src in
  let mults =
    List.fold_left
      (fun acc o ->
        match
          ( Mlir.Typ.shape o.Mlir.Ir.operands.(0).Mlir.Ir.v_type,
            Mlir.Typ.shape o.Mlir.Ir.operands.(1).Mlir.Ir.v_type )
        with
        | Some [ a; b ], Some [ _; c ] -> acc + (a * b * c)
        | _ -> acc)
      0
      (Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "linalg.matmul") m)
  in
  checki "20000 scalar multiplications" 20_000 mults;
  checkb "cost model drove extraction" true (t.Dialegg.Pipeline.extracted_cost >= 20_000)

let test_case_horner () =
  let m, _ =
    optimize
      ~config:{ (default_cfg Dialegg.Rules.horner) with max_iterations = 12; max_nodes = 50_000 }
      {|
func.func @poly(%x: f64, %a: f64, %b: f64, %c: f64) -> f64 {
  %c2 = arith.constant 2.0 : f64
  %x2 = math.powf %x, %c2 : f64
  %t1 = arith.mulf %b, %x : f64
  %t2 = arith.mulf %a, %x2 : f64
  %t3 = arith.addf %t1, %t2 : f64
  %t4 = arith.addf %c, %t3 : f64
  func.return %t4 : f64
}|}
  in
  checki "powf eliminated" 0 (count_op "math.powf" m);
  checki "two multiplies (Horner)" 2 (count_op "arith.mulf" m);
  checki "two adds" 2 (count_op "arith.addf" m);
  (* semantics at a sample point: 3 + 5x + 7x^2 at x = 2 -> 41 *)
  let r =
    Mlir.Interp.run m "poly"
      [
        Mlir.Interp.Rf (2.0, Mlir.Typ.F64);
        Mlir.Interp.Rf (7.0, Mlir.Typ.F64);
        Mlir.Interp.Rf (5.0, Mlir.Typ.F64);
        Mlir.Interp.Rf (3.0, Mlir.Typ.F64);
      ]
  in
  match r.Mlir.Interp.values with
  | [ Mlir.Interp.Rf (41.0, _) ] -> ()
  | [ v ] -> Alcotest.fail (Fmt.str "wrong value %a" Mlir.Interp.pp_rv v)
  | _ -> Alcotest.fail "arity"

let test_rewrite_inside_region () =
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.div_pow2)
      {|
func.func @loopdiv(%n: index, %t: tensor<64xi64>) -> tensor<64xi64> {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %c256 = arith.constant 256 : i64
  %r = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %t) -> (tensor<64xi64>) {
    %v = tensor.extract %acc[%i] : tensor<64xi64>
    %d = arith.divsi %v, %c256 : i64
    %acc2 = tensor.insert %d into %acc[%i] : tensor<64xi64>
    scf.yield %acc2 : tensor<64xi64>
  }
  func.return %r : tensor<64xi64>
}|}
  in
  checki "division inside loop rewritten" 0 (count_op "arith.divsi" m);
  checki "shift inside loop" 1 (count_op "arith.shrsi" m);
  checki "loop structure intact" 1 (count_op "scf.for" m);
  (* execute *)
  let data = Array.init 64 (fun i -> Int64.of_int (i * 1000)) in
  let r =
    Mlir.Interp.run m "loopdiv"
      [ Mlir.Interp.Ri (64L, 64); Mlir.Interp.Rt { shape = [| 64 |]; data = Mlir.Interp.Di data } ]
  in
  match r.Mlir.Interp.values with
  | [ Mlir.Interp.Rt { data = Mlir.Interp.Di out; _ } ] ->
    Array.iteri
      (fun i v ->
        if not (Int64.equal v (Int64.div (Int64.of_int (i * 1000)) 256L)) then
          Alcotest.fail "wrong loop result")
      out
  | _ -> Alcotest.fail "unexpected result"

let test_memref_loop_pipeline () =
  (* side-effecting memref stores inside a registered scf.for: the stores
     are opaque anchors inside the region; the arithmetic around them still
     gets optimized (div -> shift), and execution stays correct *)
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.div_pow2)
      {|
func.func @scale_into(%n: index, %src: memref<32xi64>, %dst: memref<32xi64>) {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %c64 = arith.constant 64 : i64
  scf.for %i = %c0 to %n step %c1 {
    %v = memref.load %src[%i] : memref<32xi64>
    %d = arith.divsi %v, %c64 : i64
    memref.store %d, %dst[%i] : memref<32xi64>
  }
  func.return
}|}
  in
  checki "loop kept" 1 (count_op "scf.for" m);
  checki "stores kept" 1 (count_op "memref.store" m);
  checki "loads kept" 1 (count_op "memref.load" m);
  checki "division rewritten" 0 (count_op "arith.divsi" m);
  checki "shift present" 1 (count_op "arith.shrsi" m);
  (* execute: dst[i] = src[i] / 64 *)
  let mk data = Mlir.Interp.Rt { shape = [| 32 |]; data = Mlir.Interp.Di data } in
  let src = Array.init 32 (fun i -> Int64.of_int (i * 640)) in
  let dst = Array.make 32 0L in
  let _ =
    Mlir.Interp.run m "scale_into"
      [ Mlir.Interp.Ri (32L, 64); mk src; mk dst ]
  in
  Array.iteri
    (fun i v ->
      if not (Int64.equal v (Int64.of_int (i * 10))) then
        Alcotest.fail (Printf.sprintf "dst[%d] = %Ld, want %d" i v (i * 10)))
    dst

(* ------------------------------------------------------------------ *)
(* Custom dialects and hooks                                           *)
(* ------------------------------------------------------------------ *)

let test_custom_dialect_rules () =
  let rules =
    {|
(function cx_conj (Op Type) Op :cost 2)
(function cx_mul (Op Op Type) Op :cost 10)
(rewrite (cx_conj (cx_conj ?z ?t) ?t) ?z)
|}
  in
  let m, _ =
    optimize ~config:(default_cfg rules)
      {|
func.func @f(%z: complex<f64>) -> complex<f64> {
  %a = "cx.conj"(%z) : (complex<f64>) -> complex<f64>
  %b = "cx.conj"(%a) : (complex<f64>) -> complex<f64>
  func.return %b : complex<f64>
}|}
  in
  checki "conj pair eliminated" 0 (count_op "cx.conj" m)

let test_custom_type_hook () =
  (* a user type hook maps !quant to a first-class egg constructor *)
  let hooks = Dialegg.Translate.make_hooks () in
  Dialegg.Translate.register_type_hook hooks
    ~eggify:(fun ty ->
      match ty with
      | Mlir.Typ.Opaque (_, "quant") -> Some (Egglog.Ast.Call ("QuantType", []))
      | _ -> None)
    ~deeggify:(fun name _args ->
      if name = "QuantType" then Some (Mlir.Typ.Opaque ("!quant", "quant")) else None);
  let rules = {|
(function QuantType () Type)
(function q_noop (Op Type) Op :cost 5)
(rewrite (q_noop (q_noop ?x ?t) ?t) (q_noop ?x ?t))
|} in
  let m = Mlir.Parser.parse_module
      {|
func.func @f(%x: !quant) -> !quant {
  %a = "q.noop"(%x) : (!quant) -> !quant
  %b = "q.noop"(%a) : (!quant) -> !quant
  func.return %b : !quant
}|}
  in
  let config = default_cfg rules in
  ignore (Dialegg.Pipeline.optimize_module ~config ~hooks m);
  Mlir.Verifier.verify_exn m;
  checki "noop pair collapsed" 1 (count_op "q.noop" m)

let test_nested_regions_roundtrip () =
  (* scf.if nested inside scf.for, rewrites firing at both levels *)
  let m, _ =
    optimize ~config:(default_cfg Dialegg.Rules.div_pow2)
      {|
func.func @f(%n: index, %t: tensor<16xi64>) -> tensor<16xi64> {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %z = arith.constant 0 : i64
  %c16 = arith.constant 16 : i64
  %r = scf.for %i = %c0 to %n step %c1 iter_args(%acc = %t) -> (tensor<16xi64>) {
    %v = tensor.extract %acc[%i] : tensor<16xi64>
    %neg = arith.cmpi slt, %v, %z : i64
    %d = scf.if %neg -> (i64) {
      scf.yield %z : i64
    } else {
      %q = arith.divsi %v, %c16 : i64
      scf.yield %q : i64
    }
    %acc2 = tensor.insert %d into %acc[%i] : tensor<16xi64>
    scf.yield %acc2 : tensor<16xi64>
  }
  func.return %r : tensor<16xi64>
}|}
  in
  checki "for kept" 1 (count_op "scf.for" m);
  checki "if kept" 1 (count_op "scf.if" m);
  checki "division rewritten inside nested region" 0 (count_op "arith.divsi" m);
  checki "shift present" 1 (count_op "arith.shrsi" m);
  let data = Array.init 16 (fun i -> Int64.of_int ((i * 100) - 300)) in
  let r =
    Mlir.Interp.run m "f"
      [ Mlir.Interp.Ri (16L, 64); Mlir.Interp.Rt { shape = [| 16 |]; data = Mlir.Interp.Di data } ]
  in
  match r.Mlir.Interp.values with
  | [ Mlir.Interp.Rt { data = Mlir.Interp.Di out; _ } ] ->
    Array.iteri
      (fun i v ->
        let orig = Int64.of_int ((i * 100) - 300) in
        let expect = if Int64.compare orig 0L < 0 then 0L else Int64.div orig 16L in
        if not (Int64.equal v expect) then
          Alcotest.fail (Printf.sprintf "out[%d] = %Ld, want %Ld" i v expect))
      out
  | _ -> Alcotest.fail "unexpected result"

let test_multi_operand_return_opaque () =
  (* func.return with 2 operands has no registered egg variant: the
     terminator goes through the opaque-anchor path and survives *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @two(%x: i64) -> (i64, i64) {
  %y = arith.addi %x, %x : i64
  func.return %x, %y : i64, i64
}|}
  in
  checki "return kept" 1 (count_op "func.return" m);
  checki "addi kept (used by the opaque return)" 1 (count_op "arith.addi" m);
  let r = Mlir.Interp.run m "two" [ Mlir.Interp.Ri (21L, 64) ] in
  checkb "both results" true
    (r.Mlir.Interp.values = [ Mlir.Interp.Ri (21L, 64); Mlir.Interp.Ri (42L, 64) ])

let test_rank3_tensor_extract () =
  (* tensor_extract_3 (three indices) through the pipeline *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%t: tensor<2x3x4xi64>) -> i64 {
  %c1 = arith.constant 1 : index
  %v = tensor.extract %t[%c1, %c1, %c1] : tensor<2x3x4xi64>
  func.return %v : i64
}|}
  in
  checki "extract survives" 1 (count_op "tensor.extract" m)

let test_cmpf_predicate_roundtrip () =
  (* two named attributes (fastmath + predicate) in canonical order *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%a: f32, %b: f32) -> i1 {
  %c = arith.cmpf oge, %a, %b fastmath<fast> : f32
  func.return %c : i1
}|}
  in
  let cmps = Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "arith.cmpf") m in
  checki "one cmpf" 1 (List.length cmps);
  checkb "predicate preserved" true
    (Mlir.Ir.attr (List.hd cmps) "predicate" = Some (Mlir.Attr.Int (3L, Mlir.Typ.i64)));
  checkb "fastmath preserved" true
    (Mlir.Ir.attr (List.hd cmps) "fastmath" = Some (Mlir.Attr.Fastmath Mlir.Attr.Fm_fast))

let test_opaque_type_survives () =
  (* a !quant-typed value without hooks: OpaqueType carries the serialized
     form through the round trip *)
  let _, _, m =
    identity_roundtrip
      {|
func.func @f(%x: !quant) -> !quant {
  %y = "q.noop"(%x) : (!quant) -> !quant
  func.return %y : !quant
}|}
  in
  let f = Option.get (Mlir.Ir.find_function m "f") in
  let _, rets = Mlir.Ir.func_type f in
  checkb "opaque type preserved" true (rets = [ Mlir.Typ.Opaque ("!quant", "quant") ])

let test_eggify_deterministic () =
  let src =
    {|
func.func @f(%x: i64) -> i64 {
  %a = arith.addi %x, %x : i64
  %b = arith.muli %a, %x : i64
  func.return %b : i64
}|}
  in
  let dump () =
    let engine = engine_with_prelude () in
    let sigs = Dialegg.Sigs.scan (Egglog.Interp.egraph engine) in
    Egglog.Interp.run_commands engine (Dialegg.Sigs.type_of_rules sigs);
    let f = Option.get (Mlir.Ir.find_function (Mlir.Parser.parse_module src) "f") in
    let eggify =
      Dialegg.Eggify.create ~engine ~sigs ~hooks:(Dialegg.Translate.make_hooks ())
    in
    ignore (Dialegg.Eggify.translate_function eggify f);
    Dialegg.Eggify.to_source eggify
  in
  checks "translation is deterministic" (dump ()) (dump ())

let test_staged_schedule () =
  (* two rulesets staged: strength-reduce first, then a cleanup ruleset *)
  let rules =
    {|
(ruleset cleanup)
|}
    ^ Dialegg.Rules.div_pow2
    ^ {|
(rewrite (arith_shrsi ?x (arith_constant (NamedAttr "value" (IntegerAttr 0 ?t)) ?t) ?t)
         ?x :ruleset cleanup)
|}
  in
  let config =
    {
      (default_cfg rules) with
      schedule = Some [ (None, 16); (Some "cleanup", 16) ];
    }
  in
  let m, t =
    optimize ~config
      {|
func.func @f(%x: i64) -> i64 {
  %c1 = arith.constant 1 : i64
  %r = arith.divsi %x, %c1 : i64
  func.return %r : i64
}|}
  in
  (* /1 -> >>0 (stage 1) -> x (stage 2) *)
  checki "no division" 0 (count_op "arith.divsi" m);
  checki "no shift either" 0 (count_op "arith.shrsi" m);
  checkb "both stages ran" true (t.Dialegg.Pipeline.iterations >= 2)

let test_dag_cost_reported () =
  let _, t = optimize ~config:(default_cfg "") mm2_src in
  checkb "dag cost <= tree cost" true
    (t.Dialegg.Pipeline.extracted_dag_cost <= t.Dialegg.Pipeline.extracted_cost);
  checkb "dag cost positive" true (t.Dialegg.Pipeline.extracted_dag_cost > 0)

(* ------------------------------------------------------------------ *)
(* Pipeline semantics preservation (property)                          *)
(* ------------------------------------------------------------------ *)

let pipeline_preserves_semantics rules name =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name ~count:60
       (QCheck.make
          QCheck.Gen.(
            Test_support.Gen_mlir.program_gen >>= fun p ->
            Test_support.Gen_mlir.args_gen p >>= fun args -> return (p, args)))
       (fun (p, args) ->
         let m = Test_support.Gen_mlir.to_module p in
         let before =
           try Some (Test_support.Gen_mlir.run_module m args)
           with Mlir.Interp.Runtime_error _ -> None
         in
         let config =
           {
             Dialegg.Pipeline.default_config with
             rules;
             max_iterations = 8;
             max_nodes = 20_000;
             timeout = Some 10.0;
           }
         in
         ignore (Dialegg.Pipeline.optimize_module ~config m);
         Mlir.Verifier.verify_exn m;
         match before with
         | None -> true (* program traps; nothing to compare *)
         | Some v -> Test_support.Gen_mlir.run_module m args = v))

let test_pipeline_identity_prop () =
  pipeline_preserves_semantics "" "pipeline without rules preserves semantics"

let test_pipeline_rules_prop () =
  pipeline_preserves_semantics
    (Dialegg.Rules.const_fold ^ Dialegg.Rules.div_pow2)
    "pipeline with fold+shift rules preserves semantics"

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let test_unsound_rule_detected () =
  (* a rule that rewrites an i64 op to a mistyped term produces IR that the
     post-pipeline verifier rejects *)
  let rules =
    {|
(rewrite (arith_addi ?x ?y ?t) (arith_addf ?x ?y (NamedAttr "fastmath" (arith_fastmath (none))) ?t))
|}
  in
  match
    optimize ~config:(default_cfg rules)
      {|
func.func @f(%x: i64) -> i64 {
  %r = arith.addi %x, %x : i64
  func.return %r : i64
}|}
  with
  | exception Dialegg.Pipeline.Error _ -> ()
  | m, _ ->
    (* extraction may still have picked the sound variant; then addi must
       remain and the verifier must be happy *)
    checkb "sound variant chosen or error raised" true (count_op "arith.addi" m = 1)

let test_saturation_budget_respected () =
  (* explosive commutativity on a big expression: node budget stops it and
     the pipeline still produces valid output *)
  let rules = Dialegg.Rules.horner in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "func.func @f(%x: f64) -> f64 {\n";
  Buffer.add_string buf "  %v0 = arith.mulf %x, %x : f64\n";
  for i = 1 to 15 do
    Buffer.add_string buf
      (Printf.sprintf "  %%v%d = arith.addf %%v%d, %%x : f64\n" i (i - 1))
  done;
  Buffer.add_string buf "  func.return %v15 : f64\n}\n";
  let config =
    { (default_cfg rules) with max_nodes = 2_000; max_iterations = 50; timeout = Some 10.0 }
  in
  let m, t = optimize ~config (Buffer.contents buf) in
  Mlir.Verifier.verify_exn m;
  checkb "stopped by a budget" true
    (t.Dialegg.Pipeline.stop <> Egglog.Interp.Saturated
    || t.Dialegg.Pipeline.n_nodes <= 2_000)

let test_eggify_source_dump () =
  (* the .egg dump of a translation is itself parseable Egglog *)
  let engine = engine_with_prelude () in
  let sigs = Dialegg.Sigs.scan (Egglog.Interp.egraph engine) in
  Egglog.Interp.run_commands engine (Dialegg.Sigs.type_of_rules sigs);
  let m =
    Mlir.Parser.parse_module
      {|
func.func @f(%x: i64) -> i64 {
  %a = arith.addi %x, %x : i64
  func.return %a : i64
}|}
  in
  let f = Option.get (Mlir.Ir.find_function m "f") in
  let eggify =
    Dialegg.Eggify.create ~engine ~sigs ~hooks:(Dialegg.Translate.make_hooks ())
  in
  ignore (Dialegg.Eggify.translate_function eggify f);
  let src = Dialegg.Eggify.to_source eggify in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "parses back" true (List.length (Egglog.Parser.parse_program src) > 0);
  checkb "mentions arith_addi" true (contains src "arith_addi")

let () =
  Alcotest.run "dialegg"
    [
      ( "translate",
        [
          Alcotest.test_case "type roundtrip" `Quick test_type_roundtrip;
          Alcotest.test_case "type roundtrip property" `Quick test_type_roundtrip_prop;
          Alcotest.test_case "attr roundtrip" `Quick test_attr_roundtrip;
        ] );
      ( "sigs",
        [
          Alcotest.test_case "prelude scan" `Quick test_sigs_scan;
          Alcotest.test_case "bad parameter order rejected" `Quick test_sigs_rejects_bad_order;
          Alcotest.test_case "variadic suffixes" `Quick test_variadic_suffix_parse;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "scalar identity" `Quick test_identity_scalar;
          Alcotest.test_case "loop identity + semantics" `Quick test_identity_regions;
          Alcotest.test_case "if identity + semantics" `Quick test_identity_if;
          Alcotest.test_case "hash-consing dedupes" `Quick test_identity_dedupes;
          Alcotest.test_case "extraction drops dead code" `Quick test_identity_drops_dead_code;
        ] );
      ( "opaque",
        [
          Alcotest.test_case "opaque op survives" `Quick test_opaque_survives;
          Alcotest.test_case "opaque operands optimized" `Quick test_opaque_operands_rewritten;
          Alcotest.test_case "zero-result anchors kept" `Quick test_opaque_zero_result_anchor;
          Alcotest.test_case "opaque region kept" `Quick test_opaque_with_region;
          Alcotest.test_case "multi-result ops opaque" `Quick test_multi_result_opaque;
        ] );
      ( "case-studies",
        [
          Alcotest.test_case "§7.1 constant folding" `Quick test_case_const_fold;
          Alcotest.test_case "§7.2 div by pow2" `Quick test_case_div_pow2;
          Alcotest.test_case "§7.2 guard holds" `Quick test_case_div_pow2_negative;
          Alcotest.test_case "§7.3 fast inv sqrt" `Quick test_case_fast_inv_sqrt;
          Alcotest.test_case "§7.3 attribute gating" `Quick test_case_fast_inv_sqrt_requires_fastmath;
          Alcotest.test_case "§7.4 matmul associativity" `Quick test_case_matmul_assoc;
          Alcotest.test_case "§7.5 Horner" `Quick test_case_horner;
          Alcotest.test_case "rewrites inside regions" `Quick test_rewrite_inside_region;
          Alcotest.test_case "memref loop: effects + rewrites" `Quick test_memref_loop_pipeline;
        ] );
      ( "extensibility",
        [
          Alcotest.test_case "custom dialect rules" `Quick test_custom_dialect_rules;
          Alcotest.test_case "custom type hooks" `Quick test_custom_type_hook;
        ] );
      ( "pipeline-features",
        [
          Alcotest.test_case "staged ruleset schedule" `Quick test_staged_schedule;
          Alcotest.test_case "dag cost reported" `Quick test_dag_cost_reported;
          Alcotest.test_case "nested regions rewrite + run" `Quick test_nested_regions_roundtrip;
          Alcotest.test_case "multi-operand return opaque" `Quick test_multi_operand_return_opaque;
          Alcotest.test_case "rank-3 tensor extract" `Quick test_rank3_tensor_extract;
          Alcotest.test_case "cmpf attrs round-trip" `Quick test_cmpf_predicate_roundtrip;
          Alcotest.test_case "opaque type survives" `Quick test_opaque_type_survives;
          Alcotest.test_case "eggify deterministic" `Quick test_eggify_deterministic;
        ] );
      ( "properties",
        [
          Alcotest.test_case "identity pipeline preserves semantics" `Slow
            test_pipeline_identity_prop;
          Alcotest.test_case "rule pipeline preserves semantics" `Slow
            test_pipeline_rules_prop;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "unsound rule surfaces" `Quick test_unsound_rule_detected;
          Alcotest.test_case "saturation budgets respected" `Quick test_saturation_budget_respected;
          Alcotest.test_case "egg dump parseable" `Quick test_eggify_source_dump;
        ] );
    ]
