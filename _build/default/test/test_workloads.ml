(* Tests for the benchmark workloads: every benchmark must parse, verify,
   execute, and produce reference-correct output under every optimization
   variant, and the optimized variants must never be slower (cost proxy)
   than the baseline. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* small scales to keep the suite fast *)
let test_scale (b : Workloads.Benchmark.t) =
  if b.name = "2MM" || b.name = "3MM" then b.default_scale else max 2 (b.default_scale / 20)

let test_benchmark_correct (b : Workloads.Benchmark.t) () =
  let scale = test_scale b in
  let ms = Workloads.Runner.run_all_variants ~runs:1 b ~scale in
  List.iter
    (fun (m : Workloads.Runner.measurement) ->
      match m.m_check with
      | Ok () -> ()
      | Error e ->
        Alcotest.fail
          (Printf.sprintf "%s/%s: wrong output: %s" b.name
             (Workloads.Runner.variant_name m.m_variant)
             e))
    ms;
  (* optimized variants must not be worse than baseline in the cost proxy *)
  let cycles v =
    (List.find (fun (m : Workloads.Runner.measurement) -> m.m_variant = v) ms).m_cycles
  in
  let base = cycles Workloads.Runner.Baseline in
  List.iter
    (fun (m : Workloads.Runner.measurement) ->
      if m.m_cycles > base then
        Alcotest.fail
          (Printf.sprintf "%s/%s: %d cycles > baseline %d" b.name
             (Workloads.Runner.variant_name m.m_variant)
             m.m_cycles base))
    ms

let test_dialegg_strictly_faster (b : Workloads.Benchmark.t) () =
  (* every benchmark was chosen because DialEgg finds a real optimization *)
  let scale = test_scale b in
  let base = Workloads.Runner.prepare b ~scale Workloads.Runner.Baseline in
  let opt = Workloads.Runner.prepare b ~scale Workloads.Runner.Dialegg in
  let mb = Workloads.Runner.measure ~runs:1 b ~scale base Workloads.Runner.Baseline in
  let mo = Workloads.Runner.measure ~runs:1 b ~scale opt Workloads.Runner.Dialegg in
  checkb
    (Printf.sprintf "%s: dialegg (%d) < baseline (%d)" b.name mo.m_cycles mb.m_cycles)
    true (mo.m_cycles < mb.m_cycles)

let test_3mm_greedy_suboptimal () =
  (* the paper's §8.4 headline: the greedy pass loses to DialEgg on 3MM *)
  let b = Workloads.Matmul_chain.benchmark_3mm in
  let scale = 3 in
  let greedy = Workloads.Runner.prepare b ~scale Workloads.Runner.Handwritten in
  let dialegg = Workloads.Runner.prepare b ~scale Workloads.Runner.Dialegg in
  let mg = Workloads.Runner.measure ~runs:1 b ~scale greedy Workloads.Runner.Handwritten in
  let md = Workloads.Runner.measure ~runs:1 b ~scale dialegg Workloads.Runner.Dialegg in
  checkb "greedy output correct" true (mg.m_check = Ok ());
  checkb
    (Printf.sprintf "dialegg (%d) beats greedy (%d) on 3MM" md.m_cycles mg.m_cycles)
    true (md.m_cycles < mg.m_cycles)

let test_2mm_greedy_matches () =
  let b = Workloads.Matmul_chain.benchmark_2mm in
  let scale = 2 in
  let greedy = Workloads.Runner.prepare b ~scale Workloads.Runner.Handwritten in
  let dialegg = Workloads.Runner.prepare b ~scale Workloads.Runner.Dialegg in
  let mg = Workloads.Runner.measure ~runs:1 b ~scale greedy Workloads.Runner.Handwritten in
  let md = Workloads.Runner.measure ~runs:1 b ~scale dialegg Workloads.Runner.Dialegg in
  checki "2MM: greedy matches dialegg" md.m_cycles mg.m_cycles

let test_canon_is_noop_on_benchmarks () =
  (* paper Fig. 3: canonicalization alone achieves no speedup on these *)
  List.iter
    (fun (b : Workloads.Benchmark.t) ->
      let scale = test_scale b in
      let base = Workloads.Runner.prepare b ~scale Workloads.Runner.Baseline in
      let canon = Workloads.Runner.prepare b ~scale Workloads.Runner.Canon in
      let mb = Workloads.Runner.measure ~runs:1 b ~scale base Workloads.Runner.Baseline in
      let mc = Workloads.Runner.measure ~runs:1 b ~scale canon Workloads.Runner.Canon in
      checki (b.name ^ ": canon = baseline cycles") mb.m_cycles mc.m_cycles)
    Workloads.Suite.all

let test_table1_counts () =
  (* our programs must use the same dialect mix as the paper's (the exact
     counts differ since the programs were rewritten from the description) *)
  List.iter
    (fun (b : Workloads.Benchmark.t) ->
      let m = Workloads.Benchmark.build b ~scale:(test_scale b) in
      let counts = Workloads.Benchmark.dialect_counts m in
      let get d = Option.value ~default:0 (List.assoc_opt d counts) in
      let paper = List.assoc b.name Workloads.Suite.paper_table1 in
      List.iter
        (fun (dialect, paper_count) ->
          let ours = get dialect in
          if paper_count > 0 && ours = 0 && dialect <> "tensor" then
            Alcotest.fail
              (Printf.sprintf "%s: paper uses dialect %s but we do not" b.name dialect))
        paper)
    Workloads.Suite.all

let test_nmm_chain_generator () =
  List.iter
    (fun n ->
      let src = Workloads.Matmul_chain.source ~scale:n in
      let m = Mlir.Parser.parse_module src in
      Mlir.Verifier.verify_exn m;
      checki
        (Printf.sprintf "%dMM has %d matmuls" n n)
        n
        (List.length (Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "linalg.matmul") m)))
    [ 2; 3; 5; 10 ]

let test_nmm_pipeline_improves () =
  (* a longer random chain: dialegg must still produce a valid, cheaper or
     equal chain *)
  let b = Workloads.Matmul_chain.benchmark_nmm 6 in
  let base = Workloads.Runner.prepare b ~scale:6 Workloads.Runner.Baseline in
  let opt = Workloads.Runner.prepare b ~scale:6 Workloads.Runner.Dialegg in
  let mb = Workloads.Runner.measure ~runs:1 b ~scale:6 base Workloads.Runner.Baseline in
  let mo = Workloads.Runner.measure ~runs:1 b ~scale:6 opt Workloads.Runner.Dialegg in
  checkb "6MM output correct" true (mo.m_check = Ok ());
  checkb "6MM not worse" true (mo.m_cycles <= mb.m_cycles)

let test_rule_counts () =
  (* Table 2's #Rules column *)
  checki "img-conv rules" 1 (Dialegg.Rules.count_rules Dialegg.Rules.div_pow2);
  checki "vec-norm rules" 1 (Dialegg.Rules.count_rules Dialegg.Rules.fast_inv_sqrt);
  checki "poly rules" 8 (Dialegg.Rules.count_rules Dialegg.Rules.horner);
  checki "matmul rules" 2 (Dialegg.Rules.count_rules Dialegg.Rules.matmul_assoc)

let test_rng_deterministic () =
  let a = Workloads.Rng.create 7 and b = Workloads.Rng.create 7 in
  for _ = 1 to 100 do
    checkb "same stream" true (Workloads.Rng.float a = Workloads.Rng.float b)
  done;
  let c = Workloads.Rng.create 8 in
  checkb "different seed differs" true
    (List.init 10 (fun _ -> Workloads.Rng.int a 1000)
    <> List.init 10 (fun _ -> Workloads.Rng.int c 1000))

let () =
  let correctness =
    List.map
      (fun (b : Workloads.Benchmark.t) ->
        Alcotest.test_case (b.name ^ " all variants correct") `Slow (test_benchmark_correct b))
      Workloads.Suite.all
  in
  let speedups =
    List.map
      (fun (b : Workloads.Benchmark.t) ->
        Alcotest.test_case (b.name ^ " dialegg faster") `Slow (test_dialegg_strictly_faster b))
      Workloads.Suite.all
  in
  Alcotest.run "workloads"
    [
      ("correctness", correctness);
      ("speedups", speedups);
      ( "paper-claims",
        [
          Alcotest.test_case "3MM: greedy is suboptimal" `Slow test_3mm_greedy_suboptimal;
          Alcotest.test_case "2MM: greedy matches dialegg" `Slow test_2mm_greedy_matches;
          Alcotest.test_case "canonicalization is a no-op here" `Slow
            test_canon_is_noop_on_benchmarks;
          Alcotest.test_case "Table 1 dialect coverage" `Quick test_table1_counts;
          Alcotest.test_case "rule counts" `Quick test_rule_counts;
        ] );
      ( "generators",
        [
          Alcotest.test_case "NMM chains" `Quick test_nmm_chain_generator;
          Alcotest.test_case "6MM improves" `Slow test_nmm_pipeline_improves;
          Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
        ] );
    ]
