(** A small deterministic PRNG (splitmix64) so workload data is
    bit-identical across machines and runs. *)

type t

val create : int -> t
val next_i64 : t -> int64

(** Uniform integer in [0, bound). *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). *)
val float_range : t -> float -> float -> float
