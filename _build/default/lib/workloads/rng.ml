(** A small deterministic PRNG (splitmix64) for reproducible workload data.

    Benchmarks must not depend on [Random]'s global state: every workload
    seeds its own generator so runs are bit-identical across machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_i64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next_i64 t) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_i64 t) 11) /. 9007199254740992.0

(** Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)
