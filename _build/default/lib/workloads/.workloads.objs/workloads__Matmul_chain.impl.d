lib/workloads/matmul_chain.ml: Array Benchmark Buffer Dialegg List Printf Rng
