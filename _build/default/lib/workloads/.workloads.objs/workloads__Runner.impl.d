lib/workloads/runner.ml: Array Benchmark Dialegg Float List Mlir Option String Unix
