lib/workloads/suite.ml: Benchmark Img_conv List Matmul_chain Poly_eval Vec_norm
