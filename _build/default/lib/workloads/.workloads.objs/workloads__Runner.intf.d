lib/workloads/runner.mli: Benchmark Dialegg Mlir
