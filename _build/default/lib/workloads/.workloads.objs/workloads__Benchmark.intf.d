lib/workloads/benchmark.mli: Mlir
