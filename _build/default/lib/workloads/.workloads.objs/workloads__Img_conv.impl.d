lib/workloads/img_conv.ml: Array Benchmark Dialegg Int64 Printf Rng
