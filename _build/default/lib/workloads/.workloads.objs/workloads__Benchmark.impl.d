lib/workloads/benchmark.ml: Array Float Hashtbl Int64 List Mlir Option Printf String
