lib/workloads/vec_norm.ml: Array Benchmark Dialegg Float Int32 Printf Rng
