lib/workloads/rng.mli:
