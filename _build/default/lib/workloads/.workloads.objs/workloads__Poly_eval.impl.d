lib/workloads/poly_eval.ml: Array Benchmark Dialegg Mlir Printf Rng
