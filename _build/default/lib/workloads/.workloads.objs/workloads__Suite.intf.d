lib/workloads/suite.mli: Benchmark
