(** The benchmark suite: the paper's five benchmarks (Table 1) plus the
    paper's reported numbers for side-by-side comparison in the harness. *)

val all : Benchmark.t list
val find : string -> Benchmark.t option

(** Which dialects each paper benchmark uses (qualitative Table 1; 1 =
    used).  The PDF's exact counts did not survive text extraction; this
    follows §8.2's prose. *)
val paper_table1 : (string * (string * int) list) list

(** Paper Table 2 rows, times in ms: (name, #rules, #ops, mlir→egg, egglog
    total, saturation, egg→mlir, canon, c++ pass; [nan] = not applicable). *)
val paper_table2 :
  (string * int * int * float * float * float * float * float * float) list

(** Paper Fig. 3 speedups (approximate, read off the figure):
    benchmark -> (dialegg, canon, dialegg+canon, hand-written pass). *)
val paper_fig3 : (string * (float * float * float * float option)) list
