(** Experiment runner: applies each optimization variant (Fig. 3's bars) to
    a benchmark, executes it on seeded data, verifies the output against the
    OCaml reference, and reports the cycle cost proxy and wall-clock time. *)

type variant =
  | Baseline  (** no optimization *)
  | Canon  (** MLIR canonicalization only *)
  | Dialegg  (** DialEgg equality saturation only *)
  | Dialegg_canon  (** DialEgg then canonicalization *)
  | Handwritten  (** the greedy C++-style matmul pass (2MM/3MM only) *)

let variant_name = function
  | Baseline -> "baseline"
  | Canon -> "canon"
  | Dialegg -> "dialegg"
  | Dialegg_canon -> "dialegg+canon"
  | Handwritten -> "handwritten"

let all_variants = [ Baseline; Canon; Dialegg; Dialegg_canon ]

(** Which variants apply to a benchmark (Handwritten only for matmuls). *)
let variants_for (b : Benchmark.t) =
  if String.length b.name >= 2 && String.sub b.name 1 2 = "MM" then
    all_variants @ [ Handwritten ]
  else all_variants

type prepared = {
  p_module : Mlir.Ir.op;
  p_pipeline : Dialegg.Pipeline.timings option;  (** set for DialEgg variants *)
  p_canon_time : float;
  p_handwritten_time : float;
  p_prepare_time : float;  (** total optimization wall time *)
}

(** Parse the benchmark at [scale] and apply [variant]'s optimizations. *)
let prepare ?(config = Dialegg.Pipeline.default_config) (b : Benchmark.t) ~scale
    (variant : variant) : prepared =
  let t0 = Unix.gettimeofday () in
  let m = Benchmark.build b ~scale in
  let pipeline = ref None in
  let canon_time = ref 0.0 in
  let hand_time = ref 0.0 in
  let run_dialegg () =
    let cfg = { config with Dialegg.Pipeline.rules = b.rules } in
    pipeline := Some (Dialegg.Pipeline.optimize_module ~config:cfg ~only:[ b.main_func ] m)
  in
  let run_canon () =
    let t = Unix.gettimeofday () in
    ignore (Mlir.Transforms.canonicalize m);
    canon_time := Unix.gettimeofday () -. t
  in
  (match variant with
  | Baseline -> ()
  | Canon -> run_canon ()
  | Dialegg -> run_dialegg ()
  | Dialegg_canon ->
    run_dialegg ();
    run_canon ()
  | Handwritten ->
    let t = Unix.gettimeofday () in
    ignore (Mlir.Matmul_reassoc.run m);
    hand_time := Unix.gettimeofday () -. t);
  Mlir.Verifier.verify_exn m;
  {
    p_module = m;
    p_pipeline = !pipeline;
    p_canon_time = !canon_time;
    p_handwritten_time = !hand_time;
    p_prepare_time = Unix.gettimeofday () -. t0;
  }

type measurement = {
  m_variant : variant;
  m_cycles : int;  (** cost proxy of one execution *)
  m_wall : float;  (** median wall-clock seconds over the runs *)
  m_check : (unit, string) result;
  m_prepared : prepared;
}

let median (xs : float list) =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(** Run the prepared module [runs] times; the paper reports the median of
    eleven runs, we default to five. *)
let measure ?(runs = 5) ?(seed = 1234) (b : Benchmark.t) ~scale (p : prepared)
    (variant : variant) : measurement =
  let input = b.make_input ~scale ~seed in
  let result = ref None in
  let walls =
    List.init runs (fun _ ->
        (* fresh input per run: the interpreter mutates tensors in place *)
        let input = b.make_input ~scale ~seed in
        let r = Mlir.Interp.run p.p_module b.main_func input in
        result := Some r;
        r.Mlir.Interp.wall_time)
  in
  let r = Option.get !result in
  let check =
    b.check ~scale ~input ~output:r.Mlir.Interp.values
  in
  {
    m_variant = variant;
    m_cycles = r.Mlir.Interp.cycles;
    m_wall = median walls;
    m_check = check;
    m_prepared = p;
  }

(** Full Fig. 3 data point: run every applicable variant of [b]. *)
let run_all_variants ?config ?runs ?seed (b : Benchmark.t) ~scale : measurement list =
  List.map
    (fun v ->
      let p = prepare ?config b ~scale v in
      measure ?runs ?seed b ~scale p v)
    (variants_for b)

(** Speedup of each variant over the baseline, in cost-proxy cycles. *)
let speedups (ms : measurement list) : (variant * float * float) list =
  match List.find_opt (fun m -> m.m_variant = Baseline) ms with
  | None -> []
  | Some base ->
    List.map
      (fun m ->
        ( m.m_variant,
          float_of_int base.m_cycles /. float_of_int (max 1 m.m_cycles),
          base.m_wall /. Float.max 1e-9 m.m_wall ))
      ms
