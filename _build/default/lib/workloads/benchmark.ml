(** Common shape of an evaluation benchmark (paper §8.2).

    A benchmark provides the MLIR program (as source text, so the parser is
    exercised on every run), the Egglog rule set DialEgg applies to it, an
    input generator, and an output checker against an OCaml reference
    implementation. *)

type t = {
  name : string;
  description : string;
  source : scale:int -> string;  (** MLIR source at a given problem scale *)
  rules : string;  (** Egglog rules for DialEgg *)
  main_func : string;  (** entry point for the interpreter *)
  default_scale : int;  (** scaled-down default (see DESIGN.md §2) *)
  paper_scale : int;  (** the size used in the paper *)
  make_input : scale:int -> seed:int -> Mlir.Interp.rv list;
  check :
    scale:int ->
    input:Mlir.Interp.rv list ->
    output:Mlir.Interp.rv list ->
    (unit, string) result;
}

(** Parse and verify the benchmark module at [scale]. *)
let build (b : t) ~scale : Mlir.Ir.op =
  let m = Mlir.Parser.parse_module (b.source ~scale) in
  Mlir.Verifier.verify_exn m;
  m

let float_tensor (shape : int list) (data : float array) : Mlir.Interp.rv =
  Mlir.Interp.Rt { shape = Array.of_list shape; data = Mlir.Interp.Df data }

let int_tensor (shape : int list) (data : int64 array) : Mlir.Interp.rv =
  Mlir.Interp.Rt { shape = Array.of_list shape; data = Mlir.Interp.Di data }

let as_float_data (rv : Mlir.Interp.rv) : float array =
  match rv with
  | Mlir.Interp.Rt { data = Mlir.Interp.Df a; _ } -> a
  | _ -> failwith "expected a float tensor"

let as_int_data (rv : Mlir.Interp.rv) : int64 array =
  match rv with
  | Mlir.Interp.Rt { data = Mlir.Interp.Di a; _ } -> a
  | _ -> failwith "expected an integer tensor"

(** Compare float arrays with relative tolerance.  [abs_floor] bounds the
    denominator from below so that catastrophic cancellation near zero does
    not produce spurious relative errors. *)
let check_floats ?(tol = 1e-9) ?(abs_floor = 1e-30) (expected : float array)
    (actual : float array) : (unit, string) result =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" (Array.length expected)
         (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        let a = actual.(i) in
        let err = Float.abs (e -. a) /. Float.max abs_floor (Float.abs e) in
        if err > tol && !bad = None then bad := Some (i, e, a, err))
      expected;
    match !bad with
    | None -> Ok ()
    | Some (i, e, a, err) ->
      Error (Printf.sprintf "element %d: expected %.9g, got %.9g (rel err %.2e)" i e a err)
  end

let check_ints (expected : int64 array) (actual : int64 array) : (unit, string) result =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" (Array.length expected)
         (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e -> if not (Int64.equal e actual.(i)) && !bad = None then bad := Some (i, e, actual.(i)))
      expected;
    match !bad with
    | None -> Ok ()
    | Some (i, e, a) -> Error (Printf.sprintf "element %d: expected %Ld, got %Ld" i e a)
  end

(** Count ops per dialect in a module (Table 1 columns). *)
let dialect_counts (m : Mlir.Ir.op) : (string * int) list =
  let counts = Hashtbl.create 8 in
  Mlir.Ir.walk_op
    (fun op ->
      if op.Mlir.Ir.op_name <> "builtin.module" && op.Mlir.Ir.op_name <> "func.func" then begin
        let d = Mlir.Ir.op_dialect op in
        Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
      end)
    m;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Total op count of a module (Table 2 "#Ops"), functions included. *)
let op_count (m : Mlir.Ir.op) =
  let n = ref 0 in
  Mlir.Ir.walk_op
    (fun op -> if op.Mlir.Ir.op_name <> "builtin.module" then incr n)
    m;
  !n
