(** Benchmark 2 — inverse vector norms (paper §8.2).

    For each of N 3-D vectors, computes [1 / sqrt(x² + y² + z²)] in
    fast-math mode.  DialEgg's attribute-based rule (listing 8) replaces
    the [1/sqrt] pattern with a call to [@fast_inv_sqrt] — the Quake III
    bit-trick routine, included in the module (and dead in the baseline).

    The result is approximate (one Newton step, ≲0.2% relative error), so
    the checker uses a loose tolerance that both variants satisfy. *)

let source ~scale =
  let n = scale in
  Printf.sprintf
    {|
func.func @vec_norm(%%vs: tensor<%dx3xf32>) -> tensor<%dxf32> {
  %%c0 = arith.constant 0 : index
  %%c1i = arith.constant 1 : index
  %%c2 = arith.constant 2 : index
  %%n = arith.constant %d : index
  %%one = arith.constant 1.0 : f32
  %%init = tensor.empty() : tensor<%dxf32>
  %%out = scf.for %%i = %%c0 to %%n step %%c1i iter_args(%%acc = %%init) -> (tensor<%dxf32>) {
    %%x = tensor.extract %%vs[%%i, %%c0] : tensor<%dx3xf32>
    %%y = tensor.extract %%vs[%%i, %%c1i] : tensor<%dx3xf32>
    %%z = tensor.extract %%vs[%%i, %%c2] : tensor<%dx3xf32>
    %%xx = arith.mulf %%x, %%x fastmath<fast> : f32
    %%yy = arith.mulf %%y, %%y fastmath<fast> : f32
    %%zz = arith.mulf %%z, %%z fastmath<fast> : f32
    %%s1 = arith.addf %%xx, %%yy fastmath<fast> : f32
    %%s2 = arith.addf %%s1, %%zz fastmath<fast> : f32
    %%norm = math.sqrt %%s2 fastmath<fast> : f32
    %%inv = arith.divf %%one, %%norm fastmath<fast> : f32
    %%acc2 = tensor.insert %%inv into %%acc[%%i] : tensor<%dxf32>
    scf.yield %%acc2 : tensor<%dxf32>
  }
  func.return %%out : tensor<%dxf32>
}

func.func @fast_inv_sqrt(%%x: f32) -> f32 {
  %%bits = arith.bitcast %%x : f32 to i32
  %%c1 = arith.constant 1 : i32
  %%half_bits = arith.shrsi %%bits, %%c1 : i32
  %%magic = arith.constant 1597463007 : i32
  %%guess_bits = arith.subi %%magic, %%half_bits : i32
  %%y0 = arith.bitcast %%guess_bits : i32 to f32
  %%half = arith.constant 0.5 : f32
  %%three_halves = arith.constant 1.5 : f32
  %%hx = arith.mulf %%half, %%x fastmath<fast> : f32
  %%yy = arith.mulf %%y0, %%y0 fastmath<fast> : f32
  %%t = arith.mulf %%hx, %%yy fastmath<fast> : f32
  %%s = arith.subf %%three_halves, %%t fastmath<fast> : f32
  %%y1 = arith.mulf %%y0, %%s fastmath<fast> : f32
  func.return %%y1 : f32
}
|}
    n n n n n n n n n n n

let make_input ~scale ~seed =
  let n = scale in
  let rng = Rng.create seed in
  let data = Array.init (n * 3) (fun _ -> Rng.float_range rng 0.1 100.0) in
  (* store as f32-representable values *)
  let data = Array.map (fun v -> Int32.float_of_bits (Int32.bits_of_float v)) data in
  [ Benchmark.float_tensor [ n; 3 ] data ]

let reference (vs : float array) n =
  Array.init n (fun i ->
      let x = vs.(i * 3) and y = vs.((i * 3) + 1) and z = vs.((i * 3) + 2) in
      1.0 /. Float.sqrt ((x *. x) +. (y *. y) +. (z *. z)))

let check ~scale ~input ~output =
  match (input, output) with
  | [ vs ], [ out ] ->
    (* loose tolerance: the fast_inv_sqrt variant is approximate *)
    Benchmark.check_floats ~tol:5e-3
      (reference (Benchmark.as_float_data vs) scale)
      (Benchmark.as_float_data out)
  | _ -> Error "unexpected input/output arity"

let benchmark : Benchmark.t =
  {
    name = "vec-norm";
    description = "inverse norm of N 3-D vectors under fastmath<fast>";
    source;
    rules = Dialegg.Rules.fast_inv_sqrt;
    main_func = "vec_norm";
    default_scale = 20_000;
    paper_scale = 1_000_000;
    make_input;
    check;
  }
