(** Benchmarks 4 & 5 — 2MM and 3MM matrix-multiplication chains (paper
    §8.2), plus the parametric NMM chains used by the Table 2 scalability
    study.

    2MM computes (A·B)·C with the paper's exact sizes.  3MM computes
    ((A·B)·C)·D; the paper lists D = 250×10, which does not type-check
    against ((A·B)·C) : 200×150 — we use D = 150×10 (recorded in
    EXPERIMENTS.md as a known paper inconsistency).

    The scale parameter selects the chain length N (so [~scale:2] is 2MM);
    dimensions for N ≤ 4 follow the paper, longer chains draw seeded random
    dimensions. *)

let paper_dims_2mm = [ (100, 10); (10, 150); (150, 8) ]
let paper_dims_3mm = [ (200, 175); (175, 250); (250, 150); (150, 10) ]

(** Dimension chain for an N-matmul benchmark: N+1 sizes d0 x d1, d1 x d2, ... *)
let dims_for ~n ~seed : int list =
  if n = 2 then [ 100; 10; 150; 8 ]
  else if n = 3 then [ 200; 175; 250; 150; 10 ]
  else begin
    (* N matmuls multiply N+1 matrices, so N+2 dimension values *)
    let rng = Rng.create (seed + n) in
    List.init (n + 2) (fun _ -> 5 + Rng.int rng 60)
  end

(** MLIR source for a chain of [n] matmuls over f64 tensors. *)
let source_chain (dims : int list) : string =
  let dims = Array.of_list dims in
  let n = Array.length dims - 1 in
  let buf = Buffer.create 1024 in
  let ty i j = Printf.sprintf "tensor<%dx%dxf64>" dims.(i) dims.(j) in
  Buffer.add_string buf "func.func @mm_chain(";
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "%%m%d: %s" i (ty i (i + 1)))
  done;
  Buffer.add_string buf (Printf.sprintf ") -> %s {\n" (ty 0 n));
  (* acc0 = m0; acc_k = acc_{k-1} * m_k *)
  Buffer.add_string buf (Printf.sprintf "  %%e1 = tensor.empty() : %s\n" (ty 0 2));
  Buffer.add_string buf
    (Printf.sprintf
       "  %%acc1 = linalg.matmul ins(%%m0, %%m1 : %s, %s) outs(%%e1 : %s) -> %s\n"
       (ty 0 1) (ty 1 2) (ty 0 2) (ty 0 2));
  for k = 2 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %%e%d = tensor.empty() : %s\n" k (ty 0 (k + 1)));
    Buffer.add_string buf
      (Printf.sprintf
         "  %%acc%d = linalg.matmul ins(%%acc%d, %%m%d : %s, %s) outs(%%e%d : %s) -> %s\n"
         k (k - 1) k (ty 0 k) (ty k (k + 1)) k (ty 0 (k + 1)) (ty 0 (k + 1)))
  done;
  Buffer.add_string buf (Printf.sprintf "  func.return %%acc%d : %s\n}\n" (n - 1) (ty 0 n));
  Buffer.contents buf

let source ~scale = source_chain (dims_for ~n:scale ~seed:42)

let make_input ~scale ~seed =
  let dims = Array.of_list (dims_for ~n:scale ~seed:42) in
  let rng = Rng.create seed in
  (* a chain of N matmuls multiplies N+1 matrices *)
  List.init (scale + 1) (fun i ->
      let r = dims.(i) and c = dims.(i + 1) in
      Benchmark.float_tensor [ r; c ]
        (Array.init (r * c) (fun _ -> Rng.float_range rng (-1.0) 1.0)))

(** OCaml reference: left-to-right chain product. *)
let reference (mats : (int * int * float array) list) : float array =
  let mul (m, k, a) (k', n, b) =
    assert (k = k');
    let out = Array.make (m * n) 0.0 in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0.0 in
        for l = 0 to k - 1 do
          acc := !acc +. (a.((i * k) + l) *. b.((l * n) + j))
        done;
        out.((i * n) + j) <- !acc
      done
    done;
    (m, n, out)
  in
  match mats with
  | first :: rest ->
    let _, _, data = List.fold_left mul first rest in
    data
  | [] -> [||]

let check ~scale ~input ~output =
  let dims = Array.of_list (dims_for ~n:scale ~seed:42) in
  match output with
  | [ out ] ->
    let mats =
      List.mapi (fun i rv -> (dims.(i), dims.(i + 1), Benchmark.as_float_data rv)) input
    in
    (* re-association changes summation order; tolerate rounding *)
    Benchmark.check_floats ~tol:1e-6 ~abs_floor:1e-6 (reference mats)
      (Benchmark.as_float_data out)
  | _ -> Error "unexpected output arity"

let benchmark_nmm n : Benchmark.t =
  {
    name = Printf.sprintf "%dMM" n;
    description = Printf.sprintf "chain of %d matrix multiplications" n;
    source = (fun ~scale:_ -> source ~scale:n);
    rules = Dialegg.Rules.matmul_assoc;
    main_func = "mm_chain";
    default_scale = n;
    paper_scale = n;
    make_input = (fun ~scale:_ ~seed -> make_input ~scale:n ~seed);
    check = (fun ~scale:_ ~input ~output -> check ~scale:n ~input ~output);
  }

let benchmark_2mm = benchmark_nmm 2
let benchmark_3mm = benchmark_nmm 3
