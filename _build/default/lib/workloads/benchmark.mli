(** Common shape of an evaluation benchmark (paper §8.2): the MLIR program
    (as source text, so the parser is exercised), the Egglog rule set, an
    input generator, and an output checker against an OCaml reference. *)

type t = {
  name : string;
  description : string;
  source : scale:int -> string;  (** MLIR source at a given problem scale *)
  rules : string;  (** Egglog rules for DialEgg *)
  main_func : string;  (** entry point for the interpreter *)
  default_scale : int;  (** scaled-down default (DESIGN.md §2) *)
  paper_scale : int;  (** the size used in the paper *)
  make_input : scale:int -> seed:int -> Mlir.Interp.rv list;
  check :
    scale:int ->
    input:Mlir.Interp.rv list ->
    output:Mlir.Interp.rv list ->
    (unit, string) result;
}

(** Parse and verify the benchmark module at [scale]. *)
val build : t -> scale:int -> Mlir.Ir.op

val float_tensor : int list -> float array -> Mlir.Interp.rv
val int_tensor : int list -> int64 array -> Mlir.Interp.rv
val as_float_data : Mlir.Interp.rv -> float array
val as_int_data : Mlir.Interp.rv -> int64 array

(** Compare with relative tolerance; [abs_floor] bounds the denominator so
    cancellation near zero does not produce spurious errors. *)
val check_floats :
  ?tol:float -> ?abs_floor:float -> float array -> float array -> (unit, string) result

val check_ints : int64 array -> int64 array -> (unit, string) result

(** Ops per dialect in a module (Table 1 columns). *)
val dialect_counts : Mlir.Ir.op -> (string * int) list

(** Total op count (Table 2's #Ops). *)
val op_count : Mlir.Ir.op -> int
