(** Experiment runner: apply each optimization variant (Fig. 3's bars) to a
    benchmark, execute it on seeded data, verify the output against the
    OCaml reference, and report the cycle cost proxy and wall time. *)

type variant =
  | Baseline  (** no optimization *)
  | Canon  (** MLIR canonicalization only *)
  | Dialegg  (** DialEgg equality saturation only *)
  | Dialegg_canon  (** DialEgg then canonicalization *)
  | Handwritten  (** the greedy C++-style matmul pass (2MM/3MM only) *)

val variant_name : variant -> string
val all_variants : variant list

(** Which variants apply ([Handwritten] only for matmul benchmarks). *)
val variants_for : Benchmark.t -> variant list

type prepared = {
  p_module : Mlir.Ir.op;
  p_pipeline : Dialegg.Pipeline.timings option;  (** set for DialEgg variants *)
  p_canon_time : float;
  p_handwritten_time : float;
  p_prepare_time : float;
}

(** Parse the benchmark at [scale] and apply the variant's optimizations. *)
val prepare :
  ?config:Dialegg.Pipeline.config -> Benchmark.t -> scale:int -> variant -> prepared

type measurement = {
  m_variant : variant;
  m_cycles : int;  (** cost proxy of one execution *)
  m_wall : float;  (** median wall-clock seconds *)
  m_check : (unit, string) result;
  m_prepared : prepared;
}

(** Run the prepared module; the paper reports the median of eleven runs,
    default here is five. *)
val measure :
  ?runs:int -> ?seed:int -> Benchmark.t -> scale:int -> prepared -> variant -> measurement

(** One Fig. 3 data point: every applicable variant. *)
val run_all_variants :
  ?config:Dialegg.Pipeline.config ->
  ?runs:int ->
  ?seed:int ->
  Benchmark.t ->
  scale:int ->
  measurement list

(** (variant, cycle-proxy speedup, wall speedup) over the baseline. *)
val speedups : measurement list -> (variant * float * float) list
