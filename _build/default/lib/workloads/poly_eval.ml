(** Benchmark 3 — polynomial evaluation (paper §8.2).

    Evaluates N cubic polynomials [c0 + c1·x + c2·x² + c3·x³] at a fixed
    point, written naively with [math.powf].  DialEgg's Horner rule set
    (§7.5) rewrites each evaluation into Horner form, eliminating the
    exponentiations. *)

let source ~scale =
  let n = scale in
  Printf.sprintf
    {|
func.func @poly_eval(%%coeffs: tensor<%dx4xf64>, %%x: f64) -> tensor<%dxf64> {
  %%i0 = arith.constant 0 : index
  %%i1 = arith.constant 1 : index
  %%i2 = arith.constant 2 : index
  %%i3 = arith.constant 3 : index
  %%n = arith.constant %d : index
  %%two = arith.constant 2.0 : f64
  %%three = arith.constant 3.0 : f64
  %%init = tensor.empty() : tensor<%dxf64>
  %%out = scf.for %%i = %%i0 to %%n step %%i1 iter_args(%%acc = %%init) -> (tensor<%dxf64>) {
    %%c0 = tensor.extract %%coeffs[%%i, %%i0] : tensor<%dx4xf64>
    %%c1 = tensor.extract %%coeffs[%%i, %%i1] : tensor<%dx4xf64>
    %%c2 = tensor.extract %%coeffs[%%i, %%i2] : tensor<%dx4xf64>
    %%c3 = tensor.extract %%coeffs[%%i, %%i3] : tensor<%dx4xf64>
    %%x2 = math.powf %%x, %%two : f64
    %%x3 = math.powf %%x, %%three : f64
    %%t1 = arith.mulf %%c1, %%x : f64
    %%t2 = arith.mulf %%c2, %%x2 : f64
    %%t3 = arith.mulf %%c3, %%x3 : f64
    %%s1 = arith.addf %%c0, %%t1 : f64
    %%s2 = arith.addf %%s1, %%t2 : f64
    %%v = arith.addf %%s2, %%t3 : f64
    %%acc2 = tensor.insert %%v into %%acc[%%i] : tensor<%dxf64>
    scf.yield %%acc2 : tensor<%dxf64>
  }
  func.return %%out : tensor<%dxf64>
}
|}
    n n n n n n n n n n n n

let eval_point = 1.7

let make_input ~scale ~seed =
  let n = scale in
  let rng = Rng.create seed in
  let data = Array.init (n * 4) (fun _ -> Rng.float_range rng (-10.0) 10.0) in
  [ Benchmark.float_tensor [ n; 4 ] data; Mlir.Interp.Rf (eval_point, Mlir.Typ.F64) ]

let reference (coeffs : float array) n x =
  Array.init n (fun i ->
      let c0 = coeffs.(i * 4)
      and c1 = coeffs.((i * 4) + 1)
      and c2 = coeffs.((i * 4) + 2)
      and c3 = coeffs.((i * 4) + 3) in
      c0 +. (c1 *. x) +. (c2 *. (x ** 2.)) +. (c3 *. (x ** 3.)))

let check ~scale ~input ~output =
  match (input, output) with
  | [ coeffs; Mlir.Interp.Rf (x, _) ], [ out ] ->
    (* Horner reassociates float ops; allow rounding differences, and an
       absolute floor against cancellation near zero *)
    Benchmark.check_floats ~tol:1e-9 ~abs_floor:1e-6
      (reference (Benchmark.as_float_data coeffs) scale x)
      (Benchmark.as_float_data out)
  | _ -> Error "unexpected input/output arity"

let benchmark : Benchmark.t =
  {
    name = "poly";
    description = "evaluate N cubic polynomials at a point (Horner's method)";
    source;
    rules = Dialegg.Rules.horner;
    main_func = "poly_eval";
    default_scale = 20_000;
    paper_scale = 1_000_000;
    make_input;
    check;
  }
