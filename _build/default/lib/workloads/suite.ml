(** The benchmark suite: the paper's five benchmarks (Table 1). *)

let all : Benchmark.t list =
  [
    Img_conv.benchmark;
    Vec_norm.benchmark;
    Poly_eval.benchmark;
    Matmul_chain.benchmark_2mm;
    Matmul_chain.benchmark_3mm;
  ]

let find name = List.find_opt (fun (b : Benchmark.t) -> b.name = name) all

(** Which dialects each paper benchmark uses (Table 1, qualitatively: the
    PDF table's exact numbers did not survive text extraction, but §8.2
    states the dialect mix: all benchmarks use scf/func/tensor; img-conv,
    vec-norm and poly use arith; vec-norm and poly use math; only the
    matmul benchmarks use linalg).  1 = used, 0 = unused. *)
let paper_table1 =
  [
    ("img-conv", [ ("scf", 1); ("func", 1); ("tensor", 1); ("arith", 1); ("math", 0); ("linalg", 0) ]);
    ("vec-norm", [ ("scf", 1); ("func", 1); ("tensor", 1); ("arith", 1); ("math", 1); ("linalg", 0) ]);
    ("poly", [ ("scf", 1); ("func", 1); ("tensor", 1); ("arith", 1); ("math", 1); ("linalg", 0) ]);
    ("2MM", [ ("scf", 0); ("func", 1); ("tensor", 1); ("arith", 0); ("math", 0); ("linalg", 1) ]);
    ("3MM", [ ("scf", 0); ("func", 1); ("tensor", 1); ("arith", 0); ("math", 0); ("linalg", 1) ]);
  ]

(** Paper-reported Table 2 rows (times in milliseconds):
    (name, #rules, #ops, mlir->egg, egglog total, saturation, egg->mlir,
     canon, c++ pass). *)
let paper_table2 =
  [
    ("img-conv", 1, 29, 0.3, 14.6, 0.1, 0.2, 0.1, nan);
    ("vec-norm", 1, 44, 0.4, 21.6, 0.1, 0.2, 0.1, nan);
    ("poly", 8, 26, 0.3, 18.9, 0.2, 0.2, 2.0, nan);
    ("2MM", 5, 6, 0.2, 8.6, 0.1, 0.1, 0.1, 0.1);
    ("3MM", 5, 8, 0.2, 8.7, 1.0, 0.1, 0.1, 0.1);
    ("10MM", 5, 22, 0.2, 14.4, 4.0, 0.3, 0.1, 0.2);
    ("20MM", 5, 42, 0.3, 41.3, 23.0, 0.7, 0.2, 0.3);
    ("40MM", 5, 82, 0.4, 296.2, 235.0, 1.4, 0.3, 0.6);
    ("80MM", 5, 162, 0.5, 4939.3, 3732.0, 6.8, 1.3, 0.6);
  ]

(** Paper-reported Fig. 3 speedups (approximate, read off the figure):
    benchmark -> (dialegg, canon, dialegg+canon, handwritten-pass option). *)
let paper_fig3 =
  [
    ("img-conv", (1.17, 1.0, 1.17, None));
    ("vec-norm", (1.08, 1.0, 1.08, None));
    ("poly", (1.07, 1.0, 1.12, None));
    ("2MM", (1.48, 1.0, 1.48, Some 1.48));
    ("3MM", (13.9, 1.0, 13.9, Some 1.9));
  ]
