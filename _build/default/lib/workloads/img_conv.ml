(** Benchmark 1 — converting an RGB image to grayscale (paper §8.2).

    For each pixel: [gray = (77·R + 150·G + 29·B) / 256].  The division by
    256 is what DialEgg's div-by-power-of-two rule (listing 7) turns into a
    shift; MLIR canonicalization leaves it alone.

    Scale parameter: image height; width is [16·scale/9] (the paper uses
    2160×3840, the default here is 144×256 — the op mix per pixel, and
    therefore the speedup shape, is size-invariant). *)

let width_of_height h = h * 16 / 9

let source ~scale =
  let h = scale in
  let w = width_of_height h in
  Printf.sprintf
    {|
func.func @img_to_gray(%%img: tensor<%dx%dx3xi64>) -> tensor<%dx%dxi64> {
  %%c0 = arith.constant 0 : index
  %%c1 = arith.constant 1 : index
  %%c2 = arith.constant 2 : index
  %%h = arith.constant %d : index
  %%w = arith.constant %d : index
  %%w77 = arith.constant 77 : i64
  %%w150 = arith.constant 150 : i64
  %%w29 = arith.constant 29 : i64
  %%c256 = arith.constant 256 : i64
  %%init = tensor.empty() : tensor<%dx%dxi64>
  %%out = scf.for %%i = %%c0 to %%h step %%c1 iter_args(%%acc = %%init) -> (tensor<%dx%dxi64>) {
    %%row = scf.for %%j = %%c0 to %%w step %%c1 iter_args(%%acc2 = %%acc) -> (tensor<%dx%dxi64>) {
      %%r = tensor.extract %%img[%%i, %%j, %%c0] : tensor<%dx%dx3xi64>
      %%g = tensor.extract %%img[%%i, %%j, %%c1] : tensor<%dx%dx3xi64>
      %%b = tensor.extract %%img[%%i, %%j, %%c2] : tensor<%dx%dx3xi64>
      %%tr = arith.muli %%r, %%w77 : i64
      %%tg = arith.muli %%g, %%w150 : i64
      %%tb = arith.muli %%b, %%w29 : i64
      %%s1 = arith.addi %%tr, %%tg : i64
      %%s2 = arith.addi %%s1, %%tb : i64
      %%gray = arith.divsi %%s2, %%c256 : i64
      %%acc3 = tensor.insert %%gray into %%acc2[%%i, %%j] : tensor<%dx%dxi64>
      scf.yield %%acc3 : tensor<%dx%dxi64>
    }
    scf.yield %%row : tensor<%dx%dxi64>
  }
  func.return %%out : tensor<%dx%dxi64>
}
|}
    h w h w h w h w h w h w h w h w h w h w h w h w h w

let make_input ~scale ~seed =
  let h = scale in
  let w = width_of_height h in
  let rng = Rng.create seed in
  let data = Array.init (h * w * 3) (fun _ -> Int64.of_int (Rng.int rng 256)) in
  [ Benchmark.int_tensor [ h; w; 3 ] data ]

let reference (img : int64 array) n =
  Array.init n (fun p ->
      let r = img.((p * 3) + 0) and g = img.((p * 3) + 1) and b = img.((p * 3) + 2) in
      let open Int64 in
      div (add (add (mul 77L r) (mul 150L g)) (mul 29L b)) 256L)

let check ~scale ~input ~output =
  let h = scale in
  let w = width_of_height h in
  match (input, output) with
  | [ img ], [ out ] ->
    Benchmark.check_ints
      (reference (Benchmark.as_int_data img) (h * w))
      (Benchmark.as_int_data out)
  | _ -> Error "unexpected input/output arity"

let benchmark : Benchmark.t =
  {
    name = "img-conv";
    description = "RGB image to grayscale; weighted sum with division by 256";
    source;
    rules = Dialegg.Rules.div_pow2;
    main_func = "img_to_gray";
    default_scale = 144;
    paper_scale = 2160;
    make_input;
    check;
  }
