(** The paper's case-study rule sets (§7), as Egglog source.

    Each is a self-contained fragment that can be concatenated with others
    and fed to {!Pipeline.optimize}.  Costs for the base operations are
    declared in {!Cost_models.default} (latency-style, mirroring the
    interpreter's cost proxy), so extraction globally prefers cheaper op
    mixes. *)

(** §7.1 — constant folding for integer add/sub/mul. *)
let const_fold =
  {|
; x:const + y:const => eval
(rewrite (arith_addi
           (arith_constant (NamedAttr "value" (IntegerAttr ?x ?t)) ?t)
           (arith_constant (NamedAttr "value" (IntegerAttr ?y ?t)) ?t) ?t)
         (arith_constant (NamedAttr "value" (IntegerAttr (+ ?x ?y) ?t)) ?t))
(rewrite (arith_subi
           (arith_constant (NamedAttr "value" (IntegerAttr ?x ?t)) ?t)
           (arith_constant (NamedAttr "value" (IntegerAttr ?y ?t)) ?t) ?t)
         (arith_constant (NamedAttr "value" (IntegerAttr (- ?x ?y) ?t)) ?t))
(rewrite (arith_muli
           (arith_constant (NamedAttr "value" (IntegerAttr ?x ?t)) ?t)
           (arith_constant (NamedAttr "value" (IntegerAttr ?y ?t)) ?t) ?t)
         (arith_constant (NamedAttr "value" (IntegerAttr (* ?x ?y) ?t)) ?t))
|}

(** §7.2 (listing 7) — signed division by a power of two becomes an
    arithmetic right shift.  Conditional rule with computation. *)
let div_pow2 =
  {|
(rule ((= ?lhs (arith_divsi ?x
                 (arith_constant (NamedAttr "value" (IntegerAttr ?n ?t)) ?t) ?t))
       (= ?k (log2 ?n))
       (= (pow 2 ?k) ?n))
      ((union ?lhs
         (arith_shrsi ?x
           (arith_constant (NamedAttr "value" (IntegerAttr ?k ?t)) ?t) ?t))))
|}

(** §7.3 (listing 8) — attribute-based matching: 1/sqrt(x) under
    fastmath<fast> becomes a call to \@fast_inv_sqrt. *)
let fast_inv_sqrt =
  {|
(let fm_fast_rule (NamedAttr "fastmath" (arith_fastmath (fast))))
(rule ((= ?lhs (arith_divf
                 (arith_constant (NamedAttr "value" (FloatAttr 1.0 ?t)) ?t)
                 (math_sqrt ?x fm_fast_rule ?t)
                 fm_fast_rule ?t)))
      ((union ?lhs (func_call_1 ?x
                     (NamedAttr "callee" (SymbolRefAttr "fast_inv_sqrt")) ?t))))
|}

(** §7.4 (listings 5, 6, 9) — type-based cost model for matmul plus the
    associativity rule.  [nrows]/[ncols] come from the prelude. *)
let matmul_assoc =
  {|
; cost of a matmul = number of scalar multiplications (listing 5)
(rule ((= ?e (linalg_matmul ?x ?y ?xy ?t))
       (= ?a (nrows (type-of ?x)))
       (= ?b (ncols (type-of ?x)))
       (= ?c (ncols (type-of ?y))))
      ((unstable-cost (linalg_matmul ?x ?y ?xy ?t) (* (* ?a ?b) ?c))))
; associativity: (x y) z = x (y z)  (listing 9)
(rule ((= ?lhs (linalg_matmul
                 (linalg_matmul ?x ?y ?xy ?xy_t)
                 ?z ?xy_z ?xyz_t))
       (= ?b (nrows (type-of ?y)))
       (= ?d (ncols (type-of ?z)))
       (= ?xyz_t (RankedTensor ?d1 ?et)))
      ((let yz_t (RankedTensor (vec-of ?b ?d) ?et))
       (union ?lhs
         (linalg_matmul ?x
           (linalg_matmul ?y ?z (tensor_empty yz_t) yz_t)
           ?xy_z ?xyz_t))))
|}

(** §7.5 (listings 10–12) — Horner's method: commutativity, associativity,
    distributivity, recursive exponentiation, and identities. *)
let horner =
  {|
; commutativity (listing 12)
(rewrite (arith_addf ?x ?y ?a ?t) (arith_addf ?y ?x ?a ?t))
(rewrite (arith_mulf ?x ?y ?a ?t) (arith_mulf ?y ?x ?a ?t))
; associativity
(rewrite (arith_addf (arith_addf ?x ?y ?a ?t) ?z ?a ?t)
         (arith_addf ?x (arith_addf ?y ?z ?a ?t) ?a ?t))
(rewrite (arith_mulf (arith_mulf ?x ?y ?a ?t) ?z ?a ?t)
         (arith_mulf ?x (arith_mulf ?y ?z ?a ?t) ?a ?t))
; distributivity: mx + nx = x(m + n)
(rewrite (arith_addf (arith_mulf ?m ?x ?a ?t) (arith_mulf ?n ?x ?a ?t) ?a ?t)
         (arith_mulf ?x (arith_addf ?m ?n ?a ?t) ?a ?t))
; x^n = x * x^(n-1) for n >= 1 (listing 10)
(rule ((= ?lhs (math_powf ?x
                 (arith_constant (NamedAttr "value" (FloatAttr ?n ?t)) ?t) ?a ?t))
       (>= ?n 1.0))
      ((union ?lhs
         (arith_mulf ?x
           (math_powf ?x
             (arith_constant (NamedAttr "value" (FloatAttr (- ?n 1.0) ?t)) ?t)
             ?a ?t)
           ?a ?t))))
; identities (listing 11)
(rewrite (math_powf ?x (arith_constant (NamedAttr "value" (FloatAttr 0.0 ?t)) ?t) ?a ?t)
         (arith_constant (NamedAttr "value" (FloatAttr 1.0 ?t)) ?t))
(rewrite (arith_mulf ?x (arith_constant (NamedAttr "value" (FloatAttr 1.0 ?t)) ?t) ?a ?t)
         ?x)
|}

(** Count the rules in a fragment (rewrite/birewrite/rule commands), for the
    paper's Table 2 "#Rules" column. *)
let count_rules (src : string) =
  List.fold_left
    (fun acc c ->
      match c with
      | Egglog.Ast.C_rewrite { bidirectional; _ } -> acc + if bidirectional then 2 else 1
      | Egglog.Ast.C_rule _ -> acc + 1
      | _ -> acc)
    0
    (Egglog.Parser.parse_program src)
