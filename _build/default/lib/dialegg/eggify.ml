(** MLIR → Egglog translation (paper §5.3, forward direction).

    Every SSA value definition becomes a global let-binding in Egglog.
    Registered operations become constructor e-nodes; block arguments and
    the results of {e opaque} (unregistered) operations become
    [(Value id type)] e-nodes with unique ids, so they stay distinct in the
    e-graph and survive optimization.

    Blocks are encoded as [(Blk (vec-of anchors...))] where the anchors are
    the block's {e zero-result} operations (terminators, stores, opaque
    side-effecting ops) in source order — everything else is reachable
    through their operand chains.  This refines the paper's illustration
    (which lists every op) and makes extraction double as dead-code
    elimination; DESIGN.md §5 records the deviation.

    The translation runs its commands against the engine immediately, so it
    can record which e-class every operation landed in; the de-eggifier
    needs that to rebuild regions and opaque operations. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

open Egglog.Ast

type value_source =
  | Func_arg of Mlir.Ir.value
  | Region_arg of Mlir.Ir.value  (** block argument of a nested region *)
  | Opaque_result of Mlir.Ir.op * int
  | Opaque_anchor of Mlir.Ir.op  (** zero-result opaque op *)

type t = {
  sigs : Sigs.t;
  hooks : Translate.hooks;
  engine : Egglog.Interp.t;
  id_sources : (int, value_source) Hashtbl.t;  (** egg Value id -> origin *)
  value_names : (int, string) Hashtbl.t;  (** MLIR value id -> egg global *)
  value_class : (int, int) Hashtbl.t;  (** MLIR value id -> e-class *)
  class_to_op : (int, Mlir.Ir.op) Hashtbl.t;  (** e-class -> original op *)
  opaque_operands : (int, int list) Hashtbl.t;  (** MLIR op id -> operand classes *)
  mutable next_value_id : int;
  mutable counter : int;
  mutable emitted : command list;  (** reverse order, for .egg dumps *)
  mutable root : string option;  (** name of the extraction root *)
}

let create ~engine ~sigs ~hooks =
  {
    sigs;
    hooks;
    engine;
    id_sources = Hashtbl.create 64;
    value_names = Hashtbl.create 64;
    value_class = Hashtbl.create 64;
    class_to_op = Hashtbl.create 64;
    opaque_operands = Hashtbl.create 16;
    next_value_id = 0;
    counter = 0;
    emitted = [];
    root = None;
  }

let fresh_value_id t =
  let id = t.next_value_id in
  t.next_value_id <- id + 1;
  id

let fresh_name t prefix =
  let n = Printf.sprintf "%s%d" prefix t.counter in
  t.counter <- t.counter + 1;
  n

(** Run one command against the engine and remember it. *)
let emit t (c : command) =
  t.emitted <- c :: t.emitted;
  Egglog.Interp.run_command t.engine c

(** Emit [(let name expr)] and return the e-class it evaluated to. *)
let emit_let t name expr : int =
  emit t (C_let (name, expr));
  match Egglog.Interp.global t.engine name with
  | Egglog.Value.Eclass c -> Egglog.Egraph.find_class (Egglog.Interp.egraph t.engine) c
  | v -> error "let %s did not produce an e-class (got %s)" name (Egglog.Value.to_string v)

let name_of_value t (v : Mlir.Ir.value) =
  match Hashtbl.find_opt t.value_names v.Mlir.Ir.v_id with
  | Some n -> n
  | None -> error "operand not yet translated (value id %d)" v.Mlir.Ir.v_id

let class_of_value t (v : Mlir.Ir.value) =
  match Hashtbl.find_opt t.value_class v.Mlir.Ir.v_id with
  | Some c -> c
  | None -> error "operand has no e-class (value id %d)" v.Mlir.Ir.v_id

(** Bind an MLIR value as a fresh [(Value id type)] e-node. *)
let bind_value_node t (v : Mlir.Ir.value) (src : value_source) : string =
  let id = fresh_value_id t in
  Hashtbl.replace t.id_sources id src;
  let name = fresh_name t "op" in
  let expr =
    Call
      ( "Value",
        [ Lit (L_i64 (Int64.of_int id)); Translate.expr_of_type ~hooks:t.hooks v.Mlir.Ir.v_type ]
      )
  in
  let cls = emit_let t name expr in
  Hashtbl.replace t.value_names v.Mlir.Ir.v_id name;
  Hashtbl.replace t.value_class v.Mlir.Ir.v_id cls;
  name

(** Can this op be translated as a first-class e-node? *)
let translatable t (op : Mlir.Ir.op) : Sigs.op_sig option =
  let n_results = Array.length op.Mlir.Ir.results in
  if n_results > 1 then None
  else
    match
      Sigs.find_mlir t.sigs ~name:op.Mlir.Ir.op_name
        ~n_operands:(Array.length op.Mlir.Ir.operands) ~n_results
    with
    | None -> None
    | Some s ->
      if
        s.Sigs.n_attrs = List.length op.Mlir.Ir.attrs
        && s.Sigs.n_regions = List.length op.Mlir.Ir.regions
        && List.for_all
             (fun (r : Mlir.Ir.region) -> List.length r.Mlir.Ir.blocks = 1)
             op.Mlir.Ir.regions
      then Some s
      else None

(** Is [op] a block anchor (must be listed in its block's [Blk] vector)? *)
let is_anchor (op : Mlir.Ir.op) = Array.length op.Mlir.Ir.results = 0

(** Translate one op; returns the egg global name of its e-node. *)
let rec translate_op t (op : Mlir.Ir.op) : string =
  match translatable t op with
  | Some s ->
    let operand_exprs =
      Array.to_list op.Mlir.Ir.operands
      |> List.map (fun v -> Var (name_of_value t v))
    in
    let attr_exprs =
      List.map (Translate.expr_of_named_attr ~hooks:t.hooks) op.Mlir.Ir.attrs
    in
    let region_exprs = List.map (translate_region t) op.Mlir.Ir.regions in
    let type_exprs =
      if s.Sigs.has_type then
        [ Translate.expr_of_type ~hooks:t.hooks op.Mlir.Ir.results.(0).Mlir.Ir.v_type ]
      else []
    in
    let expr = Call (s.Sigs.egg_name, operand_exprs @ attr_exprs @ region_exprs @ type_exprs) in
    let name = fresh_name t "op" in
    let cls = emit_let t name expr in
    Hashtbl.replace t.class_to_op cls op;
    if Array.length op.Mlir.Ir.results = 1 then begin
      Hashtbl.replace t.value_names op.Mlir.Ir.results.(0).Mlir.Ir.v_id name;
      Hashtbl.replace t.value_class op.Mlir.Ir.results.(0).Mlir.Ir.v_id cls
    end;
    name
  | None -> translate_opaque t op

(** Opaque fallback: each result becomes a distinct [(Value id type)]; a
    zero-result op gets a single anchor node of type [none]. *)
and translate_opaque t (op : Mlir.Ir.op) : string =
  (* record the e-classes of its operands so the op can be rebuilt *)
  let operand_classes =
    Array.to_list op.Mlir.Ir.operands |> List.map (class_of_value t)
  in
  Hashtbl.replace t.opaque_operands op.Mlir.Ir.op_id operand_classes;
  if Array.length op.Mlir.Ir.results = 0 then begin
    let id = fresh_value_id t in
    Hashtbl.replace t.id_sources id (Opaque_anchor op);
    let name = fresh_name t "op" in
    let expr = Call ("Value", [ Lit (L_i64 (Int64.of_int id)); Call ("NoneType", []) ]) in
    ignore (emit_let t name expr);
    name
  end
  else begin
    let names =
      Array.to_list op.Mlir.Ir.results
      |> List.mapi (fun i r -> bind_value_node t r (Opaque_result (op, i)))
    in
    (* the op's "name" is its first result's node *)
    List.hd names
  end

(** Translate a nested region to a [(Reg (vec-of (Blk ...)))] expression.
    Block arguments become fresh [Value] nodes first; then all ops are
    translated, and the [Blk] lists the anchors. *)
and translate_region t (r : Mlir.Ir.region) : expr =
  let blocks = List.map (translate_block t) r.Mlir.Ir.blocks in
  Call ("Reg", [ Call ("vec-of", blocks) ])

and translate_block t (b : Mlir.Ir.block) : expr =
  Array.iter
    (fun (a : Mlir.Ir.value) -> ignore (bind_value_node t a (Region_arg a)))
    b.Mlir.Ir.blk_args;
  let anchors =
    List.filter_map
      (fun (op : Mlir.Ir.op) ->
        let name = translate_op t op in
        if is_anchor op then Some (Var name) else None)
      b.Mlir.Ir.blk_ops
  in
  Call ("Blk", [ Call ("vec-of", anchors) ])

(** Translate the body of [func] (a [func.func] op).  Returns the name of
    the root binding ([__root], a [Block] e-node listing the body's
    anchors), which the pipeline extracts after saturation. *)
let translate_function t (func : Mlir.Ir.op) : string =
  let body = Mlir.Ir.func_body func in
  (* function arguments use ids 0..n-1, as in the paper's example *)
  Array.iter
    (fun (a : Mlir.Ir.value) -> ignore (bind_value_node t a (Func_arg a)))
    body.Mlir.Ir.blk_args;
  let anchors =
    List.filter_map
      (fun (op : Mlir.Ir.op) ->
        let name = translate_op t op in
        if is_anchor op then Some (Var name) else None)
      body.Mlir.Ir.blk_ops
  in
  let root = fresh_name t "__root" in
  ignore (emit_let t root (Call ("Blk", [ Call ("vec-of", anchors) ])));
  t.root <- Some root;
  root

(** The commands emitted so far, in order (for .egg file dumps). *)
let emitted_commands t = List.rev t.emitted

(** Render the emitted translation as Egglog source text. *)
let to_source t =
  emitted_commands t
  |> List.map (fun c ->
         match c with
         | C_let (x, e) ->
           Egglog.Sexp.to_string (List [ Atom "let"; Atom x; Egglog.Ast.sexp_of_expr e ])
         | _ -> "; <non-let command>")
  |> String.concat "\n"
