(** Translation of MLIR types and attributes to and from Egglog expressions
    (paper §4.1–§4.2).

    The forward direction produces {!Egglog.Ast.expr} values (to be
    evaluated into the e-graph); the backward direction consumes extracted
    {!Egglog.Extract.term} values.  Types/attributes with no first-class
    encoding fall back to [OpaqueType] / [OpaqueAttr], carrying a serialized
    form that the backward direction re-parses — optionally overridden by
    user-registered custom eggifier / de-eggifier hooks (paper §5.2). *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

open Egglog.Ast

(* ------------------------------------------------------------------ *)
(* Custom type/attribute hooks (paper §5.2)                            *)
(* ------------------------------------------------------------------ *)

type hooks = {
  mutable type_eggifiers : (Mlir.Typ.t -> expr option) list;
  mutable type_deeggifiers : (string -> Egglog.Extract.term list -> Mlir.Typ.t option) list;
  mutable attr_eggifiers : (Mlir.Attr.t -> expr option) list;
  mutable attr_deeggifiers : (string -> Egglog.Extract.term list -> Mlir.Attr.t option) list;
}

let make_hooks () =
  { type_eggifiers = []; type_deeggifiers = []; attr_eggifiers = []; attr_deeggifiers = [] }

(** Register a custom type eggifier / de-eggifier pair.  The de-eggifier
    receives the head constructor name and argument terms. *)
let register_type_hook hooks ~eggify ~deeggify =
  hooks.type_eggifiers <- eggify :: hooks.type_eggifiers;
  hooks.type_deeggifiers <- deeggify :: hooks.type_deeggifiers

let register_attr_hook hooks ~eggify ~deeggify =
  hooks.attr_eggifiers <- eggify :: hooks.attr_eggifiers;
  hooks.attr_deeggifiers <- deeggify :: hooks.attr_deeggifiers

let first_some fs x = List.find_map (fun f -> f x) fs

(* ------------------------------------------------------------------ *)
(* Types: MLIR -> Egglog                                               *)
(* ------------------------------------------------------------------ *)

let call0 name = Call (name, [])
let int_lit n = Lit (L_i64 (Int64.of_int n))

let rec expr_of_type ?(hooks = make_hooks ()) (t : Mlir.Typ.t) : expr =
  match first_some hooks.type_eggifiers t with
  | Some e -> e
  | None -> (
    match t with
    | Mlir.Typ.Integer 1 -> call0 "I1"
    | Integer 8 -> call0 "I8"
    | Integer 16 -> call0 "I16"
    | Integer 32 -> call0 "I32"
    | Integer 64 -> call0 "I64"
    | Integer w -> Call ("IntegerType", [ int_lit w ])
    | Float F16 -> call0 "F16"
    | Float F32 -> call0 "F32"
    | Float F64 -> call0 "F64"
    | Index -> call0 "IndexT"
    | None_type -> call0 "NoneType"
    | Complex e -> Call ("ComplexType", [ expr_of_type ~hooks e ])
    | Tuple ts ->
      Call ("TupleType", [ Call ("vec-of", List.map (expr_of_type ~hooks) ts) ])
    | Ranked_tensor (dims, e) ->
      Call
        ( "RankedTensor",
          [ Call ("vec-of", List.map int_lit dims); expr_of_type ~hooks e ] )
    | Unranked_tensor e -> Call ("UnrankedTensor", [ expr_of_type ~hooks e ])
    | Memref (dims, e) ->
      Call
        ("MemRefType", [ Call ("vec-of", List.map int_lit dims); expr_of_type ~hooks e ])
    | Function (args, rets) ->
      Call
        ( "FunctionType",
          [
            Call ("vec-of", List.map (expr_of_type ~hooks) args);
            Call ("vec-of", List.map (expr_of_type ~hooks) rets);
          ] )
    | Opaque (serialized, name) ->
      Call ("OpaqueType", [ Lit (L_string serialized); Lit (L_string name) ]))

(* ------------------------------------------------------------------ *)
(* Attributes: MLIR -> Egglog                                          *)
(* ------------------------------------------------------------------ *)

let fastmath_variant (fm : Mlir.Attr.fastmath) : expr option =
  match fm with
  | Mlir.Attr.Fm_none -> Some (call0 "none")
  | Fm_fast -> Some (call0 "fast")
  | Fm_flags [ f ] -> (
    match f with
    | "nnan" | "ninf" | "nsz" | "arcp" | "contract" | "afn" | "reassoc" ->
      Some (call0 f)
    | _ -> None)
  | Fm_flags _ -> None

let rec expr_of_attr ?(hooks = make_hooks ()) (a : Mlir.Attr.t) : expr =
  match first_some hooks.attr_eggifiers a with
  | Some e -> e
  | None -> (
    match a with
    | Mlir.Attr.Int (v, t) -> Call ("IntegerAttr", [ Lit (L_i64 v); expr_of_type ~hooks t ])
    | Float (v, t) -> Call ("FloatAttr", [ Lit (L_f64 v); expr_of_type ~hooks t ])
    | String s -> Call ("StringAttr", [ Lit (L_string s) ])
    | Bool b -> Call ("BoolAttr", [ Lit (L_bool b) ])
    | Type t -> Call ("TypeAttr", [ expr_of_type ~hooks t ])
    | Array items ->
      Call ("ArrayAttr", [ Call ("vec-of", List.map (expr_of_attr ~hooks) items) ])
    | Symbol_ref s -> Call ("SymbolRefAttr", [ Lit (L_string s) ])
    | Unit -> call0 "UnitAttr"
    | Fastmath fm -> (
      match fastmath_variant fm with
      | Some v -> Call ("arith_fastmath", [ v ])
      | None ->
        Call
          ( "OpaqueAttr",
            [ Lit (L_string (Mlir.Attr.to_string a)); Lit (L_string "arith.fastmath") ]
          ))
    | Dense_int _ | Dense_float _ | Opaque _ ->
      let name =
        match a with Mlir.Attr.Opaque (_, n) -> n | _ -> "dense"
      in
      Call ("OpaqueAttr", [ Lit (L_string (Mlir.Attr.to_string a)); Lit (L_string name) ]))

(** A named attribute [(NamedAttr "name" <attr>)]. *)
let expr_of_named_attr ?hooks ((name, a) : Mlir.Attr.named) : expr =
  Call ("NamedAttr", [ Lit (L_string name); expr_of_attr ?hooks a ])

(* ------------------------------------------------------------------ *)
(* Egglog -> MLIR (on extracted terms)                                 *)
(* ------------------------------------------------------------------ *)

open Egglog.Extract

let prim_i64 t =
  match t.t_kind with
  | Prim (Egglog.Value.I64 n) -> Int64.to_int n
  | _ -> error "expected an i64 literal, got %s" (term_to_string t)

let prim_i64_64 t =
  match t.t_kind with
  | Prim (Egglog.Value.I64 n) -> n
  | _ -> error "expected an i64 literal, got %s" (term_to_string t)

let prim_f64 t =
  match t.t_kind with
  | Prim (Egglog.Value.F64 f) -> f
  | _ -> error "expected an f64 literal, got %s" (term_to_string t)

let prim_string t =
  match t.t_kind with
  | Prim (Egglog.Value.Str s) -> s
  | _ -> error "expected a string literal, got %s" (term_to_string t)

let prim_bool t =
  match t.t_kind with
  | Prim (Egglog.Value.Bool b) -> b
  | _ -> error "expected a bool literal, got %s" (term_to_string t)

let vec_items t =
  match t.t_kind with
  | T_vec items -> items
  | _ -> error "expected a vector, got %s" (term_to_string t)

let rec type_of_term ?(hooks = make_hooks ()) (t : term) : Mlir.Typ.t =
  let name, args =
    match t.t_kind with
    | Node (sym, args) -> (Egglog.Symbol.name sym, args)
    | _ -> error "expected a Type term, got %s" (term_to_string t)
  in
  match List.find_map (fun f -> f name args) hooks.type_deeggifiers with
  | Some ty -> ty
  | None -> (
    match (name, args) with
    | "I1", [] -> Mlir.Typ.i1
    | "I8", [] -> Mlir.Typ.i8
    | "I16", [] -> Mlir.Typ.i16
    | "I32", [] -> Mlir.Typ.i32
    | "I64", [] -> Mlir.Typ.i64
    | "IntegerType", [ w ] -> Mlir.Typ.Integer (prim_i64 w)
    | "F16", [] -> Mlir.Typ.f16
    | "F32", [] -> Mlir.Typ.f32
    | "F64", [] -> Mlir.Typ.f64
    | "IndexT", [] -> Mlir.Typ.index
    | "NoneType", [] -> Mlir.Typ.None_type
    | "ComplexType", [ e ] -> Mlir.Typ.Complex (type_of_term ~hooks e)
    | "TupleType", [ ts ] ->
      Mlir.Typ.Tuple (List.map (type_of_term ~hooks) (vec_items ts))
    | "RankedTensor", [ dims; e ] ->
      Mlir.Typ.Ranked_tensor
        (List.map prim_i64 (vec_items dims), type_of_term ~hooks e)
    | "UnrankedTensor", [ e ] -> Mlir.Typ.Unranked_tensor (type_of_term ~hooks e)
    | "MemRefType", [ dims; e ] ->
      Mlir.Typ.Memref (List.map prim_i64 (vec_items dims), type_of_term ~hooks e)
    | "FunctionType", [ a; r ] ->
      Mlir.Typ.Function
        ( List.map (type_of_term ~hooks) (vec_items a),
          List.map (type_of_term ~hooks) (vec_items r) )
    | "OpaqueType", [ s; _n ] -> (
      let serialized = prim_string s in
      try Mlir.Typ.of_string serialized
      with Mlir.Typ.Parse_error _ -> Mlir.Typ.Opaque (serialized, prim_string _n))
    | _ -> error "unknown Type constructor %s" name)

let rec attr_of_term ?(hooks = make_hooks ()) (t : term) : Mlir.Attr.t =
  let name, args =
    match t.t_kind with
    | Node (sym, args) -> (Egglog.Symbol.name sym, args)
    | _ -> error "expected an Attr term, got %s" (term_to_string t)
  in
  match List.find_map (fun f -> f name args) hooks.attr_deeggifiers with
  | Some a -> a
  | None -> (
    match (name, args) with
    | "IntegerAttr", [ v; ty ] -> Mlir.Attr.Int (prim_i64_64 v, type_of_term ~hooks ty)
    | "FloatAttr", [ v; ty ] -> Mlir.Attr.Float (prim_f64 v, type_of_term ~hooks ty)
    | "StringAttr", [ s ] -> Mlir.Attr.String (prim_string s)
    | "BoolAttr", [ b ] -> Mlir.Attr.Bool (prim_bool b)
    | "TypeAttr", [ ty ] -> Mlir.Attr.Type (type_of_term ~hooks ty)
    | "ArrayAttr", [ items ] ->
      Mlir.Attr.Array (List.map (attr_of_term ~hooks) (vec_items items))
    | "SymbolRefAttr", [ s ] -> Mlir.Attr.Symbol_ref (prim_string s)
    | "UnitAttr", [] -> Mlir.Attr.Unit
    | "arith_fastmath", [ flag ] -> (
      match head flag with
      | Some "none" -> Mlir.Attr.Fastmath Mlir.Attr.Fm_none
      | Some "fast" -> Mlir.Attr.Fastmath Mlir.Attr.Fm_fast
      | Some f -> Mlir.Attr.Fastmath (Mlir.Attr.Fm_flags [ f ])
      | None -> error "invalid fastmath flag term")
    | "OpaqueAttr", [ s; n ] -> Mlir.Attr.Opaque (prim_string s, prim_string n)
    | _ -> error "unknown Attr constructor %s" name)

(** Decompose a [(NamedAttr "name" attr)] term. *)
let named_attr_of_term ?hooks (t : term) : Mlir.Attr.named =
  match t.t_kind with
  | Node (sym, [ name; attr ]) when Egglog.Symbol.name sym = "NamedAttr" ->
    (prim_string name, attr_of_term ?hooks attr)
  | _ -> error "expected a NamedAttr term, got %s" (term_to_string t)
