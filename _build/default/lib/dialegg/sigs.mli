(** The preparation phase (paper §5.1): scan the declared Egglog functions
    and register every MLIR operation constructor — expected operand /
    attribute / region counts, and whether it carries a result type.

    An Egglog function is an op constructor iff its return sort is [Op]
    and its name is not [Value].  Parameter order is enforced: operands
    ([Op]), attributes ([AttrPair], sorted by name), regions ([Region]),
    then the result [Type] iff single-result.  Variadic operations encode
    their operand count as a [_N] suffix ([func_call_3]). *)

exception Error of string

type op_sig = {
  egg_name : string;  (** the Egglog function, e.g. "func_call_3" *)
  mlir_name : string;  (** the MLIR op, e.g. "func.call" *)
  n_operands : int;
  n_attrs : int;
  n_regions : int;
  has_type : bool;  (** trailing [Type] parameter = single result *)
}

type t

(** Strip a trailing [_<int>] suffix. *)
val split_variadic : string -> string * int option

(** Egglog function name -> MLIR op name ([tensor_from_elements_2] ->
    [tensor.from_elements]). *)
val mlir_name_of_egg : string -> string

(** Derive one function's signature; [None] if it is not an op constructor.
    @raise Error on a malformed constructor declaration. *)
val sig_of_function : Egglog.Egraph.func -> op_sig option

(** Scan all functions declared in the e-graph. *)
val scan : Egglog.Egraph.t -> t

(** Signature for an Egglog function name. *)
val find_egg : t -> string -> op_sig option

(** Signature for an MLIR op with the given operand and result counts. *)
val find_mlir : t -> name:string -> n_operands:int -> n_results:int -> op_sig option

(** All registered op signatures. *)
val all : t -> op_sig list

(** Auto-generated [type-of] propagation rules (one per typed op
    constructor, plus [Value]) — the paper's type-based cost models (§6.2)
    read operand types through these. *)
val type_of_rules : t -> Egglog.Ast.command list
