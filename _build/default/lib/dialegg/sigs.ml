(** The preparation phase (paper §5.1): scan the declared Egglog functions
    and register every MLIR operation constructor, recording the expected
    numbers of operands, attributes and regions, and whether it carries a
    result type.

    An Egglog function is an op constructor iff its return sort is [Op] and
    its name is not [Value].  Its MLIR op name is obtained by stripping an
    optional variadic suffix [_<n>] and replacing the first underscore with
    a dot ([func_call_3] -> [func.call]). *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type op_sig = {
  egg_name : string;  (** the Egglog function, e.g. "func_call_3" *)
  mlir_name : string;  (** the MLIR op, e.g. "func.call" *)
  n_operands : int;
  n_attrs : int;
  n_regions : int;
  has_type : bool;  (** trailing [Type] parameter = single result *)
}

type t = {
  by_egg : (string, op_sig) Hashtbl.t;
  by_mlir : (string * int, op_sig list) Hashtbl.t;
      (** key: (mlir op name, operand count) *)
}

(** [split_variadic name] strips a trailing [_<int>] suffix. *)
let split_variadic name =
  match String.rindex_opt name '_' with
  | Some i when i < String.length name - 1 ->
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    if String.for_all (fun c -> c >= '0' && c <= '9') suffix then
      (String.sub name 0 i, Some (int_of_string suffix))
    else (name, None)
  | _ -> (name, None)

(** [mlir_name_of_egg name] maps an Egglog function name to the MLIR op
    name: strip variadic suffix, then dialect-dot at the first underscore. *)
let mlir_name_of_egg name =
  let base, _ = split_variadic name in
  match String.index_opt base '_' with
  | Some i ->
    String.sub base 0 i ^ "." ^ String.sub base (i + 1) (String.length base - i - 1)
  | None -> base

let sort_kind_name (k : Egglog.Egraph.sort_kind) =
  match k with Egglog.Egraph.S_eq n -> Some n | _ -> None

(** Derive the signature of one Egglog op constructor, enforcing the
    canonical parameter order (operands, attributes, regions, result type). *)
let sig_of_function (f : Egglog.Egraph.func) : op_sig option =
  let name = Egglog.Symbol.name f.Egglog.Egraph.sym in
  match sort_kind_name f.Egglog.Egraph.ret_sort with
  | Some "Op" when name <> "Value" ->
    let args = Array.to_list f.Egglog.Egraph.arg_sorts in
    let arg_names = List.map sort_kind_name args in
    (* phases: 0 = operands, 1 = attrs, 2 = regions, 3 = type *)
    let phase = ref 0 in
    let n_operands = ref 0 and n_attrs = ref 0 and n_regions = ref 0 in
    let has_type = ref false in
    List.iter
      (fun s ->
        match s with
        | Some "Op" ->
          if !phase > 0 then
            error "%s: operand (Op) parameter after attributes/regions" name;
          incr n_operands
        | Some "AttrPair" ->
          if !phase > 1 then error "%s: AttrPair parameter after regions" name;
          phase := 1;
          incr n_attrs
        | Some "Region" ->
          if !phase > 2 then error "%s: Region parameter after the type" name;
          phase := 2;
          incr n_regions
        | Some "Type" ->
          if !has_type then error "%s: more than one trailing Type parameter" name;
          phase := 3;
          has_type := true
        | _ ->
          error "%s: unsupported parameter sort in an op constructor" name)
      arg_names;
    (match split_variadic name with
    | _, Some n when n <> !n_operands ->
      error "%s: variadic suffix %d does not match %d Op parameters" name n !n_operands
    | _ -> ());
    Some
      {
        egg_name = name;
        mlir_name = mlir_name_of_egg name;
        n_operands = !n_operands;
        n_attrs = !n_attrs;
        n_regions = !n_regions;
        has_type = !has_type;
      }
  | _ -> None

(** Scan all functions declared in [eg] and build the registry. *)
let scan (eg : Egglog.Egraph.t) : t =
  let t = { by_egg = Hashtbl.create 64; by_mlir = Hashtbl.create 64 } in
  List.iter
    (fun f ->
      match sig_of_function f with
      | None -> ()
      | Some s ->
        Hashtbl.replace t.by_egg s.egg_name s;
        let key = (s.mlir_name, s.n_operands) in
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.by_mlir key) in
        Hashtbl.replace t.by_mlir key (s :: existing))
    (Egglog.Egraph.functions eg);
  t

(** Signature for an Egglog function name. *)
let find_egg t name = Hashtbl.find_opt t.by_egg name

(** Signature for an MLIR op with a given operand and result count. *)
let find_mlir t ~name ~n_operands ~n_results =
  match Hashtbl.find_opt t.by_mlir (name, n_operands) with
  | None -> None
  | Some sigs ->
    List.find_opt (fun s -> s.has_type = (n_results = 1)) sigs

(** All registered op signatures. *)
let all t = Hashtbl.fold (fun _ s acc -> s :: acc) t.by_egg []

(** Auto-generated [type-of] propagation rules: for every op constructor
    with a result type, [(rule ((= ?e (op ?a1 ... ?t))) ((set (type-of ?e) ?t)))],
    plus the rule for [Value] (paper §6.2 relies on these). *)
let type_of_rules (t : t) : Egglog.Ast.command list =
  let rule_for (s : op_sig) : Egglog.Ast.command =
    let n_args = s.n_operands + s.n_attrs + s.n_regions in
    let vars = List.init n_args (fun i -> Egglog.Ast.Var (Printf.sprintf "?a%d" i)) in
    let pat = Egglog.Ast.Call (s.egg_name, vars @ [ Var "?t" ]) in
    Egglog.Ast.C_rule
      {
        name = Some ("type-of-" ^ s.egg_name);
        facts = [ F_eq [ Var "?e"; pat ] ];
        actions = [ A_set (Call ("type-of", [ Var "?e" ]), Var "?t") ];
        ruleset = None;
      }
  in
  let value_rule : Egglog.Ast.command =
    C_rule
      {
        name = Some "type-of-Value";
        facts = [ F_eq [ Var "?e"; Call ("Value", [ Var "?i"; Var "?t" ]) ] ];
        actions = [ A_set (Call ("type-of", [ Var "?e" ]), Var "?t") ];
        ruleset = None;
      }
  in
  value_rule :: (all t |> List.filter (fun s -> s.has_type) |> List.map rule_for)
