(** MLIR → Egglog translation (paper §5.3, forward direction).

    SSA definitions become global let-bindings; registered operations
    become constructor e-nodes; block arguments and opaque (unregistered)
    operation results become [(Value id type)] e-nodes with unique ids.
    Blocks are encoded as [(Blk (vec-of anchors...))] where the anchors are
    the zero-result operations in source order — extraction then doubles as
    dead-code elimination (a refinement of the paper's illustration,
    recorded in DESIGN.md §5).

    Commands run against the engine immediately so the translation can
    record the e-class of every operation; {!Deeggify} consumes those side
    tables to rebuild regions and opaque operations. *)

exception Error of string

type value_source =
  | Func_arg of Mlir.Ir.value
  | Region_arg of Mlir.Ir.value  (** block argument of a nested region *)
  | Opaque_result of Mlir.Ir.op * int
  | Opaque_anchor of Mlir.Ir.op  (** zero-result opaque op *)

type t = {
  sigs : Sigs.t;
  hooks : Translate.hooks;
  engine : Egglog.Interp.t;
  id_sources : (int, value_source) Hashtbl.t;  (** egg Value id -> origin *)
  value_names : (int, string) Hashtbl.t;  (** MLIR value id -> egg global *)
  value_class : (int, int) Hashtbl.t;  (** MLIR value id -> e-class *)
  class_to_op : (int, Mlir.Ir.op) Hashtbl.t;  (** e-class -> original op *)
  opaque_operands : (int, int list) Hashtbl.t;  (** MLIR op id -> operand classes *)
  mutable next_value_id : int;
  mutable counter : int;
  mutable emitted : Egglog.Ast.command list;  (** reverse order *)
  mutable root : string option;  (** name of the extraction root *)
}

val create : engine:Egglog.Interp.t -> sigs:Sigs.t -> hooks:Translate.hooks -> t

(** Can this op be translated as a first-class e-node (registered
    signature, attribute/region counts match, single-block regions,
    at most one result)? *)
val translatable : t -> Mlir.Ir.op -> Sigs.op_sig option

(** Translate one op (registered or opaque); returns its egg global name. *)
val translate_op : t -> Mlir.Ir.op -> string

(** Translate a function body; returns the name of the root binding (the
    [Block] e-node of body anchors) that the pipeline extracts. *)
val translate_function : t -> Mlir.Ir.op -> string

(** The commands emitted so far, in order. *)
val emitted_commands : t -> Egglog.Ast.command list

(** Render the emitted translation as Egglog source (for [.egg] dumps). *)
val to_source : t -> string
