(** The paper's case-study rule sets (§7), as Egglog source fragments that
    can be concatenated and fed to {!Pipeline.optimize_module}. *)

(** §7.1 — constant folding for integer add/sub/mul. *)
val const_fold : string

(** §7.2 (listing 7) — signed division by a power of two becomes an
    arithmetic right shift (conditional rule with computation). *)
val div_pow2 : string

(** §7.3 (listing 8) — attribute-based matching: [1/sqrt(x)] under
    [fastmath<fast>] becomes a call to [@fast_inv_sqrt]. *)
val fast_inv_sqrt : string

(** §7.4 (listings 5, 6, 9) — type-based matmul cost model
    ([unstable-cost]) plus the associativity rule. *)
val matmul_assoc : string

(** §7.5 (listings 10–12) — Horner's method: commutativity, associativity,
    distributivity, recursive exponentiation, identities. *)
val horner : string

(** Number of rule/rewrite commands in a fragment (Table 2's #Rules). *)
val count_rules : string -> int
