lib/dialegg/eggify.ml: Array Egglog Fmt Hashtbl Int64 List Mlir Printf Sigs String Translate
