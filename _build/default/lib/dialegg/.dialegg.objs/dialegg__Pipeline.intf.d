lib/dialegg/pipeline.mli: Egglog Format Mlir Translate
