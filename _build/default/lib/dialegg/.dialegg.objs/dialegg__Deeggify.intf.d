lib/dialegg/deeggify.mli: Eggify Egglog Mlir Sigs Translate
