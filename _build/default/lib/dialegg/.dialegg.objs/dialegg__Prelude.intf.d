lib/dialegg/prelude.mli: Egglog Lazy
