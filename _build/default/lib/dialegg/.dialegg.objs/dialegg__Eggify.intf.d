lib/dialegg/eggify.mli: Egglog Hashtbl Mlir Sigs Translate
