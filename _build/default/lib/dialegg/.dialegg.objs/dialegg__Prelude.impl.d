lib/dialegg/prelude.ml: Egglog
