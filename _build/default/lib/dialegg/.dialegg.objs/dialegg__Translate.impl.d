lib/dialegg/translate.ml: Egglog Fmt Int64 List Mlir
