lib/dialegg/rules.mli:
