lib/dialegg/sigs.mli: Egglog
