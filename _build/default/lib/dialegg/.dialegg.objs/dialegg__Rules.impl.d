lib/dialegg/rules.ml: Egglog List
