lib/dialegg/translate.mli: Egglog Mlir
