lib/dialegg/deeggify.ml: Array Eggify Egglog Fmt Hashtbl List Mlir Sigs Translate
