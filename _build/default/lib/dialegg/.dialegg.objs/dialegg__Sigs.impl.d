lib/dialegg/sigs.ml: Array Egglog Fmt Hashtbl List Option Printf String
