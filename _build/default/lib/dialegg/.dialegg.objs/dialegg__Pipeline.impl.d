lib/dialegg/pipeline.ml: Deeggify Eggify Egglog Fmt Lazy List Mlir Option Prelude Sigs Translate Unix
