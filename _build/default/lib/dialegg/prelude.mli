(** DialEgg's pre-defined Egglog declarations (paper §4): builtin MLIR
    types and attributes, the [Value] / [Block] / [Region] encodings, and
    the common operations of the [func arith math scf tensor linalg]
    dialects — each with a latency-aligned [:cost].

    Encoding conventions (enforced by {!Sigs}): an op [d.op] with [k]
    operands is an Egglog function [d_op] (or [d_op_k] when variadic) whose
    parameters are the operands ([Op] each), one [AttrPair] per named
    attribute (sorted by name), one [Region] per region, and a trailing
    [Type] iff the op has exactly one result. *)

(** The prelude as Egglog source text. *)
val source : string

(** Parsed prelude commands (parsed once, lazily). *)
val commands : Egglog.Ast.command list Lazy.t
