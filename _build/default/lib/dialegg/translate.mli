(** Translation of MLIR types and attributes to and from Egglog (paper
    §4.1–§4.2).  Unknown constructs fall back to [OpaqueType] /
    [OpaqueAttr] with a serialized form the backward direction re-parses;
    user hooks can override both directions (paper §5.2). *)

exception Error of string

(** Custom type/attribute eggifier and de-eggifier hooks. *)
type hooks

val make_hooks : unit -> hooks

(** Register a custom type hook.  The eggifier returns [Some expr] for
    types it handles; the de-eggifier receives the head constructor name
    and argument terms. *)
val register_type_hook :
  hooks ->
  eggify:(Mlir.Typ.t -> Egglog.Ast.expr option) ->
  deeggify:(string -> Egglog.Extract.term list -> Mlir.Typ.t option) ->
  unit

val register_attr_hook :
  hooks ->
  eggify:(Mlir.Attr.t -> Egglog.Ast.expr option) ->
  deeggify:(string -> Egglog.Extract.term list -> Mlir.Attr.t option) ->
  unit

(** {1 MLIR → Egglog} *)

val expr_of_type : ?hooks:hooks -> Mlir.Typ.t -> Egglog.Ast.expr
val expr_of_attr : ?hooks:hooks -> Mlir.Attr.t -> Egglog.Ast.expr

(** [(NamedAttr "name" <attr>)] *)
val expr_of_named_attr : ?hooks:hooks -> Mlir.Attr.named -> Egglog.Ast.expr

(** {1 Egglog → MLIR (on extracted terms)} *)

val prim_i64 : Egglog.Extract.term -> int
val prim_i64_64 : Egglog.Extract.term -> int64
val prim_f64 : Egglog.Extract.term -> float
val prim_string : Egglog.Extract.term -> string
val prim_bool : Egglog.Extract.term -> bool
val vec_items : Egglog.Extract.term -> Egglog.Extract.term list

val type_of_term : ?hooks:hooks -> Egglog.Extract.term -> Mlir.Typ.t
val attr_of_term : ?hooks:hooks -> Egglog.Extract.term -> Mlir.Attr.t
val named_attr_of_term : ?hooks:hooks -> Egglog.Extract.term -> Mlir.Attr.named
