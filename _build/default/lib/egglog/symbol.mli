(** Interned symbols: strings with O(1) equality, hashing and comparison.

    Function names, sort names and rule names are interned once and
    compared by id throughout the engine. *)

type t

(** [intern name] returns the unique symbol for [name]; repeated calls with
    the same string return the same symbol. *)
val intern : string -> t

(** The string this symbol was interned from. *)
val name : t -> string

(** The unique integer identifier. *)
val id : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
