(** Union-find (disjoint sets) over dense integer identifiers.

    The e-graph allocates e-class ids densely from 0; this structure tracks
    which ids have been unified.  Uses path halving and union by rank.  The
    structure grows on demand. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable size : int; (* number of allocated ids *)
}

let create ?(capacity = 64) () =
  { parent = Array.init capacity Fun.id; rank = Array.make capacity 0; size = 0 }

(** Number of ids allocated so far. *)
let size t = t.size

let ensure_capacity t n =
  let cap = Array.length t.parent in
  if n > cap then begin
    let new_cap = max n (cap * 2) in
    let parent = Array.init new_cap (fun i -> if i < cap then t.parent.(i) else i) in
    let rank = Array.make new_cap 0 in
    Array.blit t.rank 0 rank 0 cap;
    t.parent <- parent;
    t.rank <- rank
  end

(** [fresh t] allocates a new id that is its own representative. *)
let fresh t =
  let id = t.size in
  ensure_capacity t (id + 1);
  t.parent.(id) <- id;
  t.rank.(id) <- 0;
  t.size <- id + 1;
  id

(** [find t x] returns the canonical representative of [x]'s set.
    Raises [Invalid_argument] if [x] was never allocated. *)
let find t x =
  if x < 0 || x >= t.size then invalid_arg "Union_find.find: id out of range";
  let rec go x =
    let p = t.parent.(x) in
    if p = x then x
    else begin
      (* path halving *)
      let gp = t.parent.(p) in
      t.parent.(x) <- gp;
      go gp
    end
  in
  go x

(** [union t a b] merges the sets of [a] and [b] and returns the canonical
    representative of the merged set. *)
let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

(** [same t a b] is true iff [a] and [b] are in the same set. *)
let same t a b = find t a = find t b

(** [is_canonical t x] is true iff [x] is the representative of its set. *)
let is_canonical t x = find t x = x

(** Deep copy (for [push]/[pop] snapshots). *)
let copy t = { parent = Array.copy t.parent; rank = Array.copy t.rank; size = t.size }
