(** Runtime values of the Egglog engine: primitives, vectors (which may
    contain e-class references), and e-class references.

    E-class references go stale when classes are unified; {!canonicalize}
    rewrites every embedded id to its representative.  Hash tables keyed by
    values must only store canonical values. *)

type t =
  | I64 of int64
  | F64 of float
  | Str of string
  | Bool of bool
  | Unit
  | Vec of t array
  | Eclass of int  (** reference to an e-class, by id *)

val equal : t -> t -> bool
val hash : t -> int

(** Replace every e-class id inside the value (including inside vectors,
    recursively) with its canonical representative. *)
val canonicalize : Union_find.t -> t -> t

(** Would {!canonicalize} be a no-op? *)
val is_canonical : Union_find.t -> t -> bool

(** E-class ids mentioned anywhere inside the value, prepended to the
    accumulator. *)
val eclasses : t -> int list -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Tbl : Hashtbl.S with type key = t

(** Hash tables keyed by value arrays (function-table keys). *)
module Args_tbl : Hashtbl.S with type key = t array
