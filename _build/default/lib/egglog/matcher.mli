(** E-matching: finding all substitutions under which a rule's premises
    hold in the current e-graph.

    The matcher works on a snapshot {!index} built once per saturation
    iteration (after {!Egraph.rebuild}); rows are indexed by output e-class
    so nested patterns join in O(1) per candidate.

    Premises are solved left to right over a list of candidate
    environments: declared-function applications are patterns (relational
    joins over their tables), primitive applications are evaluated (and
    must be [true] in guard position), and [(= e1 e2 ...)] unifies the
    values of all conjuncts, binding still-free variables. *)

exception Error of string

module Env : Map.S with type key = string

type env = Value.t Env.t

type index

(** Build a matching snapshot.  The e-graph must be rebuilt.  [globals]
    are the interpreter's top-level let-bindings. *)
val make_index : Egraph.t -> (string, Value.t) Hashtbl.t -> index

(** Value of an {!Ast.lit}. *)
val value_of_lit : Ast.lit -> Value.t

(** Try to evaluate a ground expression under an environment; [None] when
    it mentions an unbound variable, a missing table row, or a primitive
    error.  Never mutates the e-graph. *)
val eval_opt : index -> env -> Ast.expr -> Value.t option

(** Extend [env] in all ways that make the pattern match the value. *)
val match_value : index -> env -> Ast.expr -> Value.t -> env list

(** Solve one fact against candidate environments. *)
val solve_fact : index -> env list -> Ast.fact -> env list

(** Solve all premises of a rule; the satisfying environments. *)
val solve_facts : index -> Ast.fact list -> env list
