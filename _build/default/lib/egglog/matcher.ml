(** E-matching: finding all substitutions under which a rule's premises hold
    in the current e-graph.

    The matcher works on a snapshot {!index} of the e-graph, built once per
    saturation iteration after {!Egraph.rebuild}: for every function we
    collect its canonical rows and index them by output e-class, so that
    nested patterns ([(Div (Mul ?x ?y) ?z)]) can look up the candidate child
    e-nodes in O(1).

    Premises (facts) are solved left to right over a list of candidate
    environments:
    - an application whose head is a declared function is a {e pattern}: it
      is matched against the function's rows (a relational join);
    - an application whose head is a primitive is {e evaluated}; in guard
      position it must produce [true];
    - [(= e1 e2 ...)] unifies the value of all [ei], binding variables that
      are still free.

    Variable conventions: [?x] is always a pattern variable; a bare name is
    resolved as a rule-local or global binding if one exists, and is
    otherwise treated as a pattern variable (Egglog "new syntax"). *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

module Env = Map.Make (String)

type env = Value.t Env.t

(* ------------------------------------------------------------------ *)
(* Snapshot index                                                      *)
(* ------------------------------------------------------------------ *)

type rows = { all : (Value.t array * Value.t) list; by_output : (int, (Value.t array * Value.t) list) Hashtbl.t }

type index = {
  eg : Egraph.t;
  globals : (string, Value.t) Hashtbl.t;
  funcs : rows Symbol.Tbl.t;
}

(** Build a matching snapshot.  [eg] must be rebuilt (congruence restored).
    [globals] are the interpreter's top-level let-bindings. *)
let make_index eg globals : index =
  let funcs = Symbol.Tbl.create 64 in
  List.iter
    (fun (f : Egraph.func) ->
      let all = Egraph.fold_rows eg f [] (fun acc args out -> (args, out) :: acc) in
      let by_output = Hashtbl.create (List.length all) in
      List.iter
        (fun ((_, out) as row) ->
          match out with
          | Value.Eclass id ->
            let id = Egraph.find_class eg id in
            Hashtbl.replace by_output id (row :: Option.value ~default:[] (Hashtbl.find_opt by_output id))
          | _ -> ())
        all;
      Symbol.Tbl.replace funcs f.sym { all; by_output })
    (Egraph.functions eg);
  { eg; globals; funcs }

let rows_of idx sym =
  match Symbol.Tbl.find_opt idx.funcs sym with
  | Some r -> r
  | None -> error "unknown function %s in pattern" (Symbol.name sym)

let rows_with_output idx sym cls =
  let r = rows_of idx sym in
  Option.value ~default:[] (Hashtbl.find_opt r.by_output (Egraph.find_class idx.eg cls))

(* ------------------------------------------------------------------ *)
(* Variable resolution                                                 *)
(* ------------------------------------------------------------------ *)

let is_pattern_var name = String.length name > 0 && name.[0] = '?'

(** Resolve name [x] under [env]: rule-local binding first, then globals. *)
let resolve idx env x =
  match Env.find_opt x env with
  | Some v -> Some v
  | None -> if is_pattern_var x then None else Hashtbl.find_opt idx.globals x

let values_equal idx a b =
  Value.equal (Egraph.canon idx.eg a) (Egraph.canon idx.eg b)

(* ------------------------------------------------------------------ *)
(* Expression evaluation (ground expressions inside premises)          *)
(* ------------------------------------------------------------------ *)

(** Try to evaluate [e] to a value under [env].  Returns [None] when the
    expression mentions an unbound variable, a missing table row, or a
    primitive error — all of which mean "this premise does not (yet) hold".
    Constructor applications are {e looked up}, never created: premises must
    not mutate the e-graph. *)
let rec eval_opt idx env (e : Ast.expr) : Value.t option =
  match e with
  | Var x -> resolve idx env x
  | Wildcard -> None
  | Lit l -> Some (value_of_lit l)
  | Call (f, args) -> (
    let rec eval_args acc = function
      | [] -> Some (List.rev acc)
      | a :: rest -> (
        match eval_opt idx env a with
        | Some v -> eval_args (v :: acc) rest
        | None -> None)
    in
    match eval_args [] args with
    | None -> None
    | Some vals -> (
      if Primitives.is_primitive f then
        try Some (Primitives.apply f vals) with Primitives.Error _ -> None
      else
        match Egraph.find_func_opt idx.eg (Symbol.intern f) with
        | Some fn -> Egraph.lookup idx.eg fn (Array.of_list vals)
        | None -> error "unknown function or primitive %s" f))

and value_of_lit : Ast.lit -> Value.t = function
  | L_i64 n -> I64 n
  | L_f64 f -> F64 f
  | L_string s -> Str s
  | L_bool b -> Bool b
  | L_unit -> Unit

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

(** [match_value idx env pat v] extends [env] in all ways that make [pat]
    match the (canonical) value [v]. *)
let rec match_value idx env (pat : Ast.expr) (v : Value.t) : env list =
  match pat with
  | Wildcard -> [ env ]
  | Lit l -> if values_equal idx (value_of_lit l) v then [ env ] else []
  | Var x -> (
    match resolve idx env x with
    | Some bound -> if values_equal idx bound v then [ env ] else []
    | None -> [ Env.add x (Egraph.canon idx.eg v) env ])
  | Call ("vec-of", pats) -> (
    (* destructuring vector pattern *)
    match v with
    | Vec elems when Array.length elems = List.length pats ->
      List.fold_left
        (fun envs (i, p) ->
          List.concat_map (fun env -> match_value idx env p elems.(i)) envs)
        [ env ]
        (List.mapi (fun i p -> (i, p)) pats)
    | _ -> [])
  | Call (f, _) when Primitives.is_primitive f -> (
    (* computed sub-expression: evaluate and compare *)
    match eval_opt idx env pat with
    | Some pv -> if values_equal idx pv v then [ env ] else []
    | None -> [])
  | Call (f, arg_pats) -> (
    (* child e-node pattern: v must be an e-class containing an f-node *)
    match v with
    | Eclass cls ->
      let sym = Symbol.intern f in
      if not (Symbol.Tbl.mem idx.funcs sym) then
        error "unknown function or primitive %s" f;
      List.concat_map
        (fun (args, _) -> match_args idx env arg_pats args)
        (rows_with_output idx sym cls)
    | _ -> [])

and match_args idx env (pats : Ast.expr list) (args : Value.t array) : env list =
  if List.length pats <> Array.length args then []
  else
    let rec go envs i = function
      | [] -> envs
      | p :: rest ->
        let envs = List.concat_map (fun env -> match_value idx env p args.(i)) envs in
        if envs = [] then [] else go envs (i + 1) rest
    in
    go [ env ] 0 pats

(** Match a top-level pattern [(f pats)] against every row of [f], yielding
    [(env, output)] pairs. *)
let match_rooted idx env (f : string) (arg_pats : Ast.expr list) :
    (env * Value.t) list =
  let sym = Symbol.intern f in
  let rows = rows_of idx sym in
  List.concat_map
    (fun (args, out) ->
      List.map (fun env -> (env, out)) (match_args idx env arg_pats args))
    rows.all

(* ------------------------------------------------------------------ *)
(* Fact solving                                                        *)
(* ------------------------------------------------------------------ *)

(** Can [e] be evaluated directly (no free variables)? *)
let rec is_ground idx env (e : Ast.expr) =
  match e with
  | Var x -> resolve idx env x <> None
  | Wildcard -> false
  | Lit _ -> true
  | Call (_, args) -> List.for_all (is_ground idx env) args

(** [solve_expr idx env e target] produces environments under which [e]
    holds.  With [target = Some v], [e] must match/evaluate to [v]; the
    returned value component is the value of [e]. *)
let solve_expr idx env (e : Ast.expr) ~(target : Value.t option) :
    (env * Value.t) list =
  match (e, target) with
  | Var x, Some v -> (
    match resolve idx env x with
    | Some bound -> if values_equal idx bound v then [ (env, v) ] else []
    | None -> [ (Env.add x (Egraph.canon idx.eg v) env, v) ])
  | Wildcard, Some v -> [ (env, v) ]
  | Var x, None -> (
    match resolve idx env x with
    | Some v -> [ (env, v) ]
    | None -> error "unconstrained variable in fact: %a" Ast.pp_expr e)
  | Wildcard, None -> error "unconstrained wildcard in fact"
  | Lit l, _ -> (
    let v = value_of_lit l in
    match target with
    | Some tv -> if values_equal idx v tv then [ (env, v) ] else []
    | None -> [ (env, v) ])
  | Call (f, _), _ when Primitives.is_primitive f -> (
    match eval_opt idx env e with
    | None ->
      (* special case: destructuring (vec-of ?a ?b) against a known target *)
      if f = "vec-of" then
        match target with
        | Some v -> List.map (fun env -> (env, v)) (match_value idx env e v)
        | None -> []
      else []
    | Some v -> (
      match target with
      | Some tv -> if values_equal idx v tv then [ (env, v) ] else []
      | None -> [ (env, v) ]))
  | Call (f, arg_pats), Some v ->
    List.map (fun env -> (env, v)) (match_value idx env (Call (f, arg_pats)) v)
  | Call (f, arg_pats), None ->
    if is_ground idx env e then
      (* ground table application: lookup *)
      match eval_opt idx env e with Some v -> [ (env, v) ] | None -> []
    else match_rooted idx env f arg_pats

(** [solve_fact idx envs fact] filters/extends candidate environments. *)
let solve_fact idx (envs : env list) (fact : Ast.fact) : env list =
  match fact with
  | F_expr e ->
    List.concat_map
      (fun env ->
        let results = solve_expr idx env e ~target:None in
        (* guard position: a primitive producing a boolean must be true *)
        List.filter_map
          (fun (env, v) ->
            match v with Value.Bool b -> if b then Some env else None | _ -> Some env)
          results)
      envs
  | F_eq exprs ->
    (* process conjuncts left to right, sharing one target value; a bare
       variable seen before the target is known is deferred and bound at
       the end *)
    List.concat_map
      (fun env ->
        let rec go env (target : Value.t option) pending = function
          | [] -> (
            match target with
            | None -> error "unconstrained (=) fact"
            | Some v ->
              let envs =
                List.fold_left
                  (fun envs p ->
                    List.concat_map
                      (fun env ->
                        List.map fst (solve_expr idx env p ~target:(Some v)))
                      envs)
                  [ env ] pending
              in
              envs)
          | e :: rest -> (
            match e with
            | Ast.Var x when resolve idx env x = None && target = None ->
              go env target (e :: pending) rest
            | _ ->
              let results = solve_expr idx env e ~target in
              List.concat_map (fun (env, v) -> go env (Some v) pending rest) results)
        in
        go env None [] exprs)
      envs

(** Solve all premises of a rule; returns the satisfying environments. *)
let solve_facts idx (facts : Ast.fact list) : env list =
  List.fold_left (fun envs f -> if envs = [] then [] else solve_fact idx envs f) [ Env.empty ] facts
