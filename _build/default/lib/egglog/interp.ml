(** The Egglog command interpreter: executes programs against an e-graph.

    This is the engine façade used by DialEgg: feed it commands (parsed from
    [.egg] text or built programmatically), then inspect extraction results
    and saturation statistics. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type rule = {
  r_name : string;
  r_facts : Ast.fact list;
  r_actions : Ast.action list;
  r_ruleset : string option;  (** [None] = the default ruleset *)
  r_refs : Symbol.t list;  (** function tables the premises read *)
  mutable r_last_scan : int;  (** e-graph clock at the last match scan *)
}

(** Why a [(run n)] stopped. *)
type stop_reason = Saturated | Iteration_limit | Node_limit | Timeout

let pp_stop_reason ppf = function
  | Saturated -> Fmt.string ppf "saturated"
  | Iteration_limit -> Fmt.string ppf "iteration limit"
  | Node_limit -> Fmt.string ppf "node limit"
  | Timeout -> Fmt.string ppf "timeout"

type run_stats = {
  mutable iterations : int;
  mutable matches : int;  (** total rule matches applied *)
  mutable sat_time : float;  (** seconds spent in [(run n)] *)
  mutable stop : stop_reason;
}

type output =
  | O_extracted of Extract.term * int  (** term and its cost *)
  | O_variants of (Extract.term * int) list  (** cheapest-first variants *)
  | O_checked
  | O_ran of run_stats
  | O_msg of string

type t = {
  mutable eg : Egraph.t;
  mutable globals : (string, Value.t) Hashtbl.t;
  mutable rules : rule list;  (** in registration order *)
  mutable rulesets : string list;  (** declared ruleset names *)
  mutable rule_counter : int;
  mutable max_nodes : int;  (** node budget for saturation *)
  mutable timeout : float option;  (** wall-clock budget for one [(run)] *)
  mutable last_stats : run_stats option;
  mutable outputs : output list;  (** reverse order *)
  mutable snapshots : snapshot list;  (** push/pop stack *)
  mutable disable_dirty_skip : bool;
      (** testing/ablation: always rescan every rule *)
}

and snapshot = {
  s_eg : Egraph.t;
  s_globals : (string, Value.t) Hashtbl.t;
  s_rules : rule list;
  s_rulesets : string list;
}

let create ?(max_nodes = 200_000) ?timeout () =
  {
    eg = Egraph.create ();
    globals = Hashtbl.create 64;
    rules = [];
    rulesets = [];
    rule_counter = 0;
    max_nodes;
    timeout;
    last_stats = None;
    outputs = [];
    snapshots = [];
    disable_dirty_skip = false;
  }

let set_disable_dirty_skip t b = t.disable_dirty_skip <- b
let egraph t = t.eg
let globals t = t.globals

(** Value of global let-binding [x]. *)
let global t x =
  match Hashtbl.find_opt t.globals x with
  | Some v -> v
  | None -> error "unknown global %s" x

let global_opt t x = Hashtbl.find_opt t.globals x

(* ------------------------------------------------------------------ *)
(* Expression evaluation in action position (may create e-nodes)       *)
(* ------------------------------------------------------------------ *)

let rec eval t (env : Matcher.env) (e : Ast.expr) : Value.t =
  match e with
  | Var x -> (
    match Matcher.Env.find_opt x env with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt t.globals x with
      | Some v -> v
      | None -> error "unbound name %s" x))
  | Wildcard -> error "wildcard in expression position"
  | Lit l -> Matcher.value_of_lit l
  | Call (f, args) ->
    let vals = List.map (eval t env) args in
    if Primitives.is_primitive f then
      try Primitives.apply f vals
      with Primitives.Error msg -> error "primitive error: %s" msg
    else begin
      let fn = Egraph.find_func t.eg (Symbol.intern f) in
      match Egraph.apply t.eg fn (Array.of_list vals) with
      | Some v -> v
      | None ->
        error "(%s ...) has no defined output (use set before reading it)" f
    end

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let rec run_action t (env : Matcher.env) (a : Ast.action) : Matcher.env =
  match a with
  | A_let (x, e) ->
    let v = eval t env e in
    Matcher.Env.add x v env
  | A_union (a, b) ->
    let va = eval t env a and vb = eval t env b in
    Egraph.union_values t.eg va vb;
    env
  | A_set (Call (f, args), rhs) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    let out = eval t env rhs in
    Egraph.set t.eg fn (Array.of_list vals) out;
    env
  | A_set (e, _) -> error "set expects a function application, got %a" Ast.pp_expr e
  | A_expr e ->
    ignore (eval t env e);
    env
  | A_cost (Call (f, args), c) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    (* make sure the e-node exists, then attach the cost override *)
    ignore (Egraph.apply t.eg fn (Array.of_list vals));
    let cost =
      match eval t env c with
      | I64 n -> Int64.to_int n
      | v -> error "unstable-cost expects an i64 cost, got %a" Value.pp v
    in
    Egraph.set_cost t.eg fn (Array.of_list vals) cost;
    env
  | A_cost (e, _) -> error "unstable-cost expects an e-node application, got %a" Ast.pp_expr e
  | A_delete (Call (f, args)) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    Egraph.delete t.eg fn (Array.of_list vals);
    env
  | A_delete e -> error "delete expects a function application, got %a" Ast.pp_expr e
  | A_panic msg -> error "panic: %s" msg

and run_actions t env actions = ignore (List.fold_left (run_action t) env actions)

(* ------------------------------------------------------------------ *)
(* Saturation                                                          *)
(* ------------------------------------------------------------------ *)

(** Run one saturation iteration: match every rule against a snapshot of the
    e-graph, apply all matches, then rebuild.  Returns the number of matches
    applied. *)
let run_iteration ?ruleset t : int =
  Egraph.rebuild t.eg;
  let scan_clock = Egraph.clock t.eg in
  let idx = Matcher.make_index t.eg t.globals in
  let selected =
    List.filter
      (fun r ->
        r.r_ruleset = ruleset
        && (* dirty-table skipping: re-scan only if some referenced table
              changed since this rule's last scan (a rule with no table
              references scans once) *)
        (t.disable_dirty_skip || r.r_last_scan < 0
        || List.exists
             (fun sym ->
               match Egraph.find_func_opt t.eg sym with
               | Some f -> f.Egraph.last_modified > r.r_last_scan
               | None -> true)
             r.r_refs))
      t.rules
  in
  let batches =
    List.map
      (fun r ->
        let envs = Matcher.solve_facts idx r.r_facts in
        r.r_last_scan <- scan_clock;
        (r, envs))
      selected
  in
  let n =
    List.fold_left
      (fun acc (r, envs) ->
        List.iter (fun env -> run_actions t env r.r_actions) envs;
        acc + List.length envs)
      0 batches
  in
  Egraph.rebuild t.eg;
  n

(** [run t n] saturates: repeats {!run_iteration} until the e-graph stops
    changing, or [n] iterations, the node budget, or the timeout is hit.
    With [?ruleset], only rules registered in that ruleset run. *)
let run ?ruleset t n : run_stats =
  let stats = { iterations = 0; matches = 0; sat_time = 0.; stop = Saturated } in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) t.timeout in
  (try
     let continue = ref true in
     while !continue do
       if stats.iterations >= n then begin
         stats.stop <- Iteration_limit;
         continue := false
       end
       else if Egraph.n_nodes t.eg > t.max_nodes then begin
         stats.stop <- Node_limit;
         continue := false
       end
       else if
         match deadline with
         | Some d -> Unix.gettimeofday () > d
         | None -> false
       then begin
         stats.stop <- Timeout;
         continue := false
       end
       else begin
         let before = Egraph.clock t.eg in
         let m = run_iteration ?ruleset t in
         stats.iterations <- stats.iterations + 1;
         stats.matches <- stats.matches + m;
         if Egraph.clock t.eg = before then begin
           stats.stop <- Saturated;
           continue := false
         end
       end
     done
   with e ->
     stats.sat_time <- Unix.gettimeofday () -. t0;
     t.last_stats <- Some stats;
     raise e);
  stats.sat_time <- Unix.gettimeofday () -. t0;
  t.last_stats <- Some stats;
  stats

(* ------------------------------------------------------------------ *)
(* Command execution                                                   *)
(* ------------------------------------------------------------------ *)

let make_merge_fn (e : Ast.expr) : Value.t -> Value.t -> Value.t =
  let rec ev env (e : Ast.expr) : Value.t =
    match e with
    | Var "old" -> fst env
    | Var "new" -> snd env
    | Lit l -> Matcher.value_of_lit l
    | Call (f, args) when Primitives.is_primitive f ->
      Primitives.apply f (List.map (ev env) args)
    | _ -> error "unsupported :merge expression %a" Ast.pp_expr e
  in
  fun old_v new_v -> ev (old_v, new_v) e

let declare_function t (d : Ast.func_decl) =
  ignore
    (Egraph.declare_function t.eg ~name:d.f_name ~args:d.f_args ~ret:d.f_ret
       ~cost:d.f_cost
       ~merge:(Option.map make_merge_fn d.f_merge)
       ~unextractable:d.f_unextractable)

(* function tables referenced by a rule's premises: a rule can only gain
   new matches after one of these tables changes (insert, output change,
   delete, or canonicalization after a union) *)
let fact_refs (facts : Ast.fact list) : Symbol.t list =
  let acc = ref [] in
  let rec go_expr (e : Ast.expr) =
    match e with
    | Call (f, args) ->
      if not (Primitives.is_primitive f) then begin
        let sym = Symbol.intern f in
        if not (List.exists (Symbol.equal sym) !acc) then acc := sym :: !acc
      end;
      List.iter go_expr args
    | Var _ | Wildcard | Lit _ -> ()
  in
  List.iter
    (function Ast.F_eq es -> List.iter go_expr es | Ast.F_expr e -> go_expr e)
    facts;
  !acc

let check_ruleset t = function
  | None -> ()
  | Some rs -> if not (List.mem rs t.rulesets) then error "unknown ruleset %s" rs

let add_rule t ?name ?ruleset facts actions =
  check_ruleset t ruleset;
  t.rule_counter <- t.rule_counter + 1;
  let r_name =
    match name with Some n -> n | None -> Printf.sprintf "rule-%d" t.rule_counter
  in
  t.rules <-
    t.rules
    @ [
        {
          r_name;
          r_facts = facts;
          r_actions = actions;
          r_ruleset = ruleset;
          r_refs = fact_refs facts;
          r_last_scan = -1;
        };
      ]

(** Desugar [(rewrite lhs rhs :when conds)] into a rule. *)
let add_rewrite t ?ruleset ~(lhs : Ast.expr) ~(rhs : Ast.expr) ~(conds : Ast.fact list) () =
  let root = "?__rewrite_root" in
  add_rule t ?ruleset
    (Ast.F_eq [ Var root; lhs ] :: conds)
    [ Ast.A_union (Var root, rhs) ]

let emit t o = t.outputs <- o :: t.outputs

let run_command t (c : Ast.command) : unit =
  match c with
  | C_sort (name, None) -> Egraph.declare_sort t.eg name
  | C_sort (name, Some ("Vec", [ elem ])) -> Egraph.declare_vec_sort t.eg name elem
  | C_sort (_, Some (container, _)) -> error "unsupported container sort %s" container
  | C_datatype (name, variants) ->
    if not (Egraph.sort_declared t.eg name) then Egraph.declare_sort t.eg name;
    List.iter
      (fun (v : Ast.variant) ->
        declare_function t
          {
            f_name = v.v_name;
            f_args = v.v_args;
            f_ret = name;
            f_cost = v.v_cost;
            f_merge = None;
            f_unextractable = false;
          })
      variants
  | C_function d ->
    if not (Egraph.sort_declared t.eg d.f_ret) then
      error "function %s: unknown return sort %s" d.f_name d.f_ret;
    declare_function t d
  | C_relation (name, args) ->
    declare_function t
      {
        f_name = name;
        f_args = args;
        f_ret = "Unit";
        f_cost = None;
        f_merge = None;
        f_unextractable = false;
      }
  | C_let (x, e) ->
    if Hashtbl.mem t.globals x then error "global %s already defined" x;
    let v = eval t Matcher.Env.empty e in
    Hashtbl.replace t.globals x v
  | C_ruleset name ->
    if List.mem name t.rulesets then error "ruleset %s already declared" name;
    t.rulesets <- t.rulesets @ [ name ]
  | C_rewrite { lhs; rhs; conds; bidirectional; ruleset } ->
    check_ruleset t ruleset;
    add_rewrite t ?ruleset ~lhs ~rhs ~conds ();
    if bidirectional then add_rewrite t ?ruleset ~lhs:rhs ~rhs:lhs ~conds ()
  | C_rule { name; facts; actions; ruleset } -> add_rule t ?name ?ruleset facts actions
  | C_action a ->
    ignore (run_action t Matcher.Env.empty a);
    Egraph.rebuild t.eg
  | C_run (n, ruleset) ->
    check_ruleset t ruleset;
    let stats = run ?ruleset t n in
    emit t (O_ran stats)
  | C_extract (e, n) ->
    let v = eval t Matcher.Env.empty e in
    Egraph.rebuild t.eg;
    if n <= 1 then begin
      let term, cost = Extract.extract t.eg v in
      emit t (O_extracted (term, cost))
    end
    else begin
      let st = Extract.make t.eg in
      match Egraph.canon t.eg v with
      | Eclass cls -> emit t (O_variants (Extract.variants st cls n))
      | prim -> emit t (O_variants [ (Extract.prim prim, 0) ])
    end
  | C_check facts ->
    Egraph.rebuild t.eg;
    let idx = Matcher.make_index t.eg t.globals in
    let envs = Matcher.solve_facts idx facts in
    if envs = [] then
      error "check failed: %a" Fmt.(list ~sep:sp Ast.pp_fact) facts
    else emit t O_checked
  | C_print_function (name, n) ->
    let fn = Egraph.find_func t.eg (Symbol.intern name) in
    let buf = Buffer.create 256 in
    let count = ref 0 in
    Egraph.iter_rows t.eg fn (fun args out ->
        if !count < n then begin
          incr count;
          Buffer.add_string buf
            (Fmt.str "(%s %a) -> %a\n" name
               Fmt.(array ~sep:sp Value.pp)
               args Value.pp out)
        end);
    emit t (O_msg (Buffer.contents buf))
  | C_print_stats -> emit t (O_msg (Fmt.str "%a" Egraph.pp_stats t.eg))
  | C_push ->
    t.snapshots <-
      {
        s_eg = Egraph.copy t.eg;
        s_globals = Hashtbl.copy t.globals;
        s_rules = t.rules;
        s_rulesets = t.rulesets;
      }
      :: t.snapshots
  | C_pop -> (
    match t.snapshots with
    | [] -> error "pop without a matching push"
    | s :: rest ->
      t.eg <- s.s_eg;
      t.globals <- s.s_globals;
      t.rules <- s.s_rules;
      t.rulesets <- s.s_rulesets;
      t.snapshots <- rest)

(** Execute a list of commands; outputs are appended to [t.outputs]. *)
let run_commands t cmds = List.iter (run_command t) cmds

(** Execute Egglog source text. *)
let run_string t src = run_commands t (Parser.parse_program src)

(** Outputs in execution order. *)
let outputs t = List.rev t.outputs

(** The last extraction result, if any. *)
let last_extracted t =
  List.find_map (function O_extracted (term, cost) -> Some (term, cost) | _ -> None) t.outputs

(** The most recent saturation statistics, if any. *)
let last_stats t = t.last_stats

(** Convenience: parse and run a complete program in a fresh engine. *)
let run_program ?max_nodes ?timeout (src : string) : t * output list =
  let t = create ?max_nodes ?timeout () in
  run_string t src;
  (t, outputs t)
