(** Interned symbols.

    Symbols are strings interned into a global table so that equality and
    hashing are O(1) integer operations.  The Egglog engine uses symbols for
    function names, sort names and rule names, all of which are compared very
    frequently during e-matching. *)

type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 256
let next_id = ref 0

(** [intern name] returns the unique symbol for [name]. *)
let intern name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
    let s = { id = !next_id; name } in
    incr next_id;
    Hashtbl.add table name s;
    s

(** [name s] is the string this symbol was interned from. *)
let name s = s.name

(** [id s] is the unique integer identifier of [s]. *)
let id s = s.id

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash s = s.id
let pp ppf s = Fmt.string ppf s.name

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
