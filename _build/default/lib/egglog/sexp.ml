(** S-expressions: the concrete syntax of Egglog programs.

    The reader supports:
    - atoms (bare tokens),
    - double-quoted strings with backslash escapes (n, t, backslash, quote),
    - line comments starting with [;],
    - nested lists in parentheses or square brackets.

    Atoms carry no interpretation here; the Egglog parser (see {!Parser})
    decides whether an atom is a number, a variable or an identifier. *)

type t =
  | Atom of string
  | Str of string  (** a double-quoted string literal, unescaped *)
  | List of t list

exception Parse_error of { pos : int; line : int; msg : string }

let parse_error pos line msg = raise (Parse_error { pos; line; msg })

type reader = { src : string; mutable pos : int; mutable line : int }

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let advance r =
  (if r.pos < String.length r.src && r.src.[r.pos] = '\n' then r.line <- r.line + 1);
  r.pos <- r.pos + 1

let rec skip_ws r =
  match peek r with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance r;
    skip_ws r
  | Some ';' ->
    let rec to_eol () =
      match peek r with
      | Some '\n' | None -> ()
      | Some _ ->
        advance r;
        to_eol ()
    in
    to_eol ();
    skip_ws r
  | _ -> ()

let is_atom_char c =
  match c with
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '[' | ']' | ';' | '"' -> false
  | _ -> true

let read_string r =
  advance r (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek r with
    | None -> parse_error r.pos r.line "unterminated string literal"
    | Some '"' ->
      advance r;
      Buffer.contents buf
    | Some '\\' ->
      advance r;
      (match peek r with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some c -> parse_error r.pos r.line (Printf.sprintf "invalid escape \\%c" c)
      | None -> parse_error r.pos r.line "unterminated escape");
      advance r;
      go ()
    | Some c ->
      advance r;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let read_atom r =
  let start = r.pos in
  let rec go () =
    match peek r with
    | Some c when is_atom_char c ->
      advance r;
      go ()
    | _ -> ()
  in
  go ();
  String.sub r.src start (r.pos - start)

let rec read_sexp r =
  skip_ws r;
  match peek r with
  | None -> parse_error r.pos r.line "unexpected end of input"
  | Some '(' | Some '[' ->
    let close = if r.src.[r.pos] = '(' then ')' else ']' in
    advance r;
    let items = ref [] in
    let rec loop () =
      skip_ws r;
      match peek r with
      | None -> parse_error r.pos r.line "unterminated list"
      | Some c when c = close ->
        advance r;
        List (List.rev !items)
      | Some (')' | ']') -> parse_error r.pos r.line "mismatched bracket"
      | Some _ ->
        items := read_sexp r :: !items;
        loop ()
    in
    loop ()
  | Some (')' | ']') -> parse_error r.pos r.line "unexpected closing bracket"
  | Some '"' -> Str (read_string r)
  | Some _ ->
    let a = read_atom r in
    if a = "" then parse_error r.pos r.line "empty atom";
    Atom a

(** [parse_string src] parses all top-level s-expressions in [src]. *)
let parse_string src : t list =
  let r = { src; pos = 0; line = 1 } in
  let rec go acc =
    skip_ws r;
    if r.pos >= String.length src then List.rev acc else go (read_sexp r :: acc)
  in
  go []

(** [parse_one src] parses exactly one s-expression. *)
let parse_one src : t =
  match parse_string src with
  | [ s ] -> [ s ] |> List.hd
  | [] -> parse_error 0 1 "no s-expression found"
  | _ -> parse_error 0 1 "expected a single s-expression"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Atom a -> Fmt.string ppf a
  | Str s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | List items -> Fmt.pf ppf "(@[<hov>%a@])" (Fmt.list ~sep:Fmt.sp pp) items

let to_string s = Fmt.str "%a" pp s
