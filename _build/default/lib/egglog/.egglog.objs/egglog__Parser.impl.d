lib/egglog/parser.ml: Ast Fmt Int64 List Option Sexp String
