lib/egglog/extract.ml: Array Egraph Fmt Hashtbl Int List Option Printf Sexp String Symbol Value
