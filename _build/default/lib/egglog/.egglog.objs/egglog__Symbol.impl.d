lib/egglog/symbol.ml: Fmt Hashtbl Int Map
