lib/egglog/matcher.mli: Ast Egraph Hashtbl Map Value
