lib/egglog/union_find.mli:
