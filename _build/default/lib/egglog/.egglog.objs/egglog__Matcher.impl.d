lib/egglog/matcher.ml: Array Ast Egraph Fmt Hashtbl List Map Option Primitives String Symbol Value
