lib/egglog/value.ml: Array Bool Float Fmt Hashtbl Int Int64 String Union_find
