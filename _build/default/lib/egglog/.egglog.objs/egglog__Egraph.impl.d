lib/egglog/egraph.ml: Array Fmt Hashtbl List Symbol Union_find Value
