lib/egglog/interp.ml: Array Ast Buffer Egraph Extract Fmt Hashtbl Int64 List Matcher Option Parser Primitives Printf Symbol Unix Value
