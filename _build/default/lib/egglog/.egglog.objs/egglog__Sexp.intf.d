lib/egglog/sexp.mli: Format
