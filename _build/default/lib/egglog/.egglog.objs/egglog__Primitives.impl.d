lib/egglog/primitives.ml: Array Float Fmt Int64 String Value
