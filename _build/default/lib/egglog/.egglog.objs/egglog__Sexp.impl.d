lib/egglog/sexp.ml: Buffer Fmt List Printf String
