lib/egglog/egraph.mli: Format Hashtbl Symbol Union_find Value
