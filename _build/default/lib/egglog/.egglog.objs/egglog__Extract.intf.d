lib/egglog/extract.mli: Egraph Format Symbol Value
