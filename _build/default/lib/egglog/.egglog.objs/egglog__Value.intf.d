lib/egglog/value.mli: Format Hashtbl Union_find
