lib/egglog/ast.ml: Hashtbl Int64 List Printf Sexp String
