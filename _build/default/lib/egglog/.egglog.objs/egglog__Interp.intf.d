lib/egglog/interp.mli: Ast Egraph Extract Format Hashtbl Matcher Symbol Value
