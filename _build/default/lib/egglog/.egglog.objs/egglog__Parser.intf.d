lib/egglog/parser.mli: Ast
