lib/egglog/union_find.ml: Array Fun
