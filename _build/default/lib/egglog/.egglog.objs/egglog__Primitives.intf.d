lib/egglog/primitives.mli: Value
