lib/egglog/symbol.mli: Format Hashtbl Map
