(** S-expressions: the concrete syntax of Egglog programs.

    The reader supports atoms, double-quoted strings with backslash
    escapes, line comments starting with [;], and nested lists in
    parentheses or square brackets. *)

type t =
  | Atom of string
  | Str of string  (** a double-quoted string literal, unescaped *)
  | List of t list

exception Parse_error of { pos : int; line : int; msg : string }

(** Parse all top-level s-expressions in the input. *)
val parse_string : string -> t list

(** Parse exactly one s-expression.
    @raise Parse_error if there are zero or several. *)
val parse_one : string -> t

(** Escape a string for inclusion in a double-quoted literal. *)
val escape_string : string -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
