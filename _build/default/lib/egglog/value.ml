(** Runtime values of the Egglog engine.

    A value is either a primitive ([i64], [f64], [String], [bool], [unit]),
    a vector (the [Vec] container sort, whose elements may themselves be
    e-class references), or a reference to an e-class.

    E-class references become stale when classes are unified; {!canonicalize}
    rewrites a value so that every embedded e-class id is the canonical
    representative.  All hash tables keyed by values must only store
    canonical values. *)

type t =
  | I64 of int64
  | F64 of float
  | Str of string
  | Bool of bool
  | Unit
  | Vec of t array
  | Eclass of int  (** reference to an e-class, by id *)

let rec equal a b =
  match (a, b) with
  | I64 x, I64 y -> Int64.equal x y
  | F64 x, F64 y -> Float.equal x y (* bitwise-ish: NaN = NaN, distinguishes signed zero *)
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Unit, Unit -> true
  | Vec x, Vec y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i xi -> if not (equal xi y.(i)) then ok := false) x;
        !ok)
  | Eclass x, Eclass y -> Int.equal x y
  | _ -> false

let rec hash v =
  match v with
  | I64 x -> Hashtbl.hash (0, x)
  | F64 x -> Hashtbl.hash (1, x)
  | Str x -> Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)
  | Unit -> Hashtbl.hash 4
  | Vec x -> Array.fold_left (fun acc e -> (acc * 31) + hash e) 5 x
  | Eclass x -> Hashtbl.hash (6, x)

(** [canonicalize uf v] replaces every e-class id inside [v] (including inside
    vectors, recursively) with its canonical representative. *)
let rec canonicalize uf v =
  match v with
  | Eclass id ->
    let id' = Union_find.find uf id in
    if id' = id then v else Eclass id'
  | Vec elems ->
    let changed = ref false in
    let elems' =
      Array.map
        (fun e ->
          let e' = canonicalize uf e in
          if e' != e then changed := true;
          e')
        elems
    in
    if !changed then Vec elems' else v
  | _ -> v

(** [is_canonical uf v] is true iff [canonicalize uf v] would be a no-op. *)
let rec is_canonical uf v =
  match v with
  | Eclass id -> Union_find.is_canonical uf id
  | Vec elems -> Array.for_all (is_canonical uf) elems
  | _ -> true

(** E-class ids mentioned anywhere inside [v], in order. *)
let rec eclasses v acc =
  match v with
  | Eclass id -> id :: acc
  | Vec elems -> Array.fold_left (fun acc e -> eclasses e acc) acc elems
  | _ -> acc

let rec pp ppf = function
  | I64 x -> Fmt.pf ppf "%Ld" x
  | F64 x -> Fmt.pf ppf "%h" x
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Unit -> Fmt.string ppf "()"
  | Vec elems -> Fmt.pf ppf "(vec-of %a)" Fmt.(array ~sep:sp pp) elems
  | Eclass id -> Fmt.pf ppf "$%d" id

let to_string v = Fmt.str "%a" pp v

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Hash table keyed by value arrays (function-table keys). *)
module Args_tbl = Hashtbl.Make (struct
  type nonrec t = t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let ok = ref true in
    Array.iteri (fun i ai -> if not (equal ai b.(i)) then ok := false) a;
    !ok

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + hash v) 17 a
end)
