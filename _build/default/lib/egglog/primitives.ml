(** Built-in primitive operations of the Egglog language.

    Primitives are pure functions over {!Value.t}; they never touch the
    e-graph.  Arithmetic comparison operators are polymorphic over [i64] and
    [f64], matching Egglog's behaviour closely enough for the DialEgg
    subset.  Unknown names are not primitives — the interpreter then treats
    the application as a function-table operation. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

open Value

let as_f64 = function F64 x -> x | v -> error "expected f64, got %a" Value.pp v

let num2 name fi ff a b =
  match (a, b) with
  | I64 x, I64 y -> fi x y
  | F64 x, F64 y -> ff x y
  | _ -> error "%s: mixed or non-numeric operands (%a, %a)" name Value.pp a Value.pp b

let arith2 name fi ff a b =
  num2 name (fun x y -> I64 (fi x y)) (fun x y -> F64 (ff x y)) a b

let cmp2 name fi ff a b =
  num2 name (fun x y -> Bool (fi x y)) (fun x y -> Bool (ff x y)) a b

let i64_pow base expn =
  if Int64.compare expn 0L < 0 then error "pow: negative exponent %Ld" expn;
  let rec go acc base expn =
    if Int64.equal expn 0L then acc
    else
      go
        (if Int64.rem expn 2L = 1L then Int64.mul acc base else acc)
        (Int64.mul base base) (Int64.div expn 2L)
  in
  go 1L base expn

let i64_log2 n =
  if Int64.compare n 0L <= 0 then error "log2: non-positive argument %Ld" n;
  let rec go acc n = if Int64.compare n 1L <= 0 then acc else go (acc + 1) (Int64.shift_right_logical n 1) in
  Int64.of_int (go 0 n)

let checked_div name a b = if Int64.equal b 0L then error "%s: division by zero" name else Int64.div a b
let checked_rem name a b = if Int64.equal b 0L then error "%s: modulo by zero" name else Int64.rem a b

(** [is_primitive name] is true if [name] denotes a primitive operation. *)
let is_primitive name =
  match name with
  | "+" | "-" | "*" | "/" | "%" | "min" | "max" | "abs" | "neg"
  | "<" | "<=" | ">" | ">=" | "!=" | "==" | "log2" | "pow" | "sqrt"
  | "<<" | ">>" | "&" | "|" | "^" | "not" | "and" | "or" | "xor"
  | "to-f64" | "to-i64" | "to-string" | "f64-to-i64-bits" | "i64-bits-to-f64"
  | "vec-of" | "vec-empty" | "vec-push" | "vec-pop" | "vec-get" | "vec-length"
  | "vec-append" | "vec-contains" | "vec-set"
  | "str-concat" | "str-length" -> true
  | _ -> false

(** [apply name args] evaluates primitive [name] on [args].
    Raises {!Error} on sort mismatch or invalid input (e.g. division by
    zero, out-of-bounds [vec-get]); the rule engine treats such errors as a
    failed premise. *)
let apply name (args : Value.t list) : Value.t =
  match (name, args) with
  | "+", [ Str a; Str b ] -> Str (a ^ b)
  | "+", [ a; b ] -> arith2 "+" Int64.add Float.add a b
  | "-", [ a ] -> (match a with I64 x -> I64 (Int64.neg x) | _ -> F64 (-.as_f64 a))
  | "-", [ a; b ] -> arith2 "-" Int64.sub Float.sub a b
  | "*", [ a; b ] -> arith2 "*" Int64.mul Float.mul a b
  | "/", [ a; b ] -> arith2 "/" (checked_div "/") Float.div a b
  | "%", [ a; b ] -> arith2 "%" (checked_rem "%") Float.rem a b
  | "min", [ a; b ] -> arith2 "min" Int64.min Float.min a b
  | "max", [ a; b ] -> arith2 "max" Int64.max Float.max a b
  | "abs", [ I64 x ] -> I64 (Int64.abs x)
  | "abs", [ F64 x ] -> F64 (Float.abs x)
  | "neg", [ I64 x ] -> I64 (Int64.neg x)
  | "neg", [ F64 x ] -> F64 (-.x)
  | "<", [ a; b ] -> cmp2 "<" (fun x y -> Int64.compare x y < 0) (fun x y -> x < y) a b
  | "<=", [ a; b ] -> cmp2 "<=" (fun x y -> Int64.compare x y <= 0) (fun x y -> x <= y) a b
  | ">", [ a; b ] -> cmp2 ">" (fun x y -> Int64.compare x y > 0) (fun x y -> x > y) a b
  | ">=", [ a; b ] -> cmp2 ">=" (fun x y -> Int64.compare x y >= 0) (fun x y -> x >= y) a b
  | "!=", [ a; b ] -> Bool (not (Value.equal a b))
  | "==", [ a; b ] -> Bool (Value.equal a b)
  | "log2", [ I64 n ] -> I64 (i64_log2 n)
  | "pow", [ I64 b; I64 e ] -> I64 (i64_pow b e)
  | "pow", [ F64 b; F64 e ] -> F64 (Float.pow b e)
  | "sqrt", [ F64 x ] -> F64 (Float.sqrt x)
  | "<<", [ I64 a; I64 b ] -> I64 (Int64.shift_left a (Int64.to_int b))
  | ">>", [ I64 a; I64 b ] -> I64 (Int64.shift_right a (Int64.to_int b))
  | "&", [ I64 a; I64 b ] -> I64 (Int64.logand a b)
  | "|", [ I64 a; I64 b ] -> I64 (Int64.logor a b)
  | "^", [ I64 a; I64 b ] -> I64 (Int64.logxor a b)
  | "not", [ Bool a ] -> Bool (not a)
  | "and", [ Bool a; Bool b ] -> Bool (a && b)
  | "or", [ Bool a; Bool b ] -> Bool (a || b)
  | "xor", [ Bool a; Bool b ] -> Bool (a <> b)
  | "to-f64", [ I64 x ] -> F64 (Int64.to_float x)
  | "to-i64", [ F64 x ] -> I64 (Int64.of_float x)
  | "to-string", [ v ] -> Str (Value.to_string v)
  | "f64-to-i64-bits", [ F64 x ] -> I64 (Int64.bits_of_float x)
  | "i64-bits-to-f64", [ I64 x ] -> F64 (Int64.float_of_bits x)
  | "vec-of", elems -> Vec (Array.of_list elems)
  | "vec-empty", [] -> Vec [||]
  | "vec-push", [ Vec v; x ] -> Vec (Array.append v [| x |])
  | "vec-pop", [ Vec v ] ->
    if Array.length v = 0 then error "vec-pop: empty vector"
    else Vec (Array.sub v 0 (Array.length v - 1))
  | "vec-get", [ Vec v; I64 i ] ->
    let i = Int64.to_int i in
    if i < 0 || i >= Array.length v then error "vec-get: index %d out of bounds" i
    else v.(i)
  | "vec-set", [ Vec v; I64 i; x ] ->
    let i = Int64.to_int i in
    if i < 0 || i >= Array.length v then error "vec-set: index %d out of bounds" i
    else begin
      let v' = Array.copy v in
      v'.(i) <- x;
      Vec v'
    end
  | "vec-length", [ Vec v ] -> I64 (Int64.of_int (Array.length v))
  | "vec-append", [ Vec a; Vec b ] -> Vec (Array.append a b)
  | "vec-contains", [ Vec v; x ] -> Bool (Array.exists (Value.equal x) v)
  | "str-concat", [ Str a; Str b ] -> Str (a ^ b)
  | "str-length", [ Str s ] -> I64 (Int64.of_int (String.length s))
  | _, _ -> error "primitive %s: invalid arguments (%a)" name Fmt.(list ~sep:comma Value.pp) args
