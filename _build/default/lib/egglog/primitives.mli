(** Built-in primitive operations ([+], [*], [log2], [pow], comparisons,
    vector operations, ...).  Pure functions over {!Value.t}; they never
    touch the e-graph.  Arithmetic and comparisons are polymorphic over
    [i64] and [f64]. *)

exception Error of string

(** Does [name] denote a primitive operation? *)
val is_primitive : string -> bool

(** Evaluate primitive [name] on the arguments.
    @raise Error on sort mismatch or invalid input (division by zero,
    out-of-bounds [vec-get], [log2] of a non-positive number); the rule
    engine treats such errors as a failed premise. *)
val apply : string -> Value.t list -> Value.t
