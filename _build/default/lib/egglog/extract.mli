(** Extraction: finding the lowest-cost term of an e-class.

    The cost of an e-node is its base cost (its [unstable-cost] override if
    set, else the constructor's [:cost], else 1) plus the costs of every
    referenced e-class — including classes nested inside vector values.
    Shared sub-DAGs are counted once per reference (tree cost), the
    standard equality-saturation approximation; {!dag_cost} reports the
    SSA-form cost with sharing.

    Per-class costs are computed by fixpoint from ⊤; classes with no finite
    derivation keep infinite cost and extracting them errors.  Extracted
    constructor terms record their e-class ([t_class]) and are memoized per
    class, so shared sub-terms are physically shared — DialEgg's
    de-eggifier relies on both properties. *)

exception Error of string

type term = { t_kind : kind; t_class : int option }

and kind =
  | Node of Symbol.t * term list  (** constructor application *)
  | Prim of Value.t  (** primitive leaf (never contains an e-class) *)
  | T_vec of term list  (** extracted vector value *)

val node : ?cls:int -> Symbol.t -> term list -> term
val prim : Value.t -> term
val t_vec : term list -> term

val pp_term : Format.formatter -> term -> unit
val term_to_string : term -> string
val term_equal : term -> term -> bool

(** Head symbol name of a constructor term. *)
val head : term -> string option

(** Child terms (arguments of a node, elements of a vector). *)
val children : term -> term list

(** An extractor: per-class best costs plus the extraction memo table. *)
type t

(** Build an extractor for a rebuilt e-graph (runs the cost fixpoint). *)
val make : Egraph.t -> t

(** Lowest-cost term of the e-class (memoized; shared sub-terms are
    physically shared). *)
val extract_class : t -> int -> term

(** Extract any value: e-class refs extract, vectors extract elementwise,
    primitives become leaves. *)
val extract_value : t -> Value.t -> term

(** One-shot: build an extractor and extract [v]; returns the term and its
    tree cost. *)
val extract : Egraph.t -> Value.t -> term * int

(** Cost of the best term without building it. *)
val best_cost : Egraph.t -> Value.t -> int

(** Best known cost of a class under this extractor. *)
val cost_of_class : t -> int -> int

(** Up to [n] distinct terms of the class, cheapest first (one per e-node;
    children always extract optimally). *)
val variants : t -> int -> int -> (term * int) list

(** DAG cost of a term this extractor produced: every distinct e-class
    counted once. *)
val dag_cost : t -> term -> int
