(** The [func] dialect: functions, calls and returns.  Builders append to
    the given block and return the created op or its result. *)

(** Create a detached [func.func] with an entry block; returns (op, entry
    block). *)
val func :
  name:string -> arg_types:Typ.t list -> ret_types:Typ.t list -> Ir.op * Ir.block

(** Create a function and append it to a module. *)
val add_func :
  Ir.op -> name:string -> arg_types:Typ.t list -> ret_types:Typ.t list -> Ir.op * Ir.block

val return : Ir.block -> Ir.value list -> Ir.op

(** [call blk callee args ret_types] builds [func.call @callee(args)]. *)
val call : Ir.block -> string -> Ir.value list -> Typ.t list -> Ir.op

(** Single-result call; returns the result value. *)
val call1 : Ir.block -> string -> Ir.value list -> Typ.t -> Ir.value

val register : unit -> unit
