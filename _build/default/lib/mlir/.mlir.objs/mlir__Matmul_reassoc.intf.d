lib/mlir/matmul_reassoc.mli: Ir
