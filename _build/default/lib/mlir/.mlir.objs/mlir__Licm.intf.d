lib/mlir/licm.mli: Ir
