lib/mlir/d_linalg.mli: Ir Typ
