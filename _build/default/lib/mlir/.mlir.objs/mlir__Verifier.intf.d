lib/mlir/verifier.mli: Format Ir
