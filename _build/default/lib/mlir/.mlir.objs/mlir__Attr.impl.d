lib/mlir/attr.ml: Array Fmt List Printf String Typ
