lib/mlir/d_func.ml: Attr Dialect Ir Typ
