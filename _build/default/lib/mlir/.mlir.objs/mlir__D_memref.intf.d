lib/mlir/d_memref.mli: Ir Typ
