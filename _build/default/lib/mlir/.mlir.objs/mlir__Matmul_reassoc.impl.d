lib/mlir/matmul_reassoc.ml: Array Ir List Registry Transforms Typ
