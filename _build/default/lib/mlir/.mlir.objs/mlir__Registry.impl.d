lib/mlir/registry.ml: D_arith D_func D_linalg D_math D_memref D_scf D_tensor
