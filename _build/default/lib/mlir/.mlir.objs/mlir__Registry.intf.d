lib/mlir/registry.mli:
