lib/mlir/licm.ml: Array Dialect Hashtbl Ir List Registry
