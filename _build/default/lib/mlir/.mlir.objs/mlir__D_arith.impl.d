lib/mlir/d_arith.ml: Array Attr Dialect Float Fmt Int64 Ints Ir List Typ
