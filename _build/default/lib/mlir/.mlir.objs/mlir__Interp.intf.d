lib/mlir/interp.mli: Format Ir Typ
