lib/mlir/ints.ml: Float Int64 Printf
