lib/mlir/typ.ml: Fmt List Obj Stdlib String
