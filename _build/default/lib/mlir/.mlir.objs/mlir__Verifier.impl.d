lib/mlir/verifier.ml: Array Dialect Fmt Hashtbl Ir List Registry
