lib/mlir/transforms.mli: Attr Ir
