lib/mlir/ir.mli: Attr Typ
