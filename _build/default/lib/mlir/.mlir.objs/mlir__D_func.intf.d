lib/mlir/d_func.mli: Ir Typ
