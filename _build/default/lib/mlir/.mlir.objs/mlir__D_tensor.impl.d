lib/mlir/d_tensor.ml: Array Dialect Ir Typ
