lib/mlir/typ.mli: Format
