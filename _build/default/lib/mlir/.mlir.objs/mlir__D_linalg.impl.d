lib/mlir/d_linalg.ml: Array Dialect Fmt Ir Typ
