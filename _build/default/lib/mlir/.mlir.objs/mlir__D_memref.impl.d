lib/mlir/d_memref.ml: Array Dialect Ir List Typ
