lib/mlir/dialect.ml: Attr Hashtbl Ir List String
