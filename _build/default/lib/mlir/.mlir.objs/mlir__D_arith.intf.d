lib/mlir/d_arith.mli: Attr Ir Typ
