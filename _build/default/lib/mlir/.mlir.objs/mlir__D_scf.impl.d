lib/mlir/d_scf.ml: Array Dialect Ir List Typ
