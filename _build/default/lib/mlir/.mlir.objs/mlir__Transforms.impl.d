lib/mlir/transforms.ml: Array Attr Dialect Hashtbl Ir List Option Registry
