lib/mlir/d_math.ml: Array Attr Dialect Float Ir
