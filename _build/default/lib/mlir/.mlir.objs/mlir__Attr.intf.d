lib/mlir/attr.mli: Format Typ
