lib/mlir/ints.mli:
