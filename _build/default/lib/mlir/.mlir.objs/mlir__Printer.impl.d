lib/mlir/printer.ml: Array Attr Fmt Hashtbl Int64 Ir List Printf String Typ
