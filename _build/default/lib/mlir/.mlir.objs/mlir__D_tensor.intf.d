lib/mlir/d_tensor.mli: Ir Typ
