lib/mlir/printer.mli: Format Ir
