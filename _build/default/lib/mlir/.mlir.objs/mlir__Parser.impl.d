lib/mlir/parser.ml: Array Attr Buffer Fmt Hashtbl Int64 Ir List Registry String Typ
