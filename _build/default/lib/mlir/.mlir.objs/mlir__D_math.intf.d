lib/mlir/d_math.mli: Attr Ir
