lib/mlir/ir.ml: Array Attr Fmt Lazy List String Typ
