lib/mlir/interp.ml: Array Attr Float Fmt Hashtbl Int32 Int64 Ints Ir List Registry Typ Unix
