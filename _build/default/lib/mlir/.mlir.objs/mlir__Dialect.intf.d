lib/mlir/dialect.mli: Attr Ir
