lib/mlir/d_scf.mli: Ir Typ
