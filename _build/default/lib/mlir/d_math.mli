(** The [math] dialect: transcendental and other math functions.  All
    builders take an optional fastmath flag (default none). *)

val sqrt : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val rsqrt : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val sin : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val cos : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val exp : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val log : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val log2 : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val absf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val tanh : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value
val powf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val fma : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val register : unit -> unit
