(** An MLIR interpreter: executes whole programs on concrete data.

    This is the reproduction's substitute for the paper's LLVM lowering +
    native execution (DESIGN.md §2).  It reports two measures per run:

    - wall-clock time of the (tree-walking) interpretation, and
    - a {e cycle cost proxy}: every executed op adds a latency from a table
      modeled on in-order CPU latencies (division ≫ shift, powf ≫ mulf ≫
      addf, matmul = m·k·n MACs).  Speedups in the proxy measure reflect
      op-mix changes, which is what the paper's Fig. 3 measures end to end.

    Semantics notes:
    - integers wrap at their declared width ({!Ints});
    - [tensor.insert] mutates in place: the interpreter assumes tensors are
      used linearly (threaded through [iter_args]), which holds for all
      bufferizable programs in this repo and mirrors what MLIR's
      bufferization does to such programs. *)

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Runtime values                                                      *)
(* ------------------------------------------------------------------ *)

type tensor = { shape : int array; data : data }
and data = Df of float array | Di of int64 array

type rv =
  | Ri of int64 * int  (** integer value and width; index is width 64 *)
  | Rf of float * Typ.float_kind
  | Rt of tensor
  | Runit

let rec pp_rv ppf = function
  | Ri (v, 1) -> Fmt.pf ppf "%b" (not (Int64.equal v 0L))
  | Ri (v, w) -> Fmt.pf ppf "%Ld:i%d" v w
  | Rf (v, k) -> Fmt.pf ppf "%g:%a" v Typ.pp_float_kind k
  | Rt t ->
    let n = Array.fold_left ( * ) 1 t.shape in
    Fmt.pf ppf "tensor<%a>[%d elems, first=%a]"
      Fmt.(array ~sep:(any "x") int)
      t.shape n pp_first t
  | Runit -> Fmt.string ppf "unit"

and pp_first ppf t =
  match t.data with
  | Df a -> if Array.length a > 0 then Fmt.pf ppf "%g" a.(0) else Fmt.string ppf "-"
  | Di a -> if Array.length a > 0 then Fmt.pf ppf "%Ld" a.(0) else Fmt.string ppf "-"

let as_int = function
  | Ri (v, _) -> v
  | v -> error "expected an integer, got %a" pp_rv v

let as_float = function
  | Rf (v, _) -> v
  | v -> error "expected a float, got %a" pp_rv v

let as_bool = function
  | Ri (v, _) -> not (Int64.equal v 0L)
  | v -> error "expected a boolean, got %a" pp_rv v

let as_tensor = function
  | Rt t -> t
  | v -> error "expected a tensor, got %a" pp_rv v

let as_index v = Int64.to_int (as_int v)

(** Allocate a tensor (or memref buffer) of [ty] initialized to zero. *)
let alloc_tensor (ty : Typ.t) : tensor =
  match ty with
  | Typ.Ranked_tensor (dims, elem) | Typ.Memref (dims, elem) ->
    if List.exists (fun d -> d < 0) dims then
      error "cannot allocate a tensor with dynamic dimensions (%a)" Typ.pp ty;
    let n = Typ.num_elements dims in
    let data =
      match elem with
      | Typ.Float _ -> Df (Array.make n 0.0)
      | Typ.Integer _ | Typ.Index -> Di (Array.make n 0L)
      | _ -> error "unsupported tensor element type %a" Typ.pp elem
    in
    { shape = Array.of_list dims; data }
  | _ -> error "not a static tensor type: %a" Typ.pp ty

let linear_index (t : tensor) (idx : int list) =
  let rank = Array.length t.shape in
  if List.length idx <> rank then
    error "rank mismatch: %d indices for rank-%d tensor" (List.length idx) rank;
  let rec go acc i = function
    | [] -> acc
    | ix :: rest ->
      if ix < 0 || ix >= t.shape.(i) then
        error "index %d out of bounds for dimension %d (size %d)" ix i t.shape.(i);
      go ((acc * t.shape.(i)) + ix) (i + 1) rest
  in
  go 0 0 idx

let tensor_get (t : tensor) idx (elem_ty : Typ.t) : rv =
  let i = linear_index t idx in
  match (t.data, elem_ty) with
  | Df a, Typ.Float k -> Rf (a.(i), k)
  | Di a, Typ.Integer w -> Ri (a.(i), w)
  | Di a, Typ.Index -> Ri (a.(i), 64)
  | Df a, _ -> Rf (a.(i), Typ.F64)
  | Di a, _ -> Ri (a.(i), 64)

let tensor_set (t : tensor) idx (v : rv) =
  let i = linear_index t idx in
  match (t.data, v) with
  | Df a, Rf (x, _) -> a.(i) <- x
  | Di a, Ri (x, _) -> a.(i) <- x
  | _ -> error "element type mismatch in tensor store"

(* ------------------------------------------------------------------ *)
(* Cost proxy                                                          *)
(* ------------------------------------------------------------------ *)

(** Per-op latency estimates (cycles), loosely modeled on an in-order core.
    The key property for Fig. 3's shape is the ordering:
    shift/add ≪ mul ≪ div ≈ sqrt ≪ powf. *)
let op_latency (op : Ir.op) : int =
  match op.Ir.op_name with
  | "arith.constant" -> 0
  | "arith.addi" | "arith.subi" | "arith.andi" | "arith.ori" | "arith.xori"
  | "arith.shli" | "arith.shrsi" | "arith.shrui" | "arith.minsi" | "arith.maxsi"
  | "arith.minui" | "arith.maxui" | "arith.cmpi" | "arith.select"
  | "arith.index_cast" | "arith.bitcast" ->
    1
  | "arith.muli" -> 3
  | "arith.divsi" | "arith.divui" | "arith.remsi" | "arith.remui" -> 22
  | "arith.addf" | "arith.subf" | "arith.negf" | "arith.cmpf" | "arith.maximumf"
  | "arith.minimumf" ->
    3
  | "arith.mulf" | "math.fma" -> 4
  | "arith.divf" -> 18
  | "arith.sitofp" | "arith.fptosi" | "arith.truncf" | "arith.extf" -> 2
  | "math.sqrt" -> 25
  | "math.rsqrt" -> 9
  | "math.powf" -> 70
  | "math.sin" | "math.cos" -> 40
  | "math.exp" | "math.log" | "math.log2" | "math.tanh" -> 30
  | "math.absf" -> 2
  | "tensor.extract" | "tensor.insert" | "memref.load" | "memref.store" -> 4
  | "tensor.empty" | "memref.alloc" -> 10
  | "memref.dealloc" | "memref.copy" -> 1
  | "tensor.dim" -> 1
  | "func.call" -> 10
  | "scf.for" | "scf.if" | "scf.while" -> 0 (* charged per iteration below *)
  | "scf.yield" | "scf.condition" | "func.return" -> 1
  | _ -> 1

let loop_overhead = 2 (* per-iteration branch + induction update *)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type ctx = {
  m : Ir.op;  (** the module, for resolving calls *)
  mutable cycles : int;  (** accumulated cost proxy *)
  mutable fuel : int;  (** remaining op executions before aborting *)
}

type block_result = Yielded of rv list | Returned of rv list | Fell_through

let charge ctx n = ctx.cycles <- ctx.cycles + n

type env = (int, rv) Hashtbl.t

let env_get (env : env) (v : Ir.value) =
  match Hashtbl.find_opt env v.Ir.v_id with
  | Some rv -> rv
  | None -> error "undefined SSA value (id %d, type %a)" v.Ir.v_id Typ.pp v.Ir.v_type

let env_set (env : env) (v : Ir.value) rv = Hashtbl.replace env v.Ir.v_id rv

let float_kind = function Typ.Float k -> k | _ -> Typ.F64

let rec exec_block ctx (env : env) (blk : Ir.block) : block_result =
  let rec go = function
    | [] -> Fell_through
    | op :: rest -> (
      match exec_op ctx env op with
      | `Continue -> go rest
      | `Yield vs -> Yielded vs
      | `Return vs -> Returned vs)
  in
  go blk.Ir.blk_ops

and exec_op ctx env (op : Ir.op) : [ `Continue | `Yield of rv list | `Return of rv list ] =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then error "interpreter fuel exhausted";
  charge ctx (op_latency op);
  let operand i = env_get env op.Ir.operands.(i) in
  let operands () = Array.to_list (Array.map (env_get env) op.Ir.operands) in
  let set1 rv = env_set env op.Ir.results.(0) rv in
  let width () = Typ.int_width op.Ir.results.(0).Ir.v_type in
  let int_binop f =
    let a = as_int (operand 0) and b = as_int (operand 1) in
    let r = try f (width ()) a b with Failure msg -> error "%s" msg in
    set1 (Ri (r, width ()))
  in
  let float_binop f =
    let a = as_float (operand 0) and b = as_float (operand 1) in
    set1 (Rf (f a b, float_kind op.Ir.results.(0).Ir.v_type))
  in
  let float_unop f =
    set1 (Rf (f (as_float (operand 0)), float_kind op.Ir.results.(0).Ir.v_type))
  in
  match op.Ir.op_name with
  | "arith.constant" ->
    (match Ir.attr op "value" with
    | Some (Attr.Int (v, t)) -> set1 (Ri (v, Typ.int_width t))
    | Some (Attr.Float (v, t)) -> set1 (Rf (v, float_kind t))
    | _ -> error "arith.constant: unsupported value attribute");
    `Continue
  | "arith.addi" -> int_binop Ints.add; `Continue
  | "arith.subi" -> int_binop Ints.sub; `Continue
  | "arith.muli" -> int_binop Ints.mul; `Continue
  | "arith.divsi" -> int_binop Ints.divsi; `Continue
  | "arith.divui" -> int_binop Ints.divui; `Continue
  | "arith.remsi" -> int_binop Ints.remsi; `Continue
  | "arith.remui" -> int_binop Ints.remui; `Continue
  | "arith.shli" -> int_binop Ints.shli; `Continue
  | "arith.shrsi" -> int_binop Ints.shrsi; `Continue
  | "arith.shrui" -> int_binop Ints.shrui; `Continue
  | "arith.andi" -> int_binop Ints.andi; `Continue
  | "arith.ori" -> int_binop Ints.ori; `Continue
  | "arith.xori" -> int_binop Ints.xori; `Continue
  | "arith.minsi" -> int_binop Ints.minsi; `Continue
  | "arith.maxsi" -> int_binop Ints.maxsi; `Continue
  | "arith.minui" -> int_binop Ints.minui; `Continue
  | "arith.maxui" -> int_binop Ints.maxui; `Continue
  | "arith.addf" -> float_binop Float.add; `Continue
  | "arith.subf" -> float_binop Float.sub; `Continue
  | "arith.mulf" -> float_binop Float.mul; `Continue
  | "arith.divf" -> float_binop Float.div; `Continue
  | "arith.maximumf" -> float_binop Float.max; `Continue
  | "arith.minimumf" -> float_binop Float.min; `Continue
  | "arith.negf" -> float_unop (fun x -> -.x); `Continue
  | "arith.cmpi" ->
    let p =
      match Ir.attr op "predicate" with
      | Some (Attr.Int (p, _)) -> Int64.to_int p
      | _ -> error "arith.cmpi: missing predicate"
    in
    let w = Typ.int_width op.Ir.operands.(0).Ir.v_type in
    set1 (Ri ((if Ints.cmpi w p (as_int (operand 0)) (as_int (operand 1)) then 1L else 0L), 1));
    `Continue
  | "arith.cmpf" ->
    let p =
      match Ir.attr op "predicate" with
      | Some (Attr.Int (p, _)) -> Int64.to_int p
      | _ -> error "arith.cmpf: missing predicate"
    in
    set1 (Ri ((if Ints.cmpf p (as_float (operand 0)) (as_float (operand 1)) then 1L else 0L), 1));
    `Continue
  | "arith.select" ->
    set1 (if as_bool (operand 0) then operand 1 else operand 2);
    `Continue
  | "arith.index_cast" ->
    set1 (Ri (as_int (operand 0), width ()));
    `Continue
  | "arith.sitofp" ->
    set1 (Rf (Int64.to_float (as_int (operand 0)), float_kind op.Ir.results.(0).Ir.v_type));
    `Continue
  | "arith.fptosi" ->
    set1 (Ri (Int64.of_float (as_float (operand 0)), width ()));
    `Continue
  | "arith.truncf" | "arith.extf" ->
    let v = as_float (operand 0) in
    let k = float_kind op.Ir.results.(0).Ir.v_type in
    let v = if k = Typ.F32 then Int32.float_of_bits (Int32.bits_of_float v) else v in
    set1 (Rf (v, k));
    `Continue
  | "arith.bitcast" -> (
    (* f32 <-> i32 bit reinterpretation: the Quake trick needs this *)
    match (operand 0, op.Ir.results.(0).Ir.v_type) with
    | Rf (f, Typ.F32), Typ.Integer 32 ->
      set1 (Ri (Int64.of_int32 (Int32.bits_of_float f), 32));
      `Continue
    | Ri (i, 32), Typ.Float F32 ->
      set1 (Rf (Int32.float_of_bits (Int64.to_int32 i), Typ.F32));
      `Continue
    | Rf (f, Typ.F64), Typ.Integer 64 ->
      set1 (Ri (Int64.bits_of_float f, 64));
      `Continue
    | Ri (i, 64), Typ.Float F64 ->
      set1 (Rf (Int64.float_of_bits i, Typ.F64));
      `Continue
    | v, t -> error "arith.bitcast: unsupported %a to %a" pp_rv v Typ.pp t)
  | "math.sqrt" -> float_unop Float.sqrt; `Continue
  | "math.rsqrt" -> float_unop (fun x -> 1.0 /. Float.sqrt x); `Continue
  | "math.sin" -> float_unop Float.sin; `Continue
  | "math.cos" -> float_unop Float.cos; `Continue
  | "math.exp" -> float_unop Float.exp; `Continue
  | "math.log" -> float_unop Float.log; `Continue
  | "math.log2" -> float_unop (fun x -> Float.log x /. Float.log 2.0); `Continue
  | "math.absf" -> float_unop Float.abs; `Continue
  | "math.tanh" -> float_unop Float.tanh; `Continue
  | "math.powf" -> float_binop Float.pow; `Continue
  | "math.fma" ->
    set1
      (Rf
         ( Float.fma (as_float (operand 0)) (as_float (operand 1)) (as_float (operand 2)),
           float_kind op.Ir.results.(0).Ir.v_type ));
    `Continue
  | "tensor.empty" ->
    set1 (Rt (alloc_tensor op.Ir.results.(0).Ir.v_type));
    `Continue
  | "tensor.extract" ->
    let t = as_tensor (operand 0) in
    let idx = List.tl (operands ()) |> List.map (fun v -> Int64.to_int (as_int v)) in
    set1 (tensor_get t idx op.Ir.results.(0).Ir.v_type);
    `Continue
  | "tensor.insert" ->
    let v = operand 0 in
    let t = as_tensor (operand 1) in
    let idx =
      Array.to_list (Array.sub op.Ir.operands 2 (Array.length op.Ir.operands - 2))
      |> List.map (fun o -> Int64.to_int (as_int (env_get env o)))
    in
    tensor_set t idx v;
    (* destructive update; result aliases the input (linear-use assumption) *)
    set1 (Rt t);
    `Continue
  | "tensor.dim" ->
    let t = as_tensor (operand 0) in
    let i = as_index (operand 1) in
    set1 (Ri (Int64.of_int t.shape.(i), 64));
    `Continue
  | "tensor.splat" ->
    let t = alloc_tensor op.Ir.results.(0).Ir.v_type in
    let n = Array.fold_left ( * ) 1 t.shape in
    charge ctx n;
    (match (t.data, operand 0) with
    | Df a, Rf (x, _) -> Array.fill a 0 (Array.length a) x
    | Di a, Ri (x, _) -> Array.fill a 0 (Array.length a) x
    | _ -> error "tensor.splat: element type mismatch");
    set1 (Rt t);
    `Continue
  | "tensor.from_elements" ->
    let t = alloc_tensor op.Ir.results.(0).Ir.v_type in
    List.iteri
      (fun i v ->
        match (t.data, v) with
        | Df a, Rf (x, _) -> a.(i) <- x
        | Di a, Ri (x, _) -> a.(i) <- x
        | _ -> error "tensor.from_elements: element type mismatch")
      (operands ());
    set1 (Rt t);
    `Continue
  | "linalg.fill" ->
    let t = as_tensor (operand 1) in
    let n = Array.fold_left ( * ) 1 t.shape in
    charge ctx n;
    (match (t.data, operand 0) with
    | Df a, Rf (x, _) -> Array.fill a 0 (Array.length a) x
    | Di a, Ri (x, _) -> Array.fill a 0 (Array.length a) x
    | _ -> error "linalg.fill: element type mismatch");
    set1 (Rt t);
    `Continue
  | "linalg.matmul" ->
    let a = as_tensor (operand 0) and b = as_tensor (operand 1) in
    let out = as_tensor (operand 2) in
    let m = a.shape.(0) and k = a.shape.(1) and n = b.shape.(1) in
    if b.shape.(0) <> k then error "linalg.matmul: inner dimension mismatch";
    charge ctx (m * k * n * 5);
    (match (a.data, b.data, out.data) with
    | Df da, Df db, Df dout ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref dout.((i * n) + j) in
          for l = 0 to k - 1 do
            acc := !acc +. (da.((i * k) + l) *. db.((l * n) + j))
          done;
          dout.((i * n) + j) <- !acc
        done
      done
    | Di da, Di db, Di dout ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref dout.((i * n) + j) in
          for l = 0 to k - 1 do
            acc := Int64.add !acc (Int64.mul da.((i * k) + l) db.((l * n) + j))
          done;
          dout.((i * n) + j) <- !acc
        done
      done
    | _ -> error "linalg.matmul: mixed element types");
    set1 (Rt out);
    `Continue
  | "linalg.add" ->
    let a = as_tensor (operand 0) and b = as_tensor (operand 1) in
    let out = as_tensor (operand 2) in
    let n = Array.fold_left ( * ) 1 out.shape in
    charge ctx (n * 3);
    (match (a.data, b.data, out.data) with
    | Df da, Df db, Df dout ->
      for i = 0 to n - 1 do
        dout.(i) <- da.(i) +. db.(i)
      done
    | Di da, Di db, Di dout ->
      for i = 0 to n - 1 do
        dout.(i) <- Int64.add da.(i) db.(i)
      done
    | _ -> error "linalg.add: mixed element types");
    set1 (Rt out);
    `Continue
  | "memref.alloc" ->
    set1 (Rt (alloc_tensor op.Ir.results.(0).Ir.v_type));
    `Continue
  | "memref.dealloc" -> `Continue
  | "memref.load" ->
    let t = as_tensor (operand 0) in
    let idx = List.tl (operands ()) |> List.map (fun v -> Int64.to_int (as_int v)) in
    set1 (tensor_get t idx op.Ir.results.(0).Ir.v_type);
    `Continue
  | "memref.store" ->
    let v = operand 0 in
    let t = as_tensor (operand 1) in
    let idx =
      Array.to_list (Array.sub op.Ir.operands 2 (Array.length op.Ir.operands - 2))
      |> List.map (fun o -> Int64.to_int (as_int (env_get env o)))
    in
    tensor_set t idx v;
    `Continue
  | "memref.copy" ->
    let src = as_tensor (operand 0) and dst = as_tensor (operand 1) in
    let n = Array.fold_left ( * ) 1 dst.shape in
    charge ctx n;
    (match (src.data, dst.data) with
    | Df a, Df b -> Array.blit a 0 b 0 (Array.length b)
    | Di a, Di b -> Array.blit a 0 b 0 (Array.length b)
    | _ -> error "memref.copy: element type mismatch");
    `Continue
  | "scf.for" ->
    let lb = as_index (operand 0) and ub = as_index (operand 1) in
    let step = as_index (operand 2) in
    if step <= 0 then error "scf.for: step must be positive";
    let n_iters = Array.length op.Ir.operands - 3 in
    let body = Ir.entry_block (List.hd op.Ir.regions) in
    let args = ref (List.init n_iters (fun i -> operand (i + 3))) in
    let i = ref lb in
    while !i < ub do
      charge ctx loop_overhead;
      env_set env body.Ir.blk_args.(0) (Ri (Int64.of_int !i, 64));
      List.iteri (fun j v -> env_set env body.Ir.blk_args.(j + 1) v) !args;
      (match exec_block ctx env body with
      | Yielded vs -> args := vs
      | Fell_through when n_iters = 0 -> ()
      | Fell_through -> error "scf.for body must yield its iteration values"
      | Returned _ -> error "return inside scf.for is not allowed");
      i := !i + step
    done;
    List.iteri (fun j v -> env_set env op.Ir.results.(j) v) !args;
    `Continue
  | "scf.if" ->
    charge ctx 2;
    let reg =
      if as_bool (operand 0) then List.nth op.Ir.regions 0 else List.nth op.Ir.regions 1
    in
    (match exec_block ctx env (Ir.entry_block reg) with
    | Yielded vs -> List.iteri (fun j v -> env_set env op.Ir.results.(j) v) vs
    | Fell_through when Array.length op.Ir.results = 0 -> ()
    | Fell_through -> error "scf.if branches must yield values"
    | Returned _ -> error "return inside scf.if is not allowed");
    `Continue
  | "scf.while" ->
    let before = Ir.entry_block (List.nth op.Ir.regions 0) in
    let after = Ir.entry_block (List.nth op.Ir.regions 1) in
    let args = ref (operands ()) in
    let finished = ref false in
    let final = ref [] in
    while not !finished do
      charge ctx loop_overhead;
      List.iteri (fun j v -> env_set env before.Ir.blk_args.(j) v) !args;
      (* the before region ends with scf.condition *)
      let rec run_before = function
        | [] -> error "scf.while before-region must end with scf.condition"
        | (o : Ir.op) :: rest ->
          if o.Ir.op_name = "scf.condition" then begin
            let c = as_bool (env_get env o.Ir.operands.(0)) in
            let vs =
              Array.to_list (Array.sub o.Ir.operands 1 (Array.length o.Ir.operands - 1))
              |> List.map (env_get env)
            in
            if c then begin
              List.iteri (fun j v -> env_set env after.Ir.blk_args.(j) v) vs;
              match exec_block ctx env after with
              | Yielded vs' -> args := vs'
              | _ -> error "scf.while after-region must yield"
            end
            else begin
              finished := true;
              final := vs
            end
          end
          else begin
            (match exec_op ctx env o with
            | `Continue -> ()
            | _ -> error "unexpected terminator in scf.while condition");
            run_before rest
          end
      in
      run_before before.Ir.blk_ops
    done;
    List.iteri (fun j v -> env_set env op.Ir.results.(j) v) !final;
    `Continue
  | "scf.yield" -> `Yield (operands ())
  | "scf.condition" -> error "scf.condition outside scf.while"
  | "func.return" -> `Return (operands ())
  | "func.call" -> (
    let callee =
      match Ir.attr op "callee" with
      | Some (Attr.Symbol_ref s) -> s
      | _ -> error "func.call: missing callee"
    in
    let results = call ctx callee (operands ()) in
    List.iteri (fun j v -> env_set env op.Ir.results.(j) v) results;
    `Continue)
  | name -> error "cannot interpret op %s" name

(** [call ctx name args] executes function [name] from the module. *)
and call ctx name (args : rv list) : rv list =
  match Ir.find_function ctx.m name with
  | None -> error "call to undefined function @%s" name
  | Some f ->
    let body = Ir.func_body f in
    if Array.length body.Ir.blk_args <> List.length args then
      error "@%s expects %d arguments, got %d" name (Array.length body.Ir.blk_args)
        (List.length args);
    let env : env = Hashtbl.create 64 in
    List.iteri (fun i v -> env_set env body.Ir.blk_args.(i) v) args;
    (match exec_block ctx env body with
    | Returned vs -> vs
    | Yielded _ -> error "@%s: yield outside a loop" name
    | Fell_through -> [])

type result = { values : rv list; cycles : int; wall_time : float }

(** [run m name args] interprets [@name(args)] in module [m], returning the
    results together with the cycle cost proxy and wall-clock time. *)
let run ?(fuel = 2_000_000_000) (m : Ir.op) name (args : rv list) : result =
  Registry.ensure_registered ();
  let ctx = { m; cycles = 0; fuel } in
  let t0 = Unix.gettimeofday () in
  let values = call ctx name args in
  let wall_time = Unix.gettimeofday () -. t0 in
  { values; cycles = ctx.cycles; wall_time }
