(** The hand-written matmul re-association pass — the paper's §8.4
    baseline: a greedy, local rewrite that considers only three matrices at
    a time and never reconsiders a decision.  Matches DialEgg on 2MM,
    loses on 3MM and longer chains. *)

(** Apply the greedy rewrite to one function; returns the number of
    rewrites performed (dead ops are cleaned up). *)
val run_on_func : Ir.op -> int

(** Run on every function of a module. *)
val run : Ir.op -> int
