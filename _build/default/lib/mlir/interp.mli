(** An MLIR interpreter: executes whole programs on concrete data.

    The reproduction's substitute for LLVM lowering + native execution
    (DESIGN.md §2).  Reports wall-clock time and a {e cycle cost proxy}
    (per-op latencies modeled on an in-order core: division ≫ shift,
    powf ≫ mulf ≫ addf, matmul = m·k·n MACs).

    Semantics notes: integers wrap at their declared width;
    [tensor.insert] mutates in place under a linear-use assumption (which
    holds for bufferizable programs threaded through [iter_args]). *)

exception Runtime_error of string

type tensor = { shape : int array; data : data }
and data = Df of float array | Di of int64 array

type rv =
  | Ri of int64 * int  (** integer value and width; index is width 64 *)
  | Rf of float * Typ.float_kind
  | Rt of tensor
  | Runit

val pp_rv : Format.formatter -> rv -> unit

(** Zero-initialized tensor (or memref buffer) of a static shaped type. *)
val alloc_tensor : Typ.t -> tensor

(** Latency estimate (cycles) for one op — the cost-proxy table. *)
val op_latency : Ir.op -> int

type result = { values : rv list; cycles : int; wall_time : float }

(** [run m name args] interprets [@name(args)] in module [m].  [fuel]
    bounds the total number of op executions. *)
val run : ?fuel:int -> Ir.op -> string -> rv list -> result
