(** The [linalg] dialect (the slice the paper uses): matrix multiplication
    and fills on tensors. *)

(** [matmul blk a b init] builds [linalg.matmul ins(a, b) outs(init)]; the
    result type comes from [init]. *)
val matmul : Ir.block -> Ir.value -> Ir.value -> Ir.value -> Ir.value

val fill : Ir.block -> Ir.value -> Ir.value -> Ir.value
val add : Ir.block -> Ir.value -> Ir.value -> Ir.value -> Ir.value

(** Static (rows, cols) of a matmul operand type, if fully static rank 2. *)
val matrix_dims : Typ.t -> (int * int) option

val register : unit -> unit
