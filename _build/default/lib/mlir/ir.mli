(** The MLIR IR core: SSA values, operations, blocks, regions and modules,
    as one mutable object graph (operations own regions, regions own
    blocks, blocks own operations).

    Construction protocol: {!create_op} allocates an operation together
    with its result values; blocks and regions are built with
    {!create_block} / {!create_region} and wired with {!append_op} /
    {!append_block}, which maintain parent pointers. *)

type value = {
  v_id : int;  (** globally unique *)
  v_type : Typ.t;
  v_def : def;
}

and def =
  | Op_result of op * int  (** defining op and result index *)
  | Block_arg of block * int  (** owning block and argument index *)

and op = {
  op_id : int;
  op_name : string;  (** full name, e.g. "arith.addi" *)
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : Attr.named list;  (** kept sorted by name *)
  mutable regions : region list;
  mutable op_parent : block option;
}

and block = {
  blk_id : int;
  mutable blk_args : value array;
  mutable blk_ops : op list;  (** in execution order *)
  mutable blk_parent : region option;
}

and region = {
  reg_id : int;
  mutable blocks : block list;
  mutable reg_parent : op option;
}

(** {1 Construction} *)

(** Build a detached operation with fresh result values; attributes are
    stored sorted; regions are adopted. *)
val create_op :
  ?operands:value list ->
  ?result_types:Typ.t list ->
  ?attrs:Attr.named list ->
  ?regions:region list ->
  string ->
  op

val create_block : ?arg_types:Typ.t list -> unit -> block
val create_region : block list -> region
val append_op : block -> op -> unit
val append_block : region -> block -> unit

(** Replace a block's full op list (re-parents the ops). *)
val set_ops : block -> op list -> unit

(** {1 Accessors} *)

val result : op -> int -> value

(** The single result; fails if the op does not have exactly one. *)
val result1 : op -> value

val operand : op -> int -> value
val attr : op -> string -> Attr.t option
val set_attr : op -> string -> Attr.t -> unit

(** Dialect prefix of an op name ("arith.addi" -> "arith"). *)
val dialect_of_name : string -> string

val op_dialect : op -> string

(** First block of a region.  @raise Invalid_argument if empty. *)
val entry_block : region -> block

(** Last op of a block, if any. *)
val terminator : block -> op option

(** {1 Traversal} *)

(** Pre-order walk over an op and everything nested in its regions. *)
val walk_op : (op -> unit) -> op -> unit

val walk_block : (op -> unit) -> block -> unit

(** Ops satisfying the predicate, in pre-order. *)
val collect_ops : (op -> bool) -> op -> op list

(** {1 Use tracking and mutation} *)

val value_equal : value -> value -> bool

(** Rewrite every operand equal to [from] into [to_] under [within]. *)
val replace_uses : within:op -> from:value -> to_:value -> unit

val has_uses : within:op -> value -> bool

(** Detach an op from its parent block (does not check uses). *)
val erase_op : op -> unit

(** Insert a new op just before [anchor] in [anchor]'s block. *)
val insert_before : anchor:op -> op -> unit

(** {1 Modules} *)

(** A module is the conventional top-level op: one region, one block. *)
val create_module : unit -> op

val module_block : op -> block
val module_ops : op -> op list
val module_append : op -> op -> unit

(** Find a [func.func] by symbol name. *)
val find_function : op -> string -> op option

(** Symbol name of a [func.func]. *)
val func_name : op -> string

(** (argument types, result types) of a [func.func]. *)
val func_type : op -> Typ.t list * Typ.t list

(** Entry block of a [func.func]. *)
val func_body : op -> block
