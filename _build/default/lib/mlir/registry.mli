(** One-stop registration of every built-in dialect.  Entry points call
    {!ensure_registered} before touching the registry; idempotent. *)

val ensure_registered : unit -> unit
