(** Parser for the MLIR textual format (the subset this project prints):
    the pretty forms of all registered dialects plus the generic form
    ["name"(%operands) ({regions}) {attrs} : (tys) -> tys].  Any output of
    {!Printer} round-trips.  SSA values must be defined before use;
    functions are independent naming scopes. *)

exception Error of string

(** Parse a whole module; the [module { ... }] wrapper is optional. *)
val parse_module : string -> Ir.op

(** Alias of {!parse_module} (a bare function parses into a fresh module). *)
val parse_function_module : string -> Ir.op
