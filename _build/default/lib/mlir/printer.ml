(** Printing IR back to MLIR textual syntax.

    Common operations print in their pretty (custom) form; everything else
    falls back to the generic form
    ["name"(%operands) ({regions}) {attrs} : (operand types) -> result types],
    which the parser always accepts.  [Parser.parse_module (to_string m)]
    round-trips any module built from registered dialects. *)

open Ir

type namer = {
  names : (int, string) Hashtbl.t;  (** value id -> printed name (no %) *)
  mutable next_result : int;
  mutable next_arg : int;
}

let make_namer () = { names = Hashtbl.create 64; next_result = 0; next_arg = 0 }

let name_value n (v : value) =
  match Hashtbl.find_opt n.names v.v_id with
  | Some s -> s
  | None ->
    let s =
      match v.v_def with
      | Block_arg _ ->
        let s = Printf.sprintf "arg%d" n.next_arg in
        n.next_arg <- n.next_arg + 1;
        s
      | Op_result _ ->
        let s = string_of_int n.next_result in
        n.next_result <- n.next_result + 1;
        s
    in
    Hashtbl.replace n.names v.v_id s;
    s

let pv n ppf v = Fmt.pf ppf "%%%s" (name_value n v)
let pvs n ppf vs = Fmt.(list ~sep:(any ", ") (pv n)) ppf vs
let ptys ppf tys = Fmt.(list ~sep:(any ", ") Typ.pp) ppf tys

let fastmath_suffix op =
  match Ir.attr op "fastmath" with
  | Some (Attr.Fastmath Attr.Fm_none) | None -> ""
  | Some (Attr.Fastmath fm) -> Printf.sprintf " fastmath<%s>" (Attr.fastmath_repr fm)
  | Some _ -> ""

let pred_name table op =
  match Ir.attr op "predicate" with
  | Some (Attr.Int (p, _))
    when Int64.to_int p >= 0 && Int64.to_int p < Array.length table ->
    table.(Int64.to_int p)
  | _ -> "?"

let rec pp_op n ind ppf (op : op) =
  let pad = String.make ind ' ' in
  Fmt.pf ppf "%s" pad;
  (match Array.to_list op.results with
  | [] -> ()
  | rs -> Fmt.pf ppf "%a = " (pvs n) rs);
  pp_op_body n ind ppf op;
  Fmt.pf ppf "\n"

and pp_op_body n ind ppf (op : op) =
  let operand i = op.operands.(i) in
  match op.op_name with
  | "arith.constant" -> (
    match Ir.attr op "value" with
    | Some (Attr.Int (v, t)) -> Fmt.pf ppf "arith.constant %Ld : %a" v Typ.pp t
    | Some (Attr.Float (v, t)) ->
      Fmt.pf ppf "arith.constant %s : %a" (Attr.float_repr v) Typ.pp t
    | Some a -> Fmt.pf ppf "arith.constant %a" Attr.pp a
    | None -> Fmt.pf ppf "arith.constant <missing>")
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.divui"
  | "arith.remsi" | "arith.remui" | "arith.shli" | "arith.shrsi" | "arith.shrui"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.minsi" | "arith.maxsi"
  | "arith.minui" | "arith.maxui" ->
    Fmt.pf ppf "%s %a, %a : %a" op.op_name (pv n) (operand 0) (pv n) (operand 1) Typ.pp
      (operand 0).v_type
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maximumf"
  | "arith.minimumf" ->
    Fmt.pf ppf "%s %a, %a%s : %a" op.op_name (pv n) (operand 0) (pv n) (operand 1)
      (fastmath_suffix op) Typ.pp (operand 0).v_type
  | "arith.negf" ->
    Fmt.pf ppf "arith.negf %a%s : %a" (pv n) (operand 0) (fastmath_suffix op) Typ.pp
      (operand 0).v_type
  | "arith.cmpi" ->
    Fmt.pf ppf "arith.cmpi %s, %a, %a : %a"
      (pred_name Attr.cmpi_predicates op)
      (pv n) (operand 0) (pv n) (operand 1) Typ.pp (operand 0).v_type
  | "arith.cmpf" ->
    Fmt.pf ppf "arith.cmpf %s, %a, %a%s : %a"
      (pred_name Attr.cmpf_predicates op)
      (pv n) (operand 0) (pv n) (operand 1) (fastmath_suffix op) Typ.pp
      (operand 0).v_type
  | "arith.select" ->
    Fmt.pf ppf "arith.select %a, %a, %a : %a" (pv n) (operand 0) (pv n) (operand 1)
      (pv n) (operand 2) Typ.pp (operand 1).v_type
  | "arith.index_cast" | "arith.sitofp" | "arith.fptosi" | "arith.truncf"
  | "arith.extf" | "arith.bitcast" ->
    Fmt.pf ppf "%s %a : %a to %a" op.op_name (pv n) (operand 0) Typ.pp
      (operand 0).v_type Typ.pp op.results.(0).v_type
  | "math.sqrt" | "math.rsqrt" | "math.sin" | "math.cos" | "math.exp" | "math.log"
  | "math.log2" | "math.absf" | "math.tanh" ->
    Fmt.pf ppf "%s %a%s : %a" op.op_name (pv n) (operand 0) (fastmath_suffix op)
      Typ.pp (operand 0).v_type
  | "math.powf" ->
    Fmt.pf ppf "math.powf %a, %a%s : %a" (pv n) (operand 0) (pv n) (operand 1)
      (fastmath_suffix op) Typ.pp (operand 0).v_type
  | "math.fma" ->
    Fmt.pf ppf "math.fma %a, %a, %a%s : %a" (pv n) (operand 0) (pv n) (operand 1)
      (pv n) (operand 2) (fastmath_suffix op) Typ.pp (operand 0).v_type
  | "func.return" ->
    if Array.length op.operands = 0 then Fmt.pf ppf "func.return"
    else
      Fmt.pf ppf "func.return %a : %a" (pvs n) (Array.to_list op.operands) ptys
        (List.map (fun v -> v.v_type) (Array.to_list op.operands))
  | "func.call" ->
    let callee =
      match Ir.attr op "callee" with Some (Attr.Symbol_ref s) -> s | _ -> "?"
    in
    Fmt.pf ppf "func.call @%s(%a) : (%a) -> %a" callee (pvs n)
      (Array.to_list op.operands) ptys
      (List.map (fun v -> v.v_type) (Array.to_list op.operands))
      Typ.pp_results
      (List.map (fun v -> v.v_type) (Array.to_list op.results))
  | "scf.yield" ->
    if Array.length op.operands = 0 then Fmt.pf ppf "scf.yield"
    else
      Fmt.pf ppf "scf.yield %a : %a" (pvs n) (Array.to_list op.operands) ptys
        (List.map (fun v -> v.v_type) (Array.to_list op.operands))
  | "scf.for" ->
    let body = entry_block (List.hd op.regions) in
    let iv = body.blk_args.(0) in
    let iters = Array.length op.operands - 3 in
    Fmt.pf ppf "scf.for %a = %a to %a step %a" (pv n) iv (pv n) (operand 0) (pv n)
      (operand 1) (pv n) (operand 2);
    if iters > 0 then begin
      let pairs =
        List.init iters (fun i -> (body.blk_args.(i + 1), op.operands.(i + 3)))
      in
      Fmt.pf ppf " iter_args(%a)"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (a, init) ->
              Fmt.pf ppf "%a = %a" (pv n) a (pv n) init))
        pairs;
      Fmt.pf ppf " -> (%a)" ptys
        (List.map (fun v -> v.v_type) (Array.to_list op.results))
    end;
    Fmt.pf ppf " {\n";
    List.iter (pp_op n (ind + 2) ppf) body.blk_ops;
    Fmt.pf ppf "%s}" (String.make ind ' ')
  | "scf.if" ->
    Fmt.pf ppf "scf.if %a" (pv n) (operand 0);
    if Array.length op.results > 0 then
      Fmt.pf ppf " -> (%a)" ptys (List.map (fun v -> v.v_type) (Array.to_list op.results));
    let pad = String.make ind ' ' in
    (match op.regions with
    | [ then_r; else_r ] ->
      Fmt.pf ppf " {\n";
      List.iter (pp_op n (ind + 2) ppf) (entry_block then_r).blk_ops;
      Fmt.pf ppf "%s}" pad;
      if (entry_block else_r).blk_ops <> [] then begin
        Fmt.pf ppf " else {\n";
        List.iter (pp_op n (ind + 2) ppf) (entry_block else_r).blk_ops;
        Fmt.pf ppf "%s}" pad
      end
    | _ -> Fmt.pf ppf " <malformed regions>")
  | "tensor.empty" ->
    Fmt.pf ppf "tensor.empty() : %a" Typ.pp op.results.(0).v_type
  | "tensor.extract" ->
    Fmt.pf ppf "tensor.extract %a[%a] : %a" (pv n) (operand 0) (pvs n)
      (Array.to_list (Array.sub op.operands 1 (Array.length op.operands - 1)))
      Typ.pp (operand 0).v_type
  | "tensor.insert" ->
    Fmt.pf ppf "tensor.insert %a into %a[%a] : %a" (pv n) (operand 0) (pv n)
      (operand 1) (pvs n)
      (Array.to_list (Array.sub op.operands 2 (Array.length op.operands - 2)))
      Typ.pp (operand 1).v_type
  | "memref.alloc" -> Fmt.pf ppf "memref.alloc() : %a" Typ.pp op.results.(0).v_type
  | "memref.dealloc" ->
    Fmt.pf ppf "memref.dealloc %a : %a" (pv n) (operand 0) Typ.pp (operand 0).v_type
  | "memref.load" ->
    Fmt.pf ppf "memref.load %a[%a] : %a" (pv n) (operand 0) (pvs n)
      (Array.to_list (Array.sub op.operands 1 (Array.length op.operands - 1)))
      Typ.pp (operand 0).v_type
  | "memref.store" ->
    Fmt.pf ppf "memref.store %a, %a[%a] : %a" (pv n) (operand 0) (pv n) (operand 1)
      (pvs n)
      (Array.to_list (Array.sub op.operands 2 (Array.length op.operands - 2)))
      Typ.pp (operand 1).v_type
  | "memref.copy" ->
    Fmt.pf ppf "memref.copy %a, %a : %a to %a" (pv n) (operand 0) (pv n) (operand 1)
      Typ.pp (operand 0).v_type Typ.pp (operand 1).v_type
  | "tensor.dim" ->
    Fmt.pf ppf "tensor.dim %a, %a : %a" (pv n) (operand 0) (pv n) (operand 1) Typ.pp
      (operand 0).v_type
  | "tensor.splat" ->
    Fmt.pf ppf "tensor.splat %a : %a" (pv n) (operand 0) Typ.pp op.results.(0).v_type
  | "tensor.from_elements" ->
    Fmt.pf ppf "tensor.from_elements %a : %a" (pvs n) (Array.to_list op.operands)
      Typ.pp op.results.(0).v_type
  | "linalg.matmul" | "linalg.add" ->
    Fmt.pf ppf "%s ins(%a, %a : %a, %a) outs(%a : %a) -> %a" op.op_name (pv n)
      (operand 0) (pv n) (operand 1) Typ.pp (operand 0).v_type Typ.pp
      (operand 1).v_type (pv n) (operand 2) Typ.pp (operand 2).v_type Typ.pp
      op.results.(0).v_type
  | "linalg.fill" ->
    Fmt.pf ppf "linalg.fill ins(%a : %a) outs(%a : %a) -> %a" (pv n) (operand 0)
      Typ.pp (operand 0).v_type (pv n) (operand 1) Typ.pp (operand 1).v_type Typ.pp
      op.results.(0).v_type
  | "func.func" -> pp_func n ind ppf op
  | _ -> pp_generic n ind ppf op

and pp_func _outer ind ppf (op : op) =
  (* each function gets a fresh namer so value numbers restart *)
  let n = make_namer () in
  let name = func_name op in
  let _, rets = func_type op in
  let body = func_body op in
  let pad = String.make ind ' ' in
  Fmt.pf ppf "func.func @%s(%a)" name
    Fmt.(
      list ~sep:(any ", ") (fun ppf a -> Fmt.pf ppf "%a: %a" (pv n) a Typ.pp a.v_type))
    (Array.to_list body.blk_args);
  (match rets with [] -> () | _ -> Fmt.pf ppf " -> %a" Typ.pp_results rets);
  Fmt.pf ppf " {\n";
  List.iter (pp_op n (ind + 2) ppf) body.blk_ops;
  Fmt.pf ppf "%s}" pad

and pp_generic n ind ppf (op : op) =
  Fmt.pf ppf "\"%s\"(%a)" op.op_name (pvs n) (Array.to_list op.operands);
  if op.regions <> [] then begin
    Fmt.pf ppf " (%a)"
      Fmt.(list ~sep:(any ", ") (fun ppf r -> pp_region n ind ppf r))
      op.regions
  end;
  let attrs = op.attrs in
  if attrs <> [] then
    Fmt.pf ppf " {%a}" Fmt.(list ~sep:(any ", ") Attr.pp_named) attrs;
  Fmt.pf ppf " : (%a) -> %a" ptys
    (List.map (fun v -> v.v_type) (Array.to_list op.operands))
    Typ.pp_results
    (List.map (fun v -> v.v_type) (Array.to_list op.results))

and pp_region n ind ppf (r : region) =
  let pad = String.make ind ' ' in
  Fmt.pf ppf "{\n";
  List.iter
    (fun (b : block) ->
      if Array.length b.blk_args > 0 || List.length r.blocks > 1 then
        Fmt.pf ppf "%s^bb(%a):\n" pad
          Fmt.(
            list ~sep:(any ", ") (fun ppf a ->
                Fmt.pf ppf "%a: %a" (pv n) a Typ.pp a.v_type))
          (Array.to_list b.blk_args);
      List.iter (pp_op n (ind + 2) ppf) b.blk_ops)
    r.blocks;
  Fmt.pf ppf "%s}" pad

(** Print a whole module. *)
let pp_module ppf (m : op) =
  Fmt.pf ppf "module {\n";
  List.iter
    (fun op ->
      let n = make_namer () in
      pp_op n 2 ppf op)
    (module_ops m);
  Fmt.pf ppf "}\n"

let module_to_string m = Fmt.str "%a" pp_module m

(** Print a single op (with a fresh namer; cross-op value names will not be
    consistent — useful for debugging). *)
let op_to_string op = Fmt.str "%a" (pp_op (make_namer ()) 0) op
