(** The MLIR IR core: SSA values, operations, blocks, regions and modules.

    Everything is one mutable object graph, mirroring MLIR's design:
    operations own regions, regions own blocks, blocks own operations, and
    every operation result / block argument is an SSA {!value}.

    Construction protocol: {!create_op} allocates the operation together
    with its result values; blocks and regions are built with {!create_block}
    / {!create_region} and wired with {!append_op} / {!append_block}.  The
    functions in this module maintain parent pointers. *)

type value = {
  v_id : int;  (** globally unique *)
  v_type : Typ.t;
  v_def : def;
}

and def =
  | Op_result of op * int  (** defining op and result index *)
  | Block_arg of block * int  (** owning block and argument index *)

and op = {
  op_id : int;
  op_name : string;  (** full name, e.g. "arith.addi" *)
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : Attr.named list;  (** kept sorted by name *)
  mutable regions : region list;
  mutable op_parent : block option;
}

and block = {
  blk_id : int;
  mutable blk_args : value array;
  mutable blk_ops : op list;  (** in execution order *)
  mutable blk_parent : region option;
}

and region = {
  reg_id : int;
  mutable blocks : block list;
  mutable reg_parent : op option;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** [create_op name ~operands ~result_types ~attrs ~regions] builds a
    detached operation with fresh result values.  Attributes are stored
    sorted by name.  Regions are adopted (their parent is set). *)
let create_op ?(operands = []) ?(result_types = []) ?(attrs = []) ?(regions = [])
    name : op =
  let rec op =
    {
      op_id = fresh_id ();
      op_name = name;
      operands = Array.of_list operands;
      results = [||];
      attrs = Attr.sort attrs;
      regions;
      op_parent = None;
    }
  and results =
    lazy
      (Array.of_list
         (List.mapi
            (fun i t -> { v_id = fresh_id (); v_type = t; v_def = Op_result (op, i) })
            result_types))
  in
  op.results <- Lazy.force results;
  List.iter (fun r -> r.reg_parent <- Some op) regions;
  op

(** [create_block arg_types] builds a detached block with fresh arguments. *)
let create_block ?(arg_types = []) () : block =
  let rec blk =
    { blk_id = fresh_id (); blk_args = [||]; blk_ops = []; blk_parent = None }
  and args =
    lazy
      (Array.of_list
         (List.mapi
            (fun i t -> { v_id = fresh_id (); v_type = t; v_def = Block_arg (blk, i) })
            arg_types))
  in
  blk.blk_args <- Lazy.force args;
  blk

(** [create_region blocks] builds a detached region owning [blocks]. *)
let create_region blocks : region =
  let reg = { reg_id = fresh_id (); blocks; reg_parent = None } in
  List.iter (fun b -> b.blk_parent <- Some reg) blocks;
  reg

(** Append [op] at the end of [blk]. *)
let append_op blk op =
  op.op_parent <- Some blk;
  blk.blk_ops <- blk.blk_ops @ [ op ]

(** Append [blk] at the end of [reg]. *)
let append_block reg blk =
  blk.blk_parent <- Some reg;
  reg.blocks <- reg.blocks @ [ blk ]

(** Replace the full op list of [blk]. *)
let set_ops blk ops =
  List.iter (fun op -> op.op_parent <- Some blk) ops;
  blk.blk_ops <- ops

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let result op i = op.results.(i)

(** The single result of [op]; fails if it does not have exactly one. *)
let result1 op =
  if Array.length op.results <> 1 then
    invalid_arg (Fmt.str "%s has %d results, expected 1" op.op_name (Array.length op.results));
  op.results.(0)

let operand op i = op.operands.(i)
let attr op name = Attr.find op.attrs name

let set_attr op name v = op.attrs <- Attr.set op.attrs name v

(** Dialect prefix of an op name ("arith.addi" -> "arith"). *)
let dialect_of_name name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let op_dialect op = dialect_of_name op.op_name

(** The entry (first) block of a region. *)
let entry_block reg =
  match reg.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "entry_block: empty region"

(** Terminator (last op) of a block, if any. *)
let terminator blk =
  match List.rev blk.blk_ops with t :: _ -> Some t | [] -> None

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

(** Pre-order walk over [op] and all ops nested in its regions. *)
let rec walk_op (f : op -> unit) (op : op) =
  f op;
  List.iter (fun r -> List.iter (walk_block f) r.blocks) op.regions

and walk_block f blk = List.iter (walk_op f) blk.blk_ops

(** All ops satisfying [p] in a pre-order walk of [op]. *)
let collect_ops p op =
  let acc = ref [] in
  walk_op (fun o -> if p o then acc := o :: !acc) op;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Use tracking and mutation                                           *)
(* ------------------------------------------------------------------ *)

let value_equal a b = a.v_id = b.v_id

(** [replace_uses ~within ~from ~to_] rewrites every operand equal to [from]
    into [to_] in all ops nested under [within]. *)
let replace_uses ~(within : op) ~(from : value) ~(to_ : value) =
  walk_op
    (fun o ->
      Array.iteri
        (fun i v -> if value_equal v from then o.operands.(i) <- to_)
        o.operands)
    within

(** [has_uses ~within v] is true if some op under [within] uses [v]. *)
let has_uses ~(within : op) (v : value) =
  let found = ref false in
  walk_op
    (fun o -> if Array.exists (fun u -> value_equal u v) o.operands then found := true)
    within;
  !found

(** Remove [op] from its parent block (does not check uses). *)
let erase_op (op : op) =
  match op.op_parent with
  | None -> ()
  | Some blk ->
    blk.blk_ops <- List.filter (fun o -> o.op_id <> op.op_id) blk.blk_ops;
    op.op_parent <- None

(** Insert [new_op] just before [anchor] in [anchor]'s block. *)
let insert_before ~(anchor : op) (new_op : op) =
  match anchor.op_parent with
  | None -> invalid_arg "insert_before: anchor is detached"
  | Some blk ->
    new_op.op_parent <- Some blk;
    let rec ins = function
      | [] -> [ new_op ]
      | o :: rest when o.op_id = anchor.op_id -> new_op :: o :: rest
      | o :: rest -> o :: ins rest
    in
    blk.blk_ops <- ins blk.blk_ops

(* ------------------------------------------------------------------ *)
(* Modules                                                             *)
(* ------------------------------------------------------------------ *)

(** A module is the conventional top-level op: one region, one block. *)
let create_module () : op =
  let blk = create_block () in
  create_op "builtin.module" ~regions:[ create_region [ blk ] ]

let module_block (m : op) =
  match m.regions with
  | [ r ] -> entry_block r
  | _ -> invalid_arg "module_block: not a module"

(** Ops at the top level of a module. *)
let module_ops (m : op) = (module_block m).blk_ops

(** Add a top-level op (e.g. a function) to a module. *)
let module_append (m : op) (op : op) = append_op (module_block m) op

(** Find a function by symbol name in a module. *)
let find_function (m : op) name =
  List.find_opt
    (fun o ->
      o.op_name = "func.func"
      && match Attr.find o.attrs "sym_name" with
         | Some (Attr.String s) -> s = name
         | _ -> false)
    (module_ops m)

(** Symbol name of a func.func op. *)
let func_name (f : op) =
  match Attr.find f.attrs "sym_name" with
  | Some (Attr.String s) -> s
  | _ -> invalid_arg "func_name: missing sym_name"

(** Function type of a func.func op. *)
let func_type (f : op) =
  match Attr.find f.attrs "function_type" with
  | Some (Attr.Type (Typ.Function (args, rets))) -> (args, rets)
  | _ -> invalid_arg "func_type: missing function_type"

(** Body (entry block) of a func.func op. *)
let func_body (f : op) =
  match f.regions with
  | [ r ] -> entry_block r
  | _ -> invalid_arg "func_body: func.func must have one region"
