(** IR transformations: constant folding, CSE, DCE, and the
    canonicalization pass that combines them (MLIR's [-canonicalize]
    equivalent).

    Canonicalization is intentionally conservative — it mirrors what MLIR's
    default canonicalization patterns do for the dialects we model
    (folding, algebraic identities via folders, redundancy elimination).
    It does {e not} perform strength reduction (div-by-power-of-two) or
    re-association; those are exactly the optimizations the paper expresses
    in Egglog. *)

(* ------------------------------------------------------------------ *)
(* Constant utilities                                                  *)
(* ------------------------------------------------------------------ *)

(** If [v] is produced by a constant-like op, its value attribute. *)
let constant_value (v : Ir.value) : Attr.t option =
  match v.Ir.v_def with
  | Ir.Op_result (op, 0) when Dialect.is_constant_like op -> Ir.attr op "value"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Folding                                                             *)
(* ------------------------------------------------------------------ *)

(** Try to fold [op]; on success, rewrites uses and returns true.
    [root] is the enclosing op for use-replacement (usually the function). *)
let try_fold ~(root : Ir.op) (op : Ir.op) : bool =
  match Dialect.find op.Ir.op_name with
  | Some { d_fold = Some fold; _ } when Array.length op.Ir.results = 1 -> (
    let consts = Array.map constant_value op.Ir.operands in
    match fold op consts with
    | Dialect.No_fold -> false
    | Dialect.Fold_to_operand i ->
      Ir.replace_uses ~within:root ~from:op.Ir.results.(0) ~to_:op.Ir.operands.(i);
      true
    | Dialect.Fold_to_attr attr ->
      let c =
        Ir.create_op "arith.constant"
          ~attrs:[ ("value", attr) ]
          ~result_types:[ op.Ir.results.(0).Ir.v_type ]
      in
      Ir.insert_before ~anchor:op c;
      Ir.replace_uses ~within:root ~from:op.Ir.results.(0) ~to_:(Ir.result1 c);
      true)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

(** Remove pure ops whose results are all unused.  Iterates until a fixed
    point so chains of dead ops disappear.  Regions of {e unregistered} ops
    are left untouched: an unknown op may give meaning to otherwise-unused
    values nested inside it.  Returns the number removed. *)
let dce (root : Ir.op) : int =
  Registry.ensure_registered ();
  (* walk like Ir.walk_op but do not collect candidates inside opaque ops *)
  let rec walk_known f (op : Ir.op) =
    f op;
    if Dialect.is_registered op.Ir.op_name then
      List.iter
        (fun (r : Ir.region) ->
          List.iter (fun (b : Ir.block) -> List.iter (walk_known f) b.Ir.blk_ops) r.Ir.blocks)
        op.Ir.regions
  in
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    (* count uses in one full walk (including opaque regions) *)
    let uses = Hashtbl.create 256 in
    Ir.walk_op
      (fun o ->
        Array.iter
          (fun (v : Ir.value) ->
            Hashtbl.replace uses v.Ir.v_id (1 + Option.value ~default:0 (Hashtbl.find_opt uses v.Ir.v_id)))
          o.Ir.operands)
      root;
    let dead = ref [] in
    walk_known
      (fun o ->
        if
          Dialect.is_pure o
          && Array.length o.Ir.results > 0
          && Array.for_all
               (fun (r : Ir.value) -> not (Hashtbl.mem uses r.Ir.v_id))
               o.Ir.results
        then dead := o :: !dead)
      root;
    List.iter
      (fun o ->
        Ir.erase_op o;
        incr removed;
        changed := true)
      !dead
  done;
  !removed

(* ------------------------------------------------------------------ *)
(* Common subexpression elimination                                    *)
(* ------------------------------------------------------------------ *)

(** Structural key of an op: name, operand ids, attributes, result types
    (two [tensor.empty()] ops of different shapes must not collide). *)
let op_key (op : Ir.op) =
  let operands = Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.v_id) op.Ir.operands) in
  let result_types = Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.v_type) op.Ir.results) in
  (op.Ir.op_name, operands, op.Ir.attrs, result_types)

(** CSE within each block (pure, region-free ops only).  Returns the number
    of ops removed. *)
let cse (root : Ir.op) : int =
  Registry.ensure_registered ();
  let removed = ref 0 in
  let rec do_block (b : Ir.block) =
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (o : Ir.op) ->
        List.iter (fun (r : Ir.region) -> List.iter do_block r.Ir.blocks) o.Ir.regions;
        if Dialect.is_pure o && o.Ir.regions = [] && Array.length o.Ir.results = 1 then begin
          let key = op_key o in
          match Hashtbl.find_opt seen key with
          | Some (prev : Ir.op) ->
            Ir.replace_uses ~within:root ~from:o.Ir.results.(0) ~to_:prev.Ir.results.(0);
            Ir.erase_op o;
            incr removed
          | None -> Hashtbl.replace seen key o
        end)
      b.Ir.blk_ops
  in
  List.iter (fun (r : Ir.region) -> List.iter do_block r.Ir.blocks) root.Ir.regions;
  !removed

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

type stats = { mutable folds : int; mutable cse_removed : int; mutable dce_removed : int }

(** Run folding + CSE + DCE to a fixed point over [root] (typically a
    module or function).  Returns statistics. *)
let canonicalize (root : Ir.op) : stats =
  Registry.ensure_registered ();
  let stats = { folds = 0; cse_removed = 0; dce_removed = 0 } in
  let changed = ref true in
  let budget = ref 100 in
  while !changed && !budget > 0 do
    changed := false;
    decr budget;
    (* folding pass *)
    let folded = ref 0 in
    Ir.walk_op (fun o -> if try_fold ~root o then incr folded) root;
    stats.folds <- stats.folds + !folded;
    if !folded > 0 then changed := true;
    let c = cse root in
    stats.cse_removed <- stats.cse_removed + c;
    if c > 0 then changed := true;
    let d = dce root in
    stats.dce_removed <- stats.dce_removed + d;
    if d > 0 then changed := true
  done;
  stats
