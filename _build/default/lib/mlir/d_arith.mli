(** The [arith] dialect: integer and floating-point arithmetic.  Builders
    append the new op to the given block and return its result value;
    integer binary ops take the result type from the left operand, float
    ops additionally take an optional fastmath flag. *)

val fm_default : Attr.named

(** [constant blk attr ty] builds [arith.constant]. *)
val constant : Ir.block -> Attr.t -> Typ.t -> Ir.value

val const_int : Ir.block -> ?ty:Typ.t -> int64 -> Ir.value
val const_index : Ir.block -> int -> Ir.value
val const_float : Ir.block -> ?ty:Typ.t -> float -> Ir.value

(** Generic binary builder by op name (used by tests and generators). *)
val binary :
  string -> ?attrs:Attr.named list -> Ir.block -> Ir.value -> Ir.value -> Ir.value

val addi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val subi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val muli : Ir.block -> Ir.value -> Ir.value -> Ir.value
val divsi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val divui : Ir.block -> Ir.value -> Ir.value -> Ir.value
val remsi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val shli : Ir.block -> Ir.value -> Ir.value -> Ir.value
val shrsi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val shrui : Ir.block -> Ir.value -> Ir.value -> Ir.value
val andi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val ori : Ir.block -> Ir.value -> Ir.value -> Ir.value
val xori : Ir.block -> Ir.value -> Ir.value -> Ir.value
val minsi : Ir.block -> Ir.value -> Ir.value -> Ir.value
val maxsi : Ir.block -> Ir.value -> Ir.value -> Ir.value

val addf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val subf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val mulf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val divf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val maximumf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val minimumf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value -> Ir.value
val negf : ?fm:Attr.fastmath -> Ir.block -> Ir.value -> Ir.value

(** [cmpi blk pred a b] with a predicate name like "slt". *)
val cmpi : Ir.block -> string -> Ir.value -> Ir.value -> Ir.value

(** [cmpf blk pred a b] with a predicate name like "oge". *)
val cmpf : ?fm:Attr.fastmath -> Ir.block -> string -> Ir.value -> Ir.value -> Ir.value

val select : Ir.block -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val index_cast : Ir.block -> Ir.value -> Typ.t -> Ir.value
val sitofp : Ir.block -> Ir.value -> Typ.t -> Ir.value
val fptosi : Ir.block -> Ir.value -> Typ.t -> Ir.value
val truncf : Ir.block -> Ir.value -> Typ.t -> Ir.value
val extf : Ir.block -> Ir.value -> Typ.t -> Ir.value
val bitcast : Ir.block -> Ir.value -> Typ.t -> Ir.value

val register : unit -> unit
