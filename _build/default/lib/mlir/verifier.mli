(** IR verification: SSA dominance, arity checks and per-op verifiers.

    Within a block, every operand must be defined by an earlier op in the
    same block, a block argument of an enclosing block, or an op in an
    enclosing scope preceding the region-holding ancestor. *)

type error = { e_op : string; e_msg : string }

val pp_error : Format.formatter -> error -> unit

(** Verify a module or any op; returns all errors found. *)
val verify : Ir.op -> error list

(** @raise Failure with a readable message on any error. *)
val verify_exn : Ir.op -> unit
