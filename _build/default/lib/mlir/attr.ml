(** MLIR attributes: typed compile-time metadata attached to operations.

    This covers the builtin attributes DialEgg predefines (integers, floats,
    strings, booleans, arrays, types, symbol references, unit) plus the
    [arith.fastmath] flags used throughout the paper's case studies, and an
    opaque escape hatch mirroring DialEgg's [OpaqueAttr]. *)

type fastmath =
  | Fm_none
  | Fm_fast
  | Fm_flags of string list
      (** subset of [nnan ninf nsz arcp contract afn reassoc] *)

type t =
  | Int of int64 * Typ.t
  | Float of float * Typ.t
  | String of string
  | Bool of bool
  | Type of Typ.t
  | Array of t list
  | Symbol_ref of string  (** [@name] *)
  | Unit
  | Fastmath of fastmath
  | Dense_int of int64 list * Typ.t  (** [dense<[...]> : tensor<...>] *)
  | Dense_float of float list * Typ.t
  | Opaque of string * string  (** serialized form, short name *)

type named = string * t
(** A named attribute, e.g. [value = 1 : i64]. *)

let equal (a : t) (b : t) = a = b

let rec pp ppf (a : t) =
  match a with
  | Int (v, t) -> Fmt.pf ppf "%Ld : %a" v Typ.pp t
  | Float (v, t) -> Fmt.pf ppf "%s : %a" (float_repr v) Typ.pp t
  | String s -> Fmt.pf ppf "\"%s\"" (String.concat "\\\"" (String.split_on_char '"' s))
  | Bool b -> Fmt.bool ppf b
  | Type t -> Typ.pp ppf t
  | Array items -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) items
  | Symbol_ref s -> Fmt.pf ppf "@%s" s
  | Unit -> Fmt.string ppf "unit"
  | Fastmath fm -> Fmt.pf ppf "#arith.fastmath<%s>" (fastmath_repr fm)
  | Dense_int (vs, t) ->
    Fmt.pf ppf "dense<[%a]> : %a" Fmt.(list ~sep:(any ", ") (fmt "%Ld")) vs Typ.pp t
  | Dense_float (vs, t) ->
    Fmt.pf ppf "dense<[%a]> : %a"
      Fmt.(list ~sep:(any ", ") (using float_repr string))
      vs Typ.pp t
  | Opaque (_, name) -> Fmt.pf ppf "#%s" name

and float_repr v =
  (* ensure round-trippable floats that still look like floats *)
  let s = Printf.sprintf "%.17g" v in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
  else s ^ ".0"

and fastmath_repr = function
  | Fm_none -> "none"
  | Fm_fast -> "fast"
  | Fm_flags fs -> String.concat "," fs

let to_string a = Fmt.str "%a" pp a

let pp_named ppf (name, a) =
  match a with
  | Unit -> Fmt.string ppf name
  | _ -> Fmt.pf ppf "%s = %a" name pp a

(** Find a named attribute. *)
let find (attrs : named list) name = List.assoc_opt name attrs

(** Replace or add a named attribute, keeping the list sorted by name (the
    canonical storage order, which the Egglog translation relies on). *)
let set (attrs : named list) name v =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    ((name, v) :: List.remove_assoc name attrs)

let sort (attrs : named list) =
  List.sort (fun (a, _) (b, _) -> String.compare a b) attrs

(** Integer payload of an [Int] attribute. *)
let as_int = function Int (v, _) -> Some v | _ -> None

let as_float = function Float (v, _) -> Some v | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_symbol = function Symbol_ref s -> Some s | _ -> None
let as_fastmath = function Fastmath f -> Some f | _ -> None

(** Is the fast flag (or a superset) set? *)
let is_fast = function
  | Fastmath Fm_fast -> true
  | Fastmath (Fm_flags fs) ->
    List.for_all (fun f -> List.mem f fs) [ "nnan"; "ninf"; "nsz"; "arcp"; "contract"; "afn"; "reassoc" ]
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Comparison predicates (arith.cmpi / arith.cmpf), stored as integer  *)
(* attributes in MLIR                                                  *)
(* ------------------------------------------------------------------ *)

(** [arith.cmpi] predicates, in MLIR's numbering. *)
let cmpi_predicates =
  [| "eq"; "ne"; "slt"; "sle"; "sgt"; "sge"; "ult"; "ule"; "ugt"; "uge" |]

(** [arith.cmpf] predicates, in MLIR's numbering. *)
let cmpf_predicates =
  [|
    "false"; "oeq"; "ogt"; "oge"; "olt"; "ole"; "one"; "ord";
    "ueq"; "ugt"; "uge"; "ult"; "ule"; "une"; "uno"; "true";
  |]

let cmpi_predicate_of_string s =
  let rec find i =
    if i >= Array.length cmpi_predicates then None
    else if cmpi_predicates.(i) = s then Some i
    else find (i + 1)
  in
  find 0

let cmpf_predicate_of_string s =
  let rec find i =
    if i >= Array.length cmpf_predicates then None
    else if cmpf_predicates.(i) = s then Some i
    else find (i + 1)
  in
  find 0
