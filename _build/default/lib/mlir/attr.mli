(** MLIR attributes: typed compile-time metadata attached to operations —
    the builtin attributes DialEgg predefines plus [arith.fastmath] flags
    and an opaque escape hatch. *)

type fastmath =
  | Fm_none
  | Fm_fast
  | Fm_flags of string list
      (** subset of [nnan ninf nsz arcp contract afn reassoc] *)

type t =
  | Int of int64 * Typ.t
  | Float of float * Typ.t
  | String of string
  | Bool of bool
  | Type of Typ.t
  | Array of t list
  | Symbol_ref of string  (** [@name] *)
  | Unit
  | Fastmath of fastmath
  | Dense_int of int64 list * Typ.t
  | Dense_float of float list * Typ.t
  | Opaque of string * string  (** serialized form, short name *)

type named = string * t
(** A named attribute, e.g. [value = 1 : i64]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_named : Format.formatter -> named -> unit

(** Round-trippable float literal text. *)
val float_repr : float -> string

val fastmath_repr : fastmath -> string

(** Find a named attribute. *)
val find : named list -> string -> t option

(** Replace or add a named attribute; the list stays sorted by name (the
    canonical storage order the Egglog translation relies on). *)
val set : named list -> string -> t -> named list

(** Sort a named-attribute list by name. *)
val sort : named list -> named list

val as_int : t -> int64 option
val as_float : t -> float option
val as_string : t -> string option
val as_symbol : t -> string option
val as_fastmath : t -> fastmath option

(** Is the [fast] flag (or the full flag set) present? *)
val is_fast : t -> bool

(** [arith.cmpi] predicate names, indexed by MLIR's numbering. *)
val cmpi_predicates : string array

(** [arith.cmpf] predicate names, indexed by MLIR's numbering. *)
val cmpf_predicates : string array

val cmpi_predicate_of_string : string -> int option
val cmpf_predicate_of_string : string -> int option
