(** The MLIR builtin type system (the subset DialEgg predefines).

    Types are immutable and compared structurally; the printer follows
    MLIR's textual syntax so that serialized types round-trip through
    {!of_string}. *)

type float_kind = F16 | F32 | F64

type t =
  | Integer of int  (** [iN]; [i1] doubles as bool *)
  | Float of float_kind
  | Index
  | None_type
  | Complex of t
  | Tuple of t list
  | Ranked_tensor of int list * t  (** dimensions; [-1] encodes a dynamic [?] *)
  | Unranked_tensor of t
  | Memref of int list * t
  | Function of t list * t list
  | Opaque of string * string  (** serialized form, short name *)

val i1 : t
val i8 : t
val i16 : t
val i32 : t
val i64 : t
val f16 : t
val f32 : t
val f64 : t
val index : t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_integer : t -> bool
val is_float : t -> bool
val is_index : t -> bool
val is_int_or_index : t -> bool

(** Bit width of an integer type; [index] counts as 64.
    @raise Invalid_argument on other types. *)
val int_width : t -> int

(** Element type of a tensor or memref. *)
val element_type : t -> t option

(** Static shape of a ranked tensor or memref. *)
val shape : t -> int list option

val is_shaped : t -> bool

(** Product of static dimensions. *)
val num_elements : int list -> int

val pp_float_kind : Format.formatter -> float_kind -> unit
val pp : Format.formatter -> t -> unit

(** Print a result-type list: one type bare (function types parenthesized),
    several in parentheses. *)
val pp_results : Format.formatter -> t list -> unit

val to_string : t -> string

(** {1 Parsing} *)

exception Parse_error of string

(** A cursor over source text; shared with the MLIR parser, which delegates
    type syntax here. *)
type cursor = { src : string; mutable pos : int }

val peek_char : cursor -> char option
val eat_string : cursor -> string -> bool
val expect_string : cursor -> string -> unit
val skip_spaces : cursor -> unit
val read_int : cursor -> int
val read_ident : cursor -> string

(** Parse one type starting at the cursor. *)
val read_type : cursor -> t

(** Parse a complete type from its MLIR textual form. *)
val of_string : string -> t
