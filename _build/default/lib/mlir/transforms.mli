(** IR transformations: constant folding, CSE, DCE, and canonicalization
    (MLIR's [-canonicalize] equivalent: folding + redundancy elimination to
    a fixed point).

    Canonicalization is deliberately conservative — no strength reduction
    or re-association; those are exactly the optimizations the paper
    expresses in Egglog. *)

(** If the value is produced by a constant-like op, its value attribute. *)
val constant_value : Ir.value -> Attr.t option

(** Try to fold one op; rewrites uses within [root] and returns true on
    success. *)
val try_fold : root:Ir.op -> Ir.op -> bool

(** Remove pure ops whose results are unused, to a fixed point.  Regions of
    unregistered ops are left untouched (an unknown op may give meaning to
    nested values).  Returns the number removed. *)
val dce : Ir.op -> int

(** Common-subexpression elimination within each block (pure, region-free,
    single-result ops; the key includes result types).  Returns the number
    removed. *)
val cse : Ir.op -> int

type stats = { mutable folds : int; mutable cse_removed : int; mutable dce_removed : int }

(** Folding + CSE + DCE to a fixed point over a module or function. *)
val canonicalize : Ir.op -> stats
