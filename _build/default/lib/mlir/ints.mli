(** Fixed-width integer semantics for [iN] types: values are sign-extended
    [int64], arithmetic wraps modulo 2^N. *)

(** Truncate to [width] bits and sign-extend back.  [width] in [1; 64]. *)
val trunc : int -> int64 -> int64

(** Unsigned reinterpretation of a [width]-bit value. *)
val to_unsigned : int -> int64 -> int64

val add : int -> int64 -> int64 -> int64
val sub : int -> int64 -> int64 -> int64
val mul : int -> int64 -> int64 -> int64

(** Signed division.  @raise Failure on division by zero (MLIR traps). *)
val divsi : int -> int64 -> int64 -> int64

val divui : int -> int64 -> int64 -> int64
val remsi : int -> int64 -> int64 -> int64
val remui : int -> int64 -> int64 -> int64
val shli : int -> int64 -> int64 -> int64

(** Arithmetic (sign-preserving) right shift. *)
val shrsi : int -> int64 -> int64 -> int64

(** Logical right shift on the [width]-bit value. *)
val shrui : int -> int64 -> int64 -> int64

val andi : int -> int64 -> int64 -> int64
val ori : int -> int64 -> int64 -> int64
val xori : int -> int64 -> int64 -> int64
val minsi : int -> int64 -> int64 -> int64
val maxsi : int -> int64 -> int64 -> int64
val minui : int -> int64 -> int64 -> int64
val maxui : int -> int64 -> int64 -> int64

(** Evaluate an [arith.cmpi] predicate (MLIR predicate number). *)
val cmpi : int -> int -> int64 -> int64 -> bool

(** Evaluate an [arith.cmpf] predicate (MLIR predicate number). *)
val cmpf : int -> float -> float -> bool

val is_power_of_two : int64 -> bool

(** Floor log2 of a positive value.  @raise Invalid_argument otherwise. *)
val log2 : int64 -> int
