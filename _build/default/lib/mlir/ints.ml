(** Fixed-width integer semantics for [iN] types.

    MLIR integers are bit-vectors; arithmetic wraps modulo 2^N.  We store
    all integers as sign-extended [int64] and re-normalize after every
    operation. *)

(** [trunc width v] truncates [v] to [width] bits and sign-extends back to
    64 bits.  [width] must be in [1; 64]. *)
let trunc width v =
  if width >= 64 then v
  else begin
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left v shift) shift
  end

(** Unsigned reinterpretation of a [width]-bit value. *)
let to_unsigned width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let add width a b = trunc width (Int64.add a b)
let sub width a b = trunc width (Int64.sub a b)
let mul width a b = trunc width (Int64.mul a b)

(** Signed division; MLIR's arith.divsi traps on division by zero — we
    raise. *)
let divsi _width a b =
  if Int64.equal b 0L then failwith "arith.divsi: division by zero"
  else Int64.div a b

let divui width a b =
  if Int64.equal b 0L then failwith "arith.divui: division by zero"
  else Int64.unsigned_div (to_unsigned width a) (to_unsigned width b)

let remsi _width a b =
  if Int64.equal b 0L then failwith "arith.remsi: remainder by zero" else Int64.rem a b

let remui width a b =
  if Int64.equal b 0L then failwith "arith.remui: remainder by zero"
  else Int64.unsigned_rem (to_unsigned width a) (to_unsigned width b)

let shli width a b = trunc width (Int64.shift_left a (Int64.to_int b))

(** Arithmetic (sign-preserving) right shift. *)
let shrsi _width a b = Int64.shift_right a (Int64.to_int b)

(** Logical right shift on the [width]-bit value. *)
let shrui width a b =
  trunc width (Int64.shift_right_logical (to_unsigned width a) (Int64.to_int b))

let andi _width = Int64.logand
let ori _width = Int64.logor
let xori width a b = trunc width (Int64.logxor a b)
let minsi _width a b = Int64.min a b
let maxsi _width a b = Int64.max a b

let minui width a b =
  if Int64.unsigned_compare (to_unsigned width a) (to_unsigned width b) <= 0 then a else b

let maxui width a b =
  if Int64.unsigned_compare (to_unsigned width a) (to_unsigned width b) >= 0 then a else b

(** Evaluate an [arith.cmpi] predicate (by MLIR predicate number). *)
let cmpi width pred a b =
  let s = Int64.compare a b in
  let u = Int64.unsigned_compare (to_unsigned width a) (to_unsigned width b) in
  match pred with
  | 0 -> s = 0 (* eq *)
  | 1 -> s <> 0 (* ne *)
  | 2 -> s < 0 (* slt *)
  | 3 -> s <= 0 (* sle *)
  | 4 -> s > 0 (* sgt *)
  | 5 -> s >= 0 (* sge *)
  | 6 -> u < 0 (* ult *)
  | 7 -> u <= 0 (* ule *)
  | 8 -> u > 0 (* ugt *)
  | 9 -> u >= 0 (* uge *)
  | _ -> failwith (Printf.sprintf "invalid cmpi predicate %d" pred)

(** Evaluate an [arith.cmpf] predicate (by MLIR predicate number). *)
let cmpf pred a b =
  let ord = not (Float.is_nan a || Float.is_nan b) in
  match pred with
  | 0 -> false
  | 1 -> ord && a = b (* oeq *)
  | 2 -> ord && a > b (* ogt *)
  | 3 -> ord && a >= b (* oge *)
  | 4 -> ord && a < b (* olt *)
  | 5 -> ord && a <= b (* ole *)
  | 6 -> ord && a <> b (* one *)
  | 7 -> ord (* ord *)
  | 8 -> (not ord) || a = b (* ueq *)
  | 9 -> (not ord) || a > b (* ugt *)
  | 10 -> (not ord) || a >= b (* uge *)
  | 11 -> (not ord) || a < b (* ult *)
  | 12 -> (not ord) || a <= b (* ule *)
  | 13 -> (not ord) || a <> b (* une *)
  | 14 -> not ord (* uno *)
  | 15 -> true
  | _ -> failwith (Printf.sprintf "invalid cmpf predicate %d" pred)

(** [is_power_of_two v] for positive [v]. *)
let is_power_of_two v =
  Int64.compare v 0L > 0 && Int64.equal (Int64.logand v (Int64.sub v 1L)) 0L

(** Floor log2 of a positive value. *)
let log2 v =
  if Int64.compare v 0L <= 0 then invalid_arg "log2: non-positive";
  let rec go acc v = if Int64.compare v 1L <= 0 then acc else go (acc + 1) (Int64.shift_right_logical v 1) in
  go 0 v
