(** The hand-written matmul re-association pass — the paper's §8.4 baseline.

    This mirrors the >120-line C++ MLIR pass the paper compares against: a
    {e greedy, local} rewrite that walks the function once and, at every
    [linalg.matmul] whose left operand is itself a matmul, decides between
    [(X·Y)·Z] and [X·(Y·Z)] by comparing the scalar-multiplication counts of
    {e only those three matrices}.  It never reconsiders a decision and
    never looks at longer chains, which is exactly why it matches DialEgg on
    2MM but loses on 3MM (and longer chains): equality saturation considers
    all associations globally.

    Line-count note for the §8.4 comparison: the equivalent optimization is
    12 lines of Egglog (see [Dialegg.Rules.matmul_assoc]); this file is the
    “hand-written pass” side of that comparison. *)

let mm_cost (a : int * int) (b : int * int) = fst a * snd a * snd b

let dims_of (v : Ir.value) =
  match Typ.shape v.Ir.v_type with
  | Some [ r; c ] when r >= 0 && c >= 0 -> Some (r, c)
  | _ -> None

(** Find the op defining [v] if it is a matmul. *)
let defining_matmul (v : Ir.value) : Ir.op option =
  match v.Ir.v_def with
  | Ir.Op_result (op, 0) when op.Ir.op_name = "linalg.matmul" -> Some op
  | _ -> None

(** Apply the greedy local rewrite to one function.  Returns the number of
    rewrites performed. *)
let run_on_func (func : Ir.op) : int =
  Registry.ensure_registered ();
  let rewrites = ref 0 in
  let body = Ir.func_body func in
  (* single pre-order walk, no fixpoint: the pass is deliberately local *)
  let worklist = Ir.collect_ops (fun o -> o.Ir.op_name = "linalg.matmul") func in
  List.iter
    (fun (outer : Ir.op) ->
      if outer.Ir.op_parent <> None (* not erased by an earlier rewrite *) then
        match defining_matmul outer.Ir.operands.(0) with
        | None -> ()
        | Some inner -> (
          (* outer = (x·y)·z, inner = x·y *)
          let x = inner.Ir.operands.(0)
          and y = inner.Ir.operands.(1)
          and z = outer.Ir.operands.(1) in
          match (dims_of x, dims_of y, dims_of z) with
          | Some dx, Some dy, Some dz ->
            let cost_left = mm_cost dx dy + mm_cost (fst dx, snd dy) dz in
            let cost_right = mm_cost dy dz + mm_cost dx (fst dy, snd dz) in
            if cost_right < cost_left then begin
              (* build x·(y·z) just before the outer op *)
              let elem =
                match Typ.element_type z.Ir.v_type with
                | Some e -> e
                | None -> Typ.f64
              in
              let yz_ty = Typ.Ranked_tensor ([ fst dy; snd dz ], elem) in
              let empty =
                Ir.create_op "tensor.empty" ~result_types:[ yz_ty ]
              in
              Ir.insert_before ~anchor:outer empty;
              let yz =
                Ir.create_op "linalg.matmul"
                  ~operands:[ y; z; Ir.result1 empty ]
                  ~result_types:[ yz_ty ]
              in
              Ir.insert_before ~anchor:outer yz;
              let xyz =
                Ir.create_op "linalg.matmul"
                  ~operands:[ x; Ir.result1 yz; outer.Ir.operands.(2) ]
                  ~result_types:[ outer.Ir.results.(0).Ir.v_type ]
              in
              Ir.insert_before ~anchor:outer xyz;
              Ir.replace_uses ~within:func ~from:outer.Ir.results.(0)
                ~to_:(Ir.result1 xyz);
              Ir.erase_op outer;
              incr rewrites
            end
          | _ -> ()))
    worklist;
  ignore body;
  (* clean up matmuls/empties that became dead *)
  ignore (Transforms.dce func);
  !rewrites

(** Run on every function of a module. *)
let run (m : Ir.op) : int =
  List.fold_left
    (fun acc op -> if op.Ir.op_name = "func.func" then acc + run_on_func op else acc)
    0 (Ir.module_ops m)
