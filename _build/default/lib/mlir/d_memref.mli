(** The [memref] dialect: mutable buffers.  Deliberately not pre-defined in
    DialEgg's Egglog prelude — loads and stores are the paper's §9 example
    of side-effecting operations the translation treats opaquely
    ([memref.store] has zero results, so it becomes a block anchor). *)

val alloc : Ir.block -> Typ.t -> Ir.value
val dealloc : Ir.block -> Ir.value -> Ir.op
val load : Ir.block -> Ir.value -> Ir.value list -> Ir.value
val store : Ir.block -> Ir.value -> Ir.value -> Ir.value list -> Ir.op
val copy : Ir.block -> Ir.value -> Ir.value -> Ir.op
val register : unit -> unit
