(** The MLIR builtin type system (the subset DialEgg predefines).

    Types are immutable values compared structurally.  The printer follows
    MLIR's textual syntax ([i64], [f32], [tensor<2x3xf64>], ...) so that
    serialized types round-trip through {!of_string}. *)

type float_kind = F16 | F32 | F64

type t =
  | Integer of int  (** [iN]; [i1] doubles as bool *)
  | Float of float_kind
  | Index
  | None_type
  | Complex of t
  | Tuple of t list
  | Ranked_tensor of int list * t  (** dimensions; [-1] encodes a dynamic [?] *)
  | Unranked_tensor of t
  | Memref of int list * t
  | Function of t list * t list
  | Opaque of string * string  (** serialized form, short name *)

let i1 = Integer 1
let i8 = Integer 8
let i16 = Integer 16
let i32 = Integer 32
let i64 = Integer 64
let f16 = Float F16
let f32 = Float F32
let f64 = Float F64
let index = Index

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let is_integer = function Integer _ -> true | _ -> false
let is_float = function Float _ -> true | _ -> false
let is_index = function Index -> true | _ -> false

(** Integer width; indexes count as 64-bit. *)
let int_width = function
  | Integer n -> n
  | Index -> 64
  | t -> invalid_arg (Fmt.str "int_width: not an integer type (%d)" (Obj.tag (Obj.repr t)))

let is_int_or_index t = is_integer t || is_index t

(** Element type of a tensor or memref. *)
let element_type = function
  | Ranked_tensor (_, e) | Unranked_tensor e | Memref (_, e) -> Some e
  | _ -> None

(** Shape of a ranked tensor or memref. *)
let shape = function
  | Ranked_tensor (dims, _) | Memref (dims, _) -> Some dims
  | _ -> None

let is_shaped t = shape t <> None

(** Number of elements in a static shape. *)
let num_elements dims = List.fold_left ( * ) 1 dims

let pp_float_kind ppf k =
  Fmt.string ppf (match k with F16 -> "f16" | F32 -> "f32" | F64 -> "f64")

let rec pp ppf (t : t) =
  match t with
  | Integer n -> Fmt.pf ppf "i%d" n
  | Float k -> pp_float_kind ppf k
  | Index -> Fmt.string ppf "index"
  | None_type -> Fmt.string ppf "none"
  | Complex e -> Fmt.pf ppf "complex<%a>" pp e
  | Tuple ts -> Fmt.pf ppf "tuple<%a>" Fmt.(list ~sep:(any ", ") pp) ts
  | Ranked_tensor (dims, e) -> Fmt.pf ppf "tensor<%a%a>" pp_dims dims pp e
  | Unranked_tensor e -> Fmt.pf ppf "tensor<*x%a>" pp e
  | Memref (dims, e) -> Fmt.pf ppf "memref<%a%a>" pp_dims dims pp e
  | Function (args, rets) ->
    Fmt.pf ppf "(%a) -> %a"
      Fmt.(list ~sep:(any ", ") pp)
      args pp_results rets
  | Opaque (_, name) -> Fmt.pf ppf "!%s" name

and pp_dims ppf dims =
  List.iter (fun d -> if d < 0 then Fmt.string ppf "?x" else Fmt.pf ppf "%dx" d) dims

and pp_results ppf = function
  | [ (Function _ as t) ] ->
    (* a lone function-type result must be parenthesized to stay parseable *)
    Fmt.pf ppf "(%a)" pp t
  | [ t ] -> pp ppf t
  | ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) ts

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(** A small recursive-descent reader over a string cursor; shared with the
    main MLIR parser, which delegates type syntax here. *)
type cursor = { src : string; mutable pos : int }

let peek_char c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let eat_string c s =
  let n = String.length s in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = s then begin
    c.pos <- c.pos + n;
    true
  end
  else false

let expect_string c s =
  if not (eat_string c s) then
    raise (Parse_error (Fmt.str "expected %S at position %d in %S" s c.pos c.src))

let skip_spaces c =
  while
    match peek_char c with
    | Some (' ' | '\t' | '\n') ->
      c.pos <- c.pos + 1;
      true
    | _ -> false
  do
    ()
  done

let read_int c =
  let start = c.pos in
  if peek_char c = Some '-' then c.pos <- c.pos + 1;
  while match peek_char c with Some ('0' .. '9') -> c.pos <- c.pos + 1; true | _ -> false do
    ()
  done;
  if c.pos = start then raise (Parse_error (Fmt.str "expected an integer at %d in %S" start c.src));
  int_of_string (String.sub c.src start (c.pos - start))

let read_ident c =
  let start = c.pos in
  while
    match peek_char c with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.') ->
      c.pos <- c.pos + 1;
      true
    | _ -> false
  do
    ()
  done;
  String.sub c.src start (c.pos - start)

(** Parse dims like [2x3x] or [?x10x] followed by an element type. *)
let rec read_shaped c =
  let dims = ref [] in
  let rec loop () =
    skip_spaces c;
    match peek_char c with
    | Some '?' ->
      c.pos <- c.pos + 1;
      expect_string c "x";
      dims := -1 :: !dims;
      loop ()
    | Some ('0' .. '9') ->
      let save = c.pos in
      let n = read_int c in
      if eat_string c "x" then begin
        dims := n :: !dims;
        loop ()
      end
      else begin
        (* not a dim: could be e.g. i64 element? digits alone can't start a type *)
        c.pos <- save;
        ()
      end
    | _ -> ()
  in
  loop ();
  let elem = read_type c in
  (List.rev !dims, elem)

and read_type c : t =
  skip_spaces c;
  if eat_string c "tensor<" then begin
    if eat_string c "*x" then begin
      let e = read_type c in
      expect_string c ">";
      Unranked_tensor e
    end
    else begin
      let dims, e = read_shaped c in
      expect_string c ">";
      Ranked_tensor (dims, e)
    end
  end
  else if eat_string c "memref<" then begin
    let dims, e = read_shaped c in
    expect_string c ">";
    Memref (dims, e)
  end
  else if eat_string c "complex<" then begin
    let e = read_type c in
    expect_string c ">";
    Complex e
  end
  else if eat_string c "tuple<" then begin
    let rec elems acc =
      let e = read_type c in
      skip_spaces c;
      if eat_string c "," then elems (e :: acc) else List.rev (e :: acc)
    in
    let ts = elems [] in
    expect_string c ">";
    Tuple ts
  end
  else if eat_string c "index" then Index
  else if eat_string c "none" then None_type
  else if eat_string c "(" then begin
    (* function type *)
    let rec args acc =
      skip_spaces c;
      if eat_string c ")" then List.rev acc
      else begin
        let e = read_type c in
        skip_spaces c;
        ignore (eat_string c ",");
        args (e :: acc)
      end
    in
    let a = args [] in
    skip_spaces c;
    expect_string c "->";
    skip_spaces c;
    let rets =
      if eat_string c "(" then begin
        let rec rets acc =
          skip_spaces c;
          if eat_string c ")" then List.rev acc
          else begin
            let e = read_type c in
            skip_spaces c;
            ignore (eat_string c ",");
            rets (e :: acc)
          end
        in
        rets []
      end
      else [ read_type c ]
    in
    Function (a, rets)
  end
  else if eat_string c "!" then begin
    let name = read_ident c in
    Opaque ("!" ^ name, name)
  end
  else
    match peek_char c with
    | Some 'i' ->
      c.pos <- c.pos + 1;
      Integer (read_int c)
    | Some 'f' ->
      c.pos <- c.pos + 1;
      (match read_int c with
      | 16 -> Float F16
      | 32 -> Float F32
      | 64 -> Float F64
      | n -> raise (Parse_error (Fmt.str "unsupported float width f%d" n)))
    | _ -> raise (Parse_error (Fmt.str "cannot parse type at %d in %S" c.pos c.src))

(** Parse a type from its MLIR textual form. *)
let of_string s =
  let c = { src = s; pos = 0 } in
  let t = read_type c in
  skip_spaces c;
  if c.pos <> String.length s then
    raise (Parse_error (Fmt.str "trailing characters after type in %S" s));
  t
