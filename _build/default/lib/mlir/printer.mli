(** Printing IR back to MLIR textual syntax.  Common operations print in
    their pretty form; everything else falls back to the generic form,
    which {!Parser} always accepts — modules round-trip. *)

(** Print a whole module. *)
val pp_module : Format.formatter -> Ir.op -> unit

val module_to_string : Ir.op -> string

(** Print a single op with a fresh namer (for debugging; value names are
    not consistent across calls). *)
val op_to_string : Ir.op -> string
