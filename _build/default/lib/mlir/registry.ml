(** One-stop registration of every built-in dialect.

    OCaml has no static initializers that run on linking, so entry points
    (parsers, pipelines, tests) call {!ensure_registered} before touching
    the registry.  Idempotent. *)

let registered = ref false

let ensure_registered () =
  if not !registered then begin
    registered := true;
    D_func.register ();
    D_arith.register ();
    D_math.register ();
    D_scf.register ();
    D_tensor.register ();
    D_memref.register ();
    D_linalg.register ()
  end
