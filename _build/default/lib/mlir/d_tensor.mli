(** The [tensor] dialect: tensor creation and element access. *)

val empty : Ir.block -> Typ.t -> Ir.value
val extract : Ir.block -> Ir.value -> Ir.value list -> Ir.value

(** [insert blk v t indices] returns the updated tensor. *)
val insert : Ir.block -> Ir.value -> Ir.value -> Ir.value list -> Ir.value

val dim : Ir.block -> Ir.value -> Ir.value -> Ir.value
val splat : Ir.block -> Ir.value -> Typ.t -> Ir.value
val from_elements : Ir.block -> Ir.value list -> Typ.t -> Ir.value
val register : unit -> unit
