(** Dialect registry: operation definitions, traits, verifiers and folders.
    Drives the verifier, the canonicalizer, and the parser. *)

type trait =
  | Pure  (** no side effects; eligible for CSE/DCE *)
  | Commutative
  | Terminator
  | Constant_like

type fold_result =
  | No_fold
  | Fold_to_attr of Attr.t  (** folds to a constant with this value attr *)
  | Fold_to_operand of int  (** folds to its nth operand *)

type op_def = {
  d_name : string;
  d_n_operands : int option;  (** [None] = variadic *)
  d_n_results : int;
  d_n_regions : int;
  d_traits : trait list;
  d_verify : (Ir.op -> (unit, string) result) option;
  d_fold : (Ir.op -> Attr.t option array -> fold_result) option;
      (** receives the constant value of each operand where known *)
}

(** Register an op definition (later registrations replace earlier ones). *)
val def :
  ?n_operands:int ->
  ?n_results:int ->
  ?n_regions:int ->
  ?traits:trait list ->
  ?verify:(Ir.op -> (unit, string) result) ->
  ?fold:(Ir.op -> Attr.t option array -> fold_result) ->
  string ->
  unit

val find : string -> op_def option
val is_registered : string -> bool
val has_trait : string -> trait -> bool

(** Unregistered ops are conservatively treated as effectful. *)
val is_pure : Ir.op -> bool

val is_terminator : Ir.op -> bool
val is_commutative : Ir.op -> bool
val is_constant_like : Ir.op -> bool

(** All registered op names, sorted. *)
val all_ops : unit -> string list
