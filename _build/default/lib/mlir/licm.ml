(** Loop-invariant code motion: hoist pure, region-free operations out of
    [scf.for] / [scf.while] bodies when all their operands are defined
    outside the loop.

    Mirrors MLIR's [-loop-invariant-code-motion] pass.  Kept separate from
    {!Transforms.canonicalize} (MLIR also runs it as its own pass), so the
    paper's canonicalization baseline stays faithful. *)

let is_loop (op : Ir.op) =
  match op.Ir.op_name with "scf.for" | "scf.while" -> true | _ -> false

(** Values defined inside [op] (results and block arguments of any nested
    region). *)
let defined_inside (op : Ir.op) : (int, unit) Hashtbl.t =
  let inside = Hashtbl.create 32 in
  List.iter
    (fun (r : Ir.region) ->
      List.iter
        (fun (b : Ir.block) ->
          Array.iter (fun (a : Ir.value) -> Hashtbl.replace inside a.Ir.v_id ()) b.Ir.blk_args;
          Ir.walk_block
            (fun o ->
              Array.iter (fun (v : Ir.value) -> Hashtbl.replace inside v.Ir.v_id ()) o.Ir.results;
              List.iter
                (fun (r : Ir.region) ->
                  List.iter
                    (fun (b : Ir.block) ->
                      Array.iter
                        (fun (a : Ir.value) -> Hashtbl.replace inside a.Ir.v_id ())
                        b.Ir.blk_args)
                    r.Ir.blocks)
                o.Ir.regions)
            b)
        r.Ir.blocks)
    op.Ir.regions;
  inside

(** Hoist invariant ops out of one loop.  Returns the number hoisted. *)
let hoist_from_loop (loop : Ir.op) : int =
  Registry.ensure_registered ();
  let hoisted = ref 0 in
  let inside = defined_inside loop in
  let changed = ref true in
  (* iterate: hoisting one op may make its users invariant too *)
  while !changed do
    changed := false;
    List.iter
      (fun (r : Ir.region) ->
        List.iter
          (fun (b : Ir.block) ->
            let movable =
              List.filter
                (fun (o : Ir.op) ->
                  Dialect.is_pure o && o.Ir.regions = []
                  && (not (Dialect.is_terminator o))
                  && Array.for_all
                       (fun (v : Ir.value) -> not (Hashtbl.mem inside v.Ir.v_id))
                       o.Ir.operands)
                b.Ir.blk_ops
            in
            List.iter
              (fun (o : Ir.op) ->
                Ir.erase_op o;
                Ir.insert_before ~anchor:loop o;
                Array.iter (fun (res : Ir.value) -> Hashtbl.remove inside res.Ir.v_id) o.Ir.results;
                incr hoisted;
                changed := true)
              movable)
          r.Ir.blocks)
      loop.Ir.regions
  done;
  !hoisted

(** Run LICM over every loop in [root] (innermost loops first, so code can
    hoist through several levels in one pass).  Returns the number of ops
    moved. *)
let run (root : Ir.op) : int =
  let total = ref 0 in
  let rec visit (op : Ir.op) =
    (* post-order: handle nested loops first *)
    List.iter
      (fun (r : Ir.region) ->
        List.iter (fun (b : Ir.block) -> List.iter visit b.Ir.blk_ops) r.Ir.blocks)
      op.Ir.regions;
    if is_loop op && op.Ir.op_parent <> None then total := !total + hoist_from_loop op
  in
  visit root;
  !total
