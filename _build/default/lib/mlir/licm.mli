(** Loop-invariant code motion: hoist pure, region-free operations out of
    [scf.for] / [scf.while] bodies when all operands are defined outside
    the loop.  MLIR's [-loop-invariant-code-motion] equivalent; run as its
    own pass, not as part of canonicalization. *)

(** Hoist out of one loop op; number of ops moved. *)
val hoist_from_loop : Ir.op -> int

(** Run over every loop under [root], innermost first; number moved. *)
val run : Ir.op -> int
