(** IR verification: SSA dominance, arity checks and per-op verifiers.

    Within a block, every operand must be defined by an earlier op in the
    same block, by a block argument of an enclosing block, or by an op in an
    enclosing scope that precedes the region-holding ancestor (MLIR's
    dominance rule for single-block regions). *)

type error = { e_op : string; e_msg : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.e_op e.e_msg

(** Verify [root] (a module or any op).  Returns all errors found. *)
let verify (root : Ir.op) : error list =
  Registry.ensure_registered ();
  let errors = ref [] in
  let err op fmt = Fmt.kstr (fun m -> errors := { e_op = op; e_msg = m } :: !errors) fmt in
  (* set of value ids in scope *)
  let rec check_op (scope : (int, unit) Hashtbl.t) (op : Ir.op) =
    (* operand visibility *)
    Array.iteri
      (fun i (v : Ir.value) ->
        if not (Hashtbl.mem scope v.Ir.v_id) then
          err op.Ir.op_name "operand %d does not dominate this use" i)
      op.Ir.operands;
    (* registered structure checks *)
    (match Dialect.find op.Ir.op_name with
    | None -> ()
    | Some d ->
      (match d.Dialect.d_n_operands with
      | Some n when Array.length op.Ir.operands <> n ->
        err op.Ir.op_name "expected %d operands, got %d" n (Array.length op.Ir.operands)
      | _ -> ());
      if List.length op.Ir.regions <> d.Dialect.d_n_regions then
        err op.Ir.op_name "expected %d regions, got %d" d.Dialect.d_n_regions
          (List.length op.Ir.regions);
      (match d.Dialect.d_verify with
      | Some f -> ( match f op with Ok () -> () | Error m -> err op.Ir.op_name "%s" m)
      | None -> ()));
    (* regions: nested scopes inherit the enclosing scope *)
    List.iter
      (fun (r : Ir.region) ->
        List.iter
          (fun (b : Ir.block) ->
            let inner = Hashtbl.copy scope in
            Array.iter (fun (a : Ir.value) -> Hashtbl.replace inner a.Ir.v_id ()) b.Ir.blk_args;
            check_block inner b)
          r.Ir.blocks)
      op.Ir.regions;
    (* results become visible after the op *)
    Array.iter (fun (v : Ir.value) -> Hashtbl.replace scope v.Ir.v_id ()) op.Ir.results
  and check_block scope (b : Ir.block) =
    (* terminator checks *)
    (match List.rev b.Ir.blk_ops with
    | last :: _ ->
      List.iteri
        (fun i (o : Ir.op) ->
          if Dialect.is_terminator o && o.Ir.op_id <> last.Ir.op_id then
            err o.Ir.op_name "terminator in the middle of a block (position %d)" i)
        b.Ir.blk_ops
    | [] -> ());
    List.iter (check_op scope) b.Ir.blk_ops
  in
  check_op (Hashtbl.create 64) root;
  List.rev !errors

(** Verify and raise [Failure] with a readable message on any error. *)
let verify_exn root =
  match verify root with
  | [] -> ()
  | errs ->
    failwith
      (Fmt.str "IR verification failed:@\n%a" (Fmt.list ~sep:Fmt.cut pp_error) errs)
