(** Dialect registry: operation definitions, traits, verifiers and folders.

    Each dialect registers its operations here.  The registry drives the
    verifier (arity/type checks), the canonicalizer (folders and rewrite
    patterns), and the parser (which consults expected structure for pretty
    forms). *)

type trait =
  | Pure  (** no side effects; eligible for CSE/DCE *)
  | Commutative
  | Terminator
  | Constant_like

type fold_result =
  | No_fold
  | Fold_to_attr of Attr.t  (** op folds to a constant with this value attr *)
  | Fold_to_operand of int  (** op folds to its nth operand *)

type op_def = {
  d_name : string;  (** full op name, e.g. "arith.addi" *)
  d_n_operands : int option;  (** [None] = variadic *)
  d_n_results : int;
  d_n_regions : int;
  d_traits : trait list;
  d_verify : (Ir.op -> (unit, string) result) option;
  d_fold : (Ir.op -> Attr.t option array -> fold_result) option;
      (** called with the constant value of each operand where known *)
}

let registry : (string, op_def) Hashtbl.t = Hashtbl.create 128

let def ?n_operands ?(n_results = 1) ?(n_regions = 0) ?(traits = []) ?verify ?fold
    name =
  let d =
    {
      d_name = name;
      d_n_operands = n_operands;
      d_n_results = n_results;
      d_n_regions = n_regions;
      d_traits = traits;
      d_verify = verify;
      d_fold = fold;
    }
  in
  Hashtbl.replace registry name d

(** Definition of an op name, if registered. *)
let find name = Hashtbl.find_opt registry name

let is_registered name = Hashtbl.mem registry name

let has_trait name t =
  match find name with Some d -> List.mem t d.d_traits | None -> false

(** Is this op free of side effects?  Unregistered ops are conservatively
    treated as effectful. *)
let is_pure (op : Ir.op) = has_trait op.Ir.op_name Pure

let is_terminator (op : Ir.op) = has_trait op.Ir.op_name Terminator
let is_commutative (op : Ir.op) = has_trait op.Ir.op_name Commutative
let is_constant_like (op : Ir.op) = has_trait op.Ir.op_name Constant_like

(** All registered op names, sorted. *)
let all_ops () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort String.compare
