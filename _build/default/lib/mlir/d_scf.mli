(** The [scf] dialect: structured control flow. *)

(** Terminate an scf region, yielding the given values. *)
val yield : Ir.block -> Ir.value list -> Ir.op

(** Build an [scf.for].  [body] receives the body block, the induction
    variable and the per-iteration values of [iter_args], and must end the
    block with {!yield}.  Returns the loop results. *)
val for_ :
  Ir.block ->
  lb:Ir.value ->
  ub:Ir.value ->
  step:Ir.value ->
  ?iter_args:Ir.value list ->
  (Ir.block -> Ir.value -> Ir.value list -> unit) ->
  Ir.value list

(** Build an [scf.if]; each branch callback must end its block with
    {!yield}. *)
val if_ :
  Ir.block ->
  Ir.value ->
  result_types:Typ.t list ->
  then_:(Ir.block -> unit) ->
  else_:(Ir.block -> unit) ->
  Ir.value list

(** Build an [scf.while]; [cond] must terminate with {!condition}, [body]
    with {!yield}. *)
val while_ :
  Ir.block ->
  init:Ir.value list ->
  cond:(Ir.block -> Ir.value list -> unit) ->
  body:(Ir.block -> Ir.value list -> unit) ->
  Ir.value list

(** Terminate an [scf.while] "before" region. *)
val condition : Ir.block -> Ir.value -> Ir.value list -> Ir.op

val register : unit -> unit
