(* Interval analysis in Egglog — the paper's §9 sketches that complex
   analyses (it cites the Egglog paper's points-to analysis) can be
   expressed through Egglog's lattice operations.  This example does that
   for a value-range analysis over MLIR arith ops:

   - (lo e) / (hi e) are merged functions: the lattice join is max for
     lower bounds and min for upper bounds (intervals only ever tighten);
   - analysis rules propagate ranges through addi/muli/shrsi e-nodes;
   - an optimization rule consumes the analysis: a division whose operand
     range proves the divisor-free rewrite safe... here, simpler: a
     comparison whose ranges cannot overlap folds to a constant.

   The analysis runs on the same e-graph as rewriting, so derived facts
   survive unification — the "better together" point of Egglog itself.

   Run with: dune exec examples/interval_analysis.exe *)

let rules =
  {|
; interval lattice: lo joins with max (bounds tighten upward),
;                   hi joins with min
(function lo (Op) i64 :merge (max old new))
(function hi (Op) i64 :merge (min old new))

; constants have exact ranges
(rule ((= ?e (arith_constant (NamedAttr "value" (IntegerAttr ?v ?t)) ?t)))
      ((set (lo ?e) ?v) (set (hi ?e) ?v)))

; addition: [a,b] + [c,d] = [a+c, b+d]
(rule ((= ?e (arith_addi ?x ?y ?t))
       (= ?xl (lo ?x)) (= ?xh (hi ?x))
       (= ?yl (lo ?y)) (= ?yh (hi ?y)))
      ((set (lo ?e) (+ ?xl ?yl)) (set (hi ?e) (+ ?xh ?yh))))

; arithmetic shift right by a known non-negative amount shrinks the range
(rule ((= ?e (arith_shrsi ?x ?y ?t))
       (= ?xl (lo ?x)) (= ?xh (hi ?x))
       (= ?yl (lo ?y)) (>= ?yl 0))
      ((set (lo ?e) (>> ?xl ?yl)) (set (hi ?e) (>> ?xh ?yl))))

; consume the analysis: x <_s y folds to true when hi(x) < lo(y)
(rule ((= ?e (arith_cmpi ?x ?y (NamedAttr "predicate" (IntegerAttr 2 ?pt)) ?t))
       (= ?xh (hi ?x)) (= ?yl (lo ?y))
       (< ?xh ?yl))
      ((union ?e (arith_constant (NamedAttr "value" (IntegerAttr 1 (I1))) (I1)))))
; ... and to false when lo(x) >= hi(y)
(rule ((= ?e (arith_cmpi ?x ?y (NamedAttr "predicate" (IntegerAttr 2 ?pt)) ?t))
       (= ?xl (lo ?x)) (= ?yh (hi ?y))
       (>= ?xl ?yh))
      ((union ?e (arith_constant (NamedAttr "value" (IntegerAttr 0 (I1))) (I1)))))
|}

let program =
  {|
func.func @range_demo() -> i1 {
  %c10 = arith.constant 10 : i64
  %c20 = arith.constant 20 : i64
  %c100 = arith.constant 100 : i64
  %c2 = arith.constant 2 : i64
  %small = arith.addi %c10, %c20 : i64       // in [30, 30]
  %shifted = arith.shrsi %c100, %c2 : i64    // in [25, 25]
  %sum = arith.addi %small, %shifted : i64   // in [55, 55]
  %cmp = arith.cmpi slt, %sum, %c100 : i64   // 55 < 100: provably true
  func.return %cmp : i1
}|}

let () =
  let m = Mlir.Parser.parse_module program in
  Mlir.Verifier.verify_exn m;
  print_endline "--- before (comparison computed at runtime) ---";
  print_string (Mlir.Printer.module_to_string m);

  let config = { Dialegg.Pipeline.default_config with rules } in
  ignore (Dialegg.Pipeline.optimize_module ~config m);

  print_endline "\n--- after (range analysis proved the comparison) ---";
  print_string (Mlir.Printer.module_to_string m);

  let r = Mlir.Interp.run m "range_demo" [] in
  Fmt.pr "@.range_demo() = %a (cycle proxy %d — the whole chain folded away)@."
    Mlir.Interp.pp_rv (List.hd r.Mlir.Interp.values) r.Mlir.Interp.cycles
