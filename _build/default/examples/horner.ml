(* Horner example: multiple interacting and recursive rules (paper §7.5).

   Optimizes the evaluation of c + b*x + a*x^2 + d*x^3 into Horner form and
   prints the per-degree cost reduction.  The interesting part is that no
   single rule produces Horner form: commutativity, associativity,
   distributivity, the recursive expansion of powf, and the identity rules
   must interact, which equality saturation handles automatically.

   Run with: dune exec examples/horner.exe *)

let poly_source degree =
  (* c0 + c1*x + c2*x^2 + ... written naively with math.powf *)
  let buf = Buffer.create 512 in
  let args =
    String.concat ", "
      ("%x: f64" :: List.init (degree + 1) (fun i -> Printf.sprintf "%%c%d: f64" i))
  in
  Buffer.add_string buf (Printf.sprintf "func.func @poly(%s) -> f64 {\n" args);
  for i = 2 to degree do
    Buffer.add_string buf (Printf.sprintf "  %%e%d = arith.constant %d.0 : f64\n" i i);
    Buffer.add_string buf (Printf.sprintf "  %%p%d = math.powf %%x, %%e%d : f64\n" i i)
  done;
  Buffer.add_string buf "  %t1 = arith.mulf %c1, %x : f64\n";
  for i = 2 to degree do
    Buffer.add_string buf (Printf.sprintf "  %%t%d = arith.mulf %%c%d, %%p%d : f64\n" i i i)
  done;
  Buffer.add_string buf "  %s1 = arith.addf %c0, %t1 : f64\n";
  for i = 2 to degree do
    Buffer.add_string buf (Printf.sprintf "  %%s%d = arith.addf %%s%d, %%t%d : f64\n" i (i - 1) i)
  done;
  Buffer.add_string buf (Printf.sprintf "  func.return %%s%d : f64\n}\n" degree);
  Buffer.contents buf

let static_cost m =
  (* cycle-cost of the straight-line body, from the interpreter's table *)
  let c = ref 0 in
  Mlir.Ir.walk_op
    (fun op ->
      if op.Mlir.Ir.op_name <> "func.func" && op.Mlir.Ir.op_name <> "builtin.module" then
        c := !c + Mlir.Interp.op_latency op)
    m;
  !c

let () =
  print_endline "degree | naive cost | Horner cost | powf left?";
  List.iter
    (fun degree ->
      let m = Mlir.Parser.parse_module (poly_source degree) in
      let before = static_cost m in
      let config =
        {
          Dialegg.Pipeline.default_config with
          rules = Dialegg.Rules.horner;
          max_iterations = 12;
          max_nodes = 60_000;
          timeout = Some 20.0;
        }
      in
      ignore (Dialegg.Pipeline.optimize_module ~config m);
      let after = static_cost m in
      let powfs =
        List.length (Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = "math.powf") m)
      in
      Printf.printf "   %d   |   %4d     |    %4d     | %s\n%!" degree before after
        (if powfs = 0 then "no" else string_of_int powfs);
      if degree = 3 then begin
        print_endline "\ndegree-3 result:";
        print_string (Mlir.Printer.module_to_string m);
        print_newline ()
      end)
    [ 2; 3; 4 ]
