(* Matmul-chain example: type-based cost models (paper §7.4).

   Builds the 3MM benchmark, shows the greedy hand-written pass getting
   stuck in a local optimum, and equality saturation finding the global
   one — the headline comparison from the paper's §8.4.

   Run with: dune exec examples/matmul_chain.exe *)

let scalar_mults (m : Mlir.Ir.op) =
  (* static count of scalar multiplications across all matmuls *)
  let total = ref 0 in
  Mlir.Ir.walk_op
    (fun op ->
      if op.Mlir.Ir.op_name = "linalg.matmul" then
        match
          ( Mlir.Typ.shape op.Mlir.Ir.operands.(0).Mlir.Ir.v_type,
            Mlir.Typ.shape op.Mlir.Ir.operands.(1).Mlir.Ir.v_type )
        with
        | Some [ m; k ], Some [ _; n ] -> total := !total + (m * k * n)
        | _ -> ())
    m;
  !total

let show label m =
  Printf.printf "%-22s %9d scalar multiplications\n" label (scalar_mults m)

let () =
  let b = Workloads.Matmul_chain.benchmark_3mm in
  let src = b.Workloads.Benchmark.source ~scale:3 in
  print_endline "3MM chain: ((A*B)*C)*D with A:200x175 B:175x250 C:250x150 D:150x10";

  let baseline = Mlir.Parser.parse_module src in
  show "baseline" baseline;

  (* the greedy local pass (the paper's 120-line C++ baseline) *)
  let greedy = Mlir.Parser.parse_module src in
  let n = Mlir.Matmul_reassoc.run greedy in
  show (Printf.sprintf "greedy pass (%d rewrites)" n) greedy;

  (* DialEgg: one associativity rule + a type-based cost model *)
  let dialegg = Mlir.Parser.parse_module src in
  let config =
    { Dialegg.Pipeline.default_config with rules = Dialegg.Rules.matmul_assoc }
  in
  ignore (Dialegg.Pipeline.optimize_module ~config dialegg);
  show "DialEgg (global)" dialegg;

  print_endline "\nDialEgg-optimized program:";
  print_string (Mlir.Printer.module_to_string dialegg);

  (* §8.4's line-count comparison *)
  Printf.printf "\nEgglog rule set: %d rules (%d source lines)\n"
    (Dialegg.Rules.count_rules Dialegg.Rules.matmul_assoc)
    (List.length (String.split_on_char '\n' (String.trim Dialegg.Rules.matmul_assoc)))
