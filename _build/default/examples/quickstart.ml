(* Quickstart: optimize a tiny MLIR function with DialEgg.

   Parses MLIR text, applies two rewrite-rule fragments (constant folding
   and div-by-power-of-two), and prints the program before and after
   together with the interpreter's cycle cost proxy.

   Run with: dune exec examples/quickstart.exe *)

let program =
  {|
func.func @compute(%x: i64) -> i64 {
  %c7 = arith.constant 7 : i64
  %c9 = arith.constant 9 : i64
  %c16 = arith.constant 16 : i64
  %sum = arith.addi %c7, %c9 : i64        // 7 + 9 -> 16 (folded by the rules)
  %scaled = arith.muli %x, %sum : i64
  %result = arith.divsi %scaled, %c16 : i64  // /16 -> >>4 (strength-reduced)
  func.return %result : i64
}
|}

let () =
  (* 1. parse and verify *)
  let m = Mlir.Parser.parse_module program in
  Mlir.Verifier.verify_exn m;
  print_endline "--- before ---";
  print_string (Mlir.Printer.module_to_string m);

  (* 2. run the DialEgg pipeline with two rule fragments *)
  let config =
    {
      Dialegg.Pipeline.default_config with
      rules = Dialegg.Rules.const_fold ^ Dialegg.Rules.div_pow2;
    }
  in
  let timings = Dialegg.Pipeline.optimize_module ~config m in
  print_endline "--- after DialEgg ---";
  print_string (Mlir.Printer.module_to_string m);
  Fmt.pr "timings: %a@." Dialegg.Pipeline.pp_timings timings;

  (* 3. execute and report the cost proxy *)
  let r = Mlir.Interp.run m "compute" [ Mlir.Interp.Ri (1000L, 64) ] in
  Fmt.pr "compute(1000) = %a  (cycle proxy: %d)@."
    Mlir.Interp.pp_rv (List.hd r.Mlir.Interp.values)
    r.Mlir.Interp.cycles
