(* Custom-dialect example: DialEgg's dialect-agnosticism (paper §4).

   Defines a brand-new "cx" dialect for complex arithmetic that DialEgg has
   never heard of, declares its operations in Egglog, and optimizes with
   algebra that MLIR knows nothing about:

     conj(conj(z))        =>  z
     conj(x) * conj(y)    =>  conj(x * y)     (one conj instead of two)

   A deliberately-undeclared op (debug.trace) demonstrates opaque handling:
   it survives the optimization untouched.

   Run with: dune exec examples/custom_dialect.exe *)

let user_declarations =
  {|
; the user teaches DialEgg the cx dialect: one line per construct
(function cx_make (Op Op Type) Op :cost 1)
(function cx_mul  (Op Op Type) Op :cost 10)
(function cx_conj (Op Type) Op :cost 2)

; algebraic rules for the new dialect
(rewrite (cx_conj (cx_conj ?z ?t) ?t) ?z)
(rewrite (cx_mul (cx_conj ?x ?t) (cx_conj ?y ?t) ?t)
         (cx_conj (cx_mul ?x ?y ?t) ?t))
|}

let program =
  {|
func.func @f(%re: f64, %im: f64) -> complex<f64> {
  %z = "cx.make"(%re, %im) : (f64, f64) -> complex<f64>
  %zc = "cx.conj"(%z) : (complex<f64>) -> complex<f64>
  %zcc = "cx.conj"(%zc) : (complex<f64>) -> complex<f64>
  %a = "cx.conj"(%z) : (complex<f64>) -> complex<f64>
  %b = "cx.conj"(%zcc) : (complex<f64>) -> complex<f64>
  "debug.trace"(%a) : (complex<f64>) -> ()
  %prod = "cx.mul"(%a, %b) : (complex<f64>, complex<f64>) -> complex<f64>
  func.return %prod : complex<f64>
}
|}

let count name m =
  List.length (Mlir.Ir.collect_ops (fun o -> o.Mlir.Ir.op_name = name) m)

let () =
  let m = Mlir.Parser.parse_module program in
  Mlir.Verifier.verify_exn m;
  print_endline "--- before ---";
  print_string (Mlir.Printer.module_to_string m);
  Printf.printf "cx.conj count: %d\n\n" (count "cx.conj" m);

  let config = { Dialegg.Pipeline.default_config with rules = user_declarations } in
  let timings = Dialegg.Pipeline.optimize_module ~config m in
  Mlir.Verifier.verify_exn m;

  print_endline "--- after DialEgg ---";
  print_string (Mlir.Printer.module_to_string m);
  Printf.printf "cx.conj count: %d\n" (count "cx.conj" m);
  Printf.printf "debug.trace survived as an opaque op: %b\n"
    (count "debug.trace" m = 1);
  Fmt.pr "timings: %a@." Dialegg.Pipeline.pp_timings timings
