(** Seeded, deterministic generation of fuzzing cases: well-typed
    mini-MLIR modules plus mutated-but-audit-clean rulesets.

    This is ROADMAP item 4(b)'s nelli-style combinator frontend put to
    work as a corpus synthesizer: every case is a pure function of
    [(seed, index)], so a fuzzing campaign is reproducible bit-for-bit
    and any case can be regenerated in isolation from its journal line
    (which is what makes [--resume] and triage replays trustworthy).

    Module shapes are drawn from the registered dialect surface the
    pipeline actually optimizes:

    - [Arith]: straight-line [i64] arithmetic over function arguments and
      constants — masked shift amounts, power-of-two divisors — the
      territory of the const-fold / div-pow2 rulesets;
    - [Matmul]: [linalg.matmul] chains over [tensor<..xf64>] with
      sometimes-uniform dimensions, so distinct [tensor.empty]
      destinations land in one e-class (the PR 4 aliasing-bug trigger);
    - [Loop]: an [scf.for] accumulator whose body is a small arith
      expression — regions ride through eggify as opaque terms.

    Rulesets are sampled from a pool of templates mirroring the shipped
    rules (constant folding, div-by-pow2, algebraic identities,
    commutativity, matmul associativity), mutated by variable renaming,
    subsetting and reordering.  Every template is audit-clean by
    construction; [test_fuzz] asserts that over many seeds. *)

type shape = Arith | Matmul | Loop

val all_shapes : shape list
val shape_name : shape -> string
val shape_of_string : string -> shape option

type case = {
  c_index : int;  (** position in the campaign *)
  c_seed : int;  (** the campaign's master seed *)
  c_shape : shape;
  c_func : string;  (** entry function name *)
  c_mlir : string;  (** module text *)
  c_egg : string;  (** ruleset text (possibly empty) *)
}

(** [case ~seed index] synthesizes case [index] of the campaign seeded
    with [seed]; deterministic in [(seed, index, shapes)]. *)
val case : ?shapes:shape list -> seed:int -> int -> case

(** Deterministic concrete arguments for [@func] of a parsed module:
    integers get small values, floats land in [[-1, 1)], static tensors
    are filled elementwise.  Deterministic in [seed] and the signature.
    @raise Not_found if the function does not exist. *)
val random_args : seed:int -> Mlir.Ir.op -> string -> Mlir.Interp.rv list
