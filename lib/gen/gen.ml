(** Seeded, deterministic fuzzing-case generation; see the interface for
    the model. *)

module Rng = Workloads.Rng

type shape = Arith | Matmul | Loop

let all_shapes = [ Arith; Matmul; Loop ]

let shape_name = function
  | Arith -> "arith"
  | Matmul -> "matmul"
  | Loop -> "loop"

let shape_of_string s =
  List.find_opt (fun sh -> shape_name sh = s) all_shapes

type case = {
  c_index : int;
  c_seed : int;
  c_shape : shape;
  c_func : string;
  c_mlir : string;
  c_egg : string;
}

(* Distinct large odd multipliers keep nearby (seed, index) pairs from
   colliding before splitmix64's finalizer scrambles them. *)
let sub_rng ~seed ~index salt =
  Rng.create ((seed * 1_000_003) + (index * 8191) + (salt * 97) + 1)

(* ------------------------------------------------------------------ *)
(* Module synthesis                                                    *)
(* ------------------------------------------------------------------ *)

(** Straight-line i64 arithmetic: every operand is a function argument,
    a constant, or an earlier result, so the program is well-typed and
    dominance-correct by construction.  Shift amounts and divisors are
    constrained at generation time (0–7, powers of two) rather than
    checked after. *)
let gen_arith rng =
  let nargs = 1 + Rng.int rng 3 in
  let buf = Buffer.create 512 in
  let pool = ref (List.init nargs (fun i -> Printf.sprintf "%%a%d" i)) in
  let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
  let fresh = ref 0 in
  let def () =
    let v = Printf.sprintf "%%v%d" !fresh in
    incr fresh;
    v
  in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  emit "func.func @fz_main(%s) -> i64 {\n"
    (String.concat ", "
       (List.init nargs (fun i -> Printf.sprintf "%%a%d: i64" i)));
  let const value =
    let v = def () in
    emit "  %s = arith.constant %d : i64\n" v value;
    v
  in
  let binops =
    [| "arith.addi"; "arith.subi"; "arith.muli"; "arith.andi"; "arith.ori";
       "arith.xori"; "arith.maxsi"; "arith.minsi" |]
  in
  let last = ref (List.hd !pool) in
  let nops = 4 + Rng.int rng 9 in
  for _ = 1 to nops do
    let v =
      match Rng.int rng 10 with
      | 0 | 1 | 2 -> const (Rng.int rng 128 - 64)
      | 9 when Rng.int rng 2 = 0 ->
        (* shift by a fresh in-range constant amount *)
        let amt = const (Rng.int rng 8) in
        let v = def () in
        let op = if Rng.int rng 2 = 0 then "arith.shli" else "arith.shrsi" in
        emit "  %s = %s %s, %s : i64\n" v op (pick ()) amt;
        v
      | 9 ->
        (* division by a fresh power-of-two constant (never zero).  The
           dividend is masked non-negative first: the div-pow2 rewrite
           (divsi x, 2^k -> shrsi x, k) is only sound for x >= 0 —
           divsi truncates toward zero where shrsi floors — and the
           campaign's well-formed cases must stay inside the rules'
           intended domain (the fuzzer rediscovered exactly this
           signedness split when they did not) *)
        let mask = const max_int in
        let nn = def () in
        emit "  %s = arith.andi %s, %s : i64\n" nn (pick ()) mask;
        let d = const (1 lsl Rng.int rng 7) in
        let v = def () in
        emit "  %s = arith.divsi %s, %s : i64\n" v nn d;
        v
      | _ ->
        let op = binops.(Rng.int rng (Array.length binops)) in
        let v = def () in
        emit "  %s = %s %s, %s : i64\n" v op (pick ()) (pick ());
        v
    in
    pool := v :: !pool;
    last := v
  done;
  emit "  func.return %s : i64\n}\n" !last;
  Buffer.contents buf

(** Matmul chains reuse the benchmark emitter; half the cases force a
    uniform (square) dimension chain so distinct [tensor.empty]
    destinations share a type — the aliasing-bug trigger. *)
let gen_matmul rng =
  (* 3-4 matrices = 2-3 matmuls: at least two [tensor.empty] destinations *)
  let n = 3 + Rng.int rng 2 in
  let dims =
    if Rng.int rng 2 = 0 then
      let d = 2 + Rng.int rng 3 in
      List.init (n + 1) (fun _ -> d)
    else List.init (n + 1) (fun _ -> 2 + Rng.int rng 3)
  in
  Workloads.Matmul_chain.source_chain dims

(** An [scf.for] accumulator: the loop body is a small arith expression
    over the carried value and the function argument. *)
let gen_loop rng =
  let trips = 1 + Rng.int rng 6 in
  let init = Rng.int rng 64 - 32 in
  let body_op =
    [| "arith.addi"; "arith.subi"; "arith.muli"; "arith.xori" |]
      .(Rng.int rng 4)
  in
  let extra = Rng.int rng 32 in
  Printf.sprintf
    {|func.func @fz_main(%%a0: i64) -> i64 {
  %%lo = arith.constant 0 : index
  %%hi = arith.constant %d : index
  %%st = arith.constant 1 : index
  %%init = arith.constant %d : i64
  %%k = arith.constant %d : i64
  %%out = scf.for %%i = %%lo to %%hi step %%st iter_args(%%acc = %%init) -> (i64) {
    %%t0 = %s %%acc, %%a0 : i64
    %%t1 = arith.addi %%t0, %%k : i64
    scf.yield %%t1 : i64
  }
  func.return %%out : i64
}
|}
    trips init extra body_op

(* ------------------------------------------------------------------ *)
(* Ruleset synthesis                                                   *)
(* ------------------------------------------------------------------ *)

(** Each template instantiates with fresh pattern-variable names (the
    renaming mutation); all of them mirror shipped, audit-clean rules.
    Templates spell variables as [?$x]; [instantiate] replaces the [$]
    marker with the fresh prefix. *)
let instantiate template v =
  String.concat v (String.split_on_char '$' template)

let const_bin op fold v =
  instantiate
    (Printf.sprintf
       {|(rewrite (%s
           (arith_constant (NamedAttr "value" (IntegerAttr ?$x ?$t)) ?$t)
           (arith_constant (NamedAttr "value" (IntegerAttr ?$y ?$t)) ?$t) ?$t)
         (arith_constant (NamedAttr "value" (IntegerAttr (%s ?$x ?$y) ?$t)) ?$t))|}
       op fold)
    v

let identity_right op unit_val v =
  instantiate
    (Printf.sprintf
       {|(rewrite (%s ?$x
           (arith_constant (NamedAttr "value" (IntegerAttr %d ?$t)) ?$t) ?$t)
         ?$x)|}
       op unit_val)
    v

let commute op v =
  instantiate
    (Printf.sprintf "(rewrite (%s ?$x ?$y ?$t) (%s ?$y ?$x ?$t))" op op)
    v

let div_pow2_rule v =
  instantiate
    {|(rule ((= ?$lhs (arith_divsi ?$x
                 (arith_constant (NamedAttr "value" (IntegerAttr ?$n ?$t)) ?$t) ?$t))
       (= ?$k (log2 ?$n))
       (= (pow 2 ?$k) ?$n))
      ((union ?$lhs
         (arith_shrsi ?$x
           (arith_constant (NamedAttr "value" (IntegerAttr ?$k ?$t)) ?$t) ?$t))))|}
    v

let matmul_assoc_rules v =
  instantiate
    {|(rule ((= ?$e (linalg_matmul ?$x ?$y ?$xy ?$t))
       (= ?$a (nrows (type-of ?$x)))
       (= ?$b (ncols (type-of ?$x)))
       (= ?$c (ncols (type-of ?$y))))
      ((unstable-cost (linalg_matmul ?$x ?$y ?$xy ?$t) (* (* ?$a ?$b) ?$c))))
(rule ((= ?$lhs (linalg_matmul
                 (linalg_matmul ?$x ?$y ?$xy ?$xy_t)
                 ?$z ?$xy_z ?$xyz_t))
       (= ?$b (nrows (type-of ?$y)))
       (= ?$d (ncols (type-of ?$z)))
       (= ?$xyz_t (RankedTensor ?$d1 ?$et)))
      ((let $yz_t (RankedTensor (vec-of ?$b ?$d) ?$et))
       (union ?$lhs
         (linalg_matmul ?$x
           (linalg_matmul ?$y ?$z (tensor_empty $yz_t) $yz_t)
           ?$xy_z ?$xyz_t))))|}
    v

let arith_templates =
  [
    (fun v -> const_bin "arith_addi" "+" v);
    (fun v -> const_bin "arith_subi" "-" v);
    (fun v -> const_bin "arith_muli" "*" v);
    (fun v -> identity_right "arith_addi" 0 v);
    (fun v -> identity_right "arith_muli" 1 v);
    (fun v -> commute "arith_addi" v);
    (fun v -> commute "arith_muli" v);
    div_pow2_rule;
  ]

(** Sample a mutated ruleset: a random subset of the shape's template
    pool, in shuffled order, each instantiated with fresh variable
    names.  May be empty — zero-rule saturation is a case worth fuzzing
    (it exercises the pure eggify / extract / deeggify round trip). *)
let gen_rules rng shape =
  let fresh_var () = Printf.sprintf "g%d" (Rng.int rng 1000) in
  match shape with
  | Matmul ->
    if Rng.int rng 3 = 0 then "" else matmul_assoc_rules (fresh_var ())
  | Arith | Loop ->
    let picked =
      List.filter (fun _ -> Rng.int rng 3 > 0) arith_templates
    in
    (* shuffle: rule order must never matter, so we vary it *)
    let decorated =
      List.map (fun t -> (Rng.int rng 1_000_000, t)) picked
    in
    let shuffled =
      List.sort (fun (a, _) (b, _) -> compare a b) decorated
    in
    String.concat "\n" (List.map (fun (_, t) -> t (fresh_var ())) shuffled)

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)
(* ------------------------------------------------------------------ *)

let case ?(shapes = all_shapes) ~seed index =
  if shapes = [] then invalid_arg "Gen.case: empty shape list";
  let rng = sub_rng ~seed ~index 0 in
  let c_shape = List.nth shapes (Rng.int rng (List.length shapes)) in
  let c_mlir =
    match c_shape with
    | Arith -> gen_arith rng
    | Matmul -> gen_matmul rng
    | Loop -> gen_loop rng
  in
  let c_egg = gen_rules rng c_shape in
  let c_func = match c_shape with Matmul -> "mm_chain" | _ -> "fz_main" in
  { c_index = index; c_seed = seed; c_shape; c_func; c_mlir; c_egg }

(* ------------------------------------------------------------------ *)
(* Concrete arguments                                                  *)
(* ------------------------------------------------------------------ *)

let random_rv rng (ty : Mlir.Typ.t) : Mlir.Interp.rv =
  match ty with
  | Mlir.Typ.Integer w -> Mlir.Interp.Ri (Int64.of_int (Rng.int rng 256 - 128), w)
  | Mlir.Typ.Index -> Mlir.Interp.Ri (Int64.of_int (Rng.int rng 8), 64)
  | Mlir.Typ.Float k -> Mlir.Interp.Rf (Rng.float_range rng (-1.0) 1.0, k)
  | Mlir.Typ.Ranked_tensor _ | Mlir.Typ.Memref _ ->
    let t = Mlir.Interp.alloc_tensor ty in
    (match t.Mlir.Interp.data with
    | Mlir.Interp.Df a ->
      Array.iteri (fun i _ -> a.(i) <- Rng.float_range rng (-1.0) 1.0) a
    | Mlir.Interp.Di a ->
      Array.iteri
        (fun i _ -> a.(i) <- Int64.of_int (Rng.int rng 256 - 128))
        a);
    Mlir.Interp.Rt t
  | _ -> Mlir.Interp.Runit

let random_args ~seed m func =
  match Mlir.Ir.find_function m func with
  | None -> raise Not_found
  | Some f ->
    let args, _ = Mlir.Ir.func_type f in
    let rng = Rng.create ((seed * 65_537) + 11) in
    List.map (random_rv rng) args
