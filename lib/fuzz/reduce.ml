(** ddmin-based repro reduction; see the interface for the model. *)

type input = { rd_mlir : string; rd_egg : string }
type predicate = input -> bool

(* ------------------------------------------------------------------ *)
(* Generic ddmin                                                       *)
(* ------------------------------------------------------------------ *)

let split_chunks items n =
  let len = List.length items in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: xs' ->
        let hd, tl = take (k - 1) xs' in
        (x :: hd, tl)
  in
  let rec go i xs =
    if i >= n || xs = [] then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs in
      chunk :: go (i + 1) rest
  in
  go 0 items |> List.filter (fun c -> c <> [])

let ddmin test items =
  if test [] then []
  else
    let rec go items n =
      let len = List.length items in
      if len <= 1 then items
      else begin
        let chunks = split_chunks items n in
        match List.find_opt test chunks with
        | Some c -> go c 2
        | None -> (
          let complements =
            List.mapi
              (fun i _ ->
                List.concat
                  (List.filteri (fun j _ -> j <> i) chunks))
              chunks
          in
          match List.find_opt test complements with
          | Some c -> go c (max (n - 1) 2)
          | None -> if n < len then go items (min len (2 * n)) else items)
      end
    in
    go items 2

(* ------------------------------------------------------------------ *)
(* Egglog source chunking                                              *)
(* ------------------------------------------------------------------ *)

let split_sexprs src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let skip_comment j =
    let j = ref j in
    while !j < n && src.[!j] <> '\n' do
      incr j
    done;
    !j
  in
  while !i < n do
    let c = src.[!i] in
    if c = ';' then i := skip_comment !i
    else if c = '(' then begin
      let start = !i in
      let depth = ref 0 in
      let in_str = ref false in
      let j = ref !i in
      (try
         while !j < n do
           let ch = src.[!j] in
           if !in_str then begin
             if ch = '\\' then incr j
             else if ch = '"' then in_str := false
           end
           else if ch = '"' then in_str := true
           else if ch = ';' then j := skip_comment !j - 1
           else if ch = '(' then incr depth
           else if ch = ')' then begin
             decr depth;
             if !depth = 0 then raise Exit
           end;
           incr j
         done
       with Exit -> ());
      let stop = min !j (n - 1) in
      out := String.sub src start (stop - start + 1) :: !out;
      i := stop + 1
    end
    else incr i
  done;
  List.rev !out

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_rule chunk =
  starts_with "(rule" chunk || starts_with "(rewrite" chunk
  || starts_with "(birewrite" chunk

(* ------------------------------------------------------------------ *)
(* MLIR manipulation                                                   *)
(* ------------------------------------------------------------------ *)

let parse = Mlir.Parser.parse_module
let print = Mlir.Printer.module_to_string

let func_names m =
  List.filter_map
    (fun op ->
      if op.Mlir.Ir.op_name = "func.func" then Some (Mlir.Ir.func_name op)
      else None)
    (Mlir.Ir.module_ops m)

let restrict_funcs src keep =
  let m = parse src in
  List.iter
    (fun op ->
      if
        op.Mlir.Ir.op_name = "func.func"
        && not (List.mem (Mlir.Ir.func_name op) keep)
      then Mlir.Ir.erase_op op)
    (Mlir.Ir.module_ops m);
  print m

let op_count src =
  match parse src with
  | exception _ -> max_int
  | m ->
    let count = ref 0 in
    List.iter
      (fun op ->
        if op.Mlir.Ir.op_name = "func.func" then
          Mlir.Ir.walk_block (fun _ -> incr count) (Mlir.Ir.func_body op))
      (Mlir.Ir.module_ops m);
    !count

(** Remove the op at [idx] of [fname]'s body, redirecting any uses of
    its results to earlier same-typed values ([choice] selects among
    replacement candidates).  Returns the new module text, or [None]
    when the edit is impossible (terminator, or a used result with no
    in-scope replacement). *)
let apply_removal src fname idx choice =
  match parse src with
  | exception _ -> None
  | m -> (
    match Mlir.Ir.find_function m fname with
    | None -> None
    | Some f ->
      let body = Mlir.Ir.func_body f in
      let ops = body.Mlir.Ir.blk_ops in
      let nops = List.length ops in
      if idx >= nops - 1 then None (* never the terminator *)
      else begin
        let op = List.nth ops idx in
        let earlier = List.filteri (fun j _ -> j < idx) ops in
        let candidates ty =
          let args =
            Array.to_list body.Mlir.Ir.blk_args
            |> List.filter (fun v -> Mlir.Typ.equal v.Mlir.Ir.v_type ty)
          in
          let results =
            List.concat_map
              (fun o -> Array.to_list o.Mlir.Ir.results)
              earlier
            |> List.filter (fun v -> Mlir.Typ.equal v.Mlir.Ir.v_type ty)
          in
          args @ results
        in
        let ok = ref true in
        Array.iter
          (fun r ->
            if !ok && Mlir.Ir.has_uses ~within:f r then
              match candidates r.Mlir.Ir.v_type with
              | [] -> ok := false
              | cands ->
                let pick =
                  List.nth cands (min choice (List.length cands - 1))
                in
                Mlir.Ir.replace_uses ~within:f ~from:r ~to_:pick)
          op.Mlir.Ir.results;
        if not !ok then None
        else begin
          Mlir.Ir.erase_op op;
          Some (print m)
        end
      end)

(** Greedy op elimination to fixpoint: last-to-first, up to three
    replacement choices per op, keeping the first edit the predicate
    accepts. *)
let reduce_ops still_fails src =
  let shrink_once src =
    match parse src with
    | exception _ -> None
    | m ->
      let result = ref None in
      List.iter
        (fun fname ->
          if !result = None then begin
            let nops =
              match Mlir.Ir.find_function m fname with
              | Some f -> List.length (Mlir.Ir.func_body f).Mlir.Ir.blk_ops
              | None -> 0
            in
            let idx = ref (nops - 2) in
            while !result = None && !idx >= 0 do
              let tried = ref [] in
              for choice = 0 to 2 do
                if !result = None then
                  match apply_removal src fname !idx choice with
                  | Some src' when src' <> src && not (List.mem src' !tried) ->
                    tried := src' :: !tried;
                    if still_fails src' then result := Some src'
                  | _ -> ()
              done;
              decr idx
            done
          end)
        (func_names m);
      !result
  in
  let rec fixpoint src =
    match shrink_once src with Some src' -> fixpoint src' | None -> src
  in
  fixpoint src

(* ------------------------------------------------------------------ *)
(* The three axes                                                      *)
(* ------------------------------------------------------------------ *)

let reduce_funcs still_fails src =
  match parse src with
  | exception _ -> src
  | m ->
    let names = func_names m in
    if List.length names <= 1 then src
    else begin
      let test keep = keep <> [] && still_fails (restrict_funcs src keep) in
      let kept = ddmin test names in
      if kept <> [] && List.length kept < List.length names then
        restrict_funcs src kept
      else src
    end

let reduce_rules still_fails egg =
  let chunks = List.mapi (fun i c -> (i, c)) (split_sexprs egg) in
  let rules, decls = List.partition (fun (_, c) -> is_rule c) chunks in
  let rebuild kept =
    List.sort compare (decls @ kept) |> List.map snd |> String.concat "\n"
  in
  if rules = [] then rebuild []
  else
    let kept = ddmin (fun kept -> still_fails (rebuild kept)) rules in
    rebuild kept

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let reduce ?(max_rounds = 4) (pred : predicate) input =
  if not (pred input) then input
  else begin
    (* canonicalize first, so the fixpoint result is stable under
       re-reduction; fall back when canonicalization loses the failure *)
    let canonical =
      {
        rd_mlir =
          (match print (parse input.rd_mlir) with
          | s -> s
          | exception _ -> input.rd_mlir);
        rd_egg = String.concat "\n" (split_sexprs input.rd_egg);
      }
    in
    if not (pred canonical) then input
    else begin
      let cur = ref canonical in
      let round = ref 0 in
      let progress = ref true in
      while !progress && !round < max_rounds do
        incr round;
        let before = !cur in
        let mlir1 =
          reduce_funcs
            (fun mlir -> pred { !cur with rd_mlir = mlir })
            !cur.rd_mlir
        in
        cur := { !cur with rd_mlir = mlir1 };
        let mlir2 =
          reduce_ops
            (fun mlir -> pred { !cur with rd_mlir = mlir })
            !cur.rd_mlir
        in
        cur := { !cur with rd_mlir = mlir2 };
        let egg' =
          reduce_rules (fun egg -> pred { !cur with rd_egg = egg }) !cur.rd_egg
        in
        cur := { !cur with rd_egg = egg' };
        progress := !cur <> before
      done;
      !cur
    end
  end
