(** Delta-debugging reduction of failing repros.

    Given a repro (module text + ruleset text) and a failure predicate
    — "does this candidate still fail the same way?" — the reducer
    shrinks along three axes, to fixpoint:

    - {e functions}: classic ddmin over the module's [func.func] list;
    - {e ops}: greedy dependency-aware elimination inside each surviving
      function — an op is dropped if its results are unused, or if every
      use can be redirected to an earlier value of the same type; each
      candidate edit is kept only if the predicate still holds;
    - {e rules}: ddmin over the ruleset's top-level rule s-expressions
      (declarations are never dropped), after first trying the empty
      ruleset.

    Everything is deterministic, and the result is canonical (parsed and
    re-printed), so reducing an already-reduced repro is a no-op — the
    idempotence property [scripts/fuzz_smoke.sh] checks. *)

type input = { rd_mlir : string; rd_egg : string }

(** [true] = the candidate still exhibits the failure. *)
type predicate = input -> bool

(** Zeller-Hildebrandt ddmin: a minimal sublist still satisfying [test]
    (assuming [test] holds on the full list).  Deterministic; preserves
    element order. *)
val ddmin : ('a list -> bool) -> 'a list -> 'a list

(** Top-level s-expressions of an Egglog source (comments dropped). *)
val split_sexprs : string -> string list

(** Ops in every function body of a module text, nested regions
    included — the "≤ N ops" metric for reduced repros. *)
val op_count : string -> int

(** Shrink [input] under [pred].  If [pred input] is false the input is
    returned unchanged.  [max_rounds] bounds the outer
    functions→ops→rules fixpoint iteration (default 4). *)
val reduce : ?max_rounds:int -> predicate -> input -> input
