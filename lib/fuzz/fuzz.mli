(** The differential fuzzing oracle battery and its crash-triage corpus.

    Each generated {!Gen.case} runs the whole battery inside a forked,
    timeout-guarded subprocess, so a crash, hang, or runaway allocation
    in any pipeline layer is a classified finding rather than a dead
    fuzzing campaign.  Oracles, in severity order (DESIGN.md §"Oracle
    hierarchy"):

    - {e crash}: the subprocess died (nonzero exit, fatal signal,
      unmarshalable reply), or the pipeline raised a non-validation
      error — the loudest and least informative failure;
    - {e hang}: the subprocess outlived the wall-clock budget and was
      SIGKILLed;
    - {e nondeterminism}: two runs under one config produced different
      bytes — invalidates every cache key and batch-equivalence claim;
    - {e differential mismatch}: two configurations that promise
      byte-identical output disagreed (arena ≡ legacy engine, [-j1] ≡
      [-jN], batch ≡ sequential, warm cache ≡ cold run), or the
      optimized program computes different results than the input on
      concrete data (the interpreter-differential, which is what catches
      silent miscompilations like the PR 4 aliasing bug);
    - {e validator rejection}: the translation validator refused the
      extraction — the most informative failure, it names the broken
      refinement.

    Every failure is hashed into a stable {e triage signature}: a digest
    of the oracle name, the severity, and the failure detail normalized
    by lowercasing, collapsing digit runs and whitespace, and
    truncating — so two repros of one bug bucket together even when SSA
    names, sizes, or addresses differ, and a reduced repro keeps its
    original bucket. *)

type severity = Crash | Hang | Nondet | Differential | Validator

val severity_name : severity -> string

(** Position in the hierarchy: higher ranks are more informative. *)
val severity_rank : severity -> int

type failure = {
  f_oracle : string;  (** which oracle fired *)
  f_severity : severity;
  f_detail : string;  (** human-readable; may contain volatile text *)
  f_signature : string;  (** stable 12-hex-char triage signature *)
}

type verdict = V_pass | V_fail of failure list

(** The stable triage signature for a finding. *)
val signature : oracle:string -> severity -> detail:string -> string

(** Build a failure with its signature. *)
val failure : oracle:string -> severity -> string -> failure

type config = {
  fz_timeout_ms : int;  (** per-case subprocess wall-clock budget *)
  fz_inject : Dialegg.Faults.t option;  (** armed in every pipeline run *)
  fz_sem_checks : int;  (** concrete arg sets per semantics check *)
}

val default_config : config

(** The deterministic pipeline configuration the battery runs a case
    under: iteration/node budgets only (no wall-clock budget, which
    would make outputs timing-dependent), validator on. *)
val pipeline_config : config -> Gen.case -> Dialegg.Pipeline.config

(** Run the battery on one case in a forked subprocess.  Never raises
    on case misbehavior — everything becomes a classified failure. *)
val run_case : ?config:config -> Gen.case -> verdict

(** Run the battery in the current process (no subprocess guard): the
    reducer's predicate path, where the caller already knows the case
    terminates.  [mlir]/[egg] override the case's sources. *)
val run_battery :
  ?mlir:string -> ?egg:string -> config -> Gen.case -> failure list

(** {1 Corpus persistence} *)

(** [persist_failure ~corpus ~max_per_bucket case f] files the repro
    under [corpus/buckets/<signature>/] (module, ruleset, JSON report),
    unless the bucket already holds [max_per_bucket] repros.  Returns
    the repro path prefix if written. *)
val persist_failure :
  corpus:string -> max_per_bucket:int -> Gen.case -> failure -> string option

(** Append one journal line for a finished case. *)
val append_journal : corpus:string -> Gen.case -> failure list -> unit

(** Replay the journal: [(next_index, bucket counts)].  [(0, [])] when
    there is no journal. *)
val load_journal : corpus:string -> int * (string * int) list
