(** Differential oracle battery + triage corpus; see the interface for
    the model. *)

type severity = Crash | Hang | Nondet | Differential | Validator

let severity_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Nondet -> "nondeterminism"
  | Differential -> "differential"
  | Validator -> "validator"

let severity_rank = function
  | Crash -> 0
  | Hang -> 1
  | Nondet -> 2
  | Differential -> 3
  | Validator -> 4

type failure = {
  f_oracle : string;
  f_severity : severity;
  f_detail : string;
  f_signature : string;
}

type verdict = V_pass | V_fail of failure list

(* ------------------------------------------------------------------ *)
(* Triage signatures                                                   *)
(* ------------------------------------------------------------------ *)

(* Volatile text (SSA numbers, sizes, addresses, float digits) must not
   split one bug across buckets: collapse digit runs to '#', whitespace
   runs to one space, lowercase, and truncate before hashing. *)
let normalize s =
  let n = String.length s in
  let b = Buffer.create n in
  let is_digit c = c >= '0' && c <= '9' in
  let prev_sp = ref false in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (* a whole numeric literal — sign, decimal point, exponent — folds
       into one '#', so "-0.39" and "1.4e-06" bucket identically *)
    let numberish =
      is_digit c
      || ((c = '-' || c = '+' || c = '.') && !i + 1 < n && is_digit s.[!i + 1])
    in
    if numberish then begin
      Buffer.add_char b '#';
      prev_sp := false;
      let continues j =
        j < n
        && (is_digit s.[j]
           || s.[j] = '.' || s.[j] = 'e' || s.[j] = 'E'
           || ((s.[j] = '-' || s.[j] = '+') && j + 1 < n && is_digit s.[j + 1])
           )
      in
      while continues !i do
        incr i
      done
    end
    else begin
      (match Char.lowercase_ascii c with
      | ' ' | '\n' | '\t' | '\r' ->
        if not !prev_sp then Buffer.add_char b ' ';
        prev_sp := true
      | c ->
        Buffer.add_char b c;
        prev_sp := false);
      incr i
    end
  done;
  let s = Buffer.contents b in
  if String.length s > 160 then String.sub s 0 160 else s

let signature ~oracle sev ~detail =
  let digest =
    Digest.string (oracle ^ "|" ^ severity_name sev ^ "|" ^ normalize detail)
  in
  String.sub (Digest.to_hex digest) 0 12

let failure ~oracle sev detail =
  {
    f_oracle = oracle;
    f_severity = sev;
    f_detail = detail;
    f_signature = signature ~oracle sev ~detail;
  }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  fz_timeout_ms : int;
  fz_inject : Dialegg.Faults.t option;
  fz_sem_checks : int;
}

let default_config = { fz_timeout_ms = 10_000; fz_inject = None; fz_sem_checks = 2 }

(* Determinism demands discrete budgets: a wall-clock budget would stop
   saturation at a timing-dependent iteration and turn every oracle
   flaky.  Hang protection is the parent's job. *)
let pipeline_config config (case : Gen.case) =
  {
    Dialegg.Pipeline.default_config with
    rules = case.Gen.c_egg;
    max_iterations = 12;
    max_nodes = 20_000;
    timeout = None;
    inject = config.fz_inject;
  }

(* ------------------------------------------------------------------ *)
(* The battery                                                         *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* First differing line of two outputs, for failure detail. *)
let diff_summary a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec first i la lb =
    match (la, lb) with
    | [], [] -> Printf.sprintf "outputs differ (line %d)" i
    | x :: la', y :: lb' ->
      if x = y then first (i + 1) la' lb'
      else Printf.sprintf "line %d: %S vs %S" i x y
    | x :: _, [] -> Printf.sprintf "line %d only in first: %S" i x
    | [], y :: _ -> Printf.sprintf "line %d only in second: %S" i y
  in
  first 1 la lb

let close_float x y =
  x = y
  || (Float.is_nan x && Float.is_nan y)
  || Float.abs (x -. y) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))

let rv_close (a : Mlir.Interp.rv) (b : Mlir.Interp.rv) =
  match (a, b) with
  | Mlir.Interp.Ri (x, w), Mlir.Interp.Ri (y, w') -> w = w' && Int64.equal x y
  | Mlir.Interp.Rf (x, _), Mlir.Interp.Rf (y, _) -> close_float x y
  | Mlir.Interp.Rt t1, Mlir.Interp.Rt t2 ->
    t1.Mlir.Interp.shape = t2.Mlir.Interp.shape
    && (match (t1.Mlir.Interp.data, t2.Mlir.Interp.data) with
       | Mlir.Interp.Df a1, Mlir.Interp.Df a2 ->
         Array.for_all2 close_float a1 a2
       | Mlir.Interp.Di a1, Mlir.Interp.Di a2 ->
         Array.for_all2 Int64.equal a1 a2
       | _ -> false)
  | Mlir.Interp.Runit, Mlir.Interp.Runit -> true
  | _ -> false

let pp_rv_short rv =
  let s = Fmt.str "%a" Mlir.Interp.pp_rv rv in
  if String.length s > 48 then String.sub s 0 48 ^ "…" else s

let interp_values m func args =
  match Mlir.Interp.run ~fuel:2_000_000 m func args with
  | r -> Ok r.Mlir.Interp.values
  | exception Mlir.Interp.Runtime_error e -> Error e

(* Has this process ever spawned a domain?  Set by the [-jN] oracle;
   gates the fork-based batch oracle (see below). *)
let domains_spawned = ref false

(* Run the full battery in-process.  [mlir]/[egg] override the case's
   sources so the reducer can probe candidate shrinks. *)
let run_battery ?mlir ?egg config (case : Gen.case) : failure list =
  let case =
    {
      case with
      Gen.c_mlir = Option.value mlir ~default:case.Gen.c_mlir;
      Gen.c_egg = Option.value egg ~default:case.Gen.c_egg;
    }
  in
  let base_cfg = pipeline_config config case in
  let opt cfg = fst (Dialegg.Pipeline.optimize_source ~config:cfg case.Gen.c_mlir) in
  match opt base_cfg with
  | exception Dialegg.Pipeline.Error msg
    when contains ~needle:"validation" msg ->
    [ failure ~oracle:"validator" Validator msg ]
  | exception Dialegg.Pipeline.Error msg ->
    [ failure ~oracle:"pipeline" Crash msg ]
  | exception Mlir.Parser.Syntax_error { line; col; msg } ->
    [ failure ~oracle:"pipeline" Crash (Printf.sprintf "%d:%d: %s" line col msg) ]
  | base ->
    let failures = ref [] in
    let add f = failures := f :: !failures in
    (* -- nondeterminism: one config, two runs, one answer ------------ *)
    (match opt base_cfg with
    | base2 when base2 <> base ->
      add (failure ~oracle:"determinism" Nondet (diff_summary base base2))
    | _ -> ()
    | exception e ->
      add
        (failure ~oracle:"determinism" Nondet
           ("second run raised: " ^ Printexc.to_string e)));
    (* -- configuration differentials -------------------------------- *)
    let compare_run oracle cfg =
      match opt cfg with
      | out when out <> base ->
        add (failure ~oracle Differential (diff_summary base out))
      | _ -> ()
      | exception e ->
        add
          (failure ~oracle Differential
             ("variant raised: " ^ Printexc.to_string e))
    in
    compare_run "engine-diff"
      { base_cfg with Dialegg.Pipeline.engine = Egglog.Egraph.Legacy };
    (* -- batch ≡ sequential ------------------------------------------ *)
    (* OCaml 5 forbids [Unix.fork] once any domain has ever been spawned
       in the process, so this fork-based oracle must run before the
       domain-spawning [-jN] oracle below, and is skipped on any later
       in-process battery call (the forked-subprocess paths are
       unaffected: each child starts domain-free). *)
    if not !domains_spawned then (try
       let tmp =
         Filename.temp_file "dialegg-fuzz-" ".mlir"
       in
       Fun.protect
         ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
         (fun () ->
           let oc = open_out_bin tmp in
           output_string oc case.Gen.c_mlir;
           close_out oc;
           let m = Mlir.Parser.parse_module case.Gen.c_mlir in
           let jobs = Serve.Queue.shard_module ~path:tmp m in
           let sup_cfg =
             {
               Serve.Supervisor.default_config with
               Serve.Supervisor.pool = 2;
               retries = 0;
               job_timeout = 60.;
               grace = 1.;
               pipeline = base_cfg;
             }
           in
           let report = Serve.Supervisor.run ~config:sup_cfg jobs in
           if not (Serve.Supervisor.report_ok report) then
             add
               (failure ~oracle:"batch-diff" Differential
                  "batch driver reported failed jobs")
           else begin
             Serve.Supervisor.splice_results m report;
             let out = Mlir.Printer.module_to_string m in
             if out <> base then
               add (failure ~oracle:"batch-diff" Differential (diff_summary base out))
           end)
     with e ->
       add
         (failure ~oracle:"batch-diff" Differential
            ("batch run raised: " ^ Printexc.to_string e)));
    compare_run "jobs-diff" { base_cfg with Dialegg.Pipeline.jobs = 4 };
    domains_spawned := true;
    (* -- warm cache ≡ cold run (the daemon's serving unit) ----------- *)
    (try
       let dir = Filename.temp_file "dialegg-fuzz-cache" "" in
       Sys.remove dir;
       Unix.mkdir dir 0o700;
       Fun.protect
         ~finally:(fun () ->
           (try
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir f))
                (Sys.readdir dir)
            with Sys_error _ -> ());
           try Unix.rmdir dir with Unix.Unix_error _ -> ())
         (fun () ->
           let key = Serve.Cache.key ~config:base_cfg ~src:case.Gen.c_mlir in
           let cache = Serve.Cache.create ~capacity:8 ~dir:(Some dir) () in
           Serve.Cache.add cache key
             { Serve.Cache.ce_output = base; ce_degraded = 0 };
           (* a second instance sees only the disk tier: the post-restart
              warm path *)
           let cold = Serve.Cache.create ~capacity:0 ~dir:(Some dir) () in
           match Serve.Cache.find cold key with
           | None ->
             add
               (failure ~oracle:"cache-diff" Differential
                  "committed entry missing on disk lookup")
           | Some (entry, _) ->
             let m2 = Mlir.Parser.parse_module case.Gen.c_mlir in
             (match Mlir.Ir.find_function m2 case.Gen.c_func with
             | None -> ()
             | Some f ->
               Serve.Supervisor.splice_function f entry.Serve.Cache.ce_output;
               let out = Mlir.Printer.module_to_string m2 in
               if out <> base then
                 add
                   (failure ~oracle:"cache-diff" Differential
                      (diff_summary base out))))
     with e ->
       add
         (failure ~oracle:"cache-diff" Differential
            ("cache round-trip raised: " ^ Printexc.to_string e)));
    (* -- semantics: optimized ≡ input on concrete data --------------- *)
    (try
       let m_in = Mlir.Parser.parse_module case.Gen.c_mlir in
       let m_out = Mlir.Parser.parse_module base in
       for k = 0 to config.fz_sem_checks - 1 do
         let seed = (case.Gen.c_seed * 7919) + (case.Gen.c_index * 131) + k in
         (* fresh argument tensors per run: the interpreter mutates
            destination buffers in place *)
         let r_in =
           interp_values m_in case.Gen.c_func
             (Gen.random_args ~seed m_in case.Gen.c_func)
         in
         let r_out =
           interp_values m_out case.Gen.c_func
             (Gen.random_args ~seed m_in case.Gen.c_func)
         in
         match (r_in, r_out) with
         | Ok vs_in, Ok vs_out ->
           if
             List.length vs_in <> List.length vs_out
             || not (List.for_all2 rv_close vs_in vs_out)
           then
             add
               (failure ~oracle:"semantics" Differential
                  (Printf.sprintf
                     "arg set %d: input computes %s, optimized computes %s" k
                     (String.concat ", " (List.map pp_rv_short vs_in))
                     (String.concat ", " (List.map pp_rv_short vs_out))))
         | Error e_in, Error e_out when e_in = e_out -> ()
         | Error e_in, Error e_out ->
           add
             (failure ~oracle:"semantics" Differential
                (Printf.sprintf "arg set %d: both trap differently: %s vs %s"
                   k e_in e_out))
         | Ok _, Error e ->
           add
             (failure ~oracle:"semantics" Differential
                (Printf.sprintf "arg set %d: optimized program traps: %s" k e))
         | Error e, Ok _ ->
           add
             (failure ~oracle:"semantics" Differential
                (Printf.sprintf "arg set %d: input traps (%s), optimized does not"
                   k e))
       done
     with e ->
       add
         (failure ~oracle:"semantics" Crash
            ("interpreter raised: " ^ Printexc.to_string e)));
    List.rev !failures

(* ------------------------------------------------------------------ *)
(* Subprocess supervision                                              *)
(* ------------------------------------------------------------------ *)

let read_all_deadline fd ~deadline =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then `Timeout
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> `Timeout
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> `Eof (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let run_case ?(config = default_config) (case : Gen.case) : verdict =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* child: run the battery, marshal the findings, exit 0.  stderr is
       pointed at /dev/null so pipeline warnings don't interleave with
       the campaign's output; a real crash still reaches the parent as
       an exit status. *)
    (try Unix.close r with Unix.Unix_error _ -> ());
    (try
       let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stderr;
       Unix.close devnull
     with Unix.Unix_error _ -> ());
    let failures = run_battery config case in
    let b = Marshal.to_bytes (failures : failure list) [] in
    let rec write_all off =
      if off < Bytes.length b then
        write_all (off + Unix.write w b off (Bytes.length b - off))
    in
    (try write_all 0 with Unix.Unix_error _ -> ());
    (try Unix.close w with Unix.Unix_error _ -> ());
    Stdlib.exit 0
  | pid -> (
    Unix.close w;
    let deadline =
      Unix.gettimeofday () +. (float_of_int config.fz_timeout_ms /. 1000.)
    in
    let outcome = read_all_deadline r ~deadline in
    (try Unix.close r with Unix.Unix_error _ -> ());
    match outcome with
    | `Timeout ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      V_fail
        [
          failure ~oracle:"hang" Hang
            (Printf.sprintf "case outlived its %dms budget"
               config.fz_timeout_ms);
        ]
    | `Eof payload -> (
      let _, status = Unix.waitpid [] pid in
      match status with
      | Unix.WEXITED 0 -> (
        match (Marshal.from_string payload 0 : failure list) with
        | [] -> V_pass
        | fs -> V_fail fs
        | exception _ ->
          V_fail
            [
              failure ~oracle:"crash" Crash
                "child exited 0 but its reply was unreadable";
            ])
      | Unix.WEXITED n ->
        V_fail
          [ failure ~oracle:"crash" Crash (Printf.sprintf "child exited %d" n) ]
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
        V_fail
          [
            failure ~oracle:"crash" Crash
              (Printf.sprintf "child killed by signal %d" s);
          ]))

(* ------------------------------------------------------------------ *)
(* Corpus persistence                                                  *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec make d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let bucket_dir ~corpus sig_ = Filename.concat (Filename.concat corpus "buckets") sig_

let persist_failure ~corpus ~max_per_bucket (case : Gen.case) f =
  let dir = bucket_dir ~corpus f.f_signature in
  mkdir_p dir;
  let existing =
    match Sys.readdir dir with
    | entries ->
      Array.fold_left
        (fun n e -> if Filename.check_suffix e ".mlir" then n + 1 else n)
        0 entries
    | exception Sys_error _ -> 0
  in
  if existing >= max_per_bucket then None
  else begin
    let prefix = Filename.concat dir (Printf.sprintf "case_%06d" case.Gen.c_index) in
    write_file (prefix ^ ".mlir") case.Gen.c_mlir;
    write_file (prefix ^ ".egg") case.Gen.c_egg;
    write_file (prefix ^ ".json")
      (Printf.sprintf
         "{\"index\":%d,\"seed\":%d,\"shape\":\"%s\",\"func\":\"%s\",\"oracle\":\"%s\",\"severity\":\"%s\",\"signature\":\"%s\",\"detail\":\"%s\"}\n"
         case.Gen.c_index case.Gen.c_seed
         (Gen.shape_name case.Gen.c_shape)
         case.Gen.c_func (json_escape f.f_oracle)
         (severity_name f.f_severity) f.f_signature (json_escape f.f_detail));
    Some prefix
  end

let journal_path corpus = Filename.concat corpus "journal.jsonl"

let append_journal ~corpus (case : Gen.case) failures =
  mkdir_p corpus;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
      (journal_path corpus)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "{\"index\":%d,\"seed\":%d,\"shape\":\"%s\",\"sigs\":[%s]}\n"
        case.Gen.c_index case.Gen.c_seed
        (Gen.shape_name case.Gen.c_shape)
        (String.concat ","
           (List.map (fun f -> "\"" ^ f.f_signature ^ "\"") failures)))

(* Minimal field scraping — the journal is machine-written, one object
   per line, no nesting beyond the sigs array. *)
let scrape_int line key =
  let pat = "\"" ^ key ^ "\":" in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
    let pl = String.length pat and ll = String.length line in
    let rec find i =
      if i + pl > ll then None
      else if String.sub line i pl = pat then Some (i + pl)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < ll
        && (line.[!stop] = '-' || (line.[!stop] >= '0' && line.[!stop] <= '9'))
      do
        incr stop
      done;
      int_of_string_opt (String.sub line start (!stop - start)))

let scrape_sigs line =
  match String.index_opt line '[' with
  | None -> []
  | Some i -> (
    match String.index_from_opt line i ']' with
    | None -> []
    | Some j ->
      String.sub line (i + 1) (j - i - 1)
      |> String.split_on_char ','
      |> List.filter_map (fun tok ->
             let tok = String.trim tok in
             let tl = String.length tok in
             if tl >= 2 && tok.[0] = '"' && tok.[tl - 1] = '"' then
               Some (String.sub tok 1 (tl - 2))
             else None))

let load_journal ~corpus =
  match open_in (journal_path corpus) with
  | exception Sys_error _ -> (0, [])
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let next = ref 0 in
        let buckets = Hashtbl.create 16 in
        let order = ref [] in
        (try
           while true do
             let line = input_line ic in
             (match scrape_int line "index" with
             | Some i when i + 1 > !next -> next := i + 1
             | _ -> ());
             List.iter
               (fun s ->
                 (match Hashtbl.find_opt buckets s with
                 | None -> order := s :: !order
                 | Some _ -> ());
                 Hashtbl.replace buckets s
                   (1 + Option.value ~default:0 (Hashtbl.find_opt buckets s)))
               (scrape_sigs line)
           done
         with End_of_file -> ());
        (!next, List.rev_map (fun s -> (s, Hashtbl.find buckets s)) !order))
