(** The [scf] dialect: structured control flow ([scf.for], [scf.if],
    [scf.while], [scf.yield]). *)

open Ir

(** [yield blk values] terminates an scf region. *)
let yield blk (values : value list) =
  let op = create_op "scf.yield" ~operands:values in
  append_op blk op;
  op

(** [for_ blk ~lb ~ub ~step ~iter_args ~body] builds an [scf.for].

    [body] receives the loop body block, the induction variable and the
    per-iteration values of the iteration arguments; it must end the block
    with an [scf.yield] of the next iteration values.  Returns the loop's
    results (final values of the iteration arguments). *)
let for_ blk ~lb ~ub ~step ?(iter_args = []) body : value list =
  let arg_types = Typ.index :: List.map (fun v -> v.v_type) iter_args in
  let body_blk = create_block ~arg_types () in
  let iv = body_blk.blk_args.(0) in
  let carried = Array.to_list (Array.sub body_blk.blk_args 1 (List.length iter_args)) in
  body body_blk iv carried;
  let op =
    create_op "scf.for"
      ~operands:(lb :: ub :: step :: iter_args)
      ~result_types:(List.map (fun v -> v.v_type) iter_args)
      ~regions:[ create_region [ body_blk ] ]
  in
  append_op blk op;
  Array.to_list op.results

(** [if_ blk cond ~result_types ~then_ ~else_] builds an [scf.if] with two
    regions; each branch callback must end its block with [scf.yield]. *)
let if_ blk cond ~result_types ~then_ ~else_ : value list =
  let then_blk = create_block () in
  then_ then_blk;
  let else_blk = create_block () in
  else_ else_blk;
  let op =
    create_op "scf.if" ~operands:[ cond ] ~result_types
      ~regions:[ create_region [ then_blk ]; create_region [ else_blk ] ]
  in
  append_op blk op;
  Array.to_list op.results

(** [while_ blk ~init ~cond ~body] builds an [scf.while].  [cond] receives
    the "before" block and its arguments and must terminate with
    [scf.condition]; [body] receives the "after" block. *)
let while_ blk ~init ~cond ~body : value list =
  let tys = List.map (fun v -> v.v_type) init in
  let before = create_block ~arg_types:tys () in
  cond before (Array.to_list before.blk_args);
  let after = create_block ~arg_types:tys () in
  body after (Array.to_list after.blk_args);
  let op =
    create_op "scf.while" ~operands:init ~result_types:tys
      ~regions:[ create_region [ before ]; create_region [ after ] ]
  in
  append_op blk op;
  Array.to_list op.results

(** [condition blk c values] terminates an [scf.while] "before" region. *)
let condition blk c (values : value list) =
  let op = create_op "scf.condition" ~operands:(c :: values) in
  append_op blk op;
  op

let register () =
  let open Dialect in
  (* result counts follow the iter_args / branch signatures: variadic *)
  def "scf.for" ~n_regions:1 ~verify:(fun op ->
      if Array.length op.Ir.operands < 3 then Error "scf.for needs lb, ub, step"
      else Ok ());
  def "scf.if" ~n_operands:1 ~n_regions:2 ~verify:(fun op ->
      if Array.length op.Ir.operands <> 1 then Error "scf.if takes one condition"
      else if List.length op.Ir.regions <> 2 then Error "scf.if needs then and else regions"
      else Ok ());
  def "scf.while" ~n_regions:2;
  def "scf.yield" ~n_results:0 ~traits:[ Terminator ];
  def "scf.condition" ~n_results:0 ~traits:[ Terminator ]
