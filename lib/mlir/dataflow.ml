(** Lattice-parameterized forward dataflow over mini-MLIR.

    The solver is a straightforward abstract interpreter: facts flow
    op-to-op through a block, [scf.if] joins the facts its branches yield,
    and loops ([scf.for], [scf.while]) iterate their loop-carried argument
    facts — joining, then widening — until they stabilize (or a small
    iteration budget runs out, in which case everything the loop touches
    falls back to top).  Regions of unknown ops are analyzed with top
    block arguments, so their contents still get (weak) facts.

    Soundness is relative to {!Interp}: every concrete value an execution
    produces must be described by the fact computed here.  Two
    representation details matter throughout (see {!Interp} / {!Ints}):

    - integers are stored sign-extended to [int64], and [Ints] only
      re-truncates after the wrapping ops (add/sub/mul/shli/xori/shrui) —
      comparisons, min/max and arithmetic shifts work on the raw [int64];
    - [arith.cmpi] stores an {e unnormalized} [i1] ([0L] or [1L], never
      [-1L]), so the top element for [i1] must cover [{-1, 0, 1}]. *)

(* ------------------------------------------------------------------ *)
(* Lattice and analysis signatures                                     *)
(* ------------------------------------------------------------------ *)

module type LATTICE = sig
  type t

  val name : string
  val top : Typ.t -> t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val induction : lb:t -> ub:t -> step:t -> t
  val transfer : (Ir.value -> t) -> Ir.op -> t list option
  val pp : Format.formatter -> t -> unit
end

module type ANALYSIS = sig
  type elt
  type facts

  val analyze : ?init:(Ir.value -> elt option) -> Ir.op -> facts
  val fact : facts -> Ir.value -> elt
  val return_facts : facts -> Ir.op -> elt list
end

(* Single-result integer (or index) width of an op, the common gate for
   the integer domains. *)
let int_result_width (op : Ir.op) =
  if Array.length op.Ir.results = 1 then
    match op.Ir.results.(0).Ir.v_type with
    | Typ.Integer w -> Some w
    | Typ.Index -> Some 64
    | _ -> None
  else None

let attr_int op name =
  match Ir.attr op name with Some (Attr.Int (v, _)) -> Some v | _ -> None

(* ------------------------------------------------------------------ *)
(* The solver                                                          *)
(* ------------------------------------------------------------------ *)

module Make (L : LATTICE) : ANALYSIS with type elt = L.t = struct
  type elt = L.t
  type facts = (int, L.t) Hashtbl.t

  let fact tbl (v : Ir.value) =
    match Hashtbl.find_opt tbl v.Ir.v_id with
    | Some f -> f
    | None -> L.top v.Ir.v_type

  let set tbl (v : Ir.value) f = Hashtbl.replace tbl v.Ir.v_id f
  let top_of (v : Ir.value) = L.top v.Ir.v_type

  (* loop-carried facts that have not stabilized after this many rounds
     fall back to top; widening normally converges much earlier *)
  let max_loop_rounds = 32
  let widen_after = 4

  let rec exec_op tbl (op : Ir.op) =
    match op.Ir.op_name with
    | "scf.if" -> exec_if tbl op
    | "scf.for" -> exec_for tbl op
    | "scf.while" -> exec_while tbl op
    | _ ->
      (* unknown region-holding op: give nested block arguments top so the
         nested code still gets sound facts *)
      List.iter
        (fun (r : Ir.region) ->
          List.iter
            (fun (b : Ir.block) ->
              Array.iter (fun a -> set tbl a (top_of a)) b.Ir.blk_args;
              exec_block tbl b)
            r.Ir.blocks)
        op.Ir.regions;
      let facts =
        (* a malformed op (bad arity, missing attr) must not kill the
           analysis: treat it as unhandled *)
        match (try L.transfer (fact tbl) op with _ -> None) with
        | Some fs when List.length fs = Array.length op.Ir.results -> fs
        | _ -> Array.to_list (Array.map top_of op.Ir.results)
      in
      List.iteri (fun i f -> set tbl op.Ir.results.(i) f) facts

  and exec_block tbl (blk : Ir.block) = List.iter (exec_op tbl) blk.Ir.blk_ops

  (* facts of a block's scf.yield operands, [] if it ends differently *)
  and yield_facts tbl (blk : Ir.block) =
    match Ir.terminator blk with
    | Some t when t.Ir.op_name = "scf.yield" ->
      Array.to_list (Array.map (fact tbl) t.Ir.operands)
    | _ -> []

  and set_results_top tbl (op : Ir.op) =
    Array.iter (fun r -> set tbl r (top_of r)) op.Ir.results

  and exec_if tbl (op : Ir.op) =
    match op.Ir.regions with
    | [ then_r; else_r ] ->
      let branch r =
        let b = Ir.entry_block r in
        exec_block tbl b;
        yield_facts tbl b
      in
      let ft = branch then_r and fe = branch else_r in
      let n = Array.length op.Ir.results in
      if List.length ft = n && List.length fe = n then
        List.iteri (fun i f -> set tbl op.Ir.results.(i) f) (List.map2 L.join ft fe)
      else set_results_top tbl op
    | _ -> set_results_top tbl op

  and exec_for tbl (op : Ir.op) =
    match op.Ir.regions with
    | [ body_r ] when Array.length op.Ir.operands >= 3 ->
      let body = Ir.entry_block body_r in
      let n_iters = Array.length op.Ir.operands - 3 in
      if Array.length body.Ir.blk_args <> n_iters + 1 then begin
        Array.iter (fun a -> set tbl a (top_of a)) body.Ir.blk_args;
        exec_block tbl body;
        set_results_top tbl op
      end
      else begin
        let f i = fact tbl op.Ir.operands.(i) in
        set tbl body.Ir.blk_args.(0) (L.induction ~lb:(f 0) ~ub:(f 1) ~step:(f 2));
        let init = Array.init n_iters (fun i -> f (i + 3)) in
        let final = solve_loop tbl ~args:(Array.sub body.Ir.blk_args 1 n_iters) ~init
            ~run:(fun () -> exec_block tbl body; yield_facts tbl body)
        in
        Array.iteri (fun i f -> if i < Array.length op.Ir.results then
            set tbl op.Ir.results.(i) f) final
      end
    | _ -> set_results_top tbl op

  and exec_while tbl (op : Ir.op) =
    match op.Ir.regions with
    | [ before_r; after_r ] ->
      let before = Ir.entry_block before_r and after = Ir.entry_block after_r in
      let n = Array.length op.Ir.operands in
      if Array.length before.Ir.blk_args <> n then begin
        Array.iter (fun a -> set tbl a (top_of a)) before.Ir.blk_args;
        Array.iter (fun a -> set tbl a (top_of a)) after.Ir.blk_args;
        exec_block tbl before;
        exec_block tbl after;
        set_results_top tbl op
      end
      else begin
        let condition () =
          match Ir.terminator before with
          | Some t when t.Ir.op_name = "scf.condition" && Array.length t.Ir.operands >= 1 ->
            Some (Array.to_list (Array.map (fact tbl) (Array.sub t.Ir.operands 1 (Array.length t.Ir.operands - 1))))
          | _ -> None
        in
        let init = Array.map (fact tbl) op.Ir.operands in
        let run () =
          exec_block tbl before;
          match condition () with
          | Some passed when List.length passed = Array.length after.Ir.blk_args ->
            List.iteri (fun i f -> set tbl after.Ir.blk_args.(i) f) passed;
            exec_block tbl after;
            yield_facts tbl after
          | _ ->
            (* malformed: poison the after-region and bail to top *)
            Array.iter (fun a -> set tbl a (top_of a)) after.Ir.blk_args;
            exec_block tbl after;
            []
        in
        ignore (solve_loop tbl ~args:before.Ir.blk_args ~init ~run);
        (* results are the values the condition passes out *)
        (match condition () with
        | Some passed when List.length passed = Array.length op.Ir.results ->
          List.iteri (fun i f -> set tbl op.Ir.results.(i) f) passed
        | _ -> set_results_top tbl op)
      end
    | _ -> set_results_top tbl op

  (* Iterate loop-carried facts for [args] to a fixpoint: each round sets
     the argument facts, runs the body via [run] (which returns the
     yielded facts, or [] if malformed) and joins them back in.  Returns
     the stabilized argument facts (top on budget exhaustion). *)
  and solve_loop tbl ~(args : Ir.value array) ~(init : L.t array) ~run =
    let n = Array.length args in
    let cur = ref init in
    let stable = ref false in
    let rounds = ref 0 in
    while (not !stable) && !rounds < max_loop_rounds do
      incr rounds;
      Array.iteri (fun i f -> set tbl args.(i) f) !cur;
      let ys = run () in
      let ys =
        if List.length ys = n then Array.of_list ys else Array.map top_of args
      in
      let next =
        Array.init n (fun i ->
            let j = L.join !cur.(i) ys.(i) in
            if !rounds >= widen_after then L.widen !cur.(i) j else j)
      in
      if Array.for_all2 L.equal next !cur then stable := true else cur := next
    done;
    if not !stable then begin
      (* did not converge: fall back to top and re-run once so every fact
         inside the body is consistent with the top arguments *)
      cur := Array.map top_of args;
      Array.iteri (fun i f -> set tbl args.(i) f) !cur;
      ignore (run ())
    end;
    !cur

  let analyze ?init (func : Ir.op) : facts =
    let tbl : facts = Hashtbl.create 256 in
    (match func.Ir.regions with
    | r :: _ ->
      let body = Ir.entry_block r in
      Array.iter
        (fun a ->
          let f =
            match init with
            | Some g -> ( match g a with Some f -> f | None -> top_of a)
            | None -> top_of a
          in
          set tbl a f)
        body.Ir.blk_args;
      exec_block tbl body
    | [] -> ());
    tbl

  let return_facts tbl (func : Ir.op) =
    match func.Ir.regions with
    | r :: _ -> (
      match Ir.terminator (Ir.entry_block r) with
      | Some t when t.Ir.op_name = "func.return" ->
        Array.to_list (Array.map (fact tbl) t.Ir.operands)
      | _ -> [])
    | [] -> []
end

(* ------------------------------------------------------------------ *)
(* Integer intervals                                                   *)
(* ------------------------------------------------------------------ *)

module Interval = struct
  type itv = Bot | Range of int64 * int64
  type t = itv

  let name = "interval"

  let min_signed w =
    if w >= 64 then Int64.min_int else Int64.neg (Int64.shift_left 1L (w - 1))

  let max_signed w =
    if w >= 64 then Int64.max_int else Int64.sub (Int64.shift_left 1L (w - 1)) 1L

  (* i1 is special: cmpi stores an unnormalized 1L, so concrete i1 values
     range over {-1, 0, 1} *)
  let top_int w = if w = 1 then Range (-1L, 1L) else Range (min_signed w, max_signed w)
  let full = Range (Int64.min_int, Int64.max_int)

  let top (ty : Typ.t) =
    match ty with Typ.Integer w -> top_int w | Typ.Index -> top_int 64 | _ -> full

  let equal (a : itv) (b : itv) = a = b
  let of_const v = Range (v, v)
  let exact = function Range (lo, hi) when Int64.equal lo hi -> Some lo | _ -> None

  let contains i v =
    match i with Bot -> false | Range (lo, hi) -> lo <= v && v <= hi

  let subset a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Range (a1, a2), Range (b1, b2) -> b1 <= a1 && a2 <= b2

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Range (a1, a2), Range (b1, b2) -> Range (min a1 b1, max a2 b2)

  let widen old next =
    match (old, next) with
    | Bot, x | x, Bot -> x
    | Range (a1, a2), Range (b1, b2) ->
      Range
        ( (if b1 < a1 then Int64.min_int else a1),
          if b2 > a2 then Int64.max_int else a2 )

  (* int64 arithmetic with overflow detection *)
  let add_ovf a b =
    let r = Int64.add a b in
    if a >= 0L = (b >= 0L) && r >= 0L <> (a >= 0L) then None else Some r

  let sub_ovf a b =
    let r = Int64.sub a b in
    if a >= 0L <> (b >= 0L) && r >= 0L <> (a >= 0L) then None else Some r

  let mul_ovf a b =
    if Int64.equal a 0L || Int64.equal b 0L then Some 0L
    else if (Int64.equal a (-1L) && Int64.equal b Int64.min_int)
            || (Int64.equal b (-1L) && Int64.equal a Int64.min_int)
    then None
    else
      let r = Int64.mul a b in
      if Int64.equal (Int64.div r b) a then Some r else None

  let shl_ovf a s =
    (* a >= 0, 0 <= s <= 63 *)
    if Int64.equal a 0L then Some 0L
    else if Int64.shift_right_logical Int64.max_int s >= a then
      Some (Int64.shift_left a s)
    else None

  (* After a truncating op ({!Ints.trunc}): bounds that already lie within
     the width survive the wrap unchanged; otherwise the wrap can reorder
     them, so fall back to the width's full range. *)
  let fit w lo hi =
    if lo >= min_signed w && hi <= max_signed w then Range (lo, hi) else top_int w

  let r_add w (l1, h1) (l2, h2) =
    match (add_ovf l1 l2, add_ovf h1 h2) with
    | Some lo, Some hi -> fit w lo hi
    | _ -> top_int w

  let r_sub w (l1, h1) (l2, h2) =
    match (sub_ovf l1 h2, sub_ovf h1 l2) with
    | Some lo, Some hi -> fit w lo hi
    | _ -> top_int w

  let r_mul w (l1, h1) (l2, h2) =
    match (mul_ovf l1 l2, mul_ovf l1 h2, mul_ovf h1 l2, mul_ovf h1 h2) with
    | Some a, Some b, Some c, Some d ->
      fit w (min (min a b) (min c d)) (max (max a b) (max c d))
    | _ -> top_int w

  let r_minsi _w (l1, h1) (l2, h2) = Range (min l1 l2, min h1 h2)
  let r_maxsi _w (l1, h1) (l2, h2) = Range (max l1 l2, max h1 h2)

  (* 0 <= a & b <= min a b when both are non-negative; anding with any
     value cannot raise a non-negative operand *)
  let r_andi w (l1, h1) (l2, h2) =
    if l1 >= 0L && l2 >= 0L then Range (0L, min h1 h2)
    else if l1 >= 0L then Range (0L, h1)
    else if l2 >= 0L then Range (0L, h2)
    else top_int w

  (* max a b <= a | b <= a + b for non-negative a, b *)
  let r_ori w (l1, h1) (l2, h2) =
    if l1 >= 0L && l2 >= 0L then
      match add_ovf h1 h2 with
      | Some hi -> Range (max l1 l2, hi)
      | None -> top_int w
    else top_int w

  let r_xori w (l1, h1) (l2, h2) =
    if l1 >= 0L && l2 >= 0L then
      match add_ovf h1 h2 with Some hi -> fit w 0L hi | None -> top_int w
    else top_int w

  let r_shli w (l1, h1) (l2, h2) =
    if l1 >= 0L && l2 >= 0L && h2 <= 63L then
      match (shl_ovf l1 (Int64.to_int l2), shl_ovf h1 (Int64.to_int h2)) with
      | Some lo, Some hi -> fit w lo hi
      | _ -> top_int w
    else top_int w

  (* monotone in the operand, antitone in the amount: the 4 corners bound
     the result; no truncation in Ints.shrsi, so the raw bounds are exact *)
  let r_shrsi _w (l1, h1) (l2, h2) =
    if l2 >= 0L && h2 <= 63L then
      let s1 = Int64.to_int l2 and s2 = Int64.to_int h2 in
      let a = Int64.shift_right l1 s1
      and b = Int64.shift_right l1 s2
      and c = Int64.shift_right h1 s1
      and d = Int64.shift_right h1 s2 in
      Range (min (min a b) (min c d), max (max a b) (max c d))
    else full

  let r_shrui w (l1, h1) (l2, h2) =
    if l1 >= 0L && l2 >= 0L && h2 <= 63L then
      fit w
        (Int64.shift_right_logical l1 (Int64.to_int h2))
        (Int64.shift_right_logical h1 (Int64.to_int l2))
    else top_int w

  (* remainder by a known-positive divisor: |r| < h2 and r's sign follows
     the dividend; no truncation in Ints.remsi *)
  let r_remsi _w (l1, h1) (l2, h2) =
    if l2 >= 1L then
      let m = Int64.sub h2 1L in
      Range ((if l1 >= 0L then 0L else Int64.neg m), if h1 <= 0L then 0L else m)
    else full

  (* Singleton operands are evaluated through {!Ints} so constant
     subtrees mirror the interpreter (and Egglog's own constant folding)
     bit for bit; otherwise the per-op range rule applies. *)
  let lift2 w exactf rangef a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Range (l1, h1), Range (l2, h2) ->
      if Int64.equal l1 h1 && Int64.equal l2 h2 then
        match (try Some (exactf w l1 l2) with Failure _ -> None) with
        | Some r -> Range (r, r)
        | None -> top_int w (* traps (e.g. rem by zero): no value to describe *)
      else rangef w (l1, h1) (l2, h2)

  let cmpi_itv pred a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Range (l1, h1), Range (l2, h2) ->
      let yes = Range (1L, 1L) and no = Range (0L, 0L) and unk = Range (0L, 1L) in
      let all_eq = Int64.equal l1 h1 && Int64.equal l2 h2 && Int64.equal l1 l2 in
      let disjoint = h1 < l2 || h2 < l1 in
      (match pred with
      | 0 (* eq *) -> if all_eq then yes else if disjoint then no else unk
      | 1 (* ne *) -> if disjoint then yes else if all_eq then no else unk
      | 2 (* slt *) -> if h1 < l2 then yes else if l1 >= h2 then no else unk
      | 3 (* sle *) -> if h1 <= l2 then yes else if l1 > h2 then no else unk
      | 4 (* sgt *) -> if l1 > h2 then yes else if h1 <= l2 then no else unk
      | 5 (* sge *) -> if l1 >= h2 then yes else if h1 < l2 then no else unk
      | _ -> unk)

  let induction ~lb ~ub ~step =
    ignore step;
    (* iv ranges over [lb, ub) and the interpreter requires step >= 1 *)
    match (lb, ub) with
    | Bot, _ | _, Bot -> Bot
    | Range (llo, _), Range (_, uhi) ->
      if Int64.equal uhi Int64.min_int || llo > Int64.sub uhi 1L then Bot
      else Range (llo, Int64.sub uhi 1L)

  let transfer get (op : Ir.op) =
    match int_result_width op with
    | None -> None
    | Some w -> (
      let v i = get op.Ir.operands.(i) in
      let r1 x = Some [ x ] in
      let bin exactf rangef = r1 (lift2 w exactf rangef (v 0) (v 1)) in
      match op.Ir.op_name with
      | "arith.constant" -> (
        match Ir.attr op "value" with
        | Some (Attr.Int (c, _)) -> r1 (Range (c, c))
        | _ -> None)
      | "arith.addi" -> bin Ints.add r_add
      | "arith.subi" -> bin Ints.sub r_sub
      | "arith.muli" -> bin Ints.mul r_mul
      | "arith.minsi" -> bin Ints.minsi r_minsi
      | "arith.maxsi" -> bin Ints.maxsi r_maxsi
      | "arith.andi" -> bin Ints.andi r_andi
      | "arith.ori" -> bin Ints.ori r_ori
      | "arith.xori" -> bin Ints.xori r_xori
      | "arith.shli" -> bin Ints.shli r_shli
      | "arith.shrsi" -> bin Ints.shrsi r_shrsi
      | "arith.shrui" -> bin Ints.shrui r_shrui
      | "arith.remsi" -> bin Ints.remsi r_remsi
      (* arith.divsi is deliberately not modeled: rounds toward zero while
         the shrsi it is commonly strength-reduced to rounds toward -inf,
         so a tight divsi fact would flag that sound rewrite as widening *)
      | "arith.cmpi" -> (
        match attr_int op "predicate" with
        | Some p -> r1 (cmpi_itv (Int64.to_int p) (v 0) (v 1))
        | None -> None)
      | "arith.select" ->
        let c = v 0 and a = v 1 and b = v 2 in
        r1
          (match c with
          | Bot -> Bot
          | Range (lo, hi) ->
            if lo > 0L || hi < 0L then a (* cannot be 0: always true *)
            else if Int64.equal lo 0L && Int64.equal hi 0L then b
            else join a b)
      | "arith.index_cast" -> r1 (v 0) (* the interpreter does not truncate *)
      | _ -> None)

  let pp ppf = function
    | Bot -> Fmt.string ppf "bot"
    | Range (lo, hi) ->
      if Int64.equal lo hi then Fmt.pf ppf "[%Ld]" lo
      else Fmt.pf ppf "[%Ld, %Ld]" lo hi
end

module Intervals = Make (Interval)

(* ------------------------------------------------------------------ *)
(* Known bits                                                          *)
(* ------------------------------------------------------------------ *)

module Known_bits = struct
  type bits = { kz : int64; ko : int64 }
  type t = bits

  let name = "known-bits"
  let top_bits = { kz = 0L; ko = 0L }
  let top (_ : Typ.t) = top_bits
  let equal a b = Int64.equal a.kz b.kz && Int64.equal a.ko b.ko
  let join a b = { kz = Int64.logand a.kz b.kz; ko = Int64.logand a.ko b.ko }
  let widen _old next = next
  let induction ~lb:_ ~ub:_ ~step:_ = top_bits
  let exactly v = { kz = Int64.lognot v; ko = v }
  let exact b = if Int64.equal (Int64.logor b.kz b.ko) (-1L) then Some b.ko else None

  let contains b v =
    Int64.equal (Int64.logand v b.ko) b.ko && Int64.equal (Int64.logand v b.kz) 0L

  (* After Ints.trunc: bits >= w-1 are copies of bit w-1, known only if
     the (pre-truncation) sign bit of the width is known. *)
  let retrunc w (m : bits) =
    if w >= 64 then m
    else begin
      let sign = Int64.shift_left 1L (w - 1) in
      let high = Int64.shift_left Int64.minus_one (w - 1) in
      let low = Int64.lognot high in
      {
        kz =
          Int64.logor (Int64.logand m.kz low)
            (if Int64.logand m.kz sign <> 0L then high else 0L);
        ko =
          Int64.logor (Int64.logand m.ko low)
            (if Int64.logand m.ko sign <> 0L then high else 0L);
      }
    end

  let transfer get (op : Ir.op) =
    match int_result_width op with
    | None -> None
    | Some w -> (
      let v i = get op.Ir.operands.(i) in
      let r1 x = Some [ x ] in
      (* all-bits-known operands mirror the interpreter exactly *)
      let exact2 f =
        match (exact (v 0), exact (v 1)) with
        | Some a, Some b -> (
          try Some (exactly (f w a b)) with Failure _ -> Some top_bits)
        | _ -> None
      in
      let with_exact f fallback =
        r1 (match exact2 f with Some e -> e | None -> fallback ())
      in
      let shift_amount () =
        match exact (v 1) with
        | Some s when s >= 0L && s < 64L -> Some (Int64.to_int s)
        | _ -> None
      in
      match op.Ir.op_name with
      | "arith.constant" -> (
        match Ir.attr op "value" with
        | Some (Attr.Int (c, _)) -> r1 (exactly c)
        | _ -> None)
      | "arith.andi" ->
        with_exact Ints.andi (fun () ->
            let a = v 0 and b = v 1 in
            { kz = Int64.logor a.kz b.kz; ko = Int64.logand a.ko b.ko })
      | "arith.ori" ->
        with_exact Ints.ori (fun () ->
            let a = v 0 and b = v 1 in
            { kz = Int64.logand a.kz b.kz; ko = Int64.logor a.ko b.ko })
      | "arith.xori" ->
        with_exact Ints.xori (fun () ->
            let a = v 0 and b = v 1 in
            let both = Int64.logand (Int64.logor a.kz a.ko) (Int64.logor b.kz b.ko) in
            let x = Int64.logxor a.ko b.ko in
            retrunc w
              {
                kz = Int64.logand both (Int64.lognot x);
                ko = Int64.logand both x;
              })
      | "arith.shli" ->
        with_exact Ints.shli (fun () ->
            match shift_amount () with
            | Some s ->
              let a = v 0 in
              retrunc w
                {
                  kz =
                    Int64.logor
                      (Int64.shift_left a.kz s)
                      (Int64.sub (Int64.shift_left 1L s) 1L);
                  ko = Int64.shift_left a.ko s;
                }
            | None -> top_bits)
      | "arith.shrsi" ->
        (* arithmetic shift replicates the (possibly known) sign bit of
           the masks themselves; Ints.shrsi does not truncate *)
        with_exact Ints.shrsi (fun () ->
            match shift_amount () with
            | Some s ->
              let a = v 0 in
              { kz = Int64.shift_right a.kz s; ko = Int64.shift_right a.ko s }
            | None -> top_bits)
      | "arith.shrui" when w = 64 ->
        with_exact Ints.shrui (fun () ->
            match shift_amount () with
            | Some s ->
              let a = v 0 in
              let high =
                if s = 0 then 0L else Int64.shift_left Int64.minus_one (64 - s)
              in
              {
                kz = Int64.logor (Int64.shift_right_logical a.kz s) high;
                ko = Int64.shift_right_logical a.ko s;
              }
            | None -> top_bits)
      | "arith.addi" -> with_exact Ints.add (fun () -> top_bits)
      | "arith.subi" -> with_exact Ints.sub (fun () -> top_bits)
      | "arith.muli" -> with_exact Ints.mul (fun () -> top_bits)
      | "arith.divsi" -> with_exact Ints.divsi (fun () -> top_bits)
      | "arith.remsi" -> with_exact Ints.remsi (fun () -> top_bits)
      | "arith.shrui" -> with_exact Ints.shrui (fun () -> top_bits)
      | "arith.minsi" -> with_exact Ints.minsi (fun () -> join (v 0) (v 1))
      | "arith.maxsi" -> with_exact Ints.maxsi (fun () -> join (v 0) (v 1))
      | "arith.cmpi" -> (
        match (attr_int op "predicate", exact (v 0), exact (v 1)) with
        | Some p, Some a, Some b -> (
          try
            let w0 = Typ.int_width op.Ir.operands.(0).Ir.v_type in
            r1 (exactly (if Ints.cmpi w0 (Int64.to_int p) a b then 1L else 0L))
          with _ -> r1 { kz = Int64.lognot 1L; ko = 0L })
        | _ -> r1 { kz = Int64.lognot 1L; ko = 0L })
      | "arith.select" -> (
        match exact (get op.Ir.operands.(0)) with
        | Some c when not (Int64.equal c 0L) -> r1 (v 1)
        | Some _ -> r1 (v 2)
        | None -> r1 (join (v 1) (v 2)))
      | "arith.index_cast" -> r1 (v 0)
      | _ -> None)

  let pp ppf b =
    match exact b with
    | Some v -> Fmt.pf ppf "%Ld" v
    | None ->
      if Int64.equal (Int64.logor b.kz b.ko) 0L then Fmt.string ppf "?"
      else begin
        Fmt.string ppf "...";
        for i = 15 downto 0 do
          let bit = Int64.shift_left 1L i in
          if Int64.logand b.ko bit <> 0L then Fmt.string ppf "1"
          else if Int64.logand b.kz bit <> 0L then Fmt.string ppf "0"
          else Fmt.string ppf "?"
        done
      end
end

module Bits = Make (Known_bits)

(* ------------------------------------------------------------------ *)
(* Constantness                                                        *)
(* ------------------------------------------------------------------ *)

module Constness = struct
  type cv = Cbot | Cint of int64 | Cfloat of float | Ctop
  type t = cv

  let name = "const"
  let top (_ : Typ.t) = Ctop

  (* floats compare by bits so NaN facts still join with themselves *)
  let equal a b =
    match (a, b) with
    | Cbot, Cbot | Ctop, Ctop -> true
    | Cint x, Cint y -> Int64.equal x y
    | Cfloat x, Cfloat y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | _ -> false

  let join a b =
    match (a, b) with
    | Cbot, x | x, Cbot -> x
    | _ -> if equal a b then a else Ctop

  let widen = join
  let induction ~lb:_ ~ub:_ ~step:_ = Ctop

  let int_binops =
    [
      ("arith.addi", Ints.add);
      ("arith.subi", Ints.sub);
      ("arith.muli", Ints.mul);
      ("arith.divsi", Ints.divsi);
      ("arith.divui", Ints.divui);
      ("arith.remsi", Ints.remsi);
      ("arith.remui", Ints.remui);
      ("arith.shli", Ints.shli);
      ("arith.shrsi", Ints.shrsi);
      ("arith.shrui", Ints.shrui);
      ("arith.andi", Ints.andi);
      ("arith.ori", Ints.ori);
      ("arith.xori", Ints.xori);
      ("arith.minsi", Ints.minsi);
      ("arith.maxsi", Ints.maxsi);
      ("arith.minui", Ints.minui);
      ("arith.maxui", Ints.maxui);
    ]

  let float_binops =
    [
      ("arith.addf", Float.add);
      ("arith.subf", Float.sub);
      ("arith.mulf", Float.mul);
      ("arith.divf", Float.div);
      ("arith.maximumf", Float.max);
      ("arith.minimumf", Float.min);
      ("math.powf", Float.pow);
    ]

  let float_unops =
    [
      ("arith.negf", fun x -> -.x);
      ("math.sqrt", Float.sqrt);
      ("math.rsqrt", fun x -> 1.0 /. Float.sqrt x);
      ("math.sin", Float.sin);
      ("math.cos", Float.cos);
      ("math.exp", Float.exp);
      ("math.log", Float.log);
      ("math.log2", fun x -> Float.log x /. Float.log 2.0);
      ("math.absf", Float.abs);
      ("math.tanh", Float.tanh);
    ]

  let transfer get (op : Ir.op) =
    if Array.length op.Ir.results <> 1 then None
    else begin
      let v i = get op.Ir.operands.(i) in
      let r1 x = Some [ x ] in
      let width () =
        match op.Ir.results.(0).Ir.v_type with
        | Typ.Integer w -> w
        | _ -> 64
      in
      match op.Ir.op_name with
      | "arith.constant" -> (
        match Ir.attr op "value" with
        | Some (Attr.Int (c, _)) -> r1 (Cint c)
        | Some (Attr.Float (f, _)) -> r1 (Cfloat f)
        | _ -> None)
      | "arith.cmpi" -> (
        match (attr_int op "predicate", v 0, v 1) with
        | Some p, Cint a, Cint b -> (
          try
            let w0 = Typ.int_width op.Ir.operands.(0).Ir.v_type in
            r1 (Cint (if Ints.cmpi w0 (Int64.to_int p) a b then 1L else 0L))
          with _ -> r1 Ctop)
        | _, Cbot, _ | _, _, Cbot -> r1 Cbot
        | _ -> r1 Ctop)
      | "arith.cmpf" -> (
        match (attr_int op "predicate", v 0, v 1) with
        | Some p, Cfloat a, Cfloat b -> (
          try r1 (Cint (if Ints.cmpf (Int64.to_int p) a b then 1L else 0L))
          with _ -> r1 Ctop)
        | _, Cbot, _ | _, _, Cbot -> r1 Cbot
        | _ -> r1 Ctop)
      | "arith.select" -> (
        match v 0 with
        | Cint c -> r1 (if Int64.equal c 0L then v 2 else v 1)
        | Cbot -> r1 Cbot
        | _ -> r1 (join (v 1) (v 2)))
      | "arith.index_cast" -> r1 (v 0)
      | "arith.sitofp" -> (
        match v 0 with
        | Cint c -> r1 (Cfloat (Int64.to_float c))
        | Cbot -> r1 Cbot
        | _ -> r1 Ctop)
      | "arith.fptosi" -> (
        match v 0 with
        | Cfloat f -> r1 (Cint (Int64.of_float f))
        | Cbot -> r1 Cbot
        | _ -> r1 Ctop)
      | "arith.truncf" | "arith.extf" -> (
        match v 0 with
        | Cfloat f ->
          let k =
            match op.Ir.results.(0).Ir.v_type with Typ.Float k -> k | _ -> Typ.F64
          in
          r1
            (Cfloat
               (if k = Typ.F32 then Int32.float_of_bits (Int32.bits_of_float f)
                else f))
        | Cbot -> r1 Cbot
        | _ -> r1 Ctop)
      | "math.fma" -> (
        match (v 0, v 1, v 2) with
        | Cfloat a, Cfloat b, Cfloat c -> r1 (Cfloat (Float.fma a b c))
        | Cbot, _, _ | _, Cbot, _ | _, _, Cbot -> r1 Cbot
        | _ -> r1 Ctop)
      | name -> (
        match List.assoc_opt name int_binops with
        | Some f -> (
          match (v 0, v 1) with
          | Cint a, Cint b -> (
            try r1 (Cint (f (width ()) a b)) with Failure _ -> r1 Ctop)
          | Cbot, _ | _, Cbot -> r1 Cbot
          | _ -> r1 Ctop)
        | None -> (
          match List.assoc_opt name float_binops with
          | Some f -> (
            match (v 0, v 1) with
            | Cfloat a, Cfloat b -> r1 (Cfloat (f a b))
            | Cbot, _ | _, Cbot -> r1 Cbot
            | _ -> r1 Ctop)
          | None -> (
            match List.assoc_opt name float_unops with
            | Some f -> (
              match v 0 with
              | Cfloat a -> r1 (Cfloat (f a))
              | Cbot -> r1 Cbot
              | _ -> r1 Ctop)
            | None -> None)))
    end

  let pp ppf = function
    | Cbot -> Fmt.string ppf "bot"
    | Cint v -> Fmt.pf ppf "%Ld" v
    | Cfloat f -> Fmt.pf ppf "%g" f
    | Ctop -> Fmt.string ppf "top"
end

module Constants = Make (Constness)

(* ------------------------------------------------------------------ *)
(* Tensor shapes                                                       *)
(* ------------------------------------------------------------------ *)

module Shape = struct
  type sh = Sbot | Scalar | Dims of int list | Any_shape
  type t = sh

  let name = "shape"

  let top (ty : Typ.t) =
    match Typ.shape ty with
    | Some dims -> Dims dims
    | None -> ( match ty with Typ.Unranked_tensor _ -> Any_shape | _ -> Scalar)

  let equal (a : sh) (b : sh) = a = b

  let join a b =
    match (a, b) with
    | Sbot, x | x, Sbot -> x
    | Scalar, Scalar -> Scalar
    | Dims da, Dims db ->
      if List.length da = List.length db then
        Dims (List.map2 (fun x y -> if x = y then x else -1) da db)
      else Any_shape
    | _ -> Any_shape

  let widen = join
  let induction ~lb:_ ~ub:_ ~step:_ = Scalar

  (* refine: prefer [a]'s known dimensions, fill its unknowns from [b] *)
  let meet a b =
    match (a, b) with
    | Dims da, Dims db when List.length da = List.length db ->
      Dims (List.map2 (fun x y -> if x >= 0 then x else y) da db)
    | Any_shape, x | x, Any_shape -> x
    | Sbot, _ | _, Sbot -> Sbot
    | x, _ -> x

  let compatible a b =
    match (a, b) with
    | Sbot, _ | _, Sbot -> true
    | Any_shape, _ | _, Any_shape -> true
    | Scalar, Scalar -> true
    | Dims da, Dims db ->
      List.length da = List.length db
      && List.for_all2 (fun x y -> x < 0 || y < 0 || x = y) da db
    | Scalar, Dims _ | Dims _, Scalar -> false

  let dim sh i =
    match sh with
    | Dims ds -> ( match List.nth_opt ds i with Some d -> d | None -> -1)
    | _ -> -1

  let transfer get (op : Ir.op) =
    if Array.length op.Ir.results <> 1 then None
    else begin
      let res_top = top op.Ir.results.(0).Ir.v_type in
      let v i = get op.Ir.operands.(i) in
      let r1 x = Some [ x ] in
      match op.Ir.op_name with
      | "linalg.matmul" ->
        (* (m x k) @ (k x n) accumulated into out: result is m x n *)
        r1 (meet (Dims [ dim (v 0) 0; dim (v 1) 1 ]) (meet (v 2) res_top))
      | "linalg.add" -> r1 (meet (v 0) (meet (v 1) (meet (v 2) res_top)))
      | "linalg.fill" -> r1 (meet (v 1) res_top)
      | "tensor.insert" -> r1 (meet (v 1) res_top)
      | _ -> None
    end

  let pp ppf = function
    | Sbot -> Fmt.string ppf "bot"
    | Scalar -> Fmt.string ppf "scalar"
    | Any_shape -> Fmt.string ppf "?"
    | Dims ds ->
      Fmt.list ~sep:(Fmt.any "x")
        (fun ppf d -> if d < 0 then Fmt.string ppf "?" else Fmt.int ppf d)
        ppf ds
end

module Shapes = Make (Shape)

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Run a domain's transfer function over detached operations built from
   rewrite patterns rather than a real function body ([Dialegg.Vet]'s
   static soundness pass).  A value whose type is {!placeholder} stands
   for "a value of completely unknown type": its fact is {!unknown}, the
   join of the tops of every type family the domains distinguish. *)
module Symbolic (L : LATTICE) = struct
  let unknown =
    List.fold_left L.join (L.top Typ.i64)
      [ L.top Typ.f64; L.top Typ.index; L.top (Typ.Unranked_tensor Typ.f64) ]

  let placeholder = Typ.Opaque ("!sym.any", "sym")
  let is_placeholder ty = Typ.equal ty placeholder
  let top_of ty = if is_placeholder ty then unknown else L.top ty

  let eval ~get (op : Ir.op) : L.t list =
    let fallback (r : Ir.value) = top_of r.Ir.v_type in
    (* like the solver, a malformed op must be unhandled, not a crash *)
    match (try L.transfer get op with _ -> None) with
    | Some fs when List.length fs = Array.length op.Ir.results -> fs
    | _ -> List.map fallback (Array.to_list op.Ir.results)
end

(* ------------------------------------------------------------------ *)
(* Def-use and dead code                                               *)
(* ------------------------------------------------------------------ *)

module Defuse = struct
  type t = (int, (Ir.op * int) list) Hashtbl.t

  let of_op (root : Ir.op) : t =
    let tbl = Hashtbl.create 128 in
    Ir.walk_op
      (fun o ->
        Array.iteri
          (fun i (v : Ir.value) ->
            Hashtbl.replace tbl v.Ir.v_id
              ((o, i) :: Option.value ~default:[] (Hashtbl.find_opt tbl v.Ir.v_id)))
          o.Ir.operands)
      root;
    tbl

  let uses (t : t) (v : Ir.value) =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt t v.Ir.v_id))

  let n_uses t v = List.length (uses t v)
  let is_dead t v = uses t v = []

  (* What {!Transforms.dce} would erase, without mutating the IR: pure ops
     with results, all transitively unused.  Candidates are only collected
     outside the regions of unregistered ops, like the real DCE. *)
  let dead_ops (root : Ir.op) : Ir.op list =
    Registry.ensure_registered ();
    let erased = Hashtbl.create 32 in
    let rec walk_known f (op : Ir.op) =
      f op;
      if Dialect.is_registered op.Ir.op_name then
        List.iter
          (fun (r : Ir.region) ->
            List.iter
              (fun (b : Ir.block) -> List.iter (walk_known f) b.Ir.blk_ops)
              r.Ir.blocks)
          op.Ir.regions
    in
    let changed = ref true in
    while !changed do
      changed := false;
      let uses = Hashtbl.create 256 in
      Ir.walk_op
        (fun o ->
          if not (Hashtbl.mem erased o.Ir.op_id) then
            Array.iter
              (fun (v : Ir.value) -> Hashtbl.replace uses v.Ir.v_id ())
              o.Ir.operands)
        root;
      walk_known
        (fun o ->
          if
            (not (Hashtbl.mem erased o.Ir.op_id))
            && Dialect.is_pure o
            && Array.length o.Ir.results > 0
            && Array.for_all
                 (fun (r : Ir.value) -> not (Hashtbl.mem uses r.Ir.v_id))
                 o.Ir.results
          then begin
            Hashtbl.replace erased o.Ir.op_id o;
            changed := true
          end)
        root
    done;
    (* report in program order *)
    let out = ref [] in
    Ir.walk_op
      (fun o -> if Hashtbl.mem erased o.Ir.op_id then out := o :: !out)
      root;
    List.rev !out
end

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

module Report = struct
  (* SSA-ish display names: entry arguments are %argN, op results are
     numbered in a pre-order walk like the printer does *)
  let namer (func : Ir.op) =
    let names = Hashtbl.create 64 in
    (match func.Ir.regions with
    | r :: _ ->
      Array.iteri
        (fun i (a : Ir.value) -> Hashtbl.replace names a.Ir.v_id (Fmt.str "%%arg%d" i))
        (Ir.entry_block r).Ir.blk_args
    | [] -> ());
    let ctr = ref 0 in
    Ir.walk_op
      (fun o ->
        List.iter
          (fun (r : Ir.region) ->
            List.iter
              (fun (b : Ir.block) ->
                Array.iter
                  (fun (a : Ir.value) ->
                    if not (Hashtbl.mem names a.Ir.v_id) then begin
                      Hashtbl.replace names a.Ir.v_id (Fmt.str "%%b%d" !ctr);
                      incr ctr
                    end)
                  b.Ir.blk_args)
              r.Ir.blocks)
          o.Ir.regions;
        Array.iter
          (fun (v : Ir.value) ->
            Hashtbl.replace names v.Ir.v_id (Fmt.str "%%%d" !ctr);
            incr ctr)
          o.Ir.results)
      func;
    fun (v : Ir.value) ->
      Option.value ~default:"%?" (Hashtbl.find_opt names v.Ir.v_id)

  let return_op (func : Ir.op) =
    match func.Ir.regions with
    | r :: _ -> (
      match Ir.terminator (Ir.entry_block r) with
      | Some t when t.Ir.op_name = "func.return" -> Some t
      | _ -> None)
    | [] -> None

  let pp_func ppf (func : Ir.op) =
    let itv = Intervals.analyze func in
    let kb = Bits.analyze func in
    let cn = Constants.analyze func in
    let sh = Shapes.analyze func in
    let du = Defuse.of_op func in
    let name = namer func in
    let interesting_bits b = Known_bits.(not (equal b top_bits)) in
    let pp_value ppf (v : Ir.value) =
      Fmt.pf ppf "    %s : %a  interval=%a" (name v) Typ.pp v.Ir.v_type
        Interval.pp (Intervals.fact itv v);
      (match Constants.fact cn v with
      | Constness.Ctop | Constness.Cbot -> ()
      | c -> Fmt.pf ppf "  const=%a" Constness.pp c);
      let b = Bits.fact kb v in
      if interesting_bits b then Fmt.pf ppf "  bits=%a" Known_bits.pp b;
      (match Shapes.fact sh v with
      | Shape.Scalar -> ()
      | s -> Fmt.pf ppf "  shape=%a" Shape.pp s);
      Fmt.pf ppf "  uses=%d@\n" (Defuse.n_uses du v)
    in
    Fmt.pf ppf "func @%s@\n"
      (try Ir.func_name func with Invalid_argument _ -> "?");
    (match func.Ir.regions with
    | r :: _ ->
      Array.iter (pp_value ppf) (Ir.entry_block r).Ir.blk_args
    | [] -> ());
    Ir.walk_op
      (fun o ->
        if o.Ir.op_id <> func.Ir.op_id && Array.length o.Ir.results > 0 then begin
          Fmt.pf ppf "  %s (%a)@\n"
            o.Ir.op_name
            Fmt.(array ~sep:(any ", ") (fun ppf v -> Fmt.string ppf (name v)))
            o.Ir.operands;
          Array.iter (pp_value ppf) o.Ir.results
        end)
      func;
    (match return_op func with
    | Some t ->
      Fmt.pf ppf "  return %a@\n"
        Fmt.(array ~sep:(any ", ") (fun ppf v ->
            Fmt.pf ppf "%s interval=%a" (name v) Interval.pp (Intervals.fact itv v)))
        t.Ir.operands
    | None -> ());
    match Defuse.dead_ops func with
    | [] -> Fmt.pf ppf "  dead ops: none@\n"
    | dead ->
      Fmt.pf ppf "  dead ops: %a@\n"
        Fmt.(list ~sep:(any ", ") (fun ppf (o : Ir.op) -> Fmt.string ppf o.Ir.op_name))
        dead

  let pp_module ppf (m : Ir.op) =
    List.iter
      (fun (o : Ir.op) -> if o.Ir.op_name = "func.func" then pp_func ppf o)
      (Ir.module_ops m)
end
