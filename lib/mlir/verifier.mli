(** IR verification: SSA dominance, arity checks and per-op verifiers.

    Within a block, every operand must be defined by an earlier op in the
    same block, a block argument of an enclosing block, or an op in an
    enclosing scope preceding the region-holding ancestor.

    Errors are located [Egglog.Diag.t] values: code ["verify-dominance"] /
    ["verify-operands"] / ["verify-results"] / ["verify-regions"] /
    ["verify-terminator"] / ["verify-op"], message prefixed with the path
    of the offending op (e.g. ["func.func(@main)/scf.for/arith.addi"]). *)

(** Verify a module or any op; returns all errors found. *)
val verify : Ir.op -> Egglog.Diag.t list

(** @raise Failure with a readable message on any error. *)
val verify_exn : Ir.op -> unit
