(** Lattice-parameterized forward dataflow over mini-MLIR (paper §9).

    A {!LATTICE} packages an abstract domain: a per-type top element, join
    / widening, and a transfer function for individual operations.  The
    functor {!Make} turns it into a forward fixpoint solver over a
    function body: facts flow op-to-op through straight-line code,
    [scf.if] joins the facts yielded by its branches, and [scf.for] /
    [scf.while] iterate their loop-carried facts to a (widened) fixpoint.

    Four domains ship with the framework — {!Interval}, {!Known_bits},
    {!Constness} and {!Shape} — plus the def-use / dead-code report in
    {!Defuse}.  The translation validator ([Dialegg.Validate]) compares
    {!Intervals} and {!Shapes} facts before and after a saturation
    round-trip. *)

(** An abstract domain.  Soundness contract: for every concrete execution
    (as defined by {!Interp}), the concrete value of each SSA value is
    described by the fact the solver computes for it. *)
module type LATTICE = sig
  type t

  val name : string

  (** Weakest fact for a value of the given type.  Must describe every
      concrete value of that type. *)
  val top : Typ.t -> t

  val equal : t -> t -> bool

  (** Least upper bound (or any sound upper bound). *)
  val join : t -> t -> t

  (** [widen old next] accelerates convergence on loop-carried facts; must
      be an upper bound of both and eventually stabilize. *)
  val widen : t -> t -> t

  (** Fact for an [scf.for] induction variable given facts for the lower
      bound, upper bound and step (all of [index] type). *)
  val induction : lb:t -> ub:t -> step:t -> t

  (** [transfer get op] returns one fact per result of [op], reading
      operand facts with [get].  [None] means the op is not handled: the
      solver uses {!top} for each result.  Must be sound w.r.t.
      {!Interp}'s semantics for the op. *)
  val transfer : (Ir.value -> t) -> Ir.op -> t list option

  val pp : Format.formatter -> t -> unit
end

(** A solved analysis: a table of facts for every SSA value in a
    function. *)
module type ANALYSIS = sig
  type elt
  type facts

  (** [analyze func] runs the forward fixpoint over a [func.func] op (or
      any single-region op).  [init] overrides the initial fact for entry
      block arguments (default {!LATTICE.top} of the argument type). *)
  val analyze : ?init:(Ir.value -> elt option) -> Ir.op -> facts

  (** Fact for a value; {!LATTICE.top} of its type if the solver never
      reached it. *)
  val fact : facts -> Ir.value -> elt

  (** Facts for the operands of the function's [func.return] (empty if
      the body has no return terminator). *)
  val return_facts : facts -> Ir.op -> elt list
end

module Make (L : LATTICE) : ANALYSIS with type elt = L.t

(* ------------------------------------------------------------------ *)
(* Shipped domains                                                     *)
(* ------------------------------------------------------------------ *)

(** Signed integer intervals [\[lo, hi\]] over the sign-extended [int64]
    representation used by {!Interp} (the OCaml-side generalization of
    [examples/interval_analysis.ml]'s Egglog [lo]/[hi] tables). *)
module Interval : sig
  type itv =
    | Bot  (** unreachable / no concrete value *)
    | Range of int64 * int64  (** inclusive bounds, [lo <= hi] *)

  include LATTICE with type t = itv

  val of_const : int64 -> itv

  (** [Some v] iff the interval is the singleton [\[v, v\]]. *)
  val exact : itv -> int64 option

  val contains : itv -> int64 -> bool

  (** [subset a b]: every concrete value admitted by [a] is admitted by
      [b] (the refinement order used by the translation validator). *)
  val subset : itv -> itv -> bool
end

module Intervals : ANALYSIS with type elt = Interval.t

(** Known-bits: [kz] masks bits known to be zero, [ko] bits known to be
    one (over the sign-extended [int64] representation).  Top is both
    masks empty. *)
module Known_bits : sig
  type bits = { kz : int64; ko : int64 }

  include LATTICE with type t = bits

  val contains : bits -> int64 -> bool

  (** [Some v] iff all 64 bits are known. *)
  val exact : bits -> int64 option
end

module Bits : ANALYSIS with type elt = Known_bits.t

(** Constant propagation mirroring {!Interp} exactly on the ops it
    models. *)
module Constness : sig
  type cv = Cbot | Cint of int64 | Cfloat of float | Ctop

  include LATTICE with type t = cv
end

module Constants : ANALYSIS with type elt = Constness.t

(** Tensor/memref shape inference.  [Dims] entries use [-1] for an
    unknown (dynamic) dimension, mirroring {!Typ.Ranked_tensor}. *)
module Shape : sig
  type sh =
    | Sbot
    | Scalar  (** not a shaped type *)
    | Dims of int list
    | Any_shape  (** shaped, rank unknown *)

  include LATTICE with type t = sh

  (** [compatible a b]: no contradiction between the known dimensions —
      the relation the translation validator enforces between input and
      output result shapes. *)
  val compatible : sh -> sh -> bool
end

module Shapes : ANALYSIS with type elt = Shape.t

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(** Run a domain's transfer function over symbolic (detached) operations
    — the building block of [Dialegg.Vet]'s static rule-soundness pass,
    which evaluates rewrite patterns instead of function bodies.  The
    caller builds ops with {!Ir.create_op}, registers facts for operand
    values, and reads results through {!eval}. *)
module Symbolic (L : LATTICE) : sig
  (** Weakest fact across every type family the domains distinguish
      (integer, float, index, shaped): the fact of a pattern variable
      standing for an arbitrary value of unknown type. *)
  val unknown : L.t

  (** The type given to symbolic values whose type the pattern does not
      pin down.  {!LATTICE.top} of this type is meaningless, so
      {!eval}'s fallback and {!top_of} use {!unknown} for it instead. *)
  val placeholder : Typ.t

  val is_placeholder : Typ.t -> bool

  (** [top_of ty]: [L.top ty], or {!unknown} for the placeholder. *)
  val top_of : Typ.t -> L.t

  (** [eval ~get op]: one fact per result — [L.transfer] when the op is
      handled, {!top_of} of each result type otherwise.  Never raises. *)
  val eval : get:(Ir.value -> L.t) -> Ir.op -> L.t list
end

(* ------------------------------------------------------------------ *)
(* Def-use and liveness                                                *)
(* ------------------------------------------------------------------ *)

module Defuse : sig
  type t

  (** Build the def-use table for all ops nested under [op]. *)
  val of_op : Ir.op -> t

  (** All uses of a value as [(user op, operand index)] pairs. *)
  val uses : t -> Ir.value -> (Ir.op * int) list

  val n_uses : t -> Ir.value -> int
  val is_dead : t -> Ir.value -> bool

  (** Pure ops whose results are all transitively unused — what
      {!Transforms.dce} would erase, computed without mutating the IR. *)
  val dead_ops : Ir.op -> Ir.op list
end

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** Human-readable per-value fact dump ([dialegg-opt --analyze]): runs all
    four analyses plus {!Defuse} over each function. *)
module Report : sig
  (** The [func.return] terminator of a function body, if any. *)
  val return_op : Ir.op -> Ir.op option

  val pp_func : Format.formatter -> Ir.op -> unit
  val pp_module : Format.formatter -> Ir.op -> unit
end
