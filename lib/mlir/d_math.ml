(** The [math] dialect: transcendental and other math functions. *)

open Ir

let fm_attr fm = ("fastmath", Attr.Fastmath fm)

let unary name ?(fm = Attr.Fm_none) blk a =
  let op = create_op name ~operands:[ a ] ~attrs:[ fm_attr fm ] ~result_types:[ a.v_type ] in
  append_op blk op;
  result1 op

let binary name ?(fm = Attr.Fm_none) blk a b =
  let op =
    create_op name ~operands:[ a; b ] ~attrs:[ fm_attr fm ] ~result_types:[ a.v_type ]
  in
  append_op blk op;
  result1 op

let sqrt ?fm blk a = unary "math.sqrt" ?fm blk a
let rsqrt ?fm blk a = unary "math.rsqrt" ?fm blk a
let sin ?fm blk a = unary "math.sin" ?fm blk a
let cos ?fm blk a = unary "math.cos" ?fm blk a
let exp ?fm blk a = unary "math.exp" ?fm blk a
let log ?fm blk a = unary "math.log" ?fm blk a
let log2 ?fm blk a = unary "math.log2" ?fm blk a
let absf ?fm blk a = unary "math.absf" ?fm blk a
let tanh ?fm blk a = unary "math.tanh" ?fm blk a
let powf ?fm blk a b = binary "math.powf" ?fm blk a b

let fma ?(fm = Attr.Fm_none) blk a b c =
  let op =
    create_op "math.fma" ~operands:[ a; b; c ] ~attrs:[ fm_attr fm ]
      ~result_types:[ a.v_type ]
  in
  append_op blk op;
  result1 op

let float_of_attr = function Some (Attr.Float (v, _)) -> Some v | _ -> None

let fold_unary f (op : Ir.op) (consts : Attr.t option array) =
  match float_of_attr consts.(0) with
  | Some a -> Dialect.Fold_to_attr (Attr.Float (f a, op.results.(0).v_type))
  | None -> Dialect.No_fold

let register () =
  let open Dialect in
  let unary_def name f =
    def name ~n_operands:1 ~n_results:1 ~result_class:[ Float_like ]
      ~traits:[ Pure ] ~fold:(fold_unary f)
  in
  unary_def "math.sqrt" Float.sqrt;
  unary_def "math.rsqrt" (fun x -> 1.0 /. Float.sqrt x);
  unary_def "math.sin" Float.sin;
  unary_def "math.cos" Float.cos;
  unary_def "math.exp" Float.exp;
  unary_def "math.log" Float.log;
  unary_def "math.log2" (fun x -> Float.log x /. Float.log 2.0);
  unary_def "math.absf" Float.abs;
  unary_def "math.tanh" Float.tanh;
  def "math.powf" ~n_operands:2 ~n_results:1 ~result_class:[ Float_like ]
    ~traits:[ Pure ] ~fold:(fun op consts ->
      match (float_of_attr consts.(0), float_of_attr consts.(1)) with
      | Some a, Some b -> Fold_to_attr (Attr.Float (Float.pow a b, op.Ir.results.(0).v_type))
      | _ -> No_fold);
  def "math.fma" ~n_operands:3 ~n_results:1 ~result_class:[ Float_like ]
    ~traits:[ Pure ]
