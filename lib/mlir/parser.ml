(** Parser for the MLIR textual format (the subset this project prints).

    Accepts the pretty forms of the registered dialects plus the generic
    form ["name"(%operands) ({regions}) {attrs} : (tys) -> tys], so any
    output of {!Printer} round-trips.  SSA values must be defined before
    use; functions are independent naming scopes. *)

exception Error of string

exception Syntax_error of { line : int; col : int; msg : string }

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* 1-based line/column of byte offset [pos] in [src] *)
let line_col src pos =
  let pos = min pos (String.length src) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

type state = {
  c : Typ.cursor;
  values : (string, Ir.value) Hashtbl.t;  (** in-scope SSA names, per function *)
  depth : int ref;  (** current region/attribute nesting, shared across scopes *)
}

(* A recursive-descent parser's stack is proportional to the input's
   nesting, so an adversarial (or corrupted) input of ~100k open braces
   dies with an unlocatable [Stack_overflow] long before any semantic
   check runs.  Bound the recursion explicitly instead, far above any
   legitimate module and far below stack exhaustion, and report it like
   every other syntax error. *)
let max_depth = 1000

let enter_nested st =
  incr st.depth;
  if !(st.depth) > max_depth then
    error "nesting depth exceeds the parser's limit (%d)" max_depth

let exit_nested st = decr st.depth

(* ------------------------------------------------------------------ *)
(* Lexical helpers                                                     *)
(* ------------------------------------------------------------------ *)

let skip_ws st =
  let c = st.c in
  let rec go () =
    (match Typ.peek_char c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      go ()
    | Some '/'
      when c.pos + 1 < String.length c.src && c.src.[c.pos + 1] = '/' ->
      while Typ.peek_char c <> Some '\n' && Typ.peek_char c <> None do
        c.pos <- c.pos + 1
      done;
      go ()
    | _ -> ())
  in
  go ()

let peek st =
  skip_ws st;
  Typ.peek_char st.c

let looking_at st s =
  skip_ws st;
  let c = st.c in
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let eat st s =
  skip_ws st;
  Typ.eat_string st.c s

let expect st s =
  skip_ws st;
  if not (Typ.eat_string st.c s) then begin
    let ctx_start = max 0 (st.c.pos - 20) in
    let ctx_len = min 40 (String.length st.c.src - ctx_start) in
    error "expected %S near ...%s..." s (String.sub st.c.src ctx_start ctx_len)
  end

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
  | _ -> false

let read_ident st =
  skip_ws st;
  let c = st.c in
  let start = c.pos in
  while (match Typ.peek_char c with Some ch -> is_ident_char ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error "expected an identifier at position %d" start;
  String.sub c.src start (c.pos - start)

(** Peek the next identifier without consuming. *)
let peek_ident st =
  skip_ws st;
  let save = st.c.pos in
  let id = try Some (read_ident st) with Error _ -> None in
  st.c.pos <- save;
  id

let read_string_lit st =
  expect st "\"";
  let c = st.c in
  let buf = Buffer.create 16 in
  let rec go () =
    match Typ.peek_char c with
    | None -> error "unterminated string literal"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match Typ.peek_char c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | _ -> error "bad escape in string literal");
      c.pos <- c.pos + 1;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

(** Read a numeric literal; returns [`Int] or [`Float]. *)
let read_number st =
  skip_ws st;
  let c = st.c in
  let start = c.pos in
  if Typ.peek_char c = Some '-' then c.pos <- c.pos + 1;
  let is_float = ref false in
  let rec go () =
    match Typ.peek_char c with
    | Some ('0' .. '9') ->
      c.pos <- c.pos + 1;
      go ()
    | Some '.' ->
      is_float := true;
      c.pos <- c.pos + 1;
      go ()
    | Some ('e' | 'E') ->
      is_float := true;
      c.pos <- c.pos + 1;
      if Typ.peek_char c = Some '-' || Typ.peek_char c = Some '+' then c.pos <- c.pos + 1;
      go ()
    | _ -> ()
  in
  go ();
  if c.pos = start then error "expected a number";
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then `Float (float_of_string s) else `Int (Int64.of_string s)

let read_type st =
  skip_ws st;
  try Typ.read_type st.c with Typ.Parse_error msg -> error "type error: %s" msg

(* ------------------------------------------------------------------ *)
(* SSA values                                                          *)
(* ------------------------------------------------------------------ *)

let read_value_name st =
  expect st "%";
  let c = st.c in
  let start = c.pos in
  while (match Typ.peek_char c with
        | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> true
        | _ -> false)
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error "expected a value name after %%";
  String.sub c.src start (c.pos - start)

let lookup_value st name =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None -> error "use of undefined value %%%s" name

let read_value st = lookup_value st (read_value_name st)

let bind st name (v : Ir.value) =
  if Hashtbl.mem st.values name then error "redefinition of %%%s" name;
  Hashtbl.replace st.values name v

(** Run [f] in a nested value scope: names bound inside are dropped on exit
    (MLIR region scoping; sibling regions may reuse names). *)
let in_scope st f =
  let saved = Hashtbl.copy st.values in
  let restore () =
    Hashtbl.reset st.values;
    Hashtbl.iter (fun k v -> Hashtbl.replace st.values k v) saved
  in
  match f () with
  | r ->
    restore ();
    r
  | exception e ->
    restore ();
    raise e

let read_value_list st =
  let rec go acc =
    let v = read_value st in
    if eat st "," then go (v :: acc) else List.rev (v :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

let rec read_attr st : Attr.t =
  skip_ws st;
  match peek st with
  | Some '"' -> Attr.String (read_string_lit st)
  | Some '@' ->
    expect st "@";
    Attr.Symbol_ref (read_ident st)
  | Some '[' ->
    expect st "[";
    enter_nested st;
    let rec items acc =
      if eat st "]" then List.rev acc
      else begin
        let a = read_attr st in
        ignore (eat st ",");
        items (a :: acc)
      end
    in
    let elems = items [] in
    exit_nested st;
    Attr.Array elems
  | Some '#' ->
    expect st "#";
    let name = read_ident st in
    if name = "arith.fastmath" then begin
      expect st "<";
      let flags = read_ident st in
      expect st ">";
      match flags with
      | "none" -> Attr.Fastmath Attr.Fm_none
      | "fast" -> Attr.Fastmath Attr.Fm_fast
      | fs -> Attr.Fastmath (Attr.Fm_flags (String.split_on_char ',' fs))
    end
    else Attr.Opaque ("#" ^ name, name)
  | Some '(' ->
    (* a function type attribute *)
    Attr.Type (read_type st)
  | Some ('0' .. '9' | '-') -> (
    let n = read_number st in
    let ty = if eat st ":" then Some (read_type st) else None in
    match (n, ty) with
    | `Int v, Some ((Typ.Float _) as t) -> Attr.Float (Int64.to_float v, t)
    | `Int v, Some t -> Attr.Int (v, t)
    | `Int v, None -> Attr.Int (v, Typ.i64)
    | `Float v, Some t -> Attr.Float (v, t)
    | `Float v, None -> Attr.Float (v, Typ.f64))
  | _ -> (
    match peek_ident st with
    | Some "true" ->
      ignore (read_ident st);
      Attr.Bool true
    | Some "false" ->
      ignore (read_ident st);
      Attr.Bool false
    | Some "unit" ->
      ignore (read_ident st);
      Attr.Unit
    | Some "dense" -> error "dense attributes are not supported by this parser"
    | _ -> Attr.Type (read_type st))

(** Read [{name = attr, flag, ...}] if present. *)
let read_attr_dict st : Attr.named list =
  if not (eat st "{") then []
  else begin
    let rec items acc =
      if eat st "}" then List.rev acc
      else begin
        let name =
          if peek st = Some '"' then read_string_lit st else read_ident st
        in
        let a = if eat st "=" then read_attr st else Attr.Unit in
        ignore (eat st ",");
        items ((name, a) :: acc)
      end
    in
    items []
  end

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let fastmath_opt st =
  if eat st "fastmath<" then begin
    let flags = read_ident st in
    expect st ">";
    match flags with
    | "none" -> Attr.Fm_none
    | "fast" -> Attr.Fm_fast
    | fs -> Attr.Fm_flags (String.split_on_char ',' fs)
  end
  else Attr.Fm_none

let finish_op st blk results (op : Ir.op) =
  Ir.append_op blk op;
  List.iteri
    (fun i name ->
      if i >= Array.length op.Ir.results then
        error "op %s produces %d results but %d names given" op.Ir.op_name
          (Array.length op.Ir.results) (List.length results);
      bind st name op.Ir.results.(i))
    results;
  op

(** Parse ops until the closing brace of the current block. *)
let rec parse_block_body st (blk : Ir.block) =
  enter_nested st;
  let rec go () =
    skip_ws st;
    if looking_at st "}" then ()
    else begin
      ignore (parse_op st blk);
      go ()
    end
  in
  go ();
  exit_nested st

and parse_op st (blk : Ir.block) : Ir.op =
  (* optional result list *)
  skip_ws st;
  let results =
    if peek st = Some '%' then begin
      let rec names acc =
        let n = read_value_name st in
        if eat st "," then names (n :: acc) else List.rev (n :: acc)
      in
      let ns = names [] in
      expect st "=";
      ns
    end
    else []
  in
  if peek st = Some '"' then parse_generic_op st blk results
  else begin
    let name = read_ident st in
    parse_pretty_op st blk results name
  end

and parse_generic_op st blk results : Ir.op =
  let name = read_string_lit st in
  expect st "(";
  let operands =
    if eat st ")" then []
    else begin
      let vs = read_value_list st in
      expect st ")";
      vs
    end
  in
  (* optional regions *)
  let regions =
    if eat st "(" && true then begin
      (* could be regions "({" or the signature "(tys) ->"; disambiguate *)
      if looking_at st "{" then begin
        let rec regs acc =
          let r = parse_region st in
          if eat st "," then regs (r :: acc)
          else begin
            expect st ")";
            List.rev (r :: acc)
          end
        in
        regs []
      end
      else begin
        (* it was the signature's open paren; rewind one char *)
        st.c.pos <- st.c.pos - 1;
        []
      end
    end
    else []
  in
  let attrs = read_attr_dict st in
  expect st ":";
  expect st "(";
  let _arg_tys =
    if eat st ")" then []
    else begin
      let rec tys acc =
        let t = read_type st in
        if eat st "," then tys (t :: acc)
        else begin
          expect st ")";
          List.rev (t :: acc)
        end
      in
      tys []
    end
  in
  expect st "->";
  let result_types = parse_result_types st in
  let op = Ir.create_op name ~operands ~result_types ~attrs ~regions in
  finish_op st blk results op

and parse_result_types st : Typ.t list =
  skip_ws st;
  if eat st "(" then begin
    if eat st ")" then []
    else begin
      let rec tys acc =
        let t = read_type st in
        if eat st "," then tys (t :: acc)
        else begin
          expect st ")";
          List.rev (t :: acc)
        end
      in
      tys []
    end
  end
  else [ read_type st ]

and parse_region st : Ir.region =
  expect st "{";
  let blk =
    in_scope st (fun () ->
        (* optional block header ^bb(%x: t, ...): *)
        let blk =
          if looking_at st "^" then begin
            expect st "^";
            ignore (read_ident st);
            expect st "(";
            let args = ref [] in
            (if not (eat st ")") then
               let rec go () =
                 let n = read_value_name st in
                 expect st ":";
                 let t = read_type st in
                 args := (n, t) :: !args;
                 if eat st "," then go () else expect st ")"
               in
               go ());
            expect st ":";
            let args = List.rev !args in
            let blk = Ir.create_block ~arg_types:(List.map snd args) () in
            List.iteri (fun i (n, _) -> bind st n blk.Ir.blk_args.(i)) args;
            blk
          end
          else Ir.create_block ()
        in
        parse_block_body st blk;
        blk)
  in
  expect st "}";
  Ir.create_region [ blk ]

and parse_pretty_op st blk results name : Ir.op =
  let binary ?(float_fm = false) () =
    let a = read_value st in
    expect st ",";
    let b = read_value st in
    let attrs = if float_fm then [ ("fastmath", Attr.Fastmath (fastmath_opt st)) ] else [] in
    expect st ":";
    let t = read_type st in
    Ir.create_op name ~operands:[ a; b ] ~attrs ~result_types:[ t ]
  in
  match name with
  | "func.func" -> parse_func st blk results
  | "module" -> error "nested modules are not supported"
  | "arith.constant" -> (
    let n = read_number st in
    expect st ":";
    let t = read_type st in
    let attr =
      match (n, t) with
      | `Int v, Typ.Float _ -> Attr.Float (Int64.to_float v, t)
      | `Int v, _ -> Attr.Int (v, t)
      | `Float v, _ -> Attr.Float (v, t)
    in
    finish_op st blk results
      (Ir.create_op "arith.constant" ~attrs:[ ("value", attr) ] ~result_types:[ t ]))
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.divui"
  | "arith.remsi" | "arith.remui" | "arith.shli" | "arith.shrsi" | "arith.shrui"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.minsi" | "arith.maxsi"
  | "arith.minui" | "arith.maxui" ->
    finish_op st blk results (binary ())
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maximumf"
  | "arith.minimumf" ->
    finish_op st blk results (binary ~float_fm:true ())
  | "arith.negf" ->
    let a = read_value st in
    let fm = fastmath_opt st in
    expect st ":";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op "arith.negf" ~operands:[ a ]
         ~attrs:[ ("fastmath", Attr.Fastmath fm) ]
         ~result_types:[ t ])
  | "arith.cmpi" | "arith.cmpf" ->
    let pred = read_ident st in
    expect st ",";
    let a = read_value st in
    expect st ",";
    let b = read_value st in
    let fm = if name = "arith.cmpf" then Some (fastmath_opt st) else None in
    expect st ":";
    let _t = read_type st in
    let p =
      match
        if name = "arith.cmpi" then Attr.cmpi_predicate_of_string pred
        else Attr.cmpf_predicate_of_string pred
      with
      | Some p -> p
      | None -> error "unknown predicate %s" pred
    in
    let attrs = [ ("predicate", Attr.Int (Int64.of_int p, Typ.i64)) ] in
    let attrs =
      match fm with
      | Some fm -> ("fastmath", Attr.Fastmath fm) :: attrs
      | None -> attrs
    in
    finish_op st blk results
      (Ir.create_op name ~operands:[ a; b ] ~attrs ~result_types:[ Typ.i1 ])
  | "arith.select" ->
    let c = read_value st in
    expect st ",";
    let a = read_value st in
    expect st ",";
    let b = read_value st in
    expect st ":";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op "arith.select" ~operands:[ c; a; b ] ~result_types:[ t ])
  | "arith.index_cast" | "arith.sitofp" | "arith.fptosi" | "arith.truncf"
  | "arith.extf" | "arith.bitcast" ->
    let a = read_value st in
    expect st ":";
    let _from = read_type st in
    expect st "to";
    let to_ = read_type st in
    finish_op st blk results (Ir.create_op name ~operands:[ a ] ~result_types:[ to_ ])
  | "math.sqrt" | "math.rsqrt" | "math.sin" | "math.cos" | "math.exp" | "math.log"
  | "math.log2" | "math.absf" | "math.tanh" ->
    let a = read_value st in
    let fm = fastmath_opt st in
    expect st ":";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op name ~operands:[ a ]
         ~attrs:[ ("fastmath", Attr.Fastmath fm) ]
         ~result_types:[ t ])
  | "math.powf" | "math.fma" ->
    let a = read_value st in
    expect st ",";
    let b = read_value st in
    let c = if name = "math.fma" then (expect st ","; [ read_value st ]) else [] in
    let fm = fastmath_opt st in
    expect st ":";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op name ~operands:([ a; b ] @ c)
         ~attrs:[ ("fastmath", Attr.Fastmath fm) ]
         ~result_types:[ t ])
  | "func.return" ->
    let operands =
      if peek st = Some '%' then begin
        let vs = read_value_list st in
        expect st ":";
        let rec tys () = let _ = read_type st in if eat st "," then tys () in
        tys ();
        vs
      end
      else []
    in
    finish_op st blk results (Ir.create_op "func.return" ~operands)
  | "func.call" ->
    expect st "@";
    let callee = read_ident st in
    expect st "(";
    let operands = if looking_at st ")" then [] else read_value_list st in
    expect st ")";
    expect st ":";
    expect st "(";
    (if not (eat st ")") then
       let rec tys () = let _ = read_type st in if eat st "," then tys () else expect st ")" in
       tys ());
    expect st "->";
    let result_types = parse_result_types st in
    finish_op st blk results
      (Ir.create_op "func.call" ~operands
         ~attrs:[ ("callee", Attr.Symbol_ref callee) ]
         ~result_types)
  | "scf.yield" ->
    let operands =
      if peek st = Some '%' then begin
        let vs = read_value_list st in
        expect st ":";
        let rec tys () = let _ = read_type st in if eat st "," then tys () in
        tys ();
        vs
      end
      else []
    in
    finish_op st blk results (Ir.create_op "scf.yield" ~operands)
  | "scf.for" ->
    let iv_name = read_value_name st in
    expect st "=";
    let lb = read_value st in
    expect st "to";
    let ub = read_value st in
    expect st "step";
    let step = read_value st in
    let iter_pairs =
      if eat st "iter_args" then begin
        expect st "(";
        let rec go acc =
          let n = read_value_name st in
          expect st "=";
          let init = read_value st in
          if eat st "," then go ((n, init) :: acc)
          else begin
            expect st ")";
            List.rev ((n, init) :: acc)
          end
        in
        go []
      end
      else []
    in
    let result_types =
      if eat st "->" then parse_result_types st
      else List.map (fun (_, v) -> v.Ir.v_type) iter_pairs
    in
    expect st "{";
    let body =
      Ir.create_block ~arg_types:(Typ.index :: List.map (fun (_, v) -> v.Ir.v_type) iter_pairs) ()
    in
    in_scope st (fun () ->
        bind st iv_name body.Ir.blk_args.(0);
        List.iteri (fun i (n, _) -> bind st n body.Ir.blk_args.(i + 1)) iter_pairs;
        parse_block_body st body);
    expect st "}";
    finish_op st blk results
      (Ir.create_op "scf.for"
         ~operands:(lb :: ub :: step :: List.map snd iter_pairs)
         ~result_types
         ~regions:[ Ir.create_region [ body ] ])
  | "scf.if" ->
    let c = read_value st in
    let result_types = if eat st "->" then parse_result_types st else [] in
    expect st "{";
    let then_blk = Ir.create_block () in
    in_scope st (fun () -> parse_block_body st then_blk);
    expect st "}";
    let else_blk = Ir.create_block () in
    if eat st "else" then begin
      expect st "{";
      in_scope st (fun () -> parse_block_body st else_blk);
      expect st "}"
    end;
    finish_op st blk results
      (Ir.create_op "scf.if" ~operands:[ c ] ~result_types
         ~regions:[ Ir.create_region [ then_blk ]; Ir.create_region [ else_blk ] ])
  | "tensor.empty" ->
    expect st "(";
    expect st ")";
    expect st ":";
    let t = read_type st in
    finish_op st blk results (Ir.create_op "tensor.empty" ~result_types:[ t ])
  | "tensor.extract" ->
    let t = read_value st in
    expect st "[";
    let idx = if looking_at st "]" then [] else read_value_list st in
    expect st "]";
    expect st ":";
    let tt = read_type st in
    let elem =
      match Typ.element_type tt with
      | Some e -> e
      | None -> error "tensor.extract: not a tensor type"
    in
    finish_op st blk results
      (Ir.create_op "tensor.extract" ~operands:(t :: idx) ~result_types:[ elem ])
  | "tensor.insert" ->
    let v = read_value st in
    expect st "into";
    let t = read_value st in
    expect st "[";
    let idx = if looking_at st "]" then [] else read_value_list st in
    expect st "]";
    expect st ":";
    let tt = read_type st in
    finish_op st blk results
      (Ir.create_op "tensor.insert" ~operands:(v :: t :: idx) ~result_types:[ tt ])
  | "memref.alloc" ->
    expect st "(";
    expect st ")";
    expect st ":";
    let t = read_type st in
    finish_op st blk results (Ir.create_op "memref.alloc" ~result_types:[ t ])
  | "memref.dealloc" ->
    let m = read_value st in
    expect st ":";
    let _ = read_type st in
    finish_op st blk results (Ir.create_op "memref.dealloc" ~operands:[ m ])
  | "memref.load" ->
    let m = read_value st in
    expect st "[";
    let idx = if looking_at st "]" then [] else read_value_list st in
    expect st "]";
    expect st ":";
    let mt = read_type st in
    let elem =
      match Typ.element_type mt with
      | Some e -> e
      | None -> error "memref.load: not a memref type"
    in
    finish_op st blk results
      (Ir.create_op "memref.load" ~operands:(m :: idx) ~result_types:[ elem ])
  | "memref.store" ->
    let v = read_value st in
    expect st ",";
    let m = read_value st in
    expect st "[";
    let idx = if looking_at st "]" then [] else read_value_list st in
    expect st "]";
    expect st ":";
    let _ = read_type st in
    finish_op st blk results (Ir.create_op "memref.store" ~operands:(v :: m :: idx))
  | "memref.copy" ->
    let s = read_value st in
    expect st ",";
    let d = read_value st in
    expect st ":";
    let _ = read_type st in
    expect st "to";
    let _ = read_type st in
    finish_op st blk results (Ir.create_op "memref.copy" ~operands:[ s; d ])
  | "tensor.dim" ->
    let t = read_value st in
    expect st ",";
    let i = read_value st in
    expect st ":";
    let _tt = read_type st in
    finish_op st blk results
      (Ir.create_op "tensor.dim" ~operands:[ t; i ] ~result_types:[ Typ.index ])
  | "tensor.splat" ->
    let v = read_value st in
    expect st ":";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op "tensor.splat" ~operands:[ v ] ~result_types:[ t ])
  | "tensor.from_elements" ->
    let vs = read_value_list st in
    expect st ":";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op "tensor.from_elements" ~operands:vs ~result_types:[ t ])
  | "linalg.matmul" | "linalg.add" ->
    expect st "ins";
    expect st "(";
    let a = read_value st in
    expect st ",";
    let b = read_value st in
    expect st ":";
    let _ = read_type st in
    expect st ",";
    let _ = read_type st in
    expect st ")";
    expect st "outs";
    expect st "(";
    let init = read_value st in
    expect st ":";
    let _ = read_type st in
    expect st ")";
    expect st "->";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op name ~operands:[ a; b; init ] ~result_types:[ t ])
  | "linalg.fill" ->
    expect st "ins";
    expect st "(";
    let v = read_value st in
    expect st ":";
    let _ = read_type st in
    expect st ")";
    expect st "outs";
    expect st "(";
    let init = read_value st in
    expect st ":";
    let _ = read_type st in
    expect st ")";
    expect st "->";
    let t = read_type st in
    finish_op st blk results
      (Ir.create_op "linalg.fill" ~operands:[ v; init ] ~result_types:[ t ])
  | other -> error "unknown operation %s (use the generic \"...\" form)" other

and parse_func st blk results : Ir.op =
  if results <> [] then error "func.func produces no results";
  expect st "@";
  let fname = read_ident st in
  expect st "(";
  let args = ref [] in
  (if not (eat st ")") then
     let rec go () =
       let n = read_value_name st in
       expect st ":";
       let t = read_type st in
       args := (n, t) :: !args;
       if eat st "," then go () else expect st ")"
     in
     go ());
  let args = List.rev !args in
  let ret_types = if eat st "->" then parse_result_types st else [] in
  let fattrs = if eat st "attributes" then read_attr_dict st else [] in
  expect st "{";
  (* functions are separate value scopes *)
  let st' = { st with values = Hashtbl.create 64 } in
  let entry = Ir.create_block ~arg_types:(List.map snd args) () in
  List.iteri (fun i (n, _) -> bind st' n entry.Ir.blk_args.(i)) args;
  parse_block_body st' entry;
  expect st "}";
  let op =
    Ir.create_op "func.func"
      ~attrs:
        (fattrs
        @ [
            ("sym_name", Attr.String fname);
            ("function_type", Attr.Type (Typ.Function (List.map snd args, ret_types)));
          ])
      ~regions:[ Ir.create_region [ entry ] ]
  in
  Ir.append_op blk op;
  op

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Parse a whole module.  The [module { ... }] wrapper is optional. *)
let parse_module (src : string) : Ir.op =
  Registry.ensure_registered ();
  let st = { c = { Typ.src; pos = 0 }; values = Hashtbl.create 64; depth = ref 0 } in
  let located msg =
    let line, col = line_col src st.c.pos in
    raise (Syntax_error { line; col; msg })
  in
  try
    let m = Ir.create_module () in
    let blk = Ir.module_block m in
    let wrapped = eat st "module" in
    if wrapped then expect st "{";
    let rec go () =
      skip_ws st;
      if st.c.pos >= String.length src then ()
      else if looking_at st "}" then ()
      else begin
        ignore (parse_op st blk);
        go ()
      end
    in
    go ();
    if wrapped then expect st "}";
    skip_ws st;
    if st.c.pos <> String.length src then located "trailing input";
    m
  with
  | Error msg -> located msg
  | Typ.Parse_error msg -> located ("type: " ^ msg)

(** Parse a single function given as [func.func @f(...) { ... }] into a
    fresh module; returns the module. *)
let parse_function_module (src : string) : Ir.op = parse_module src
