(** The [tensor] dialect: tensor creation and element access. *)

open Ir

(** [empty blk ty] builds [tensor.empty() : ty]. *)
let empty blk (ty : Typ.t) =
  let op = create_op "tensor.empty" ~result_types:[ ty ] in
  append_op blk op;
  result1 op

(** [extract blk t indices] builds [tensor.extract %t[indices]]. *)
let extract blk t (indices : value list) =
  let elem =
    match Typ.element_type t.v_type with
    | Some e -> e
    | None -> invalid_arg "tensor.extract: operand is not a tensor"
  in
  let op = create_op "tensor.extract" ~operands:(t :: indices) ~result_types:[ elem ] in
  append_op blk op;
  result1 op

(** [insert blk v t indices] builds [tensor.insert %v into %t[indices]],
    returning the updated tensor. *)
let insert blk v t (indices : value list) =
  let op =
    create_op "tensor.insert" ~operands:(v :: t :: indices) ~result_types:[ t.v_type ]
  in
  append_op blk op;
  result1 op

(** [dim blk t i] builds [tensor.dim %t, %i : index]. *)
let dim blk t i =
  let op = create_op "tensor.dim" ~operands:[ t; i ] ~result_types:[ Typ.index ] in
  append_op blk op;
  result1 op

(** [splat blk v ty] fills a tensor of type [ty] with scalar [v]. *)
let splat blk v ty =
  let op = create_op "tensor.splat" ~operands:[ v ] ~result_types:[ ty ] in
  append_op blk op;
  result1 op

(** [from_elements blk vs ty] builds a tensor from scalar elements. *)
let from_elements blk (vs : value list) ty =
  let op = create_op "tensor.from_elements" ~operands:vs ~result_types:[ ty ] in
  append_op blk op;
  result1 op

let register () =
  let open Dialect in
  def "tensor.empty" ~n_operands:0 ~n_results:1 ~result_class:[ Shaped ]
    ~traits:[ Pure ] ~verify:(fun op ->
      if Typ.is_shaped op.Ir.results.(0).v_type then Ok ()
      else Error "tensor.empty must produce a shaped type");
  (* extract/insert/from_elements take rank-dependent operand lists *)
  def "tensor.extract" ~n_results:1 ~traits:[ Pure ];
  def "tensor.insert" ~n_results:1 ~result_class:[ Shaped ] ~traits:[ Pure ];
  def "tensor.dim" ~n_operands:2 ~n_results:1 ~result_class:[ Index_like ]
    ~traits:[ Pure ];
  def "tensor.splat" ~n_operands:1 ~n_results:1 ~result_class:[ Shaped ]
    ~traits:[ Pure ];
  def "tensor.from_elements" ~n_results:1 ~result_class:[ Shaped ] ~traits:[ Pure ]
