(** The [linalg] dialect (the small slice the paper uses): matrix
    multiplication and fills on tensors. *)

open Ir

(** [matmul blk a b init] builds
    [linalg.matmul ins(%a, %b) outs(%init) -> tensor<...>].
    The result type is taken from [init] (the output tensor). *)
let matmul blk a b init =
  let op =
    create_op "linalg.matmul" ~operands:[ a; b; init ] ~result_types:[ init.v_type ]
  in
  append_op blk op;
  result1 op

(** [fill blk v init] fills [init] with scalar [v]. *)
let fill blk v init =
  let op = create_op "linalg.fill" ~operands:[ v; init ] ~result_types:[ init.v_type ] in
  append_op blk op;
  result1 op

(** [add blk a b init] elementwise addition (linalg.add). *)
let add blk a b init =
  let op =
    create_op "linalg.add" ~operands:[ a; b; init ] ~result_types:[ init.v_type ]
  in
  append_op blk op;
  result1 op

(** Static (rows, cols) of a matmul operand type. *)
let matrix_dims (t : Typ.t) =
  match Typ.shape t with
  | Some [ r; c ] when r >= 0 && c >= 0 -> Some (r, c)
  | _ -> None

let verify_matmul (op : Ir.op) =
  if Array.length op.operands <> 3 then Error "linalg.matmul takes A, B and an output"
  else
    match
      ( matrix_dims op.operands.(0).v_type,
        matrix_dims op.operands.(1).v_type,
        matrix_dims op.operands.(2).v_type )
    with
    | Some (_, k1), Some (k2, _), Some _ when k1 <> k2 ->
      Error
        (Fmt.str "linalg.matmul: inner dimensions disagree (%d vs %d)" k1 k2)
    | Some (m1, _), Some (_, n1), Some (m2, n2) when m1 <> m2 || n1 <> n2 ->
      Error "linalg.matmul: output shape mismatch"
    | _ -> Ok ()

let register () =
  let open Dialect in
  def "linalg.matmul" ~n_operands:3 ~n_results:1 ~result_class:[ Shaped ]
    ~traits:[ Pure ] ~verify:verify_matmul;
  def "linalg.fill" ~n_operands:2 ~n_results:1 ~result_class:[ Shaped ]
    ~traits:[ Pure ];
  def "linalg.add" ~n_operands:3 ~n_results:1 ~result_class:[ Shaped ]
    ~traits:[ Pure ]
