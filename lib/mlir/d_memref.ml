(** The [memref] dialect: mutable buffers (alloc / load / store / copy).

    Deliberately {e not} pre-defined in DialEgg's Egglog prelude: loads and
    stores are the paper's §9 example of side-effecting operations that the
    translation must treat opaquely.  [memref.store] has zero results, so it
    becomes a block anchor and survives optimization in source order. *)

open Ir

(** [alloc blk ty] builds [memref.alloc() : memref<...>]. *)
let alloc blk (ty : Typ.t) =
  let op = create_op "memref.alloc" ~result_types:[ ty ] in
  append_op blk op;
  result1 op

let dealloc blk m =
  let op = create_op "memref.dealloc" ~operands:[ m ] in
  append_op blk op;
  op

(** [load blk m indices] builds [memref.load %m[indices]]. *)
let load blk m (indices : value list) =
  let elem =
    match Typ.element_type m.v_type with
    | Some e -> e
    | None -> invalid_arg "memref.load: operand is not a memref"
  in
  let op = create_op "memref.load" ~operands:(m :: indices) ~result_types:[ elem ] in
  append_op blk op;
  result1 op

(** [store blk v m indices] builds [memref.store %v, %m[indices]]. *)
let store blk v m (indices : value list) =
  let op = create_op "memref.store" ~operands:(v :: m :: indices) in
  append_op blk op;
  op

(** [copy blk src dst] copies the whole buffer. *)
let copy blk src dst =
  let op = create_op "memref.copy" ~operands:[ src; dst ] in
  append_op blk op;
  op

let verify_memref_indexed ~base_operands (op : Ir.op) =
  if Array.length op.operands < base_operands then Error "missing operands"
  else
    let m = op.operands.(base_operands - 1) in
    match Typ.shape m.v_type with
    | Some dims ->
      if Array.length op.operands - base_operands <> List.length dims then
        Error "index count does not match the memref rank"
      else Ok ()
    | None -> Error "expected a memref operand"

let register () =
  let open Dialect in
  (* allocation is not Pure (it observably creates state), but it is
     removable when unused; we keep it conservative *)
  def "memref.alloc" ~n_operands:0 ~n_results:1 ~result_class:[ Shaped ]
    ~effects:[ Alloc ] ~verify:(fun op ->
      if Typ.is_shaped op.Ir.results.(0).v_type then Ok ()
      else Error "memref.alloc must produce a shaped type");
  def "memref.dealloc" ~n_operands:1 ~n_results:0 ~effects:[ Free ];
  def "memref.load" ~n_results:1 ~effects:[ Read ]
    ~verify:(verify_memref_indexed ~base_operands:1);
  def "memref.store" ~n_results:0 ~effects:[ Write ]
    ~verify:(verify_memref_indexed ~base_operands:2);
  def "memref.copy" ~n_operands:2 ~n_results:0 ~effects:[ Read; Write ]
