(** Dialect registry: operation definitions, traits, verifiers and folders.
    Drives the verifier, the canonicalizer, the parser, and the
    cross-layer encoding auditor. *)

type trait =
  | Pure  (** no side effects; eligible for CSE/DCE *)
  | Commutative
  | Terminator
  | Constant_like

(** Coarse classification of an op's result type; an op may admit
    several classes, and the empty list means "unconstrained". *)
type type_class =
  | Int_like  (** iN / IntegerType *)
  | Float_like  (** f16 / f32 / f64 *)
  | Index_like  (** index *)
  | Shaped  (** tensor / memref *)

(** Memory effects of a non-[Pure] op.  [Call] marks ops whose only
    effect is transferring control to a callee. *)
type effect_kind = Read | Write | Alloc | Free | Call

type fold_result =
  | No_fold
  | Fold_to_attr of Attr.t  (** folds to a constant with this value attr *)
  | Fold_to_operand of int  (** folds to its nth operand *)

type op_def = {
  d_name : string;
  d_n_operands : int option;  (** [None] = variadic *)
  d_n_results : int option;  (** [None] = variadic / signature-dependent *)
  d_n_regions : int;
  d_traits : trait list;
  d_result_class : type_class list;  (** [[]] = unconstrained *)
  d_effects : effect_kind list;  (** meaningful only without [Pure] *)
  d_verify : (Ir.op -> (unit, string) result) option;
  d_fold : (Ir.op -> Attr.t option array -> fold_result) option;
      (** receives the constant value of each operand where known *)
}

(** Register an op definition (later registrations replace earlier ones).
    Omitting [n_results] means the result count is variadic or
    signature-dependent; single-result ops must say [~n_results:1]. *)
val def :
  ?n_operands:int ->
  ?n_results:int ->
  ?n_regions:int ->
  ?traits:trait list ->
  ?result_class:type_class list ->
  ?effects:effect_kind list ->
  ?verify:(Ir.op -> (unit, string) result) ->
  ?fold:(Ir.op -> Attr.t option array -> fold_result) ->
  string ->
  unit

val find : string -> op_def option
val is_registered : string -> bool
val has_trait : string -> trait -> bool

(** Unregistered ops are conservatively treated as effectful. *)
val is_pure : Ir.op -> bool

val is_terminator : Ir.op -> bool
val is_commutative : Ir.op -> bool
val is_constant_like : Ir.op -> bool

(** All registered op names, sorted. *)
val all_ops : unit -> string list

(** Iterate over every registered definition, in sorted name order. *)
val iter : (op_def -> unit) -> unit

val trait_name : trait -> string
val type_class_name : type_class -> string
val effect_name : effect_kind -> string

(** Content hash of every registered op spec (arities, traits, result
    classes, effects).  Changes whenever a definition that the encoding
    auditor consults changes, so cached audit verdicts self-invalidate. *)
val fingerprint : unit -> string
