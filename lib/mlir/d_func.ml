(** The [func] dialect: functions, calls and returns. *)

open Ir

(** [func blk_or_module name arg_types ret_types] creates a [func.func] op
    with an entry block whose arguments match [arg_types], and returns the
    op together with its entry block. *)
let func ~name ~arg_types ~ret_types : op * block =
  let entry = create_block ~arg_types () in
  let region = create_region [ entry ] in
  let op =
    create_op "func.func"
      ~attrs:
        [
          ("sym_name", Attr.String name);
          ("function_type", Attr.Type (Typ.Function (arg_types, ret_types)));
        ]
      ~regions:[ region ]
  in
  (op, entry)

(** Create a function and append it to module [m]. *)
let add_func m ~name ~arg_types ~ret_types =
  let op, entry = func ~name ~arg_types ~ret_types in
  module_append m op;
  (op, entry)

let return blk (values : value list) =
  let op = create_op "func.return" ~operands:values in
  append_op blk op;
  op

(** [call blk callee args ret_types] builds [func.call @callee(args)]. *)
let call blk callee (args : value list) (ret_types : Typ.t list) =
  let op =
    create_op "func.call" ~operands:args
      ~attrs:[ ("callee", Attr.Symbol_ref callee) ]
      ~result_types:ret_types
  in
  append_op blk op;
  op

let call1 blk callee args ret_type = result1 (call blk callee args [ ret_type ])

let register () =
  let open Dialect in
  def "builtin.module" ~n_operands:0 ~n_results:0 ~n_regions:1;
  def "func.func" ~n_operands:0 ~n_results:0 ~n_regions:1 ~verify:(fun op ->
      match (Ir.attr op "sym_name", Ir.attr op "function_type") with
      | Some (Attr.String _), Some (Attr.Type (Typ.Function _)) -> Ok ()
      | _ -> Error "func.func requires sym_name and function_type attributes");
  def "func.return" ~n_results:0 ~traits:[ Terminator ];
  (* calls are not Pure: the callee may have effects.  Operand and result
     counts follow the callee signature: variadic on both sides. *)
  def "func.call" ~effects:[ Call ] ~verify:(fun op ->
      match Ir.attr op "callee" with
      | Some (Attr.Symbol_ref _) -> Ok ()
      | _ -> Error "func.call requires a callee symbol")
