(** Dialect registry: operation definitions, traits, verifiers and folders.

    Each dialect registers its operations here.  The registry drives the
    verifier (arity/type checks), the canonicalizer (folders and rewrite
    patterns), the parser (which consults expected structure for pretty
    forms), and the cross-layer encoding auditor (which checks egg
    constructor signatures against these specs). *)

type trait =
  | Pure  (** no side effects; eligible for CSE/DCE *)
  | Commutative
  | Terminator
  | Constant_like

(** Coarse classification of an op's result type, used by the encoding
    auditor to check the sorts eggify assigns against the registry.  An
    op may admit several classes (e.g. arith int ops produce integers or
    index values); the empty list means "unconstrained". *)
type type_class =
  | Int_like  (** iN / IntegerType *)
  | Float_like  (** f16 / f32 / f64 *)
  | Index_like  (** index *)
  | Shaped  (** tensor / memref *)

(** Memory effects of a non-[Pure] op.  [Call] marks ops whose only
    effect is transferring control to a callee; rewrite rules may still
    mention them (the callee's effects are the callee's problem), unlike
    ops that directly read or mutate memory. *)
type effect_kind = Read | Write | Alloc | Free | Call

type fold_result =
  | No_fold
  | Fold_to_attr of Attr.t  (** op folds to a constant with this value attr *)
  | Fold_to_operand of int  (** op folds to its nth operand *)

type op_def = {
  d_name : string;  (** full op name, e.g. "arith.addi" *)
  d_n_operands : int option;  (** [None] = variadic *)
  d_n_results : int option;  (** [None] = variadic / signature-dependent *)
  d_n_regions : int;
  d_traits : trait list;
  d_result_class : type_class list;  (** [[]] = unconstrained *)
  d_effects : effect_kind list;  (** meaningful only without [Pure] *)
  d_verify : (Ir.op -> (unit, string) result) option;
  d_fold : (Ir.op -> Attr.t option array -> fold_result) option;
      (** called with the constant value of each operand where known *)
}

let registry : (string, op_def) Hashtbl.t = Hashtbl.create 128

let def ?n_operands ?n_results ?(n_regions = 0) ?(traits = [])
    ?(result_class = []) ?(effects = []) ?verify ?fold name =
  let d =
    {
      d_name = name;
      d_n_operands = n_operands;
      d_n_results = n_results;
      d_n_regions = n_regions;
      d_traits = traits;
      d_result_class = result_class;
      d_effects = effects;
      d_verify = verify;
      d_fold = fold;
    }
  in
  Hashtbl.replace registry name d

(** Definition of an op name, if registered. *)
let find name = Hashtbl.find_opt registry name

let is_registered name = Hashtbl.mem registry name

let has_trait name t =
  match find name with Some d -> List.mem t d.d_traits | None -> false

(** Is this op free of side effects?  Unregistered ops are conservatively
    treated as effectful. *)
let is_pure (op : Ir.op) = has_trait op.Ir.op_name Pure

let is_terminator (op : Ir.op) = has_trait op.Ir.op_name Terminator
let is_commutative (op : Ir.op) = has_trait op.Ir.op_name Commutative
let is_constant_like (op : Ir.op) = has_trait op.Ir.op_name Constant_like

(** All registered op names, sorted. *)
let all_ops () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort String.compare

let iter f =
  List.iter (fun name -> f (Hashtbl.find registry name)) (all_ops ())

let trait_name = function
  | Pure -> "pure"
  | Commutative -> "commutative"
  | Terminator -> "terminator"
  | Constant_like -> "constant-like"

let type_class_name = function
  | Int_like -> "int"
  | Float_like -> "float"
  | Index_like -> "index"
  | Shaped -> "shaped"

let effect_name = function
  | Read -> "read"
  | Write -> "write"
  | Alloc -> "alloc"
  | Free -> "free"
  | Call -> "call"

(* A digest of every registered op spec (names, arities, traits, result
   classes, effects — everything the encoding auditor consults).  Cached
   audit verdicts key on this so registering, removing or editing an op
   definition invalidates them.  Verify/fold closures are not hashable
   and not part of the contract the auditor checks, so they are ignored. *)
let fingerprint () =
  let buf = Buffer.create 1024 in
  iter (fun d ->
      Buffer.add_string buf d.d_name;
      Buffer.add_char buf ' ';
      let opt = function None -> "?" | Some n -> string_of_int n in
      Buffer.add_string buf (opt d.d_n_operands);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (opt d.d_n_results);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int d.d_n_regions);
      List.iter (fun t -> Buffer.add_string buf (" " ^ trait_name t)) d.d_traits;
      List.iter
        (fun c -> Buffer.add_string buf (" :" ^ type_class_name c))
        d.d_result_class;
      List.iter (fun e -> Buffer.add_string buf (" !" ^ effect_name e)) d.d_effects;
      Buffer.add_char buf '\n');
  Digest.to_hex (Digest.string (Buffer.contents buf))
