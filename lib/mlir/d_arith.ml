(** The [arith] dialect: integer and floating-point arithmetic.

    Registers op definitions (with folders used by canonicalization) and
    provides builder helpers.  Builders append the new op to the given block
    and return its result value. *)

open Ir

let fm_default = ("fastmath", Attr.Fastmath Attr.Fm_none)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

(** [constant blk attr ty] builds [arith.constant <attr> : ty]. *)
let constant blk (value : Attr.t) (ty : Typ.t) =
  let op = create_op "arith.constant" ~attrs:[ ("value", value) ] ~result_types:[ ty ] in
  append_op blk op;
  result1 op

let const_int blk ?(ty = Typ.i64) v = constant blk (Attr.Int (v, ty)) ty
let const_index blk v = constant blk (Attr.Int (Int64.of_int v, Typ.index)) Typ.index
let const_float blk ?(ty = Typ.f64) v = constant blk (Attr.Float (v, ty)) ty

let binary name ?(attrs = []) blk a b =
  let op =
    create_op name ~operands:[ a; b ] ~attrs ~result_types:[ a.v_type ]
  in
  append_op blk op;
  result1 op

let addi blk a b = binary "arith.addi" blk a b
let subi blk a b = binary "arith.subi" blk a b
let muli blk a b = binary "arith.muli" blk a b
let divsi blk a b = binary "arith.divsi" blk a b
let divui blk a b = binary "arith.divui" blk a b
let remsi blk a b = binary "arith.remsi" blk a b
let shli blk a b = binary "arith.shli" blk a b
let shrsi blk a b = binary "arith.shrsi" blk a b
let shrui blk a b = binary "arith.shrui" blk a b
let andi blk a b = binary "arith.andi" blk a b
let ori blk a b = binary "arith.ori" blk a b
let xori blk a b = binary "arith.xori" blk a b
let minsi blk a b = binary "arith.minsi" blk a b
let maxsi blk a b = binary "arith.maxsi" blk a b

let fm_attr fm = ("fastmath", Attr.Fastmath fm)

let addf ?(fm = Attr.Fm_none) blk a b = binary "arith.addf" ~attrs:[ fm_attr fm ] blk a b
let subf ?(fm = Attr.Fm_none) blk a b = binary "arith.subf" ~attrs:[ fm_attr fm ] blk a b
let mulf ?(fm = Attr.Fm_none) blk a b = binary "arith.mulf" ~attrs:[ fm_attr fm ] blk a b
let divf ?(fm = Attr.Fm_none) blk a b = binary "arith.divf" ~attrs:[ fm_attr fm ] blk a b
let maximumf ?(fm = Attr.Fm_none) blk a b = binary "arith.maximumf" ~attrs:[ fm_attr fm ] blk a b
let minimumf ?(fm = Attr.Fm_none) blk a b = binary "arith.minimumf" ~attrs:[ fm_attr fm ] blk a b

let negf ?(fm = Attr.Fm_none) blk a =
  let op =
    create_op "arith.negf" ~operands:[ a ] ~attrs:[ fm_attr fm ] ~result_types:[ a.v_type ]
  in
  append_op blk op;
  result1 op

(** [cmpi blk pred a b] with a predicate name like "slt". *)
let cmpi blk pred a b =
  let p =
    match Attr.cmpi_predicate_of_string pred with
    | Some p -> p
    | None -> invalid_arg (Fmt.str "unknown cmpi predicate %s" pred)
  in
  let op =
    create_op "arith.cmpi" ~operands:[ a; b ]
      ~attrs:[ ("predicate", Attr.Int (Int64.of_int p, Typ.i64)) ]
      ~result_types:[ Typ.i1 ]
  in
  append_op blk op;
  result1 op

(** [cmpf blk pred a b] with a predicate name like "oge". *)
let cmpf ?(fm = Attr.Fm_none) blk pred a b =
  let p =
    match Attr.cmpf_predicate_of_string pred with
    | Some p -> p
    | None -> invalid_arg (Fmt.str "unknown cmpf predicate %s" pred)
  in
  let op =
    create_op "arith.cmpf" ~operands:[ a; b ]
      ~attrs:[ fm_attr fm; ("predicate", Attr.Int (Int64.of_int p, Typ.i64)) ]
      ~result_types:[ Typ.i1 ]
  in
  append_op blk op;
  result1 op

let select blk c a b =
  let op = create_op "arith.select" ~operands:[ c; a; b ] ~result_types:[ a.v_type ] in
  append_op blk op;
  result1 op

let unary_cast name blk a ty =
  let op = create_op name ~operands:[ a ] ~result_types:[ ty ] in
  append_op blk op;
  result1 op

let index_cast blk a ty = unary_cast "arith.index_cast" blk a ty
let sitofp blk a ty = unary_cast "arith.sitofp" blk a ty
let fptosi blk a ty = unary_cast "arith.fptosi" blk a ty
let truncf blk a ty = unary_cast "arith.truncf" blk a ty
let extf blk a ty = unary_cast "arith.extf" blk a ty
let bitcast blk a ty = unary_cast "arith.bitcast" blk a ty

(* ------------------------------------------------------------------ *)
(* Folders                                                             *)
(* ------------------------------------------------------------------ *)

let int_of_attr = function Some (Attr.Int (v, _)) -> Some v | _ -> None
let float_of_attr = function Some (Attr.Float (v, _)) -> Some v | _ -> None

(** Fold a binary integer op when both operands are constants. *)
let fold_int_binop f (op : Ir.op) (consts : Attr.t option array) =
  match (int_of_attr consts.(0), int_of_attr consts.(1)) with
  | Some a, Some b -> (
    let ty = op.results.(0).v_type in
    let w = Typ.int_width ty in
    try Dialect.Fold_to_attr (Attr.Int (f w a b, ty)) with Failure _ -> Dialect.No_fold)
  | _ -> Dialect.No_fold

(** Fold with algebraic identities: [x op identity -> x]. *)
let fold_int_binop_id ?right_identity ?left_identity f op consts =
  match fold_int_binop f op consts with
  | Dialect.No_fold -> (
    match (int_of_attr consts.(0), int_of_attr consts.(1), right_identity, left_identity) with
    | _, Some b, Some id, _ when Int64.equal b id -> Dialect.Fold_to_operand 0
    | Some a, _, _, Some id when Int64.equal a id -> Dialect.Fold_to_operand 1
    | _ -> Dialect.No_fold)
  | r -> r

let fold_float_binop f (op : Ir.op) (consts : Attr.t option array) =
  match (float_of_attr consts.(0), float_of_attr consts.(1)) with
  | Some a, Some b -> Dialect.Fold_to_attr (Attr.Float (f a b, op.results.(0).v_type))
  | _ -> Dialect.No_fold

let verify_binary (op : Ir.op) =
  if Array.length op.operands <> 2 then Error "expected 2 operands"
  else if not (Typ.equal op.operands.(0).v_type op.operands.(1).v_type) then
    Error "operand types differ"
  else if Array.length op.results <> 1 then Error "expected 1 result"
  else Ok ()

let verify_int_binary op =
  match verify_binary op with
  | Error _ as e -> e
  | Ok () ->
    if Typ.is_int_or_index op.Ir.operands.(0).v_type then Ok ()
    else Error "expected integer operands"

let verify_float_binary op =
  match verify_binary op with
  | Error _ as e -> e
  | Ok () ->
    if Typ.is_float op.Ir.operands.(0).v_type then Ok ()
    else Error "expected float operands"

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let register () =
  let open Dialect in
  def "arith.constant" ~n_operands:0 ~n_results:1 ~traits:[ Pure; Constant_like ]
    ~verify:(fun op ->
      match Ir.attr op "value" with
      | Some _ -> Ok ()
      | None -> Error "arith.constant requires a value attribute");
  let int_binop ?(traits = [ Pure ]) name f =
    def name ~n_operands:2 ~n_results:1 ~result_class:[ Int_like; Index_like ]
      ~traits ~verify:verify_int_binary ~fold:(fold_int_binop f)
  in
  let int_binop_id ?(traits = [ Pure ]) ?right_identity ?left_identity name f =
    def name ~n_operands:2 ~n_results:1 ~result_class:[ Int_like; Index_like ]
      ~traits ~verify:verify_int_binary
      ~fold:(fold_int_binop_id ?right_identity ?left_identity f)
  in
  int_binop_id "arith.addi" Ints.add ~traits:[ Pure; Commutative ] ~right_identity:0L
    ~left_identity:0L;
  int_binop_id "arith.subi" Ints.sub ~right_identity:0L;
  int_binop_id "arith.muli" Ints.mul ~traits:[ Pure; Commutative ] ~right_identity:1L
    ~left_identity:1L;
  int_binop_id "arith.divsi" Ints.divsi ~right_identity:1L;
  int_binop "arith.divui" Ints.divui;
  int_binop "arith.remsi" Ints.remsi;
  int_binop "arith.remui" Ints.remui;
  int_binop_id "arith.shli" Ints.shli ~right_identity:0L;
  int_binop_id "arith.shrsi" Ints.shrsi ~right_identity:0L;
  int_binop_id "arith.shrui" Ints.shrui ~right_identity:0L;
  int_binop "arith.andi" Ints.andi ~traits:[ Pure; Commutative ];
  int_binop_id "arith.ori" Ints.ori ~traits:[ Pure; Commutative ] ~right_identity:0L
    ~left_identity:0L;
  int_binop_id "arith.xori" Ints.xori ~traits:[ Pure; Commutative ] ~right_identity:0L
    ~left_identity:0L;
  int_binop "arith.minsi" Ints.minsi ~traits:[ Pure; Commutative ];
  int_binop "arith.maxsi" Ints.maxsi ~traits:[ Pure; Commutative ];
  int_binop "arith.minui" Ints.minui ~traits:[ Pure; Commutative ];
  int_binop "arith.maxui" Ints.maxui ~traits:[ Pure; Commutative ];
  let float_binop ?(traits = [ Pure ]) name f =
    def name ~n_operands:2 ~n_results:1 ~result_class:[ Float_like ] ~traits
      ~verify:verify_float_binary ~fold:(fold_float_binop f)
  in
  float_binop "arith.addf" Float.add ~traits:[ Pure; Commutative ];
  float_binop "arith.subf" Float.sub;
  float_binop "arith.mulf" Float.mul ~traits:[ Pure; Commutative ];
  float_binop "arith.divf" Float.div;
  float_binop "arith.maximumf" Float.max ~traits:[ Pure; Commutative ];
  float_binop "arith.minimumf" Float.min ~traits:[ Pure; Commutative ];
  def "arith.negf" ~n_operands:1 ~n_results:1 ~result_class:[ Float_like ]
    ~traits:[ Pure ] ~fold:(fun op consts ->
      match float_of_attr consts.(0) with
      | Some a -> Fold_to_attr (Attr.Float (-.a, op.Ir.results.(0).v_type))
      | None -> No_fold);
  def "arith.cmpi" ~n_operands:2 ~n_results:1 ~result_class:[ Int_like ]
    ~traits:[ Pure ] ~fold:(fun op consts ->
      match (int_of_attr consts.(0), int_of_attr consts.(1), Ir.attr op "predicate") with
      | Some a, Some b, Some (Attr.Int (p, _)) ->
        let w = Typ.int_width op.Ir.operands.(0).v_type in
        Fold_to_attr (Attr.Int ((if Ints.cmpi w (Int64.to_int p) a b then 1L else 0L), Typ.i1))
      | _ -> No_fold);
  def "arith.cmpf" ~n_operands:2 ~n_results:1 ~result_class:[ Int_like ]
    ~traits:[ Pure ] ~fold:(fun op consts ->
      match (float_of_attr consts.(0), float_of_attr consts.(1), Ir.attr op "predicate") with
      | Some a, Some b, Some (Attr.Int (p, _)) ->
        Fold_to_attr (Attr.Int ((if Ints.cmpf (Int64.to_int p) a b then 1L else 0L), Typ.i1))
      | _ -> No_fold);
  def "arith.select" ~n_operands:3 ~n_results:1 ~traits:[ Pure ]
    ~fold:(fun _op consts ->
      match int_of_attr consts.(0) with
      | Some 1L -> Fold_to_operand 1
      | Some 0L -> Fold_to_operand 2
      | _ -> No_fold);
  List.iter
    (fun (name, result_class) ->
      def name ~n_operands:1 ~n_results:1 ~result_class ~traits:[ Pure ])
    [
      ("arith.index_cast", [ Int_like; Index_like ]);
      ("arith.sitofp", [ Float_like ]);
      ("arith.fptosi", [ Int_like ]);
      ("arith.truncf", [ Float_like ]);
      ("arith.extf", [ Float_like ]);
      ("arith.bitcast", []);
    ]
