(** IR verification: SSA dominance, arity checks and per-op verifiers.

    Within a block, every operand must be defined by an earlier op in the
    same block, by a block argument of an enclosing block, or by an op in an
    enclosing scope that precedes the region-holding ancestor (MLIR's
    dominance rule for single-block regions).

    Errors are located [Egglog.Diag.t] values (code ["verify-*"], message
    prefixed with the op path, e.g. ["func.func(@main)/scf.for/arith.addi"]),
    so the pipeline, the translation validator and the encoding auditor all
    speak one diagnostic type. *)

module Diag = Egglog.Diag

let sym_of (op : Ir.op) =
  match Ir.attr op "sym_name" with
  | Some (Attr.String s) -> "(@" ^ s ^ ")"
  | _ -> ""

let path_to_string path = String.concat "/" (List.rev path)

(** Verify [root] (a module or any op).  Returns all errors found, each
    tagged with a ["verify-*"] code and the path of the offending op. *)
let verify (root : Ir.op) : Diag.t list =
  Registry.ensure_registered ();
  let errors = ref [] in
  let err path code fmt =
    Fmt.kstr
      (fun m ->
        errors := Diag.error code "%s: %s" (path_to_string path) m :: !errors)
      fmt
  in
  (* set of value ids in scope *)
  let rec check_op (scope : (int, unit) Hashtbl.t) path (op : Ir.op) =
    let path = (op.Ir.op_name ^ sym_of op) :: path in
    (* operand visibility *)
    Array.iteri
      (fun i (v : Ir.value) ->
        if not (Hashtbl.mem scope v.Ir.v_id) then
          err path "verify-dominance" "operand %d does not dominate this use" i)
      op.Ir.operands;
    (* registered structure checks *)
    (match Dialect.find op.Ir.op_name with
    | None -> ()
    | Some d ->
      (match d.Dialect.d_n_operands with
      | Some n when Array.length op.Ir.operands <> n ->
        err path "verify-operands" "expected %d operands, got %d" n
          (Array.length op.Ir.operands)
      | _ -> ());
      (match d.Dialect.d_n_results with
      | Some n when Array.length op.Ir.results <> n ->
        err path "verify-results" "expected %d results, got %d" n
          (Array.length op.Ir.results)
      | _ -> ());
      if List.length op.Ir.regions <> d.Dialect.d_n_regions then
        err path "verify-regions" "expected %d regions, got %d"
          d.Dialect.d_n_regions
          (List.length op.Ir.regions);
      (match d.Dialect.d_verify with
      | Some f -> (
        match f op with Ok () -> () | Error m -> err path "verify-op" "%s" m)
      | None -> ()));
    (* regions: nested scopes inherit the enclosing scope *)
    List.iter
      (fun (r : Ir.region) ->
        List.iter
          (fun (b : Ir.block) ->
            let inner = Hashtbl.copy scope in
            Array.iter (fun (a : Ir.value) -> Hashtbl.replace inner a.Ir.v_id ()) b.Ir.blk_args;
            check_block inner path b)
          r.Ir.blocks)
      op.Ir.regions;
    (* results become visible after the op *)
    Array.iter (fun (v : Ir.value) -> Hashtbl.replace scope v.Ir.v_id ()) op.Ir.results
  and check_block scope path (b : Ir.block) =
    (* terminator checks *)
    (match List.rev b.Ir.blk_ops with
    | last :: _ ->
      List.iteri
        (fun i (o : Ir.op) ->
          if Dialect.is_terminator o && o.Ir.op_id <> last.Ir.op_id then
            err (o.Ir.op_name :: path) "verify-terminator"
              "terminator in the middle of a block (position %d)" i)
        b.Ir.blk_ops
    | [] -> ());
    List.iter (check_op scope path) b.Ir.blk_ops
  in
  check_op (Hashtbl.create 64) [] root;
  List.rev !errors

(** Verify and raise [Failure] with a readable message on any error. *)
let verify_exn root =
  match verify root with
  | [] -> ()
  | errs ->
    failwith
      (Fmt.str "IR verification failed:@\n%a" Diag.pp_list errs)
