(** Parser for the MLIR textual format (the subset this project prints):
    the pretty forms of all registered dialects plus the generic form
    ["name"(%operands) ({regions}) {attrs} : (tys) -> tys].  Any output of
    {!Printer} round-trips.  SSA values must be defined before use;
    functions are independent naming scopes. *)

(** Raised by internal parsing helpers; the entry points below convert it
    (and {!Typ.Parse_error}) into a located {!Syntax_error}. *)
exception Error of string

(** A parse failure with its 1-based source location. *)
exception Syntax_error of { line : int; col : int; msg : string }

(** Parse a whole module; the [module { ... }] wrapper is optional.
    @raise Syntax_error on malformed input. *)
val parse_module : string -> Ir.op

(** Alias of {!parse_module} (a bare function parses into a fresh module). *)
val parse_function_module : string -> Ir.op
