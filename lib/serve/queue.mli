(** Batch sharding and the crash-safe job journal.

    {2 Sharding}

    A batch is a list of {!job}s: either one per [.mlir] file of an input
    directory (outputs go to same-named files in the output directory),
    or one per [func.func] of a multi-function module (outputs are
    spliced back into the module by the driver).  Job ids are stable
    across runs — the file's basename, or ["@" ^ function name] — which
    is what makes the journal replayable and fault injection targetable.

    {2 Journal}

    The journal ([.dialegg-journal] in the output directory) is an
    append-only, fsync'd record of batch progress: a [start] line per
    dispatch attempt and exactly one [done] line per finished job.  A
    [done] line is appended only {e after} the job's output has been
    atomically renamed into place, so on replay a completed entry implies
    a complete output file.  Records end in a sentinel field; the torn
    tail of a crashed append fails the sentinel check and is ignored,
    making a journal written up to a SIGKILL replayable byte-for-byte.
    [--resume] replays the journal and skips completed jobs whose outputs
    still exist. *)

type job = {
  job_id : string;  (** stable id: file basename, or ["@func"] *)
  job_input : Protocol.job_input;
  job_out : string option;  (** output path (directory mode) *)
}

exception Error of string

(** One job per [.mlir] file of [input_dir], sorted by name.
    @raise Error if the directory is unreadable or holds no [.mlir]. *)
val shard_dir : input_dir:string -> out_dir:string -> job list

(** One job per [func.func] of a parsed module at [path]. *)
val shard_module : path:string -> Mlir.Ir.op -> job list

(** How a job ended: optimized output written, identity fallback written
    after the retry budget was exhausted, or failed outright (even the
    fallback was impossible — e.g. an unparseable input). *)
type outcome = O_optimized | O_identity | O_failed

val outcome_name : outcome -> string
val outcome_of_string : string -> outcome option

(** A replayed [done] record. *)
type entry = { e_id : string; e_outcome : outcome; e_attempts : int; e_bytes : int }

type journal

(** Open (or, with [resume], reopen-and-replay) the journal at [path].
    Returns the journal in append mode and the completed entries (empty
    unless resuming).  @raise Error on a malformed journal header. *)
val journal_open : path:string -> resume:bool -> journal * entry list

(** Record that an attempt of [id] was dispatched. *)
val log_start : journal -> id:string -> attempt:int -> unit

(** Record [id]'s single, final outcome.  Call exactly once per job, and
    only after its output is durably in place. *)
val log_done :
  journal -> id:string -> outcome:outcome -> attempts:int -> bytes:int -> unit

val journal_close : journal -> unit
