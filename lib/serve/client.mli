(** A blocking client for the [dialegg-serve] daemon.

    One connection, one request at a time (the daemon replies in
    request order per connection).  {!optimize} transparently honors
    the daemon's load-shedding: a [C_overloaded] reply is retried after
    the hinted delay, up to [retries] times. *)

exception Error of string

type t

(** Connect to a daemon's Unix-domain socket.
    @raise Error when nothing is listening there. *)
val connect : string -> t

val close : t -> unit

(** Round-trip an optimization request.  [deadline_ms] is forwarded to
    the daemon, which tightens per-function budgets to fit it.
    [retries] (default 3) bounds how many [C_overloaded] sheds are
    retried before giving up.
    @raise Error on a daemon-side error reply, persistent overload, or
    a broken connection. *)
val optimize :
  ?deadline_ms:float -> ?retries:int -> t -> string -> Protocol.serve_reply

(** Fetch the daemon's counters. *)
val stats : t -> Protocol.daemon_stats

(** Liveness probe: true iff the daemon answers a ping. *)
val ping : t -> bool

(** [with_connection path f] connects, runs [f], and always closes. *)
val with_connection : string -> (t -> 'a) -> 'a
