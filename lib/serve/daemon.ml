(** The persistent optimization daemon; see the interface for the model. *)

exception Error of string

let now () = Unix.gettimeofday ()

type config = {
  socket_path : string;
  pool : int;
  max_queue : int;
  retries : int;
  job_timeout : float;
  grace : float;
  heartbeat : float;
  recycle_jobs : int;
  recycle_rss_mb : float;
  cache_dir : string option;
  cache_capacity : int;
  pipeline : Dialegg.Pipeline.config;
  rules_path : string option;
  fault : Dialegg.Faults.serve_fault option;
  verbose : bool;
}

let default_config =
  {
    socket_path = "dialegg.sock";
    pool = 2;
    max_queue = 64;
    retries = 2;
    job_timeout = 60.;
    grace = 1.;
    heartbeat = 5.;
    recycle_jobs = 256;
    recycle_rss_mb = 2048.;
    cache_dir = Dialegg.Disk_cache.default_dir ();
    cache_capacity = 512;
    pipeline = Dialegg.Pipeline.default_config;
    rules_path = None;
    fault = None;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type client = {
  cl_fd : Unix.file_descr;
  cl_reader : Protocol.reader;
  mutable cl_alive : bool;
}

(* One client request in flight: its own parsed module (so concurrent
   requests never share mutable ops), with per-function results spliced
   in as they arrive. *)
type req = {
  rq_client : client;
  rq_module : Mlir.Ir.op;
  mutable rq_waiting : int;  (** function jobs still outstanding *)
  mutable rq_marks : (string * Protocol.cache_mark) list;  (** reversed *)
  mutable rq_degraded : int;
  mutable rq_failed : string option;
  rq_started : float;
}

(* One function job.  [jb_key = Some k] means the result is eligible for
   the cache under [k]: first attempt, base (un-tightened) config, no
   injected fault.  Requests needing the same key coalesce as waiters. *)
type job = {
  jb_id : string;
  jb_key : string option;
  jb_name : string;
  jb_src : string;
  jb_config : Dialegg.Pipeline.config;
  mutable jb_attempt : int;
  mutable jb_waiters : (req * Mlir.Ir.op) list;
  mutable jb_fault : Dialegg.Faults.proc_kind option;
}

type worker = {
  dw_pid : int;
  dw_to : Unix.file_descr;
  dw_from : Unix.file_descr;
  dw_reader : Protocol.reader;
  mutable dw_job : job option;
  mutable dw_deadline : float;  (** 0. = no deadline armed *)
  mutable dw_killing : bool;
  mutable dw_jobs : int;
  mutable dw_ping_pending : bool;
  mutable dw_last_beat : float;
}

type state = {
  cfg : config;
  mutable pipeline : Dialegg.Pipeline.config;  (** pre-warmed; swapped on SIGHUP *)
  cache : Cache.t;
  mutable listen_fd : Unix.file_descr option;
  sig_r : Unix.file_descr;
  sig_w : Unix.file_descr;
  mutable workers : worker list;
  mutable clients : client list;
  mutable queue : job list;  (** FIFO, head = next to dispatch *)
  mutable draining : bool;
  mutable open_reqs : int;
  started : float;
  mutable job_seq : int;
  mutable dispatched : int;  (** lifetime dispatches, for fault triggers *)
  (* counters, mirrored into Protocol.daemon_stats *)
  mutable n_requests : int;
  mutable n_funcs : int;
  mutable n_hits_mem : int;
  mutable n_hits_disk : int;
  mutable n_misses : int;
  mutable n_shed : int;
  mutable n_errors : int;
  mutable n_deadline_misses : int;
  mutable n_reloads : int;
  mutable n_reload_failures : int;
  mutable n_respawns : int;
  mutable n_recycled : int;
  mutable latencies : float list;  (** most recent first, ms, bounded *)
}

let verbose st fmt =
  Fmt.kstr (fun s -> if st.cfg.verbose then Fmt.epr "[dialegg-serve] %s@." s) fmt

let is_idle w = w.dw_job = None

(* ------------------------------------------------------------------ *)
(* Socket lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

(* Claim the socket path: refuse to start over a live daemon, silently
   recover a stale socket left by a crash (e.g. a mid-drain SIGKILL). *)
let claim_socket path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      raise (Error (Printf.sprintf "a daemon is already serving on %s" path))
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ()))
  | _ ->
    raise (Error (Printf.sprintf "%s exists and is not a socket" path))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Error
          (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))));
  Unix.listen fd 64;
  fd

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let spawn st =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  match Unix.fork () with
  | 0 ->
    (* child: drop every fd that is not this worker's own pipe pair —
       an inherited listen socket or sibling pipe would hold resources
       open across the whole daemon lifetime *)
    let close_q fd = try Unix.close fd with Unix.Unix_error _ -> () in
    close_q req_w;
    close_q resp_r;
    (match st.listen_fd with Some fd -> close_q fd | None -> ());
    close_q st.sig_r;
    close_q st.sig_w;
    List.iter (fun c -> close_q c.cl_fd) st.clients;
    List.iter
      (fun w ->
        close_q w.dw_to;
        close_q w.dw_from)
      st.workers;
    Worker.main ~in_fd:req_r ~out_fd:resp_w
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    Unix.set_nonblock resp_r;
    let w =
      {
        dw_pid = pid;
        dw_to = req_w;
        dw_from = resp_r;
        dw_reader = Protocol.reader resp_r;
        dw_job = None;
        dw_deadline = 0.;
        dw_killing = false;
        dw_jobs = 0;
        dw_ping_pending = false;
        dw_last_beat = now ();
      }
    in
    st.workers <- st.workers @ [ w ];
    verbose st "worker pid %d spawned" pid

let reap_worker st w =
  (try Unix.close w.dw_to with Unix.Unix_error _ -> ());
  (try Unix.close w.dw_from with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.dw_pid) with Unix.Unix_error _ -> ());
  st.workers <- List.filter (fun x -> x != w) st.workers

(* Resident set size from /proc (Linux); 0. where unreadable. *)
let rss_mb pid =
  match open_in (Printf.sprintf "/proc/%d/statm" pid) with
  | exception Sys_error _ -> 0.
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match String.split_on_char ' ' (input_line ic) with
        | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> float_of_int pages *. 4096. /. (1024. *. 1024.)
          | None -> 0.)
        | _ -> 0.
        | exception End_of_file -> 0.)

(* ------------------------------------------------------------------ *)
(* Client I/O                                                          *)
(* ------------------------------------------------------------------ *)

(* Replies use a blocking write under SO_SNDTIMEO: a client that stops
   reading for longer than the send timeout is dropped, never allowed to
   wedge the daemon. *)
let send_client st cl msg =
  if cl.cl_alive then begin
    try
      Unix.clear_nonblock cl.cl_fd;
      Protocol.write_message cl.cl_fd msg;
      Unix.set_nonblock cl.cl_fd
    with Unix.Unix_error _ | Sys_error _ ->
      verbose st "dropping unresponsive client";
      cl.cl_alive <- false
  end

let drop_client st cl =
  cl.cl_alive <- false;
  (try Unix.close cl.cl_fd with Unix.Unix_error _ -> ());
  st.clients <- List.filter (fun c -> c != cl) st.clients

let accept_client st fd =
  match Unix.accept ~cloexec:true fd with
  | cl_fd, _ ->
    Unix.set_nonblock cl_fd;
    (try Unix.setsockopt_float cl_fd Unix.SO_SNDTIMEO 10.
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    st.clients <-
      { cl_fd; cl_reader = Protocol.reader cl_fd; cl_alive = true }
      :: st.clients
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let record_latency st ms =
  let keep = 1024 in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  st.latencies <- take keep (ms :: st.latencies)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let stats st : Protocol.daemon_stats =
  let mem_entries, disk_entries, disk_bytes = Cache.stats st.cache in
  let sorted = Array.of_list st.latencies in
  Array.sort compare sorted;
  {
    Protocol.ds_requests = st.n_requests;
    ds_funcs = st.n_funcs;
    ds_hits_mem = st.n_hits_mem;
    ds_hits_disk = st.n_hits_disk;
    ds_misses = st.n_misses;
    ds_shed = st.n_shed;
    ds_errors = st.n_errors;
    ds_deadline_misses = st.n_deadline_misses;
    ds_reloads = st.n_reloads;
    ds_reload_failures = st.n_reload_failures;
    ds_respawns = st.n_respawns;
    ds_recycled = st.n_recycled;
    ds_workers = List.length st.workers;
    ds_queue = List.length st.queue;
    ds_uptime_s = now () -. st.started;
    ds_cache_mem_entries = mem_entries;
    ds_cache_disk_entries = disk_entries;
    ds_cache_disk_bytes = disk_bytes;
    ds_p50_ms = percentile sorted 0.50;
    ds_p99_ms = percentile sorted 0.99;
    ds_draining = st.draining;
  }

(* The persisted "index": a human-readable snapshot of the counters and
   store shape, committed atomically beside the cache entries on drain.
   The entries themselves are self-describing, so recovery never needs
   this file — a mid-drain kill loses nothing but the report. *)
let persist_index st =
  match st.cfg.cache_dir with
  | None -> ()
  | Some dir ->
    let s = stats st in
    let body =
      Fmt.str "dialegg-serve-index 1@\n%a@\n" Protocol.pp_daemon_stats s
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    (try Atomic_io.write_atomic ~path:(Filename.concat dir "serve-index") body
     with Sys_error _ | Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Request completion                                                  *)
(* ------------------------------------------------------------------ *)

let trip_cache_corrupt st =
  match st.cfg.fault with
  | Some { Dialegg.Faults.sf_kind = Dialegg.Faults.S_cache_corrupt; sf_at }
    when st.n_requests = sf_at ->
    let n = Cache.corrupt_disk_entries st.cache in
    verbose st "fault: truncated %d cache entr(ies)" n
  | _ -> ()

let finish_req st (r : req) =
  st.n_requests <- st.n_requests + 1;
  st.open_reqs <- st.open_reqs - 1;
  (match r.rq_failed with
  | Some msg ->
    st.n_errors <- st.n_errors + 1;
    send_client st r.rq_client (Protocol.C_error msg)
  | None ->
    let out = Mlir.Printer.module_to_string r.rq_module in
    let latency = now () -. r.rq_started in
    record_latency st (latency *. 1000.);
    send_client st r.rq_client
      (Protocol.C_reply
         {
           Protocol.sv_output = out;
           sv_degraded = r.rq_degraded;
           sv_marks = List.rev r.rq_marks;
           sv_latency_s = latency;
         }));
  trip_cache_corrupt st

let req_job_done st (r : req) =
  r.rq_waiting <- r.rq_waiting - 1;
  if r.rq_waiting = 0 then finish_req st r

(* ------------------------------------------------------------------ *)
(* Job completion / failure                                            *)
(* ------------------------------------------------------------------ *)

let deliver_ok st (j : job) ~output ~degraded =
  (match j.jb_key with
  | Some k when j.jb_attempt = 0 && j.jb_fault = None ->
    Cache.add st.cache k { Cache.ce_output = output; ce_degraded = degraded }
  | _ -> ());
  List.iter
    (fun (r, op) ->
      (match Supervisor.splice_function op output with
      | () -> r.rq_degraded <- r.rq_degraded + degraded
      | exception _ ->
        r.rq_failed <-
          Some (Printf.sprintf "@%s: worker returned an unspliceable result"
                  j.jb_name));
      req_job_done st r)
    j.jb_waiters

(* Retries exhausted.  A pipeline error under the [Fail] policy fails
   the request (exactly what a cold run would do); a worker crash —
   which a cold run cannot express — degrades to the identity body, the
   batch driver's contract. *)
let deliver_failed st (j : job) ~(crash : bool) msg =
  List.iter
    (fun (r, _op) ->
      if crash || j.jb_config.Dialegg.Pipeline.on_limit <> Dialegg.Pipeline.Fail
      then r.rq_degraded <- r.rq_degraded + 1
      else r.rq_failed <- Some (Printf.sprintf "@%s: %s" j.jb_name msg);
      req_job_done st r)
    j.jb_waiters

let job_failed st (j : job) ~crash msg =
  if j.jb_attempt < st.cfg.retries then begin
    j.jb_attempt <- j.jb_attempt + 1;
    (* a fault injected on attempt 0 is spent; the retry runs clean *)
    j.jb_fault <- None;
    verbose st "%s: attempt %d failed (%s); retrying" j.jb_id j.jb_attempt msg;
    st.queue <- st.queue @ [ j ]
  end
  else begin
    verbose st "%s: retries exhausted (%s)" j.jb_id msg;
    deliver_failed st j ~crash msg
  end

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let find_coalesce st key =
  let in_queue =
    List.find_opt (fun j -> j.jb_key = Some key && j.jb_attempt = 0) st.queue
  in
  match in_queue with
  | Some _ as r -> r
  | None ->
    List.find_map
      (fun w ->
        match w.dw_job with
        | Some j when j.jb_key = Some key && j.jb_attempt = 0 -> Some j
        | _ -> None)
      st.workers

let retry_after st =
  let backlog = List.length st.queue + 1 in
  let pool = Stdlib.max 1 st.cfg.pool in
  Stdlib.min 30. (0.05 *. float_of_int (backlog / pool + 1) *. 10.)

let admit st cl (srq : Protocol.serve_request) =
  if st.draining then
    send_client st cl (Protocol.C_error "daemon is draining; not accepting work")
  else begin
    let t0 = now () in
    let deadline =
      Option.map (fun ms -> t0 +. (ms /. 1000.)) srq.Protocol.sv_deadline_ms
    in
    match
      let m = Mlir.Parser.parse_module srq.Protocol.sv_source in
      (match Dialegg.Validate.verify_diags ~code:"invalid-input" m with
      | [] -> ()
      | diags ->
        raise
          (Dialegg.Pipeline.Error
             (Fmt.str "input module fails verification:@\n%a"
                Egglog.Diag.pp_list diags)));
      m
    with
    | exception Mlir.Parser.Syntax_error { line; col; msg } ->
      st.n_errors <- st.n_errors + 1;
      send_client st cl
        (Protocol.C_error (Printf.sprintf "mlir parse: %d:%d: %s" line col msg))
    | exception Dialegg.Pipeline.Error msg ->
      st.n_errors <- st.n_errors + 1;
      send_client st cl (Protocol.C_error msg)
    | exception e ->
      st.n_errors <- st.n_errors + 1;
      send_client st cl (Protocol.C_error (Printexc.to_string e))
    | m ->
      let funcs =
        List.filter
          (fun op -> op.Mlir.Ir.op_name = "func.func")
          (Mlir.Ir.module_ops m)
      in
      let r =
        {
          rq_client = cl;
          rq_module = m;
          rq_waiting = 0;
          rq_marks = [];
          rq_degraded = 0;
          rq_failed = None;
          rq_started = t0;
        }
      in
      st.n_funcs <- st.n_funcs + List.length funcs;
      (* cache pass first: a fully-warm request costs no queue slots and
         is served even under full load or a zero-length queue *)
      let misses = ref [] in
      List.iter
        (fun op ->
          let name = Mlir.Ir.func_name op in
          let src = Mlir.Printer.op_to_string op in
          let key = Cache.key ~config:st.pipeline ~src in
          match Cache.find st.cache key with
          | Some (entry, mark) -> (
            match Supervisor.splice_function op entry.Cache.ce_output with
            | () ->
              (match mark with
              | Protocol.Sv_hit_mem -> st.n_hits_mem <- st.n_hits_mem + 1
              | Protocol.Sv_hit_disk -> st.n_hits_disk <- st.n_hits_disk + 1
              | Protocol.Sv_miss -> ());
              r.rq_degraded <- r.rq_degraded + entry.Cache.ce_degraded;
              r.rq_marks <- (name, mark) :: r.rq_marks
            | exception _ ->
              (* an entry that no longer splices is as good as corrupt *)
              misses := (op, name, src, key) :: !misses)
          | None -> misses := (op, name, src, key) :: !misses)
        funcs;
      let misses = List.rev !misses in
      let deadline_left =
        match deadline with None -> infinity | Some d -> d -. now ()
      in
      if misses <> [] && deadline_left <= 0. then begin
        st.n_deadline_misses <- st.n_deadline_misses + 1;
        st.n_errors <- st.n_errors + 1;
        send_client st cl (Protocol.C_error "deadline exceeded before dispatch")
      end
      else begin
        (* deadline propagation: tighten the per-function budget when the
           client allows less than the configured one.  A tightened run
           is not what a cold run would produce, so it is never cached. *)
        let job_config, cacheable =
          match st.pipeline.Dialegg.Pipeline.timeout with
          | Some t when t <= deadline_left -> (st.pipeline, true)
          | None when deadline_left = infinity -> (st.pipeline, true)
          | _ ->
            ( { st.pipeline with Dialegg.Pipeline.timeout = Some deadline_left },
              false )
        in
        let fresh =
          List.filter
            (fun (_, _, _, key) ->
              not (cacheable && find_coalesce st key <> None))
            misses
        in
        if
          List.length st.queue + List.length fresh > st.cfg.max_queue
          && fresh <> []
        then begin
          st.n_shed <- st.n_shed + 1;
          send_client st cl
            (Protocol.C_overloaded { retry_after_s = retry_after st })
        end
        else begin
          st.open_reqs <- st.open_reqs + 1;
          List.iter
            (fun (op, name, src, key) ->
              st.n_misses <- st.n_misses + 1;
              r.rq_marks <- (name, Protocol.Sv_miss) :: r.rq_marks;
              r.rq_waiting <- r.rq_waiting + 1;
              match if cacheable then find_coalesce st key else None with
              | Some j -> j.jb_waiters <- (r, op) :: j.jb_waiters
              | None ->
                st.job_seq <- st.job_seq + 1;
                let j =
                  {
                    jb_id = Printf.sprintf "%s#%d" name st.job_seq;
                    jb_key = (if cacheable then Some key else None);
                    jb_name = name;
                    jb_src = src;
                    jb_config = job_config;
                    jb_attempt = 0;
                    jb_waiters = [ (r, op) ];
                    jb_fault = None;
                  }
                in
                st.queue <- st.queue @ [ j ])
            misses;
          if r.rq_waiting = 0 then finish_req st r
        end
      end
  end

(* ------------------------------------------------------------------ *)
(* Dispatch / watchdog / heartbeat                                     *)
(* ------------------------------------------------------------------ *)

let worker_died st w ~respawn why =
  (match why with
  | `Garbage _ ->
    (try Unix.kill w.dw_pid Sys.sigkill with Unix.Unix_error _ -> ())
  | `Eof -> ());
  reap_worker st w;
  (match w.dw_job with
  | Some j ->
    w.dw_job <- None;
    let msg =
      match why with
      | `Garbage m -> "protocol garbage: " ^ m
      | `Eof -> if w.dw_killing then "watchdog timeout" else "worker died"
    in
    job_failed st j ~crash:true msg
  | None -> ());
  if respawn then begin
    st.n_respawns <- st.n_respawns + 1;
    spawn st
  end

let dispatch st =
  let rec go () =
    match (List.find_opt is_idle st.workers, st.queue) with
    | Some w, j :: rest ->
      st.queue <- rest;
      st.dispatched <- st.dispatched + 1;
      (match st.cfg.fault with
      | Some
          { Dialegg.Faults.sf_kind = Dialegg.Faults.S_hang_under_load; sf_at }
        when st.dispatched = sf_at ->
        j.jb_fault <- Some Dialegg.Faults.W_hang;
        verbose st "fault: arming worker-hang on dispatch %d" sf_at
      | _ -> ());
      let rq =
        {
          Protocol.rq_id = j.jb_id;
          rq_attempt = j.jb_attempt;
          rq_input = Protocol.J_text { name = j.jb_name; src = j.jb_src };
          rq_config =
            Supervisor.config_for_attempt j.jb_config ~attempt:j.jb_attempt;
          rq_fault = j.jb_fault;
        }
      in
      (match Protocol.write_message w.dw_to (Protocol.M_request rq) with
      | () ->
        w.dw_job <- Some j;
        w.dw_deadline <- now () +. st.cfg.job_timeout;
        w.dw_killing <- false;
        verbose st "%s: dispatched to pid %d (attempt %d)" j.jb_id w.dw_pid
          (j.jb_attempt + 1)
      | exception (Unix.Unix_error _ | Sys_error _) ->
        (* the worker died before reading: requeue the same attempt *)
        st.queue <- j :: st.queue;
        worker_died st w ~respawn:true `Eof);
      go ()
    | _ -> ()
  in
  go ()

let recycle_due st w =
  (st.cfg.recycle_jobs > 0 && w.dw_jobs >= st.cfg.recycle_jobs)
  || st.cfg.recycle_rss_mb > 0.
     && rss_mb w.dw_pid >= st.cfg.recycle_rss_mb

let maybe_recycle st w =
  if is_idle w && recycle_due st w then begin
    verbose st "recycling worker pid %d after %d job(s)" w.dw_pid w.dw_jobs;
    (* closing the request pipe is the graceful retire signal: the idle
       worker sees EOF and exits 0 *)
    reap_worker st w;
    st.n_recycled <- st.n_recycled + 1;
    if not st.draining then spawn st
  end

let watchdog st =
  let t = now () in
  List.iter
    (fun w ->
      let expired = w.dw_deadline > 0. && t >= w.dw_deadline in
      if expired then
        if not w.dw_killing then begin
          verbose st "pid %d unresponsive: SIGTERM" w.dw_pid;
          (try Unix.kill w.dw_pid Sys.sigterm with Unix.Unix_error _ -> ());
          w.dw_killing <- true;
          w.dw_deadline <- t +. st.cfg.grace
        end
        else begin
          verbose st "pid %d still unresponsive: SIGKILL" w.dw_pid;
          (try Unix.kill w.dw_pid Sys.sigkill with Unix.Unix_error _ -> ());
          w.dw_deadline <- t +. st.cfg.grace
        end)
    st.workers

let heartbeat st =
  if st.cfg.heartbeat > 0. then begin
    let t = now () in
    List.iter
      (fun w ->
        if
          is_idle w && (not w.dw_ping_pending)
          && t -. w.dw_last_beat >= st.cfg.heartbeat
        then begin
          match Protocol.write_message w.dw_to Protocol.M_ping with
          | () ->
            w.dw_ping_pending <- true;
            w.dw_deadline <- t +. Stdlib.max st.cfg.grace 2.
          | exception (Unix.Unix_error _ | Sys_error _) ->
            worker_died st w ~respawn:(not st.draining) `Eof
        end)
      (List.filter (fun _ -> true) st.workers)
  end

(* ------------------------------------------------------------------ *)
(* Worker events                                                       *)
(* ------------------------------------------------------------------ *)

let worker_readable st w =
  let rec drain_msgs () =
    match Protocol.poll w.dw_reader with
    | Protocol.Incomplete -> ()
    | Protocol.Msg Protocol.M_pong ->
      w.dw_ping_pending <- false;
      w.dw_last_beat <- now ();
      if is_idle w then w.dw_deadline <- 0.;
      drain_msgs ()
    | Protocol.Msg (Protocol.M_response resp) -> (
      match w.dw_job with
      | Some j when resp.Protocol.rs_id = j.jb_id ->
        w.dw_job <- None;
        w.dw_deadline <- 0.;
        w.dw_killing <- false;
        w.dw_jobs <- w.dw_jobs + 1;
        w.dw_last_beat <- now ();
        (match resp.Protocol.rs_result with
        | Ok output ->
          deliver_ok st j ~output ~degraded:resp.Protocol.rs_degraded
        | Error msg -> job_failed st j ~crash:false msg);
        maybe_recycle st w;
        (* recycling reaps the worker and closes its fds: stop here *)
        if List.memq w st.workers then drain_msgs ()
      | _ -> worker_died st w ~respawn:(not st.draining) (`Garbage "response for the wrong job"))
    | Protocol.Msg _ ->
      worker_died st w ~respawn:(not st.draining)
        (`Garbage "worker sent a non-response message")
    | Protocol.Eof -> worker_died st w ~respawn:(not st.draining) `Eof
    | Protocol.Garbage m -> worker_died st w ~respawn:(not st.draining) (`Garbage m)
  in
  drain_msgs ()

(* ------------------------------------------------------------------ *)
(* Client events                                                       *)
(* ------------------------------------------------------------------ *)

let client_readable st cl =
  let rec drain_msgs () =
    if cl.cl_alive then
      match Protocol.poll cl.cl_reader with
      | Protocol.Incomplete -> ()
      | Protocol.Eof | Protocol.Garbage _ -> drop_client st cl
      | Protocol.Msg (Protocol.C_optimize srq) ->
        admit st cl srq;
        drain_msgs ()
      | Protocol.Msg Protocol.C_stats_request ->
        send_client st cl (Protocol.C_stats (stats st));
        drain_msgs ()
      | Protocol.Msg Protocol.M_ping ->
        send_client st cl Protocol.M_pong;
        drain_msgs ()
      | Protocol.Msg _ -> drop_client st cl
  in
  drain_msgs ();
  if not cl.cl_alive then drop_client st cl

(* ------------------------------------------------------------------ *)
(* Signals: drain and reload                                           *)
(* ------------------------------------------------------------------ *)

let begin_drain st =
  if not st.draining then begin
    verbose st "drain requested: finishing %d open request(s)" st.open_reqs;
    st.draining <- true;
    (match st.listen_fd with
    | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      st.listen_fd <- None
    | None -> ())
  end

(* SIGHUP: re-read the rules file, push the candidate through every
   static tier, and only then swap it in.  Any failure — unreadable
   file, lint/vet/audit error — leaves the serving ruleset untouched. *)
let reload st =
  match st.cfg.rules_path with
  | None -> verbose st "reload requested but no --rules file to re-read"
  | Some path -> (
    match
      let ic = open_in_bin path in
      let rules =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Dialegg.Pipeline.prewarmed
        { st.cfg.pipeline with Dialegg.Pipeline.rules }
    with
    | fresh ->
      st.pipeline <- fresh;
      st.n_reloads <- st.n_reloads + 1;
      verbose st "reloaded ruleset from %s" path
    | exception e ->
      st.n_reload_failures <- st.n_reload_failures + 1;
      let msg =
        match e with
        | Dialegg.Pipeline.Error m -> m
        | Sys_error m -> m
        | e -> Printexc.to_string e
      in
      Fmt.epr "[dialegg-serve] reload failed, keeping old ruleset: %s@." msg)

let handle_signals st =
  let buf = Bytes.create 64 in
  match Unix.read st.sig_r buf 0 64 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | 0 -> ()
  | n ->
    String.iter
      (fun c ->
        match c with
        | 't' -> begin_drain st
        | 'h' -> reload st
        | _ -> ())
      (Bytes.sub_string buf 0 n)

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

let shutdown_workers st =
  List.iter
    (fun w -> try Unix.close w.dw_to with Unix.Unix_error _ -> ())
    st.workers;
  let deadline = now () +. Stdlib.max 1.0 st.cfg.grace in
  List.iter
    (fun w ->
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] w.dw_pid with
        | 0, _ ->
          if now () > deadline then begin
            (try Unix.kill w.dw_pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (try Unix.waitpid [] w.dw_pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
          end
          else begin
            ignore (Unix.select [] [] [] 0.02);
            wait ()
          end
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      wait ();
      try Unix.close w.dw_from with Unix.Unix_error _ -> ())
    st.workers;
  st.workers <- []

let drained st = st.draining && st.open_reqs = 0 && st.queue = []

let finish_drain st =
  (* the deterministic mid-drain-kill point: everything is answered,
     nothing is persisted yet — a restart must recover from the store
     alone *)
  (match st.cfg.fault with
  | Some { Dialegg.Faults.sf_kind = Dialegg.Faults.S_drain_kill; _ } ->
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ());
  persist_index st;
  shutdown_workers st;
  List.iter (fun cl -> try Unix.close cl.cl_fd with Unix.Unix_error _ -> ())
    st.clients;
  st.clients <- [];
  (try Sys.remove st.cfg.socket_path with Sys_error _ -> ());
  verbose st "drain complete"

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

let select_timeout st =
  let t = now () in
  let deadlines =
    List.filter_map
      (fun w -> if w.dw_deadline > 0. then Some w.dw_deadline else None)
      st.workers
  in
  let beats =
    if st.cfg.heartbeat > 0. then
      List.filter_map
        (fun w ->
          if is_idle w && not w.dw_ping_pending then
            Some (w.dw_last_beat +. st.cfg.heartbeat)
          else None)
        st.workers
    else []
  in
  match deadlines @ beats with
  | [] -> 1.0
  | ds -> Stdlib.min 1.0 (Stdlib.max 0.01 (List.fold_left Stdlib.min infinity ds -. t))

let run (cfg : config) =
  (* pre-warm before the first fork, so every worker inherits the
     memoized lint/vet/audit verdicts and the parsed prelude *)
  let pipeline =
    try Dialegg.Pipeline.prewarmed cfg.pipeline
    with Dialegg.Pipeline.Error m -> raise (Error ("rules rejected: " ^ m))
  in
  let listen_fd = claim_socket cfg.socket_path in
  let sig_r, sig_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock sig_r;
  Unix.set_nonblock sig_w;
  let st =
    {
      cfg;
      pipeline;
      cache = Cache.create ~capacity:cfg.cache_capacity ~dir:cfg.cache_dir ();
      listen_fd = Some listen_fd;
      sig_r;
      sig_w;
      workers = [];
      clients = [];
      queue = [];
      draining = false;
      open_reqs = 0;
      started = now ();
      job_seq = 0;
      dispatched = 0;
      n_requests = 0;
      n_funcs = 0;
      n_hits_mem = 0;
      n_hits_disk = 0;
      n_misses = 0;
      n_shed = 0;
      n_errors = 0;
      n_deadline_misses = 0;
      n_reloads = 0;
      n_reload_failures = 0;
      n_respawns = 0;
      n_recycled = 0;
      latencies = [];
    }
  in
  let notify c _ =
    try ignore (Unix.write_substring st.sig_w c 0 1)
    with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (notify "t"));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (notify "t"));
  (try Sys.set_signal Sys.sighup (Sys.Signal_handle (notify "h"))
   with Invalid_argument _ | Sys_error _ -> ());
  for _ = 1 to Stdlib.max 1 cfg.pool do
    spawn st
  done;
  verbose st "serving on %s (pool %d, cache %s)" cfg.socket_path cfg.pool
    (match cfg.cache_dir with Some d -> d | None -> "memory-only");
  let rec loop () =
    if drained st then finish_drain st
    else begin
      let fds =
        (match st.listen_fd with Some fd -> [ fd ] | None -> [])
        @ [ st.sig_r ]
        @ List.map (fun c -> c.cl_fd) st.clients
        @ List.map (fun w -> w.dw_from) st.workers
      in
      let readable, _, _ =
        match Unix.select fds [] [] (select_timeout st) with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
      in
      if List.mem st.sig_r readable then handle_signals st;
      (match st.listen_fd with
      | Some fd when List.mem fd readable -> accept_client st fd
      | _ -> ());
      List.iter
        (fun cl -> if List.mem cl.cl_fd readable then client_readable st cl)
        (List.filter (fun _ -> true) st.clients);
      List.iter
        (fun w -> if List.mem w.dw_from readable then worker_readable st w)
        (List.filter (fun _ -> true) st.workers);
      watchdog st;
      heartbeat st;
      if (not st.draining) || st.queue <> [] then begin
        if st.workers = [] && st.queue <> [] then spawn st;
        dispatch st
      end;
      loop ()
    end
  in
  loop ()
