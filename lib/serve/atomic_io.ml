(** Crash-safe file output: temp file + rename, with signal hygiene; see
    the interface for the model. *)

(* Temp paths that would be orphaned if we die right now.  The signal
   handler unlinks them, so an interrupted run never leaves a partially
   written output (or a stray temp) behind. *)
let temps = ref []

let register p = temps := p :: !temps
let unregister p = temps := List.filter (fun q -> q <> p) !temps

let cleanup_temps () =
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !temps;
  temps := []

let installed = ref false

let install_signal_cleanup () =
  if not !installed then begin
    installed := true;
    let handler signal =
      cleanup_temps ();
      (* re-deliver with the default disposition so the exit status still
         records death-by-signal for whoever is supervising *us* *)
      Sys.set_signal signal Sys.Signal_default;
      Unix.kill (Unix.getpid ()) signal
    in
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle handler)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end

let write_all fd data =
  let b = Bytes.unsafe_of_string data in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w =
        try Unix.write fd b off (n - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + w)
  in
  go 0

let write_atomic ?(fsync = true) ~path data =
  let dir = Filename.dirname path in
  (* same directory as the destination so the rename cannot cross a
     filesystem boundary (rename is only atomic within one) *)
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  register tmp;
  match
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd data;
        if fsync then Unix.fsync fd);
    Unix.rename tmp path
  with
  | () ->
    unregister tmp;
    if fsync then (
      (* make the rename itself durable; best-effort — some filesystems
         refuse to fsync a directory fd *)
      try
        let d = Unix.openfile dir [ O_RDONLY; O_CLOEXEC ] 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close d with Unix.Unix_error _ -> ())
          (fun () -> Unix.fsync d)
      with Unix.Unix_error _ -> ())
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    unregister tmp;
    raise e
