(** Blocking daemon client; see the interface for the model. *)

exception Error of string

type t = { fd : Unix.file_descr; reader : Protocol.reader }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> { fd; reader = Protocol.reader fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise
      (Error
         (Printf.sprintf "cannot reach a daemon on %s: %s" path
            (Unix.error_message e)))

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let roundtrip c msg =
  (match Protocol.write_message c.fd msg with
  | () -> ()
  | exception (Unix.Unix_error _ | Sys_error _) ->
    raise (Error "connection to the daemon broke mid-request"));
  match Protocol.read_blocking c.reader with
  | Protocol.Msg m -> m
  | Protocol.Eof -> raise (Error "the daemon closed the connection")
  | Protocol.Garbage m -> raise (Error ("protocol garbage from the daemon: " ^ m))
  | Protocol.Incomplete -> raise (Error "unreachable: blocking read returned")

let optimize ?deadline_ms ?(retries = 3) c source =
  let request =
    Protocol.C_optimize
      { Protocol.sv_source = source; sv_deadline_ms = deadline_ms }
  in
  let rec go shed_left =
    match roundtrip c request with
    | Protocol.C_reply r -> r
    | Protocol.C_error m -> raise (Error m)
    | Protocol.C_overloaded { retry_after_s } ->
      if shed_left <= 0 then
        raise (Error "daemon persistently overloaded; giving up")
      else begin
        ignore (Unix.select [] [] [] (Stdlib.max 0.01 retry_after_s));
        go (shed_left - 1)
      end
    | _ -> raise (Error "unexpected reply from the daemon")
  in
  go retries

let stats c =
  match roundtrip c Protocol.C_stats_request with
  | Protocol.C_stats s -> s
  | _ -> raise (Error "unexpected reply to a stats request")

let ping c =
  match roundtrip c Protocol.M_ping with
  | Protocol.M_pong -> true
  | _ -> false
  | exception Error _ -> false

let with_connection path f =
  let c = connect path in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
