(** The daemon's content-addressed result cache.

    [dialegg-serve] memoizes per-function saturation results.  The key
    is a digest over everything that can influence the output bytes: a
    cache-format version string, the full pipeline configuration
    (ruleset text, schedule, budgets, cost-model-bearing rules, engine,
    degradation policy — everything except fault injection and the
    cache directory itself, which cannot change the result), and the
    printed single-function module.  Two requests share an entry iff a
    cold run would produce byte-identical output for them, so a hit is
    indistinguishable from a recompute.

    Storage is two-level:

    - an in-process LRU (bounded entry count) for the hot set;
    - an on-disk store of [KEY.result] files beside the vet/audit
      verdict caches, committed durably through {!Dialegg.Disk_cache}
      (temp + fsync + rename + parent fsync, then size-capped pruning).

    Reads tolerate arbitrary corruption: a torn, truncated, or
    wrong-format entry is deleted and reported as a miss — the daemon
    recomputes, it never serves bad bytes. *)

type t

(** [create ~dir ()] makes a cache backed by the on-disk store [dir]
    ([None] = memory-only).  [capacity] bounds the in-process LRU
    (default 512 entries; [0] disables the memory tier). *)
val create : ?capacity:int -> dir:string option -> unit -> t

(** The content address of one function job: digest of the format
    version, the normalized config, and the function module text. *)
val key : config:Dialegg.Pipeline.config -> src:string -> string

(** A cached result: the printed optimized function module and how many
    functions inside it degraded (0 or 1). *)
type entry = { ce_output : string; ce_degraded : int }

(** Look a key up, promoting disk hits into the memory tier.  Tells the
    caller which tier answered (for stats and [--stats] marks). *)
val find : t -> string -> (entry * Protocol.cache_mark) option

(** Insert a computed result into both tiers.  Disk commit is durable
    and best-effort (a read-only store degrades to memory-only). *)
val add : t -> string -> entry -> unit

(** (memory entries, disk entries, disk bytes) — the disk numbers scan
    the store directory. *)
val stats : t -> int * int * int

(** Corrupt one on-disk entry in place (truncate it mid-payload) — the
    [cache-corrupt] fault injection hook.  Returns how many entries were
    damaged. *)
val corrupt_disk_entries : t -> int
