(** The supervised worker pool: the parent side of the batch driver.

    {2 Model}

    [run] forks a bounded pool of workers (plain [Unix.fork], no exec —
    each child drops into {!Worker.main} and never returns), connects
    each through a request/response pipe pair speaking {!Protocol}, and
    dispatches jobs until every job has exactly one outcome.

    Supervision per job:
    - a wall-clock watchdog: past [job_timeout] the worker gets SIGTERM,
      then SIGKILL after [grace] more seconds;
    - exit classification: job-level errors come back over the protocol
      and leave the worker alive; everything else — nonzero exit, death
      by signal, a watchdog kill, protocol garbage — costs the worker
      its life and the job an attempt;
    - retry with exponential backoff ([backoff] · 2ⁿ) and per-attempt
      budget tightening via {!Egglog.Limits.for_attempt}, up to
      [retries] retries;
    - when the budget is exhausted, degradation to the identity output
      (the input parsed and re-printed), never a missing file.

    Workers that die are replaced; the pool keeps its size as long as
    work remains.  A full batch is journaled through {!Queue} when
    [journal_path] is set, and [resume] skips journaled-complete jobs
    whose outputs still exist.

    Non-faulted outputs are byte-identical to a sequential
    [dialegg-opt] run of the same inputs: workers run the exact
    {!Dialegg.Pipeline.optimize_source} path and the supervisor writes
    their bytes unmodified (atomically — temp file + rename). *)

exception Error of string

(** Why a job attempt (or a whole job) was charged a failure. *)
type fail_class =
  | C_job_error of string  (** worker alive; pipeline raised *)
  | C_nonzero of int  (** worker exited with a nonzero status *)
  | C_signal of int  (** worker died of an un-sent signal *)
  | C_hang  (** the watchdog had to kill it *)
  | C_garbage of string  (** protocol stream corrupt *)

val fail_class_name : fail_class -> string
val pp_fail_class : Format.formatter -> fail_class -> unit

type config = {
  pool : int;  (** max concurrent workers *)
  retries : int;  (** retries after the first attempt *)
  job_timeout : float;  (** per-job wall-clock budget, seconds *)
  grace : float;  (** SIGTERM → SIGKILL escalation delay *)
  backoff : float;  (** base retry delay, seconds (doubles per attempt) *)
  pipeline : Dialegg.Pipeline.config;
  faults : Dialegg.Faults.proc_fault list;  (** injected process faults *)
  journal_path : string option;
  resume : bool;
  verbose : bool;  (** narrate dispatch/kill/retry decisions on stderr *)
}

(** pool 4, 2 retries, 60 s timeout, 1 s grace, 50 ms base backoff, no
    journal, no injection. *)
val default_config : config

type job_outcome =
  | J_optimized of { degraded : int }
      (** optimized output written; [degraded] functions fell back to
          identity {e inside} the worker (stage-level degradation) *)
  | J_identity of fail_class
      (** retries exhausted; identity output written.  The class is the
          {e last} attempt's failure. *)
  | J_failed of string  (** even the identity fallback was impossible *)
  | J_resumed of Queue.outcome  (** skipped: journaled complete *)

type job_result = {
  jr_job : Queue.job;
  jr_outcome : job_outcome;
  jr_attempts : int;
  jr_output : string option;
      (** module-mode only: the printed function to splice back.
          Directory-mode outputs go straight to disk. *)
}

type batch_report = { br_results : job_result list }

(** No [J_failed] outcome — the batch driver's exit-0 condition. *)
val report_ok : batch_report -> bool

(** (optimized, identity, failed, resumed) *)
val counts : batch_report -> int * int * int * int

val pp_outcome : Format.formatter -> job_outcome -> unit
val pp_report : Format.formatter -> batch_report -> unit

(** Tighten a pipeline config for retry [attempt] (0 = first attempt,
    unchanged) by routing its budgets through
    {!Egglog.Limits.for_attempt}. *)
val config_for_attempt : Dialegg.Pipeline.config -> attempt:int -> Dialegg.Pipeline.config

(** Run the batch.  Returns one result per job, in the input order.
    @raise Error on an empty batch, duplicate job ids, or a
    crash-looping pool. *)
val run : ?config:config -> Queue.job list -> batch_report

(** Module mode: splice each [J_func] job's output function back into
    the parsed module (identity/failed jobs leave the original body). *)
val splice_results : Mlir.Ir.op -> batch_report -> unit

(** [splice_function func src] replaces [func]'s attributes and regions
    with those of the single function printed in [src] (the same splice
    the pipeline's identity fallback and {!splice_results} use; the
    daemon reassembles cached per-function results with it).
    @raise Error if [src] is not exactly one function. *)
val splice_function : Mlir.Ir.op -> string -> unit
