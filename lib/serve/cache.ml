(** Content-addressed per-function result cache; see the interface for
    the model. *)

(* Bump on any change to the key normalization or the entry layout:
   old entries must never satisfy new requests. *)
let format_version = "dialegg-result-cache-1"
let disk_magic = format_version ^ "\n"

type entry = { ce_output : string; ce_degraded : int }

type mem_slot = { ms_entry : entry; mutable ms_tick : int }

type t = {
  dir : string option;
  capacity : int;
  mem : (string, mem_slot) Hashtbl.t;
  mutable tick : int;
}

let create ?(capacity = 512) ~dir () =
  { dir; capacity = Stdlib.max 0 capacity; mem = Hashtbl.create 64; tick = 0 }

let key ~(config : Dialegg.Pipeline.config) ~src =
  (* Everything that can steer the output bytes participates; the two
     fields that cannot are pinned so they never fragment the cache:
     [inject] (faults are for tests, and a faulted result must not be
     memoized anyway — the daemon skips [add] for faulted jobs) and
     [vet_cache_dir] (where verdicts are memoized does not change
     them). *)
  let normalized =
    { config with Dialegg.Pipeline.inject = None; vet_cache_dir = None }
  in
  Digest.to_hex
    (Digest.string
       (disk_magic ^ Marshal.to_string normalized [] ^ "\x00" ^ src))

(* ------------------------------------------------------------------ *)
(* Memory tier                                                         *)
(* ------------------------------------------------------------------ *)

let bump t slot =
  t.tick <- t.tick + 1;
  slot.ms_tick <- t.tick

let evict_if_full t =
  if Hashtbl.length t.mem > t.capacity then begin
    (* O(n) victim scan; n is the (small, bounded) hot set *)
    let victim =
      Hashtbl.fold
        (fun k slot acc ->
          match acc with
          | Some (_, best) when best <= slot.ms_tick -> acc
          | _ -> Some (k, slot.ms_tick))
        t.mem None
    in
    match victim with Some (k, _) -> Hashtbl.remove t.mem k | None -> ()
  end

let mem_add t k entry =
  if t.capacity > 0 then begin
    Hashtbl.replace t.mem k { ms_entry = entry; ms_tick = 0 };
    bump t (Hashtbl.find t.mem k);
    evict_if_full t
  end

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

let entry_file k = k ^ ".result"

let disk_path t k =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (entry_file k))

let disk_read t k =
  match disk_path t k with
  | None -> None
  | Some path -> (
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic -> (
      let parse () =
        let magic = really_input_string ic (String.length disk_magic) in
        if magic <> disk_magic then failwith "format version mismatch";
        let stored_key, output, degraded =
          (Marshal.from_channel ic : string * string * int)
        in
        (* a renamed / collided file must not satisfy the wrong key *)
        if stored_key <> k then failwith "key mismatch";
        { ce_output = output; ce_degraded = degraded }
      in
      match Fun.protect ~finally:(fun () -> close_in_noerr ic) parse with
      | entry ->
        Dialegg.Disk_cache.touch path;
        Some entry
      | exception _ ->
        (* torn, truncated, corrupt, or stale-format: delete and miss —
           recomputing is always safe, serving bad bytes never is *)
        (try Sys.remove path with Sys_error _ -> ());
        None))

let disk_write t k entry =
  match t.dir with
  | None -> ()
  | Some dir ->
    Dialegg.Disk_cache.write_entry ~dir ~file:(entry_file k) (fun oc ->
        output_string oc disk_magic;
        Marshal.to_channel oc
          ((k, entry.ce_output, entry.ce_degraded) : string * string * int)
          [])

(* ------------------------------------------------------------------ *)
(* The two-level interface                                             *)
(* ------------------------------------------------------------------ *)

let find t k =
  match Hashtbl.find_opt t.mem k with
  | Some slot ->
    bump t slot;
    Some (slot.ms_entry, Protocol.Sv_hit_mem)
  | None -> (
    match disk_read t k with
    | Some entry ->
      mem_add t k entry;
      Some (entry, Protocol.Sv_hit_disk)
    | None -> None)

let add t k entry =
  mem_add t k entry;
  disk_write t k entry

let stats t =
  let disk_entries, disk_bytes =
    match t.dir with
    | None -> (0, 0)
    | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> (0, 0)
      | names ->
        Array.fold_left
          (fun ((n, b) as acc) name ->
            if Filename.check_suffix name ".result" then
              match Unix.stat (Filename.concat dir name) with
              | { Unix.st_kind = Unix.S_REG; st_size; _ } ->
                (n + 1, b + st_size)
              | _ | (exception Unix.Unix_error _) -> acc
            else acc)
          (0, 0) names)
  in
  (Hashtbl.length t.mem, disk_entries, disk_bytes)

let corrupt_disk_entries t =
  match t.dir with
  | None -> 0
  | Some dir -> (
    match Sys.readdir dir with
    | exception Sys_error _ -> 0
    | names ->
      Array.fold_left
        (fun n name ->
          if not (Filename.check_suffix name ".result") then n
          else
            let path = Filename.concat dir name in
            match Unix.stat path with
            | { Unix.st_kind = Unix.S_REG; st_size; _ } when st_size > 4 -> (
              (* keep a valid-looking prefix, drop the tail: a torn write *)
              match Unix.openfile path [ O_WRONLY ] 0 with
              | fd ->
                (try Unix.ftruncate fd (st_size / 2)
                 with Unix.Unix_error _ -> ());
                (try Unix.close fd with Unix.Unix_error _ -> ());
                n + 1
              | exception Unix.Unix_error _ -> n)
            | _ | (exception Unix.Unix_error _) -> n)
        0 names)
