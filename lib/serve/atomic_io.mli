(** Crash-safe output files: write-to-temp + atomic rename, plus signal
    hygiene so an interrupted process never leaves a truncated output (or
    an orphaned temp file) behind.

    Every writer in the project that produces a user-visible artifact —
    [dialegg-opt -o], [mlir-opt -o], and each job output of the batch
    driver — goes through {!write_atomic}: readers of the destination
    path observe either the complete old contents or the complete new
    contents, never a torn write.  Combined with
    {!install_signal_cleanup}, a SIGINT/SIGTERM mid-write removes the
    in-flight temp file and then re-delivers the signal with the default
    disposition, so the exit status still records death-by-signal. *)

(** Write [data] to [path] via a temp file in the same directory and an
    atomic [rename].  With [fsync] (default true) the data is fsync'd
    before the rename and the directory after it, so the result survives
    a power cut as well as a crash. *)
val write_atomic : ?fsync:bool -> path:string -> string -> unit

(** Install SIGINT/SIGTERM handlers that unlink any in-flight temp files
    and re-deliver the signal.  Idempotent. *)
val install_signal_cleanup : unit -> unit

(** [write_all fd s] writes all of [s], retrying on partial writes and
    [EINTR].  Exposed for the journal and the worker protocol. *)
val write_all : Unix.file_descr -> string -> unit
