(** The child side of the batch driver; see the interface for the model. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Enact a process-level injected fault.  Each arm reproduces one way a
   real worker dies: [W_hang] ignores SIGTERM so only the supervisor's
   SIGKILL escalation reclaims the slot; [W_segv] aborts via a fatal
   signal, bypassing [Stdlib.exit] and every [at_exit] hook; [W_garbage]
   corrupts the protocol stream and exits "successfully"; [W_oom] is
   killed with no warning, exactly like the kernel OOM killer. *)
let enact_fault out_fd (k : Dialegg.Faults.proc_kind) =
  match k with
  | Dialegg.Faults.W_hang ->
    Sys.set_signal Sys.sigterm Sys.Signal_ignore;
    while true do
      Unix.sleep 3600
    done
  | Dialegg.Faults.W_segv -> Unix.kill (Unix.getpid ()) Sys.sigabrt
  | Dialegg.Faults.W_garbage ->
    Atomic_io.write_all out_fd "!! this is not a dialegg protocol frame !!";
    Stdlib.exit 0
  | Dialegg.Faults.W_oom -> Unix.kill (Unix.getpid ()) Sys.sigkill

let describe_exn = function
  | Dialegg.Pipeline.Error m -> "pipeline: " ^ m
  | Egglog.Interp.Error m -> "egglog: " ^ m
  | Egglog.Parser.Error m -> "egglog parse: " ^ m
  | Mlir.Parser.Error m -> "mlir parse: " ^ m
  | Mlir.Parser.Syntax_error { line; col; msg } ->
    Printf.sprintf "mlir parse: %d:%d: %s" line col msg
  | Mlir.Typ.Parse_error m -> "type parse: " ^ m
  | Sys_error m -> m
  | Failure m -> m
  | Stack_overflow -> "stack overflow"
  | e -> Printexc.to_string e

let count_degraded (r : Dialegg.Pipeline.report) =
  List.length
    (List.filter
       (fun fr ->
         match fr.Dialegg.Pipeline.fr_outcome with
         | Dialegg.Pipeline.Degraded _ -> true
         | Dialegg.Pipeline.Optimized -> false)
       r.Dialegg.Pipeline.r_funcs)

let process (rq : Protocol.request) : Protocol.response =
  let respond result degraded =
    { Protocol.rs_id = rq.rq_id; rs_result = result; rs_degraded = degraded }
  in
  let optimize_one_func ~func src =
    let m = Mlir.Parser.parse_module src in
    match
      List.find_opt
        (fun op ->
          op.Mlir.Ir.op_name = "func.func" && Mlir.Ir.func_name op = func)
        (Mlir.Ir.module_ops m)
    with
    | None -> failwith (Printf.sprintf "no function @%s in the input" func)
    | Some op ->
      let fr = Dialegg.Pipeline.optimize_func_report ~config:rq.rq_config op in
      let degraded =
        match fr.Dialegg.Pipeline.fr_outcome with
        | Dialegg.Pipeline.Degraded _ -> 1
        | Dialegg.Pipeline.Optimized -> 0
      in
      (Mlir.Printer.op_to_string op, degraded)
  in
  match
    match rq.rq_input with
    | Protocol.J_file path ->
      (* the exact sequential dialegg-opt sequence, so batch outputs are
         byte-identical to one-process runs *)
      let out, report =
        Dialegg.Pipeline.optimize_source ~config:rq.rq_config ~file:path
          (read_file path)
      in
      (out, count_degraded report)
    | Protocol.J_func { path; func } ->
      optimize_one_func ~func (read_file path)
    | Protocol.J_text { name; src } ->
      (* the daemon path: the single-function module arrives by value, so
         a serving worker never reads the filesystem *)
      optimize_one_func ~func:name src
  with
  | out, degraded -> respond (Ok out) degraded
  | exception Sys.Break -> raise Sys.Break
  | exception e -> respond (Error (describe_exn e)) 0

let main ~in_fd ~out_fd =
  (* undo anything the supervisor installed before forking: the watchdog's
     SIGTERM must kill us, and a write after the supervisor dies should
     too (default SIGPIPE) *)
  List.iter
    (fun s ->
      try Sys.set_signal s Sys.Signal_default
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm; Sys.sigpipe ];
  let r = Protocol.reader in_fd in
  let rec loop () =
    match Protocol.read_blocking r with
    | Protocol.Eof -> Stdlib.exit 0 (* supervisor closed the queue: done *)
    | Protocol.Garbage _ -> Stdlib.exit 3
    | Protocol.Incomplete -> loop () (* read_blocking never returns this *)
    | Protocol.Msg Protocol.M_ping ->
      (* liveness probe from the daemon's heartbeat loop *)
      Protocol.write_message out_fd Protocol.M_pong;
      loop ()
    | Protocol.Msg
        ( Protocol.M_response _ | Protocol.M_pong | Protocol.C_optimize _
        | Protocol.C_reply _ | Protocol.C_error _ | Protocol.C_overloaded _
        | Protocol.C_stats_request | Protocol.C_stats _ ) ->
      Stdlib.exit 3
    | Protocol.Msg (Protocol.M_request rq) ->
      (match rq.Protocol.rq_fault with
      | Some k -> enact_fault out_fd k
      | None -> ());
      let resp = process rq in
      Protocol.write_message out_fd (Protocol.M_response resp);
      loop ()
  in
  loop ()
