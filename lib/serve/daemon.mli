(** The persistent optimization daemon behind [dialegg-serve].

    One process listens on a Unix-domain socket, keeps a pool of
    pre-warmed worker subprocesses (rules linted / vetted / audited
    once, prelude parsed — see {!Dialegg.Pipeline.prewarmed}), and
    serves whole-module optimization requests.  Each request is split
    per function; every function result is memoized in the
    content-addressed {!Cache}, so a warm request is answered without
    touching a worker — byte-identical to a cold [dialegg-opt] run
    under the same configuration.

    Robustness properties, each exercised by the fault matrix in
    [test/test_serve.ml]:

    - {b bounded admission}: at most [max_queue] function jobs wait;
      a request whose misses do not fit is shed with [C_overloaded]
      and a retry-after hint.  Requests fully served from cache are
      never shed;
    - {b deadline propagation}: a client deadline tightens the
      per-function time budget; deadline-tightened (and retried, and
      identity-fallback) results are never cached, so the cache only
      ever holds what a cold run would produce;
    - {b worker recycling}: a worker is retired after [recycle_jobs]
      jobs or when its RSS crosses [recycle_rss_mb] (read from
      [/proc/PID/statm]), and replaced with a fresh fork;
    - {b liveness}: idle workers are pinged every [heartbeat] seconds;
      a worker that misses a pong (or hangs on a job past
      [job_timeout]) is SIGTERM'd, then SIGKILL'd after [grace], and
      respawned.  The affected job is retried with tightened budgets
      and degrades to identity after [retries] attempts;
    - {b graceful drain}: SIGTERM (or SIGINT) stops accepting work,
      finishes in-flight requests, persists the cache stats index,
      unlinks the socket and exits 0;
    - {b live reload}: SIGHUP re-reads [rules_path], re-runs the
      static tiers on the candidate ruleset, and atomically swaps it
      in — on any failure the old ruleset keeps serving;
    - {b crash-safe cache}: every committed entry survives a kill at
      any instant; torn entries are detected, deleted and recomputed
      (see {!Cache}). *)

type config = {
  socket_path : string;
  pool : int;  (** worker subprocesses *)
  max_queue : int;  (** bounded admission: queued function jobs *)
  retries : int;  (** attempts per function job before identity *)
  job_timeout : float;  (** per-attempt worker watchdog, seconds *)
  grace : float;  (** SIGTERM → SIGKILL escalation delay *)
  heartbeat : float;  (** idle-worker ping period, [0.] = off *)
  recycle_jobs : int;  (** retire a worker after N jobs, [0] = never *)
  recycle_rss_mb : float;  (** retire a worker above this RSS, [0.] = never *)
  cache_dir : string option;  (** result-cache store, [None] = memory-only *)
  cache_capacity : int;  (** in-process LRU entries *)
  pipeline : Dialegg.Pipeline.config;  (** NOT yet pre-warmed *)
  rules_path : string option;  (** re-read on SIGHUP *)
  fault : Dialegg.Faults.serve_fault option;  (** daemon-level injection *)
  verbose : bool;
}

(** pool 2, queue 64, 2 retries, 60 s timeout, 1 s grace, 5 s heartbeat,
    recycle after 256 jobs or 2 GiB RSS, disk cache at the default
    {!Dialegg.Disk_cache} directory, LRU 512. *)
val default_config : config

exception Error of string

(** Run the daemon until a drain completes.  Blocks; never returns under
    normal serving.  Installs SIGTERM / SIGINT / SIGHUP handlers and
    ignores SIGPIPE.
    @raise Error if the socket is in use by a live daemon, or the rules
    fail the static tiers at startup. *)
val run : config -> unit
