(** The parent side of the batch driver; see the interface for the
    supervision model. *)

exception Error of string

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

type fail_class =
  | C_job_error of string
  | C_nonzero of int
  | C_signal of int
  | C_hang
  | C_garbage of string

let fail_class_name = function
  | C_job_error _ -> "error"
  | C_nonzero _ -> "nonzero-exit"
  | C_signal _ -> "signal"
  | C_hang -> "hang"
  | C_garbage _ -> "garbage"

(* OCaml's [Sys.sig*] numbers are internal (negative); render the ones a
   worker can plausibly die from. *)
let signal_name s =
  if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigfpe then "SIGFPE"
  else string_of_int s

let pp_fail_class ppf = function
  | C_job_error m -> Fmt.pf ppf "job error: %s" m
  | C_nonzero n -> Fmt.pf ppf "worker exited with status %d" n
  | C_signal s -> Fmt.pf ppf "worker killed by %s" (signal_name s)
  | C_hang -> Fmt.string ppf "watchdog timeout"
  | C_garbage m -> Fmt.pf ppf "protocol garbage: %s" m

(* ------------------------------------------------------------------ *)
(* Configuration and outcomes                                          *)
(* ------------------------------------------------------------------ *)

type config = {
  pool : int;
  retries : int;
  job_timeout : float;
  grace : float;
  backoff : float;
  pipeline : Dialegg.Pipeline.config;
  faults : Dialegg.Faults.proc_fault list;
  journal_path : string option;
  resume : bool;
  verbose : bool;
}

let default_config =
  {
    pool = 4;
    retries = 2;
    job_timeout = 60.;
    grace = 1.;
    backoff = 0.05;
    pipeline = Dialegg.Pipeline.default_config;
    faults = [];
    journal_path = None;
    resume = false;
    verbose = false;
  }

type job_outcome =
  | J_optimized of { degraded : int }
  | J_identity of fail_class
  | J_failed of string
  | J_resumed of Queue.outcome

type job_result = {
  jr_job : Queue.job;
  jr_outcome : job_outcome;
  jr_attempts : int;
  jr_output : string option;
}

type batch_report = { br_results : job_result list }

let report_ok r =
  List.for_all
    (fun jr -> match jr.jr_outcome with J_failed _ -> false | _ -> true)
    r.br_results

let counts r =
  List.fold_left
    (fun (o, i, f, s) jr ->
      match jr.jr_outcome with
      | J_optimized _ -> (o + 1, i, f, s)
      | J_identity _ -> (o, i + 1, f, s)
      | J_failed _ -> (o, i, f + 1, s)
      | J_resumed _ -> (o, i, f, s + 1))
    (0, 0, 0, 0) r.br_results

let pp_outcome ppf = function
  | J_optimized { degraded = 0 } -> Fmt.string ppf "optimized"
  | J_optimized { degraded = n } ->
    Fmt.pf ppf "optimized (%d function(s) degraded in-worker)" n
  | J_identity cls -> Fmt.pf ppf "identity fallback (%a)" pp_fail_class cls
  | J_failed m -> Fmt.pf ppf "FAILED: %s" m
  | J_resumed o -> Fmt.pf ppf "resumed (%s)" (Queue.outcome_name o)

let pp_report ppf r =
  List.iter
    (fun jr ->
      Fmt.pf ppf "%s: %a, %d attempt(s)@." jr.jr_job.Queue.job_id pp_outcome
        jr.jr_outcome jr.jr_attempts)
    r.br_results;
  let o, i, f, s = counts r in
  Fmt.pf ppf "%d job(s): %d optimized, %d identity-fallback, %d failed, %d resumed@."
    (List.length r.br_results) o i f s

(* ------------------------------------------------------------------ *)
(* Worker pool state                                                   *)
(* ------------------------------------------------------------------ *)

type running = {
  run_job : Queue.job;
  run_attempt : int;
  mutable run_deadline : float;
  mutable run_killing : bool; (* SIGTERM sent; next expiry escalates *)
}

type w_state = W_idle | W_busy of running

type worker = {
  w_pid : int;
  w_to : Unix.file_descr;
  w_from : Unix.file_descr;
  w_reader : Protocol.reader;
  mutable w_state : w_state;
}

type state = {
  cfg : config;
  total : int;
  mutable workers : worker list;
  mutable pending : (float * int * Queue.job) list; (* ready, attempt, job *)
  results : (string, job_result) Hashtbl.t;
  journal : Queue.journal option;
  mutable spawns : int;
  max_spawns : int;
}

let is_idle w = match w.w_state with W_idle -> true | W_busy _ -> false

let verbose st fmt =
  Fmt.kstr
    (fun s -> if st.cfg.verbose then Fmt.epr "[dialegg-batch] %s@." s)
    fmt

let insert_pending st ((r, _, _) as item) =
  let rec ins = function
    | [] -> [ item ]
    | ((r', _, _) as hd) :: tl -> if r < r' then item :: hd :: tl else hd :: ins tl
  in
  st.pending <- ins st.pending

let spawn st =
  if st.spawns >= st.max_spawns then
    raise (Error "worker pool is crash-looping; aborting the batch");
  st.spawns <- st.spawns + 1;
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* anything buffered would be flushed twice, once per process *)
  flush stdout;
  flush stderr;
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  match Unix.fork () with
  | 0 ->
    (* child: keep only this worker's two pipe ends — sibling fds
       inherited across fork would hold their pipes open forever and mask
       every EOF the supervisor relies on *)
    (try Unix.close req_w with Unix.Unix_error _ -> ());
    (try Unix.close resp_r with Unix.Unix_error _ -> ());
    List.iter
      (fun w ->
        (try Unix.close w.w_to with Unix.Unix_error _ -> ());
        (try Unix.close w.w_from with Unix.Unix_error _ -> ()))
      st.workers;
    Worker.main ~in_fd:req_r ~out_fd:resp_w
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    Unix.set_nonblock resp_r;
    let w =
      {
        w_pid = pid;
        w_to = req_w;
        w_from = resp_r;
        w_reader = Protocol.reader resp_r;
        w_state = W_idle;
      }
    in
    st.workers <- w :: st.workers

(* ------------------------------------------------------------------ *)
(* Job completion paths                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let record st (job : Queue.job) ~attempts ~outcome ~output ~bytes =
  (match st.journal with
  | Some j ->
    let joutcome =
      match outcome with
      | J_optimized _ -> Queue.O_optimized
      | J_identity _ -> Queue.O_identity
      | J_failed _ -> Queue.O_failed
      | J_resumed o -> o
    in
    Queue.log_done j ~id:job.Queue.job_id ~outcome:joutcome ~attempts ~bytes
  | None -> ());
  Hashtbl.replace st.results job.Queue.job_id
    { jr_job = job; jr_outcome = outcome; jr_attempts = attempts; jr_output = output }

let complete_ok st (job : Queue.job) ~attempts ~degraded text =
  verbose st "%s: optimized on attempt %d" job.Queue.job_id attempts;
  let output =
    match job.Queue.job_out with
    | Some path ->
      Atomic_io.write_atomic ~path text;
      None
    | None -> Some text
  in
  record st job ~attempts ~outcome:(J_optimized { degraded }) ~output
    ~bytes:(String.length text)

(* Retries exhausted: degrade to the identity output — the job's input,
   parsed and re-printed, exactly what a fully-degraded [--on-limit
   identity] run yields.  In module mode leaving the function untouched
   IS the identity, so there is nothing to produce. *)
let fallback_identity st (job : Queue.job) ~attempts cls =
  match
    match job.Queue.job_input with
    | Protocol.J_file path ->
      Some (Dialegg.Pipeline.identity_source (read_file path))
    | Protocol.J_func _ -> None
    | Protocol.J_text { src; _ } ->
      (* daemon path: the input is already in hand *)
      Some (Dialegg.Pipeline.identity_source src)
  with
  | output ->
    let bytes =
      match (output, job.Queue.job_out) with
      | Some text, Some path ->
        Atomic_io.write_atomic ~path text;
        String.length text
      | Some text, None -> String.length text
      | None, _ -> 0
    in
    verbose st "%s: identity fallback after %d attempt(s)" job.Queue.job_id attempts;
    record st job ~attempts ~outcome:(J_identity cls) ~output:None ~bytes
  | exception e ->
    let msg =
      Fmt.str "%a; identity fallback also failed: %s" pp_fail_class cls
        (Printexc.to_string e)
    in
    record st job ~attempts ~outcome:(J_failed msg) ~output:None ~bytes:0

let job_failed st ((job : Queue.job), attempt) cls =
  verbose st "%s: attempt %d failed (%a)" job.Queue.job_id (attempt + 1)
    pp_fail_class cls;
  if attempt < st.cfg.retries then begin
    let delay = st.cfg.backoff *. (2. ** float_of_int attempt) in
    insert_pending st (now () +. delay, attempt + 1, job)
  end
  else fallback_identity st job ~attempts:(attempt + 1) cls

(* ------------------------------------------------------------------ *)
(* Worker lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let reap w =
  match Unix.waitpid [] w.w_pid with
  | _, status -> status
  | exception Unix.Unix_error _ -> Unix.WEXITED 127

let worker_died st w why =
  (* a desynced stream can come from a live, misbehaving process: make
     sure it is actually dead before reaping *)
  (match why with
  | `Garbage _ -> ( try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
  | `Eof -> ());
  let status = reap w in
  (try Unix.close w.w_to with Unix.Unix_error _ -> ());
  (try Unix.close w.w_from with Unix.Unix_error _ -> ());
  st.workers <- List.filter (fun x -> x != w) st.workers;
  match w.w_state with
  | W_busy r ->
    let cls =
      match why with
      | `Garbage m -> C_garbage m
      | `Eof ->
        if r.run_killing then C_hang
        else (
          match status with
          | Unix.WEXITED 0 -> C_garbage "worker exited cleanly without a response"
          | Unix.WEXITED n -> C_nonzero n
          | Unix.WSIGNALED s | Unix.WSTOPPED s -> C_signal s)
    in
    w.w_state <- W_idle;
    job_failed st (r.run_job, r.run_attempt) cls
  | W_idle -> ()

let incomplete st = Hashtbl.length st.results < st.total

(* Per-attempt budget tightening, derived through {!Egglog.Limits}. *)
let config_for_attempt (p : Dialegg.Pipeline.config) ~attempt =
  if attempt <= 0 then p
  else begin
    let l =
      Egglog.Limits.make ~max_iters:p.max_iterations ~max_nodes:p.max_nodes
        ?max_time_ms:(Option.map (fun s -> s *. 1000.) p.timeout)
        ?max_memory_mb:p.max_memory_mb ()
    in
    let l = Egglog.Limits.for_attempt l ~attempt in
    {
      p with
      max_iterations =
        Option.value ~default:p.max_iterations l.Egglog.Limits.max_iters;
      max_nodes = Option.value ~default:p.max_nodes l.Egglog.Limits.max_nodes;
      timeout =
        (match l.Egglog.Limits.max_time_ms with
        | Some ms -> Some (ms /. 1000.)
        | None -> p.timeout);
      max_memory_mb =
        (match l.Egglog.Limits.max_memory_words with
        | Some w -> Some (float_of_int w *. 8. /. (1024. *. 1024.))
        | None -> p.max_memory_mb);
    }
  end

let try_dispatch st =
  let rec go () =
    let t = now () in
    match (List.find_opt is_idle st.workers, st.pending) with
    | Some w, (ready, attempt, job) :: rest when ready <= t ->
      st.pending <- rest;
      (match st.journal with
      | Some j -> Queue.log_start j ~id:job.Queue.job_id ~attempt
      | None -> ());
      let rq =
        {
          Protocol.rq_id = job.Queue.job_id;
          rq_input = job.Queue.job_input;
          rq_attempt = attempt;
          rq_config = config_for_attempt st.cfg.pipeline ~attempt;
          rq_fault =
            Dialegg.Faults.proc_matches st.cfg.faults ~job:job.Queue.job_id
              ~attempt;
        }
      in
      verbose st "%s: dispatching attempt %d to pid %d%s" job.Queue.job_id
        (attempt + 1) w.w_pid
        (match rq.Protocol.rq_fault with
        | Some k -> " [inject " ^ Dialegg.Faults.proc_kind_name k ^ "]"
        | None -> "");
      (match Protocol.write_message w.w_to (Protocol.M_request rq) with
      | () ->
        w.w_state <-
          W_busy
            {
              run_job = job;
              run_attempt = attempt;
              run_deadline = t +. st.cfg.job_timeout;
              run_killing = false;
            }
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* the worker died before it could read: not the job's fault —
           requeue the same attempt and replace the worker *)
        insert_pending st (t, attempt, job);
        worker_died st w `Eof;
        spawn st);
      go ()
    | _ -> ()
  in
  go ()

let watchdog st =
  let t = now () in
  List.iter
    (fun w ->
      match w.w_state with
      | W_busy r when t >= r.run_deadline ->
        if not r.run_killing then begin
          verbose st "%s: watchdog expired, SIGTERM to pid %d"
            r.run_job.Queue.job_id w.w_pid;
          (try Unix.kill w.w_pid Sys.sigterm with Unix.Unix_error _ -> ());
          r.run_killing <- true;
          r.run_deadline <- t +. st.cfg.grace
        end
        else begin
          verbose st "%s: grace expired, SIGKILL to pid %d"
            r.run_job.Queue.job_id w.w_pid;
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          r.run_deadline <- t +. st.cfg.grace
        end
      | _ -> ())
    st.workers

let select_timeout st =
  let t = now () in
  let deadlines =
    List.filter_map
      (fun w ->
        match w.w_state with W_busy r -> Some r.run_deadline | W_idle -> None)
      st.workers
  in
  let readies = match st.pending with [] -> [] | (r, _, _) :: _ -> [ r ] in
  match deadlines @ readies with
  | [] -> 1.0
  | l -> Float.max 0.0 (Float.min 1.0 (List.fold_left Float.min infinity l -. t))

let handle_readable st readable =
  List.iter
    (fun w ->
      if List.memq w.w_from readable then begin
        match Protocol.poll w.w_reader with
        | Protocol.Incomplete -> ()
        | Protocol.Msg (Protocol.M_response resp) -> (
          match w.w_state with
          | W_busy r when resp.Protocol.rs_id = r.run_job.Queue.job_id -> (
            w.w_state <- W_idle;
            match resp.Protocol.rs_result with
            | Ok text ->
              complete_ok st r.run_job ~attempts:(r.run_attempt + 1)
                ~degraded:resp.Protocol.rs_degraded text
            | Error msg ->
              job_failed st (r.run_job, r.run_attempt) (C_job_error msg))
          | _ ->
            worker_died st w (`Garbage "response for the wrong job");
            if incomplete st then spawn st)
        | Protocol.Msg
            ( Protocol.M_request _ | Protocol.M_ping | Protocol.M_pong
            | Protocol.C_optimize _ | Protocol.C_reply _ | Protocol.C_error _
            | Protocol.C_overloaded _ | Protocol.C_stats_request
            | Protocol.C_stats _ ) ->
          worker_died st w (`Garbage "worker sent a non-response message");
          if incomplete st then spawn st
        | Protocol.Eof ->
          worker_died st w `Eof;
          if incomplete st then spawn st
        | Protocol.Garbage m ->
          worker_died st w (`Garbage m);
          if incomplete st then spawn st
      end)
    (List.filter (fun _ -> true) st.workers)
(* iterate over a snapshot: handlers mutate st.workers *)

let shutdown st =
  (* closing the request pipes is the shutdown signal: workers see EOF
     and exit 0; stragglers get SIGKILL after the grace period *)
  List.iter
    (fun w -> try Unix.close w.w_to with Unix.Unix_error _ -> ())
    st.workers;
  let deadline = now () +. Float.max 1.0 st.cfg.grace in
  List.iter
    (fun w ->
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
        | 0, _ ->
          if now () > deadline then begin
            (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()
          end
          else begin
            ignore (Unix.select [] [] [] 0.02);
            wait ()
          end
        | _, _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ();
      try Unix.close w.w_from with Unix.Unix_error _ -> ())
    st.workers;
  st.workers <- []

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) (jobs : Queue.job list) : batch_report =
  if jobs = [] then raise (Error "empty batch: no jobs to run");
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (j : Queue.job) ->
      if Hashtbl.mem ids j.Queue.job_id then
        raise (Error ("duplicate job id " ^ j.Queue.job_id));
      Hashtbl.add ids j.Queue.job_id ())
    jobs;
  (* a worker dying mid-write must not kill the supervisor *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Atomic_io.install_signal_cleanup ();
  let journal, completed =
    match config.journal_path with
    | Some path ->
      let j, c = Queue.journal_open ~path ~resume:config.resume in
      (Some j, c)
    | None -> (None, [])
  in
  let st =
    {
      cfg = config;
      total = List.length jobs;
      workers = [];
      pending = [];
      results = Hashtbl.create 16;
      journal;
      spawns = 0;
      max_spawns =
        (8 + config.pool + (2 * List.length jobs * (config.retries + 2)));
    }
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown st;
      match st.journal with Some j -> Queue.journal_close j | None -> ())
    (fun () ->
      (* replay: a journaled outcome whose output is still on disk is
         final — skip the job without recomputing (or re-journaling) it *)
      let todo =
        List.filter
          (fun (job : Queue.job) ->
            match
              List.find_opt
                (fun (e : Queue.entry) -> e.Queue.e_id = job.Queue.job_id)
                completed
            with
            | Some e
              when e.Queue.e_outcome <> Queue.O_failed
                   && (match job.Queue.job_out with
                      | Some p -> Sys.file_exists p
                      | None -> true) ->
              Hashtbl.replace st.results job.Queue.job_id
                {
                  jr_job = job;
                  jr_outcome = J_resumed e.Queue.e_outcome;
                  jr_attempts = e.Queue.e_attempts;
                  jr_output = None;
                };
              false
            | _ -> true)
          jobs
      in
      let t0 = now () in
      st.pending <- List.map (fun j -> (t0, 0, j)) todo;
      if todo <> [] then begin
        let pool = max 1 (min config.pool (List.length todo)) in
        for _ = 1 to pool do
          spawn st
        done;
        while incomplete st do
          try_dispatch st;
          let fds = List.map (fun w -> w.w_from) st.workers in
          let readable =
            match Unix.select fds [] [] (select_timeout st) with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          handle_readable st readable;
          watchdog st
        done
      end;
      { br_results = List.map (fun (j : Queue.job) -> Hashtbl.find st.results j.Queue.job_id) jobs })

(* ------------------------------------------------------------------ *)
(* Module-mode reassembly                                              *)
(* ------------------------------------------------------------------ *)

(* Replace [func]'s attributes and regions with the ones from the printed
   function [src] a worker sent back (same splice the pipeline's identity
   fallback uses). *)
let splice_function (func : Mlir.Ir.op) (src : string) =
  let m = Mlir.Parser.parse_function_module src in
  match Mlir.Ir.module_ops m with
  | [ fresh ] when fresh.Mlir.Ir.op_name = "func.func" ->
    func.Mlir.Ir.attrs <- fresh.Mlir.Ir.attrs;
    func.Mlir.Ir.regions <- fresh.Mlir.Ir.regions;
    List.iter (fun r -> r.Mlir.Ir.reg_parent <- Some func) fresh.Mlir.Ir.regions
  | _ -> raise (Error "worker returned something that is not one function")

let splice_results (m : Mlir.Ir.op) (r : batch_report) =
  List.iter
    (fun jr ->
      match (jr.jr_job.Queue.job_input, jr.jr_output) with
      | Protocol.J_func { func; _ }, Some text -> (
        match
          List.find_opt
            (fun op ->
              op.Mlir.Ir.op_name = "func.func" && Mlir.Ir.func_name op = func)
            (Mlir.Ir.module_ops m)
        with
        | Some op -> splice_function op text
        | None -> ())
      | _ -> () (* identity / failed / file-mode: leave the module alone *))
    r.br_results
