(** The child side of the batch driver: a persistent loop that reads
    {!Protocol.request}s off a pipe, runs the DialEgg pipeline on one job
    per request, and writes one {!Protocol.response} back.

    A worker is deliberately boring: it holds no batch state, never
    touches output files (the supervisor owns all writes), and exits 0 on
    EOF of its request pipe.  Anything that goes wrong inside a job —
    pipeline errors, parse failures, resource limits under the strict
    policy — is caught and returned as an [Error] response over the
    protocol; the process only dies for process-level reasons (injected
    faults, real crashes, the supervisor's watchdog), which is exactly
    the failure classification boundary the supervisor relies on. *)

(** Run one request and catch every job-level failure into the response. *)
val process : Protocol.request -> Protocol.response

(** The worker main loop.  Resets inherited signal dispositions (SIGTERM
    must kill it; SIGPIPE on a dead supervisor too), then serves requests
    until EOF.  Never returns — exits 0 on EOF, 3 on a garbled request
    stream. *)
val main : in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> 'never
