(** Job sharding and the crash-safe batch journal; see the interface for
    the model. *)

type job = {
  job_id : string;
  job_input : Protocol.job_input;
  job_out : string option;
}

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Sharding                                                            *)
(* ------------------------------------------------------------------ *)

let shard_dir ~input_dir ~out_dir =
  let entries =
    try Sys.readdir input_dir
    with Sys_error e -> errorf "cannot read input directory: %s" e
  in
  let files =
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".mlir")
    |> List.sort compare
  in
  if files = [] then errorf "no .mlir files in %s" input_dir;
  List.map
    (fun f ->
      {
        job_id = f;
        job_input = Protocol.J_file (Filename.concat input_dir f);
        job_out = Some (Filename.concat out_dir f);
      })
    files

let shard_module ~path (m : Mlir.Ir.op) =
  List.filter_map
    (fun op ->
      if op.Mlir.Ir.op_name = "func.func" then
        let func = Mlir.Ir.func_name op in
        Some
          {
            job_id = "@" ^ func;
            job_input = Protocol.J_func { path; func };
            job_out = None;
          }
      else None)
    (Mlir.Ir.module_ops m)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = O_optimized | O_identity | O_failed

let outcome_name = function
  | O_optimized -> "optimized"
  | O_identity -> "identity"
  | O_failed -> "failed"

let outcome_of_string s =
  List.find_opt
    (fun o -> outcome_name o = s)
    [ O_optimized; O_identity; O_failed ]

type entry = { e_id : string; e_outcome : outcome; e_attempts : int; e_bytes : int }

type journal = { j_path : string; j_fd : Unix.file_descr }

let header_line = "dialegg-journal v1"

(* Records are tab-separated lines ending in a "." sentinel field: a line
   without the sentinel (the torn tail of a crashed append) is ignored on
   replay.  Appends are fsync'd, so at most the final record can be torn. *)
let append j fields =
  Atomic_io.write_all j.j_fd (String.concat "\t" (fields @ [ "." ]) ^ "\n");
  Unix.fsync j.j_fd

let log_start j ~id ~attempt = append j [ "start"; id; string_of_int attempt ]

let log_done j ~id ~outcome ~attempts ~bytes =
  append j
    [ "done"; id; outcome_name outcome; string_of_int attempts; string_of_int bytes ]

(* Replay: the completed entries, first occurrence per job id winning (a
   well-formed journal has exactly one [done] per job; keeping the first
   makes a corrupt double-entry harmless). *)
let replay path : entry list =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match input_line ic with
      | l when l = header_line -> ()
      | _ -> errorf "%s: not a dialegg journal (bad header)" path
      | exception End_of_file -> errorf "%s: empty journal" path);
      let seen = Hashtbl.create 16 in
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char '\t' line with
           | [ "done"; id; oc; attempts; bytes; "." ] -> (
             match
               (outcome_of_string oc, int_of_string_opt attempts,
                int_of_string_opt bytes)
             with
             | Some e_outcome, Some e_attempts, Some e_bytes ->
               if not (Hashtbl.mem seen id) then begin
                 Hashtbl.add seen id ();
                 entries :=
                   { e_id = id; e_outcome; e_attempts; e_bytes } :: !entries
               end
             | _ -> () (* malformed record: ignore, like a torn line *))
           | "start" :: _ -> ()
           | _ -> () (* torn or foreign line *)
         done
       with End_of_file -> ());
      List.rev !entries)

let journal_open ~path ~resume : journal * entry list =
  let completed = if resume && Sys.file_exists path then replay path else [] in
  let fd =
    if resume && Sys.file_exists path then
      Unix.openfile path [ O_WRONLY; O_APPEND; O_CLOEXEC ] 0o644
    else begin
      let fd =
        Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
      in
      Atomic_io.write_all fd (header_line ^ "\n");
      Unix.fsync fd;
      fd
    end
  in
  ({ j_path = path; j_fd = fd }, completed)

let journal_close j = try Unix.close j.j_fd with Unix.Unix_error _ -> ()
