(** The supervisor ↔ worker wire protocol: length-prefixed [Marshal]
    frames over pipes, with a magic/version header.

    Both ends are forks of the same binary, so [Marshal] payloads are
    type-safe; the 9-byte header (["DGGB"], a version byte, a big-endian
    payload length) exists to make every *other* failure detectable: a
    worker that writes random bytes, dies mid-frame, or speaks a future
    protocol version is classified as {!Garbage} instead of corrupting
    the supervisor.  Garbage is sticky — once a stream has desynced there
    is no way back, and the supervisor's only safe move is to kill the
    worker and retry the job elsewhere. *)

(** What a worker is asked to optimize: a whole [.mlir] file, or one
    function of a multi-function module. *)
type job_input =
  | J_file of string
  | J_func of { path : string; func : string }

val job_input_path : job_input -> string

type request = {
  rq_id : string;  (** job id, echoed back in the response *)
  rq_attempt : int;  (** 0-based attempt number *)
  rq_input : job_input;
  rq_config : Dialegg.Pipeline.config;
      (** full pipeline config, rules text included — workers never
          re-read the rules file, so every attempt sees one snapshot *)
  rq_fault : Dialegg.Faults.proc_kind option;
      (** deterministic process-fault injection for this attempt *)
}

type response = {
  rs_id : string;
  rs_result : (string, string) result;
      (** printed output, or the pipeline's error message *)
  rs_degraded : int;  (** functions that fell back inside the worker *)
}

type message = M_request of request | M_response of response

(** Write one frame; retries partial writes.  Raises [Unix.Unix_error]
    ([EPIPE] with SIGPIPE ignored) if the peer is gone. *)
val write_message : Unix.file_descr -> message -> unit

(** One step of reading:
    - [Msg m]: a complete, valid frame;
    - [Incomplete]: nothing decodable yet, the stream is still alive;
    - [Eof]: clean end of stream at a frame boundary;
    - [Garbage reason]: the stream is corrupt (bad magic, bad version,
      implausible length, truncated mid-frame, undecodable payload) —
      sticky, every later call returns it again. *)
type next = Msg of message | Incomplete | Eof | Garbage of string

(** A buffered frame decoder over one fd. *)
type reader

val reader : Unix.file_descr -> reader

(** Supervisor side: drain whatever is available (the fd must be in
    non-blocking mode) and try to decode one frame. *)
val poll : reader -> next

(** Worker side: block until a frame, EOF, or garbage. *)
val read_blocking : reader -> next
