(** The supervisor ↔ worker wire protocol: length-prefixed [Marshal]
    frames over pipes, with a magic/version header.

    Both ends are forks of the same binary, so [Marshal] payloads are
    type-safe; the 9-byte header (["DGGB"], a version byte, a big-endian
    payload length) exists to make every *other* failure detectable: a
    worker that writes random bytes, dies mid-frame, or speaks a future
    protocol version is classified as {!Garbage} instead of corrupting
    the supervisor.  Garbage is sticky — once a stream has desynced there
    is no way back, and the supervisor's only safe move is to kill the
    worker and retry the job elsewhere. *)

(** What a worker is asked to optimize: a whole [.mlir] file, one
    function of a multi-function module, or — in the daemon — a
    single-function module passed by text, so workers never touch the
    filesystem on the serving path. *)
type job_input =
  | J_file of string
  | J_func of { path : string; func : string }
  | J_text of { name : string; src : string }

val job_input_path : job_input -> string

type request = {
  rq_id : string;  (** job id, echoed back in the response *)
  rq_attempt : int;  (** 0-based attempt number *)
  rq_input : job_input;
  rq_config : Dialegg.Pipeline.config;
      (** full pipeline config, rules text included — workers never
          re-read the rules file, so every attempt sees one snapshot *)
  rq_fault : Dialegg.Faults.proc_kind option;
      (** deterministic process-fault injection for this attempt *)
}

type response = {
  rs_id : string;
  rs_result : (string, string) result;
      (** printed output, or the pipeline's error message *)
  rs_degraded : int;  (** functions that fell back inside the worker *)
}

(** {1 Daemon messages}

    [dialegg-serve] speaks the same framed protocol over its Unix-domain
    socket, with client-facing constructors.  A client sends
    [C_optimize] or [C_stats_request]; the daemon answers [C_reply],
    [C_error], [C_overloaded] (load shed — retry after the hinted
    delay), or [C_stats].  [M_ping]/[M_pong] double as worker heartbeats
    and client liveness probes. *)

(** One optimization request: a full MLIR module as text, with an
    optional client deadline (milliseconds from receipt) that the daemon
    propagates into the per-function time budgets. *)
type serve_request = { sv_source : string; sv_deadline_ms : float option }

(** Where each function's result came from. *)
type cache_mark = Sv_hit_mem | Sv_hit_disk | Sv_miss

val cache_mark_name : cache_mark -> string

type serve_reply = {
  sv_output : string;  (** printed module, byte-identical to a cold run *)
  sv_degraded : int;  (** functions served by identity fallback *)
  sv_marks : (string * cache_mark) list;  (** per-function provenance *)
  sv_latency_s : float;  (** daemon-side wall time for the request *)
}

(** Daemon counters, as returned by [C_stats]. *)
type daemon_stats = {
  ds_requests : int;
  ds_funcs : int;
  ds_hits_mem : int;
  ds_hits_disk : int;
  ds_misses : int;
  ds_shed : int;
  ds_errors : int;
  ds_deadline_misses : int;
  ds_reloads : int;
  ds_reload_failures : int;
  ds_respawns : int;
  ds_recycled : int;
  ds_workers : int;
  ds_queue : int;
  ds_uptime_s : float;
  ds_cache_mem_entries : int;
  ds_cache_disk_entries : int;
  ds_cache_disk_bytes : int;
  ds_p50_ms : float;
  ds_p99_ms : float;
  ds_draining : bool;
}

(** Cache hit rate over everything served so far (0 when nothing has). *)
val hit_rate : daemon_stats -> float

val pp_daemon_stats : Format.formatter -> daemon_stats -> unit

type message =
  | M_request of request
  | M_response of response
  | M_ping
  | M_pong
  | C_optimize of serve_request
  | C_reply of serve_reply
  | C_error of string
  | C_overloaded of { retry_after_s : float }
  | C_stats_request
  | C_stats of daemon_stats

(** Write one frame; retries partial writes.  Raises [Unix.Unix_error]
    ([EPIPE] with SIGPIPE ignored) if the peer is gone. *)
val write_message : Unix.file_descr -> message -> unit

(** One step of reading:
    - [Msg m]: a complete, valid frame;
    - [Incomplete]: nothing decodable yet, the stream is still alive;
    - [Eof]: clean end of stream at a frame boundary;
    - [Garbage reason]: the stream is corrupt (bad magic, bad version,
      implausible length, truncated mid-frame, undecodable payload) —
      sticky, every later call returns it again. *)
type next = Msg of message | Incomplete | Eof | Garbage of string

(** A buffered frame decoder over one fd. *)
type reader

val reader : Unix.file_descr -> reader

(** Supervisor side: drain whatever is available (the fd must be in
    non-blocking mode) and try to decode one frame. *)
val poll : reader -> next

(** Worker side: block until a frame, EOF, or garbage. *)
val read_blocking : reader -> next
