(** Shared CLI process hygiene; see the interface for the model. *)

let sigpipe_exit = 128 + 13

let is_epipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error m ->
    (* channel writes surface EPIPE as ["...: Broken pipe"] (strerror) *)
    let needle = "Broken pipe" in
    let nl = String.length needle and ml = String.length m in
    let rec scan i =
      i + nl <= ml && (String.sub m i nl = needle || scan (i + 1))
    in
    scan 0
  | _ -> false

(* Point stdout at /dev/null so the exit-time flush of whatever is still
   buffered cannot raise on the dead pipe. *)
let neuter_stdout () =
  try
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.close devnull
  with Unix.Unix_error _ | Sys_error _ -> ()

let main run =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let code =
    match run () with
    | code -> (
      match flush stdout with
      | () -> code
      | exception e when is_epipe e ->
        neuter_stdout ();
        sigpipe_exit)
    | exception e when is_epipe e ->
      neuter_stdout ();
      sigpipe_exit
    | exception e ->
      (* the executables run cmdliner with [~catch:false] so EPIPE can
         reach this guard; play cmdliner's backstop for everything else *)
      Printf.eprintf "internal error: %s\n%s%!" (Printexc.to_string e)
        (Printexc.get_backtrace ());
      125
  in
  Stdlib.exit code
