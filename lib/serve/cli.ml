(** Shared CLI process hygiene; see the interface for the model. *)

let sigpipe_exit = 128 + 13

exception Usage_error of string

let usage_error fmt = Printf.ksprintf (fun m -> raise (Usage_error m)) fmt

(* One diagnostic line, exit 2 — the uniform argument-error contract
   every executable shares (covered by scripts/cli_matrix.sh). *)
let usage_exit name msg =
  let first =
    match String.index_opt msg '\n' with
    | Some i -> String.sub msg 0 i
    | None -> msg
  in
  Printf.eprintf "%s Try '%s --help' for more information.\n%!"
    (String.trim first) name;
  2

let eval cmd =
  let name = Cmdliner.Cmd.name cmd in
  let buf = Buffer.create 256 in
  let err = Format.formatter_of_buffer buf in
  let captured () =
    Format.pp_print_flush err ();
    Buffer.contents buf
  in
  (* cmdliner 1.3 splits argument errors across [`Parse] (converter
     failures) and [`Term] (unknown options, missing required
     operands); the latter shares a variant with [Term.ret `Error]
     runtime failures.  Only the argument errors carry a "Usage:"
     synopsis, which is how we tell them apart. *)
  let is_cli_error msg =
    String.split_on_char '\n' msg
    |> List.exists (fun l ->
           let l = String.trim l in
           String.length l >= 6 && String.sub l 0 6 = "Usage:")
  in
  match Cmdliner.Cmd.eval_value ~catch:false ~err cmd with
  | Ok (`Ok ()) -> 0
  | Ok (`Version | `Help) -> 0
  | Error `Parse -> usage_exit name (captured ())
  | Error (`Term | `Exn) ->
    let msg = captured () in
    if is_cli_error msg then usage_exit name msg
    else begin
      prerr_string msg;
      flush stderr;
      Cmdliner.Cmd.Exit.cli_error
    end
  | exception Usage_error m ->
    ignore (captured ());
    usage_exit name (Printf.sprintf "%s: %s." name m)

let is_epipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error m ->
    (* channel writes surface EPIPE as ["...: Broken pipe"] (strerror) *)
    let needle = "Broken pipe" in
    let nl = String.length needle and ml = String.length m in
    let rec scan i =
      i + nl <= ml && (String.sub m i nl = needle || scan (i + 1))
    in
    scan 0
  | _ -> false

(* Point stdout at /dev/null so the exit-time flush of whatever is still
   buffered cannot raise on the dead pipe. *)
let neuter_stdout () =
  try
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.close devnull
  with Unix.Unix_error _ | Sys_error _ -> ()

let main run =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let code =
    match run () with
    | code -> (
      match flush stdout with
      | () -> code
      | exception e when is_epipe e ->
        neuter_stdout ();
        sigpipe_exit)
    | exception e when is_epipe e ->
      neuter_stdout ();
      sigpipe_exit
    | exception e ->
      (* the executables run cmdliner with [~catch:false] so EPIPE can
         reach this guard; play cmdliner's backstop for everything else *)
      Printf.eprintf "internal error: %s\n%s%!" (Printexc.to_string e)
        (Printexc.get_backtrace ());
      125
  in
  Stdlib.exit code
