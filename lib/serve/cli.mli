(** Shared CLI process hygiene.

    Every dialegg executable writes its result to stdout, and stdout is
    routinely a pipe whose reader quits early ([dialegg-opt … | head]).
    With the default disposition the process dies of SIGPIPE — no exit
    code, no cleanup, and under some shells no indication beyond a
    silent kill.  {!main} turns that into a deterministic, clean exit:
    SIGPIPE is ignored, the resulting [EPIPE] errors are caught, stdout
    is redirected to [/dev/null] so the interpreter's exit-time flush
    cannot trip over the dead pipe, and the process exits with
    {!sigpipe_exit} (141 = 128 + SIGPIPE, the code a shell reports for
    a SIGPIPE death — scripted callers see the familiar value, but from
    an orderly exit). *)

(** 141: the conventional "died of SIGPIPE" exit code. *)
val sigpipe_exit : int

(** A command-line usage error detected inside a term (a missing
    operand, mutually exclusive flags, …).  {!eval} turns it into the
    same one-line diagnostic and exit code 2 as a parse error. *)
exception Usage_error of string

(** [usage_error fmt …] raises {!Usage_error} with a formatted message. *)
val usage_error : ('a, unit, string, 'b) format4 -> 'a

(** [eval cmd] evaluates a cmdliner command with uniform error
    handling: argument parse errors (unknown flag, bad value, missing
    required operand) and {!Usage_error} print a single
    ["name: reason. Try 'name --help' for more information."] line on
    stderr and return 2 — never a backtrace; term-evaluation errors
    print cmdliner's diagnostic and return
    [Cmdliner.Cmd.Exit.cli_error]; other exceptions propagate to
    {!main}'s backstop. *)
val eval : unit Cmdliner.Cmd.t -> int

(** Is this exception a broken-pipe error ([Unix.EPIPE], or the
    [Sys_error] OCaml channels raise for one)?  Exposed so executables
    with broad [Sys_error] handlers can re-raise EPIPE into {!main}
    instead of swallowing it. *)
val is_epipe : exn -> bool

(** [main run] ignores SIGPIPE, evaluates [run ()] to an exit code,
    flushes stdout, and exits — mapping any escaped broken-pipe error
    (from [run] or the flush) to {!sigpipe_exit}. *)
val main : (unit -> int) -> unit
