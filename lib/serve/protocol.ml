(** Length-prefixed Marshal frames between the supervisor and its forked
    workers; see the interface for the model. *)

let magic = "DGGB"
let version = 2
let header_size = 4 + 1 + 4 (* magic, version byte, big-endian length *)

(* An upper bound nothing legitimate approaches: a length beyond it means
   the stream is garbage, not a frame. *)
let max_frame = 256 * 1024 * 1024

type job_input =
  | J_file of string
  | J_func of { path : string; func : string }
  | J_text of { name : string; src : string }

let job_input_path = function
  | J_file p -> p
  | J_func { path; _ } -> path
  | J_text { name; _ } -> "<" ^ name ^ ">"

type request = {
  rq_id : string;
  rq_attempt : int;
  rq_input : job_input;
  rq_config : Dialegg.Pipeline.config;
  rq_fault : Dialegg.Faults.proc_kind option;
}

type response = {
  rs_id : string;
  rs_result : (string, string) result;
  rs_degraded : int;
}

(* ------------------------------------------------------------------ *)
(* Daemon (client ↔ dialegg-serve) messages                            *)
(* ------------------------------------------------------------------ *)

type serve_request = {
  sv_source : string;
  sv_deadline_ms : float option;
}

type cache_mark = Sv_hit_mem | Sv_hit_disk | Sv_miss

let cache_mark_name = function
  | Sv_hit_mem -> "hit-memory"
  | Sv_hit_disk -> "hit-disk"
  | Sv_miss -> "miss"

type serve_reply = {
  sv_output : string;
  sv_degraded : int;
  sv_marks : (string * cache_mark) list;
  sv_latency_s : float;
}

type daemon_stats = {
  ds_requests : int;
  ds_funcs : int;
  ds_hits_mem : int;
  ds_hits_disk : int;
  ds_misses : int;
  ds_shed : int;
  ds_errors : int;
  ds_deadline_misses : int;
  ds_reloads : int;
  ds_reload_failures : int;
  ds_respawns : int;
  ds_recycled : int;
  ds_workers : int;
  ds_queue : int;
  ds_uptime_s : float;
  ds_cache_mem_entries : int;
  ds_cache_disk_entries : int;
  ds_cache_disk_bytes : int;
  ds_p50_ms : float;
  ds_p99_ms : float;
  ds_draining : bool;
}

let hit_rate st =
  let hits = st.ds_hits_mem + st.ds_hits_disk in
  let total = hits + st.ds_misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let pp_daemon_stats ppf st =
  Format.fprintf ppf
    "requests %d (funcs %d) | cache: %d mem-hit, %d disk-hit, %d miss \
     (hit-rate %.2f) | shed %d | errors %d | deadline-miss %d | reloads \
     %d ok, %d failed | workers %d (%d respawns, %d recycled) | queue %d \
     | latency p50 %.2fms p99 %.2fms | cache store: %d mem, %d disk \
     (%d bytes) | uptime %.1fs%s"
    st.ds_requests st.ds_funcs st.ds_hits_mem st.ds_hits_disk st.ds_misses
    (hit_rate st) st.ds_shed st.ds_errors st.ds_deadline_misses st.ds_reloads
    st.ds_reload_failures st.ds_workers st.ds_respawns st.ds_recycled
    st.ds_queue st.ds_p50_ms st.ds_p99_ms st.ds_cache_mem_entries
    st.ds_cache_disk_entries st.ds_cache_disk_bytes st.ds_uptime_s
    (if st.ds_draining then " | DRAINING" else "")

type message =
  | M_request of request
  | M_response of response
  | M_ping
  | M_pong
  | C_optimize of serve_request
  | C_reply of serve_reply
  | C_error of string
  | C_overloaded of { retry_after_s : float }
  | C_stats_request
  | C_stats of daemon_stats

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let encode (m : message) : string =
  (* both ends are forks of the same binary, so Marshal is type-safe here;
     the magic/version header catches everything else (truncation, a
     non-worker writing to the pipe, skew after a future format change) *)
  let payload = Marshal.to_string m [] in
  let n = String.length payload in
  let b = Bytes.create (header_size + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set_int32_be b 5 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_size n;
  Bytes.unsafe_to_string b

let write_message fd m = Atomic_io.write_all fd (encode m)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type next = Msg of message | Incomplete | Eof | Garbage of string

type reader = {
  rd_fd : Unix.file_descr;
  rd_buf : Buffer.t;
  mutable rd_eof : bool;
  mutable rd_bad : string option; (* sticky: garbage never recovers *)
}

let reader fd = { rd_fd = fd; rd_buf = Buffer.create 4096; rd_eof = false; rd_bad = None }

let chunk_size = 65536

(* Pull everything currently available without blocking (the fd must be in
   non-blocking mode).  EOF and connection errors latch [rd_eof]. *)
let fill_nonblocking r =
  let chunk = Bytes.create chunk_size in
  let rec go () =
    if not r.rd_eof then
      match Unix.read r.rd_fd chunk 0 chunk_size with
      | 0 -> r.rd_eof <- true
      | n ->
        Buffer.add_subbytes r.rd_buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
        r.rd_eof <- true
  in
  go ()

(* One blocking read (the worker side, where waiting is the point). *)
let fill_blocking r =
  let chunk = Bytes.create chunk_size in
  if not r.rd_eof then
    match Unix.read r.rd_fd chunk 0 chunk_size with
    | 0 -> r.rd_eof <- true
    | n -> Buffer.add_subbytes r.rd_buf chunk 0 n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
      r.rd_eof <- true

let garbage r msg =
  r.rd_bad <- Some msg;
  Garbage msg

(* Try to decode one frame from the buffered bytes. *)
let parse_frame r : next =
  match r.rd_bad with
  | Some m -> Garbage m
  | None ->
    let buf = Buffer.contents r.rd_buf in
    let len = String.length buf in
    if len = 0 then if r.rd_eof then Eof else Incomplete
    else if len < header_size then begin
      (* a short buffer must still be a prefix of a valid header *)
      let prefix_len = min len (String.length magic) in
      if String.sub buf 0 prefix_len <> String.sub magic 0 prefix_len then
        garbage r "bad frame magic"
      else if r.rd_eof then garbage r "truncated frame header"
      else Incomplete
    end
    else if String.sub buf 0 4 <> magic then garbage r "bad frame magic"
    else if Char.code buf.[4] <> version then
      garbage r
        (Printf.sprintf "protocol version mismatch (got %d, want %d)"
           (Char.code buf.[4]) version)
    else begin
      let n = Int32.to_int (String.get_int32_be buf 5) in
      if n < 0 || n > max_frame then
        garbage r (Printf.sprintf "implausible frame length %d" n)
      else if len < header_size + n then
        if r.rd_eof then garbage r "truncated frame payload" else Incomplete
      else
        match (Marshal.from_string buf header_size : message) with
        | m ->
          Buffer.clear r.rd_buf;
          Buffer.add_substring r.rd_buf buf (header_size + n)
            (len - header_size - n);
          Msg m
        | exception _ -> garbage r "undecodable frame payload"
    end

let poll r =
  fill_nonblocking r;
  parse_frame r

let read_blocking r =
  let rec go () =
    match parse_frame r with
    | Incomplete ->
      fill_blocking r;
      go ()
    | other -> other
  in
  go ()
