(** First-order term utilities over {!Ast.expr} patterns: structural
    equality, one-way matching, unification, anti-unification and
    alpha-equivalence.

    These are purely syntactic (no e-graph, no sort information) and are
    the pattern-level primitives behind [Dialegg.Vet]'s rule-dependency,
    overlap and shadowing analyses.  Pattern variables are compared by
    name ([?x] and the rule-local let name [t] are both {!Ast.Var}s);
    {!Ast.Wildcard} unifies with anything and binds nothing. *)

(** A substitution entry: variable name to replacement term. *)
type binding = string * Ast.expr

(** Structural equality; float literals compare by bits so NaN patterns
    equal themselves. *)
val equal : Ast.expr -> Ast.expr -> bool

(** Number of AST nodes — the term-size measure used to classify rules as
    contracting / size-preserving / expanding. *)
val size : Ast.expr -> int

(** All subterms in pre-order, the term itself first. *)
val subterms : Ast.expr -> Ast.expr list

(** [is_subterm ~sub e]: [sub] occurs in [e] (including [e] itself). *)
val is_subterm : sub:Ast.expr -> Ast.expr -> bool

(** Append [suffix] to every variable name — renames a pattern apart
    before unifying it with a pattern from another rule. *)
val rename : suffix:string -> Ast.expr -> Ast.expr

(** Simultaneous substitution of variables (no occurs handling: bindings
    are applied once, not to their own results). *)
val apply : binding list -> Ast.expr -> Ast.expr

(** [match_pattern ~general specific]: one-way matching.  Variables of
    [general] bind to subterms of [specific]; everything in [specific]
    (variables included) is treated as rigid.  Returns the substitution
    [s] with [apply s general = specific], in unspecified order. *)
val match_pattern : general:Ast.expr -> Ast.expr -> binding list option

(** [instance_of ~general specific]: [match_pattern] succeeds. *)
val instance_of : general:Ast.expr -> Ast.expr -> bool

(** Syntactic unifiability with occurs check.  [flex] marks heads whose
    applications are "computed" (Egglog primitives): a flexible
    application unifies with anything, over-approximating the values a
    primitive can produce. *)
val unifiable : ?flex:(string -> bool) -> Ast.expr -> Ast.expr -> bool

(** Least general generalization.  Disagreement positions become fresh
    [?auN] variables; the same disagreement pair always maps to the same
    variable, so shared structure survives. *)
val anti_unify : Ast.expr -> Ast.expr -> Ast.expr

(** [alpha_bijection a b]: if [a] and [b] are equal up to a consistent
    renaming of variables, the renaming as bindings over [a]'s variables. *)
val alpha_bijection : Ast.expr -> Ast.expr -> binding list option

val alpha_equal : Ast.expr -> Ast.expr -> bool
