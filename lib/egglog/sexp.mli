(** S-expressions: the concrete syntax of Egglog programs.

    The reader supports atoms, double-quoted strings with backslash
    escapes, line comments starting with [;], and nested lists in
    parentheses or square brackets.  Two representations are exposed:
    the plain {!t} used by the evaluator, and {!located} nodes carrying
    source spans for diagnostics. *)

type t =
  | Atom of string
  | Str of string  (** a double-quoted string literal, unescaped *)
  | List of t list

(** A source position, 1-based.  The special position [0:0] marks nodes
    synthesised from an AST rather than read from text. *)
type pos = { line : int; col : int }

(** A half-open source range: [sp_end] points one past the last character. *)
type span = { sp_start : pos; sp_end : pos }

(** An s-expression annotated with the span it was read from. *)
type located = { node : node; span : span }

and node =
  | N_atom of string
  | N_str of string
  | N_list of located list

exception Parse_error of { pos : int; line : int; col : int; msg : string }

(** Parse all top-level s-expressions in the input. *)
val parse_string : string -> t list

(** Like {!parse_string}, but keep source spans on every node. *)
val parse_string_loc : string -> located list

(** Parse exactly one s-expression.
    @raise Parse_error if there are zero or several. *)
val parse_one : string -> t

(** Discard source spans. *)
val strip : located -> t

(** Annotate every node of a plain term with {!dummy_span}. *)
val with_dummy_spans : t -> located

val dummy_span : span

(** True for spans synthesised by {!with_dummy_spans}. *)
val is_dummy_span : span -> bool

(** Escape a string for inclusion in a double-quoted literal. *)
val escape_string : string -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Print as [line:col]. *)
val pp_pos : Format.formatter -> pos -> unit

(** Print a span's start position as [line:col]. *)
val pp_span : Format.formatter -> span -> unit
