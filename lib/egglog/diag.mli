(** Structured diagnostics for static analysis of Egglog programs. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable kebab-case slug, e.g. ["unknown-function"] *)
  message : string;
  span : Sexp.span option;
  file : string option;
}

val make : ?file:string -> ?span:Sexp.span -> severity -> string -> string -> t

(** [error code fmt ...] builds an error diagnostic with a formatted message. *)
val error : ?file:string -> ?span:Sexp.span -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning : ?file:string -> ?span:Sexp.span -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val has_errors : t list -> bool
val count_errors : t list -> int
val count_warnings : t list -> int

(** Remove structurally identical duplicates, keeping first occurrences
    in order. *)
val dedup : t list -> t list

val severity_string : severity -> string

(** Render as [file:line:col: severity[code]: message]; the location
    prefix is omitted when unknown. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Print every diagnostic, one per line. *)
val pp_list : Format.formatter -> t list -> unit
