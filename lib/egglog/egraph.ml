(** The e-graph, represented as a functional database (the Egglog model).

    Every Egglog function — including datatype constructors — is a {e table}
    mapping a tuple of argument values to one output value.  Constructors are
    tables whose output sort is an equivalence sort: looking up a missing row
    allocates a fresh e-class, which makes the table a hash-cons.  An e-node
    is therefore a table row, and the set of rows whose output is (congruent
    to) class [c] is the set of e-nodes in [c].

    Unification is a union-find over e-class ids.  After unions, tables may
    contain stale (non-canonical) keys; {!rebuild} restores the invariant
    that all keys and outputs are canonical, merging rows that collide
    (congruence closure) until a fixed point is reached.

    Two storage {!engine}s implement the table contract:
    - [Legacy]: rows in a hashtable keyed by boxed [Value.t array]s, with a
      separate append-only journal for seminaive deltas;
    - [Arena] (the default): rows as flat int arrays of codes (see
      {!Arena}), appended in stamp order so the table {e is} the journal,
      with congruence lookups through one open-addressing int hash.  The
      arena is what the matcher's column indexes and generic join run on. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Sorts                                                               *)
(* ------------------------------------------------------------------ *)

type sort_kind =
  | S_i64
  | S_f64
  | S_string
  | S_bool
  | S_unit
  | S_eq of string  (** user-declared equivalence sort *)
  | S_vec of string  (** vector container; payload is the element sort name *)

let pp_sort_kind ppf = function
  | S_i64 -> Fmt.string ppf "i64"
  | S_f64 -> Fmt.string ppf "f64"
  | S_string -> Fmt.string ppf "String"
  | S_bool -> Fmt.string ppf "bool"
  | S_unit -> Fmt.string ppf "Unit"
  | S_eq name -> Fmt.string ppf name
  | S_vec elem -> Fmt.pf ppf "(Vec %s)" elem

(* ------------------------------------------------------------------ *)
(* Function tables                                                     *)
(* ------------------------------------------------------------------ *)

type engine = Legacy | Arena

let engine_of_string = function
  | "legacy" -> Some Legacy
  | "arena" -> Some Arena
  | _ -> None

let engine_to_string = function Legacy -> "legacy" | Arena -> "arena"

type row = { mutable out : Value.t; mutable stamp : int }

(** One journal entry (legacy store only): the key and row as they were
    when the entry was appended, plus the stamp at append time.  An entry
    is {e live} iff the table still maps that exact key to that exact row
    record and the row's stamp still equals the recorded one (a later
    rewrite of the same row appends a fresh entry and retires this one). *)
type log_entry = { le_args : Value.t array; le_row : row; le_stamp : int }

(** Row storage: boxed hashtable + journal, or a flat arena (which is its
    own journal — rows are appended in stamp order). *)
type store = S_hash of row Value.Args_tbl.t | S_arena of Arena.table

type func = {
  sym : Symbol.t;
  arg_sorts : sort_kind array;
  ret_sort : sort_kind;
  cost : int option;  (** :cost of this constructor, used by extraction *)
  unextractable : bool;
  merge : (Value.t -> Value.t -> Value.t) option;
      (** how to reconcile two outputs for the same key (primitives only);
          [None] means: error on conflicting primitive outputs *)
  mutable store : store;
  mutable last_modified : int;
      (** stamp of the last insertion, output change, deletion, or
          canonicalization touching this table — drives the scheduler's
          dirty-table rule skipping and the matcher's index invalidation *)
  mutable log : log_entry array;
      (** legacy journal of row insertions and rewrites, in stamp order;
          seminaive e-matching scans the suffix newer than a rule's
          last-scan stamp instead of the whole table *)
  mutable log_len : int;
}

let is_constructor f = match f.ret_sort with S_eq _ -> true | _ -> false
let arena_of f = match f.store with S_arena a -> Some a | S_hash _ -> None

(* ------------------------------------------------------------------ *)
(* The e-graph                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  engine : engine;
  uf : Union_find.t;
  pool : Arena.pool;  (** value interning for arena codes (arena engine) *)
  funcs : func Symbol.Tbl.t;
  mutable func_order : Symbol.t list;  (** declaration order, for printing *)
  sorts : (string, sort_kind) Hashtbl.t;
  costs : (int * Value.t) Value.Args_tbl.t Symbol.Tbl.t;
      (** unstable-cost overrides: per function, canonical args -> (cost, output value at set time) *)
  mutable clock : int;  (** bumped on every mutation; used for fixpoint detection *)
  mutable n_unions : int;
  (* when [immediate_rebuild] is set, every union triggers a full rebuild
     (the "no deferral" ablation from DESIGN.md §5.1) *)
  mutable immediate_rebuild : bool;
  mutable pending_unions : bool;
      (** true iff a union happened since the last {!rebuild}; a clean graph
          makes rebuild O(1) instead of a full table scan *)
  mutable n_rows_cache : int;
      (** exact live row count across all tables, maintained incrementally
          so the {!Limits} gauge's per-iteration [n_nodes] poll is O(1)
          instead of a fold over every table *)
}

let create ?(engine = Arena) () =
  let t =
    {
      engine;
      uf = Union_find.create ();
      pool = Arena.create_pool ();
      funcs = Symbol.Tbl.create 64;
      func_order = [];
      sorts = Hashtbl.create 32;
      costs = Symbol.Tbl.create 16;
      clock = 0;
      n_unions = 0;
      immediate_rebuild = false;
      pending_unions = false;
      n_rows_cache = 0;
    }
  in
  List.iter
    (fun (name, kind) -> Hashtbl.replace t.sorts name kind)
    [
      ("i64", S_i64);
      ("f64", S_f64);
      ("String", S_string);
      ("bool", S_bool);
      ("Unit", S_unit);
    ];
  t

let engine t = t.engine
let pool t = t.pool
let uf t = t.uf
let clock t = t.clock
let touched t = t.clock <- t.clock + 1

(** Bump the clock and return it: a timestamp strictly greater than every
    clock value observed before the call.  Rows are stamped with this, so a
    scan that records [clock t] as its horizon sees every later mutation as
    [stamp > horizon]. *)
let next_stamp t =
  t.clock <- t.clock + 1;
  t.clock

(* --- per-table journal (legacy store) --------------------------------- *)

let dummy_log_entry =
  { le_args = [||]; le_row = { out = Value.Unit; stamp = -1 }; le_stamp = -1 }

let log_entry_live (f : func) (e : log_entry) =
  e.le_row.stamp = e.le_stamp
  &&
  match f.store with
  | S_arena _ -> false
  | S_hash tbl -> (
    match Value.Args_tbl.find_opt tbl e.le_args with
    | Some r -> r == e.le_row
    | None -> false)

(** Append a journal entry for [(args -> row)], retiring any earlier entry
    for the same row (liveness is checked via the row's current stamp).
    Compacts the journal when more than half of it is dead. *)
let log_append (f : func) args (row : row) =
  let cap = Array.length f.log in
  if f.log_len = cap then begin
    let live = Array.sub f.log 0 f.log_len |> Array.to_list |> List.filter (log_entry_live f) in
    let n_live = List.length live in
    if n_live * 2 <= f.log_len && f.log_len >= 32 then begin
      (* mostly dead: compact in place, preserving stamp order *)
      List.iteri (fun i e -> f.log.(i) <- e) live;
      Array.fill f.log n_live (f.log_len - n_live) dummy_log_entry;
      f.log_len <- n_live
    end
    else begin
      let log' = Array.make (max 32 (cap * 2)) dummy_log_entry in
      Array.blit f.log 0 log' 0 f.log_len;
      f.log <- log'
    end
  end;
  f.log.(f.log_len) <- { le_args = args; le_row = row; le_stamp = row.stamp };
  f.log_len <- f.log_len + 1

(** Look up a declared sort by name. *)
let find_sort t name =
  match Hashtbl.find_opt t.sorts name with
  | Some k -> k
  | None -> error "unknown sort %s" name

let sort_declared t name = Hashtbl.mem t.sorts name

(** [declare_sort t name] declares a new equivalence sort. *)
let declare_sort t name =
  if Hashtbl.mem t.sorts name then error "sort %s already declared" name;
  Hashtbl.replace t.sorts name (S_eq name);
  touched t

(** [declare_vec_sort t name elem] declares [(sort name (Vec elem))]. *)
let declare_vec_sort t name elem =
  if Hashtbl.mem t.sorts name then error "sort %s already declared" name;
  ignore (find_sort t elem);
  Hashtbl.replace t.sorts name (S_vec elem);
  touched t

(** [declare_function t ~name ~args ~ret ~cost ~merge ~unextractable]
    declares a function table.  [args] and [ret] are sort names. *)
let declare_function t ~name ~args ~ret ~cost ~merge ~unextractable =
  let sym = Symbol.intern name in
  if Symbol.Tbl.mem t.funcs sym then error "function %s already declared" name;
  let arg_sorts = Array.of_list (List.map (find_sort t) args) in
  let store =
    match t.engine with
    | Legacy -> S_hash (Value.Args_tbl.create 16)
    | Arena -> S_arena (Arena.create ~arity:(Array.length arg_sorts))
  in
  let f =
    {
      sym;
      arg_sorts;
      ret_sort = find_sort t ret;
      cost;
      unextractable;
      merge;
      store;
      last_modified = 0;
      log = [||];
      log_len = 0;
    }
  in
  Symbol.Tbl.replace t.funcs sym f;
  t.func_order <- t.func_order @ [ sym ];
  touched t;
  f

let find_func t sym =
  match Symbol.Tbl.find_opt t.funcs sym with
  | Some f -> f
  | None -> error "unknown function %s" (Symbol.name sym)

let find_func_opt t sym = Symbol.Tbl.find_opt t.funcs sym
let has_func t name = Symbol.Tbl.mem t.funcs (Symbol.intern name)

(** All declared functions in declaration order. *)
let functions t = List.map (find_func t) t.func_order

(* ------------------------------------------------------------------ *)
(* Sort checking                                                       *)
(* ------------------------------------------------------------------ *)

let rec value_matches_sort t (k : sort_kind) (v : Value.t) =
  match (k, v) with
  | S_i64, I64 _
  | S_f64, F64 _
  | S_string, Str _
  | S_bool, Bool _
  | S_unit, Unit
  | S_eq _, Eclass _ ->
    true
  | S_vec elem, Vec elems ->
    let ek = find_sort t elem in
    Array.for_all (value_matches_sort t ek) elems
  | _ -> false

let check_args t f (args : Value.t array) =
  if Array.length args <> Array.length f.arg_sorts then
    error "%s expects %d arguments, got %d" (Symbol.name f.sym)
      (Array.length f.arg_sorts) (Array.length args);
  Array.iteri
    (fun i v ->
      if not (value_matches_sort t f.arg_sorts.(i) v) then
        error "%s: argument %d has wrong sort (expected %a, got %a)"
          (Symbol.name f.sym) i pp_sort_kind f.arg_sorts.(i) Value.pp v)
    args

(* ------------------------------------------------------------------ *)
(* Core operations                                                     *)
(* ------------------------------------------------------------------ *)

let canon t v = Value.canonicalize t.uf v

(* no-alloc fast path: during search (no pending unions) args are almost
   always already canonical, so the input array can be returned as-is *)
let canon_args t args =
  if Array.for_all (Value.is_canonical t.uf) args then args
  else Array.map (canon t) args
let find_class t id = Union_find.find t.uf id

(** Allocate a fresh, empty e-class. *)
let fresh_class t =
  touched t;
  Union_find.fresh t.uf

(* encode canonical args into arena codes *)
let encode_args t (args : Value.t array) : int array =
  Array.map (fun v -> Arena.encode t.pool v) args

let decode_row_args t (a : Arena.table) ~arity r : Value.t array =
  Array.init arity (fun i -> Arena.decode t.pool (Arena.arg_code a r i))

(** [lookup t f args] finds the output for [args] if the row exists. *)
let lookup t f args =
  let args = canon_args t args in
  match f.store with
  | S_hash tbl -> (
    match Value.Args_tbl.find_opt tbl args with
    | Some row -> Some (canon t row.out)
    | None -> None)
  | S_arena a ->
    let r = Arena.find a (encode_args t args) in
    if r < 0 then None
    else Some (canon t (Arena.decode t.pool (Arena.out_code a r)))

(** [insert t f args out] unconditionally inserts a row (caller must have
    resolved conflicts; [args] and [out] are canonical).  Internal. *)
let insert_row t f args out =
  let stamp = next_stamp t in
  (match f.store with
  | S_hash tbl ->
    let row = { out; stamp } in
    Value.Args_tbl.replace tbl args row;
    log_append f args row
  | S_arena a ->
    ignore (Arena.append a (encode_args t args) (Arena.encode t.pool out) stamp));
  f.last_modified <- stamp;
  t.n_rows_cache <- t.n_rows_cache + 1

(** Number of rows (e-nodes) across all tables.  O(1): the count is
    maintained incrementally on insert / delete / congruence merges, since
    the {!Limits} gauge polls it every saturation iteration. *)
let n_nodes t = t.n_rows_cache

(** Recount rows from the tables (consistency checks in tests). *)
let recount_nodes t =
  Symbol.Tbl.fold
    (fun _ f acc ->
      acc
      +
      match f.store with
      | S_hash tbl -> Value.Args_tbl.length tbl
      | S_arena a -> Arena.n_live a)
    t.funcs 0

(** Approximate e-graph footprint in words, for memory budgets: per row we
    charge the key array, the row record and the hash-table slot; the
    journal charges its entries; the union-find charges one word per
    class.  A deliberate under-estimate is fine — the budget is a
    guard-rail against runaway growth, not an accountant. *)
let approx_memory_words t =
  let per_func acc f =
    match f.store with
    | S_hash tbl ->
      let arity = Array.length f.arg_sorts in
      let rows = Value.Args_tbl.length tbl in
      (* key array (arity+1 header), row record (3), table slot (3) *)
      acc + (rows * (arity + 7)) + (f.log_len * (arity + 4))
    | S_arena a -> acc + Arena.memory_words a
  in
  let tables = Symbol.Tbl.fold (fun _ f acc -> per_func acc f) t.funcs 0 in
  let costs =
    Symbol.Tbl.fold
      (fun _ tbl acc -> acc + (Value.Args_tbl.length tbl * 6))
      t.costs 0
  in
  let pool = match t.engine with Arena -> Arena.pool_memory_words t.pool | Legacy -> 0 in
  tables + costs + pool + Union_find.size t.uf

(* ------------------------------------------------------------------ *)
(* Iteration (used by the matcher, extraction and statistics)          *)
(* ------------------------------------------------------------------ *)

(** Iterate over all rows of [f] as (canonical args, canonical output,
    stamp).  When the graph is clean (no unions since the last rebuild)
    every stored row is already canonical, so no per-row canonicalization
    or copying happens. *)
let iter_rows_stamped t f (k : Value.t array -> Value.t -> int -> unit) =
  let clean = not t.pending_unions in
  match f.store with
  | S_hash tbl ->
    if clean then Value.Args_tbl.iter (fun args row -> k args row.out row.stamp) tbl
    else
      Value.Args_tbl.iter
        (fun args row -> k (canon_args t args) (canon t row.out) row.stamp)
        tbl
  | S_arena a ->
    let arity = Array.length f.arg_sorts in
    Arena.iter_live a (fun r ->
        let args = decode_row_args t a ~arity r in
        let out = Arena.decode t.pool (Arena.out_code a r) in
        if clean then k args out (Arena.stamp a r)
        else k (canon_args t args) (canon t out) (Arena.stamp a r))

(** Iterate rows as (canonical args, canonical output). *)
let iter_rows t f k = iter_rows_stamped t f (fun args out _ -> k args out)

(** Fold over rows of [f]. *)
let fold_rows t f init k =
  let acc = ref init in
  iter_rows t f (fun args out -> acc := k !acc args out);
  !acc

(** Number of canonical e-classes that appear as some row's output. *)
let n_classes t =
  let seen = Hashtbl.create 64 in
  Symbol.Tbl.iter
    (fun _ f ->
      iter_rows t f (fun _ out ->
          match out with
          | Value.Eclass id -> Hashtbl.replace seen (find_class t id) ()
          | _ -> ()))
    t.funcs;
  Hashtbl.length seen

(* ------------------------------------------------------------------ *)
(* Union + rebuild                                                     *)
(* ------------------------------------------------------------------ *)

let merge_outputs t f a b =
  let a = canon t a and b = canon t b in
  if Value.equal a b then a
  else
    match (a, b) with
    | Eclass x, Eclass y ->
      t.n_unions <- t.n_unions + 1;
      touched t;
      t.pending_unions <- true;
      Value.Eclass (Union_find.union t.uf x y)
    | _ -> (
      match f.merge with
      | Some m ->
        let v = m a b in
        if not (Value.equal v a) then touched t;
        v
      | None ->
        error "merge conflict in %s: %a vs %a (no :merge declared)"
          (Symbol.name f.sym) Value.pp a Value.pp b)

(* one re-canonicalization pass over a legacy (hashtable) store *)
let rebuild_pass_hash t f tbl =
  let stale =
    (* find rows whose key or output is stale *)
    Value.Args_tbl.fold
      (fun args row acc ->
        if
          Array.for_all (Value.is_canonical t.uf) args
          && Value.is_canonical t.uf row.out
        then acc
        else (args, row) :: acc)
      tbl []
  in
  if stale = [] then false
  else begin
    List.iter (fun (args, _) -> Value.Args_tbl.remove tbl args) stale;
    List.iter
      (fun (args, row) ->
        let args' = canon_args t args in
        let out' = canon t row.out in
        (* canonicalization rewrote this row: it gets a fresh stamp and a
           fresh journal entry so seminaive matching sees it as new —
           class merges are exactly what enables new joins over it *)
        match Value.Args_tbl.find_opt tbl args' with
        | None ->
          let row' = { out = out'; stamp = next_stamp t } in
          Value.Args_tbl.replace tbl args' row';
          f.last_modified <- row'.stamp;
          log_append f args' row'
        | Some existing ->
          (* congruence: two rows collapsed onto the same key *)
          existing.out <- merge_outputs t f existing.out out';
          existing.stamp <- next_stamp t;
          f.last_modified <- existing.stamp;
          log_append f args' existing;
          t.n_rows_cache <- t.n_rows_cache - 1)
      stale;
    true
  end

(* one re-canonicalization pass over an arena store: stale rows are killed
   and re-appended with canonical codes and fresh stamps; key collisions
   merge outputs (congruence) *)
let rebuild_pass_arena t f (a : Arena.table) =
  let uf = t.uf and pool = t.pool in
  let arity = Array.length f.arg_sorts in
  let stale = ref [] in
  Arena.iter_live a (fun r ->
      let ok = ref (Arena.code_canonical uf pool (Arena.out_code a r)) in
      let i = ref 0 in
      while !ok && !i < arity do
        if not (Arena.code_canonical uf pool (Arena.arg_code a r !i)) then ok := false;
        incr i
      done;
      if not !ok then stale := r :: !stale);
  match !stale with
  | [] -> false
  | stale ->
    List.iter
      (fun r ->
        (* a row in the stale list may have been killed already by an
           earlier collision rewrite in this same pass *)
        if not (Arena.is_dead a r) then begin
          let key' =
            Array.init arity (fun i -> Arena.canon_code uf pool (Arena.arg_code a r i))
          in
          let out' = Arena.canon_code uf pool (Arena.out_code a r) in
          Arena.kill a r;
          match Arena.find a key' with
          | -1 ->
            let stamp = next_stamp t in
            ignore (Arena.append a key' out' stamp);
            f.last_modified <- stamp
          | r2 ->
            (* congruence: two rows collapsed onto the same key *)
            let merged =
              merge_outputs t f
                (Arena.decode pool (Arena.out_code a r2))
                (Arena.decode pool out')
            in
            let stamp = next_stamp t in
            ignore (Arena.rewrite a r2 (Arena.encode pool merged) stamp);
            f.last_modified <- stamp;
            t.n_rows_cache <- t.n_rows_cache - 1
        end)
      (List.rev stale);
    true

(** One pass of table re-canonicalization over [fs.(0..limit)].  Returns
    (changed, last function index whose scan performed a union, or -1).
    Functions after that index were scanned under the final union-find of
    the pass, so the next pass can skip them. *)
let rebuild_pass t (fs : func array) ~limit =
  let changed = ref false in
  let last_union = ref (-1) in
  for i = 0 to limit do
    let f = fs.(i) in
    let u0 = t.n_unions in
    let c =
      match f.store with
      | S_hash tbl -> rebuild_pass_hash t f tbl
      | S_arena a -> rebuild_pass_arena t f a
    in
    if c then changed := true;
    if t.n_unions <> u0 then last_union := i
  done;
  (!changed, !last_union)

(* canonicalize unstable-cost overrides; keep the cheapest on collision.
   Runs once per rebuild, against the final union-find. *)
let rebuild_costs t =
  Symbol.Tbl.iter
    (fun _ tbl ->
      let stale =
        Value.Args_tbl.fold
          (fun args ((_, outv) as c) acc ->
            if Array.for_all (Value.is_canonical t.uf) args && Value.is_canonical t.uf outv
            then acc
            else (args, c) :: acc)
          tbl []
      in
      List.iter (fun (args, _) -> Value.Args_tbl.remove tbl args) stale;
      List.iter
        (fun (args, (c, outv)) ->
          let args' = canon_args t args in
          let outv' = canon t outv in
          match Value.Args_tbl.find_opt tbl args' with
          | None -> Value.Args_tbl.replace tbl args' (c, outv')
          | Some (c', _) -> if c < c' then Value.Args_tbl.replace tbl args' (c, outv'))
        stale)
    t.costs

(** Restore congruence: re-canonicalize all tables until fixpoint.  O(1)
    when no union happened since the last rebuild (the tables are already
    canonical then — only unions introduce stale keys).  Arena tables are
    compacted afterwards (dead rows dropped in place), so searches only
    ever see dense, live, canonical rows. *)
let rebuild t =
  if t.pending_unions then begin
    let fs =
      Array.of_list (Symbol.Tbl.fold (fun _ f acc -> f :: acc) t.funcs [])
    in
    let passes = ref 0 in
    let limit = ref (Array.length fs - 1) in
    let continue_ = ref true in
    while !continue_ do
      (* a pass that rewrote rows without performing any union left every
         row it touched canonical under the final union-find, so the
         fixpoint is already reached: only new unions (congruence
         collisions merging outputs) can invalidate earlier tables — and
         only those scanned at or before the last union *)
      let changed, last_union = rebuild_pass t fs ~limit:!limit in
      incr passes;
      if !passes > 100_000 then error "rebuild did not converge";
      limit := last_union;
      continue_ := changed && last_union >= 0
    done;
    rebuild_costs t;
    t.pending_unions <- false
  end;
  if t.engine = Arena then
    Symbol.Tbl.iter
      (fun _ f -> match f.store with S_arena a -> Arena.compact a | S_hash _ -> ())
      t.funcs

(** [union t a b] asserts that classes [a] and [b] are equal.  Deferred:
    congruence is only restored at the next {!rebuild} (unless the
    immediate-rebuild ablation flag is on). *)
let union t a b =
  let ra = find_class t a and rb = find_class t b in
  if ra <> rb then begin
    ignore (Union_find.union t.uf ra rb);
    t.n_unions <- t.n_unions + 1;
    touched t;
    t.pending_unions <- true;
    if t.immediate_rebuild then rebuild t
  end

(** [union_values t a b] unions two values; both must be e-class refs, or
    equal primitives. *)
let union_values t a b =
  match (canon t a, canon t b) with
  | Value.Eclass x, Value.Eclass y -> union t x y
  | a', b' ->
    if not (Value.equal a' b') then
      error "cannot union distinct primitive values %a and %a" Value.pp a' Value.pp b'

(** Constructor/table application: look up [args]; on a miss, constructors
    allocate a fresh e-class and insert the row.  Non-constructor misses
    return [None] (the caller decides whether that is an error). *)
let apply t f args =
  check_args t f args;
  let args = canon_args t args in
  match f.store with
  | S_hash tbl -> (
    match Value.Args_tbl.find_opt tbl args with
    | Some row -> Some (canon t row.out)
    | None ->
      if is_constructor f then begin
        let id = fresh_class t in
        let out = Value.Eclass id in
        insert_row t f args out;
        Some out
      end
      else if f.ret_sort = S_unit then begin
        (* relations: applying one in an action asserts the fact *)
        insert_row t f args Value.Unit;
        Some Value.Unit
      end
      else None)
  | S_arena a ->
    (* the key codes are computed once and shared by the probe and the
       miss-path insert (the miss path is the common one while a rule is
       still growing the graph) *)
    let key = encode_args t args in
    let r = Arena.find a key in
    if r >= 0 then Some (canon t (Arena.decode t.pool (Arena.out_code a r)))
    else
      let insert out =
        let stamp = next_stamp t in
        ignore (Arena.append a key (Arena.encode t.pool out) stamp);
        f.last_modified <- stamp;
        t.n_rows_cache <- t.n_rows_cache + 1;
        Some out
      in
      if is_constructor f then insert (Value.Eclass (fresh_class t))
      else if f.ret_sort = S_unit then insert Value.Unit
      else None

(** [set t f args out] inserts or merges a row ([(set (f args) out)]). *)
let set t f args out =
  check_args t f args;
  if not (value_matches_sort t f.ret_sort out) then
    error "%s: output has wrong sort (expected %a, got %a)" (Symbol.name f.sym)
      pp_sort_kind f.ret_sort Value.pp out;
  let args = canon_args t args in
  let out = canon t out in
  (match f.store with
  | S_hash tbl -> (
    match Value.Args_tbl.find_opt tbl args with
    | None -> insert_row t f args out
    | Some row ->
      let merged = merge_outputs t f row.out out in
      if not (Value.equal merged row.out) then begin
        row.out <- merged;
        row.stamp <- next_stamp t;
        f.last_modified <- row.stamp;
        log_append f args row
      end)
  | S_arena a -> (
    let key = encode_args t args in
    match Arena.find a key with
    | -1 ->
      let stamp = next_stamp t in
      ignore (Arena.append a key (Arena.encode t.pool out) stamp);
      f.last_modified <- stamp;
      t.n_rows_cache <- t.n_rows_cache + 1
    | r ->
      let old_out = Arena.decode t.pool (Arena.out_code a r) in
      let merged = merge_outputs t f old_out out in
      if not (Value.equal merged old_out) then begin
        let stamp = next_stamp t in
        ignore (Arena.rewrite a r (Arena.encode t.pool merged) stamp);
        f.last_modified <- stamp
      end));
  if t.immediate_rebuild then rebuild t

(* ------------------------------------------------------------------ *)
(* Code-level operations (compiled appliers, arena engine only)        *)
(* ------------------------------------------------------------------ *)

let canon_code t c = Arena.canon_code t.uf t.pool c
let code_matches_sort t k c = value_matches_sort t k (Arena.decode t.pool c)

(** Code-level {!apply} for compiled appliers (arena store only): [key]'s
    codes are canonicalized {e in place}, and the result is the output
    code, or [-1] when the function has no defined output for [key].
    Identical semantics to {!apply} — misses insert for constructors and
    relations — minus every intermediate [Value.t]. *)
let apply_codes t f (key : int array) : int =
  match f.store with
  | S_hash _ -> invalid_arg "Egraph.apply_codes: legacy store"
  | S_arena a ->
    for i = 0 to Array.length key - 1 do
      key.(i) <- Arena.canon_code t.uf t.pool key.(i)
    done;
    let r = Arena.find a key in
    if r >= 0 then Arena.canon_code t.uf t.pool (Arena.out_code a r)
    else
      let insert out =
        let stamp = next_stamp t in
        ignore (Arena.append a key out stamp);
        f.last_modified <- stamp;
        t.n_rows_cache <- t.n_rows_cache + 1;
        out
      in
      if is_constructor f then insert (Arena.code_of_class (fresh_class t))
      else if f.ret_sort = S_unit then insert (Arena.encode t.pool Value.Unit)
      else -1

(** Code-level {!set} (arena store only); [key] canonicalized in place. *)
let set_codes t f (key : int array) (out : int) =
  match f.store with
  | S_hash _ -> invalid_arg "Egraph.set_codes: legacy store"
  | S_arena a -> (
    for i = 0 to Array.length key - 1 do
      key.(i) <- Arena.canon_code t.uf t.pool key.(i)
    done;
    let out = Arena.canon_code t.uf t.pool out in
    match Arena.find a key with
    | -1 ->
      let stamp = next_stamp t in
      ignore (Arena.append a key out stamp);
      f.last_modified <- stamp;
      t.n_rows_cache <- t.n_rows_cache + 1
    | r ->
      let old_code = Arena.out_code a r in
      if old_code <> out then begin
        (* merge functions are value-level; only conflicts pay the decode *)
        let old_out = Arena.decode t.pool old_code in
        let merged = merge_outputs t f old_out (Arena.decode t.pool out) in
        if not (Value.equal merged old_out) then begin
          let stamp = next_stamp t in
          ignore (Arena.rewrite a r (Arena.encode t.pool merged) stamp);
          f.last_modified <- stamp
        end
      end)

(** Code-level {!union_values}. *)
let union_codes t a b =
  if Arena.is_class_code a && Arena.is_class_code b then
    union t (Arena.class_of_code a) (Arena.class_of_code b)
  else union_values t (Arena.decode t.pool a) (Arena.decode t.pool b)

(** [delete t f args] removes a row if present. *)
let delete t f args =
  let args = canon_args t args in
  let removed =
    match f.store with
    | S_hash tbl ->
      if Value.Args_tbl.mem tbl args then begin
        Value.Args_tbl.remove tbl args;
        true
      end
      else false
    | S_arena a -> Arena.remove a (encode_args t args)
  in
  if removed then begin
    f.last_modified <- next_stamp t;
    t.n_rows_cache <- t.n_rows_cache - 1
    (* the journal entry for the removed row goes dead automatically: its
       key no longer resolves to its row *)
  end

(* ------------------------------------------------------------------ *)
(* unstable-cost overrides                                             *)
(* ------------------------------------------------------------------ *)

(** [set_cost t f args cost] overrides the extraction cost of the e-node
    [(f args)] — the paper's [unstable-cost] command.  The node must exist. *)
let set_cost t f args cost =
  let args = canon_args t args in
  let out =
    match lookup t f args with
    | Some v -> v
    | None -> error "unstable-cost: e-node (%s ...) not present" (Symbol.name f.sym)
  in
  let tbl =
    match Symbol.Tbl.find_opt t.costs f.sym with
    | Some tbl -> tbl
    | None ->
      let tbl = Value.Args_tbl.create 8 in
      Symbol.Tbl.replace t.costs f.sym tbl;
      tbl
  in
  (match Value.Args_tbl.find_opt tbl args with
  | Some (c, _) when c <= cost -> () (* keep the cheaper override *)
  | _ ->
    Value.Args_tbl.replace tbl args (cost, out);
    touched t)

(** [set_cost_codes t f key out cost] — code-level fast path for
    [unstable-cost].  [key] must hold canonical codes for a row that is
    already present with output code [out] (e.g. both fresh out of
    {!apply_codes}), so the canonicalization and existence lookup of
    {!set_cost} can be skipped. *)
let set_cost_codes t f (key : int array) (out : int) cost =
  let args = Array.map (fun c -> Arena.decode t.pool c) key in
  let tbl =
    match Symbol.Tbl.find_opt t.costs f.sym with
    | Some tbl -> tbl
    | None ->
      let tbl = Value.Args_tbl.create 8 in
      Symbol.Tbl.replace t.costs f.sym tbl;
      tbl
  in
  match Value.Args_tbl.find_opt tbl args with
  | Some (c, _) when c <= cost -> ()
  | _ ->
    Value.Args_tbl.replace tbl args (cost, Arena.decode t.pool out);
    touched t

(** Cost override for node [(f args)], if any. *)
let cost_override t f args =
  match Symbol.Tbl.find_opt t.costs f.sym with
  | None -> None
  | Some tbl -> (
    match Value.Args_tbl.find_opt tbl (canon_args t args) with
    | Some (c, _) -> Some c
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Seminaive deltas and output queries                                 *)
(* ------------------------------------------------------------------ *)

(** [iter_rows_since t f ~since k] iterates only the rows of [f] inserted
    or rewritten strictly after stamp [since], as
    (canonical args, canonical output, stamp) — the seminaive delta.
    Cost is proportional to the number of rows newer than [since], not the
    table size.  The legacy store scans its journal suffix; the arena
    store {e is} its own journal (rows are appended in stamp order), so
    the delta is a binary search plus a suffix walk. *)
let iter_rows_since t f ~since k =
  match f.store with
  | S_hash _ ->
    (* journal entries are in stamp order: scan the suffix *)
    let lo =
      (* binary search for the first entry with stamp > since *)
      let lo = ref 0 and hi = ref f.log_len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if f.log.(mid).le_stamp > since then hi := mid else lo := mid + 1
      done;
      !lo
    in
    for i = lo to f.log_len - 1 do
      let e = f.log.(i) in
      if log_entry_live f e then
        k (canon_args t e.le_args) (canon t e.le_row.out) e.le_stamp
    done
  | S_arena a ->
    let arity = Array.length f.arg_sorts in
    let lo = Arena.delta_start a ~since in
    for r = lo to Arena.n_rows a - 1 do
      if not (Arena.is_dead a r) then begin
        let args = decode_row_args t a ~arity r in
        let out = Arena.decode t.pool (Arena.out_code a r) in
        k (canon_args t args) (canon t out) (Arena.stamp a r)
      end
    done

(** [lookup_row t f args] is {!lookup} plus the row's stamp. *)
let lookup_row t f args =
  let args = canon_args t args in
  match f.store with
  | S_hash tbl -> (
    match Value.Args_tbl.find_opt tbl args with
    | Some row -> Some (canon t row.out, row.stamp)
    | None -> None)
  | S_arena a ->
    let r = Arena.find a (encode_args t args) in
    if r < 0 then None
    else Some (canon t (Arena.decode t.pool (Arena.out_code a r)), Arena.stamp a r)

(** [rows_with_output t f cls] lists rows of [f] whose output is in class
    [cls] — the e-nodes of [cls] built by [f]. *)
let rows_with_output t f cls =
  let cls = find_class t cls in
  List.rev
    (fold_rows t f [] (fun acc args out ->
         match out with
         | Value.Eclass id when find_class t id = cls -> (args, out) :: acc
         | _ -> acc))

(* ------------------------------------------------------------------ *)
(* Snapshots (push/pop)                                                *)
(* ------------------------------------------------------------------ *)

(** Deep copy of the whole e-graph (tables, union-find, cost overrides).
    Used by the interpreter's [push]/[pop].  Key arrays are {e shared}
    with the original, not copied: no operation ever mutates a stored key
    array in place (canonicalization removes rows and inserts fresh
    arrays), so the copy only needs fresh row records and table spines.
    Arena tables copy flat int arrays, which is the cheap case.  The value
    pool is shared too — it is append-only, and codes stay valid across
    snapshots. *)
let copy t : t =
  let copy_func (f : func) =
    let store =
      match f.store with
      | S_hash tbl ->
        let tbl' = Value.Args_tbl.create (Value.Args_tbl.length tbl) in
        Value.Args_tbl.iter
          (fun k (row : row) ->
            Value.Args_tbl.replace tbl' k { out = row.out; stamp = row.stamp })
          tbl;
        S_hash tbl'
      | S_arena a -> S_arena (Arena.copy a)
    in
    (* the journal restarts empty: a restored snapshot forces full rescans
       anyway (the interpreter resets every rule's scan horizon on pop) *)
    { f with store; log = [||]; log_len = 0 }
  in
  let funcs = Symbol.Tbl.create (Symbol.Tbl.length t.funcs) in
  Symbol.Tbl.iter (fun sym f -> Symbol.Tbl.replace funcs sym (copy_func f)) t.funcs;
  let costs = Symbol.Tbl.create (Symbol.Tbl.length t.costs) in
  Symbol.Tbl.iter
    (fun sym tbl ->
      let tbl' = Value.Args_tbl.create (Value.Args_tbl.length tbl) in
      Value.Args_tbl.iter (fun k v -> Value.Args_tbl.replace tbl' k v) tbl;
      Symbol.Tbl.replace costs sym tbl')
    t.costs;
  {
    engine = t.engine;
    uf = Union_find.copy t.uf;
    pool = t.pool;
    funcs;
    func_order = t.func_order;
    sorts = Hashtbl.copy t.sorts;
    costs;
    clock = t.clock;
    n_unions = t.n_unions;
    immediate_rebuild = t.immediate_rebuild;
    pending_unions = t.pending_unions;
    n_rows_cache = t.n_rows_cache;
  }

let pp_stats ppf t =
  Fmt.pf ppf "e-graph: %d nodes, %d classes, %d unions" (n_nodes t) (n_classes t)
    t.n_unions
