(** The e-graph, represented as a functional database (the Egglog model).

    Every Egglog function — including datatype constructors — is a {e table}
    mapping a tuple of argument values to one output value.  Constructors are
    tables whose output sort is an equivalence sort: looking up a missing row
    allocates a fresh e-class, which makes the table a hash-cons.  An e-node
    is therefore a table row, and the set of rows whose output is (congruent
    to) class [c] is the set of e-nodes in [c].

    Unification is a union-find over e-class ids.  After unions, tables may
    contain stale (non-canonical) keys; {!rebuild} restores the invariant
    that all keys and outputs are canonical, merging rows that collide
    (congruence closure) until a fixed point is reached. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Sorts                                                               *)
(* ------------------------------------------------------------------ *)

type sort_kind =
  | S_i64
  | S_f64
  | S_string
  | S_bool
  | S_unit
  | S_eq of string  (** user-declared equivalence sort *)
  | S_vec of string  (** vector container; payload is the element sort name *)

let pp_sort_kind ppf = function
  | S_i64 -> Fmt.string ppf "i64"
  | S_f64 -> Fmt.string ppf "f64"
  | S_string -> Fmt.string ppf "String"
  | S_bool -> Fmt.string ppf "bool"
  | S_unit -> Fmt.string ppf "Unit"
  | S_eq name -> Fmt.string ppf name
  | S_vec elem -> Fmt.pf ppf "(Vec %s)" elem

(* ------------------------------------------------------------------ *)
(* Function tables                                                     *)
(* ------------------------------------------------------------------ *)

type row = { mutable out : Value.t; mutable stamp : int }

(** One journal entry: the key and row as they were when the entry was
    appended, plus the stamp at append time.  An entry is {e live} iff the
    table still maps that exact key to that exact row record and the row's
    stamp still equals the recorded one (a later rewrite of the same row
    appends a fresh entry and retires this one). *)
type log_entry = { le_args : Value.t array; le_row : row; le_stamp : int }

type func = {
  sym : Symbol.t;
  arg_sorts : sort_kind array;
  ret_sort : sort_kind;
  cost : int option;  (** :cost of this constructor, used by extraction *)
  unextractable : bool;
  merge : (Value.t -> Value.t -> Value.t) option;
      (** how to reconcile two outputs for the same key (primitives only);
          [None] means: error on conflicting primitive outputs *)
  mutable table : row Value.Args_tbl.t;
  mutable last_modified : int;
      (** stamp of the last insertion, output change, deletion, or
          canonicalization touching this table — drives the scheduler's
          dirty-table rule skipping and the matcher's index invalidation *)
  mutable log : log_entry array;
      (** append-only journal of row insertions and rewrites, in stamp
          order; seminaive e-matching scans the suffix newer than a rule's
          last-scan stamp instead of the whole table *)
  mutable log_len : int;
}

let is_constructor f = match f.ret_sort with S_eq _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* The e-graph                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  uf : Union_find.t;
  funcs : func Symbol.Tbl.t;
  mutable func_order : Symbol.t list;  (** declaration order, for printing *)
  sorts : (string, sort_kind) Hashtbl.t;
  costs : (int * Value.t) Value.Args_tbl.t Symbol.Tbl.t;
      (** unstable-cost overrides: per function, canonical args -> (cost, output value at set time) *)
  mutable clock : int;  (** bumped on every mutation; used for fixpoint detection *)
  mutable n_unions : int;
  (* when [immediate_rebuild] is set, every union triggers a full rebuild
     (the "no deferral" ablation from DESIGN.md §5.1) *)
  mutable immediate_rebuild : bool;
  mutable pending_unions : bool;
      (** true iff a union happened since the last {!rebuild}; a clean graph
          makes rebuild O(1) instead of a full table scan *)
}

let create () =
  let t =
    {
      uf = Union_find.create ();
      funcs = Symbol.Tbl.create 64;
      func_order = [];
      sorts = Hashtbl.create 32;
      costs = Symbol.Tbl.create 16;
      clock = 0;
      n_unions = 0;
      immediate_rebuild = false;
      pending_unions = false;
    }
  in
  List.iter
    (fun (name, kind) -> Hashtbl.replace t.sorts name kind)
    [
      ("i64", S_i64);
      ("f64", S_f64);
      ("String", S_string);
      ("bool", S_bool);
      ("Unit", S_unit);
    ];
  t

let clock t = t.clock
let touched t = t.clock <- t.clock + 1

(** Bump the clock and return it: a timestamp strictly greater than every
    clock value observed before the call.  Rows are stamped with this, so a
    scan that records [clock t] as its horizon sees every later mutation as
    [stamp > horizon]. *)
let next_stamp t =
  t.clock <- t.clock + 1;
  t.clock

(* --- per-table journal ------------------------------------------------ *)

let dummy_log_entry =
  { le_args = [||]; le_row = { out = Value.Unit; stamp = -1 }; le_stamp = -1 }

let log_entry_live (f : func) (e : log_entry) =
  e.le_row.stamp = e.le_stamp
  &&
  match Value.Args_tbl.find_opt f.table e.le_args with
  | Some r -> r == e.le_row
  | None -> false

(** Append a journal entry for [(args -> row)], retiring any earlier entry
    for the same row (liveness is checked via the row's current stamp).
    Compacts the journal when more than half of it is dead. *)
let log_append (f : func) args (row : row) =
  let cap = Array.length f.log in
  if f.log_len = cap then begin
    let live = Array.sub f.log 0 f.log_len |> Array.to_list |> List.filter (log_entry_live f) in
    let n_live = List.length live in
    if n_live * 2 <= f.log_len && f.log_len >= 32 then begin
      (* mostly dead: compact in place, preserving stamp order *)
      List.iteri (fun i e -> f.log.(i) <- e) live;
      Array.fill f.log n_live (f.log_len - n_live) dummy_log_entry;
      f.log_len <- n_live
    end
    else begin
      let log' = Array.make (max 32 (cap * 2)) dummy_log_entry in
      Array.blit f.log 0 log' 0 f.log_len;
      f.log <- log'
    end
  end;
  f.log.(f.log_len) <- { le_args = args; le_row = row; le_stamp = row.stamp };
  f.log_len <- f.log_len + 1

(** Look up a declared sort by name. *)
let find_sort t name =
  match Hashtbl.find_opt t.sorts name with
  | Some k -> k
  | None -> error "unknown sort %s" name

let sort_declared t name = Hashtbl.mem t.sorts name

(** [declare_sort t name] declares a new equivalence sort. *)
let declare_sort t name =
  if Hashtbl.mem t.sorts name then error "sort %s already declared" name;
  Hashtbl.replace t.sorts name (S_eq name);
  touched t

(** [declare_vec_sort t name elem] declares [(sort name (Vec elem))]. *)
let declare_vec_sort t name elem =
  if Hashtbl.mem t.sorts name then error "sort %s already declared" name;
  ignore (find_sort t elem);
  Hashtbl.replace t.sorts name (S_vec elem);
  touched t

(** [declare_function t ~name ~args ~ret ~cost ~merge ~unextractable]
    declares a function table.  [args] and [ret] are sort names. *)
let declare_function t ~name ~args ~ret ~cost ~merge ~unextractable =
  let sym = Symbol.intern name in
  if Symbol.Tbl.mem t.funcs sym then error "function %s already declared" name;
  let f =
    {
      sym;
      arg_sorts = Array.of_list (List.map (find_sort t) args);
      ret_sort = find_sort t ret;
      cost;
      unextractable;
      merge;
      table = Value.Args_tbl.create 16;
      last_modified = 0;
      log = [||];
      log_len = 0;
    }
  in
  Symbol.Tbl.replace t.funcs sym f;
  t.func_order <- t.func_order @ [ sym ];
  touched t;
  f

let find_func t sym =
  match Symbol.Tbl.find_opt t.funcs sym with
  | Some f -> f
  | None -> error "unknown function %s" (Symbol.name sym)

let find_func_opt t sym = Symbol.Tbl.find_opt t.funcs sym
let has_func t name = Symbol.Tbl.mem t.funcs (Symbol.intern name)

(** All declared functions in declaration order. *)
let functions t = List.map (find_func t) t.func_order

(* ------------------------------------------------------------------ *)
(* Sort checking                                                       *)
(* ------------------------------------------------------------------ *)

let rec value_matches_sort t (k : sort_kind) (v : Value.t) =
  match (k, v) with
  | S_i64, I64 _
  | S_f64, F64 _
  | S_string, Str _
  | S_bool, Bool _
  | S_unit, Unit
  | S_eq _, Eclass _ ->
    true
  | S_vec elem, Vec elems ->
    let ek = find_sort t elem in
    Array.for_all (value_matches_sort t ek) elems
  | _ -> false

let check_args t f (args : Value.t array) =
  if Array.length args <> Array.length f.arg_sorts then
    error "%s expects %d arguments, got %d" (Symbol.name f.sym)
      (Array.length f.arg_sorts) (Array.length args);
  Array.iteri
    (fun i v ->
      if not (value_matches_sort t f.arg_sorts.(i) v) then
        error "%s: argument %d has wrong sort (expected %a, got %a)"
          (Symbol.name f.sym) i pp_sort_kind f.arg_sorts.(i) Value.pp v)
    args

(* ------------------------------------------------------------------ *)
(* Core operations                                                     *)
(* ------------------------------------------------------------------ *)

let canon t v = Value.canonicalize t.uf v

(* no-alloc fast path: during search (no pending unions) args are almost
   always already canonical, so the input array can be returned as-is *)
let canon_args t args =
  if Array.for_all (Value.is_canonical t.uf) args then args
  else Array.map (canon t) args
let find_class t id = Union_find.find t.uf id

(** Allocate a fresh, empty e-class. *)
let fresh_class t =
  touched t;
  Union_find.fresh t.uf

(** [lookup t f args] finds the output for [args] if the row exists. *)
let lookup t f args =
  let args = canon_args t args in
  match Value.Args_tbl.find_opt f.table args with
  | Some row -> Some (canon t row.out)
  | None -> None

(** [insert t f args out] unconditionally inserts a row (caller must have
    resolved conflicts).  Internal. *)
let insert_row t f args out =
  let stamp = next_stamp t in
  let row = { out; stamp } in
  Value.Args_tbl.replace f.table args row;
  f.last_modified <- stamp;
  log_append f args row

(** Number of rows (e-nodes) across all tables. *)
let n_nodes t =
  Symbol.Tbl.fold (fun _ f acc -> acc + Value.Args_tbl.length f.table) t.funcs 0

(** Approximate e-graph footprint in words, for memory budgets: per row we
    charge the key array, the row record and the hash-table slot; the
    journal charges its entries; the union-find charges one word per
    class.  A deliberate under-estimate is fine — the budget is a
    guard-rail against runaway growth, not an accountant. *)
let approx_memory_words t =
  let per_func acc f =
    let arity = Array.length f.arg_sorts in
    let rows = Value.Args_tbl.length f.table in
    (* key array (arity+1 header), row record (3), table slot (3) *)
    acc + (rows * (arity + 7)) + (f.log_len * (arity + 4))
  in
  let tables = Symbol.Tbl.fold (fun _ f acc -> per_func acc f) t.funcs 0 in
  let costs =
    Symbol.Tbl.fold
      (fun _ tbl acc -> acc + (Value.Args_tbl.length tbl * 6))
      t.costs 0
  in
  tables + costs + Union_find.size t.uf

(** Number of canonical e-classes that appear as some row's output. *)
let n_classes t =
  let seen = Hashtbl.create 64 in
  Symbol.Tbl.iter
    (fun _ f ->
      Value.Args_tbl.iter
        (fun _ row ->
          match row.out with
          | Eclass id -> Hashtbl.replace seen (find_class t id) ()
          | _ -> ())
        f.table)
    t.funcs;
  Hashtbl.length seen

(* ------------------------------------------------------------------ *)
(* Union + rebuild                                                     *)
(* ------------------------------------------------------------------ *)

let merge_outputs t f a b =
  let a = canon t a and b = canon t b in
  if Value.equal a b then a
  else
    match (a, b) with
    | Eclass x, Eclass y ->
      t.n_unions <- t.n_unions + 1;
      touched t;
      t.pending_unions <- true;
      Value.Eclass (Union_find.union t.uf x y)
    | _ -> (
      match f.merge with
      | Some m ->
        let v = m a b in
        if not (Value.equal v a) then touched t;
        v
      | None ->
        error "merge conflict in %s: %a vs %a (no :merge declared)"
          (Symbol.name f.sym) Value.pp a Value.pp b)

(** One pass of table re-canonicalization.  Returns true if any union or
    output change happened (meaning another pass is required). *)
let rebuild_pass t =
  let changed = ref false in
  Symbol.Tbl.iter
    (fun _ f ->
      let stale =
        (* find rows whose key or output is stale *)
        Value.Args_tbl.fold
          (fun args row acc ->
            if
              Array.for_all (Value.is_canonical t.uf) args
              && Value.is_canonical t.uf row.out
            then acc
            else (args, row) :: acc)
          f.table []
      in
      if stale <> [] then begin
        changed := true;
        List.iter (fun (args, _) -> Value.Args_tbl.remove f.table args) stale;
        List.iter
          (fun (args, row) ->
            let args' = canon_args t args in
            let out' = canon t row.out in
            (* canonicalization rewrote this row: it gets a fresh stamp and a
               fresh journal entry so seminaive matching sees it as new —
               class merges are exactly what enables new joins over it *)
            match Value.Args_tbl.find_opt f.table args' with
            | None ->
              let row' = { out = out'; stamp = next_stamp t } in
              Value.Args_tbl.replace f.table args' row';
              f.last_modified <- row'.stamp;
              log_append f args' row'
            | Some existing ->
              (* congruence: two rows collapsed onto the same key *)
              existing.out <- merge_outputs t f existing.out out';
              existing.stamp <- next_stamp t;
              f.last_modified <- existing.stamp;
              log_append f args' existing)
          stale
      end)
    t.funcs;
  (* canonicalize unstable-cost overrides; keep the cheapest on collision *)
  Symbol.Tbl.iter
    (fun _ tbl ->
      let stale =
        Value.Args_tbl.fold
          (fun args ((_, outv) as c) acc ->
            if Array.for_all (Value.is_canonical t.uf) args && Value.is_canonical t.uf outv
            then acc
            else (args, c) :: acc)
          tbl []
      in
      List.iter (fun (args, _) -> Value.Args_tbl.remove tbl args) stale;
      List.iter
        (fun (args, (c, outv)) ->
          let args' = canon_args t args in
          let outv' = canon t outv in
          match Value.Args_tbl.find_opt tbl args' with
          | None -> Value.Args_tbl.replace tbl args' (c, outv')
          | Some (c', _) -> if c < c' then Value.Args_tbl.replace tbl args' (c, outv'))
        stale)
    t.costs;
  !changed

(** Restore congruence: re-canonicalize all tables until fixpoint.  O(1)
    when no union happened since the last rebuild (the tables are already
    canonical then — only unions introduce stale keys). *)
let rebuild t =
  if t.pending_unions then begin
    let passes = ref 0 in
    while rebuild_pass t do
      incr passes;
      if !passes > 100_000 then error "rebuild did not converge"
    done;
    t.pending_unions <- false
  end

(** [union t a b] asserts that classes [a] and [b] are equal.  Deferred:
    congruence is only restored at the next {!rebuild} (unless the
    immediate-rebuild ablation flag is on). *)
let union t a b =
  let ra = find_class t a and rb = find_class t b in
  if ra <> rb then begin
    ignore (Union_find.union t.uf ra rb);
    t.n_unions <- t.n_unions + 1;
    touched t;
    t.pending_unions <- true;
    if t.immediate_rebuild then rebuild t
  end

(** [union_values t a b] unions two values; both must be e-class refs, or
    equal primitives. *)
let union_values t a b =
  match (canon t a, canon t b) with
  | Value.Eclass x, Value.Eclass y -> union t x y
  | a', b' ->
    if not (Value.equal a' b') then
      error "cannot union distinct primitive values %a and %a" Value.pp a' Value.pp b'

(** Constructor/table application: look up [args]; on a miss, constructors
    allocate a fresh e-class and insert the row.  Non-constructor misses
    return [None] (the caller decides whether that is an error). *)
let apply t f args =
  check_args t f args;
  let args = canon_args t args in
  match Value.Args_tbl.find_opt f.table args with
  | Some row -> Some (canon t row.out)
  | None ->
    if is_constructor f then begin
      let id = fresh_class t in
      let out = Value.Eclass id in
      insert_row t f args out;
      Some out
    end
    else if f.ret_sort = S_unit then begin
      (* relations: applying one in an action asserts the fact *)
      insert_row t f args Value.Unit;
      Some Value.Unit
    end
    else None

(** [set t f args out] inserts or merges a row ([(set (f args) out)]). *)
let set t f args out =
  check_args t f args;
  if not (value_matches_sort t f.ret_sort out) then
    error "%s: output has wrong sort (expected %a, got %a)" (Symbol.name f.sym)
      pp_sort_kind f.ret_sort Value.pp out;
  let args = canon_args t args in
  let out = canon t out in
  match Value.Args_tbl.find_opt f.table args with
  | None -> insert_row t f args out
  | Some row ->
    let merged = merge_outputs t f row.out out in
    if not (Value.equal merged row.out) then begin
      row.out <- merged;
      row.stamp <- next_stamp t;
      f.last_modified <- row.stamp;
      log_append f args row
    end;
    if t.immediate_rebuild then rebuild t

(** [delete t f args] removes a row if present. *)
let delete t f args =
  let args = canon_args t args in
  if Value.Args_tbl.mem f.table args then begin
    Value.Args_tbl.remove f.table args;
    f.last_modified <- next_stamp t
    (* the journal entry for the removed row goes dead automatically: its
       key no longer resolves to its row *)
  end

(* ------------------------------------------------------------------ *)
(* unstable-cost overrides                                             *)
(* ------------------------------------------------------------------ *)

(** [set_cost t f args cost] overrides the extraction cost of the e-node
    [(f args)] — the paper's [unstable-cost] command.  The node must exist. *)
let set_cost t f args cost =
  let args = canon_args t args in
  let out =
    match Value.Args_tbl.find_opt f.table args with
    | Some row -> canon t row.out
    | None -> error "unstable-cost: e-node (%s ...) not present" (Symbol.name f.sym)
  in
  let tbl =
    match Symbol.Tbl.find_opt t.costs f.sym with
    | Some tbl -> tbl
    | None ->
      let tbl = Value.Args_tbl.create 8 in
      Symbol.Tbl.replace t.costs f.sym tbl;
      tbl
  in
  (match Value.Args_tbl.find_opt tbl args with
  | Some (c, _) when c <= cost -> () (* keep the cheaper override *)
  | _ ->
    Value.Args_tbl.replace tbl args (cost, out);
    touched t)

(** Cost override for node [(f args)], if any. *)
let cost_override t f args =
  match Symbol.Tbl.find_opt t.costs f.sym with
  | None -> None
  | Some tbl -> (
    match Value.Args_tbl.find_opt tbl (canon_args t args) with
    | Some (c, _) -> Some c
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Iteration (used by the matcher and extraction)                      *)
(* ------------------------------------------------------------------ *)

(** Iterate over all rows of [f] as (canonical args, canonical output).
    The table must be rebuilt for the canonical forms to be stable. *)
let iter_rows t f k =
  Value.Args_tbl.iter (fun args row -> k (canon_args t args) (canon t row.out)) f.table

(** Fold over rows of [f]. *)
let fold_rows t f init k =
  Value.Args_tbl.fold
    (fun args row acc -> k acc (canon_args t args) (canon t row.out))
    f.table init

(** [iter_rows_since t f ~since k] iterates only the rows of [f] inserted
    or rewritten strictly after stamp [since], as
    (canonical args, canonical output, stamp) — the seminaive delta.
    Cost is proportional to the number of journal entries newer than
    [since], not the table size. *)
let iter_rows_since t f ~since k =
  (* journal entries are in stamp order: scan the suffix *)
  let lo =
    (* binary search for the first entry with stamp > since *)
    let lo = ref 0 and hi = ref f.log_len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if f.log.(mid).le_stamp > since then hi := mid else lo := mid + 1
    done;
    !lo
  in
  for i = lo to f.log_len - 1 do
    let e = f.log.(i) in
    if log_entry_live f e then
      k (canon_args t e.le_args) (canon t e.le_row.out) e.le_stamp
  done

(** [lookup_row t f args] is {!lookup} plus the row's stamp. *)
let lookup_row t f args =
  let args = canon_args t args in
  match Value.Args_tbl.find_opt f.table args with
  | Some row -> Some (canon t row.out, row.stamp)
  | None -> None

(** [rows_with_output t f cls] lists rows of [f] whose output is in class
    [cls] — the e-nodes of [cls] built by [f]. *)
let rows_with_output t f cls =
  let cls = find_class t cls in
  fold_rows t f [] (fun acc args out ->
      match out with
      | Value.Eclass id when find_class t id = cls -> (args, out) :: acc
      | _ -> acc)

(* ------------------------------------------------------------------ *)
(* Snapshots (push/pop)                                                *)
(* ------------------------------------------------------------------ *)

(** Deep copy of the whole e-graph (tables, union-find, cost overrides).
    Used by the interpreter's [push]/[pop]. *)
let copy t : t =
  let copy_func (f : func) =
    let table = Value.Args_tbl.create (Value.Args_tbl.length f.table) in
    Value.Args_tbl.iter (fun k (row : row) -> Value.Args_tbl.replace table (Array.copy k) { row with out = row.out }) f.table;
    (* the journal restarts empty: a restored snapshot forces full rescans
       anyway (the interpreter resets every rule's scan horizon on pop) *)
    { f with table; log = [||]; log_len = 0 }
  in
  let funcs = Symbol.Tbl.create (Symbol.Tbl.length t.funcs) in
  Symbol.Tbl.iter (fun sym f -> Symbol.Tbl.replace funcs sym (copy_func f)) t.funcs;
  let costs = Symbol.Tbl.create (Symbol.Tbl.length t.costs) in
  Symbol.Tbl.iter
    (fun sym tbl ->
      let tbl' = Value.Args_tbl.create (Value.Args_tbl.length tbl) in
      Value.Args_tbl.iter (fun k v -> Value.Args_tbl.replace tbl' (Array.copy k) v) tbl;
      Symbol.Tbl.replace costs sym tbl')
    t.costs;
  {
    uf = Union_find.copy t.uf;
    funcs;
    func_order = t.func_order;
    sorts = Hashtbl.copy t.sorts;
    costs;
    clock = t.clock;
    n_unions = t.n_unions;
    immediate_rebuild = t.immediate_rebuild;
    pending_unions = t.pending_unions;
  }

let pp_stats ppf t =
  Fmt.pf ppf "e-graph: %d nodes, %d classes, %d unions" (n_nodes t) (n_classes t)
    t.n_unions
