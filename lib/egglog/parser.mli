(** Parser from Egglog source text (s-expressions) to the command AST.

    Atom interpretation: [?name] is a pattern variable (the prefix is kept
    in the {!Ast.expr.Var} name, so pattern variables can never collide
    with let-binding names); integer- and float-looking atoms are
    literals; [true]/[false] are booleans; any other atom is a name
    resolved against bindings at run time. *)

exception Error of string

(** Parse a whole program. *)
val parse_program : string -> Ast.command list

(** Parse a whole program, pairing each command with the located
    s-expression it was read from (for diagnostics). *)
val parse_program_located : string -> (Ast.command * Sexp.located) list

(** Parse a single expression. *)
val parse_expr : string -> Ast.expr

(** Convert one parsed s-expression. *)
val command_of_sexp : Sexp.t -> Ast.command

val expr_of_sexp : Sexp.t -> Ast.expr

(** Atom classification used for literals (exposed for the checker). *)
val is_int_atom : string -> bool

val is_float_atom : string -> bool
