(** E-matching: finding all substitutions under which a rule's premises hold
    in the current e-graph.

    The matcher works on a snapshot {!index} of the e-graph, built once per
    saturation iteration after {!Egraph.rebuild}: for every function we
    collect its canonical rows and index them by output e-class, so that
    nested patterns ([(Div (Mul ?x ?y) ?z)]) can look up the candidate child
    e-nodes in O(1).

    Premises (facts) are solved left to right over a list of candidate
    environments:
    - an application whose head is a declared function is a {e pattern}: it
      is matched against the function's rows (a relational join);
    - an application whose head is a primitive is {e evaluated}; in guard
      position it must produce [true];
    - [(= e1 e2 ...)] unifies the value of all [ei], binding variables that
      are still free.

    Variable conventions: [?x] is always a pattern variable; a bare name is
    resolved as a rule-local or global binding if one exists, and is
    otherwise treated as a pattern variable (Egglog "new syntax"). *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

module Env = Map.Make (String)

type env = Value.t Env.t

(* ------------------------------------------------------------------ *)
(* Persistent index                                                    *)
(* ------------------------------------------------------------------ *)

(* Cached indexes for one function table, over entries of (canonical args,
   canonical output, row stamp): [by_output] buckets rows by output e-class
   (joining a pattern whose result class is known), [by_arg] buckets rows
   by (argument position, argument e-class) (joining a pattern any of whose
   arguments is known).  Buckets are mutable list refs so construction is a
   single linear pass (one hash lookup + cons per row per key).  The cache
   is invalidated by the table's [last_modified] stamp, so across
   saturation iterations only the tables that actually changed are
   re-indexed — untouched tables keep their index verbatim. *)
type fcache = {
  mutable by_output : (int, (Value.t array * Value.t * int) list ref) Hashtbl.t;
  mutable by_arg : (int * int, (Value.t array * Value.t * int) list ref) Hashtbl.t;
  mutable built_at : int;  (* the table's last_modified when built *)
}

(* Growable ascending row-id vector: one column-index bucket.  Kept as
   (buffer, length) so appending new rows between iterations never copies
   what is already there. *)
type ivec = { mutable iv_buf : int array; mutable iv_len : int }

(* open-addressed int -> ivec map for the column-index buckets (ops are
   defined with the generic join below) *)
type imap = {
  mutable im_keys : int array;  (* -1 = empty *)
  mutable im_vals : ivec array;
  mutable im_count : int;
  mutable im_mask : int;
}

(* Per-function column index over an arena table: for every column
   (arguments and output), a hashtable from code to the ascending vector of
   row indices holding that code.  Feeds the generic join.  Rows appended
   since the last build are added incrementally; the index is rebuilt from
   scratch only when the table's row numbering changed ({!Arena.compact})
   or rows died without a compaction yet. *)
type cimap_col = {
  mutable cm_version : int;  (* Arena.version when this column was built *)
  mutable cm_rows : int;  (* Arena.n_rows already indexed *)
  mutable cm_dead : int;  (* Arena.n_dead at the last sync *)
  mutable cm_im : imap;
}

type colindex = {
  ci_cols : cimap_col array;
}

type index = {
  eg : Egraph.t;
  globals : (string, Value.t) Hashtbl.t;
  caches : fcache Symbol.Tbl.t;
  colindexes : colindex Symbol.Tbl.t;
}

(** Build a matching index over [eg].  [globals] are the interpreter's
    top-level let-bindings.  The index is cheap to create and {e persistent}:
    per-function structures are built lazily on first use and reused across
    saturation iterations until the underlying table changes.  Matching
    requires the e-graph to be rebuilt (congruence restored). *)
let make_index eg globals : index =
  { eg; globals; caches = Symbol.Tbl.create 64; colindexes = Symbol.Tbl.create 64 }

let func_of idx sym : Egraph.func =
  match Egraph.find_func_opt idx.eg sym with
  | Some f -> f
  | None -> error "unknown function %s in pattern" (Symbol.name sym)

let bucket_add tbl key entry =
  match Hashtbl.find_opt tbl key with
  | Some bucket -> bucket := entry :: !bucket
  | None -> Hashtbl.add tbl key (ref [ entry ])

let fcache_of idx (f : Egraph.func) : fcache =
  let c =
    match Symbol.Tbl.find_opt idx.caches f.sym with
    | Some c -> c
    | None ->
      let c = { by_output = Hashtbl.create 8; by_arg = Hashtbl.create 8; built_at = min_int } in
      Symbol.Tbl.replace idx.caches f.sym c;
      c
  in
  if c.built_at < f.Egraph.last_modified then begin
    let n =
      max 8
        (match f.Egraph.store with
        | Egraph.S_hash tbl -> Value.Args_tbl.length tbl
        | Egraph.S_arena a -> Arena.n_live a)
    in
    let out_tbl = Hashtbl.create n in
    let arg_tbl = Hashtbl.create n in
    Egraph.iter_rows_stamped idx.eg f (fun cargs out stamp ->
        let entry = (cargs, out, stamp) in
        (match out with
        | Value.Eclass id -> bucket_add out_tbl id entry
        | _ -> ());
        Array.iteri
          (fun i a ->
            match a with Value.Eclass id -> bucket_add arg_tbl (i, id) entry | _ -> ())
          cargs);
    c.by_output <- out_tbl;
    c.by_arg <- arg_tbl;
    c.built_at <- f.Egraph.last_modified
  end;
  c

(** Rows of [f] whose output is in class [cls], with their stamps. *)
let rows_of_output idx (f : Egraph.func) cls : (Value.t array * Value.t * int) list =
  let c = fcache_of idx f in
  match Hashtbl.find_opt c.by_output (Egraph.find_class idx.eg cls) with
  | Some bucket -> !bucket
  | None -> []

let rows_with_output idx sym cls : (Value.t array * Value.t * int) list =
  rows_of_output idx (func_of idx sym) cls

(** Rows of [f] whose [pos]-th argument is in class [cls]. *)
let rows_with_arg idx (f : Egraph.func) pos cls : (Value.t array * Value.t * int) list =
  let c = fcache_of idx f in
  match Hashtbl.find_opt c.by_arg (pos, Egraph.find_class idx.eg cls) with
  | Some bucket -> !bucket
  | None -> []

(* ------------------------------------------------------------------ *)
(* Variable resolution                                                 *)
(* ------------------------------------------------------------------ *)

let is_pattern_var name = String.length name > 0 && name.[0] = '?'

(** Resolve name [x] under [env]: rule-local binding first, then globals. *)
let resolve idx env x =
  match Env.find_opt x env with
  | Some v -> Some v
  | None -> if is_pattern_var x then None else Hashtbl.find_opt idx.globals x

let values_equal idx a b =
  Value.equal a b || Value.equal (Egraph.canon idx.eg a) (Egraph.canon idx.eg b)

(* ------------------------------------------------------------------ *)
(* Expression evaluation (ground expressions inside premises)          *)
(* ------------------------------------------------------------------ *)

(** Try to evaluate [e] to a value under [env].  Returns [None] when the
    expression mentions an unbound variable, a missing table row, or a
    primitive error — all of which mean "this premise does not (yet) hold".
    Constructor applications are {e looked up}, never created: premises must
    not mutate the e-graph. *)
let rec eval_opt idx env (e : Ast.expr) : Value.t option =
  match e with
  | Var x -> resolve idx env x
  | Wildcard -> None
  | Lit l -> Some (value_of_lit l)
  | Call (f, args) -> (
    let rec eval_args acc = function
      | [] -> Some (List.rev acc)
      | a :: rest -> (
        match eval_opt idx env a with
        | Some v -> eval_args (v :: acc) rest
        | None -> None)
    in
    match eval_args [] args with
    | None -> None
    | Some vals -> (
      if Primitives.is_primitive f then
        try Some (Primitives.apply f vals) with Primitives.Error _ -> None
      else
        match Egraph.find_func_opt idx.eg (Symbol.intern f) with
        | Some fn -> Egraph.lookup idx.eg fn (Array.of_list vals)
        | None -> error "unknown function or primitive %s" f))

and value_of_lit : Ast.lit -> Value.t = function
  | L_i64 n -> I64 n
  | L_f64 f -> F64 f
  | L_string s -> Str s
  | L_bool b -> Bool b
  | L_unit -> Unit

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

(** [match_value idx env pat v] extends [env] in all ways that make [pat]
    match the (canonical) value [v]. *)
let rec match_value idx env (pat : Ast.expr) (v : Value.t) : env list =
  match pat with
  | Wildcard -> [ env ]
  | Lit l -> if values_equal idx (value_of_lit l) v then [ env ] else []
  | Var x -> (
    match resolve idx env x with
    | Some bound -> if values_equal idx bound v then [ env ] else []
    | None -> [ Env.add x (Egraph.canon idx.eg v) env ])
  | Call ("vec-of", pats) -> (
    (* destructuring vector pattern *)
    match v with
    | Vec elems when Array.length elems = List.length pats ->
      List.fold_left
        (fun envs (i, p) ->
          List.concat_map (fun env -> match_value idx env p elems.(i)) envs)
        [ env ]
        (List.mapi (fun i p -> (i, p)) pats)
    | _ -> [])
  | Call (f, _) when Primitives.is_primitive f -> (
    (* computed sub-expression: evaluate and compare *)
    match eval_opt idx env pat with
    | Some pv -> if values_equal idx pv v then [ env ] else []
    | None -> [])
  | Call (f, arg_pats) -> (
    (* child e-node pattern: v must be an e-class containing an f-node *)
    match v with
    | Eclass cls -> (
      let sym = Symbol.intern f in
      match Egraph.find_func_opt idx.eg sym with
      | None -> error "unknown function or primitive %s" f
      | Some fn ->
        List.concat_map
          (fun (args, _, _) -> match_args idx env arg_pats args)
          (rows_of_output idx fn cls))
    | _ -> [])

and match_args idx env (pats : Ast.expr list) (args : Value.t array) : env list =
  if List.length pats <> Array.length args then []
  else
    let rec go envs i = function
      | [] -> envs
      | p :: rest ->
        let envs = List.concat_map (fun env -> match_value idx env p args.(i)) envs in
        if envs = [] then [] else go envs (i + 1) rest
    in
    go [ env ] 0 pats

(** How one table occurrence is restricted in a seminaive delta term.
    [Δ(R₁⋈…⋈Rₖ) = Σₜ (R₁ᵒˡᵈ ⋈ … ⋈ ΔRₜ ⋈ … ⋈ Rₖᶠᵘˡˡ)]: the [t]-th term
    takes the delta at occurrence [t], {e old} rows (stamp ≤ since) at
    occurrences before it and the full table after it, so each combination
    of rows is produced by exactly one term — no cross-term duplicates. *)
type occ_mode =
  | M_full
  | M_delta of int  (** only rows with stamp > since *)
  | M_old of int  (** only rows with stamp ≤ since *)

let occ_admits occ stamp =
  match occ with
  | M_full -> true
  | M_delta ts -> stamp > ts
  | M_old ts -> stamp <= ts

(** First argument pattern already bound to an e-class under [env] (an
    entry point into the by-arg index). *)
let find_bound_arg idx env (arg_pats : Ast.expr list) : (int * int) option =
  let rec go i = function
    | [] -> None
    | p :: rest -> (
      match eval_opt idx env p with
      | Some v -> (
        match Egraph.canon idx.eg v with
        | Value.Eclass id -> Some (i, id)
        | _ -> go (i + 1) rest)
      | None -> go (i + 1) rest)
  in
  go 0 arg_pats

(** Match a top-level pattern [(f pats)] against rows of [f], yielding
    [(env, output)] pairs; [occ] restricts which rows participate.  If some
    argument pattern already has a known e-class value under [env], only
    the rows sharing that argument are scanned (via the by-arg index); a
    delta occurrence scans the journal suffix; otherwise the whole table is
    folded directly — no per-iteration row-list snapshot is materialized. *)
let match_rooted_occ idx env (f : string) (arg_pats : Ast.expr list)
    ~(occ : occ_mode) : (env * Value.t) list =
  let fn = func_of idx (Symbol.intern f) in
  match occ with
  | M_delta ts ->
    let acc = ref [] in
    Egraph.iter_rows_since idx.eg fn ~since:ts (fun args out _stamp ->
        List.iter
          (fun env -> acc := (env, out) :: !acc)
          (match_args idx env arg_pats args));
    !acc
  | M_full | M_old _ -> (
    match find_bound_arg idx env arg_pats with
    | Some (pos, cls) ->
      List.fold_left
        (fun acc (args, out, stamp) ->
          if occ_admits occ stamp then
            List.fold_left
              (fun acc env -> (env, out) :: acc)
              acc
              (match_args idx env arg_pats args)
          else acc)
        []
        (rows_with_arg idx fn pos cls)
    | None ->
      let acc = ref [] in
      Egraph.iter_rows_stamped idx.eg fn (fun args out stamp ->
          if occ_admits occ stamp then
            List.iter
              (fun env -> acc := (env, out) :: !acc)
              (match_args idx env arg_pats args));
      !acc)

let match_rooted idx env f arg_pats = match_rooted_occ idx env f arg_pats ~occ:M_full

(* ------------------------------------------------------------------ *)
(* Fact solving                                                        *)
(* ------------------------------------------------------------------ *)

(** Can [e] be evaluated directly (no free variables)? *)
let rec is_ground idx env (e : Ast.expr) =
  match e with
  | Var x -> resolve idx env x <> None
  | Wildcard -> false
  | Lit _ -> true
  | Call (_, args) -> List.for_all (is_ground idx env) args

let eval_args_opt idx env (args : Ast.expr list) : Value.t list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> (
      match eval_opt idx env a with Some v -> go (v :: acc) rest | None -> None)
  in
  go [] args

(** [solve_expr idx env e target] produces environments under which [e]
    holds.  With [target = Some v], [e] must match/evaluate to [v]; the
    returned value component is the value of [e].

    [~occ] restricts the expression's {e root} table operation to a stamp
    range (see {!occ_mode}) — the seminaive old/delta designation.  Only
    declared-function applications are ever restricted (the compiler only
    designates those as delta atoms). *)
let solve_expr ?(occ : occ_mode = M_full) idx env (e : Ast.expr)
    ~(target : Value.t option) : (env * Value.t) list =
  match (e, target) with
  | Call (f, arg_pats), Some v when (not (Primitives.is_primitive f)) && occ <> M_full -> (
    match Egraph.canon idx.eg v with
    | Eclass cls ->
      let sym = Symbol.intern f in
      ignore (func_of idx sym);
      List.concat_map
        (fun (args, _, stamp) ->
          if occ_admits occ stamp then
            List.map (fun env -> (env, v)) (match_args idx env arg_pats args)
          else [])
        (rows_with_output idx sym cls)
    | v ->
      (* primitive-output table: no by-output index; scan the admitted
         rows and keep those whose output equals the target *)
      List.filter_map
        (fun (env, out) -> if values_equal idx out v then Some (env, v) else None)
        (match_rooted_occ idx env f arg_pats ~occ))
  | Call (f, arg_pats), None when (not (Primitives.is_primitive f)) && occ <> M_full ->
    if is_ground idx env e then
      (* ground table application: the lookup only counts if the row's
         stamp falls in the occurrence's range *)
      match eval_args_opt idx env arg_pats with
      | None -> []
      | Some vals -> (
        let fn = func_of idx (Symbol.intern f) in
        match Egraph.lookup_row idx.eg fn (Array.of_list vals) with
        | Some (v, stamp) when occ_admits occ stamp -> [ (env, v) ]
        | _ -> [])
    else match_rooted_occ idx env f arg_pats ~occ
  | Var x, Some v -> (
    match resolve idx env x with
    | Some bound -> if values_equal idx bound v then [ (env, v) ] else []
    | None -> [ (Env.add x (Egraph.canon idx.eg v) env, v) ])
  | Wildcard, Some v -> [ (env, v) ]
  | Var x, None -> (
    match resolve idx env x with
    | Some v -> [ (env, v) ]
    | None -> error "unconstrained variable in fact: %a" Ast.pp_expr e)
  | Wildcard, None -> error "unconstrained wildcard in fact"
  | Lit l, _ -> (
    let v = value_of_lit l in
    match target with
    | Some tv -> if values_equal idx v tv then [ (env, v) ] else []
    | None -> [ (env, v) ])
  | Call (f, _), _ when Primitives.is_primitive f -> (
    match eval_opt idx env e with
    | None ->
      (* special case: destructuring (vec-of ?a ?b) against a known target *)
      if f = "vec-of" then
        match target with
        | Some v -> List.map (fun env -> (env, v)) (match_value idx env e v)
        | None -> []
      else []
    | Some v -> (
      match target with
      | Some tv -> if values_equal idx v tv then [ (env, v) ] else []
      | None -> [ (env, v) ]))
  | Call (f, arg_pats), Some v ->
    List.map (fun env -> (env, v)) (match_value idx env (Call (f, arg_pats)) v)
  | Call (f, arg_pats), None ->
    if is_ground idx env e then
      (* ground table application: lookup *)
      match eval_opt idx env e with Some v -> [ (env, v) ] | None -> []
    else match_rooted idx env f arg_pats

(** [solve_fact_occs occ_for idx envs fact] filters/extends candidate
    environments; [occ_for j] is the stamp restriction on the [j]-th
    conjunct's root table operation (0 for an [F_expr]). *)
let solve_fact_occs (occ_for : int -> occ_mode) idx (envs : env list)
    (fact : Ast.fact) : env list =
  match fact with
  | F_expr e ->
    List.concat_map
      (fun env ->
        let results = solve_expr ~occ:(occ_for 0) idx env e ~target:None in
        (* guard position: a primitive producing a boolean must be true *)
        List.filter_map
          (fun (env, v) ->
            match v with Value.Bool b -> if b then Some env else None | _ -> Some env)
          results)
      envs
  | F_eq exprs ->
    (* process conjuncts left to right, sharing one target value; a bare
       variable seen before the target is known is deferred and bound at
       the end *)
    let exprs = List.mapi (fun i e -> (i, e)) exprs in
    List.concat_map
      (fun env ->
        let rec go env (target : Value.t option) pending = function
          | [] -> (
            match target with
            | None -> error "unconstrained (=) fact"
            | Some v ->
              let envs =
                List.fold_left
                  (fun envs p ->
                    List.concat_map
                      (fun env ->
                        List.map fst (solve_expr idx env p ~target:(Some v)))
                      envs)
                  [ env ] pending
              in
              envs)
          | (i, e) :: rest -> (
            match e with
            | Ast.Var x when resolve idx env x = None && target = None ->
              go env target (e :: pending) rest
            | _ ->
              let results = solve_expr ~occ:(occ_for i) idx env e ~target in
              List.concat_map (fun (env, v) -> go env (Some v) pending rest) results)
        in
        go env None [] exprs)
      envs

(** [solve_fact idx envs fact] filters/extends candidate environments.
    [?restrict] is the seminaive delta designation: [(j, ts)] restricts the
    [j]-th conjunct's root table operation (0 for an [F_expr]) to rows
    newer than stamp [ts]. *)
let solve_fact ?(restrict : (int * int) option) idx (envs : env list)
    (fact : Ast.fact) : env list =
  let occ_for j =
    match restrict with Some (c, ts) when c = j -> M_delta ts | _ -> M_full
  in
  solve_fact_occs occ_for idx envs fact

(** Solve all premises of a rule; returns the satisfying environments. *)
let solve_facts idx (facts : Ast.fact list) : env list =
  List.fold_left (fun envs f -> if envs = [] then [] else solve_fact idx envs f) [ Env.empty ] facts

(* ------------------------------------------------------------------ *)
(* Seminaive plans                                                     *)
(* ------------------------------------------------------------------ *)

(** One delta candidate: the [a_conj]-th conjunct of the [a_fact]-th
    (flattened) fact is an application of table [a_sym].  [a_order] is the
    join order used when this atom takes the delta: the atom's fact first
    (its small delta scan drives the join), then the remaining facts
    greedily by variable connectivity, so each subsequent fact joins
    through an index instead of enumerating its table. *)
type atom = { a_fact : int; a_conj : int; a_sym : Symbol.t; a_order : int array }

(** A compiled rule body.  [p_facts] is the flattened premise list: every
    declared-function application nested inside another pattern has been
    hoisted into its own [(= ?aux (f ...))] fact (inserted right after its
    parent, so later guards still see its variables bound).  [p_atoms] are
    the table-application occurrences; seminaive matching unions over which
    single atom reads the delta.  [p_eligible] is false when some table
    application hides where the delta cannot reach it (inside a primitive
    application, e.g. under [vec-of]) — such rules fall back to naive
    matching. *)
type plan = {
  p_facts : Ast.fact list;
  p_atoms : atom list;
  p_eligible : bool;
}

let eligible p = p.p_eligible
let plan_facts p = p.p_facts

(** Hoist nested declared-function applications out of pattern positions.

    Placement matters for join cost, so two regimes are used, keyed on
    whether the subtree's variables are all bound by {e earlier} facts:
    - a {e ground} subtree (e.g. [(type-of ?y)] with [?y] bound above)
      becomes O(1) lookups, so its facts go {e before} the parent fact,
      innermost first;
    - a {e binding} subtree (a destructuring pattern like the inner matmul
      of [(linalg_matmul (linalg_matmul ...) ...)]) goes {e after} the
      parent fact, outermost first, so each child's aux var is already
      bound (by the parent's args) and its rows are found through the
      by-output index rather than a full table scan. *)
let compile (facts : Ast.fact list) : plan =
  let counter = ref 0 in
  let eligible = ref true in
  let fresh () =
    incr counter;
    Printf.sprintf "?__sn%d" !counter
  in
  (* variables bound by the facts already emitted *)
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* ground subtrees already hoisted, keyed syntactically: a repeated
     occurrence (e.g. [(type-of ?x)] under both [nrows] and [ncols])
     reuses the first aux var instead of emitting a duplicate fact *)
  let cse : (Ast.expr, string) Hashtbl.t = Hashtbl.create 16 in
  let rec add_vars (e : Ast.expr) =
    match e with
    | Ast.Var x -> Hashtbl.replace bound x ()
    | Ast.Call (_, args) -> List.iter add_vars args
    | Wildcard | Lit _ -> ()
  in
  let rec is_ground_subtree (e : Ast.expr) =
    match e with
    | Ast.Var x -> Hashtbl.mem bound x
    | Ast.Wildcard -> false
    | Ast.Lit _ -> true
    | Ast.Call (_, args) -> List.for_all is_ground_subtree args
  in
  (* inside a primitive application the matcher evaluates, it cannot
     delta-restrict: a table call there makes the rule ineligible *)
  let rec scan_prim_args (e : Ast.expr) =
    match e with
    | Ast.Call (f, args) ->
      if not (Primitives.is_primitive f) then eligible := false;
      List.iter scan_prim_args args
    | Var _ | Wildcard | Lit _ -> ()
  in
  (* ground regime: child facts accumulate onto [pre], innermost first *)
  let rec flatten_ground pre (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Call (f, args) when Primitives.is_primitive f ->
      List.iter scan_prim_args args;
      e
    | Ast.Call (f, args) ->
      let args' =
        List.map
          (fun a ->
            match a with
            | Ast.Call (g, _) when not (Primitives.is_primitive g) -> (
              match Hashtbl.find_opt cse a with
              | Some aux -> Ast.Var aux
              | None ->
                let a' = flatten_ground pre a in
                let aux = fresh () in
                pre := !pre @ [ Ast.F_eq [ Ast.Var aux; a' ] ];
                Hashtbl.add cse a aux;
                Ast.Var aux)
            | _ -> flatten_ground pre a)
          args
      in
      Ast.Call (f, args')
    | Var _ | Wildcard | Lit _ -> e
  in
  (* binding regime: ground children onto [pre]; binding children onto
     [suf], each parent before its own children *)
  let rec flatten_pat pre suf (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Call (f, args) when Primitives.is_primitive f ->
      List.iter scan_prim_args args;
      e
    | Ast.Call (f, args) ->
      let args' =
        List.map
          (fun a ->
            match a with
            | Ast.Call (g, _) when not (Primitives.is_primitive g) ->
              if is_ground_subtree a then
                match Hashtbl.find_opt cse a with
                | Some aux -> Ast.Var aux
                | None ->
                  let a' = flatten_ground pre a in
                  let aux = fresh () in
                  pre := !pre @ [ Ast.F_eq [ Ast.Var aux; a' ] ];
                  Hashtbl.add cse a aux;
                  Ast.Var aux
              else begin
                let aux = fresh () in
                let sub_suf = ref [] in
                let a' = flatten_pat pre sub_suf a in
                suf := !suf @ (Ast.F_eq [ Ast.Var aux; a' ] :: !sub_suf);
                Ast.Var aux
              end
            | _ -> flatten_pat pre suf a)
          args
      in
      Ast.Call (f, args')
    | Var _ | Wildcard | Lit _ -> e
  in
  let flatten_fact (fact : Ast.fact) : Ast.fact list =
    let pre = ref [] and suf = ref [] in
    let fact' =
      match fact with
      | Ast.F_expr e -> Ast.F_expr (flatten_pat pre suf e)
      | Ast.F_eq es -> Ast.F_eq (List.map (flatten_pat pre suf) es)
    in
    let group = !pre @ (fact' :: !suf) in
    (* everything this group can bind is bound for the facts that follow *)
    List.iter
      (function Ast.F_eq es -> List.iter add_vars es | Ast.F_expr e -> add_vars e)
      group;
    group
  in
  let p_facts = List.concat_map flatten_fact facts in
  let facts_arr = Array.of_list p_facts in
  let n_facts = Array.length facts_arr in
  (* --- static join-order analysis -------------------------------------
     [vars.(i)]: every variable fact [i] mentions (all are bound once it is
     solved).  [requires.(i)]: variables that must already be bound when
     fact [i] runs, or the matcher would silently drop environments (vars
     inside evaluated primitive applications) or error (a bare-var fact):
     reordering must never schedule a fact before its requirements. *)
  let exprs_of = function Ast.F_expr e -> [ e ] | Ast.F_eq es -> es in
  let vars_of_fact fact =
    let acc = ref [] in
    let add x = if not (List.mem x !acc) then acc := x :: !acc in
    let rec go e =
      match e with
      | Ast.Var x -> add x
      | Ast.Call (_, args) -> List.iter go args
      | Ast.Wildcard | Ast.Lit _ -> ()
    in
    List.iter go (exprs_of fact);
    !acc
  in
  let requires_of_fact fact =
    let acc = ref [] in
    let add x = if not (List.mem x !acc) then acc := x :: !acc in
    let rec all_vars e =
      match e with
      | Ast.Var x -> add x
      | Ast.Call (_, args) -> List.iter all_vars args
      | Ast.Wildcard | Ast.Lit _ -> ()
    in
    (* [pattern] = this position is matched against a row value (can bind);
       evaluated positions require their variables *)
    let rec go ~pattern e =
      match e with
      | Ast.Var _ | Ast.Wildcard | Ast.Lit _ -> ()
      | Ast.Call ("vec-of", args) when pattern ->
        (* destructuring: elements are again pattern positions *)
        List.iter (go ~pattern:true) args
      | Ast.Call (f, args) when Primitives.is_primitive f -> List.iter all_vars args
      | Ast.Call (_, args) -> List.iter (go ~pattern:true) args
    in
    (match fact with
    | Ast.F_expr (Ast.Var x) -> add x  (* bare-var fact errors when unbound *)
    | Ast.F_expr e -> go ~pattern:false e
    | Ast.F_eq es ->
      List.iter (function Ast.Var _ | Ast.Wildcard -> () | e -> go ~pattern:false e) es;
      (* an all-variables (=) errors with nothing bound: require the first *)
      if
        List.for_all (function Ast.Var _ | Ast.Wildcard -> true | _ -> false) es
      then
        match es with Ast.Var x :: _ -> add x | _ -> ());
    !acc
  in
  let fact_vars = Array.map vars_of_fact facts_arr in
  let fact_requires = Array.map requires_of_fact facts_arr in
  let has_table_call fact =
    let rec go e =
      match e with
      | Ast.Call (f, args) ->
        (not (Primitives.is_primitive f)) || List.exists go args
      | Ast.Var _ | Ast.Wildcard | Ast.Lit _ -> false
    in
    List.exists go (exprs_of fact)
  in
  let fact_has_table = Array.map has_table_call facts_arr in
  (* greedy schedule starting from [first]: among facts whose requirements
     are met, prefer fully-bound ones (pure filters), then table facts
     sharing a bound variable (indexed joins); facts sharing nothing are
     deferred (cartesian products).  Deadlock-free: the earliest remaining
     fact in the original order always has its requirements met. *)
  let schedule ~first : int array =
    let bound = Hashtbl.create 16 in
    let bind i = List.iter (fun x -> Hashtbl.replace bound x ()) fact_vars.(i) in
    let scheduled = Array.make n_facts false in
    let order = Array.make n_facts 0 in
    scheduled.(first) <- true;
    order.(0) <- first;
    bind first;
    for k = 1 to n_facts - 1 do
      let best = ref (-1) and best_score = ref (-1) in
      for i = 0 to n_facts - 1 do
        if not scheduled.(i) then begin
          let ok = List.for_all (Hashtbl.mem bound) fact_requires.(i) in
          let score =
            if not ok then -1
            else if List.for_all (Hashtbl.mem bound) fact_vars.(i) then 3
            else if fact_has_table.(i) && List.exists (Hashtbl.mem bound) fact_vars.(i)
            then 2
            else if List.exists (Hashtbl.mem bound) fact_vars.(i) then 1
            else 0
          in
          if score > !best_score then begin
            best := i;
            best_score := score
          end
        end
      done;
      let pick =
        if !best_score >= 0 then !best
        else begin
          (* no requirements met anywhere: fall back to the earliest
             remaining fact, whose requirements the original order meets *)
          let rec earliest i = if scheduled.(i) then earliest (i + 1) else i in
          earliest 0
        end
      in
      scheduled.(pick) <- true;
      order.(k) <- pick;
      bind pick
    done;
    order
  in
  let original_order = Array.init n_facts (fun i -> i) in
  let p_atoms =
    List.concat
      (List.mapi
         (fun i (fact : Ast.fact) ->
           let order =
             (* the delta scan can only drive the join if nothing the
                atom's fact requires is missing at the start *)
             if fact_requires.(i) = [] then schedule ~first:i else original_order
           in
           let atom_of j (e : Ast.expr) =
             match e with
             | Ast.Call (f, _) when not (Primitives.is_primitive f) ->
               Some { a_fact = i; a_conj = j; a_sym = Symbol.intern f; a_order = order }
             | _ -> None
           in
           match fact with
           | Ast.F_expr e -> Option.to_list (atom_of 0 e)
           | Ast.F_eq es -> List.filter_map Fun.id (List.mapi atom_of es))
         p_facts)
  in
  { p_facts; p_atoms; p_eligible = !eligible }

(** Compiler-generated auxiliary variable? (see [fresh] in {!compile}) *)
let is_aux_var x = String.length x >= 5 && String.sub x 0 5 = "?__sn"

(** Remove duplicate environments (seminaive delta terms overlap when a
    match involves more than one new row).  Environments are compared on
    the rule's own variables only: actions never mention the compiler's
    aux vars, so environments differing only there are interchangeable
    and keeping one of them also avoids re-applying the same action. *)
let dedupe_envs (envs : env list) : env list =
  match envs with
  | [] | [ _ ] -> envs
  | _ ->
    let seen = Hashtbl.create (List.length envs) in
    List.filter
      (fun env ->
        let key =
          List.filter (fun (x, _) -> not (is_aux_var x)) (Env.bindings env)
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      envs

(** Seminaive solve: environments satisfying the plan's premises that
    involve at least one row newer than stamp [since].  Unions, over every
    atom, the term where that atom takes the delta, occurrences before it
    take only old rows and occurrences after it the full table (see
    {!occ_mode}) — each combination of rows is derived by exactly one
    term.  Atoms whose table did not change since [since] have an empty
    delta and are skipped outright, so a rule with no new relevant rows
    costs O(atoms). *)
let solve_plan_legacy idx (p : plan) ~(since : int) : env list =
  let facts = Array.of_list p.p_facts in
  let atoms = Array.of_list p.p_atoms in
  let n_facts = Array.length facts in
  let solve_term t =
    let a = atoms.(t) in
    (* per-fact conjunct→mode map for this term's occurrence restrictions *)
    let fact_occs : (int * occ_mode) list array = Array.make n_facts [] in
    Array.iteri
      (fun u (b : atom) ->
        let mode =
          if u < t then M_old since else if u = t then M_delta since else M_full
        in
        fact_occs.(b.a_fact) <- (b.a_conj, mode) :: fact_occs.(b.a_fact))
      atoms;
    (* follow the atom's precomputed join order: its (small) delta scan
       drives the join, so the remaining facts — greedily ordered by
       variable connectivity — join through the indexes instead of
       enumerating tables *)
    let envs = ref [ Env.empty ] in
    Array.iter
      (fun i ->
        if !envs <> [] then begin
          let occs = fact_occs.(i) in
          let occ_for j =
            match List.assq_opt j occs with Some m -> m | None -> M_full
          in
          envs := solve_fact_occs occ_for idx !envs facts.(i)
        end)
      a.a_order;
    !envs
  in
  let terms = ref [] in
  Array.iteri
    (fun t (a : atom) ->
      match Egraph.find_func_opt idx.eg a.a_sym with
      | Some f when f.Egraph.last_modified > since -> (
        match solve_term t with [] -> () | r -> terms := r :: !terms)
      | Some _ -> ()  (* table untouched since the rule's last scan *)
      | None -> error "unknown function %s in pattern" (Symbol.name a.a_sym))
    atoms;
  match !terms with
  | [] -> []
  | [ r ] -> r
  | rs ->
    (* terms are disjoint by construction; duplicates can still arise
       within one term (distinct rows binding the same rule variables) *)
    dedupe_envs (List.concat rs)

(* ------------------------------------------------------------------ *)
(* Column indexes and the generic join (arena engine)                  *)
(* ------------------------------------------------------------------ *)

(** Column index for [f]'s arena table.  Appends rows indexed since the
    last call; rebuilds from scratch only when the table's row numbering
    changed ({!Arena.compact} bumped the version) or rows died without a
    compaction (never the case during a search phase, which always runs on
    a freshly rebuilt graph). *)
let iv_push v x =
  (if v.iv_len = Array.length v.iv_buf then begin
     let nb = Array.make (max 8 (2 * v.iv_len)) 0 in
     Array.blit v.iv_buf 0 nb 0 v.iv_len;
     v.iv_buf <- nb
   end);
  v.iv_buf.(v.iv_len) <- x;
  v.iv_len <- v.iv_len + 1

(* Open-addressed int -> ivec map for the column-index buckets.  These sit
   on the hottest search paths (one probe per candidate x occurrence), and
   [Hashtbl.find_opt] boxes an option per hit; linear probing over flat
   int keys does not allocate at all.  Keys are arena codes, always >= 0,
   so [-1] marks an empty slot.  No deletion. *)
let im_no_rows : ivec = { iv_buf = [||]; iv_len = 0 }

let im_create () =
  {
    im_keys = Array.make 16 (-1);
    im_vals = Array.make 16 im_no_rows;
    im_count = 0;
    im_mask = 15;
  }

let im_hash k mask = (k * 0x9E3779B1) lsr 4 land mask

(** The bucket for code [k], or the shared empty ivec. *)
let im_find m k : ivec =
  let keys = m.im_keys and mask = m.im_mask in
  let i = ref (im_hash k mask) in
  let ki = ref (Array.unsafe_get keys !i) in
  while !ki <> -1 && !ki <> k do
    i := (!i + 1) land mask;
    ki := Array.unsafe_get keys !i
  done;
  if !ki = k then Array.unsafe_get m.im_vals !i else im_no_rows

let im_grow m =
  let okeys = m.im_keys and ovals = m.im_vals in
  let cap = 2 * Array.length okeys in
  let mask = cap - 1 in
  let keys = Array.make cap (-1) and vals = Array.make cap im_no_rows in
  Array.iteri
    (fun o k ->
      if k <> -1 then begin
        let i = ref (im_hash k mask) in
        while keys.(!i) <> -1 do
          i := (!i + 1) land mask
        done;
        keys.(!i) <- k;
        vals.(!i) <- ovals.(o)
      end)
    okeys;
  m.im_keys <- keys;
  m.im_vals <- vals;
  m.im_mask <- mask

(** The bucket for code [k], created empty if absent. *)
let im_get_add m k : ivec =
  let keys = m.im_keys and mask = m.im_mask in
  let i = ref (im_hash k mask) in
  while keys.(!i) <> -1 && keys.(!i) <> k do
    i := (!i + 1) land mask
  done;
  if keys.(!i) = k then m.im_vals.(!i)
  else begin
    let v = { iv_buf = Array.make 4 0; iv_len = 0 } in
    keys.(!i) <- k;
    m.im_vals.(!i) <- v;
    m.im_count <- m.im_count + 1;
    if 4 * m.im_count > 3 * (mask + 1) then im_grow m;
    v
  end

let im_iter_vals f m =
  Array.iteri (fun i k -> if k <> -1 then f m.im_vals.(i)) m.im_keys

(* Bring one column of an index up to date with table [a], mutating the
   record in place — callers may hold direct references to it (the
   per-plan scratch caches one colindex per atom), so it is never
   replaced wholesale.  Sync is per {e column} and lazy: a rule only
   pays for the columns its join actually probes. *)
let cm_sync (cm : cimap_col) (a : Arena.table) (col : int) : unit =
  let n = Arena.n_rows a in
  let index_rows lo hi =
    for r = lo to hi - 1 do
      if not (Arena.is_dead a r) then
        iv_push (im_get_add cm.cm_im (Arena.col_code a r col)) r
    done;
    cm.cm_rows <- hi
  in
  if
    cm.cm_version = Arena.version a
    && cm.cm_dead = Arena.n_dead a
    && cm.cm_rows <= n
  then begin
    (* no compaction and no new deaths since the last sync: the indexed
       prefix is still valid, only append the new rows *)
    if cm.cm_rows < n then index_rows cm.cm_rows n
  end
  else begin
    let remapped =
      (* the table compacted since the column was built: renumber every
         bucket in place (order-preserving, no hashing) and then append
         the rows added after the compaction *)
      Arena.n_dead a = 0
      &&
      match Arena.remap_from a ~from_version:cm.cm_version with
      | Some remap when cm.cm_rows <= Array.length remap ->
        im_iter_vals
          (fun v ->
            let j = ref 0 in
            for i = 0 to v.iv_len - 1 do
              let nr = remap.(v.iv_buf.(i)) in
              if nr >= 0 then begin
                v.iv_buf.(!j) <- nr;
                incr j
              end
            done;
            v.iv_len <- !j)
          cm.cm_im;
        cm.cm_version <- Arena.version a;
        cm.cm_dead <- 0;
        (* order preservation means the indexed prefix [0, cm_rows) of the
           old numbering maps onto the prefix [0, live) of the new one;
           everything after is unindexed old rows and post-compaction
           appends *)
        let live = ref 0 in
        for r = 0 to cm.cm_rows - 1 do
          if remap.(r) >= 0 then incr live
        done;
        cm.cm_rows <- live.contents;
        if cm.cm_rows < n then index_rows cm.cm_rows n;
        true
      | _ -> false
    in
    if not remapped then begin
      cm.cm_version <- Arena.version a;
      cm.cm_dead <- Arena.n_dead a;
      cm.cm_rows <- 0;
      cm.cm_im <- im_create ();
      index_rows 0 n
    end
  end

(* true when the column can be probed without first syncing it *)
let cm_fresh (cm : cimap_col) (a : Arena.table) =
  cm.cm_version = Arena.version a
  && cm.cm_dead = Arena.n_dead a
  && cm.cm_rows = Arena.n_rows a

let colindex_of idx (f : Egraph.func) (a : Arena.table) : colindex =
  match Symbol.Tbl.find_opt idx.colindexes f.sym with
  | Some c -> c
  | None ->
    let width = Array.length f.Egraph.arg_sorts + 1 in
    let c =
      {
        ci_cols =
          Array.init width (fun _ ->
              {
                cm_version = Arena.version a - 1;
                cm_rows = 0;
                cm_dead = 0;
                cm_im = im_create ();
              });
      }
    in
    Symbol.Tbl.replace idx.colindexes f.sym c;
    c

(* first index in ascending a[lo,hi) with a.(i) >= x *)
let bsearch_ge (a : int array) lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get a mid >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* --- compiled generic-join plans ------------------------------------- *)

(** One column of a flat atom: a join variable, a pinned code, or
    unconstrained (wildcard / don't-care output). *)
type gslot = G_var of int | G_lit of int | G_free

(** A flat table atom [(f c\u2080 \u2026 c\u2099\u208b\u2081) \u21a6 c\u2099]: every column is a variable,
    literal, or wildcard — no nested patterns (the plan compiler already
    hoisted those into aux facts). *)
type gatom = { g_sym : Symbol.t; g_slots : gslot array }

(** A rule body compiled for the generic join: flat atoms joined
    variable-by-variable over column indexes, then pure-primitive residual
    facts evaluated on the decoded environments. *)
type gplan = {
  gp_atoms : gatom array;
  gp_residuals : Ast.fact list;  (* original premise order preserved *)
  gp_var_names : string array;
  gp_occs : (int * int) array array;  (* var id -> (atom, column) occurrences *)
  gp_touched : int array array;  (* var id -> distinct atoms it occurs in *)
  gp_may_dup : bool;
      (* some atom has a wildcard column, so distinct witnessing rows can
         yield the same environment and results need deduplication *)
  gp_emit : int array;
      (* var ids to decode into result environments: only what the rule's
         residuals and actions read (all vars when the consumer is unknown) *)
  gp_join_vars : int;
      (* number of vars with >= 2 occurrences: only these need generic-join
         elimination; the rest are read off surviving rows at emit time *)
  gp_emit_join : (int * int) array;
      (* emitted subset of the join vars, as (var, emit slot) pairs *)
  gp_read : (int * int) array array;
      (* per atom: (emit slot, column) of its emitted single-occurrence vars *)
  gp_lits : (int * int * int) array;
      (* (atom, column, code) of every pinned literal column *)
  gp_slot : int array;  (* var -> its position in gp_emit (-1 not emitted) *)
  gp_join_list : int array;  (* var ids with >= 2 occurrences, ascending *)
  gp_probed : (int * int) array;
      (* (atom, column) pairs the join can probe through [bucket] — literal
         pins and join-variable occurrences; prewarmed before parallel
         search so domains never write to the shared column indexes *)
  mutable gp_scratch : gscratch option;
      (* per-plan working state reused across searches (a rule is searched
         by at most one domain at a time, so this is race-free); rebuilt
         when the e-graph it was built against is swapped out *)
}

(* All the allocations a generic-join search needs, hoisted out of the
   per-call path: resolved tables, row-set slots, per-variable candidate
   and save/restore buffers, and the emission row. *)
and gscratch = {
  gs_eg : Egraph.t;  (* validity token: compare with the index's graph *)
  gs_funcs : Egraph.func array;
  gs_tables : Arena.table array;
  gs_cidxs : colindex array;
  gs_range_mark : int array;
  gs_rs_buf : int array array;
  gs_rs_lo : int array;
  gs_rs_hi : int array;
  gs_cands : ivec array;
  gs_sv_buf : int array array array;
  gs_sv_lo : int array array;
  gs_sv_hi : int array array;
  gs_ibuf : int array array array;
      (* per (join var, occurrence): persistent intersection output buffer,
         grown on demand — restriction never allocates in steady state *)
  gs_lbuf : int array array;  (* per atom: ditto, for literal pinning *)
  gs_seen : (int, int) Hashtbl.t;
  mutable gs_node_id : int;  (* monotonic across calls: stale [gs_seen]
                                entries never match a live generation *)
  gs_assignment : int array;
  gs_assigned : bool array;
  gs_out : int array;  (* emitted codes, gp_emit order *)
}

(** Try to compile [p] for the generic join.  [None] falls back to the
    env-list matcher: non-arena engine, nested or destructuring patterns,
    multi-pattern equations, global references inside patterns, or
    residuals whose evaluation order the flat join cannot honor. *)
let gcompile ?(keep : string list option) idx (p : plan) : gplan option =
  if Egraph.engine idx.eg <> Egraph.Arena then None
  else begin
    let pool = Egraph.pool idx.eg in
    let vars : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let var_names = ref [] in
    let n_vars = ref 0 in
    let var_id x =
      match Hashtbl.find_opt vars x with
      | Some v -> v
      | None ->
        let v = !n_vars in
        Hashtbl.add vars x v;
        var_names := x :: !var_names;
        incr n_vars;
        v
    in
    (* a name in a pattern slot is a join variable unless it resolves to a
       global (then its value would have to be re-canonicalized every
       iteration — leave those rules to the legacy matcher) *)
    let exception Bail in
    let slot_of (e : Ast.expr) : gslot =
      match e with
      | Ast.Wildcard -> G_free
      | Ast.Lit l -> G_lit (Arena.encode pool (value_of_lit l))
      | Ast.Var x ->
        if (not (is_pattern_var x)) && Hashtbl.mem idx.globals x then raise Bail
        else G_var (var_id x)
      | Ast.Call _ -> raise Bail
    in
    let rec has_declared_call (e : Ast.expr) =
      match e with
      | Ast.Call (f, args) ->
        (not (Primitives.is_primitive f)) || List.exists has_declared_call args
      | Ast.Var _ | Ast.Wildcard | Ast.Lit _ -> false
    in
    let exprs_of = function Ast.F_expr e -> [ e ] | Ast.F_eq es -> es in
    let atom_of f args (out : gslot) =
      match Egraph.find_func_opt idx.eg (Symbol.intern f) with
      | None -> raise Bail
      | Some fn ->
        if List.length args <> Array.length fn.Egraph.arg_sorts then raise Bail;
        let slots = Array.make (List.length args + 1) G_free in
        List.iteri (fun i a -> slots.(i) <- slot_of a) args;
        slots.(List.length args) <- out;
        { g_sym = fn.Egraph.sym; g_slots = slots }
    in
    try
      let atoms = ref [] and residuals = ref [] in
      List.iter
        (fun (fact : Ast.fact) ->
          if not (List.exists has_declared_call (exprs_of fact)) then
            residuals := fact :: !residuals
          else
            match fact with
            | Ast.F_expr (Ast.Call (f, args)) when not (Primitives.is_primitive f) ->
              (* bare table application: a bool-returning table is a guard
                 (output pinned to true); anything else is unconstrained *)
              let out =
                match Egraph.find_func_opt idx.eg (Symbol.intern f) with
                | Some fn when fn.Egraph.ret_sort = Egraph.S_bool ->
                  G_lit (Arena.encode pool (Value.Bool true))
                | _ -> G_free
              in
              atoms := atom_of f args out :: !atoms
            | Ast.F_eq [ a; b ] -> (
              let pick call other =
                match call with
                | Ast.Call (f, args) when not (Primitives.is_primitive f) ->
                  atoms := atom_of f args (slot_of other) :: !atoms
                | _ -> raise Bail
              in
              match (a, b) with
              | Ast.Call (f, _), (Ast.Var _ | Ast.Wildcard | Ast.Lit _)
                when not (Primitives.is_primitive f) ->
                pick a b
              | (Ast.Var _ | Ast.Wildcard | Ast.Lit _), Ast.Call (f, _)
                when not (Primitives.is_primitive f) ->
                pick b a
              | _ -> raise Bail)
            | _ -> raise Bail)
        p.p_facts;
      let gp_atoms = Array.of_list (List.rev !atoms) in
      let gp_residuals = List.rev !residuals in
      let gp_var_names = Array.of_list (List.rev !var_names) in
      (* every residual must be runnable after the join, in premise order:
         its evaluated positions may only mention variables bound by atoms
         or by earlier residuals *)
      let bound = Hashtbl.create 16 in
      Array.iter (fun x -> Hashtbl.replace bound x ()) gp_var_names;
      let vars_in e =
        let acc = ref [] in
        let rec go = function
          | Ast.Var x -> acc := x :: !acc
          | Ast.Call (_, args) -> List.iter go args
          | Ast.Wildcard | Ast.Lit _ -> ()
        in
        go e;
        !acc
      in
      List.iter
        (fun (fact : Ast.fact) ->
          let required =
            match fact with
            | Ast.F_expr (Ast.Var x) -> [ x ]
            | Ast.F_expr e -> (
              match e with Ast.Call (_, args) -> List.concat_map vars_in args | _ -> [])
            | Ast.F_eq es ->
              let from_calls =
                List.concat_map
                  (function Ast.Call (_, args) -> List.concat_map vars_in args | _ -> [])
                  es
              in
              if List.for_all (function Ast.Var _ | Ast.Wildcard -> true | _ -> false) es
              then
                match es with Ast.Var x :: _ -> x :: from_calls | _ -> from_calls
              else from_calls
          in
          if not (List.for_all (Hashtbl.mem bound) required) then raise Bail;
          List.iter
            (fun e -> List.iter (fun x -> Hashtbl.replace bound x ()) (vars_in e))
            (exprs_of fact))
        gp_residuals;
      let occs = Array.make (Array.length gp_var_names) [] in
      Array.iteri
        (fun ai ga ->
          Array.iteri
            (fun c slot ->
              match slot with
              | G_var v -> occs.(v) <- (ai, c) :: occs.(v)
              | _ -> ())
            ga.g_slots)
        gp_atoms;
      let gp_occs = Array.map (fun l -> Array.of_list (List.rev l)) occs in
      let gp_touched =
        Array.map
          (fun o ->
            Array.of_list
              (List.sort_uniq compare (List.map fst (Array.to_list o))))
          gp_occs
      in
      let gp_may_dup =
        Array.exists
          (fun ga -> Array.exists (fun s -> s = G_free) ga.g_slots)
          gp_atoms
      in
      let is_join = Array.map (fun o -> Array.length o >= 2) gp_occs in
      let gp_join_vars =
        Array.fold_left (fun n j -> if j then n + 1 else n) 0 is_join
      in
      let gp_emit =
        match keep with
        | None -> Array.init (Array.length gp_var_names) Fun.id
        | Some keep ->
          let needed = Hashtbl.create 16 in
          List.iter (fun x -> Hashtbl.replace needed x ()) keep;
          List.iter
            (fun f ->
              List.iter
                (fun e -> List.iter (fun x -> Hashtbl.replace needed x ()) (vars_in e))
                (exprs_of f))
            gp_residuals;
          let out = ref [] in
          Array.iteri
            (fun i x -> if Hashtbl.mem needed x then out := i :: !out)
            gp_var_names;
          Array.of_list (List.rev !out)
      in
      let emitted = Array.make (Array.length gp_var_names) false in
      Array.iter (fun v -> emitted.(v) <- true) gp_emit;
      let gp_slot = Array.make (Array.length gp_var_names) (-1) in
      Array.iteri (fun i v -> gp_slot.(v) <- i) gp_emit;
      let gp_emit_join = Array.of_list
          (List.map (fun v -> (v, gp_slot.(v)))
             (List.filter (fun v -> is_join.(v)) (Array.to_list gp_emit)))
      in
      let gp_read =
        Array.map
          (fun ga ->
            let acc = ref [] in
            Array.iteri
              (fun c slot ->
                match slot with
                | G_var v when (not is_join.(v)) && emitted.(v) ->
                  acc := (gp_slot.(v), c) :: !acc
                | _ -> ())
              ga.g_slots;
            Array.of_list (List.rev !acc))
          gp_atoms
      in
      let gp_lits =
        let acc = ref [] in
        Array.iteri
          (fun ai ga ->
            Array.iteri
              (fun c slot ->
                match slot with
                | G_lit code -> acc := (ai, c, code) :: !acc
                | _ -> ())
              ga.g_slots)
          gp_atoms;
        Array.of_list (List.rev !acc)
      in
      let gp_join_list =
        let acc = ref [] in
        Array.iteri (fun v j -> if j then acc := v :: !acc) is_join;
        Array.of_list (List.rev !acc)
      in
      let gp_probed =
        let acc = ref [] in
        Array.iteri
          (fun ai ga ->
            Array.iteri
              (fun c slot ->
                match slot with
                | G_lit _ -> acc := (ai, c) :: !acc
                | G_var v when is_join.(v) -> acc := (ai, c) :: !acc
                | _ -> ())
              ga.g_slots)
          gp_atoms;
        Array.of_list (List.rev !acc)
      in
      Some
        {
          gp_atoms;
          gp_residuals;
          gp_var_names;
          gp_occs;
          gp_touched;
          gp_may_dup;
          gp_emit;
          gp_join_vars;
          gp_emit_join;
          gp_read;
          gp_lits;
          gp_slot;
          gp_join_list;
          gp_probed;
          gp_scratch = None;
        }
    with Bail -> None
  end

(** Shared generic-join driver: runs every seminaive term of [gp] against
    the snapshot and calls [flush] once per satisfying assignment, with the
    emitted variables' arena {e codes} filled into a scratch row in
    [gp_emit] order ([flush] must copy what it keeps — and decode).  Deterministic:
    terms in atom order, candidates in row order. *)
let gsolve_core idx (gp : gplan) ~(since : int) ~(flush : int array -> unit) :
    unit =
  let eg = idx.eg in
  let n_atoms = Array.length gp.gp_atoms in
  let n_vars = Array.length gp.gp_var_names in
  let gs =
    match gp.gp_scratch with
    | Some gs when gs.gs_eg == eg -> gs
    | _ ->
      let funcs = Array.map (fun ga -> Egraph.find_func eg ga.g_sym) gp.gp_atoms in
      let tables =
        Array.map
          (fun (f : Egraph.func) ->
            match Egraph.arena_of f with
            | Some a -> a
            | None -> error "generic join requires the arena engine")
          funcs
      in
      let range_mark = Array.make 1 0 in
      let gs =
        {
          gs_eg = eg;
          gs_funcs = funcs;
          gs_tables = tables;
          gs_cidxs = Array.mapi (fun i f -> colindex_of idx f tables.(i)) funcs;
          gs_range_mark = range_mark;
          gs_rs_buf = Array.make n_atoms range_mark;
          gs_rs_lo = Array.make n_atoms 0;
          gs_rs_hi = Array.make n_atoms 0;
          gs_cands =
            Array.init n_vars (fun _ -> { iv_buf = Array.make 8 0; iv_len = 0 });
          gs_sv_buf =
            Array.map (fun t -> Array.make (Array.length t) range_mark) gp.gp_touched;
          gs_sv_lo = Array.map (fun t -> Array.make (Array.length t) 0) gp.gp_touched;
          gs_sv_hi = Array.map (fun t -> Array.make (Array.length t) 0) gp.gp_touched;
          gs_ibuf =
            Array.map (fun occs -> Array.make (max 1 (Array.length occs)) [||]) gp.gp_occs;
          gs_lbuf = Array.make (max 1 n_atoms) [||];
          gs_seen = Hashtbl.create 64;
          gs_node_id = 0;
          gs_assignment = Array.make n_vars (-1);
          gs_assigned = Array.make n_vars false;
          gs_out = Array.make (Array.length gp.gp_emit) (-1);
        }
      in
      gp.gp_scratch <- Some gs;
      gs
  in
  let funcs = gs.gs_funcs and tables = gs.gs_tables and cidxs = gs.gs_cidxs in
  (* columns sync lazily on first probe (the records are mutated in place
     and shared through [idx.colindexes], so one sync serves every rule);
     under parallel search [prewarm] has already synced every probed
     column, making this a read-only fast path *)
  let bucket ai col code : ivec =
    let a = Array.unsafe_get tables ai in
    let cm = (Array.unsafe_get cidxs ai).ci_cols.(col) in
    if not (cm_fresh cm a) then cm_sync cm a col;
    im_find cm.cm_im code
  in
  (* Each atom's current row set lives in three parallel slots, mutated in
     place and save/restored around each candidate: [rs_buf.(u) == range_mark]
     means the contiguous row range [lo, hi), otherwise [rs_buf.(u)] is an
     ascending row array viewed through indices [lo, hi). *)
  let range_mark = gs.gs_range_mark in
  let rs_buf = gs.gs_rs_buf in
  let rs_lo = gs.gs_rs_lo in
  let rs_hi = gs.gs_rs_hi in
  let rs_size u = rs_hi.(u) - rs_lo.(u) in
  (* restrict atom [u]'s row set to rows whose column holds [code]; false
     if it became empty *)
  let restrict u (b : ivec) (bufs : int array array) bi =
    if rs_buf.(u) == range_mark then begin
      let i = bsearch_ge b.iv_buf 0 b.iv_len rs_lo.(u) in
      let j = bsearch_ge b.iv_buf i b.iv_len rs_hi.(u) in
      rs_buf.(u) <- b.iv_buf;
      rs_lo.(u) <- i;
      rs_hi.(u) <- j;
      i < j
    end
    else begin
      let a = rs_buf.(u) and ai = rs_lo.(u) and aj = rs_hi.(u) in
      let nb = b.iv_len in
      if nb = 0 then begin
        rs_hi.(u) <- ai;
        false
      end
      else begin
        let cap = min (aj - ai) nb in
        let out =
          let o = bufs.(bi) in
          if Array.length o >= cap then o
          else begin
            let o = Array.make (max cap ((2 * Array.length o) + 8)) 0 in
            bufs.(bi) <- o;
            o
          end
        in
        (* [out] may alias [a] (buffer reuse along a literal chain): the
           write index never passes the read index, so in-place is fine *)
        let k = ref 0 and i = ref ai and j = ref 0 in
        while !i < aj && !j < nb do
          let x = Array.unsafe_get a !i and y = Array.unsafe_get b.iv_buf !j in
          if x = y then begin
            Array.unsafe_set out !k x;
            incr k;
            incr i;
            incr j
          end
          else if x < y then incr i
          else incr j
        done;
        rs_buf.(u) <- out;
        rs_lo.(u) <- 0;
        rs_hi.(u) <- !k;
        !k > 0
      end
    end
  in
  let iter_rows u tbl k =
    if rs_buf.(u) == range_mark then
      for r = rs_lo.(u) to rs_hi.(u) - 1 do
        if not (Arena.is_dead tbl r) then k r
      done
    else begin
      let a = rs_buf.(u) in
      for t = rs_lo.(u) to rs_hi.(u) - 1 do
        k a.(t)
      done
    end
  in
  (* per-variable scratch: candidate codes and the saved row-set slots of
     the atoms the variable touches (a variable is on at most one branch
     of the elimination tree at a time, so per-var scratch cannot be
     clobbered by recursion) *)
  let cands = gs.gs_cands in
  let sv_buf = gs.gs_sv_buf in
  let sv_lo = gs.gs_sv_lo in
  let sv_hi = gs.gs_sv_hi in
  (* candidate-code dedupe for wide drivers, generation-stamped so it is
     shared by every node of every term — and every call — without
     clearing ([gs_node_id] never repeats) *)
  let seen = gs.gs_seen in
  let assignment = gs.gs_assignment in
  let assigned = gs.gs_assigned in
  let out = gs.gs_out in
  let solve_term t : unit =
    let dn = Arena.n_rows tables.(t) in
    let ds = Arena.delta_start tables.(t) ~since in
    if ds < dn then begin
      let ok = ref true in
      for u = 0 to n_atoms - 1 do
        rs_buf.(u) <- range_mark;
        let tbl = tables.(u) in
        if u = t then begin
          rs_lo.(u) <- ds;
          rs_hi.(u) <- dn
        end
        else begin
          rs_lo.(u) <- 0;
          rs_hi.(u) <- (if u < t then Arena.delta_start tbl ~since else Arena.n_rows tbl)
        end;
        if rs_size u <= 0 then ok := false
      done;
      (* pin literal columns first: cheap, and it shrinks the driver sets *)
      (let lits = gp.gp_lits in
       let i = ref 0 in
       while !ok && !i < Array.length lits do
         let u, c, code = lits.(!i) in
         if not (restrict u (bucket u c code) gs.gs_lbuf u) then ok := false;
         incr i
       done);
      if !ok then begin
        let rec elim n_left =
          if n_left = 0 then begin
            (* all join variables bound: the surviving rows of each atom
               directly enumerate the bindings of its single-occurrence
               variables (usually one row per atom) *)
            Array.iter
              (fun (v, slot) -> out.(slot) <- assignment.(v))
              gp.gp_emit_join;
            let rec rows ai =
              if ai = n_atoms then flush out
              else begin
                let reads = gp.gp_read.(ai) in
                let n_reads = Array.length reads in
                if n_reads = 0 then
                  (* fully bound atom: every column was pinned by a literal
                     or an eliminated join variable, so exactly one (live,
                     bucket-backed) row survives — nothing to read off it *)
                  rows (ai + 1)
                else begin
                  let tbl = tables.(ai) in
                  if rs_buf.(ai) == range_mark then
                    for r = rs_lo.(ai) to rs_hi.(ai) - 1 do
                      if not (Arena.is_dead tbl r) then begin
                        for i = 0 to n_reads - 1 do
                          let slot, c = reads.(i) in
                          out.(slot) <- Arena.col_code tbl r c
                        done;
                        rows (ai + 1)
                      end
                    done
                  else begin
                    let arr = rs_buf.(ai) in
                    for ti = rs_lo.(ai) to rs_hi.(ai) - 1 do
                      let r = Array.unsafe_get arr ti in
                      for i = 0 to n_reads - 1 do
                        let slot, c = reads.(i) in
                        out.(slot) <- Arena.col_code tbl r c
                      done;
                      rows (ai + 1)
                    done
                  end
                end
              end
            in
            rows 0
          end
          else begin
            (* dynamic variable ordering: eliminate the unassigned join
               variable with the smallest occurrence row set, so
               restrictions propagate before wide columns are enumerated.
               Ties break by variable id, then occurrence order —
               deterministic. *)
            let v = ref (-1) and da = ref (-1) and dc = ref (-1) in
            let best = ref max_int in
            let jlist = gp.gp_join_list in
            let n_join = Array.length jlist in
            let w = ref 0 in
            while !best > 1 && !w < n_join do
              let jv = Array.unsafe_get jlist !w in
              (if not assigned.(jv) then begin
                 let occs = gp.gp_occs.(jv) in
                 let k = ref 0 in
                 while !best > 1 && !k < Array.length occs do
                   let a, c = occs.(!k) in
                   let sz = rs_size a in
                   if sz < !best then begin
                     best := sz;
                     v := jv;
                     da := a;
                     dc := c
                   end;
                   incr k
                 done
               end);
              incr w
            done;
            let v = !v and da = !da and dc = !dc in
            let occs = gp.gp_occs.(v) in
            let n_occs = Array.length occs in
            (* distinct codes of the driver column, in row order (keeps the
               search deterministic); hash only when the driver is wide *)
            let cv = cands.(v) in
            cv.iv_len <- 0;
            let small = rs_size da <= 32 in
            if small then
              iter_rows da tables.(da) (fun r ->
                  let code = Arena.col_code tables.(da) r dc in
                  let dup = ref false in
                  for i = 0 to cv.iv_len - 1 do
                    if cv.iv_buf.(i) = code then dup := true
                  done;
                  if not !dup then iv_push cv code)
            else begin
              gs.gs_node_id <- gs.gs_node_id + 1;
              let nid = gs.gs_node_id in
              iter_rows da tables.(da) (fun r ->
                  let code = Arena.col_code tables.(da) r dc in
                  match Hashtbl.find_opt seen code with
                  | Some g when g = nid -> ()
                  | _ ->
                    Hashtbl.replace seen code nid;
                    iv_push cv code)
            end;
            let touched = gp.gp_touched.(v) in
            let n_touched = Array.length touched in
            (* save the pre-candidate row-set slots, restored per candidate *)
            let sb = sv_buf.(v) and sl = sv_lo.(v) and sh = sv_hi.(v) in
            for i = 0 to n_touched - 1 do
              let a = touched.(i) in
              sb.(i) <- rs_buf.(a);
              sl.(i) <- rs_lo.(a);
              sh.(i) <- rs_hi.(a)
            done;
            assigned.(v) <- true;
            for ci = 0 to cv.iv_len - 1 do
              let code = cv.iv_buf.(ci) in
              let ok = ref true in
              let k = ref 0 in
              let ibufs = gs.gs_ibuf.(v) in
              while !ok && !k < n_occs do
                let a, c = occs.(!k) in
                if small && a = da && c = dc then begin
                  (* driver occurrence over a small row set: filter the rows
                     we just enumerated directly — cheaper than probing the
                     column index and intersecting *)
                  let tbl = tables.(a) in
                  let cap = rs_size a in
                  let buf =
                    let o = ibufs.(!k) in
                    if Array.length o >= cap then o
                    else begin
                      let o = Array.make (max cap ((2 * Array.length o) + 8)) 0 in
                      ibufs.(!k) <- o;
                      o
                    end
                  in
                  let n = ref 0 in
                  if rs_buf.(a) == range_mark then
                    for r = rs_lo.(a) to rs_hi.(a) - 1 do
                      if
                        (not (Arena.is_dead tbl r))
                        && Arena.col_code tbl r c = code
                      then begin
                        buf.(!n) <- r;
                        incr n
                      end
                    done
                  else begin
                    let arr = rs_buf.(a) in
                    for t = rs_lo.(a) to rs_hi.(a) - 1 do
                      let r = arr.(t) in
                      if Arena.col_code tbl r c = code then begin
                        buf.(!n) <- r;
                        incr n
                      end
                    done
                  end;
                  rs_buf.(a) <- buf;
                  rs_lo.(a) <- 0;
                  rs_hi.(a) <- !n;
                  if !n = 0 then ok := false
                end
                else if not (restrict a (bucket a c code) ibufs !k) then
                  ok := false;
                incr k
              done;
              if !ok then begin
                assignment.(v) <- code;
                elim (n_left - 1)
              end;
              for i = 0 to n_touched - 1 do
                let a = touched.(i) in
                rs_buf.(a) <- sb.(i);
                rs_lo.(a) <- sl.(i);
                rs_hi.(a) <- sh.(i)
              done
            done;
            assigned.(v) <- false
          end
        in
        elim gp.gp_join_vars
      end
    end
  in
  for t = 0 to n_atoms - 1 do
    if funcs.(t).Egraph.last_modified > since then solve_term t
  done

(** Generic-join solve: environments satisfying the plan that involve at
    least one row newer than stamp [since] ([~since:-1] is the full naive
    join).  Per delta atom [t], the term joins [t]'s delta {e suffix}
    against old {e prefixes} (atoms before [t]) and full tables (after) —
    the same disjoint decomposition as {!solve_plan_legacy}, but executed
    variable-by-variable over column indexes, so no intermediate
    environment lists are materialized. *)
let gsolve idx (gp : gplan) ~(since : int) : env list =
  let results = ref [] in
  let names = gp.gp_var_names in
  let pool = Egraph.pool idx.eg in
  gsolve_core idx gp ~since ~flush:(fun out ->
      let env = ref Env.empty in
      Array.iteri
        (fun i v -> env := Env.add names.(v) (Arena.decode pool out.(i)) !env)
        gp.gp_emit;
      results := !env :: !results);
  let envs = List.rev !results in
  (* terms are disjoint and within-term assignments unique, so duplicates
     only arise through wildcard columns: rows differing in an unbound
     column witness the same environment *)
  let envs = if gp.gp_may_dup then dedupe_envs envs else envs in
  (* residual pure-primitive facts filter (or extend) the decoded
     environments, in premise order *)
  List.fold_left
    (fun envs f -> if envs = [] then [] else solve_fact idx envs f)
    envs gp.gp_residuals

(** Can [gp]'s matches be consumed as packed rows?  Requires no residual
    facts (they extend environments) and no wildcard columns (they require
    deduplication over environments). *)
let gp_packed_ok gp = gp.gp_residuals = [] && not gp.gp_may_dup

(** The emitted variables' names, in packed-row slot order. *)
let gp_slot_names gp = Array.map (fun v -> gp.gp_var_names.(v)) gp.gp_emit

(** The sort of each packed-row slot, read off the variable's first
    pattern occurrence (argument column -> that argument's sort, output
    column -> the function's return sort). *)
let gp_slot_sorts idx gp =
  Array.map
    (fun v ->
      let a, c = gp.gp_occs.(v).(0) in
      let f = Egraph.find_func idx.eg gp.gp_atoms.(a).g_sym in
      if c < Array.length f.Egraph.arg_sorts then f.Egraph.arg_sorts.(c)
      else f.Egraph.ret_sort)
    gp.gp_emit

(** Like {!gsolve} but returning each match as a flat row of the emitted
    variables' arena codes in {!gp_slot_names} order — no environment
    maps and no decoding, so appliers compiled against the slot order
    work at the code level end to end.  Only valid when
    {!gp_packed_ok}. *)
type packed = { pk_buf : int array; pk_rows : int; pk_width : int }

let gsolve_packed idx (gp : gplan) ~(since : int) : packed =
  let width = Array.length gp.gp_emit in
  let buf = ref (Array.make (max 1 (16 * width)) 0) in
  let n = ref 0 in
  gsolve_core idx gp ~since ~flush:(fun out ->
      let need = (!n + 1) * width in
      if need > Array.length !buf then begin
        let b = Array.make (max need (2 * Array.length !buf)) 0 in
        Array.blit !buf 0 b 0 (!n * width);
        buf := b
      end;
      Array.blit out 0 !buf (!n * width) width;
      incr n);
  { pk_buf = !buf; pk_rows = !n; pk_width = width }

(** [solve_plan idx p ~since] — seminaive solve through the generic join
    when [p] compiles for it (arena engine, flat atoms), else through the
    env-list matcher. *)
let solve_plan ?(gplan : gplan option option = None) idx (p : plan) ~(since : int) :
    env list =
  match gplan with
  | Some (Some gp) -> gsolve idx gp ~since
  | Some None -> solve_plan_legacy idx p ~since
  | None -> (
    match gcompile idx p with
    | Some gp -> gsolve idx gp ~since
    | None -> solve_plan_legacy idx p ~since)

(** Build every per-function structure a rule's search will need —
    column indexes for generic-join rules, row caches for legacy-path
    rules — so the parallel search phase never writes to the shared
    index. *)
let prewarm idx (p : plan) (gp : gplan option) =
  match gp with
  | Some gp ->
    Array.iter
      (fun (ai, col) ->
        let ga = gp.gp_atoms.(ai) in
        match Egraph.find_func_opt idx.eg ga.g_sym with
        | Some f -> (
          match Egraph.arena_of f with
          | Some a ->
            let c = colindex_of idx f a in
            let cm = c.ci_cols.(col) in
            if not (cm_fresh cm a) then cm_sync cm a col
          | None -> ())
        | None -> ())
      gp.gp_probed
  | None ->
    let touch name =
      match Egraph.find_func_opt idx.eg (Symbol.intern name) with
      | Some fn -> ignore (fcache_of idx fn)
      | None -> ()
    in
    let rec go (e : Ast.expr) =
      match e with
      | Ast.Call (f, args) ->
        if not (Primitives.is_primitive f) then touch f;
        List.iter go args
      | Ast.Var _ | Ast.Wildcard | Ast.Lit _ -> ()
    in
    List.iter
      (function Ast.F_expr e -> go e | Ast.F_eq es -> List.iter go es)
      p.p_facts
