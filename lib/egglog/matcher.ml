(** E-matching: finding all substitutions under which a rule's premises hold
    in the current e-graph.

    The matcher works on a snapshot {!index} of the e-graph, built once per
    saturation iteration after {!Egraph.rebuild}: for every function we
    collect its canonical rows and index them by output e-class, so that
    nested patterns ([(Div (Mul ?x ?y) ?z)]) can look up the candidate child
    e-nodes in O(1).

    Premises (facts) are solved left to right over a list of candidate
    environments:
    - an application whose head is a declared function is a {e pattern}: it
      is matched against the function's rows (a relational join);
    - an application whose head is a primitive is {e evaluated}; in guard
      position it must produce [true];
    - [(= e1 e2 ...)] unifies the value of all [ei], binding variables that
      are still free.

    Variable conventions: [?x] is always a pattern variable; a bare name is
    resolved as a rule-local or global binding if one exists, and is
    otherwise treated as a pattern variable (Egglog "new syntax"). *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

module Env = Map.Make (String)

type env = Value.t Env.t

(* ------------------------------------------------------------------ *)
(* Persistent index                                                    *)
(* ------------------------------------------------------------------ *)

(* Cached indexes for one function table, over entries of (canonical args,
   canonical output, row stamp): [by_output] buckets rows by output e-class
   (joining a pattern whose result class is known), [by_arg] buckets rows
   by (argument position, argument e-class) (joining a pattern any of whose
   arguments is known).  Buckets are mutable list refs so construction is a
   single linear pass (one hash lookup + cons per row per key).  The cache
   is invalidated by the table's [last_modified] stamp, so across
   saturation iterations only the tables that actually changed are
   re-indexed — untouched tables keep their index verbatim. *)
type fcache = {
  mutable by_output : (int, (Value.t array * Value.t * int) list ref) Hashtbl.t;
  mutable by_arg : (int * int, (Value.t array * Value.t * int) list ref) Hashtbl.t;
  mutable built_at : int;  (* the table's last_modified when built *)
}

type index = {
  eg : Egraph.t;
  globals : (string, Value.t) Hashtbl.t;
  caches : fcache Symbol.Tbl.t;
}

(** Build a matching index over [eg].  [globals] are the interpreter's
    top-level let-bindings.  The index is cheap to create and {e persistent}:
    per-function structures are built lazily on first use and reused across
    saturation iterations until the underlying table changes.  Matching
    requires the e-graph to be rebuilt (congruence restored). *)
let make_index eg globals : index = { eg; globals; caches = Symbol.Tbl.create 64 }

let func_of idx sym : Egraph.func =
  match Egraph.find_func_opt idx.eg sym with
  | Some f -> f
  | None -> error "unknown function %s in pattern" (Symbol.name sym)

let bucket_add tbl key entry =
  match Hashtbl.find_opt tbl key with
  | Some bucket -> bucket := entry :: !bucket
  | None -> Hashtbl.add tbl key (ref [ entry ])

let fcache_of idx (f : Egraph.func) : fcache =
  let c =
    match Symbol.Tbl.find_opt idx.caches f.sym with
    | Some c -> c
    | None ->
      let c = { by_output = Hashtbl.create 8; by_arg = Hashtbl.create 8; built_at = min_int } in
      Symbol.Tbl.replace idx.caches f.sym c;
      c
  in
  if c.built_at < f.Egraph.last_modified then begin
    let n = max 8 (Value.Args_tbl.length f.Egraph.table) in
    let out_tbl = Hashtbl.create n in
    let arg_tbl = Hashtbl.create n in
    Value.Args_tbl.iter
      (fun args (row : Egraph.row) ->
        let out = Egraph.canon idx.eg row.out in
        let cargs = Egraph.canon_args idx.eg args in
        let entry = (cargs, out, row.stamp) in
        (match out with
        | Value.Eclass id -> bucket_add out_tbl id entry
        | _ -> ());
        Array.iteri
          (fun i a ->
            match a with Value.Eclass id -> bucket_add arg_tbl (i, id) entry | _ -> ())
          cargs)
      f.Egraph.table;
    c.by_output <- out_tbl;
    c.by_arg <- arg_tbl;
    c.built_at <- f.Egraph.last_modified
  end;
  c

(** Rows of [f] whose output is in class [cls], with their stamps. *)
let rows_of_output idx (f : Egraph.func) cls : (Value.t array * Value.t * int) list =
  let c = fcache_of idx f in
  match Hashtbl.find_opt c.by_output (Egraph.find_class idx.eg cls) with
  | Some bucket -> !bucket
  | None -> []

let rows_with_output idx sym cls : (Value.t array * Value.t * int) list =
  rows_of_output idx (func_of idx sym) cls

(** Rows of [f] whose [pos]-th argument is in class [cls]. *)
let rows_with_arg idx (f : Egraph.func) pos cls : (Value.t array * Value.t * int) list =
  let c = fcache_of idx f in
  match Hashtbl.find_opt c.by_arg (pos, Egraph.find_class idx.eg cls) with
  | Some bucket -> !bucket
  | None -> []

(* ------------------------------------------------------------------ *)
(* Variable resolution                                                 *)
(* ------------------------------------------------------------------ *)

let is_pattern_var name = String.length name > 0 && name.[0] = '?'

(** Resolve name [x] under [env]: rule-local binding first, then globals. *)
let resolve idx env x =
  match Env.find_opt x env with
  | Some v -> Some v
  | None -> if is_pattern_var x then None else Hashtbl.find_opt idx.globals x

let values_equal idx a b =
  Value.equal a b || Value.equal (Egraph.canon idx.eg a) (Egraph.canon idx.eg b)

(* ------------------------------------------------------------------ *)
(* Expression evaluation (ground expressions inside premises)          *)
(* ------------------------------------------------------------------ *)

(** Try to evaluate [e] to a value under [env].  Returns [None] when the
    expression mentions an unbound variable, a missing table row, or a
    primitive error — all of which mean "this premise does not (yet) hold".
    Constructor applications are {e looked up}, never created: premises must
    not mutate the e-graph. *)
let rec eval_opt idx env (e : Ast.expr) : Value.t option =
  match e with
  | Var x -> resolve idx env x
  | Wildcard -> None
  | Lit l -> Some (value_of_lit l)
  | Call (f, args) -> (
    let rec eval_args acc = function
      | [] -> Some (List.rev acc)
      | a :: rest -> (
        match eval_opt idx env a with
        | Some v -> eval_args (v :: acc) rest
        | None -> None)
    in
    match eval_args [] args with
    | None -> None
    | Some vals -> (
      if Primitives.is_primitive f then
        try Some (Primitives.apply f vals) with Primitives.Error _ -> None
      else
        match Egraph.find_func_opt idx.eg (Symbol.intern f) with
        | Some fn -> Egraph.lookup idx.eg fn (Array.of_list vals)
        | None -> error "unknown function or primitive %s" f))

and value_of_lit : Ast.lit -> Value.t = function
  | L_i64 n -> I64 n
  | L_f64 f -> F64 f
  | L_string s -> Str s
  | L_bool b -> Bool b
  | L_unit -> Unit

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

(** [match_value idx env pat v] extends [env] in all ways that make [pat]
    match the (canonical) value [v]. *)
let rec match_value idx env (pat : Ast.expr) (v : Value.t) : env list =
  match pat with
  | Wildcard -> [ env ]
  | Lit l -> if values_equal idx (value_of_lit l) v then [ env ] else []
  | Var x -> (
    match resolve idx env x with
    | Some bound -> if values_equal idx bound v then [ env ] else []
    | None -> [ Env.add x (Egraph.canon idx.eg v) env ])
  | Call ("vec-of", pats) -> (
    (* destructuring vector pattern *)
    match v with
    | Vec elems when Array.length elems = List.length pats ->
      List.fold_left
        (fun envs (i, p) ->
          List.concat_map (fun env -> match_value idx env p elems.(i)) envs)
        [ env ]
        (List.mapi (fun i p -> (i, p)) pats)
    | _ -> [])
  | Call (f, _) when Primitives.is_primitive f -> (
    (* computed sub-expression: evaluate and compare *)
    match eval_opt idx env pat with
    | Some pv -> if values_equal idx pv v then [ env ] else []
    | None -> [])
  | Call (f, arg_pats) -> (
    (* child e-node pattern: v must be an e-class containing an f-node *)
    match v with
    | Eclass cls -> (
      let sym = Symbol.intern f in
      match Egraph.find_func_opt idx.eg sym with
      | None -> error "unknown function or primitive %s" f
      | Some fn ->
        List.concat_map
          (fun (args, _, _) -> match_args idx env arg_pats args)
          (rows_of_output idx fn cls))
    | _ -> [])

and match_args idx env (pats : Ast.expr list) (args : Value.t array) : env list =
  if List.length pats <> Array.length args then []
  else
    let rec go envs i = function
      | [] -> envs
      | p :: rest ->
        let envs = List.concat_map (fun env -> match_value idx env p args.(i)) envs in
        if envs = [] then [] else go envs (i + 1) rest
    in
    go [ env ] 0 pats

(** How one table occurrence is restricted in a seminaive delta term.
    [Δ(R₁⋈…⋈Rₖ) = Σₜ (R₁ᵒˡᵈ ⋈ … ⋈ ΔRₜ ⋈ … ⋈ Rₖᶠᵘˡˡ)]: the [t]-th term
    takes the delta at occurrence [t], {e old} rows (stamp ≤ since) at
    occurrences before it and the full table after it, so each combination
    of rows is produced by exactly one term — no cross-term duplicates. *)
type occ_mode =
  | M_full
  | M_delta of int  (** only rows with stamp > since *)
  | M_old of int  (** only rows with stamp ≤ since *)

let occ_admits occ stamp =
  match occ with
  | M_full -> true
  | M_delta ts -> stamp > ts
  | M_old ts -> stamp <= ts

(** First argument pattern already bound to an e-class under [env] (an
    entry point into the by-arg index). *)
let find_bound_arg idx env (arg_pats : Ast.expr list) : (int * int) option =
  let rec go i = function
    | [] -> None
    | p :: rest -> (
      match eval_opt idx env p with
      | Some v -> (
        match Egraph.canon idx.eg v with
        | Value.Eclass id -> Some (i, id)
        | _ -> go (i + 1) rest)
      | None -> go (i + 1) rest)
  in
  go 0 arg_pats

(** Match a top-level pattern [(f pats)] against rows of [f], yielding
    [(env, output)] pairs; [occ] restricts which rows participate.  If some
    argument pattern already has a known e-class value under [env], only
    the rows sharing that argument are scanned (via the by-arg index); a
    delta occurrence scans the journal suffix; otherwise the whole table is
    folded directly — no per-iteration row-list snapshot is materialized. *)
let match_rooted_occ idx env (f : string) (arg_pats : Ast.expr list)
    ~(occ : occ_mode) : (env * Value.t) list =
  let fn = func_of idx (Symbol.intern f) in
  match occ with
  | M_delta ts ->
    let acc = ref [] in
    Egraph.iter_rows_since idx.eg fn ~since:ts (fun args out _stamp ->
        List.iter
          (fun env -> acc := (env, out) :: !acc)
          (match_args idx env arg_pats args));
    !acc
  | M_full | M_old _ -> (
    match find_bound_arg idx env arg_pats with
    | Some (pos, cls) ->
      List.fold_left
        (fun acc (args, out, stamp) ->
          if occ_admits occ stamp then
            List.fold_left
              (fun acc env -> (env, out) :: acc)
              acc
              (match_args idx env arg_pats args)
          else acc)
        []
        (rows_with_arg idx fn pos cls)
    | None ->
      Value.Args_tbl.fold
        (fun args (row : Egraph.row) acc ->
          if occ_admits occ row.stamp then
            let args = Egraph.canon_args idx.eg args in
            let out = Egraph.canon idx.eg row.out in
            List.fold_left
              (fun acc env -> (env, out) :: acc)
              acc
              (match_args idx env arg_pats args)
          else acc)
        fn.Egraph.table [])

let match_rooted idx env f arg_pats = match_rooted_occ idx env f arg_pats ~occ:M_full

(* ------------------------------------------------------------------ *)
(* Fact solving                                                        *)
(* ------------------------------------------------------------------ *)

(** Can [e] be evaluated directly (no free variables)? *)
let rec is_ground idx env (e : Ast.expr) =
  match e with
  | Var x -> resolve idx env x <> None
  | Wildcard -> false
  | Lit _ -> true
  | Call (_, args) -> List.for_all (is_ground idx env) args

let eval_args_opt idx env (args : Ast.expr list) : Value.t list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> (
      match eval_opt idx env a with Some v -> go (v :: acc) rest | None -> None)
  in
  go [] args

(** [solve_expr idx env e target] produces environments under which [e]
    holds.  With [target = Some v], [e] must match/evaluate to [v]; the
    returned value component is the value of [e].

    [~occ] restricts the expression's {e root} table operation to a stamp
    range (see {!occ_mode}) — the seminaive old/delta designation.  Only
    declared-function applications are ever restricted (the compiler only
    designates those as delta atoms). *)
let solve_expr ?(occ : occ_mode = M_full) idx env (e : Ast.expr)
    ~(target : Value.t option) : (env * Value.t) list =
  match (e, target) with
  | Call (f, arg_pats), Some v when (not (Primitives.is_primitive f)) && occ <> M_full -> (
    match Egraph.canon idx.eg v with
    | Eclass cls ->
      let sym = Symbol.intern f in
      ignore (func_of idx sym);
      List.concat_map
        (fun (args, _, stamp) ->
          if occ_admits occ stamp then
            List.map (fun env -> (env, v)) (match_args idx env arg_pats args)
          else [])
        (rows_with_output idx sym cls)
    | v ->
      (* primitive-output table: no by-output index; scan the admitted
         rows and keep those whose output equals the target *)
      List.filter_map
        (fun (env, out) -> if values_equal idx out v then Some (env, v) else None)
        (match_rooted_occ idx env f arg_pats ~occ))
  | Call (f, arg_pats), None when (not (Primitives.is_primitive f)) && occ <> M_full ->
    if is_ground idx env e then
      (* ground table application: the lookup only counts if the row's
         stamp falls in the occurrence's range *)
      match eval_args_opt idx env arg_pats with
      | None -> []
      | Some vals -> (
        let fn = func_of idx (Symbol.intern f) in
        match Egraph.lookup_row idx.eg fn (Array.of_list vals) with
        | Some (v, stamp) when occ_admits occ stamp -> [ (env, v) ]
        | _ -> [])
    else match_rooted_occ idx env f arg_pats ~occ
  | Var x, Some v -> (
    match resolve idx env x with
    | Some bound -> if values_equal idx bound v then [ (env, v) ] else []
    | None -> [ (Env.add x (Egraph.canon idx.eg v) env, v) ])
  | Wildcard, Some v -> [ (env, v) ]
  | Var x, None -> (
    match resolve idx env x with
    | Some v -> [ (env, v) ]
    | None -> error "unconstrained variable in fact: %a" Ast.pp_expr e)
  | Wildcard, None -> error "unconstrained wildcard in fact"
  | Lit l, _ -> (
    let v = value_of_lit l in
    match target with
    | Some tv -> if values_equal idx v tv then [ (env, v) ] else []
    | None -> [ (env, v) ])
  | Call (f, _), _ when Primitives.is_primitive f -> (
    match eval_opt idx env e with
    | None ->
      (* special case: destructuring (vec-of ?a ?b) against a known target *)
      if f = "vec-of" then
        match target with
        | Some v -> List.map (fun env -> (env, v)) (match_value idx env e v)
        | None -> []
      else []
    | Some v -> (
      match target with
      | Some tv -> if values_equal idx v tv then [ (env, v) ] else []
      | None -> [ (env, v) ]))
  | Call (f, arg_pats), Some v ->
    List.map (fun env -> (env, v)) (match_value idx env (Call (f, arg_pats)) v)
  | Call (f, arg_pats), None ->
    if is_ground idx env e then
      (* ground table application: lookup *)
      match eval_opt idx env e with Some v -> [ (env, v) ] | None -> []
    else match_rooted idx env f arg_pats

(** [solve_fact_occs occ_for idx envs fact] filters/extends candidate
    environments; [occ_for j] is the stamp restriction on the [j]-th
    conjunct's root table operation (0 for an [F_expr]). *)
let solve_fact_occs (occ_for : int -> occ_mode) idx (envs : env list)
    (fact : Ast.fact) : env list =
  match fact with
  | F_expr e ->
    List.concat_map
      (fun env ->
        let results = solve_expr ~occ:(occ_for 0) idx env e ~target:None in
        (* guard position: a primitive producing a boolean must be true *)
        List.filter_map
          (fun (env, v) ->
            match v with Value.Bool b -> if b then Some env else None | _ -> Some env)
          results)
      envs
  | F_eq exprs ->
    (* process conjuncts left to right, sharing one target value; a bare
       variable seen before the target is known is deferred and bound at
       the end *)
    let exprs = List.mapi (fun i e -> (i, e)) exprs in
    List.concat_map
      (fun env ->
        let rec go env (target : Value.t option) pending = function
          | [] -> (
            match target with
            | None -> error "unconstrained (=) fact"
            | Some v ->
              let envs =
                List.fold_left
                  (fun envs p ->
                    List.concat_map
                      (fun env ->
                        List.map fst (solve_expr idx env p ~target:(Some v)))
                      envs)
                  [ env ] pending
              in
              envs)
          | (i, e) :: rest -> (
            match e with
            | Ast.Var x when resolve idx env x = None && target = None ->
              go env target (e :: pending) rest
            | _ ->
              let results = solve_expr ~occ:(occ_for i) idx env e ~target in
              List.concat_map (fun (env, v) -> go env (Some v) pending rest) results)
        in
        go env None [] exprs)
      envs

(** [solve_fact idx envs fact] filters/extends candidate environments.
    [?restrict] is the seminaive delta designation: [(j, ts)] restricts the
    [j]-th conjunct's root table operation (0 for an [F_expr]) to rows
    newer than stamp [ts]. *)
let solve_fact ?(restrict : (int * int) option) idx (envs : env list)
    (fact : Ast.fact) : env list =
  let occ_for j =
    match restrict with Some (c, ts) when c = j -> M_delta ts | _ -> M_full
  in
  solve_fact_occs occ_for idx envs fact

(** Solve all premises of a rule; returns the satisfying environments. *)
let solve_facts idx (facts : Ast.fact list) : env list =
  List.fold_left (fun envs f -> if envs = [] then [] else solve_fact idx envs f) [ Env.empty ] facts

(* ------------------------------------------------------------------ *)
(* Seminaive plans                                                     *)
(* ------------------------------------------------------------------ *)

(** One delta candidate: the [a_conj]-th conjunct of the [a_fact]-th
    (flattened) fact is an application of table [a_sym].  [a_order] is the
    join order used when this atom takes the delta: the atom's fact first
    (its small delta scan drives the join), then the remaining facts
    greedily by variable connectivity, so each subsequent fact joins
    through an index instead of enumerating its table. *)
type atom = { a_fact : int; a_conj : int; a_sym : Symbol.t; a_order : int array }

(** A compiled rule body.  [p_facts] is the flattened premise list: every
    declared-function application nested inside another pattern has been
    hoisted into its own [(= ?aux (f ...))] fact (inserted right after its
    parent, so later guards still see its variables bound).  [p_atoms] are
    the table-application occurrences; seminaive matching unions over which
    single atom reads the delta.  [p_eligible] is false when some table
    application hides where the delta cannot reach it (inside a primitive
    application, e.g. under [vec-of]) — such rules fall back to naive
    matching. *)
type plan = {
  p_facts : Ast.fact list;
  p_atoms : atom list;
  p_eligible : bool;
}

let eligible p = p.p_eligible
let plan_facts p = p.p_facts

(** Hoist nested declared-function applications out of pattern positions.

    Placement matters for join cost, so two regimes are used, keyed on
    whether the subtree's variables are all bound by {e earlier} facts:
    - a {e ground} subtree (e.g. [(type-of ?y)] with [?y] bound above)
      becomes O(1) lookups, so its facts go {e before} the parent fact,
      innermost first;
    - a {e binding} subtree (a destructuring pattern like the inner matmul
      of [(linalg_matmul (linalg_matmul ...) ...)]) goes {e after} the
      parent fact, outermost first, so each child's aux var is already
      bound (by the parent's args) and its rows are found through the
      by-output index rather than a full table scan. *)
let compile (facts : Ast.fact list) : plan =
  let counter = ref 0 in
  let eligible = ref true in
  let fresh () =
    incr counter;
    Printf.sprintf "?__sn%d" !counter
  in
  (* variables bound by the facts already emitted *)
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* ground subtrees already hoisted, keyed syntactically: a repeated
     occurrence (e.g. [(type-of ?x)] under both [nrows] and [ncols])
     reuses the first aux var instead of emitting a duplicate fact *)
  let cse : (Ast.expr, string) Hashtbl.t = Hashtbl.create 16 in
  let rec add_vars (e : Ast.expr) =
    match e with
    | Ast.Var x -> Hashtbl.replace bound x ()
    | Ast.Call (_, args) -> List.iter add_vars args
    | Wildcard | Lit _ -> ()
  in
  let rec is_ground_subtree (e : Ast.expr) =
    match e with
    | Ast.Var x -> Hashtbl.mem bound x
    | Ast.Wildcard -> false
    | Ast.Lit _ -> true
    | Ast.Call (_, args) -> List.for_all is_ground_subtree args
  in
  (* inside a primitive application the matcher evaluates, it cannot
     delta-restrict: a table call there makes the rule ineligible *)
  let rec scan_prim_args (e : Ast.expr) =
    match e with
    | Ast.Call (f, args) ->
      if not (Primitives.is_primitive f) then eligible := false;
      List.iter scan_prim_args args
    | Var _ | Wildcard | Lit _ -> ()
  in
  (* ground regime: child facts accumulate onto [pre], innermost first *)
  let rec flatten_ground pre (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Call (f, args) when Primitives.is_primitive f ->
      List.iter scan_prim_args args;
      e
    | Ast.Call (f, args) ->
      let args' =
        List.map
          (fun a ->
            match a with
            | Ast.Call (g, _) when not (Primitives.is_primitive g) -> (
              match Hashtbl.find_opt cse a with
              | Some aux -> Ast.Var aux
              | None ->
                let a' = flatten_ground pre a in
                let aux = fresh () in
                pre := !pre @ [ Ast.F_eq [ Ast.Var aux; a' ] ];
                Hashtbl.add cse a aux;
                Ast.Var aux)
            | _ -> flatten_ground pre a)
          args
      in
      Ast.Call (f, args')
    | Var _ | Wildcard | Lit _ -> e
  in
  (* binding regime: ground children onto [pre]; binding children onto
     [suf], each parent before its own children *)
  let rec flatten_pat pre suf (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Call (f, args) when Primitives.is_primitive f ->
      List.iter scan_prim_args args;
      e
    | Ast.Call (f, args) ->
      let args' =
        List.map
          (fun a ->
            match a with
            | Ast.Call (g, _) when not (Primitives.is_primitive g) ->
              if is_ground_subtree a then
                match Hashtbl.find_opt cse a with
                | Some aux -> Ast.Var aux
                | None ->
                  let a' = flatten_ground pre a in
                  let aux = fresh () in
                  pre := !pre @ [ Ast.F_eq [ Ast.Var aux; a' ] ];
                  Hashtbl.add cse a aux;
                  Ast.Var aux
              else begin
                let aux = fresh () in
                let sub_suf = ref [] in
                let a' = flatten_pat pre sub_suf a in
                suf := !suf @ (Ast.F_eq [ Ast.Var aux; a' ] :: !sub_suf);
                Ast.Var aux
              end
            | _ -> flatten_pat pre suf a)
          args
      in
      Ast.Call (f, args')
    | Var _ | Wildcard | Lit _ -> e
  in
  let flatten_fact (fact : Ast.fact) : Ast.fact list =
    let pre = ref [] and suf = ref [] in
    let fact' =
      match fact with
      | Ast.F_expr e -> Ast.F_expr (flatten_pat pre suf e)
      | Ast.F_eq es -> Ast.F_eq (List.map (flatten_pat pre suf) es)
    in
    let group = !pre @ (fact' :: !suf) in
    (* everything this group can bind is bound for the facts that follow *)
    List.iter
      (function Ast.F_eq es -> List.iter add_vars es | Ast.F_expr e -> add_vars e)
      group;
    group
  in
  let p_facts = List.concat_map flatten_fact facts in
  let facts_arr = Array.of_list p_facts in
  let n_facts = Array.length facts_arr in
  (* --- static join-order analysis -------------------------------------
     [vars.(i)]: every variable fact [i] mentions (all are bound once it is
     solved).  [requires.(i)]: variables that must already be bound when
     fact [i] runs, or the matcher would silently drop environments (vars
     inside evaluated primitive applications) or error (a bare-var fact):
     reordering must never schedule a fact before its requirements. *)
  let exprs_of = function Ast.F_expr e -> [ e ] | Ast.F_eq es -> es in
  let vars_of_fact fact =
    let acc = ref [] in
    let add x = if not (List.mem x !acc) then acc := x :: !acc in
    let rec go e =
      match e with
      | Ast.Var x -> add x
      | Ast.Call (_, args) -> List.iter go args
      | Ast.Wildcard | Ast.Lit _ -> ()
    in
    List.iter go (exprs_of fact);
    !acc
  in
  let requires_of_fact fact =
    let acc = ref [] in
    let add x = if not (List.mem x !acc) then acc := x :: !acc in
    let rec all_vars e =
      match e with
      | Ast.Var x -> add x
      | Ast.Call (_, args) -> List.iter all_vars args
      | Ast.Wildcard | Ast.Lit _ -> ()
    in
    (* [pattern] = this position is matched against a row value (can bind);
       evaluated positions require their variables *)
    let rec go ~pattern e =
      match e with
      | Ast.Var _ | Ast.Wildcard | Ast.Lit _ -> ()
      | Ast.Call ("vec-of", args) when pattern ->
        (* destructuring: elements are again pattern positions *)
        List.iter (go ~pattern:true) args
      | Ast.Call (f, args) when Primitives.is_primitive f -> List.iter all_vars args
      | Ast.Call (_, args) -> List.iter (go ~pattern:true) args
    in
    (match fact with
    | Ast.F_expr (Ast.Var x) -> add x  (* bare-var fact errors when unbound *)
    | Ast.F_expr e -> go ~pattern:false e
    | Ast.F_eq es ->
      List.iter (function Ast.Var _ | Ast.Wildcard -> () | e -> go ~pattern:false e) es;
      (* an all-variables (=) errors with nothing bound: require the first *)
      if
        List.for_all (function Ast.Var _ | Ast.Wildcard -> true | _ -> false) es
      then
        match es with Ast.Var x :: _ -> add x | _ -> ());
    !acc
  in
  let fact_vars = Array.map vars_of_fact facts_arr in
  let fact_requires = Array.map requires_of_fact facts_arr in
  let has_table_call fact =
    let rec go e =
      match e with
      | Ast.Call (f, args) ->
        (not (Primitives.is_primitive f)) || List.exists go args
      | Ast.Var _ | Ast.Wildcard | Ast.Lit _ -> false
    in
    List.exists go (exprs_of fact)
  in
  let fact_has_table = Array.map has_table_call facts_arr in
  (* greedy schedule starting from [first]: among facts whose requirements
     are met, prefer fully-bound ones (pure filters), then table facts
     sharing a bound variable (indexed joins); facts sharing nothing are
     deferred (cartesian products).  Deadlock-free: the earliest remaining
     fact in the original order always has its requirements met. *)
  let schedule ~first : int array =
    let bound = Hashtbl.create 16 in
    let bind i = List.iter (fun x -> Hashtbl.replace bound x ()) fact_vars.(i) in
    let scheduled = Array.make n_facts false in
    let order = Array.make n_facts 0 in
    scheduled.(first) <- true;
    order.(0) <- first;
    bind first;
    for k = 1 to n_facts - 1 do
      let best = ref (-1) and best_score = ref (-1) in
      for i = 0 to n_facts - 1 do
        if not scheduled.(i) then begin
          let ok = List.for_all (Hashtbl.mem bound) fact_requires.(i) in
          let score =
            if not ok then -1
            else if List.for_all (Hashtbl.mem bound) fact_vars.(i) then 3
            else if fact_has_table.(i) && List.exists (Hashtbl.mem bound) fact_vars.(i)
            then 2
            else if List.exists (Hashtbl.mem bound) fact_vars.(i) then 1
            else 0
          in
          if score > !best_score then begin
            best := i;
            best_score := score
          end
        end
      done;
      let pick =
        if !best_score >= 0 then !best
        else begin
          (* no requirements met anywhere: fall back to the earliest
             remaining fact, whose requirements the original order meets *)
          let rec earliest i = if scheduled.(i) then earliest (i + 1) else i in
          earliest 0
        end
      in
      scheduled.(pick) <- true;
      order.(k) <- pick;
      bind pick
    done;
    order
  in
  let original_order = Array.init n_facts (fun i -> i) in
  let p_atoms =
    List.concat
      (List.mapi
         (fun i (fact : Ast.fact) ->
           let order =
             (* the delta scan can only drive the join if nothing the
                atom's fact requires is missing at the start *)
             if fact_requires.(i) = [] then schedule ~first:i else original_order
           in
           let atom_of j (e : Ast.expr) =
             match e with
             | Ast.Call (f, _) when not (Primitives.is_primitive f) ->
               Some { a_fact = i; a_conj = j; a_sym = Symbol.intern f; a_order = order }
             | _ -> None
           in
           match fact with
           | Ast.F_expr e -> Option.to_list (atom_of 0 e)
           | Ast.F_eq es -> List.filter_map Fun.id (List.mapi atom_of es))
         p_facts)
  in
  { p_facts; p_atoms; p_eligible = !eligible }

(** Compiler-generated auxiliary variable? (see [fresh] in {!compile}) *)
let is_aux_var x = String.length x >= 5 && String.sub x 0 5 = "?__sn"

(** Remove duplicate environments (seminaive delta terms overlap when a
    match involves more than one new row).  Environments are compared on
    the rule's own variables only: actions never mention the compiler's
    aux vars, so environments differing only there are interchangeable
    and keeping one of them also avoids re-applying the same action. *)
let dedupe_envs (envs : env list) : env list =
  match envs with
  | [] | [ _ ] -> envs
  | _ ->
    let seen = Hashtbl.create (List.length envs) in
    List.filter
      (fun env ->
        let key =
          List.filter (fun (x, _) -> not (is_aux_var x)) (Env.bindings env)
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      envs

(** Seminaive solve: environments satisfying the plan's premises that
    involve at least one row newer than stamp [since].  Unions, over every
    atom, the term where that atom takes the delta, occurrences before it
    take only old rows and occurrences after it the full table (see
    {!occ_mode}) — each combination of rows is derived by exactly one
    term.  Atoms whose table did not change since [since] have an empty
    delta and are skipped outright, so a rule with no new relevant rows
    costs O(atoms). *)
let solve_plan idx (p : plan) ~(since : int) : env list =
  let facts = Array.of_list p.p_facts in
  let atoms = Array.of_list p.p_atoms in
  let n_facts = Array.length facts in
  let solve_term t =
    let a = atoms.(t) in
    (* per-fact conjunct→mode map for this term's occurrence restrictions *)
    let fact_occs : (int * occ_mode) list array = Array.make n_facts [] in
    Array.iteri
      (fun u (b : atom) ->
        let mode =
          if u < t then M_old since else if u = t then M_delta since else M_full
        in
        fact_occs.(b.a_fact) <- (b.a_conj, mode) :: fact_occs.(b.a_fact))
      atoms;
    (* follow the atom's precomputed join order: its (small) delta scan
       drives the join, so the remaining facts — greedily ordered by
       variable connectivity — join through the indexes instead of
       enumerating tables *)
    let envs = ref [ Env.empty ] in
    Array.iter
      (fun i ->
        if !envs <> [] then begin
          let occs = fact_occs.(i) in
          let occ_for j =
            match List.assq_opt j occs with Some m -> m | None -> M_full
          in
          envs := solve_fact_occs occ_for idx !envs facts.(i)
        end)
      a.a_order;
    !envs
  in
  let terms = ref [] in
  Array.iteri
    (fun t (a : atom) ->
      match Egraph.find_func_opt idx.eg a.a_sym with
      | Some f when f.Egraph.last_modified > since -> (
        match solve_term t with [] -> () | r -> terms := r :: !terms)
      | Some _ -> ()  (* table untouched since the rule's last scan *)
      | None -> error "unknown function %s in pattern" (Symbol.name a.a_sym))
    atoms;
  match !terms with
  | [] -> []
  | [ r ] -> r
  | rs ->
    (* terms are disjoint by construction; duplicates can still arise
       within one term (distinct rows binding the same rule variables) *)
    dedupe_envs (List.concat rs)
