(** Static sort-checker for Egglog programs.

    Infers the sort of every expression against declared
    datatype/function/relation/primitive signatures, tracks pattern
    variable binding with the matcher's left-to-right discipline, and
    reports violations as structured {!Diag.t} values: unknown symbols,
    arity mismatches, sort conflicts, variables used on a rewrite RHS or
    in actions without being bound, wildcards in evaluated position,
    rebound or unknown [let] names, references to undeclared rulesets,
    duplicate [:name]d rules and duplicate datatype constructors.  See
    [check.ml] for the full list of diagnostic codes. *)

(** A function (or constructor, or relation) signature as declared. *)
type fsig = {
  fs_args : string list;  (** argument sort names *)
  fs_ret : string;  (** return sort name *)
  fs_cost : int option;
}

(** A mutable checking environment: sorts, function signatures, global
    lets and rulesets declared so far.  Checking a program extends it,
    so a prelude can be checked once and reused via {!copy_env}. *)
type env

(** An environment with only the builtin sorts (i64, f64, String, bool,
    Unit). *)
val create_env : unit -> env

(** An independent copy: checking against it never affects the source. *)
val copy_env : env -> env

val find_func : env -> string -> fsig option

val iter_funcs : env -> (string -> fsig -> unit) -> unit

(** Check a program from source text.  Never raises: unparsable input
    becomes [parse-error] diagnostics.  Declarations (even erroneous
    ones, best-effort) are recorded in [env]. *)
val check_program : ?file:string -> env:env -> string -> Diag.t list

(** Check an already-parsed program.  Diagnostics carry no source spans. *)
val check_commands : ?file:string -> env:env -> Ast.command list -> Diag.t list
