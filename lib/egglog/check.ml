(** Static sort-checker for Egglog programs.

    Validates a program against the declared sorts, datatypes, functions,
    relations and primitive signatures without running it: every
    expression gets a sort inferred by unification, pattern-variable
    binding is tracked with the same left-to-right discipline the
    {!Matcher} uses at run time, and every violation becomes a
    structured {!Diag.t} instead of a [Failure] at saturation time.

    Diagnostic codes emitted here:
    - [parse-error] — the s-expression is not a valid command;
    - [unknown-sort] / [unknown-function] / [unknown-name] /
      [unknown-ruleset] — reference to an undeclared entity;
    - [arity-mismatch] — wrong number of arguments;
    - [sort-mismatch] — an expression's sort conflicts with its context;
    - [unbound-var] — a pattern variable used where a value is needed
      (rewrite RHS, action, primitive argument) but never bound;
    - [wildcard-rhs] — a wildcard in evaluated position;
    - [rebound-let] — a global [let] name defined twice;
    - [duplicate-rule] — two rules declared with the same [:name];
    - [duplicate-constructor] — a constructor declared twice in the same
      [datatype];
    - [redeclared] — conflicting sort/function/ruleset redeclaration
      (an identical redeclaration is benign, so a rules file may repeat
      the prelude);
    - [bad-pattern] — a rewrite LHS that is not a table application;
    - [bad-action] — a malformed [set]/[delete]/[unstable-cost];
    - [bad-merge] — a [:merge] expression the engine cannot evaluate;
    - [unconstrained-fact] — a fact that can never bind or test anything;
    - [shadowed-binding] (warning) — a rule-local [let] reusing a name;
    - [non-boolean-guard] (warning) — a guard whose sort is not [bool]
      (the engine treats any non-[false] value as success). *)

(* ------------------------------------------------------------------ *)
(* Inferred sorts                                                      *)
(* ------------------------------------------------------------------ *)

type ty =
  | Tsort of string
  | Tvec of ty  (** a vector value whose named sort is not yet known *)
  | Tvar of tvar

and tvar = { id : int; mutable inst : ty option }

let rec repr ty =
  match ty with
  | Tvar ({ inst = Some t; _ } as v) ->
    let r = repr t in
    v.inst <- Some r;
    r
  | _ -> ty

let rec ty_str ty =
  match repr ty with
  | Tsort s -> s
  | Tvec e -> "(Vec " ^ ty_str e ^ ")"
  | Tvar _ -> "_"

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

type sort_def = Plain | Vec_sort of string

type fsig = { fs_args : string list; fs_ret : string; fs_cost : int option }

type env = {
  sorts : (string, sort_def) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  rulesets : (string, unit) Hashtbl.t;
  rule_names : (string, unit) Hashtbl.t;  (** [:name]d rules seen so far *)
}

let builtin_sorts = [ "i64"; "f64"; "String"; "bool"; "Unit" ]

let create_env () =
  let env =
    {
      sorts = Hashtbl.create 32;
      funcs = Hashtbl.create 64;
      globals = Hashtbl.create 16;
      rulesets = Hashtbl.create 8;
      rule_names = Hashtbl.create 8;
    }
  in
  List.iter (fun s -> Hashtbl.replace env.sorts s Plain) builtin_sorts;
  env

let rec zonk ty =
  match repr ty with
  | Tsort s -> Tsort s
  | Tvec e -> Tvec (zonk e)
  | Tvar _ -> Tvar { id = -1; inst = None }

let copy_env env =
  {
    sorts = Hashtbl.copy env.sorts;
    funcs = Hashtbl.copy env.funcs;
    globals =
      (let g = Hashtbl.create (Hashtbl.length env.globals) in
       (* break unification-variable sharing with the source env *)
       Hashtbl.iter (fun k v -> Hashtbl.replace g k (zonk v)) env.globals;
       g);
    rulesets = Hashtbl.copy env.rulesets;
    rule_names = Hashtbl.copy env.rule_names;
  }

let find_func env name = Hashtbl.find_opt env.funcs name

let iter_funcs env f = Hashtbl.iter f env.funcs

let vec_elem env name =
  match Hashtbl.find_opt env.sorts name with Some (Vec_sort e) -> Some e | _ -> None

(* ------------------------------------------------------------------ *)
(* Checker context                                                     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  env : env;
  file : string option;
  mutable diags : Diag.t list;  (** reversed *)
  mutable next : int;
}

let fresh ctx =
  ctx.next <- ctx.next + 1;
  Tvar { id = ctx.next; inst = None }

let errf ctx span code fmt =
  Fmt.kstr (fun m -> ctx.diags <- Diag.make ?file:ctx.file ~span Diag.Error code m :: ctx.diags) fmt

let warnf ctx span code fmt =
  Fmt.kstr (fun m -> ctx.diags <- Diag.make ?file:ctx.file ~span Diag.Warning code m :: ctx.diags) fmt

let rec occurs v ty =
  match repr ty with Tvar v2 -> v2 == v | Tvec e -> occurs v e | Tsort _ -> false

let rec unify env a b =
  let a = repr a and b = repr b in
  match (a, b) with
  | Tvar v, t | t, Tvar v -> (
    match t with
    | Tvar v2 when v2 == v -> true
    | _ ->
      if occurs v t then false
      else begin
        v.inst <- Some t;
        true
      end)
  | Tsort x, Tsort y -> x = y
  | Tsort x, Tvec e | Tvec e, Tsort x -> (
    (* a named vec sort unifies with a structural vector of its element sort *)
    match vec_elem env x with Some el -> unify env e (Tsort el) | None -> false)
  | Tvec x, Tvec y -> unify env x y

let unify_or ctx span ~expected ~actual what =
  if not (unify ctx.env expected actual) then
    errf ctx span "sort-mismatch" "%s: expected %s, got %s" what (ty_str expected) (ty_str actual)

let lit_ty : Ast.lit -> ty = function
  | L_i64 _ -> Tsort "i64"
  | L_f64 _ -> Tsort "f64"
  | L_string _ -> Tsort "String"
  | L_bool _ -> Tsort "bool"
  | L_unit -> Tsort "Unit"

let is_pattern_var x = String.length x > 0 && x.[0] = '?'

(* ------------------------------------------------------------------ *)
(* Located expressions                                                 *)
(* ------------------------------------------------------------------ *)

(* Mirror of {!Ast.expr} with the span of every node, rebuilt from the
   located s-expression with exactly the parser's atom interpretation. *)
type lexpr =
  | E_var of string * Sexp.span
  | E_wild of Sexp.span
  | E_lit of Ast.lit * Sexp.span
  | E_call of string * Sexp.span * lexpr list * Sexp.span
      (** name, head span, arguments, whole-application span *)

exception Bad_syntax of Sexp.span * string

let rec lexpr_of_loc (l : Sexp.located) : lexpr =
  let sp = l.span in
  match l.node with
  | N_str s -> E_lit (L_string s, sp)
  | N_atom ("_" | "?") -> E_wild sp
  | N_atom "true" -> E_lit (L_bool true, sp)
  | N_atom "false" -> E_lit (L_bool false, sp)
  | N_atom a when Parser.is_int_atom a -> (
    match Int64.of_string_opt a with
    | Some n -> E_lit (L_i64 n, sp)
    | None -> raise (Bad_syntax (sp, "integer literal out of range: " ^ a)))
  | N_atom a when Parser.is_float_atom a -> E_lit (L_f64 (float_of_string a), sp)
  | N_atom a -> E_var (a, sp)
  | N_list [] -> E_lit (L_unit, sp)
  | N_list ({ node = N_atom f; span = hsp } :: args) ->
    E_call (f, hsp, List.map lexpr_of_loc args, sp)
  | N_list (h :: _) -> raise (Bad_syntax (h.span, "head of application must be an atom"))

let lexpr_span = function
  | E_var (_, sp) | E_wild sp | E_lit (_, sp) | E_call (_, _, _, sp) -> sp

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

(* [Top] is top-level command position (only globals are in scope);
   [Rule bound] carries the pattern variables and rule-local lets bound
   so far, mirroring the matcher's environment. *)
type scope = Top | Rule of (string, ty) Hashtbl.t

let rec zip : 'a 'b. 'a list -> 'b list -> ('a * 'b) list =
 fun a b -> match (a, b) with x :: a, y :: b -> (x, y) :: zip a b | _ -> []

let lookup_var ctx scope x =
  match scope with
  | Rule bound -> (
    match Hashtbl.find_opt bound x with
    | Some t -> Some t
    | None -> if is_pattern_var x then None else Hashtbl.find_opt ctx.env.globals x)
  | Top -> if is_pattern_var x then None else Hashtbl.find_opt ctx.env.globals x

let rec check_eval ctx scope (e : lexpr) : ty =
  match e with
  | E_lit (l, _) -> lit_ty l
  | E_wild sp ->
    errf ctx sp "wildcard-rhs"
      "wildcard cannot appear in an evaluated expression (rewrite right-hand side or action)";
    fresh ctx
  | E_var (x, sp) -> (
    match lookup_var ctx scope x with
    | Some t -> t
    | None ->
      (match scope with
      | Rule bound ->
        errf ctx sp "unbound-var"
          "variable %s is never bound by the left-hand side or an earlier fact" x;
        (* bind it so the diagnostic is reported once per rule *)
        let t = fresh ctx in
        Hashtbl.replace bound x t;
        t
      | Top ->
        if is_pattern_var x then
          errf ctx sp "unbound-var" "pattern variable %s outside a rule" x
        else errf ctx sp "unknown-name" "unknown name %s" x;
        fresh ctx))
  | E_call (f, hsp, args, sp) ->
    if Primitives.is_primitive f then check_prim ctx scope f args hsp sp
    else (
      match find_func ctx.env f with
      | None ->
        errf ctx hsp "unknown-function" "unknown function or constructor %s" f;
        List.iter (fun a -> ignore (check_eval ctx scope a)) args;
        fresh ctx
      | Some fs ->
        check_arity ctx sp f (List.length fs.fs_args) (List.length args);
        List.iteri
          (fun i (a, s) ->
            let t = check_eval ctx scope a in
            unify_or ctx (lexpr_span a) ~expected:(Tsort s) ~actual:t
              (Printf.sprintf "argument %d of %s" (i + 1) f))
          (zip args fs.fs_args);
        Tsort fs.fs_ret)

and check_arity ctx sp f n_exp n_got =
  if n_exp <> n_got then
    errf ctx sp "arity-mismatch" "%s expects %d argument(s), got %d" f n_exp n_got

(* Primitive signatures, polymorphic where {!Primitives.apply} is. *)
and check_prim ctx scope f args _hsp sp : ty =
  let ev a = check_eval ctx scope a in
  let arity n = check_arity ctx sp f n (List.length args) in
  let arg i = List.nth_opt args i in
  let ev_at i = match arg i with Some a -> ev a | None -> fresh ctx in
  let span_at i = match arg i with Some a -> lexpr_span a | None -> sp in
  let want i expected =
    let t = ev_at i in
    unify_or ctx (span_at i) ~expected ~actual:t (Printf.sprintf "argument %d of %s" (i + 1) f);
    t
  in
  let unify2 () =
    let t = ev_at 0 in
    unify_or ctx (span_at 1) ~expected:t ~actual:(ev_at 1)
      (Printf.sprintf "arguments of %s must share a sort" f);
    t
  in
  let numeric i t classes =
    match repr t with
    | Tsort s when List.mem s classes -> ()
    | Tvar _ -> ()
    | t ->
      errf ctx (span_at i) "sort-mismatch" "argument %d of %s: expected one of %s, got %s" (i + 1)
        f (String.concat "/" classes) (ty_str t)
  in
  let rest_evald () = List.iteri (fun i _ -> if i > 1 then ignore (ev_at i)) args in
  rest_evald ();
  match f with
  | "+" ->
    arity 2;
    let t = unify2 () in
    numeric 0 t [ "i64"; "f64"; "String" ];
    t
  | "-" ->
    if List.length args = 1 then begin
      let t = ev_at 0 in
      numeric 0 t [ "i64"; "f64" ];
      t
    end
    else begin
      arity 2;
      let t = unify2 () in
      numeric 0 t [ "i64"; "f64" ];
      t
    end
  | "*" | "/" | "%" | "min" | "max" | "pow" ->
    arity 2;
    let t = unify2 () in
    numeric 0 t [ "i64"; "f64" ];
    t
  | "abs" | "neg" ->
    arity 1;
    let t = ev_at 0 in
    numeric 0 t [ "i64"; "f64" ];
    t
  | "<" | "<=" | ">" | ">=" ->
    arity 2;
    let t = unify2 () in
    numeric 0 t [ "i64"; "f64" ];
    Tsort "bool"
  | "==" | "!=" ->
    arity 2;
    ignore (unify2 ());
    Tsort "bool"
  | "log2" ->
    arity 1;
    ignore (want 0 (Tsort "i64"));
    Tsort "i64"
  | "sqrt" ->
    arity 1;
    ignore (want 0 (Tsort "f64"));
    Tsort "f64"
  | "<<" | ">>" | "&" | "|" | "^" ->
    arity 2;
    ignore (want 0 (Tsort "i64"));
    ignore (want 1 (Tsort "i64"));
    Tsort "i64"
  | "not" ->
    arity 1;
    ignore (want 0 (Tsort "bool"));
    Tsort "bool"
  | "and" | "or" | "xor" ->
    arity 2;
    ignore (want 0 (Tsort "bool"));
    ignore (want 1 (Tsort "bool"));
    Tsort "bool"
  | "to-f64" ->
    arity 1;
    ignore (want 0 (Tsort "i64"));
    Tsort "f64"
  | "to-i64" ->
    arity 1;
    ignore (want 0 (Tsort "f64"));
    Tsort "i64"
  | "to-string" ->
    arity 1;
    ignore (ev_at 0);
    Tsort "String"
  | "f64-to-i64-bits" ->
    arity 1;
    ignore (want 0 (Tsort "f64"));
    Tsort "i64"
  | "i64-bits-to-f64" ->
    arity 1;
    ignore (want 0 (Tsort "i64"));
    Tsort "f64"
  | "vec-of" ->
    let elem = fresh ctx in
    List.iteri
      (fun i a ->
        unify_or ctx (lexpr_span a) ~expected:elem ~actual:(ev a)
          (Printf.sprintf "element %d of vec-of" (i + 1)))
      args;
    Tvec elem
  | "vec-empty" ->
    arity 0;
    Tvec (fresh ctx)
  | "vec-push" ->
    arity 2;
    let elem = fresh ctx in
    let t = want 0 (Tvec elem) in
    ignore (want 1 elem);
    t
  | "vec-pop" ->
    arity 1;
    want 0 (Tvec (fresh ctx))
  | "vec-get" ->
    arity 2;
    let elem = fresh ctx in
    ignore (want 0 (Tvec elem));
    ignore (want 1 (Tsort "i64"));
    elem
  | "vec-set" ->
    arity 3;
    let elem = fresh ctx in
    let t = want 0 (Tvec elem) in
    ignore (want 1 (Tsort "i64"));
    ignore (want 2 elem);
    t
  | "vec-length" ->
    arity 1;
    ignore (want 0 (Tvec (fresh ctx)));
    Tsort "i64"
  | "vec-append" ->
    arity 2;
    let t = unify2 () in
    unify_or ctx (span_at 0) ~expected:(Tvec (fresh ctx)) ~actual:t "vec-append argument";
    t
  | "vec-contains" ->
    arity 2;
    let elem = fresh ctx in
    ignore (want 0 (Tvec elem));
    ignore (want 1 elem);
    Tsort "bool"
  | "str-concat" ->
    arity 2;
    ignore (want 0 (Tsort "String"));
    ignore (want 1 (Tsort "String"));
    Tsort "String"
  | "str-length" ->
    arity 1;
    ignore (want 0 (Tsort "String"));
    Tsort "i64"
  | _ ->
    (* is_primitive and this table are kept in sync; be permissive if not *)
    List.iter (fun a -> ignore (ev a)) args;
    fresh ctx

(* ------------------------------------------------------------------ *)
(* Pattern checking (rule facts and rewrite left-hand sides)           *)
(* ------------------------------------------------------------------ *)

let rec check_pattern ctx bound (e : lexpr) (expected : ty) : unit =
  match e with
  | E_wild _ -> ()
  | E_lit (l, sp) -> unify_or ctx sp ~expected ~actual:(lit_ty l) "literal pattern"
  | E_var (x, sp) -> (
    match Hashtbl.find_opt bound x with
    | Some t -> unify_or ctx sp ~expected ~actual:t ("variable " ^ x)
    | None -> (
      match (if is_pattern_var x then None else Hashtbl.find_opt ctx.env.globals x) with
      | Some t -> unify_or ctx sp ~expected ~actual:t ("global " ^ x)
      | None -> Hashtbl.replace bound x expected))
  | E_call ("vec-of", _, args, sp) ->
    (* vec-of patterns destructure: their elements bind variables *)
    let elem = fresh ctx in
    unify_or ctx sp ~expected ~actual:(Tvec elem) "vec-of pattern";
    List.iter (fun a -> check_pattern ctx bound a elem) args
  | E_call (f, hsp, args, sp) when Primitives.is_primitive f ->
    (* computed subpattern: evaluated during matching, so every variable
       inside must already be bound *)
    let t = check_prim ctx (Rule bound) f args hsp sp in
    unify_or ctx sp ~expected ~actual:t ("result of primitive " ^ f)
  | E_call (f, hsp, args, sp) -> (
    match find_func ctx.env f with
    | None ->
      errf ctx hsp "unknown-function" "unknown function or constructor %s" f;
      List.iter (fun a -> check_pattern ctx bound a (fresh ctx)) args
    | Some fs ->
      check_arity ctx sp f (List.length fs.fs_args) (List.length args);
      List.iter (fun (a, s) -> check_pattern ctx bound a (Tsort s)) (zip args fs.fs_args);
      unify_or ctx sp ~expected ~actual:(Tsort fs.fs_ret) ("application of " ^ f))

(* ------------------------------------------------------------------ *)
(* Facts and actions                                                   *)
(* ------------------------------------------------------------------ *)

let is_eval_prim f = Primitives.is_primitive f && f <> "vec-of"

let check_fact ctx bound (l : Sexp.located) =
  match l.node with
  | N_list ({ node = N_atom "="; _ } :: args) when List.length args >= 2 ->
    let target = fresh ctx in
    (* [anchored] tracks whether some element can produce the shared
       value; a fact of nothing but unbound variables never matches *)
    let anchored = ref false in
    List.iter
      (fun a ->
        match lexpr_of_loc a with
        | E_wild _ -> ()
        | E_lit (lit, sp) ->
          anchored := true;
          unify_or ctx sp ~expected:target ~actual:(lit_ty lit) "literal in (=) fact"
        | E_var (x, sp) -> (
          match Hashtbl.find_opt bound x with
          | Some t ->
            anchored := true;
            unify_or ctx sp ~expected:target ~actual:t ("variable " ^ x)
          | None -> (
            match (if is_pattern_var x then None else Hashtbl.find_opt ctx.env.globals x) with
            | Some t ->
              anchored := true;
              unify_or ctx sp ~expected:target ~actual:t ("global " ^ x)
            | None ->
              (* deferred binding: bound once another element produces the value *)
              Hashtbl.replace bound x target))
        | E_call (f, _, _, sp) as e when is_eval_prim f ->
          anchored := true;
          let t = check_eval ctx (Rule bound) e in
          unify_or ctx sp ~expected:target ~actual:t ("result of primitive " ^ f)
        | e ->
          anchored := true;
          check_pattern ctx bound e target)
      args;
    if not !anchored then
      errf ctx l.span "unconstrained-fact"
        "(=) fact binds no value: every element is an unbound variable or wildcard"
  | _ -> (
    match lexpr_of_loc l with
    | E_call (f, _, _, _) as e when is_eval_prim f ->
      (* boolean guard *)
      let t = check_eval ctx (Rule bound) e in
      (match repr t with
      | Tsort s when s <> "bool" ->
        warnf ctx l.span "non-boolean-guard"
          "guard evaluates to %s, not bool — any non-false value passes" s
      | _ -> ())
    | E_call _ as e -> check_pattern ctx bound e (fresh ctx)
    | E_var (x, sp) ->
      if
        (not (Hashtbl.mem bound x))
        && not ((not (is_pattern_var x)) && Hashtbl.mem ctx.env.globals x)
      then
        errf ctx sp "unconstrained-fact" "fact is a bare unbound variable %s — it matches nothing"
          x
    | E_wild sp -> errf ctx sp "unconstrained-fact" "fact is a bare wildcard"
    | E_lit _ -> ())

(* [set]/[delete]/[unstable-cost] need a function-table application. *)
let check_table_app ctx scope what (l : Sexp.located) : fsig option =
  match l.node with
  | N_list ({ node = N_atom f; span = hsp } :: args) when not (Primitives.is_primitive f) -> (
    match find_func ctx.env f with
    | None ->
      errf ctx hsp "unknown-function" "unknown function or constructor %s" f;
      List.iter (fun a -> ignore (check_eval ctx scope (lexpr_of_loc a))) args;
      None
    | Some fs ->
      check_arity ctx l.span f (List.length fs.fs_args) (List.length args);
      List.iteri
        (fun i (a, s) ->
          let t = check_eval ctx scope (lexpr_of_loc a) in
          unify_or ctx a.Sexp.span ~expected:(Tsort s) ~actual:t
            (Printf.sprintf "argument %d of %s" (i + 1) f))
        (zip args fs.fs_args);
      Some fs)
  | _ ->
    errf ctx l.span "bad-action" "%s expects a function or constructor application" what;
    None

let check_laction ctx scope (l : Sexp.located) =
  let child i = match l.node with N_list xs -> List.nth_opt xs i | _ -> None in
  let head = match child 0 with Some { node = N_atom a; _ } -> Some a | _ -> None in
  match (head, l.node) with
  | Some "let", N_list [ _; { node = N_atom x; span = xsp }; e ] -> (
    let t = check_eval ctx scope (lexpr_of_loc e) in
    match scope with
    | Rule bound ->
      if Hashtbl.mem bound x then
        warnf ctx xsp "shadowed-binding" "rule-local let %s shadows an earlier binding" x;
      Hashtbl.replace bound x t
    | Top -> ())
  | Some "union", N_list [ _; a; b ] ->
    let ta = check_eval ctx scope (lexpr_of_loc a) in
    let tb = check_eval ctx scope (lexpr_of_loc b) in
    unify_or ctx b.span ~expected:ta ~actual:tb "union of incompatible sorts"
  | Some "set", N_list [ _; lhs; v ] -> (
    match check_table_app ctx scope "set" lhs with
    | Some fs ->
      let tv = check_eval ctx scope (lexpr_of_loc v) in
      unify_or ctx v.span ~expected:(Tsort fs.fs_ret) ~actual:tv "set value"
    | None -> ignore (check_eval ctx scope (lexpr_of_loc v)))
  | Some "unstable-cost", N_list [ _; e; c ] ->
    (match e.node with
    | N_list _ -> ignore (check_table_app ctx scope "unstable-cost" e)
    | _ -> ignore (check_eval ctx scope (lexpr_of_loc e)));
    let tc = check_eval ctx scope (lexpr_of_loc c) in
    unify_or ctx c.span ~expected:(Tsort "i64") ~actual:tc "unstable-cost cost"
  | Some "delete", N_list [ _; e ] -> ignore (check_table_app ctx scope "delete" e)
  | Some "panic", N_list [ _; { node = N_str _; _ } ] -> ()
  | _ -> ignore (check_eval ctx scope (lexpr_of_loc l))

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let children l = match l.Sexp.node with N_list xs -> xs | _ -> []

let child_or_self l i =
  match List.nth_opt (children l) i with Some c -> c | None -> l

let find_option_loc l key =
  let rec go = function
    | { Sexp.node = Sexp.N_atom a; _ } :: v :: _ when a = key -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go (children l)

let check_sort_ref ctx span s =
  if not (Hashtbl.mem ctx.env.sorts s) then errf ctx span "unknown-sort" "unknown sort %s" s

let check_ruleset_ref ctx span = function
  | None -> ()
  | Some rs ->
    if not (Hashtbl.mem ctx.env.rulesets rs) then
      errf ctx span "unknown-ruleset" "unknown ruleset %s" rs

let declare_func ctx span name args ret cost =
  List.iter (check_sort_ref ctx span) args;
  check_sort_ref ctx span ret;
  match Hashtbl.find_opt ctx.env.funcs name with
  | Some fs when fs.fs_args = args && fs.fs_ret = ret ->
    (* identical redeclaration (e.g. a rules file repeating the prelude) *)
    ()
  | Some _ -> errf ctx span "redeclared" "function %s redeclared with a different signature" name
  | None -> Hashtbl.replace ctx.env.funcs name { fs_args = args; fs_ret = ret; fs_cost = cost }

(* :merge expressions are evaluated by a tiny interpreter that only
   knows [old], [new], literals and primitives — anything else is
   rejected here instead of mid-saturation. *)
let rec scan_merge ctx (e : lexpr) =
  match e with
  | E_var _ | E_lit _ | E_wild _ -> ()
  | E_call (f, hsp, args, _) ->
    if Primitives.is_primitive f then List.iter (scan_merge ctx) args
    else if Hashtbl.mem ctx.env.funcs f then
      errf ctx hsp "bad-merge" "merge expressions support only primitives, old, new and literals (got %s)" f
    else List.iter (scan_merge ctx) args

let check_merge ctx cloc ret =
  match find_option_loc cloc ":merge" with
  | None -> ()
  | Some ml -> (
    match lexpr_of_loc ml with
    | le ->
      let bound = Hashtbl.create 4 in
      Hashtbl.replace bound "old" (Tsort ret);
      Hashtbl.replace bound "new" (Tsort ret);
      let t = check_eval ctx (Rule bound) le in
      unify_or ctx ml.span ~expected:(Tsort ret) ~actual:t "merge expression";
      scan_merge ctx le
    | exception Bad_syntax (sp, m) -> errf ctx sp "parse-error" "%s" m)

let check_located ctx (cmd : Ast.command) (cloc : Sexp.located) =
  let span = cloc.span in
  match cmd with
  | C_sort (name, None) -> (
    match Hashtbl.find_opt ctx.env.sorts name with
    | Some Plain | None -> Hashtbl.replace ctx.env.sorts name Plain
    | Some _ -> errf ctx span "redeclared" "sort %s redeclared with a different definition" name)
  | C_sort (name, Some ("Vec", [ elem ])) -> (
    check_sort_ref ctx span elem;
    match Hashtbl.find_opt ctx.env.sorts name with
    | Some (Vec_sort e) when e = elem -> ()
    | None -> Hashtbl.replace ctx.env.sorts name (Vec_sort elem)
    | Some _ -> errf ctx span "redeclared" "sort %s redeclared with a different definition" name)
  | C_sort (name, Some (container, _)) ->
    errf ctx span "unknown-sort" "unsupported container sort %s in declaration of %s" container
      name;
    if not (Hashtbl.mem ctx.env.sorts name) then Hashtbl.replace ctx.env.sorts name Plain
  | C_datatype (name, variants) ->
    (match Hashtbl.find_opt ctx.env.sorts name with
    | Some Plain | None -> Hashtbl.replace ctx.env.sorts name Plain
    | Some _ -> errf ctx span "redeclared" "sort %s redeclared with a different definition" name);
    let seen = Hashtbl.create 8 in
    List.iteri
      (fun i (v : Ast.variant) ->
        (* children of the command are [datatype; name; variant...] *)
        let vspan =
          match List.nth_opt (children cloc) (i + 2) with
          | Some l -> l.Sexp.span
          | None -> span
        in
        if Hashtbl.mem seen v.v_name then
          errf ctx vspan "duplicate-constructor"
            "constructor %s declared twice in datatype %s — the second declaration shadows the first"
            v.v_name name
        else Hashtbl.replace seen v.v_name ();
        declare_func ctx vspan v.v_name v.v_args name v.v_cost)
      variants
  | C_function d ->
    declare_func ctx span d.f_name d.f_args d.f_ret d.f_cost;
    if d.f_merge <> None then check_merge ctx cloc d.f_ret
  | C_relation (name, args) -> declare_func ctx span name args "Unit" None
  | C_let (x, _) ->
    let eloc = child_or_self cloc 2 in
    let t =
      match lexpr_of_loc eloc with
      | le -> check_eval ctx Top le
      | exception Bad_syntax (sp, m) ->
        errf ctx sp "parse-error" "%s" m;
        fresh ctx
    in
    if Hashtbl.mem ctx.env.globals x then
      errf ctx span "rebound-let" "global %s is already defined" x
    else Hashtbl.replace ctx.env.globals x t
  | C_ruleset name ->
    if Hashtbl.mem ctx.env.rulesets name then
      errf ctx span "redeclared" "ruleset %s already declared" name
    else Hashtbl.replace ctx.env.rulesets name ()
  | C_rewrite { bidirectional; ruleset; _ } ->
    let lhs_l = child_or_self cloc 1 and rhs_l = child_or_self cloc 2 in
    let cond_locs =
      match find_option_loc cloc ":when" with
      | Some { node = N_list facts; _ } -> facts
      | _ -> []
    in
    let rs_span =
      match find_option_loc cloc ":ruleset" with Some v -> v.span | None -> span
    in
    check_ruleset_ref ctx rs_span ruleset;
    let direction lhs_l rhs_l =
      let bound = Hashtbl.create 8 in
      let t_root = fresh ctx in
      (match lexpr_of_loc lhs_l with
      | E_call (f, hsp, _, _) as le ->
        if Primitives.is_primitive f then
          errf ctx hsp "bad-pattern"
            "rewrite left-hand side must be a function or constructor application, not primitive %s"
            f
        else check_pattern ctx bound le t_root
      | le ->
        errf ctx (lexpr_span le) "bad-pattern"
          "rewrite left-hand side must be a function or constructor application");
      List.iter (check_fact ctx bound) cond_locs;
      let t_rhs =
        match lexpr_of_loc rhs_l with le -> check_eval ctx (Rule bound) le
      in
      unify_or ctx rhs_l.span ~expected:t_root ~actual:t_rhs "rewrite right-hand side"
    in
    direction lhs_l rhs_l;
    if bidirectional then direction rhs_l lhs_l
  | C_rule { ruleset; name; _ } ->
    let fact_locs = children (child_or_self cloc 1) in
    let action_locs = children (child_or_self cloc 2) in
    let rs_span =
      match find_option_loc cloc ":ruleset" with Some v -> v.span | None -> span
    in
    check_ruleset_ref ctx rs_span ruleset;
    (match name with
    | Some n ->
      let n_span =
        match find_option_loc cloc ":name" with Some v -> v.span | None -> span
      in
      if Hashtbl.mem ctx.env.rule_names n then
        errf ctx n_span "duplicate-rule" "rule %S is already defined" n
      else Hashtbl.replace ctx.env.rule_names n ()
    | None -> ());
    let bound = Hashtbl.create 8 in
    List.iter (check_fact ctx bound) fact_locs;
    List.iter (check_laction ctx (Rule bound)) action_locs
  | C_action _ -> check_laction ctx Top cloc
  | C_run (_, ruleset) -> check_ruleset_ref ctx span ruleset
  | C_extract (_, _) -> ignore (check_eval ctx Top (lexpr_of_loc (child_or_self cloc 1)))
  | C_check _ ->
    let bound = Hashtbl.create 8 in
    List.iter (check_fact ctx bound) (List.tl (children cloc))
  | C_print_function (name, _) ->
    if find_func ctx.env name = None then
      errf ctx span "unknown-function" "unknown function or constructor %s" name
  | C_print_stats | C_push | C_pop -> ()

let check_located_safe ctx cmd cloc =
  try check_located ctx cmd cloc with
  | Bad_syntax (sp, m) -> errf ctx sp "parse-error" "%s" m
  | Parser.Error m -> errf ctx cloc.Sexp.span "parse-error" "%s" m

let finish ctx = Diag.dedup (List.rev ctx.diags)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check_program ?file ~env (src : string) : Diag.t list =
  let ctx = { env; file; diags = []; next = 0 } in
  (try
     let locs = Sexp.parse_string_loc src in
     List.iter
       (fun loc ->
         match Parser.command_of_sexp (Sexp.strip loc) with
         | cmd -> check_located_safe ctx cmd loc
         | exception Parser.Error m -> errf ctx loc.Sexp.span "parse-error" "%s" m
         | exception Failure m -> errf ctx loc.Sexp.span "parse-error" "%s" m)
       locs
   with Sexp.Parse_error { line; col; msg; _ } ->
     let pos = { Sexp.line; col } in
     errf ctx { sp_start = pos; sp_end = pos } "parse-error" "%s" msg);
  finish ctx

let check_commands ?file ~env (cmds : Ast.command list) : Diag.t list =
  let ctx = { env; file; diags = []; next = 0 } in
  List.iter
    (fun cmd -> check_located_safe ctx cmd (Sexp.with_dummy_spans (Ast.sexp_of_command cmd)))
    cmds;
  finish ctx
