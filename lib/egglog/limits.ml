(** Resource budgets for saturation; see the interface for the model. *)

type t = {
  max_iters : int option;
  max_nodes : int option;
  max_time_ms : float option;
  max_memory_words : int option;
}

let none =
  { max_iters = None; max_nodes = None; max_time_ms = None; max_memory_words = None }

let make ?max_iters ?max_nodes ?max_time_ms ?max_memory_mb () =
  {
    max_iters;
    max_nodes;
    max_time_ms;
    max_memory_words =
      Option.map (fun mb -> int_of_float (mb *. 1024. *. 1024. /. 8.)) max_memory_mb;
  }

(* Per-attempt budget derivation for supervised retries: a job that blew
   its budget once is unlikely to fit a *larger* one, so each retry halves
   every finite budget — the retry either succeeds quickly on a transient
   failure or fails fast into the caller's fallback.  Floors keep the
   derived budgets meaningful (one iteration, a handful of nodes, enough
   wall clock to start up at all). *)
let for_attempt t ~attempt =
  if attempt <= 0 then t
  else begin
    let shift = min attempt 16 in
    let div_int floor_ v = max floor_ (v asr shift) in
    let div_float floor_ v = Float.max floor_ (v /. float_of_int (1 lsl shift)) in
    {
      max_iters = Option.map (div_int 1) t.max_iters;
      max_nodes = Option.map (div_int 64) t.max_nodes;
      max_time_ms = Option.map (div_float 50.) t.max_time_ms;
      max_memory_words = Option.map (div_int (1024 * 1024 / 8)) t.max_memory_words;
    }
  end

type hit = L_iterations | L_nodes | L_time | L_memory

let hit_name = function
  | L_iterations -> "iteration limit"
  | L_nodes -> "node limit"
  | L_time -> "time limit"
  | L_memory -> "memory limit"

type gauge = {
  g_iters : int;
  g_nodes : int;
  g_memory_words : int;
  g_elapsed_ms : float;
}

let check t g =
  let over lim v = match lim with Some l -> v >= l | None -> false in
  if over t.max_iters g.g_iters then Some L_iterations
  else if over t.max_nodes g.g_nodes then Some L_nodes
  else if (match t.max_time_ms with Some l -> g.g_elapsed_ms >= l | None -> false)
  then Some L_time
  else if over t.max_memory_words g.g_memory_words then Some L_memory
  else None

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

(* [Unix.gettimeofday] can step backwards (NTP adjustments, manual clock
   changes); clamping every reading to the running maximum makes the
   sequence monotone, which is all a deadline check needs. *)
let last_reading = ref 0.

let now_ms () =
  let raw = Unix.gettimeofday () *. 1000. in
  if raw > !last_reading then last_reading := raw;
  !last_reading

type stopwatch = float  (* the start reading *)

let start () : stopwatch = now_ms ()
let elapsed_ms (s : stopwatch) = now_ms () -. s

let pp ppf t =
  let field name pp_v ppf = function
    | None -> Fmt.pf ppf "%s=∞" name
    | Some v -> Fmt.pf ppf "%s=%a" name pp_v v
  in
  Fmt.pf ppf "{%a %a %a %a}"
    (field "iters" Fmt.int) t.max_iters
    (field "nodes" Fmt.int) t.max_nodes
    (field "time_ms" Fmt.float) t.max_time_ms
    (field "mem_words" Fmt.int) t.max_memory_words
