(** Structured diagnostics for static analysis of Egglog programs.

    A diagnostic carries a severity, a stable slug code (what a CI filter
    or a test keys on), a human-readable message and — when the program
    came from source text — the span of the offending s-expression. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable kebab-case slug, e.g. ["unknown-function"] *)
  message : string;
  span : Sexp.span option;
  file : string option;
}

let make ?file ?span severity code message = { severity; code; message; span; file }
let error ?file ?span code fmt = Fmt.kstr (make ?file ?span Error code) fmt
let warning ?file ?span code fmt = Fmt.kstr (make ?file ?span Warning code) fmt

let is_error d = d.severity = Error
let has_errors diags = List.exists is_error diags
let count_errors diags = List.length (List.filter is_error diags)
let count_warnings diags = List.length (List.filter (fun d -> d.severity = Warning) diags)

(* Diagnostics are plain data, so structural equality is meaningful; a
   birewrite checks both directions and can produce the same diagnostic
   twice, hence the dedup. *)
let dedup diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    diags

let severity_string = function Error -> "error" | Warning -> "warning"

let pp ppf d =
  (match d.file with Some f -> Fmt.pf ppf "%s:" f | None -> ());
  (match d.span with
  | Some sp when not (Sexp.is_dummy_span sp) -> Fmt.pf ppf "%a: " Sexp.pp_span sp
  | _ -> if d.file <> None then Fmt.pf ppf " ");
  Fmt.pf ppf "%s[%s]: %s" (severity_string d.severity) d.code d.message

let to_string d = Fmt.str "%a" pp d

(** Print every diagnostic, one per line, to [ppf]. *)
let pp_list ppf diags = List.iter (fun d -> Fmt.pf ppf "%a@." pp d) diags
