(** Extraction: finding the lowest-cost term of an e-class.

    The cost of an e-node [(f a1 ... an)] is

    {v node_cost(f, args) + sum of the costs of every e-class referenced by
       the arguments (including e-classes nested inside vector values) v}

    where [node_cost] is the [unstable-cost] override for that exact e-node
    if one was set (the paper's §6.2 variable cost models), otherwise the
    [:cost] of the constructor, otherwise 1.  Primitive leaf values cost 0.
    Like egg/egglog, shared sub-DAGs are counted once per reference (tree
    cost), which is the standard extraction approximation.

    Costs per class are computed by a fixpoint iteration from ⊤ (infinite);
    e-classes with no finite derivation (purely cyclic) keep infinite cost,
    and extracting them is an error.

    Every extracted constructor term records the e-class it was extracted
    from ([t_class]); terms are memoized per class, so shared sub-terms are
    physically shared — DialEgg's de-eggifier uses both properties to
    rebuild SSA sharing and region structure. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(** An extracted term.  Vectors are flattened into [T_vec] nodes so that no
    raw e-class ids remain anywhere in the result. *)
type term = { t_kind : kind; t_class : int option }

and kind =
  | Node of Symbol.t * term list  (** constructor application *)
  | Prim of Value.t  (** primitive leaf (never contains an e-class) *)
  | T_vec of term list  (** extracted vector value *)

let node ?cls sym args = { t_kind = Node (sym, args); t_class = cls }
let prim v = { t_kind = Prim v; t_class = None }
let t_vec ts = { t_kind = T_vec ts; t_class = None }

let rec pp_term ppf t =
  match t.t_kind with
  | Node (sym, []) -> Fmt.pf ppf "(%a)" Symbol.pp sym
  | Node (sym, args) ->
    Fmt.pf ppf "(@[<hov>%a@ %a@])" Symbol.pp sym (Fmt.list ~sep:Fmt.sp pp_term) args
  | Prim (Str s) -> Fmt.pf ppf "\"%s\"" (Sexp.escape_string s)
  | Prim (I64 n) -> Fmt.pf ppf "%Ld" n
  | Prim (F64 f) ->
    let s = Printf.sprintf "%.17g" f in
    let s =
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
      else s ^ ".0"
    in
    Fmt.string ppf s
  | Prim v -> Value.pp ppf v
  | T_vec elems -> Fmt.pf ppf "(@[<hov>vec-of@ %a@])" (Fmt.list ~sep:Fmt.sp pp_term) elems

let term_to_string t = Fmt.str "%a" pp_term t

let rec term_equal a b =
  match (a.t_kind, b.t_kind) with
  | Node (s1, a1), Node (s2, a2) ->
    Symbol.equal s1 s2 && List.length a1 = List.length a2 && List.for_all2 term_equal a1 a2
  | Prim v1, Prim v2 -> Value.equal v1 v2
  | T_vec a1, T_vec a2 -> List.length a1 = List.length a2 && List.for_all2 term_equal a1 a2
  | _ -> false

(** Total order on terms by structure only — symbol names and primitive
    payloads, never e-class ids — so it agrees across storage engines that
    number classes differently.  [Prim] leaves never contain e-classes, so
    polymorphic compare is safe there. *)
let rec term_compare a b =
  match (a.t_kind, b.t_kind) with
  | Prim v1, Prim v2 -> Stdlib.compare v1 v2
  | Prim _, _ -> -1
  | _, Prim _ -> 1
  | Node (s1, a1), Node (s2, a2) ->
    let c = String.compare (Symbol.name s1) (Symbol.name s2) in
    if c <> 0 then c else term_list_compare a1 a2
  | Node _, _ -> -1
  | _, Node _ -> 1
  | T_vec a1, T_vec a2 -> term_list_compare a1 a2

and term_list_compare l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
    let c = term_compare x y in
    if c <> 0 then c else term_list_compare xs ys

(** Head symbol name of a constructor term. *)
let head t = match t.t_kind with Node (sym, _) -> Some (Symbol.name sym) | _ -> None

let children t =
  match t.t_kind with Node (_, args) -> args | T_vec args -> args | Prim _ -> []

(* ------------------------------------------------------------------ *)
(* Cost computation                                                    *)
(* ------------------------------------------------------------------ *)

let infinity_cost = max_int / 4

type t = {
  eg : Egraph.t;
  class_cost : (int, int) Hashtbl.t;  (** canonical class id -> best known cost *)
  memo : (int, term) Hashtbl.t;  (** canonical class id -> extracted term *)
  chosen : (int, int) Hashtbl.t;
      (** canonical class id -> base cost of the e-node extraction picked
          (with any unstable-cost override applied); feeds {!dag_cost} *)
  extracting : (int, unit) Hashtbl.t;
      (** classes currently being extracted — guards the tie-break against
          zero-cost self-referencing candidates *)
}

let class_cost st cls =
  match Hashtbl.find_opt st.class_cost (Egraph.find_class st.eg cls) with
  | Some c -> c
  | None -> infinity_cost

(** Sum of costs of every e-class referenced inside [v]. *)
let rec value_cost st (v : Value.t) =
  match v with
  | Eclass id -> class_cost st id
  | Vec elems ->
    Array.fold_left (fun acc e -> min infinity_cost (acc + value_cost st e)) 0 elems
  | _ -> 0

let node_base_cost st (f : Egraph.func) args =
  match Egraph.cost_override st.eg f args with
  | Some c -> c
  | None -> Option.value f.cost ~default:1

let node_cost st (f : Egraph.func) args =
  let base = node_base_cost st f args in
  let children = Array.fold_left (fun acc v -> acc + value_cost st v) 0 args in
  min infinity_cost (base + children)

(** Build an extractor: computes the best cost of every e-class by fixpoint
    iteration over all constructor tables.  The e-graph must be rebuilt. *)
let make eg : t =
  let st =
    {
      eg;
      class_cost = Hashtbl.create 64;
      memo = Hashtbl.create 64;
      chosen = Hashtbl.create 64;
      extracting = Hashtbl.create 16;
    }
  in
  let funcs =
    List.filter
      (fun (f : Egraph.func) -> Egraph.is_constructor f && not f.unextractable)
      (Egraph.functions eg)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Egraph.func) ->
        Egraph.iter_rows eg f (fun args out ->
            match out with
            | Eclass cls ->
              let cls = Egraph.find_class eg cls in
              let c = node_cost st f args in
              if c < class_cost st cls then begin
                Hashtbl.replace st.class_cost cls c;
                changed := true
              end
            | _ -> ()))
      funcs
  done;
  st

(* ------------------------------------------------------------------ *)
(* Term extraction                                                     *)
(* ------------------------------------------------------------------ *)

(** Extract the lowest-cost term of e-class [cls].  Memoized per class, so
    shared sub-terms are physically shared. *)
let rec extract_class st cls : term =
  let cls = Egraph.find_class st.eg cls in
  match Hashtbl.find_opt st.memo cls with
  | Some t -> t
  | None ->
    if Hashtbl.mem st.extracting cls then
      error "e-class %d is cyclic through zero-cost e-nodes" cls;
    if class_cost st cls >= infinity_cost then
      error "e-class %d has no finite-cost term (cyclic with no base case)" cls;
    Hashtbl.replace st.extracting cls ();
    (* Collect every minimal-cost candidate with its function's declaration
       index.  Keeping just the first winner would make the choice depend on
       row iteration order, which differs between storage engines. *)
    let best_cost = ref infinity_cost in
    let cands = ref [] in
    List.iteri
      (fun fi (f : Egraph.func) ->
        if Egraph.is_constructor f && not f.unextractable then
          List.iter
            (fun (args, _) ->
              let c = node_cost st f args in
              if c < !best_cost then begin
                best_cost := c;
                cands := [ (fi, f, args) ]
              end
              else if c = !best_cost then cands := (fi, f, args) :: !cands)
            (Egraph.rows_with_output st.eg f cls))
      (Egraph.functions st.eg);
    let f, args, sub =
      match !cands with
      | [] -> error "e-class %d has no e-nodes to extract" cls
      | [ (_, f, args) ] ->
        (f, args, Array.to_list args |> List.map (extract_value st))
      | cands ->
        (* Deterministic tie-break: declaration order of the head function,
           then the extracted argument terms compared structurally.  Both
           keys are independent of e-class numbering and row order, so every
           engine extracts the same bytes.  Candidates whose extraction
           cycles back into this class are discarded. *)
        let keyed =
          List.filter_map
            (fun (fi, (f : Egraph.func), args) ->
              match Array.to_list args |> List.map (extract_value st) with
              | sub -> Some ((fi, sub), (f, args, sub))
              | exception Error _ -> None)
            cands
        in
        let best =
          List.fold_left
            (fun acc ((key, _) as cand) ->
              match acc with
              | Some ((bkey, _) : (int * term list) * _)
                when compare_keys bkey key <= 0 ->
                acc
              | _ -> Some cand)
            None keyed
        in
        (match best with
        | Some (_, chosen) -> chosen
        | None -> error "e-class %d has no acyclic minimal e-node" cls)
    in
    Hashtbl.remove st.extracting cls;
    Hashtbl.replace st.chosen cls (node_base_cost st f args);
    let term = node ~cls f.Egraph.sym sub in
    Hashtbl.replace st.memo cls term;
    term

and compare_keys (fi1, sub1) (fi2, sub2) =
  let c = Int.compare fi1 fi2 in
  if c <> 0 then c else term_list_compare sub1 sub2

and extract_value st (v : Value.t) : term =
  match v with
  | Eclass id -> extract_class st id
  | Vec elems -> t_vec (Array.to_list elems |> List.map (extract_value st))
  | p -> prim p

(** [extract eg v] extracts the best term for value [v] (an e-class ref, a
    vector, or a primitive).  Returns the term and its cost. *)
let extract eg (v : Value.t) : term * int =
  let st = make eg in
  let v = Egraph.canon eg v in
  (extract_value st v, value_cost st v)

(** Cost of the best term in [v]'s class without building the term. *)
let best_cost eg (v : Value.t) : int =
  let st = make eg in
  value_cost st (Egraph.canon eg v)

(** [variants st cls n] extracts up to [n] distinct terms of class [cls],
    cheapest first: one per e-node of the class, ordered by cost (children
    always extract optimally; only the root node varies — egglog's
    [extract :variants] behaves the same way). *)
let variants (st : t) cls n : (term * int) list =
  let cls = Egraph.find_class st.eg cls in
  let candidates =
    List.concat
      (List.mapi
         (fun fi (f : Egraph.func) ->
           if Egraph.is_constructor f && not f.unextractable then
             List.filter_map
               (fun (args, _) ->
                 let c = node_cost st f args in
                 if c >= infinity_cost then None
                 else
                   match Array.to_list args |> List.map (extract_value st) with
                   | sub -> Some (c, fi, f, args, sub)
                   | exception Error _ -> None)
               (Egraph.rows_with_output st.eg f cls)
           else [])
         (Egraph.functions st.eg))
  in
  (* cheapest first; ties broken like {!extract_class}, so the listing is
     identical whichever storage engine produced the rows *)
  let sorted =
    List.sort
      (fun (c1, fi1, _, _, s1) (c2, fi2, _, _, s2) ->
        let c = Int.compare c1 c2 in
        if c <> 0 then c
        else
          let c = Int.compare fi1 fi2 in
          if c <> 0 then c else term_list_compare s1 s2)
      candidates
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (c, _, f, _, sub) :: rest ->
      (node ~cls f.Egraph.sym sub, c) :: take (k - 1) rest
  in
  take n sorted

(** DAG cost of an extracted term: every distinct e-class is counted once,
    unlike the tree cost, which recounts shared sub-terms at every use.
    This is what the program actually costs once it is in SSA form.  Only
    meaningful for terms produced by [st]'s own extraction. *)
let dag_cost (st : t) (root : term) : int =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  let rec go t =
    match t.t_class with
    | Some cls when Hashtbl.mem seen cls -> ()
    | cls_opt ->
      (match cls_opt with
      | Some cls ->
        Hashtbl.replace seen cls ();
        total := !total + Option.value ~default:1 (Hashtbl.find_opt st.chosen cls)
      | None -> ());
      List.iter go (children t)
  in
  go root;
  !total

(** Expose the per-class best cost (infinite classes return a large value). *)
let cost_of_class (st : t) cls = class_cost st cls
