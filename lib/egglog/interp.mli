(** The Egglog command interpreter: executes programs against an e-graph.

    This is the engine façade used by DialEgg and the CLI: feed it commands
    (parsed from [.egg] text or built programmatically), then inspect
    extraction results and saturation statistics. *)

exception Error of string

(** Actions compiled against a packed-match slot layout (opaque): the
    arena engine's fast apply path, with no per-match name lookups. *)
type capply

type rule = {
  r_name : string;
  r_facts : Ast.fact list;
  r_actions : Ast.action list;
  r_ruleset : string option;  (** [None] = the default ruleset *)
  r_refs : Symbol.t list;  (** function tables the premises read *)
  r_plan : Matcher.plan;  (** compiled premises for seminaive matching *)
  mutable r_gplan : Matcher.gplan option option;
      (** generic-join compilation of [r_plan], resolved lazily at first
          search ([None] = not yet attempted; [Some None] = env-list
          fallback) *)
  mutable r_capply : capply option option;
      (** slot-compiled actions for the packed apply path, resolved lazily
          with [r_gplan] ([Some None] = action shape needs the env
          interpreter) *)
  mutable r_last_scan : int;
      (** e-graph clock at the last match scan; seminaive matching scans
          only rows stamped after this, and rules none of whose referenced
          tables changed since are skipped outright *)
  mutable r_times_banned : int;
  mutable r_banned_until : int;
      (** backoff scheduler: skipped while [iteration < r_banned_until] *)
  mutable r_n_searches : int;
  mutable r_n_matches : int;
  mutable r_n_applied : int;
  mutable r_n_bans : int;
  mutable r_search_time : float;
  mutable r_apply_time : float;
}

(** Immutable snapshot of one rule's lifetime saturation statistics. *)
type rule_stat = {
  rs_name : string;
  rs_ruleset : string option;
  rs_searches : int;  (** iterations in which the rule actually searched *)
  rs_matches : int;  (** matches found, including ban-discarded ones *)
  rs_applied : int;  (** matches whose actions ran *)
  rs_bans : int;  (** times the backoff scheduler banned the rule *)
  rs_search_time : float;  (** seconds e-matching *)
  rs_apply_time : float;  (** seconds running actions *)
}

(** Why a [(run n)] stopped.  [Fault] carries the structured diagnostic of
    an exception captured mid-saturation (rule panic, merge conflict,
    primitive error): the run stops, the e-graph is re-canonicalized, and
    whatever it contains — at minimum the original program — remains
    extractable. *)
type stop_reason =
  | Saturated
  | Iteration_limit
  | Node_limit
  | Timeout
  | Memory_limit
  | Fault of Diag.t

val pp_stop_reason : Format.formatter -> stop_reason -> unit

(** True saturation: the run reached a fixpoint rather than a budget. *)
val stopped_saturated : stop_reason -> bool

(** Did the run stop on a resource budget (as opposed to saturating or
    faulting)? *)
val stopped_on_limit : stop_reason -> bool

type run_stats = {
  mutable iterations : int;
  mutable matches : int;  (** total rule matches applied *)
  mutable sat_time : float;  (** seconds spent saturating *)
  mutable search_time : float;  (** seconds in rule search (e-matching) *)
  mutable apply_time : float;  (** seconds applying rule actions *)
  mutable rebuild_time : float;
      (** seconds restoring congruence (deferred rebuild batches) *)
  mutable stop : stop_reason;
  mutable peak_nodes : int;  (** largest e-graph size seen during the run *)
}

type output =
  | O_extracted of Extract.term * int  (** term and its tree cost *)
  | O_variants of (Extract.term * int) list  (** cheapest-first variants *)
  | O_checked
  | O_ran of run_stats
  | O_msg of string

type t

(** Testing/ablation hook: force every rule to rescan each iteration
    instead of dirty-table skipping. *)
val set_disable_dirty_skip : t -> bool -> unit

(** Fall back to full (naive) re-matching instead of seminaive deltas.
    Observationally identical, asymptotically slower — for ablation and
    the [--naive-matching] CLI escape hatch. *)
val set_naive_matching : t -> bool -> unit

(** Search-phase parallelism: partition due rules across [n] OCaml domains
    per iteration (default 1 = sequential).  Matches are merged back in
    registration order and applied sequentially, so results and statistics
    are independent of [n]. *)
val set_jobs : t -> int -> unit

val jobs : t -> int

(** Storage engine of the underlying e-graph. *)
val engine : t -> Egraph.engine

(** Enable/disable the backoff rule scheduler (default: enabled).  When
    disabled every due rule fires every iteration and saturation detection
    never waits on bans. *)
val set_backoff : t -> bool -> unit

(** Scheduler: base per-rule match budget (default 1000); a rule finding
    more than [budget << times_banned] matches in one search is banned and
    its matches discarded. *)
val set_match_limit : t -> int -> unit

(** Scheduler: base ban duration in iterations (default 5); doubles with
    each repeated offence. *)
val set_ban_length : t -> int -> unit

(** Per-rule lifetime saturation statistics, in registration order. *)
val rule_stats : t -> rule_stat list

(** Fresh engine.  [limits] sets the full resource budget; the legacy
    [max_nodes] (default 200k) and [timeout] (seconds) are shorthands for
    a node-and-time-only budget and are ignored when [limits] is given.
    [engine] picks the e-graph storage backend (default [Arena]); [jobs]
    the search-phase parallelism (default 1). *)
val create :
  ?max_nodes:int ->
  ?timeout:float ->
  ?limits:Limits.t ->
  ?engine:Egraph.engine ->
  ?jobs:int ->
  unit ->
  t

(** Replace the engine's resource budgets (applies to subsequent runs). *)
val set_limits : t -> Limits.t -> unit

val limits : t -> Limits.t

(** {1 Anytime checkpoints} *)

(** The best extraction of the checkpoint root seen so far, recorded
    periodically during saturation so a limit or fault still yields a
    result. *)
type checkpoint = { ck_term : Extract.term; ck_cost : int; ck_iteration : int }

(** Track [root]'s best extraction with a checkpoint every [every]
    (default 4) successful iterations, plus one immediately and one when a
    run stops (for any reason).  Checkpointing never raises. *)
val set_checkpoint_root : ?every:int -> t -> Value.t -> unit

(** Best checkpoint so far (lowest cost), if any was taken. *)
val best_checkpoint : t -> checkpoint option

val egraph : t -> Egraph.t
val globals : t -> (string, Value.t) Hashtbl.t

(** Value of a global let-binding.  @raise Error if unknown. *)
val global : t -> string -> Value.t

val global_opt : t -> string -> Value.t option

(** Evaluate an expression in action position (may create e-nodes). *)
val eval : t -> Matcher.env -> Ast.expr -> Value.t

(** Execute one action; returns the (possibly extended) environment. *)
val run_action : t -> Matcher.env -> Ast.action -> Matcher.env

(** Register a rule programmatically. *)
val add_rule :
  t -> ?name:string -> ?ruleset:string -> Ast.fact list -> Ast.action list -> unit

(** Saturate: repeat match-apply-rebuild until fixpoint or a budget.
    With [?ruleset], only that ruleset's rules run (default: the rules
    registered without a ruleset). *)
val run : ?ruleset:string -> t -> int -> run_stats

(** Execute one command. *)
val run_command : t -> Ast.command -> unit

val run_commands : t -> Ast.command list -> unit

(** Parse and execute Egglog source text. *)
val run_string : t -> string -> unit

(** Outputs in execution order. *)
val outputs : t -> output list

(** The most recent extraction, if any. *)
val last_extracted : t -> (Extract.term * int) option

(** The most recent saturation statistics, if any. *)
val last_stats : t -> run_stats option

(** Parse and run a complete program in a fresh engine. *)
val run_program : ?max_nodes:int -> ?timeout:float -> string -> t * output list
