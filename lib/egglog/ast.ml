(** Abstract syntax of the Egglog command language (the subset used by the
    DialEgg paper, plus a few conveniences).

    Supported commands:
    {ul
    {- [(sort S)] and [(sort S (Vec T))] — declare sorts;}
    {- [(datatype S variants...)] — sort plus constructors, each with an
       optional [:cost];}
    {- [(function f (args...) ret :cost n :merge e)] — functions;}
    {- [(relation r (args...))] — function returning [unit];}
    {- [(let x e)] — global binding;}
    {- [(rewrite lhs rhs :when (facts...))] and [(birewrite ...)];}
    {- [(rule (facts...) (actions...))];}
    {- [(union a b)], [(set (f args) v)], [(unstable-cost e c)], [(delete (f args))] — actions,
       also usable at top level;}
    {- [(ruleset name)] — declare a ruleset; rules join one with
       [:ruleset]; [(run n name)] runs only that ruleset;}
    {- [(run n)] — run the default ruleset for at most [n] iterations;}
    {- [(extract e)] — extract the lowest-cost term of [e]'s class;}
    {- [(check facts...)] — assert that facts are satisfiable;}
    {- [(push)] / [(pop)] — snapshot / restore the entire engine state.}} *)

type lit =
  | L_i64 of int64
  | L_f64 of float
  | L_string of string
  | L_bool of bool
  | L_unit

type expr =
  | Var of string  (** [?x] pattern variable, or a let-bound name in expression position *)
  | Wildcard  (** [?] or [_]: matches anything, binds nothing *)
  | Lit of lit
  | Call of string * expr list  (** constructor, table or primitive application *)

type fact =
  | F_eq of expr list  (** [(= e1 e2 ...)]: all exprs evaluate/match to the same value *)
  | F_expr of expr  (** pattern to match, or boolean guard *)

type action =
  | A_let of string * expr  (** rule-local binding *)
  | A_union of expr * expr
  | A_set of expr * expr  (** [(set (f args) value)] *)
  | A_expr of expr  (** evaluate for effect: inserts terms into the e-graph *)
  | A_cost of expr * expr  (** [(unstable-cost enode cost)] — the paper's extension *)
  | A_delete of expr  (** [(delete (f args))] *)
  | A_panic of string

type variant = { v_name : string; v_args : string list; v_cost : int option }

type func_decl = {
  f_name : string;
  f_args : string list;  (** argument sort names *)
  f_ret : string;  (** return sort name *)
  f_cost : int option;  (** extraction cost of this constructor *)
  f_merge : expr option;  (** merge expression using [old] and [new] *)
  f_unextractable : bool;
}

type command =
  | C_sort of string * (string * string list) option
      (** [(sort S)] or [(sort S (Container args))] *)
  | C_datatype of string * variant list
  | C_function of func_decl
  | C_relation of string * string list
  | C_let of string * expr
  | C_ruleset of string  (** declare a named ruleset *)
  | C_rewrite of {
      lhs : expr;
      rhs : expr;
      conds : fact list;
      bidirectional : bool;
      ruleset : string option;
    }
  | C_rule of {
      name : string option;
      facts : fact list;
      actions : action list;
      ruleset : string option;
    }
  | C_action of action
  | C_run of int * string option  (** iteration limit, optional ruleset *)
  | C_extract of expr * int  (** expression, number of variants (normally 1) *)
  | C_check of fact list
  | C_print_function of string * int
  | C_print_stats
  | C_push
  | C_pop

(* ------------------------------------------------------------------ *)
(* Pretty-printing back to concrete syntax                             *)
(* ------------------------------------------------------------------ *)

let rec sexp_of_expr (e : expr) : Sexp.t =
  match e with
  | Var x -> Atom x (* pattern variables carry their '?' prefix in the name *)
  | Wildcard -> Atom "_"
  | Lit (L_i64 n) -> Atom (Int64.to_string n)
  | Lit (L_f64 f) ->
    (* print floats so they read back as floats *)
    let s = Printf.sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".0" in
    Atom s
  | Lit (L_string s) -> Str s
  | Lit (L_bool b) -> Atom (if b then "true" else "false")
  | Lit L_unit -> List []
  | Call (f, args) -> List (Atom f :: List.map sexp_of_expr args)

let sexp_of_fact = function
  | F_eq exprs -> Sexp.List (Atom "=" :: List.map sexp_of_expr exprs)
  | F_expr e -> sexp_of_expr e

let sexp_of_action = function
  | A_let (x, e) -> Sexp.List [ Atom "let"; Atom x; sexp_of_expr e ]
  | A_union (a, b) -> Sexp.List [ Atom "union"; sexp_of_expr a; sexp_of_expr b ]
  | A_set (lhs, v) -> Sexp.List [ Atom "set"; sexp_of_expr lhs; sexp_of_expr v ]
  | A_expr e -> sexp_of_expr e
  | A_cost (e, c) -> Sexp.List [ Atom "unstable-cost"; sexp_of_expr e; sexp_of_expr c ]
  | A_delete e -> Sexp.List [ Atom "delete"; sexp_of_expr e ]
  | A_panic msg -> Sexp.List [ Atom "panic"; Str msg ]

let sexp_of_command (c : command) : Sexp.t =
  let atom a = Sexp.Atom a in
  let sorts l = List.map atom l in
  match c with
  | C_sort (name, None) -> List [ atom "sort"; atom name ]
  | C_sort (name, Some (container, args)) ->
    List [ atom "sort"; atom name; List (atom container :: sorts args) ]
  | C_datatype (name, variants) ->
    let variant v =
      match (v.v_args, v.v_cost) with
      | [], None -> atom v.v_name
      | args, cost ->
        let c = match cost with None -> [] | Some n -> [ atom ":cost"; atom (string_of_int n) ] in
        Sexp.List ((atom v.v_name :: sorts args) @ c)
    in
    List (atom "datatype" :: atom name :: List.map variant variants)
  | C_function d ->
    let opts =
      (match d.f_cost with None -> [] | Some n -> [ atom ":cost"; atom (string_of_int n) ])
      @ (match d.f_merge with None -> [] | Some e -> [ atom ":merge"; sexp_of_expr e ])
      @ if d.f_unextractable then [ atom ":unextractable"; List [] ] else []
    in
    List ([ atom "function"; atom d.f_name; Sexp.List (sorts d.f_args); atom d.f_ret ] @ opts)
  | C_relation (name, args) -> List [ atom "relation"; atom name; List (sorts args) ]
  | C_let (x, e) -> List [ atom "let"; atom x; sexp_of_expr e ]
  | C_ruleset name -> List [ atom "ruleset"; atom name ]
  | C_rewrite { lhs; rhs; conds; bidirectional; ruleset } ->
    let head = if bidirectional then "birewrite" else "rewrite" in
    let opts =
      (match conds with [] -> [] | _ -> [ atom ":when"; Sexp.List (List.map sexp_of_fact conds) ])
      @ match ruleset with None -> [] | Some r -> [ atom ":ruleset"; atom r ]
    in
    List ([ atom head; sexp_of_expr lhs; sexp_of_expr rhs ] @ opts)
  | C_rule { name; facts; actions; ruleset } ->
    let opts =
      (match name with None -> [] | Some n -> [ atom ":name"; Sexp.Str n ])
      @ match ruleset with None -> [] | Some r -> [ atom ":ruleset"; atom r ]
    in
    List
      ([ atom "rule"; Sexp.List (List.map sexp_of_fact facts);
         Sexp.List (List.map sexp_of_action actions) ]
      @ opts)
  | C_action a -> sexp_of_action a
  | C_run (n, None) when n = max_int -> List [ atom "run" ]
  | C_run (n, None) -> List [ atom "run"; atom (string_of_int n) ]
  | C_run (n, Some r) -> List [ atom "run"; atom r; atom (string_of_int n) ]
  | C_extract (e, variants) ->
    let v = if variants = 1 then [] else [ atom ":variants"; atom (string_of_int variants) ] in
    List ([ atom "extract"; sexp_of_expr e ] @ v)
  | C_check facts -> List (atom "check" :: List.map sexp_of_fact facts)
  | C_print_function (name, n) ->
    List [ atom "print-function"; atom name; atom (string_of_int n) ]
  | C_print_stats -> List [ atom "print-stats" ]
  | C_push -> List [ atom "push" ]
  | C_pop -> List [ atom "pop" ]

let pp_expr ppf e = Sexp.pp ppf (sexp_of_expr e)
let pp_fact ppf f = Sexp.pp ppf (sexp_of_fact f)
let pp_action ppf a = Sexp.pp ppf (sexp_of_action a)

(** Free pattern variables of an expression, left to right, without dups. *)
let expr_vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Var x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        acc := x :: !acc
      end
    | Wildcard | Lit _ -> ()
    | Call (_, args) -> List.iter go args
  in
  go e;
  List.rev !acc
