(** The e-graph, represented as a functional database (the Egglog model).

    Every Egglog function — including datatype constructors — is a {e table}
    mapping a tuple of argument values to one output value.  Constructors
    are tables whose output sort is an equivalence sort: a lookup miss
    allocates a fresh e-class, making the table a hash-cons.  An e-node is
    a table row; congruence closure is table re-canonicalization
    ({!rebuild}) after unions.

    Two storage {!engine}s implement the table contract: [Legacy] (boxed
    hashtables + a separate journal) and [Arena] (flat int arrays of codes,
    appended in stamp order — see {!Arena}).  [Arena] is the default. *)

exception Error of string

(** Sorts: built-in primitives, user equivalence sorts, and vector
    containers. *)
type sort_kind =
  | S_i64
  | S_f64
  | S_string
  | S_bool
  | S_unit
  | S_eq of string  (** user-declared equivalence sort *)
  | S_vec of string  (** vector container; payload is the element sort name *)

val pp_sort_kind : Format.formatter -> sort_kind -> unit

(** Row storage backend. *)
type engine = Legacy | Arena

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

type row = { mutable out : Value.t; mutable stamp : int }

type log_entry = { le_args : Value.t array; le_row : row; le_stamp : int }

(** Row storage: boxed hashtable + journal, or a flat arena. *)
type store = S_hash of row Value.Args_tbl.t | S_arena of Arena.table

(** A function table.  [cost] and [unextractable] drive extraction;
    [merge] reconciles conflicting primitive outputs for one key. *)
type func = private {
  sym : Symbol.t;
  arg_sorts : sort_kind array;
  ret_sort : sort_kind;
  cost : int option;
  unextractable : bool;
  merge : (Value.t -> Value.t -> Value.t) option;
  mutable store : store;
  mutable last_modified : int;
      (** stamp of the last change to this table (insert, output change,
          delete, canonicalization) — drives dirty-table rule skipping and
          matcher index invalidation *)
  mutable log : log_entry array;
      (** legacy journal of insertions and rewrites in stamp order;
          {!iter_rows_since} scans its suffix for seminaive deltas.  Arena
          tables are their own journal and leave this empty. *)
  mutable log_len : int;
}

(** Is the function's output an equivalence sort (i.e. is it a
    constructor)? *)
val is_constructor : func -> bool

(** The arena table behind [f], when the arena engine is in use. *)
val arena_of : func -> Arena.table option

type t = {
  engine : engine;
  uf : Union_find.t;
  pool : Arena.pool;
  funcs : func Symbol.Tbl.t;
  mutable func_order : Symbol.t list;
  sorts : (string, sort_kind) Hashtbl.t;
  costs : (int * Value.t) Value.Args_tbl.t Symbol.Tbl.t;
  mutable clock : int;
  mutable n_unions : int;
  mutable immediate_rebuild : bool;
      (** ablation flag: rebuild after every union instead of deferring *)
  mutable pending_unions : bool;
      (** a union happened since the last {!rebuild}; when false the tables
          are canonical and rebuild is O(1) *)
  mutable n_rows_cache : int;
      (** exact live row count, maintained incrementally — {!n_nodes} *)
}

(** [create ?engine ()] makes an empty e-graph.  Default engine: [Arena]. *)
val create : ?engine:engine -> unit -> t

val engine : t -> engine
val pool : t -> Arena.pool
val uf : t -> Union_find.t

(** Monotonic change counter; equal clocks mean "nothing changed". *)
val clock : t -> int

(** {1 Declarations} *)

val find_sort : t -> string -> sort_kind
val sort_declared : t -> string -> bool
val declare_sort : t -> string -> unit

(** [(sort name (Vec elem))] *)
val declare_vec_sort : t -> string -> string -> unit

val declare_function :
  t ->
  name:string ->
  args:string list ->
  ret:string ->
  cost:int option ->
  merge:(Value.t -> Value.t -> Value.t) option ->
  unextractable:bool ->
  func

val find_func : t -> Symbol.t -> func
val find_func_opt : t -> Symbol.t -> func option
val has_func : t -> string -> bool

(** All declared functions, in declaration order. *)
val functions : t -> func list

(** {1 Core operations} *)

(** Canonicalize a value against the current union-find. *)
val canon : t -> Value.t -> Value.t

val canon_args : t -> Value.t array -> Value.t array
val find_class : t -> int -> int

(** Allocate a fresh, empty e-class. *)
val fresh_class : t -> int

(** Output for the given key, if the row exists. *)
val lookup : t -> func -> Value.t array -> Value.t option

(** {!lookup} plus the row's stamp (when it was inserted or last
    rewritten) — used by seminaive delta checks. *)
val lookup_row : t -> func -> Value.t array -> (Value.t * int) option

(** Constructor/table application: look up; on a miss, constructors
    allocate a fresh class, relations assert the fact, other functions
    return [None]. *)
val apply : t -> func -> Value.t array -> Value.t option

(** [(set (f args) out)]: insert or merge a row. *)
val set : t -> func -> Value.t array -> Value.t -> unit

(** Remove a row if present. *)
val delete : t -> func -> Value.t array -> unit

(** Assert two e-classes equal (deferred congruence). *)
val union : t -> int -> int -> unit

(** Union two values: e-class refs are merged; distinct primitives error. *)
val union_values : t -> Value.t -> Value.t -> unit

(** {2 Code-level operations (arena engine only)}

    Used by the compiled (packed) apply path: arguments and results are
    arena codes, so the hot path performs no [Value.t] allocation. *)

(** Canonicalize an arena code under the current union-find. *)
val canon_code : t -> int -> int

(** Does the value behind a code inhabit the sort? *)
val code_matches_sort : t -> sort_kind -> int -> bool

(** Code-level {!apply}: the key codes are canonicalized {e in place};
    returns the output code, or [-1] when the function has no defined
    output.  Raises [Invalid_argument] on a legacy store. *)
val apply_codes : t -> func -> int array -> int

(** Code-level {!set}; key canonicalized in place.  Arena store only. *)
val set_codes : t -> func -> int array -> int -> unit

(** Code-level {!union_values}. *)
val union_codes : t -> int -> int -> unit

(** Restore congruence: re-canonicalize all tables to a fixed point, then
    compact arena tables so searches only see dense live rows.  O(1) when
    no union is pending. *)
val rebuild : t -> unit

(** {1 unstable-cost overrides (paper §6.2)} *)

(** Override the extraction cost of the e-node [(f args)]; the node must
    exist.  Cheaper overrides win on conflict. *)
val set_cost : t -> func -> Value.t array -> int -> unit

(** Code-level {!set_cost}: [key]/[out] must be canonical codes of a row
    already in the table (as returned by {!apply_codes}), skipping the
    existence lookup. *)
val set_cost_codes : t -> func -> int array -> int -> int -> unit

val cost_override : t -> func -> Value.t array -> int option

(** {1 Statistics and iteration} *)

(** Number of rows (e-nodes) across all tables.  O(1): maintained
    incrementally, since the limits gauge polls it every iteration. *)
val n_nodes : t -> int

(** Recount rows by walking the tables (test-only consistency check
    against {!n_nodes}). *)
val recount_nodes : t -> int

val n_classes : t -> int

(** Approximate footprint in words (tables + journals + cost overrides +
    union-find + value pool) — the gauge for {!Limits} memory budgets.
    An estimate, not an accounting: proportional to e-graph size, cheap to
    compute. *)
val approx_memory_words : t -> int

(** Iterate rows as (canonical args, canonical output).  When the graph is
    clean (no pending unions) rows are served as stored, with no per-row
    canonicalization or copying. *)
val iter_rows : t -> func -> (Value.t array -> Value.t -> unit) -> unit

(** {!iter_rows} plus each row's stamp. *)
val iter_rows_stamped :
  t -> func -> (Value.t array -> Value.t -> int -> unit) -> unit

val fold_rows : t -> func -> 'a -> ('a -> Value.t array -> Value.t -> 'a) -> 'a

(** Iterate only the rows inserted or rewritten strictly after stamp
    [since], as (canonical args, canonical output, stamp).  Cost scales
    with the delta, not the table. *)
val iter_rows_since :
  t -> func -> since:int -> (Value.t array -> Value.t -> int -> unit) -> unit

(** Rows of [f] whose output is in the given class — its e-nodes built by
    [f]. *)
val rows_with_output : t -> func -> int -> (Value.t array * Value.t) list

(** Deep copy of the whole e-graph (for push/pop).  Key arrays and the
    value pool are shared with the original (neither is ever mutated in
    place), so snapshots cost O(rows), not O(rows × arity). *)
val copy : t -> t

val pp_stats : Format.formatter -> t -> unit
