(** Resource budgets for saturation (egg's [Runner] limits, §6.4 of the
    paper's NMM scalability study).

    A {!t} bundles the four budgets a production engine must honour —
    iterations, e-node (table-row) count, wall-clock time and an
    approximate memory estimate — so they can be threaded through
    {!Interp}'s saturation loop as one value and checked in one place.
    Every budget is optional; [none] never stops anything.

    Wall-clock budgets are measured against {!now_ms}, a monotonic clock:
    readings never decrease even if the system clock is stepped
    backwards, so a deadline can never un-expire mid-run. *)

type t = {
  max_iters : int option;  (** saturation iterations per [(run)] *)
  max_nodes : int option;  (** e-graph size (total table rows) *)
  max_time_ms : float option;  (** wall-clock budget, milliseconds *)
  max_memory_words : int option;
      (** approximate e-graph footprint ({!Egraph.approx_memory_words}) *)
}

(** No budgets: nothing ever stops. *)
val none : t

(** [make ()] with any subset of budgets; [max_memory_mb] is converted to
    words assuming 8-byte words. *)
val make :
  ?max_iters:int ->
  ?max_nodes:int ->
  ?max_time_ms:float ->
  ?max_memory_mb:float ->
  unit ->
  t

(** [for_attempt t ~attempt] derives the budget for retry number
    [attempt] (0 = the first try, returned unchanged): every finite
    budget is halved per retry, with floors (1 iteration, 64 nodes,
    50 ms, 1 MB) so a derived budget can still make progress.  A job
    that exhausted its budget once is retried under a tighter one, so a
    deterministic blowup fails fast into the caller's fallback instead
    of burning the full budget on every attempt. *)
val for_attempt : t -> attempt:int -> t

(** Which budget was exhausted. *)
type hit = L_iterations | L_nodes | L_time | L_memory

val hit_name : hit -> string

(** A point-in-time reading of the quantities the budgets bound. *)
type gauge = {
  g_iters : int;
  g_nodes : int;
  g_memory_words : int;
  g_elapsed_ms : float;
}

(** First exhausted budget, if any (checked in the order iterations,
    nodes, time, memory). *)
val check : t -> gauge -> hit option

(** {1 Monotonic clock} *)

(** Milliseconds since an arbitrary epoch; never decreases within the
    process, even if the system clock is stepped backwards. *)
val now_ms : unit -> float

(** A stopwatch started at {!start}. *)
type stopwatch

val start : unit -> stopwatch
val elapsed_ms : stopwatch -> float

val pp : Format.formatter -> t -> unit
