(* First-order term utilities over {!Ast.expr} patterns: structural
   equality, one-way matching, unification, anti-unification and
   alpha-equivalence.  These are the pattern-level primitives behind
   [Dialegg.Vet]'s rule-dependency, overlap and shadowing analyses; they
   treat patterns purely syntactically (no e-graph, no sorts). *)

open Ast

type binding = string * expr

(* Floats compare by bits so NaN-carrying patterns still compare equal to
   themselves, mirroring {!Constness.equal}. *)
let lit_equal (a : lit) (b : lit) =
  match (a, b) with
  | L_f64 x, L_f64 y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> a = b

let rec equal (a : expr) (b : expr) =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Wildcard, Wildcard -> true
  | Lit x, Lit y -> lit_equal x y
  | Call (f, xs), Call (g, ys) ->
    String.equal f g && List.length xs = List.length ys && List.for_all2 equal xs ys
  | _ -> false

let rec size = function
  | Var _ | Wildcard | Lit _ -> 1
  | Call (_, args) -> List.fold_left (fun n a -> n + size a) 1 args

let subterms (e : expr) : expr list =
  let acc = ref [] in
  let rec go e =
    acc := e :: !acc;
    match e with Call (_, args) -> List.iter go args | _ -> ()
  in
  go e;
  List.rev !acc

let is_subterm ~sub (e : expr) = List.exists (equal sub) (subterms e)

let rec rename ~suffix = function
  | Var x -> Var (x ^ suffix)
  | (Wildcard | Lit _) as e -> e
  | Call (f, args) -> Call (f, List.map (rename ~suffix) args)

let rec apply (bindings : binding list) (e : expr) =
  match e with
  | Var x -> ( match List.assoc_opt x bindings with Some t -> t | None -> e)
  | Wildcard | Lit _ -> e
  | Call (f, args) -> Call (f, List.map (apply bindings) args)

(* ------------------------------------------------------------------ *)
(* One-way matching                                                    *)
(* ------------------------------------------------------------------ *)

let match_pattern ~general (specific : expr) : binding list option =
  let bound : (string, expr) Hashtbl.t = Hashtbl.create 8 in
  let rec go g s =
    match (g, s) with
    | Wildcard, _ -> true
    | Var x, _ -> (
      match Hashtbl.find_opt bound x with
      | Some t -> equal t s
      | None ->
        Hashtbl.replace bound x s;
        true)
    | Lit a, Lit b -> lit_equal a b
    | Call (f, xs), Call (g', ys) ->
      String.equal f g' && List.length xs = List.length ys && List.for_all2 go xs ys
    | _ -> false
  in
  if go general specific then
    Some (Hashtbl.fold (fun k v acc -> (k, v) :: acc) bound [])
  else None

let instance_of ~general specific = match_pattern ~general specific <> None

(* ------------------------------------------------------------------ *)
(* Unification                                                         *)
(* ------------------------------------------------------------------ *)

let unifiable ?(flex = fun (_ : string) -> false) (a : expr) (b : expr) : bool =
  let subst : (string, expr) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve e =
    match e with
    | Var x -> (
      match Hashtbl.find_opt subst x with Some e' -> resolve e' | None -> e)
    | _ -> e
  in
  let rec occurs x e =
    match resolve e with
    | Var y -> String.equal x y
    | Wildcard | Lit _ -> false
    | Call (_, args) -> List.exists (occurs x) args
  in
  let rec uni a b =
    let a = resolve a and b = resolve b in
    match (a, b) with
    | Wildcard, _ | _, Wildcard -> true
    | Var x, Var y when String.equal x y -> true
    | Var x, t | t, Var x ->
      if occurs x t then false
      else begin
        Hashtbl.replace subst x t;
        true
      end
    | Lit x, Lit y -> lit_equal x y
    (* a flexible head (a computed primitive) can produce any value *)
    | Call (f, _), _ when flex f -> true
    | _, Call (g, _) when flex g -> true
    | Call (f, xs), Call (g, ys) ->
      String.equal f g && List.length xs = List.length ys && List.for_all2 uni xs ys
    | _ -> false
  in
  uni a b

(* ------------------------------------------------------------------ *)
(* Anti-unification (least general generalization)                     *)
(* ------------------------------------------------------------------ *)

let anti_unify (a : expr) (b : expr) : expr =
  (* the same disagreement pair always generalizes to the same variable,
     so [anti_unify (f x x) (f y y)] is [(f ?au1 ?au1)], not [(f ?au1 ?au2)] *)
  let tbl : (expr * expr, string) Hashtbl.t = Hashtbl.create 16 in
  let counter = ref 0 in
  let var_for key =
    match Hashtbl.find_opt tbl key with
    | Some x -> Var x
    | None ->
      incr counter;
      let x = Printf.sprintf "?au%d" !counter in
      Hashtbl.replace tbl key x;
      Var x
  in
  let rec go a b =
    if equal a b then a
    else
      match (a, b) with
      | Call (f, xs), Call (g, ys) when String.equal f g && List.length xs = List.length ys
        ->
        Call (f, List.map2 go xs ys)
      | _ -> var_for (a, b)
  in
  go a b

(* ------------------------------------------------------------------ *)
(* Alpha-equivalence                                                   *)
(* ------------------------------------------------------------------ *)

let alpha_bijection (a : expr) (b : expr) : binding list option =
  let ab : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let ba : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let rec go a b =
    match (a, b) with
    | Wildcard, Wildcard -> true
    | Var x, Var y -> (
      match (Hashtbl.find_opt ab x, Hashtbl.find_opt ba y) with
      | None, None ->
        Hashtbl.replace ab x y;
        Hashtbl.replace ba y x;
        true
      | Some y', Some x' -> String.equal y y' && String.equal x x'
      | _ -> false)
    | Lit x, Lit y -> lit_equal x y
    | Call (f, xs), Call (g, ys) ->
      String.equal f g && List.length xs = List.length ys && List.for_all2 go xs ys
    | _ -> false
  in
  if go a b then Some (Hashtbl.fold (fun x y acc -> (x, Var y) :: acc) ab []) else None

let alpha_equal a b = alpha_bijection a b <> None
