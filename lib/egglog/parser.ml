(** Parser from s-expressions to the Egglog command AST.

    Atom interpretation:
    - [?name] is a pattern variable; bare [?] or [_] is a wildcard;
    - integer-looking atoms are [i64] literals, float-looking atoms are
      [f64] literals;
    - [true] / [false] are booleans;
    - any other atom is a name: in expression position it refers to a
      let-binding (rule-local or global) and is represented as [Var] —
      the interpreter resolves it;
    - a list [(f a b ...)] is a call. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let is_int_atom s =
  s <> ""
  &&
  let i = if s.[0] = '-' || s.[0] = '+' then 1 else 0 in
  i < String.length s
  &&
  let ok = ref true in
  String.iteri (fun j c -> if j >= i && not (c >= '0' && c <= '9') then ok := false) s;
  !ok

let is_float_atom s =
  match float_of_string_opt s with
  | Some _ -> (String.contains s '.' || String.contains s 'e' || String.contains s 'E'
               || s = "inf" || s = "-inf" || s = "nan")
  | None -> false

let rec expr_of_sexp (s : Sexp.t) : Ast.expr =
  match s with
  | Str str -> Lit (L_string str)
  | Atom "_" | Atom "?" -> Wildcard
  (* note: '?'-prefixed names keep their prefix, so pattern variables can
     never collide with global let-binding names *)
  | Atom "true" -> Lit (L_bool true)
  | Atom "false" -> Lit (L_bool false)
  | Atom a when is_int_atom a -> Lit (L_i64 (Int64.of_string a))
  | Atom a when is_float_atom a -> Lit (L_f64 (float_of_string a))
  | Atom a -> Var a (* name reference; resolved against bindings at runtime *)
  | List [] -> Lit L_unit
  | List (Atom f :: args) -> Call (f, List.map expr_of_sexp args)
  | List (s :: _) -> error "head of application must be an atom, got %a" Sexp.pp s

let fact_of_sexp (s : Sexp.t) : Ast.fact =
  match s with
  | List (Atom "=" :: args) when List.length args >= 2 ->
    F_eq (List.map expr_of_sexp args)
  | _ -> F_expr (expr_of_sexp s)

let rec action_of_sexp (s : Sexp.t) : Ast.action =
  match s with
  | List [ Atom "let"; Atom x; e ] -> A_let (x, expr_of_sexp e)
  | List [ Atom "union"; a; b ] -> A_union (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "set"; lhs; v ] -> A_set (expr_of_sexp lhs, expr_of_sexp v)
  | List [ Atom "unstable-cost"; e; c ] -> A_cost (expr_of_sexp e, expr_of_sexp c)
  | List [ Atom "delete"; e ] -> A_delete (expr_of_sexp e)
  | List [ Atom "panic"; Str msg ] -> A_panic msg
  | List (Atom "seq" :: _) -> error "seq actions are not supported"
  | _ -> A_expr (expr_of_sexp s)

and actions_of_sexps l = List.map action_of_sexp l

let sort_name = function
  | Sexp.Atom a -> a
  | s -> error "expected a sort name, got %a" Sexp.pp s

(* Parse trailing keyword options like :cost 2 :when (...) *)
let rec split_options (l : Sexp.t list) : Sexp.t list * (string * Sexp.t) list =
  match l with
  | Sexp.Atom k :: v :: rest when String.length k > 0 && k.[0] = ':' ->
    let args, opts = split_options rest in
    (args, (k, v) :: opts)
  | x :: rest ->
    let args, opts = split_options rest in
    (x :: args, opts)
  | [] -> ([], [])

let opt_cost opts =
  match List.assoc_opt ":cost" opts with
  | None -> None
  | Some (Sexp.Atom a) when is_int_atom a -> Some (int_of_string a)
  | Some s -> error "invalid :cost %a" Sexp.pp s

let opt_name key opts =
  match List.assoc_opt key opts with
  | Some (Sexp.Str s) | Some (Sexp.Atom s) -> Some s
  | None -> None
  | Some s -> error "invalid %s %a" key Sexp.pp s

let variant_of_sexp (s : Sexp.t) : Ast.variant =
  match s with
  | List (Atom name :: rest) ->
    let args, opts = split_options rest in
    { v_name = name; v_args = List.map sort_name args; v_cost = opt_cost opts }
  | Atom name -> { v_name = name; v_args = []; v_cost = None }
  | _ -> error "invalid datatype variant %a" Sexp.pp s

let command_of_sexp (s : Sexp.t) : Ast.command =
  match s with
  | List [ Atom "sort"; Atom name ] -> C_sort (name, None)
  | List [ Atom "sort"; Atom name; List (Atom container :: args) ] ->
    C_sort (name, Some (container, List.map sort_name args))
  | List (Atom "datatype" :: Atom name :: variants) ->
    C_datatype (name, List.map variant_of_sexp variants)
  | List (Atom "function" :: Atom name :: List args :: ret :: rest) ->
    let (), opts =
      match split_options rest with
      | [], opts -> ((), opts)
      | extra, _ -> error "unexpected tokens in function decl: %a" Sexp.pp (List extra)
    in
    C_function
      {
        f_name = name;
        f_args = List.map sort_name args;
        f_ret = sort_name ret;
        f_cost = opt_cost opts;
        f_merge = Option.map expr_of_sexp (List.assoc_opt ":merge" opts);
        f_unextractable = List.mem_assoc ":unextractable" opts;
      }
  | List [ Atom "relation"; Atom name; List args ] ->
    C_relation (name, List.map sort_name args)
  | List [ Atom "let"; Atom x; e ] -> C_let (x, expr_of_sexp e)
  | List [ Atom "ruleset"; Atom name ] -> C_ruleset name
  | List (Atom ("rewrite" | "birewrite") :: lhs :: rhs :: rest) ->
    let bidirectional =
      match s with List (Atom "birewrite" :: _) -> true | _ -> false
    in
    let extra, opts = split_options rest in
    if extra <> [] then error "unexpected tokens in rewrite: %a" Sexp.pp (List extra);
    let conds =
      match List.assoc_opt ":when" opts with
      | None -> []
      | Some (List facts) -> List.map fact_of_sexp facts
      | Some s -> error ":when expects a list of facts, got %a" Sexp.pp s
    in
    let ruleset = opt_name ":ruleset" opts in
    C_rewrite
      { lhs = expr_of_sexp lhs; rhs = expr_of_sexp rhs; conds; bidirectional; ruleset }
  | List (Atom "rule" :: List facts :: List actions :: rest) ->
    let extra, opts = split_options rest in
    if extra <> [] then error "unexpected tokens in rule: %a" Sexp.pp (List extra);
    let name = opt_name ":name" opts in
    let ruleset = opt_name ":ruleset" opts in
    C_rule
      { name; facts = List.map fact_of_sexp facts; actions = actions_of_sexps actions; ruleset }
  | List [ Atom "run"; Atom n ] when is_int_atom n -> C_run (int_of_string n, None)
  | List [ Atom "run"; Atom rs; Atom n ] when is_int_atom n ->
    C_run (int_of_string n, Some rs)
  | List [ Atom "run"; Atom n; Atom rs ] when is_int_atom n ->
    C_run (int_of_string n, Some rs)
  | List [ Atom "run" ] -> C_run (max_int, None)
  | List [ Atom "extract"; e ] -> C_extract (expr_of_sexp e, 1)
  | List (Atom "extract" :: e :: rest) -> (
    match split_options rest with
    | [], opts -> (
      match List.assoc_opt ":variants" opts with
      | Some (Sexp.Atom n) when is_int_atom n -> C_extract (expr_of_sexp e, int_of_string n)
      | _ -> error "extract takes an expression and optional :variants n")
    | [ Sexp.Atom n ], [] when is_int_atom n -> C_extract (expr_of_sexp e, int_of_string n)
    | _ -> error "extract takes an expression and optional :variants n")
  | List (Atom "check" :: facts) -> C_check (List.map fact_of_sexp facts)
  | List [ Atom "print-function"; Atom name; Atom n ] when is_int_atom n ->
    C_print_function (name, int_of_string n)
  | List [ Atom "print-stats" ] -> C_print_stats
  | List [ Atom "push" ] -> C_push
  | List [ Atom "pop" ] -> C_pop
  | List (Atom ("union" | "set" | "unstable-cost" | "delete" | "panic") :: _) ->
    C_action (action_of_sexp s)
  | _ -> C_action (A_expr (expr_of_sexp s))

(** Parse a whole Egglog program from source text. *)
let parse_program (src : string) : Ast.command list =
  let sexps =
    try Sexp.parse_string src
    with Sexp.Parse_error { line; msg; _ } -> error "line %d: %s" line msg
  in
  List.map command_of_sexp sexps

(** Parse a whole program, pairing each command with the located
    s-expression it was read from (for diagnostics). *)
let parse_program_located (src : string) : (Ast.command * Sexp.located) list =
  let sexps =
    try Sexp.parse_string_loc src
    with Sexp.Parse_error { line; msg; _ } -> error "line %d: %s" line msg
  in
  List.map (fun loc -> (command_of_sexp (Sexp.strip loc), loc)) sexps

(** Parse a single expression from source text. *)
let parse_expr (src : string) : Ast.expr = expr_of_sexp (Sexp.parse_one src)
