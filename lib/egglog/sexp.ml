(** S-expressions: the concrete syntax of Egglog programs.

    The reader supports:
    - atoms (bare tokens),
    - double-quoted strings with backslash escapes (n, t, backslash, quote),
    - line comments starting with [;],
    - nested lists in parentheses or square brackets.

    Atoms carry no interpretation here; the Egglog parser (see {!Parser})
    decides whether an atom is a number, a variable or an identifier.

    The reader produces {!located} nodes carrying source spans (1-based
    line/column); {!strip} discards the positions to recover the plain
    {!t} representation used by the evaluator. *)

type t =
  | Atom of string
  | Str of string  (** a double-quoted string literal, unescaped *)
  | List of t list

type pos = { line : int; col : int }  (** 1-based line and column *)

type span = { sp_start : pos; sp_end : pos }

type located = { node : node; span : span }

and node =
  | N_atom of string
  | N_str of string
  | N_list of located list

exception Parse_error of { pos : int; line : int; col : int; msg : string }

type reader = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the first character of the current line *)
}

let cur_pos r = { line = r.line; col = r.pos - r.bol + 1 }
let parse_error r msg = raise (Parse_error { pos = r.pos; line = r.line; col = r.pos - r.bol + 1; msg })

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let advance r =
  let nl = r.pos < String.length r.src && r.src.[r.pos] = '\n' in
  r.pos <- r.pos + 1;
  if nl then begin
    r.line <- r.line + 1;
    r.bol <- r.pos
  end

let rec skip_ws r =
  match peek r with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance r;
    skip_ws r
  | Some ';' ->
    let rec to_eol () =
      match peek r with
      | Some '\n' | None -> ()
      | Some _ ->
        advance r;
        to_eol ()
    in
    to_eol ();
    skip_ws r
  | _ -> ()

let is_atom_char c =
  match c with
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '[' | ']' | ';' | '"' -> false
  | _ -> true

let read_string r =
  advance r (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek r with
    | None -> parse_error r "unterminated string literal"
    | Some '"' ->
      advance r;
      Buffer.contents buf
    | Some '\\' ->
      advance r;
      (match peek r with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some c -> parse_error r (Printf.sprintf "invalid escape \\%c" c)
      | None -> parse_error r "unterminated escape");
      advance r;
      go ()
    | Some c ->
      advance r;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let read_atom r =
  let start = r.pos in
  let rec go () =
    match peek r with
    | Some c when is_atom_char c ->
      advance r;
      go ()
    | _ -> ()
  in
  go ();
  String.sub r.src start (r.pos - start)

let rec read_sexp r =
  skip_ws r;
  let start = cur_pos r in
  let finish node = { node; span = { sp_start = start; sp_end = cur_pos r } } in
  match peek r with
  | None -> parse_error r "unexpected end of input"
  | Some '(' | Some '[' ->
    let close = if r.src.[r.pos] = '(' then ')' else ']' in
    advance r;
    let items = ref [] in
    let rec loop () =
      skip_ws r;
      match peek r with
      | None -> parse_error r "unterminated list"
      | Some c when c = close ->
        advance r;
        finish (N_list (List.rev !items))
      | Some (')' | ']') -> parse_error r "mismatched bracket"
      | Some _ ->
        items := read_sexp r :: !items;
        loop ()
    in
    loop ()
  | Some (')' | ']') -> parse_error r "unexpected closing bracket"
  | Some '"' -> finish (N_str (read_string r))
  | Some _ ->
    let a = read_atom r in
    if a = "" then parse_error r "empty atom";
    finish (N_atom a)

(** [parse_string_loc src] parses all top-level s-expressions in [src],
    keeping source spans on every node. *)
let parse_string_loc src : located list =
  let r = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    skip_ws r;
    if r.pos >= String.length src then List.rev acc else go (read_sexp r :: acc)
  in
  go []

let rec strip { node; _ } =
  match node with
  | N_atom a -> Atom a
  | N_str s -> Str s
  | N_list items -> List (List.map strip items)

(** [parse_string src] parses all top-level s-expressions in [src]. *)
let parse_string src : t list = List.map strip (parse_string_loc src)

(** [parse_one src] parses exactly one s-expression. *)
let parse_one src : t =
  match parse_string src with
  | [ s ] -> s
  | [] -> raise (Parse_error { pos = 0; line = 1; col = 1; msg = "no s-expression found" })
  | _ -> raise (Parse_error { pos = 0; line = 1; col = 1; msg = "expected a single s-expression" })

let dummy_pos = { line = 0; col = 0 }
let dummy_span = { sp_start = dummy_pos; sp_end = dummy_pos }
let is_dummy_span sp = sp.sp_start.line = 0

(** Relocate a plain term to a located one carrying [dummy_span]
    everywhere — for checking programs that only exist as ASTs. *)
let rec with_dummy_spans t =
  let node =
    match t with
    | Atom a -> N_atom a
    | Str s -> N_str s
    | List items -> N_list (List.map with_dummy_spans items)
  in
  { node; span = dummy_span }

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Atom a -> Fmt.string ppf a
  | Str s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | List items -> Fmt.pf ppf "(@[<hov>%a@])" (Fmt.list ~sep:Fmt.sp pp) items

let to_string s = Fmt.str "%a" pp s

let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col
let pp_span ppf sp = pp_pos ppf sp.sp_start
