(** E-matching: finding all substitutions under which a rule's premises
    hold in the current e-graph.

    The matcher works against a persistent {!index}: per-function
    by-output buckets are (re)built lazily only when the function's table
    changed since the bucket was last built, so repeated iterations over a
    mostly-quiescent database cost almost nothing.  Rows are indexed by
    output e-class so nested patterns join in O(1) per candidate.

    Premises are solved left to right over a list of candidate
    environments: declared-function applications are patterns (relational
    joins over their tables), primitive applications are evaluated (and
    must be [true] in guard position), and [(= e1 e2 ...)] unifies the
    values of all conjuncts, binding still-free variables.

    Seminaive matching ({!compile} / {!solve_plan}) unions one term per
    table-application atom: the term's atom scans only the rows stamped
    after a given timestamp (the delta), atoms before it only older rows
    and atoms after it the full table, so every row combination is derived
    by exactly one term — a rule whose tables saw no new rows since its
    last scan is dismissed in O(atoms). *)

exception Error of string

module Env : Map.S with type key = string

type env = Value.t Env.t

type index

(** Build a matching index over the e-graph.  O(1); per-function buckets
    are built lazily on first use and cached until the function's table
    changes.  [globals] are the interpreter's top-level let-bindings. *)
val make_index : Egraph.t -> (string, Value.t) Hashtbl.t -> index

(** Value of an {!Ast.lit}. *)
val value_of_lit : Ast.lit -> Value.t

(** Try to evaluate a ground expression under an environment; [None] when
    it mentions an unbound variable, a missing table row, or a primitive
    error.  Never mutates the e-graph. *)
val eval_opt : index -> env -> Ast.expr -> Value.t option

(** Extend [env] in all ways that make the pattern match the value. *)
val match_value : index -> env -> Ast.expr -> Value.t -> env list

(** Solve one fact against candidate environments.  [restrict], when
    given as [(conj, since)], limits the [conj]-th conjunct (0 for
    [F_expr]) to rows stamped strictly after [since] — the seminaive
    delta restriction. *)
val solve_fact : ?restrict:int * int -> index -> env list -> Ast.fact -> env list

(** Solve all premises of a rule; the satisfying environments. *)
val solve_facts : index -> Ast.fact list -> env list

(** {1 Seminaive plans} *)

(** A compiled rule body: premises flattened so every declared-function
    application is its own atom, plus the list of delta candidates. *)
type plan

(** Flatten and analyse a premise list.  Total per rule, done once. *)
val compile : Ast.fact list -> plan

(** Whether the plan supports seminaive matching (false when a table
    application is nested inside a primitive application, where the delta
    restriction cannot reach it — callers fall back to naive matching). *)
val eligible : plan -> bool

(** The flattened premises (for naive matching of the same plan, keeping
    both paths observationally identical). *)
val plan_facts : plan -> Ast.fact list

(** {1 Generic join (arena engine)} *)

(** A rule body compiled for the worst-case-optimal generic join: flat
    table atoms joined variable-by-variable over per-(function, column)
    indexes of the arena tables, plus pure-primitive residual facts
    evaluated on the decoded environments afterwards. *)
type gplan

(** Try to compile a plan for the generic join.  [None] when the rule
    needs the env-list matcher: non-arena engine, nested or destructuring
    patterns, multi-pattern equations, globals referenced in patterns. *)
val gcompile : ?keep:string list -> index -> plan -> gplan option

(** Generic-join seminaive solve ([~since:-1] degenerates to the full
    naive join).  Same disjoint old/delta/full decomposition as the
    env-list path, executed over sorted row-id columns. *)
val gsolve : index -> gplan -> since:int -> env list

(** Whether {!gsolve_packed} may be used for this plan: no residual facts
    and no wildcard columns (those need env-level dedupe). *)
val gp_packed_ok : gplan -> bool

(** The emitted variables' names, in packed-row slot order. *)
val gp_slot_names : gplan -> string array

(** The sort of each packed-row slot. *)
val gp_slot_sorts : index -> gplan -> Egraph.sort_kind array

(** Packed matches: [pk_rows] consecutive rows of [pk_width] arena
    codes, row-major in [pk_buf], in discovery order. *)
type packed = { pk_buf : int array; pk_rows : int; pk_width : int }

(** Like {!gsolve} but the matches land in one flat row-major code
    buffer in {!gp_slot_names} slot order — no environment maps, no
    decoding and no per-match allocation, so appliers compiled against
    the slot order work at the code level end to end.  Only valid when
    {!gp_packed_ok}. *)
val gsolve_packed : index -> gplan -> since:int -> packed

(** Build every per-function structure the rule's search needs (column
    indexes or row caches), so a subsequent parallel search phase never
    writes to the shared index. *)
val prewarm : index -> plan -> gplan option -> unit

(** Environments satisfying the plan that involve at least one row
    stamped strictly after [since].  Requires [eligible].  Results are
    deduplicated.  [?gplan] short-circuits plan dispatch: [Some (Some g)]
    uses the generic join with [g], [Some None] forces the env-list path,
    [None] (default) compiles and dispatches on the fly. *)
val solve_plan :
  ?gplan:gplan option option -> index -> plan -> since:int -> env list

(** The env-list (legacy) solver, regardless of engine. *)
val solve_plan_legacy : index -> plan -> since:int -> env list

