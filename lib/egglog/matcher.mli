(** E-matching: finding all substitutions under which a rule's premises
    hold in the current e-graph.

    The matcher works against a persistent {!index}: per-function
    by-output buckets are (re)built lazily only when the function's table
    changed since the bucket was last built, so repeated iterations over a
    mostly-quiescent database cost almost nothing.  Rows are indexed by
    output e-class so nested patterns join in O(1) per candidate.

    Premises are solved left to right over a list of candidate
    environments: declared-function applications are patterns (relational
    joins over their tables), primitive applications are evaluated (and
    must be [true] in guard position), and [(= e1 e2 ...)] unifies the
    values of all conjuncts, binding still-free variables.

    Seminaive matching ({!compile} / {!solve_plan}) unions one term per
    table-application atom: the term's atom scans only the rows stamped
    after a given timestamp (the delta), atoms before it only older rows
    and atoms after it the full table, so every row combination is derived
    by exactly one term — a rule whose tables saw no new rows since its
    last scan is dismissed in O(atoms). *)

exception Error of string

module Env : Map.S with type key = string

type env = Value.t Env.t

type index

(** Build a matching index over the e-graph.  O(1); per-function buckets
    are built lazily on first use and cached until the function's table
    changes.  [globals] are the interpreter's top-level let-bindings. *)
val make_index : Egraph.t -> (string, Value.t) Hashtbl.t -> index

(** Value of an {!Ast.lit}. *)
val value_of_lit : Ast.lit -> Value.t

(** Try to evaluate a ground expression under an environment; [None] when
    it mentions an unbound variable, a missing table row, or a primitive
    error.  Never mutates the e-graph. *)
val eval_opt : index -> env -> Ast.expr -> Value.t option

(** Extend [env] in all ways that make the pattern match the value. *)
val match_value : index -> env -> Ast.expr -> Value.t -> env list

(** Solve one fact against candidate environments.  [restrict], when
    given as [(conj, since)], limits the [conj]-th conjunct (0 for
    [F_expr]) to rows stamped strictly after [since] — the seminaive
    delta restriction. *)
val solve_fact : ?restrict:int * int -> index -> env list -> Ast.fact -> env list

(** Solve all premises of a rule; the satisfying environments. *)
val solve_facts : index -> Ast.fact list -> env list

(** {1 Seminaive plans} *)

(** A compiled rule body: premises flattened so every declared-function
    application is its own atom, plus the list of delta candidates. *)
type plan

(** Flatten and analyse a premise list.  Total per rule, done once. *)
val compile : Ast.fact list -> plan

(** Whether the plan supports seminaive matching (false when a table
    application is nested inside a primitive application, where the delta
    restriction cannot reach it — callers fall back to naive matching). *)
val eligible : plan -> bool

(** The flattened premises (for naive matching of the same plan, keeping
    both paths observationally identical). *)
val plan_facts : plan -> Ast.fact list

(** Environments satisfying the plan that involve at least one row
    stamped strictly after [since].  Requires [eligible].  Results are
    deduplicated. *)
val solve_plan : index -> plan -> since:int -> env list
