(** Flat-arena storage for e-graph function tables.

    Every value is encoded as one machine int (a {e code}): e-class [n]
    becomes the even code [2n]; any other value is interned into a
    side {!pool} at position [p] and becomes the odd code [2p+1].  A table
    row is then [arity + 1] consecutive ints (arguments followed by the
    output) in one flat array — the match/apply inner loop compares and
    hashes ints, never boxed values.

    Rows are append-only and stamped with the e-graph clock, so the stamp
    column is monotonically increasing: a seminaive delta ("rows newer
    than stamp [s]") is a binary search plus a suffix walk, and the old
    rows ("stamp ≤ [s]") are a prefix.  Rewriting a row's output kills the
    old row and appends a fresh copy, which keeps the invariant and doubles
    as the journal the hashtable engine maintains separately.  Congruence
    lookups go through a single open-addressing hash over the key ints.
    {!compact} drops dead rows in place (order-preserving, so stamps stay
    sorted) and bumps [version], which invalidates any column indexes
    built over row numbers. *)

(* ------------------------------------------------------------------ *)
(* Value pool: primitive interning                                     *)
(* ------------------------------------------------------------------ *)

(* the backing arrays, published as one immutable-pointer bundle so that
   growth can be made visible to concurrent readers with a single atomic
   store (filled first, then published: release/acquire via [Atomic]) *)
type slab = {
  vals : Value.t array;
  has_class : Bytes.t;
      (* per pooled value: does it embed an e-class id (a Vec containing
         Eclass elements)?  Those are the only pooled codes that can go
         stale after a union. *)
}

type pool = {
  slab : slab Atomic.t;
  mutable n_vals : int;
  intern_tbl : int Value.Tbl.t;
  lock : Mutex.t;
  mutable threadsafe : bool;
      (* when set (parallel search phase), intern takes the lock: several
         domains may pool new primitive results concurrently.  A domain can
         only hold a code it interned itself (under the lock) or read from a
         row written before the phase started, so lock + atomic slab
         publication covers every cross-domain access. *)
}

let create_pool () =
  {
    slab = Atomic.make { vals = Array.make 64 Value.Unit; has_class = Bytes.make 64 '\000' };
    n_vals = 0;
    intern_tbl = Value.Tbl.create 64;
    lock = Mutex.create ();
    threadsafe = false;
  }

let set_threadsafe pool on = pool.threadsafe <- on

let rec value_has_class (v : Value.t) =
  match v with
  | Value.Eclass _ -> true
  | Value.Vec elems -> Array.exists value_has_class elems
  | _ -> false

let pool_add pool v =
  match Value.Tbl.find_opt pool.intern_tbl v with
  | Some p -> p
  | None ->
    let p = pool.n_vals in
    let s = Atomic.get pool.slab in
    let s =
      if p = Array.length s.vals then begin
        (* grow: fill the new slab completely before publishing it *)
        let vals = Array.make (2 * p) Value.Unit in
        Array.blit s.vals 0 vals 0 p;
        let hc = Bytes.make (2 * p) '\000' in
        Bytes.blit s.has_class 0 hc 0 p;
        let s' = { vals; has_class = hc } in
        Atomic.set pool.slab s';
        s'
      end
      else s
    in
    s.vals.(p) <- v;
    if value_has_class v then Bytes.set s.has_class p '\001';
    pool.n_vals <- p + 1;
    Value.Tbl.replace pool.intern_tbl v p;
    p

(** [encode pool v] is the code of [v].  The caller canonicalizes [v]
    first; a non-canonical value gets its own pool slot, which is safe
    (codes are re-canonicalized by {!canon_code}) but wasteful. *)
let encode pool (v : Value.t) =
  match v with
  | Value.Eclass id -> id * 2
  | v ->
    if pool.threadsafe then begin
      Mutex.lock pool.lock;
      let p = try pool_add pool v with e -> Mutex.unlock pool.lock; raise e in
      Mutex.unlock pool.lock;
      (2 * p) + 1
    end
    else (2 * pool_add pool v) + 1

(** [decode pool c] is the value of code [c]. *)
let decode pool c =
  if c land 1 = 0 then Value.Eclass (c lsr 1)
  else (Atomic.get pool.slab).vals.(c lsr 1)

let is_class_code c = c land 1 = 0
let code_of_class id = id * 2
let class_of_code c = c lsr 1

(** Is code [c] canonical under [uf]? *)
let code_canonical uf pool c =
  if c land 1 = 0 then Union_find.is_canonical uf (c lsr 1)
  else
    let s = Atomic.get pool.slab in
    Bytes.get s.has_class (c lsr 1) = '\000'
    || Value.is_canonical uf s.vals.(c lsr 1)

(** Canonicalize code [c] under [uf]. *)
let canon_code uf pool c =
  if c land 1 = 0 then Union_find.find uf (c lsr 1) * 2
  else
    let s = Atomic.get pool.slab in
    if Bytes.get s.has_class (c lsr 1) = '\000' then c
    else encode pool (Value.canonicalize uf s.vals.(c lsr 1))

let pool_memory_words pool = pool.n_vals * 4

(* ------------------------------------------------------------------ *)
(* Flat tables                                                         *)
(* ------------------------------------------------------------------ *)

type table = {
  arity : int;
  width : int;  (* arity + 1: the output code is the last column *)
  mutable data : int array;  (* row [r] occupies [r*width .. r*width+arity] *)
  mutable stamps : int array;  (* monotonically increasing over rows *)
  mutable dead : Bytes.t;
  mutable n_rows : int;  (* appended rows, live and dead *)
  mutable n_dead : int;
  mutable slots : int array;  (* open addressing: 0 empty, -1 tombstone, r+1 occupied *)
  mutable mask : int;  (* slot count - 1 (power of two) *)
  mutable version : int;  (* bumped by compaction and clears: row numbers changed *)
  mutable remap : int array;  (* last compaction's old row -> new row (-1 dead) *)
  mutable remap_from : int;  (* the version that remap translates from (-1 none) *)
}

let create ~arity =
  {
    arity;
    width = arity + 1;
    data = Array.make (max 8 ((arity + 1) * 8)) 0;
    stamps = Array.make 8 0;
    dead = Bytes.make 8 '\000';
    n_rows = 0;
    n_dead = 0;
    slots = Array.make 16 0;
    mask = 15;
    version = 0;
    remap = [||];
    remap_from = -1;
  }

let n_live tbl = tbl.n_rows - tbl.n_dead
let n_dead tbl = tbl.n_dead
let n_rows tbl = tbl.n_rows
let version tbl = tbl.version
(* the hot row accessors skip bounds checks: row ids only ever come from
   the table's own [n_rows]/slots/indexes, never from user input *)
let is_dead tbl r = Bytes.unsafe_get tbl.dead r = '\001'
let stamp tbl r = Array.unsafe_get tbl.stamps r
let out_code tbl r = Array.unsafe_get tbl.data ((r * tbl.width) + tbl.arity)
let arg_code tbl r i = Array.unsafe_get tbl.data ((r * tbl.width) + i)

(** Code in column [c] of row [r]; column [arity] is the output. *)
let col_code tbl r c = Array.unsafe_get tbl.data ((r * tbl.width) + c)

(* FNV-1a over the key ints, kept non-negative *)
let hash_key (key : int array) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length key - 1 do
    h := (!h lxor Array.unsafe_get key i) * 0x01000193
  done;
  !h land max_int

let hash_row tbl r =
  let h = ref 0x811c9dc5 in
  let base = r * tbl.width in
  for i = 0 to tbl.arity - 1 do
    h := (!h lxor Array.unsafe_get tbl.data (base + i)) * 0x01000193
  done;
  !h land max_int

let key_matches tbl r (key : int array) =
  let base = r * tbl.width in
  let rec go i =
    i = tbl.arity
    || (Array.unsafe_get tbl.data (base + i) = Array.unsafe_get key i && go (i + 1))
  in
  go 0

(** Live row index for [key], or -1. *)
let find tbl (key : int array) =
  let mask = tbl.mask in
  let rec probe s =
    match Array.unsafe_get tbl.slots s with
    | 0 -> -1
    | -1 -> probe ((s + 1) land mask)
    | v ->
      let r = v - 1 in
      if (not (is_dead tbl r)) && key_matches tbl r key then r
      else probe ((s + 1) land mask)
  in
  probe (hash_key key land mask)

(* claim a slot for row [r] (key already in [data]); caller guarantees the
   key is not mapped to a live row *)
let slot_insert tbl r =
  let mask = tbl.mask in
  let rec probe s =
    match tbl.slots.(s) with
    | 0 | -1 -> tbl.slots.(s) <- r + 1
    | _ -> probe ((s + 1) land mask)
  in
  probe (hash_row tbl r land mask)

(* repoint the slot holding live row [old_r] at row [new_r] (same key) *)
let slot_repoint tbl old_r new_r =
  let mask = tbl.mask in
  let rec probe s =
    match tbl.slots.(s) with
    | 0 -> invalid_arg "Arena.slot_repoint: row not found"
    | v when v = old_r + 1 -> tbl.slots.(s) <- new_r + 1
    | _ -> probe ((s + 1) land mask)
  in
  probe (hash_row tbl old_r land mask)

(* tombstone the slot holding live row [r] *)
let slot_remove tbl r =
  let mask = tbl.mask in
  let rec probe s =
    match tbl.slots.(s) with
    | 0 -> invalid_arg "Arena.slot_remove: row not found"
    | v when v = r + 1 -> tbl.slots.(s) <- -1
    | _ -> probe ((s + 1) land mask)
  in
  probe (hash_row tbl r land mask)

let rehash tbl =
  (* grow slots to keep the load factor below 1/2 over live rows *)
  let needed = 2 * (n_live tbl + 1) in
  let size = ref (Array.length tbl.slots) in
  while !size < needed do
    size := !size * 2
  done;
  tbl.slots <- Array.make !size 0;
  tbl.mask <- !size - 1;
  for r = 0 to tbl.n_rows - 1 do
    if not (is_dead tbl r) then slot_insert tbl r
  done

let ensure_row_capacity tbl =
  let cap = Array.length tbl.stamps in
  if tbl.n_rows = cap then begin
    let cap' = cap * 2 in
    let data = Array.make (cap' * tbl.width) 0 in
    Array.blit tbl.data 0 data 0 (cap * tbl.width);
    let stamps = Array.make cap' 0 in
    Array.blit tbl.stamps 0 stamps 0 cap;
    let dead = Bytes.make cap' '\000' in
    Bytes.blit tbl.dead 0 dead 0 cap;
    tbl.data <- data;
    tbl.stamps <- stamps;
    tbl.dead <- dead
  end;
  (* slots: resize when the table (live + tombstones) is over half full; a
     full rehash also clears tombstones *)
  if 2 * (tbl.n_rows - tbl.n_dead + 1) > tbl.mask + 1 then rehash tbl

let kill tbl r =
  if not (is_dead tbl r) then begin
    slot_remove tbl r;
    Bytes.set tbl.dead r '\001';
    tbl.n_dead <- tbl.n_dead + 1
  end

(** Append a live row; [key] is copied into the arena.  The caller
    guarantees no live row currently has this key, and that [stamp] is
    larger than every stamp already in the table. *)
let append tbl (key : int array) out stamp =
  ensure_row_capacity tbl;
  let r = tbl.n_rows in
  let base = r * tbl.width in
  Array.blit key 0 tbl.data base tbl.arity;
  tbl.data.(base + tbl.arity) <- out;
  tbl.stamps.(r) <- stamp;
  tbl.n_rows <- r + 1;
  slot_insert tbl r;
  r

(** Rewrite the output of live row [r]: the old row is killed and a fresh
    copy with output [out] and stamp [stamp] is appended (so the delta
    suffix sees the rewrite).  Returns the new row. *)
let rewrite tbl r out stamp =
  ensure_row_capacity tbl;
  let r' = tbl.n_rows in
  Array.blit tbl.data (r * tbl.width) tbl.data (r' * tbl.width) tbl.arity;
  tbl.data.((r' * tbl.width) + tbl.arity) <- out;
  tbl.stamps.(r') <- stamp;
  tbl.n_rows <- r' + 1;
  slot_repoint tbl r r';
  Bytes.set tbl.dead r '\001';
  tbl.n_dead <- tbl.n_dead + 1;
  r'

(** Remove the live row with [key], if any.  Returns true if removed. *)
let remove tbl key =
  let r = find tbl key in
  if r < 0 then false
  else begin
    kill tbl r;
    true
  end

(** First row index with stamp strictly greater than [since] (dead rows
    included — callers skip them).  Stamps are sorted, so this is a binary
    search. *)
let delta_start tbl ~since =
  let lo = ref 0 and hi = ref tbl.n_rows in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if tbl.stamps.(mid) > since then hi := mid else lo := mid + 1
  done;
  !lo

(** Iterate live row indices in append (= stamp) order. *)
let iter_live tbl k =
  for r = 0 to tbl.n_rows - 1 do
    if not (is_dead tbl r) then k r
  done

(** Drop dead rows in place, preserving order (stamps stay sorted), and
    rebuild the hash.  Bumps [version]: row numbers have changed. *)
let compact tbl =
  if tbl.n_dead > 0 then begin
    let w = tbl.width in
    let remap = Array.make tbl.n_rows (-1) in
    let dst = ref 0 in
    for r = 0 to tbl.n_rows - 1 do
      if not (is_dead tbl r) then begin
        if !dst <> r then begin
          Array.blit tbl.data (r * w) tbl.data (!dst * w) w;
          tbl.stamps.(!dst) <- tbl.stamps.(r)
        end;
        remap.(r) <- !dst;
        incr dst
      end
    done;
    tbl.n_rows <- !dst;
    tbl.n_dead <- 0;
    Bytes.fill tbl.dead 0 (Bytes.length tbl.dead) '\000';
    rehash tbl;
    tbl.remap <- remap;
    tbl.remap_from <- tbl.version;
    tbl.version <- tbl.version + 1
  end

(** The last compaction's old-row -> new-row map (dead rows map to -1),
    when it translates exactly from [from_version] to the current
    numbering.  Lets column indexes renumber in place instead of
    rebuilding. *)
let remap_from tbl ~from_version =
  if tbl.remap_from = from_version && tbl.version = from_version + 1 then
    Some tbl.remap
  else None

(** Deep copy (int arrays only — this is what makes arena snapshots cheap
    compared to rehashing boxed keys). *)
let copy tbl =
  {
    tbl with
    data = Array.copy tbl.data;
    stamps = Array.copy tbl.stamps;
    dead = Bytes.copy tbl.dead;
    slots = Array.copy tbl.slots;
  }

let memory_words tbl =
  (tbl.n_rows * (tbl.width + 2)) + Array.length tbl.slots
