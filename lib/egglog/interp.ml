(** The Egglog command interpreter: executes programs against an e-graph.

    This is the engine façade used by DialEgg: feed it commands (parsed from
    [.egg] text or built programmatically), then inspect extraction results
    and saturation statistics. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* Slot-compiled actions for the packed apply path: when a rule's matches
   arrive as flat rows of arena codes (Matcher.gsolve_packed), its actions
   are compiled once against the row's slot layout — variable names
   resolved to slot indexes, table names interned, sorts checked
   statically — so applying a match is array indexing and code-level
   e-graph operations, with no Env maps, string hashing, or Value boxing
   on the hot path. *)
type cval =
  | K_slot of int  (* read a packed-row / let slot *)
  | K_global of string  (* resolved in [t.globals] at apply time *)
  | K_const of int  (* pre-encoded code (the pool is append-only/shared) *)
  | K_prim of string * cval array  (* decodes args, encodes the result *)
  | K_table of Egraph.func * cval array * int array  (* + per-node key scratch *)
  | K_check of Egraph.sort_kind * cval
      (* runtime sort check, only where the sort isn't known statically
         (primitive results and globals) *)

type caction =
  | KA_let of int * cval  (* evaluate, then write the slot *)
  | KA_union of cval * cval
  | KA_set of Egraph.func * cval array * int array * cval
  | KA_expr of cval
  | KA_cost of Egraph.func * cval array * int array * cval
  | KA_delete of Egraph.func * cval array * int array
  | KA_panic of string

type capply = {
  ca_acts : caction array;
  ca_slots : int;  (* scratch row width: emitted vars + let bindings *)
}

type rule = {
  r_name : string;
  r_facts : Ast.fact list;
  r_actions : Ast.action list;
  r_ruleset : string option;  (** [None] = the default ruleset *)
  r_refs : Symbol.t list;  (** function tables the premises read *)
  r_plan : Matcher.plan;  (** compiled premises for seminaive matching *)
  mutable r_gplan : Matcher.gplan option option;
      (** generic-join compilation of [r_plan], resolved lazily at first
          search ([None] = not yet attempted; [Some None] = falls back to
          the env-list matcher) *)
  mutable r_capply : capply option option;
      (** slot-compiled actions for the packed apply path, resolved lazily
          with [r_gplan] ([Some None] = action shape needs the env
          interpreter) *)
  mutable r_last_scan : int;  (** e-graph clock at the last match scan *)
  (* backoff scheduler state (egg's BackoffScheduler) *)
  mutable r_times_banned : int;
  mutable r_banned_until : int;  (** absolute iteration number; banned while
                                     [iteration < r_banned_until] *)
  (* lifetime statistics *)
  mutable r_n_searches : int;
  mutable r_n_matches : int;  (** matches found (including discarded) *)
  mutable r_n_applied : int;  (** matches actually applied *)
  mutable r_n_bans : int;
  mutable r_search_time : float;
  mutable r_apply_time : float;
}

(** Immutable snapshot of one rule's saturation statistics. *)
type rule_stat = {
  rs_name : string;
  rs_ruleset : string option;
  rs_searches : int;
  rs_matches : int;
  rs_applied : int;
  rs_bans : int;
  rs_search_time : float;
  rs_apply_time : float;
}

(** Why a [(run n)] stopped.  [Fault] carries the structured diagnostic of
    an exception captured mid-saturation (rule panic, merge conflict,
    primitive error): the run stops, the e-graph is re-canonicalized, and
    whatever it contains — at minimum the original program — remains
    extractable. *)
type stop_reason =
  | Saturated
  | Iteration_limit
  | Node_limit
  | Timeout
  | Memory_limit
  | Fault of Diag.t

let pp_stop_reason ppf = function
  | Saturated -> Fmt.string ppf "saturated"
  | Iteration_limit -> Fmt.string ppf "iteration limit"
  | Node_limit -> Fmt.string ppf "node limit"
  | Timeout -> Fmt.string ppf "timeout"
  | Memory_limit -> Fmt.string ppf "memory limit"
  | Fault d -> Fmt.pf ppf "fault: %s" (Diag.to_string d)

(** True saturation: the run reached a fixpoint rather than a budget. *)
let stopped_saturated = function Saturated -> true | _ -> false

(** Did the run stop on a resource budget (as opposed to saturating or
    faulting)? *)
let stopped_on_limit = function
  | Iteration_limit | Node_limit | Timeout | Memory_limit -> true
  | Saturated | Fault _ -> false

type run_stats = {
  mutable iterations : int;
  mutable matches : int;  (** total rule matches applied *)
  mutable sat_time : float;  (** seconds spent in [(run n)] *)
  mutable search_time : float;  (** seconds in rule search (e-matching) *)
  mutable apply_time : float;  (** seconds applying rule actions *)
  mutable rebuild_time : float;
      (** seconds restoring congruence (the deferred rebuild batches) *)
  mutable stop : stop_reason;
  mutable peak_nodes : int;  (** largest e-graph size seen during the run *)
}

type output =
  | O_extracted of Extract.term * int  (** term and its cost *)
  | O_variants of (Extract.term * int) list  (** cheapest-first variants *)
  | O_checked
  | O_ran of run_stats
  | O_msg of string

(** An anytime checkpoint: the best extraction of the checkpoint root seen
    so far, recorded periodically during saturation so that a limit or a
    fault still yields a result. *)
type checkpoint = { ck_term : Extract.term; ck_cost : int; ck_iteration : int }

type t = {
  mutable eg : Egraph.t;
  mutable globals : (string, Value.t) Hashtbl.t;
  mutable rules : rule list;  (** in registration order *)
  mutable rulesets : string list;  (** declared ruleset names *)
  mutable rule_counter : int;
  mutable limits : Limits.t;  (** resource budgets for saturation *)
  mutable last_stats : run_stats option;
  mutable outputs : output list;  (** reverse order *)
  mutable snapshots : snapshot list;  (** push/pop stack *)
  mutable disable_dirty_skip : bool;
      (** testing/ablation: always rescan every rule *)
  mutable naive_matching : bool;
      (** fall back to full re-matching instead of seminaive deltas *)
  mutable jobs : int;
      (** search-phase parallelism: rules are partitioned across this many
          OCaml domains; 1 = fully sequential *)
  mutable backoff : bool;  (** enable the backoff rule scheduler *)
  mutable match_limit : int;  (** scheduler: base per-rule match budget *)
  mutable ban_length : int;  (** scheduler: base ban duration (iterations) *)
  mutable iter_counter : int;
      (** absolute iteration count across all [(run)]s — the scheduler's
          time base for bans *)
  mutable idx : Matcher.index option;
      (** cached persistent matcher index; invalidated when [eg] is
          replaced (pop) *)
  mutable ck_root : Value.t option;
      (** value whose best extraction the anytime checkpoints track *)
  mutable ck_every : int;
      (** checkpoint every n successful iterations (0 = only on demand) *)
  mutable best_ck : checkpoint option;
  costs_applied : (int array, int) Hashtbl.t;
      (** arena fast path: cheapest cost already applied per canonical
          [sym id :: key codes] — dedupes the re-derived [unstable-cost]
          actions seminaive matching keeps producing.  A stale (merged)
          key never matches a freshly canonicalized probe, so hits are
          always sound skips.  Cleared on [pop]. *)
}

and snapshot = {
  s_eg : Egraph.t;
  s_globals : (string, Value.t) Hashtbl.t;
  s_rules : rule list;
  s_rulesets : string list;
}

let create ?(max_nodes = 200_000) ?timeout ?limits ?(engine = Egraph.Arena)
    ?(jobs = 1) () =
  let limits =
    match limits with
    | Some l -> l
    | None ->
      Limits.make ~max_nodes
        ?max_time_ms:(Option.map (fun s -> s *. 1000.) timeout)
        ()
  in
  {
    eg = Egraph.create ~engine ();
    globals = Hashtbl.create 64;
    rules = [];
    rulesets = [];
    rule_counter = 0;
    limits;
    last_stats = None;
    outputs = [];
    snapshots = [];
    disable_dirty_skip = false;
    naive_matching = false;
    jobs = max 1 jobs;
    backoff = true;
    match_limit = 1000;
    ban_length = 5;
    iter_counter = 0;
    idx = None;
    ck_root = None;
    ck_every = 0;
    best_ck = None;
    costs_applied = Hashtbl.create 256;
  }

let set_disable_dirty_skip t b = t.disable_dirty_skip <- b
let set_limits t l = t.limits <- l
let limits t = t.limits
let set_naive_matching t b = t.naive_matching <- b
let set_jobs t n = t.jobs <- max 1 n
let jobs t = t.jobs
let engine t = Egraph.engine t.eg
let set_backoff t b = t.backoff <- b
let set_match_limit t n = t.match_limit <- n
let set_ban_length t n = t.ban_length <- n
let egraph t = t.eg
let globals t = t.globals

(** The persistent matcher index for the current e-graph (created lazily,
    reused across iterations and runs). *)
let get_index t =
  match t.idx with
  | Some idx -> idx
  | None ->
    let idx = Matcher.make_index t.eg t.globals in
    t.idx <- Some idx;
    idx

let rule_stats t : rule_stat list =
  List.map
    (fun r ->
      {
        rs_name = r.r_name;
        rs_ruleset = r.r_ruleset;
        rs_searches = r.r_n_searches;
        rs_matches = r.r_n_matches;
        rs_applied = r.r_n_applied;
        rs_bans = r.r_n_bans;
        rs_search_time = r.r_search_time;
        rs_apply_time = r.r_apply_time;
      })
    t.rules

(** Value of global let-binding [x]. *)
let global t x =
  match Hashtbl.find_opt t.globals x with
  | Some v -> v
  | None -> error "unknown global %s" x

let global_opt t x = Hashtbl.find_opt t.globals x

(* ------------------------------------------------------------------ *)
(* Expression evaluation in action position (may create e-nodes)       *)
(* ------------------------------------------------------------------ *)

let rec eval t (env : Matcher.env) (e : Ast.expr) : Value.t =
  match e with
  | Var x -> (
    match Matcher.Env.find_opt x env with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt t.globals x with
      | Some v -> v
      | None -> error "unbound name %s" x))
  | Wildcard -> error "wildcard in expression position"
  | Lit l -> Matcher.value_of_lit l
  | Call (f, args) ->
    let vals = List.map (eval t env) args in
    if Primitives.is_primitive f then
      try Primitives.apply f vals
      with Primitives.Error msg -> error "primitive error: %s" msg
    else begin
      let fn = Egraph.find_func t.eg (Symbol.intern f) in
      match Egraph.apply t.eg fn (Array.of_list vals) with
      | Some v -> v
      | None ->
        error "(%s ...) has no defined output (use set before reading it)" f
    end

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let rec run_action t (env : Matcher.env) (a : Ast.action) : Matcher.env =
  match a with
  | A_let (x, e) ->
    let v = eval t env e in
    Matcher.Env.add x v env
  | A_union (a, b) ->
    let va = eval t env a and vb = eval t env b in
    Egraph.union_values t.eg va vb;
    env
  | A_set (Call (f, args), rhs) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    let out = eval t env rhs in
    Egraph.set t.eg fn (Array.of_list vals) out;
    env
  | A_set (e, _) -> error "set expects a function application, got %a" Ast.pp_expr e
  | A_expr e ->
    ignore (eval t env e);
    env
  | A_cost (Call (f, args), c) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    (* make sure the e-node exists, then attach the cost override *)
    ignore (Egraph.apply t.eg fn (Array.of_list vals));
    let cost =
      match eval t env c with
      | I64 n -> Int64.to_int n
      | v -> error "unstable-cost expects an i64 cost, got %a" Value.pp v
    in
    Egraph.set_cost t.eg fn (Array.of_list vals) cost;
    env
  | A_cost (e, _) -> error "unstable-cost expects an e-node application, got %a" Ast.pp_expr e
  | A_delete (Call (f, args)) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    Egraph.delete t.eg fn (Array.of_list vals);
    env
  | A_delete e -> error "delete expects a function application, got %a" Ast.pp_expr e
  | A_panic msg -> error "panic: %s" msg

and run_actions t env actions = ignore (List.fold_left (run_action t) env actions)

(* ------------------------------------------------------------------ *)
(* Slot-compiled actions (packed apply path)                           *)
(* ------------------------------------------------------------------ *)

exception Bail

(** Compile [actions] against the packed-row slot layout [names] /
    [slot_sorts] (one slot per emitted pattern variable, in row order).
    [let]s get fresh slots after the emitted ones — shadowing an emitted
    name reuses its slot, which is safe because each match is applied on
    a freshly blitted scratch row.  Names bound by neither compile to
    global references resolved at apply time, exactly like the env
    interpreter's fallback.  Sorts are tracked during compilation:
    a static argument-sort mismatch bails to the env interpreter (which
    reports the proper error at apply time), and only positions whose
    sort cannot be known statically get a runtime [K_check].  [None]
    when an action shape needs the env interpreter (wildcards,
    [set]/[delete]/[cost] on non-applications, primitive literals the
    pool cannot host). *)
let compile_actions eg (names : string array)
    (slot_sorts : Egraph.sort_kind array) (actions : Ast.action list) :
    capply option =
  let pool = Egraph.pool eg in
  let slots : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace slots x i) names;
  let next = ref (Array.length names) in
  (* static sort of each slot; [None] for a let bound to a value of
     unknown sort *)
  let let_sorts : (int, Egraph.sort_kind option) Hashtbl.t = Hashtbl.create 8 in
  let slot_sort i =
    if i < Array.length slot_sorts then Some slot_sorts.(i)
    else Option.join (Hashtbl.find_opt let_sorts i)
  in
  (* a table must already be declared when the rule first fires, so
     resolve it once here; an unknown name bails to the env interpreter
     (which reports the same error at apply time) *)
  let func f =
    match Egraph.find_func_opt eg (Symbol.intern f) with
    | Some fn -> fn
    | None -> raise Bail
  in
  let lit_sort : Value.t -> Egraph.sort_kind = function
    | Value.I64 _ -> Egraph.S_i64
    | Value.F64 _ -> Egraph.S_f64
    | Value.Str _ -> Egraph.S_string
    | Value.Bool _ -> Egraph.S_bool
    | Value.Unit -> Egraph.S_unit
    | Value.Vec _ | Value.Eclass _ -> raise Bail  (* not literal shapes *)
  in
  let rec cexpr (e : Ast.expr) : cval * Egraph.sort_kind option =
    match e with
    | Var x -> (
      match Hashtbl.find_opt slots x with
      | Some i -> (K_slot i, slot_sort i)
      | None -> (K_global x, None))
    | Wildcard -> raise Bail
    | Lit l ->
      let v = Matcher.value_of_lit l in
      (K_const (Arena.encode pool v), Some (lit_sort v))
    | Call (f, args) ->
      if Primitives.is_primitive f then
        (K_prim (f, Array.of_list (List.map (fun a -> fst (cexpr a)) args)), None)
      else
        let fn = func f in
        (K_table (fn, cargs fn args, Array.make (Array.length fn.Egraph.arg_sorts) 0),
         Some fn.Egraph.ret_sort)
  and coerce (expected : Egraph.sort_kind) (e : Ast.expr) : cval =
    let cv, so = cexpr e in
    match so with
    | Some s -> if s = expected then cv else raise Bail
    | None -> K_check (expected, cv)
  and cargs (fn : Egraph.func) (args : Ast.expr list) : cval array =
    let sorts = fn.Egraph.arg_sorts in
    if List.length args <> Array.length sorts then raise Bail;
    Array.of_list (List.mapi (fun i a -> coerce sorts.(i) a) args)
  in
  let capp f args =
    if Primitives.is_primitive f then raise Bail
    else
      let fn = func f in
      (fn, cargs fn args, Array.make (Array.length fn.Egraph.arg_sorts) 0)
  in
  let cact (a : Ast.action) : caction =
    match a with
    | A_let (x, e) ->
      let cv, so = cexpr e in
      (* bind after compiling the rhs, so the rhs sees the outer [x] *)
      let slot =
        match Hashtbl.find_opt slots x with
        | Some i -> i
        | None ->
          let i = !next in
          incr next;
          Hashtbl.replace slots x i;
          i
      in
      Hashtbl.replace let_sorts slot so;
      KA_let (slot, cv)
    | A_union (a, b) -> KA_union (fst (cexpr a), fst (cexpr b))
    | A_set (Call (f, args), rhs) ->
      let fn, cargs, key = capp f args in
      KA_set (fn, cargs, key, coerce fn.Egraph.ret_sort rhs)
    | A_expr e -> KA_expr (fst (cexpr e))
    | A_cost (Call (f, args), c) ->
      let fn, cargs, key = capp f args in
      KA_cost (fn, cargs, key, fst (cexpr c))
    | A_delete (Call (f, args)) ->
      let fn, cargs, key = capp f args in
      KA_delete (fn, cargs, key)
    | A_panic msg -> KA_panic msg
    | A_set _ | A_cost _ | A_delete _ -> raise Bail
  in
  match List.map cact actions with
  | acts -> Some { ca_acts = Array.of_list acts; ca_slots = !next }
  | exception Bail -> None

let rec ceval t (vals : int array) (cv : cval) : int =
  match cv with
  | K_slot i -> Array.unsafe_get vals i
  | K_const c -> c
  | K_global x -> (
    match Hashtbl.find_opt t.globals x with
    | Some v -> Arena.encode (Egraph.pool t.eg) v
    | None -> error "unbound name %s" x)
  | K_prim _ ->
    (* single pool round-trip at the code boundary; nested prims stay
       value-level inside [ceval_value] *)
    Arena.encode (Egraph.pool t.eg) (ceval_value t vals cv)
  | K_table (fn, args, key) -> (
    for i = 0 to Array.length args - 1 do
      key.(i) <- ceval t vals (Array.unsafe_get args i)
    done;
    (* [key] is per-[K_table]-node scratch: distinct nodes have distinct
       arrays, a child's evaluation never touches its parent's, and apply
       is sequential, so in-place reuse is safe *)
    match Egraph.apply_codes t.eg fn key with
    | -1 ->
      error "(%s ...) has no defined output (use set before reading it)"
        (Symbol.name fn.Egraph.sym)
    | c -> c)
  | K_check (k, cv) ->
    let c = ceval t vals cv in
    if Egraph.code_matches_sort t.eg k c then c
    else
      error "value %a does not inhabit sort %a" Value.pp
        (Arena.decode (Egraph.pool t.eg) c)
        Egraph.pp_sort_kind k

(* evaluate in value space; prim trees never touch the pool hash table *)
and ceval_value t (vals : int array) (cv : cval) : Value.t =
  match cv with
  | K_prim (f, args) -> (
    let rec loop i acc =
      if i < 0 then acc else loop (i - 1) (ceval_value t vals args.(i) :: acc)
    in
    let vargs = loop (Array.length args - 1) [] in
    match Primitives.apply f vargs with
    | v -> v
    | exception Primitives.Error msg -> error "primitive error: %s" msg)
  | K_global x -> (
    match Hashtbl.find_opt t.globals x with
    | Some v -> v
    | None -> error "unbound name %s" x)
  | _ -> Arena.decode (Egraph.pool t.eg) (ceval t vals cv)

(* each arm sequences sub-evaluations with [let] to keep the env
   interpreter's left-to-right effect order (e-node creation) *)
let run_caction t (vals : int array) (a : caction) : unit =
  match a with
  | KA_let (slot, cv) -> vals.(slot) <- ceval t vals cv
  | KA_union (a, b) ->
    let ca = ceval t vals a in
    let cb = ceval t vals b in
    Egraph.union_codes t.eg ca cb
  | KA_set (fn, args, key, rhs) ->
    for i = 0 to Array.length args - 1 do
      key.(i) <- ceval t vals args.(i)
    done;
    let out = ceval t vals rhs in
    Egraph.set_codes t.eg fn key out
  | KA_expr cv -> ignore (ceval t vals cv)
  | KA_cost (fn, args, key, c) ->
    for i = 0 to Array.length args - 1 do
      key.(i) <- ceval t vals args.(i)
    done;
    (* mirror the env interpreter: reading the node creates it *)
    let out = Egraph.apply_codes t.eg fn key in
    if out = -1 then
      error "(%s ...) has no defined output (use set before reading it)"
        (Symbol.name fn.Egraph.sym);
    let cost =
      match ceval_value t vals c with
      | I64 n -> Int64.to_int n
      | v -> error "unstable-cost expects an i64 cost, got %a" Value.pp v
    in
    let n = Array.length key in
    let ck = Array.make (n + 1) (Symbol.id fn.Egraph.sym) in
    Array.blit key 0 ck 1 n;
    (match Hashtbl.find_opt t.costs_applied ck with
    | Some c0 when c0 <= cost -> ()  (* set_cost would keep the cheaper *)
    | _ ->
      Hashtbl.replace t.costs_applied ck cost;
      Egraph.set_cost_codes t.eg fn key out cost)
  | KA_delete (fn, args, key) ->
    let pool = Egraph.pool t.eg in
    for i = 0 to Array.length args - 1 do
      key.(i) <- ceval t vals args.(i)
    done;
    Egraph.delete t.eg fn (Array.map (Arena.decode pool) key)
  | KA_panic msg -> error "panic: %s" msg

(** One rule's matches from a search, in the applier's native shape. *)
type matches =
  | M_envs of Matcher.env list
  | M_packed of capply * Matcher.packed

let n_found = function
  | M_envs l -> List.length l
  | M_packed (_, pk) -> pk.Matcher.pk_rows

(* ------------------------------------------------------------------ *)
(* Anytime checkpoints                                                 *)
(* ------------------------------------------------------------------ *)

(** Extract the checkpoint root from the current e-graph and keep the
    result if it beats the best seen so far.  Never raises: a checkpoint
    attempt that fails (e.g. the root class has no finite-cost term yet,
    or the graph is mid-fault) simply records nothing — the previous best
    survives. *)
let take_checkpoint t =
  match t.ck_root with
  | None -> ()
  | Some root -> (
    try
      Egraph.rebuild t.eg;
      let term, cost = Extract.extract t.eg root in
      match t.best_ck with
      | Some ck when ck.ck_cost <= cost -> ()
      | _ ->
        t.best_ck <- Some { ck_term = term; ck_cost = cost; ck_iteration = t.iter_counter }
    with _ -> ())

(** Track [root]'s best extraction with a checkpoint every [every]
    successful iterations (and once immediately, so a crash on iteration 1
    still has the input program to fall back to). *)
let set_checkpoint_root ?(every = 4) t root =
  t.ck_root <- Some root;
  t.ck_every <- max 0 every;
  t.best_ck <- None;
  take_checkpoint t

let best_checkpoint t = t.best_ck

(* ------------------------------------------------------------------ *)
(* Saturation                                                          *)
(* ------------------------------------------------------------------ *)

(** Is [r] due for a rescan?  A rule can only gain new matches after one of
    its referenced tables changes. *)
let rule_dirty t r =
  t.disable_dirty_skip || r.r_last_scan < 0
  || List.exists
       (fun sym ->
         match Egraph.find_func_opt t.eg sym with
         | Some f -> f.Egraph.last_modified > r.r_last_scan
         | None -> true)
       r.r_refs

(** Run one saturation iteration: search every due rule (seminaive deltas by
    default), then apply all matches in a second phase, then rebuild.
    Returns [(matches_applied, ban_skipped)] — [ban_skipped] is true when
    the backoff scheduler banned a rule or skipped a banned one, in which
    case a quiescent clock does {e not} mean saturation. *)
(* every variable name a rule's actions mention: the matcher only needs to
   decode these (plus residual-fact vars) into result environments *)
let action_vars (actions : Ast.action list) : string list =
  let acc = ref [] in
  let rec expr = function
    | Ast.Var x -> acc := x :: !acc
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Wildcard | Ast.Lit _ -> ()
  in
  List.iter
    (function
      | Ast.A_let (_, e) | Ast.A_expr e | Ast.A_delete e -> expr e
      | Ast.A_union (e1, e2) | Ast.A_set (e1, e2) | Ast.A_cost (e1, e2) ->
        expr e1;
        expr e2
      | Ast.A_panic _ -> ())
    actions;
  !acc

let run_iteration ?ruleset t (stats : run_stats) : int * bool =
  (* cheap when the previous iteration left the graph clean: rebuild is a
     no-op unless unions are pending (the e-graph's dirty flag) *)
  let timed_rebuild () =
    let t0 = Unix.gettimeofday () in
    Egraph.rebuild t.eg;
    stats.rebuild_time <- stats.rebuild_time +. (Unix.gettimeofday () -. t0)
  in
  timed_rebuild ();
  let scan_clock = Egraph.clock t.eg in
  let idx = get_index t in
  t.iter_counter <- t.iter_counter + 1;
  let iter = t.iter_counter in
  let ban_skipped = ref false in
  (* which rules are due this iteration *)
  let due =
    List.filter
      (fun r ->
        if r.r_ruleset <> ruleset then false
        else if t.backoff && iter < r.r_banned_until then begin
          (* banned: no search; r_last_scan stays put, so the delta it will
             eventually scan still covers everything it missed *)
          ban_skipped := true;
          false
        end
        else rule_dirty t r)
      t.rules
  in
  (* resolve each rule's search path up front (compiling generic-join
     plans on first use): the search phase itself must not write any
     shared state when it runs on several domains *)
  let path r =
    if t.naive_matching then `Naive
    else begin
      let gp =
        match r.r_gplan with
        | Some gp -> gp
        | None ->
          let gp = Matcher.gcompile ~keep:(action_vars r.r_actions) idx r.r_plan in
          r.r_gplan <- Some gp;
          gp
      in
      match gp with
      | Some gp when Matcher.gp_packed_ok gp -> (
        (* handles the first scan too: since = -1 *)
        let ca =
          match r.r_capply with
          | Some ca -> ca
          | None ->
            let ca =
              compile_actions t.eg (Matcher.gp_slot_names gp)
                (Matcher.gp_slot_sorts idx gp) r.r_actions
            in
            r.r_capply <- Some ca;
            ca
        in
        match ca with Some ca -> `Packed (gp, ca) | None -> `Generic gp)
      | Some gp -> `Generic gp
      | None ->
        if r.r_last_scan >= 0 && Matcher.eligible r.r_plan then `Plan else `Naive
    end
  in
  let paths = List.map (fun r -> (r, path r)) due in
  let search (r, p) =
    let t0 = Unix.gettimeofday () in
    let ms =
      match p with
      | `Packed (gp, ca) ->
        M_packed (ca, Matcher.gsolve_packed idx gp ~since:r.r_last_scan)
      | `Generic gp -> M_envs (Matcher.gsolve idx gp ~since:r.r_last_scan)
      | `Plan -> M_envs (Matcher.solve_plan_legacy idx r.r_plan ~since:r.r_last_scan)
      | `Naive -> M_envs (Matcher.solve_facts idx r.r_facts)
    in
    (ms, Unix.gettimeofday () -. t0)
  in
  (* search phase: all rules match against the same snapshot *)
  let searched =
    let n_due = List.length paths in
    let nd = min t.jobs n_due in
    if nd <= 1 then List.map (fun rp -> (fst rp, search rp)) paths
    else begin
      (* parallel search across rule partitions.  The e-graph is strictly
         read-only here: the union-find is frozen (fully compressed, then
         lock-free walks), the value pool interns new primitives under its
         mutex, and every per-function cache a search could touch is built
         by prewarm before the first domain spawns.  Matches are merged
         back in registration order and all scheduling (budgets, bans,
         scan horizons) stays sequential, so [-jN] computes exactly what
         [-j1] does. *)
      List.iter
        (fun (r, p) ->
          Matcher.prewarm idx r.r_plan
            (match p with
            | `Packed (gp, _) | `Generic gp -> Some gp
            | `Plan | `Naive -> None))
        paths;
      let arr = Array.of_list paths in
      let results = Array.make (Array.length arr) (M_envs [], 0.) in
      Union_find.freeze (Egraph.uf t.eg) true;
      Arena.set_threadsafe (Egraph.pool t.eg) true;
      let exns = ref [] in
      let workers =
        Array.init nd (fun w ->
            Domain.spawn (fun () ->
                (* round-robin partition: worker [w] takes rules w, w+nd, … *)
                let out = ref [] in
                let i = ref w in
                while !i < Array.length arr do
                  out := (!i, search arr.(!i)) :: !out;
                  i := !i + nd
                done;
                !out))
      in
      Array.iter
        (fun d ->
          match Domain.join d with
          | res -> List.iter (fun (i, r) -> results.(i) <- r) res
          | exception e -> exns := e :: !exns)
        workers;
      Arena.set_threadsafe (Egraph.pool t.eg) false;
      Union_find.freeze (Egraph.uf t.eg) false;
      (match !exns with e :: _ -> raise e | [] -> ());
      Array.to_list (Array.mapi (fun i (r, _) -> (r, results.(i))) arr)
    end
  in
  (* sequential bookkeeping: budgets, bans, scan horizons *)
  let batches =
    List.filter_map
      (fun (r, (ms, dt)) ->
        r.r_n_searches <- r.r_n_searches + 1;
        r.r_search_time <- r.r_search_time +. dt;
        stats.search_time <- stats.search_time +. dt;
        let n = n_found ms in
        r.r_n_matches <- r.r_n_matches + n;
        let threshold = t.match_limit lsl r.r_times_banned in
        if t.backoff && n > threshold then begin
          (* over budget: discard the matches and ban the rule; both the
             budget and the ban double with each offence *)
          let ban_len = t.ban_length lsl r.r_times_banned in
          r.r_times_banned <- r.r_times_banned + 1;
          r.r_banned_until <- iter + 1 + ban_len;
          r.r_n_bans <- r.r_n_bans + 1;
          ban_skipped := true;
          None
        end
        else begin
          r.r_last_scan <- scan_clock;
          Some (r, ms)
        end)
      searched
  in
  (* apply phase *)
  let n =
    List.fold_left
      (fun acc (r, ms) ->
        let t0 = Unix.gettimeofday () in
        let k =
          match ms with
          | M_envs envs ->
            List.iter (fun env -> run_actions t env r.r_actions) envs;
            List.length envs
          | M_packed (ca, pk) ->
            (* each match applies on a scratch row blitted from the packed
               search buffer; let slots beyond the blit are always written
               before any read (reads before the let compile to globals) *)
            let scratch = Array.make (max 1 ca.ca_slots) 0 in
            let w = pk.Matcher.pk_width in
            for i = 0 to pk.Matcher.pk_rows - 1 do
              Array.blit pk.Matcher.pk_buf (i * w) scratch 0 w;
              Array.iter (run_caction t scratch) ca.ca_acts
            done;
            pk.Matcher.pk_rows
        in
        let dt = Unix.gettimeofday () -. t0 in
        r.r_n_applied <- r.r_n_applied + k;
        r.r_apply_time <- r.r_apply_time +. dt;
        stats.apply_time <- stats.apply_time +. dt;
        acc + k)
      0 batches
  in
  timed_rebuild ();
  (n, !ban_skipped)

(** Render a captured saturation exception as a structured diagnostic. *)
let diag_of_exn (e : exn) : Diag.t =
  let msg =
    match e with
    | Error m -> m
    | Egraph.Error m -> "e-graph: " ^ m
    | Matcher.Error m -> "match: " ^ m
    | Primitives.Error m -> "primitive: " ^ m
    | Extract.Error m -> "extraction: " ^ m
    | Failure m -> m
    | Stack_overflow -> "stack overflow"
    | e -> Printexc.to_string e
  in
  Diag.error "saturation-fault" "%s" msg

(** [run t n] saturates: repeats {!run_iteration} until the e-graph stops
    changing, or [n] iterations, or any {!Limits} budget (nodes, wall
    clock, memory) is exhausted.  An exception escaping a rule stops the
    run with [Fault] instead of propagating: the e-graph is rebuilt to a
    canonical state and remains extractable.  With [?ruleset], only rules
    registered in that ruleset run. *)
let run ?ruleset t n : run_stats =
  let stats =
    {
      iterations = 0;
      matches = 0;
      sat_time = 0.;
      search_time = 0.;
      apply_time = 0.;
      rebuild_time = 0.;
      stop = Saturated;
      peak_nodes = Egraph.n_nodes t.eg;
    }
  in
  let watch = Limits.start () in
  (* [n] is this call's iteration budget; the engine-wide budget, if any,
     also applies *)
  let eff_limits =
    let open Limits in
    {
      t.limits with
      max_iters =
        Some (match t.limits.max_iters with Some m -> min m n | None -> n);
    }
  in
  let gauge () =
    {
      Limits.g_iters = stats.iterations;
      g_nodes = Egraph.n_nodes t.eg;
      g_memory_words = Egraph.approx_memory_words t.eg;
      g_elapsed_ms = Limits.elapsed_ms watch;
    }
  in
  let t0 = Unix.gettimeofday () in
  (try
     let continue = ref true in
     while !continue do
       match Limits.check eff_limits (gauge ()) with
       | Some hit ->
         stats.stop <-
           (match hit with
           | Limits.L_iterations -> Iteration_limit
           | Limits.L_nodes -> Node_limit
           | Limits.L_time -> Timeout
           | Limits.L_memory -> Memory_limit);
         continue := false
       | None -> (
         let before = Egraph.clock t.eg in
         match run_iteration ?ruleset t stats with
         | exception Sys.Break -> raise Sys.Break
         | exception e ->
           (* fault isolation: canonicalize what we have and stop; the
              e-graph still holds every term found before the fault *)
           (try Egraph.rebuild t.eg with _ -> ());
           stats.stop <- Fault (diag_of_exn e);
           continue := false
         | m, ban_skipped ->
           stats.iterations <- stats.iterations + 1;
           stats.matches <- stats.matches + m;
           stats.peak_nodes <- max stats.peak_nodes (Egraph.n_nodes t.eg);
           if t.ck_every > 0 && stats.iterations mod t.ck_every = 0 then
             take_checkpoint t;
           if Egraph.clock t.eg = before then
             if not ban_skipped then begin
               (* every due rule searched and nothing changed: true fixpoint *)
               stats.stop <- Saturated;
               continue := false
             end
             else begin
               (* stalled but rules are banned: fast-forward the ban clocks so
                  the earliest ban expires next iteration (egg's can_stop);
                  budgets have doubled, so this terminates *)
               let next_iter = t.iter_counter + 1 in
               let banned =
                 List.filter
                   (fun r -> r.r_ruleset = ruleset && next_iter < r.r_banned_until)
                   t.rules
               in
               match banned with
               | [] -> ()  (* a ban expires next iteration by itself *)
               | _ ->
                 let min_until =
                   List.fold_left (fun m r -> min m r.r_banned_until) max_int banned
                 in
                 let delta = min_until - next_iter in
                 List.iter
                   (fun r -> r.r_banned_until <- r.r_banned_until - delta)
                   banned
             end)
     done
   with e ->
     stats.sat_time <- Unix.gettimeofday () -. t0;
     t.last_stats <- Some stats;
     raise e);
  (* a final checkpoint so the best-so-far term reflects the whole run,
     whatever stopped it *)
  take_checkpoint t;
  stats.peak_nodes <- max stats.peak_nodes (Egraph.n_nodes t.eg);
  stats.sat_time <- Unix.gettimeofday () -. t0;
  t.last_stats <- Some stats;
  stats

(* ------------------------------------------------------------------ *)
(* Command execution                                                   *)
(* ------------------------------------------------------------------ *)

let make_merge_fn (e : Ast.expr) : Value.t -> Value.t -> Value.t =
  let rec ev env (e : Ast.expr) : Value.t =
    match e with
    | Var "old" -> fst env
    | Var "new" -> snd env
    | Lit l -> Matcher.value_of_lit l
    | Call (f, args) when Primitives.is_primitive f ->
      Primitives.apply f (List.map (ev env) args)
    | _ -> error "unsupported :merge expression %a" Ast.pp_expr e
  in
  fun old_v new_v -> ev (old_v, new_v) e

let declare_function t (d : Ast.func_decl) =
  ignore
    (Egraph.declare_function t.eg ~name:d.f_name ~args:d.f_args ~ret:d.f_ret
       ~cost:d.f_cost
       ~merge:(Option.map make_merge_fn d.f_merge)
       ~unextractable:d.f_unextractable)

(* function tables referenced by a rule's premises: a rule can only gain
   new matches after one of these tables changes (insert, output change,
   delete, or canonicalization after a union) *)
let fact_refs (facts : Ast.fact list) : Symbol.t list =
  let acc = ref [] in
  let rec go_expr (e : Ast.expr) =
    match e with
    | Call (f, args) ->
      if not (Primitives.is_primitive f) then begin
        let sym = Symbol.intern f in
        if not (List.exists (Symbol.equal sym) !acc) then acc := sym :: !acc
      end;
      List.iter go_expr args
    | Var _ | Wildcard | Lit _ -> ()
  in
  List.iter
    (function Ast.F_eq es -> List.iter go_expr es | Ast.F_expr e -> go_expr e)
    facts;
  !acc

let check_ruleset t = function
  | None -> ()
  | Some rs -> if not (List.mem rs t.rulesets) then error "unknown ruleset %s" rs

let add_rule t ?name ?ruleset facts actions =
  check_ruleset t ruleset;
  t.rule_counter <- t.rule_counter + 1;
  let r_name =
    match name with Some n -> n | None -> Printf.sprintf "rule-%d" t.rule_counter
  in
  t.rules <-
    t.rules
    @ [
        {
          r_name;
          r_facts = facts;
          r_actions = actions;
          r_ruleset = ruleset;
          r_refs = fact_refs facts;
          r_plan = Matcher.compile facts;
          r_gplan = None;
          r_capply = None;
          r_last_scan = -1;
          r_times_banned = 0;
          r_banned_until = 0;
          r_n_searches = 0;
          r_n_matches = 0;
          r_n_applied = 0;
          r_n_bans = 0;
          r_search_time = 0.;
          r_apply_time = 0.;
        };
      ]

(** Desugar [(rewrite lhs rhs :when conds)] into a rule. *)
let add_rewrite t ?ruleset ~(lhs : Ast.expr) ~(rhs : Ast.expr) ~(conds : Ast.fact list) () =
  let root = "?__rewrite_root" in
  add_rule t ?ruleset
    (Ast.F_eq [ Var root; lhs ] :: conds)
    [ Ast.A_union (Var root, rhs) ]

let emit t o = t.outputs <- o :: t.outputs

let run_command t (c : Ast.command) : unit =
  match c with
  | C_sort (name, None) -> Egraph.declare_sort t.eg name
  | C_sort (name, Some ("Vec", [ elem ])) -> Egraph.declare_vec_sort t.eg name elem
  | C_sort (_, Some (container, _)) -> error "unsupported container sort %s" container
  | C_datatype (name, variants) ->
    if not (Egraph.sort_declared t.eg name) then Egraph.declare_sort t.eg name;
    List.iter
      (fun (v : Ast.variant) ->
        declare_function t
          {
            f_name = v.v_name;
            f_args = v.v_args;
            f_ret = name;
            f_cost = v.v_cost;
            f_merge = None;
            f_unextractable = false;
          })
      variants
  | C_function d ->
    if not (Egraph.sort_declared t.eg d.f_ret) then
      error "function %s: unknown return sort %s" d.f_name d.f_ret;
    declare_function t d
  | C_relation (name, args) ->
    declare_function t
      {
        f_name = name;
        f_args = args;
        f_ret = "Unit";
        f_cost = None;
        f_merge = None;
        f_unextractable = false;
      }
  | C_let (x, e) ->
    if Hashtbl.mem t.globals x then error "global %s already defined" x;
    let v = eval t Matcher.Env.empty e in
    Hashtbl.replace t.globals x v
  | C_ruleset name ->
    if List.mem name t.rulesets then error "ruleset %s already declared" name;
    t.rulesets <- t.rulesets @ [ name ]
  | C_rewrite { lhs; rhs; conds; bidirectional; ruleset } ->
    check_ruleset t ruleset;
    add_rewrite t ?ruleset ~lhs ~rhs ~conds ();
    if bidirectional then add_rewrite t ?ruleset ~lhs:rhs ~rhs:lhs ~conds ()
  | C_rule { name; facts; actions; ruleset } -> add_rule t ?name ?ruleset facts actions
  | C_action a ->
    ignore (run_action t Matcher.Env.empty a);
    Egraph.rebuild t.eg
  | C_run (n, ruleset) ->
    check_ruleset t ruleset;
    let stats = run ?ruleset t n in
    emit t (O_ran stats)
  | C_extract (e, n) ->
    let v = eval t Matcher.Env.empty e in
    Egraph.rebuild t.eg;
    if n <= 1 then begin
      let term, cost = Extract.extract t.eg v in
      emit t (O_extracted (term, cost))
    end
    else begin
      let st = Extract.make t.eg in
      match Egraph.canon t.eg v with
      | Eclass cls -> emit t (O_variants (Extract.variants st cls n))
      | prim -> emit t (O_variants [ (Extract.prim prim, 0) ])
    end
  | C_check facts ->
    Egraph.rebuild t.eg;
    let envs = Matcher.solve_facts (get_index t) facts in
    if envs = [] then
      error "check failed: %a" Fmt.(list ~sep:sp Ast.pp_fact) facts
    else emit t O_checked
  | C_print_function (name, n) ->
    let fn = Egraph.find_func t.eg (Symbol.intern name) in
    let buf = Buffer.create 256 in
    let count = ref 0 in
    Egraph.iter_rows t.eg fn (fun args out ->
        if !count < n then begin
          incr count;
          Buffer.add_string buf
            (Fmt.str "(%s %a) -> %a\n" name
               Fmt.(array ~sep:sp Value.pp)
               args Value.pp out)
        end);
    emit t (O_msg (Buffer.contents buf))
  | C_print_stats -> emit t (O_msg (Fmt.str "%a" Egraph.pp_stats t.eg))
  | C_push ->
    t.snapshots <-
      {
        s_eg = Egraph.copy t.eg;
        s_globals = Hashtbl.copy t.globals;
        s_rules = t.rules;
        s_rulesets = t.rulesets;
      }
      :: t.snapshots
  | C_pop -> (
    match t.snapshots with
    | [] -> error "pop without a matching push"
    | s :: rest ->
      t.eg <- s.s_eg;
      t.globals <- s.s_globals;
      t.rules <- s.s_rules;
      t.rulesets <- s.s_rulesets;
      t.snapshots <- rest;
      (* the restored graph has an older clock: scan horizons and ban
         clocks recorded against the discarded graph are meaningless now *)
      t.idx <- None;
      List.iter
        (fun r ->
          r.r_last_scan <- -1;
          r.r_banned_until <- 0;
          (* compiled appliers hold function records of the discarded
             graph — recompile against the restored one *)
          r.r_capply <- None)
        t.rules;
      (* applied-cost memo refers to the discarded graph's codes *)
      Hashtbl.reset t.costs_applied)

(** Execute a list of commands; outputs are appended to [t.outputs]. *)
let run_commands t cmds = List.iter (run_command t) cmds

(** Execute Egglog source text. *)
let run_string t src = run_commands t (Parser.parse_program src)

(** Outputs in execution order. *)
let outputs t = List.rev t.outputs

(** The last extraction result, if any. *)
let last_extracted t =
  List.find_map (function O_extracted (term, cost) -> Some (term, cost) | _ -> None) t.outputs

(** The most recent saturation statistics, if any. *)
let last_stats t = t.last_stats

(** Convenience: parse and run a complete program in a fresh engine. *)
let run_program ?max_nodes ?timeout (src : string) : t * output list =
  let t = create ?max_nodes ?timeout () in
  run_string t src;
  (t, outputs t)
