(** The Egglog command interpreter: executes programs against an e-graph.

    This is the engine façade used by DialEgg: feed it commands (parsed from
    [.egg] text or built programmatically), then inspect extraction results
    and saturation statistics. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type rule = {
  r_name : string;
  r_facts : Ast.fact list;
  r_actions : Ast.action list;
  r_ruleset : string option;  (** [None] = the default ruleset *)
  r_refs : Symbol.t list;  (** function tables the premises read *)
  r_plan : Matcher.plan;  (** compiled premises for seminaive matching *)
  mutable r_last_scan : int;  (** e-graph clock at the last match scan *)
  (* backoff scheduler state (egg's BackoffScheduler) *)
  mutable r_times_banned : int;
  mutable r_banned_until : int;  (** absolute iteration number; banned while
                                     [iteration < r_banned_until] *)
  (* lifetime statistics *)
  mutable r_n_searches : int;
  mutable r_n_matches : int;  (** matches found (including discarded) *)
  mutable r_n_applied : int;  (** matches actually applied *)
  mutable r_n_bans : int;
  mutable r_search_time : float;
  mutable r_apply_time : float;
}

(** Immutable snapshot of one rule's saturation statistics. *)
type rule_stat = {
  rs_name : string;
  rs_ruleset : string option;
  rs_searches : int;
  rs_matches : int;
  rs_applied : int;
  rs_bans : int;
  rs_search_time : float;
  rs_apply_time : float;
}

(** Why a [(run n)] stopped.  [Fault] carries the structured diagnostic of
    an exception captured mid-saturation (rule panic, merge conflict,
    primitive error): the run stops, the e-graph is re-canonicalized, and
    whatever it contains — at minimum the original program — remains
    extractable. *)
type stop_reason =
  | Saturated
  | Iteration_limit
  | Node_limit
  | Timeout
  | Memory_limit
  | Fault of Diag.t

let pp_stop_reason ppf = function
  | Saturated -> Fmt.string ppf "saturated"
  | Iteration_limit -> Fmt.string ppf "iteration limit"
  | Node_limit -> Fmt.string ppf "node limit"
  | Timeout -> Fmt.string ppf "timeout"
  | Memory_limit -> Fmt.string ppf "memory limit"
  | Fault d -> Fmt.pf ppf "fault: %s" (Diag.to_string d)

(** True saturation: the run reached a fixpoint rather than a budget. *)
let stopped_saturated = function Saturated -> true | _ -> false

(** Did the run stop on a resource budget (as opposed to saturating or
    faulting)? *)
let stopped_on_limit = function
  | Iteration_limit | Node_limit | Timeout | Memory_limit -> true
  | Saturated | Fault _ -> false

type run_stats = {
  mutable iterations : int;
  mutable matches : int;  (** total rule matches applied *)
  mutable sat_time : float;  (** seconds spent in [(run n)] *)
  mutable search_time : float;  (** seconds in rule search (e-matching) *)
  mutable apply_time : float;  (** seconds applying rule actions *)
  mutable stop : stop_reason;
  mutable peak_nodes : int;  (** largest e-graph size seen during the run *)
}

type output =
  | O_extracted of Extract.term * int  (** term and its cost *)
  | O_variants of (Extract.term * int) list  (** cheapest-first variants *)
  | O_checked
  | O_ran of run_stats
  | O_msg of string

(** An anytime checkpoint: the best extraction of the checkpoint root seen
    so far, recorded periodically during saturation so that a limit or a
    fault still yields a result. *)
type checkpoint = { ck_term : Extract.term; ck_cost : int; ck_iteration : int }

type t = {
  mutable eg : Egraph.t;
  mutable globals : (string, Value.t) Hashtbl.t;
  mutable rules : rule list;  (** in registration order *)
  mutable rulesets : string list;  (** declared ruleset names *)
  mutable rule_counter : int;
  mutable limits : Limits.t;  (** resource budgets for saturation *)
  mutable last_stats : run_stats option;
  mutable outputs : output list;  (** reverse order *)
  mutable snapshots : snapshot list;  (** push/pop stack *)
  mutable disable_dirty_skip : bool;
      (** testing/ablation: always rescan every rule *)
  mutable naive_matching : bool;
      (** fall back to full re-matching instead of seminaive deltas *)
  mutable backoff : bool;  (** enable the backoff rule scheduler *)
  mutable match_limit : int;  (** scheduler: base per-rule match budget *)
  mutable ban_length : int;  (** scheduler: base ban duration (iterations) *)
  mutable iter_counter : int;
      (** absolute iteration count across all [(run)]s — the scheduler's
          time base for bans *)
  mutable idx : Matcher.index option;
      (** cached persistent matcher index; invalidated when [eg] is
          replaced (pop) *)
  mutable ck_root : Value.t option;
      (** value whose best extraction the anytime checkpoints track *)
  mutable ck_every : int;
      (** checkpoint every n successful iterations (0 = only on demand) *)
  mutable best_ck : checkpoint option;
}

and snapshot = {
  s_eg : Egraph.t;
  s_globals : (string, Value.t) Hashtbl.t;
  s_rules : rule list;
  s_rulesets : string list;
}

let create ?(max_nodes = 200_000) ?timeout ?limits () =
  let limits =
    match limits with
    | Some l -> l
    | None ->
      Limits.make ~max_nodes
        ?max_time_ms:(Option.map (fun s -> s *. 1000.) timeout)
        ()
  in
  {
    eg = Egraph.create ();
    globals = Hashtbl.create 64;
    rules = [];
    rulesets = [];
    rule_counter = 0;
    limits;
    last_stats = None;
    outputs = [];
    snapshots = [];
    disable_dirty_skip = false;
    naive_matching = false;
    backoff = true;
    match_limit = 1000;
    ban_length = 5;
    iter_counter = 0;
    idx = None;
    ck_root = None;
    ck_every = 0;
    best_ck = None;
  }

let set_disable_dirty_skip t b = t.disable_dirty_skip <- b
let set_limits t l = t.limits <- l
let limits t = t.limits
let set_naive_matching t b = t.naive_matching <- b
let set_backoff t b = t.backoff <- b
let set_match_limit t n = t.match_limit <- n
let set_ban_length t n = t.ban_length <- n
let egraph t = t.eg
let globals t = t.globals

(** The persistent matcher index for the current e-graph (created lazily,
    reused across iterations and runs). *)
let get_index t =
  match t.idx with
  | Some idx -> idx
  | None ->
    let idx = Matcher.make_index t.eg t.globals in
    t.idx <- Some idx;
    idx

let rule_stats t : rule_stat list =
  List.map
    (fun r ->
      {
        rs_name = r.r_name;
        rs_ruleset = r.r_ruleset;
        rs_searches = r.r_n_searches;
        rs_matches = r.r_n_matches;
        rs_applied = r.r_n_applied;
        rs_bans = r.r_n_bans;
        rs_search_time = r.r_search_time;
        rs_apply_time = r.r_apply_time;
      })
    t.rules

(** Value of global let-binding [x]. *)
let global t x =
  match Hashtbl.find_opt t.globals x with
  | Some v -> v
  | None -> error "unknown global %s" x

let global_opt t x = Hashtbl.find_opt t.globals x

(* ------------------------------------------------------------------ *)
(* Expression evaluation in action position (may create e-nodes)       *)
(* ------------------------------------------------------------------ *)

let rec eval t (env : Matcher.env) (e : Ast.expr) : Value.t =
  match e with
  | Var x -> (
    match Matcher.Env.find_opt x env with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt t.globals x with
      | Some v -> v
      | None -> error "unbound name %s" x))
  | Wildcard -> error "wildcard in expression position"
  | Lit l -> Matcher.value_of_lit l
  | Call (f, args) ->
    let vals = List.map (eval t env) args in
    if Primitives.is_primitive f then
      try Primitives.apply f vals
      with Primitives.Error msg -> error "primitive error: %s" msg
    else begin
      let fn = Egraph.find_func t.eg (Symbol.intern f) in
      match Egraph.apply t.eg fn (Array.of_list vals) with
      | Some v -> v
      | None ->
        error "(%s ...) has no defined output (use set before reading it)" f
    end

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let rec run_action t (env : Matcher.env) (a : Ast.action) : Matcher.env =
  match a with
  | A_let (x, e) ->
    let v = eval t env e in
    Matcher.Env.add x v env
  | A_union (a, b) ->
    let va = eval t env a and vb = eval t env b in
    Egraph.union_values t.eg va vb;
    env
  | A_set (Call (f, args), rhs) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    let out = eval t env rhs in
    Egraph.set t.eg fn (Array.of_list vals) out;
    env
  | A_set (e, _) -> error "set expects a function application, got %a" Ast.pp_expr e
  | A_expr e ->
    ignore (eval t env e);
    env
  | A_cost (Call (f, args), c) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    (* make sure the e-node exists, then attach the cost override *)
    ignore (Egraph.apply t.eg fn (Array.of_list vals));
    let cost =
      match eval t env c with
      | I64 n -> Int64.to_int n
      | v -> error "unstable-cost expects an i64 cost, got %a" Value.pp v
    in
    Egraph.set_cost t.eg fn (Array.of_list vals) cost;
    env
  | A_cost (e, _) -> error "unstable-cost expects an e-node application, got %a" Ast.pp_expr e
  | A_delete (Call (f, args)) ->
    let fn = Egraph.find_func t.eg (Symbol.intern f) in
    let vals = List.map (eval t env) args in
    Egraph.delete t.eg fn (Array.of_list vals);
    env
  | A_delete e -> error "delete expects a function application, got %a" Ast.pp_expr e
  | A_panic msg -> error "panic: %s" msg

and run_actions t env actions = ignore (List.fold_left (run_action t) env actions)

(* ------------------------------------------------------------------ *)
(* Anytime checkpoints                                                 *)
(* ------------------------------------------------------------------ *)

(** Extract the checkpoint root from the current e-graph and keep the
    result if it beats the best seen so far.  Never raises: a checkpoint
    attempt that fails (e.g. the root class has no finite-cost term yet,
    or the graph is mid-fault) simply records nothing — the previous best
    survives. *)
let take_checkpoint t =
  match t.ck_root with
  | None -> ()
  | Some root -> (
    try
      Egraph.rebuild t.eg;
      let term, cost = Extract.extract t.eg root in
      match t.best_ck with
      | Some ck when ck.ck_cost <= cost -> ()
      | _ ->
        t.best_ck <- Some { ck_term = term; ck_cost = cost; ck_iteration = t.iter_counter }
    with _ -> ())

(** Track [root]'s best extraction with a checkpoint every [every]
    successful iterations (and once immediately, so a crash on iteration 1
    still has the input program to fall back to). *)
let set_checkpoint_root ?(every = 4) t root =
  t.ck_root <- Some root;
  t.ck_every <- max 0 every;
  t.best_ck <- None;
  take_checkpoint t

let best_checkpoint t = t.best_ck

(* ------------------------------------------------------------------ *)
(* Saturation                                                          *)
(* ------------------------------------------------------------------ *)

(** Is [r] due for a rescan?  A rule can only gain new matches after one of
    its referenced tables changes. *)
let rule_dirty t r =
  t.disable_dirty_skip || r.r_last_scan < 0
  || List.exists
       (fun sym ->
         match Egraph.find_func_opt t.eg sym with
         | Some f -> f.Egraph.last_modified > r.r_last_scan
         | None -> true)
       r.r_refs

(** Run one saturation iteration: search every due rule (seminaive deltas by
    default), then apply all matches in a second phase, then rebuild.
    Returns [(matches_applied, ban_skipped)] — [ban_skipped] is true when
    the backoff scheduler banned a rule or skipped a banned one, in which
    case a quiescent clock does {e not} mean saturation. *)
let run_iteration ?ruleset t (stats : run_stats) : int * bool =
  (* cheap when the previous iteration left the graph clean: rebuild is a
     no-op unless unions are pending (the e-graph's dirty flag) *)
  Egraph.rebuild t.eg;
  let scan_clock = Egraph.clock t.eg in
  let idx = get_index t in
  t.iter_counter <- t.iter_counter + 1;
  let iter = t.iter_counter in
  let ban_skipped = ref false in
  (* search phase: all rules match against the same snapshot *)
  let batches =
    List.filter_map
      (fun r ->
        if r.r_ruleset <> ruleset then None
        else if t.backoff && iter < r.r_banned_until then begin
          (* banned: no search; r_last_scan stays put, so the delta it will
             eventually scan still covers everything it missed *)
          ban_skipped := true;
          None
        end
        else if not (rule_dirty t r) then None
        else begin
          let t0 = Unix.gettimeofday () in
          let envs =
            if (not t.naive_matching) && r.r_last_scan >= 0 && Matcher.eligible r.r_plan
            then Matcher.solve_plan idx r.r_plan ~since:r.r_last_scan
            else Matcher.solve_facts idx r.r_facts
          in
          let dt = Unix.gettimeofday () -. t0 in
          r.r_n_searches <- r.r_n_searches + 1;
          r.r_search_time <- r.r_search_time +. dt;
          stats.search_time <- stats.search_time +. dt;
          let n = List.length envs in
          r.r_n_matches <- r.r_n_matches + n;
          let threshold = t.match_limit lsl r.r_times_banned in
          if t.backoff && n > threshold then begin
            (* over budget: discard the matches and ban the rule; both the
               budget and the ban double with each offence *)
            let ban_len = t.ban_length lsl r.r_times_banned in
            r.r_times_banned <- r.r_times_banned + 1;
            r.r_banned_until <- iter + 1 + ban_len;
            r.r_n_bans <- r.r_n_bans + 1;
            ban_skipped := true;
            None
          end
          else begin
            r.r_last_scan <- scan_clock;
            Some (r, envs)
          end
        end)
      t.rules
  in
  (* apply phase *)
  let n =
    List.fold_left
      (fun acc (r, envs) ->
        let t0 = Unix.gettimeofday () in
        List.iter (fun env -> run_actions t env r.r_actions) envs;
        let dt = Unix.gettimeofday () -. t0 in
        let k = List.length envs in
        r.r_n_applied <- r.r_n_applied + k;
        r.r_apply_time <- r.r_apply_time +. dt;
        stats.apply_time <- stats.apply_time +. dt;
        acc + k)
      0 batches
  in
  Egraph.rebuild t.eg;
  (n, !ban_skipped)

(** Render a captured saturation exception as a structured diagnostic. *)
let diag_of_exn (e : exn) : Diag.t =
  let msg =
    match e with
    | Error m -> m
    | Egraph.Error m -> "e-graph: " ^ m
    | Matcher.Error m -> "match: " ^ m
    | Primitives.Error m -> "primitive: " ^ m
    | Extract.Error m -> "extraction: " ^ m
    | Failure m -> m
    | Stack_overflow -> "stack overflow"
    | e -> Printexc.to_string e
  in
  Diag.error "saturation-fault" "%s" msg

(** [run t n] saturates: repeats {!run_iteration} until the e-graph stops
    changing, or [n] iterations, or any {!Limits} budget (nodes, wall
    clock, memory) is exhausted.  An exception escaping a rule stops the
    run with [Fault] instead of propagating: the e-graph is rebuilt to a
    canonical state and remains extractable.  With [?ruleset], only rules
    registered in that ruleset run. *)
let run ?ruleset t n : run_stats =
  let stats =
    {
      iterations = 0;
      matches = 0;
      sat_time = 0.;
      search_time = 0.;
      apply_time = 0.;
      stop = Saturated;
      peak_nodes = Egraph.n_nodes t.eg;
    }
  in
  let watch = Limits.start () in
  (* [n] is this call's iteration budget; the engine-wide budget, if any,
     also applies *)
  let eff_limits =
    let open Limits in
    {
      t.limits with
      max_iters =
        Some (match t.limits.max_iters with Some m -> min m n | None -> n);
    }
  in
  let gauge () =
    {
      Limits.g_iters = stats.iterations;
      g_nodes = Egraph.n_nodes t.eg;
      g_memory_words = Egraph.approx_memory_words t.eg;
      g_elapsed_ms = Limits.elapsed_ms watch;
    }
  in
  let t0 = Unix.gettimeofday () in
  (try
     let continue = ref true in
     while !continue do
       match Limits.check eff_limits (gauge ()) with
       | Some hit ->
         stats.stop <-
           (match hit with
           | Limits.L_iterations -> Iteration_limit
           | Limits.L_nodes -> Node_limit
           | Limits.L_time -> Timeout
           | Limits.L_memory -> Memory_limit);
         continue := false
       | None -> (
         let before = Egraph.clock t.eg in
         match run_iteration ?ruleset t stats with
         | exception Sys.Break -> raise Sys.Break
         | exception e ->
           (* fault isolation: canonicalize what we have and stop; the
              e-graph still holds every term found before the fault *)
           (try Egraph.rebuild t.eg with _ -> ());
           stats.stop <- Fault (diag_of_exn e);
           continue := false
         | m, ban_skipped ->
           stats.iterations <- stats.iterations + 1;
           stats.matches <- stats.matches + m;
           stats.peak_nodes <- max stats.peak_nodes (Egraph.n_nodes t.eg);
           if t.ck_every > 0 && stats.iterations mod t.ck_every = 0 then
             take_checkpoint t;
           if Egraph.clock t.eg = before then
             if not ban_skipped then begin
               (* every due rule searched and nothing changed: true fixpoint *)
               stats.stop <- Saturated;
               continue := false
             end
             else begin
               (* stalled but rules are banned: fast-forward the ban clocks so
                  the earliest ban expires next iteration (egg's can_stop);
                  budgets have doubled, so this terminates *)
               let next_iter = t.iter_counter + 1 in
               let banned =
                 List.filter
                   (fun r -> r.r_ruleset = ruleset && next_iter < r.r_banned_until)
                   t.rules
               in
               match banned with
               | [] -> ()  (* a ban expires next iteration by itself *)
               | _ ->
                 let min_until =
                   List.fold_left (fun m r -> min m r.r_banned_until) max_int banned
                 in
                 let delta = min_until - next_iter in
                 List.iter
                   (fun r -> r.r_banned_until <- r.r_banned_until - delta)
                   banned
             end)
     done
   with e ->
     stats.sat_time <- Unix.gettimeofday () -. t0;
     t.last_stats <- Some stats;
     raise e);
  (* a final checkpoint so the best-so-far term reflects the whole run,
     whatever stopped it *)
  take_checkpoint t;
  stats.peak_nodes <- max stats.peak_nodes (Egraph.n_nodes t.eg);
  stats.sat_time <- Unix.gettimeofday () -. t0;
  t.last_stats <- Some stats;
  stats

(* ------------------------------------------------------------------ *)
(* Command execution                                                   *)
(* ------------------------------------------------------------------ *)

let make_merge_fn (e : Ast.expr) : Value.t -> Value.t -> Value.t =
  let rec ev env (e : Ast.expr) : Value.t =
    match e with
    | Var "old" -> fst env
    | Var "new" -> snd env
    | Lit l -> Matcher.value_of_lit l
    | Call (f, args) when Primitives.is_primitive f ->
      Primitives.apply f (List.map (ev env) args)
    | _ -> error "unsupported :merge expression %a" Ast.pp_expr e
  in
  fun old_v new_v -> ev (old_v, new_v) e

let declare_function t (d : Ast.func_decl) =
  ignore
    (Egraph.declare_function t.eg ~name:d.f_name ~args:d.f_args ~ret:d.f_ret
       ~cost:d.f_cost
       ~merge:(Option.map make_merge_fn d.f_merge)
       ~unextractable:d.f_unextractable)

(* function tables referenced by a rule's premises: a rule can only gain
   new matches after one of these tables changes (insert, output change,
   delete, or canonicalization after a union) *)
let fact_refs (facts : Ast.fact list) : Symbol.t list =
  let acc = ref [] in
  let rec go_expr (e : Ast.expr) =
    match e with
    | Call (f, args) ->
      if not (Primitives.is_primitive f) then begin
        let sym = Symbol.intern f in
        if not (List.exists (Symbol.equal sym) !acc) then acc := sym :: !acc
      end;
      List.iter go_expr args
    | Var _ | Wildcard | Lit _ -> ()
  in
  List.iter
    (function Ast.F_eq es -> List.iter go_expr es | Ast.F_expr e -> go_expr e)
    facts;
  !acc

let check_ruleset t = function
  | None -> ()
  | Some rs -> if not (List.mem rs t.rulesets) then error "unknown ruleset %s" rs

let add_rule t ?name ?ruleset facts actions =
  check_ruleset t ruleset;
  t.rule_counter <- t.rule_counter + 1;
  let r_name =
    match name with Some n -> n | None -> Printf.sprintf "rule-%d" t.rule_counter
  in
  t.rules <-
    t.rules
    @ [
        {
          r_name;
          r_facts = facts;
          r_actions = actions;
          r_ruleset = ruleset;
          r_refs = fact_refs facts;
          r_plan = Matcher.compile facts;
          r_last_scan = -1;
          r_times_banned = 0;
          r_banned_until = 0;
          r_n_searches = 0;
          r_n_matches = 0;
          r_n_applied = 0;
          r_n_bans = 0;
          r_search_time = 0.;
          r_apply_time = 0.;
        };
      ]

(** Desugar [(rewrite lhs rhs :when conds)] into a rule. *)
let add_rewrite t ?ruleset ~(lhs : Ast.expr) ~(rhs : Ast.expr) ~(conds : Ast.fact list) () =
  let root = "?__rewrite_root" in
  add_rule t ?ruleset
    (Ast.F_eq [ Var root; lhs ] :: conds)
    [ Ast.A_union (Var root, rhs) ]

let emit t o = t.outputs <- o :: t.outputs

let run_command t (c : Ast.command) : unit =
  match c with
  | C_sort (name, None) -> Egraph.declare_sort t.eg name
  | C_sort (name, Some ("Vec", [ elem ])) -> Egraph.declare_vec_sort t.eg name elem
  | C_sort (_, Some (container, _)) -> error "unsupported container sort %s" container
  | C_datatype (name, variants) ->
    if not (Egraph.sort_declared t.eg name) then Egraph.declare_sort t.eg name;
    List.iter
      (fun (v : Ast.variant) ->
        declare_function t
          {
            f_name = v.v_name;
            f_args = v.v_args;
            f_ret = name;
            f_cost = v.v_cost;
            f_merge = None;
            f_unextractable = false;
          })
      variants
  | C_function d ->
    if not (Egraph.sort_declared t.eg d.f_ret) then
      error "function %s: unknown return sort %s" d.f_name d.f_ret;
    declare_function t d
  | C_relation (name, args) ->
    declare_function t
      {
        f_name = name;
        f_args = args;
        f_ret = "Unit";
        f_cost = None;
        f_merge = None;
        f_unextractable = false;
      }
  | C_let (x, e) ->
    if Hashtbl.mem t.globals x then error "global %s already defined" x;
    let v = eval t Matcher.Env.empty e in
    Hashtbl.replace t.globals x v
  | C_ruleset name ->
    if List.mem name t.rulesets then error "ruleset %s already declared" name;
    t.rulesets <- t.rulesets @ [ name ]
  | C_rewrite { lhs; rhs; conds; bidirectional; ruleset } ->
    check_ruleset t ruleset;
    add_rewrite t ?ruleset ~lhs ~rhs ~conds ();
    if bidirectional then add_rewrite t ?ruleset ~lhs:rhs ~rhs:lhs ~conds ()
  | C_rule { name; facts; actions; ruleset } -> add_rule t ?name ?ruleset facts actions
  | C_action a ->
    ignore (run_action t Matcher.Env.empty a);
    Egraph.rebuild t.eg
  | C_run (n, ruleset) ->
    check_ruleset t ruleset;
    let stats = run ?ruleset t n in
    emit t (O_ran stats)
  | C_extract (e, n) ->
    let v = eval t Matcher.Env.empty e in
    Egraph.rebuild t.eg;
    if n <= 1 then begin
      let term, cost = Extract.extract t.eg v in
      emit t (O_extracted (term, cost))
    end
    else begin
      let st = Extract.make t.eg in
      match Egraph.canon t.eg v with
      | Eclass cls -> emit t (O_variants (Extract.variants st cls n))
      | prim -> emit t (O_variants [ (Extract.prim prim, 0) ])
    end
  | C_check facts ->
    Egraph.rebuild t.eg;
    let envs = Matcher.solve_facts (get_index t) facts in
    if envs = [] then
      error "check failed: %a" Fmt.(list ~sep:sp Ast.pp_fact) facts
    else emit t O_checked
  | C_print_function (name, n) ->
    let fn = Egraph.find_func t.eg (Symbol.intern name) in
    let buf = Buffer.create 256 in
    let count = ref 0 in
    Egraph.iter_rows t.eg fn (fun args out ->
        if !count < n then begin
          incr count;
          Buffer.add_string buf
            (Fmt.str "(%s %a) -> %a\n" name
               Fmt.(array ~sep:sp Value.pp)
               args Value.pp out)
        end);
    emit t (O_msg (Buffer.contents buf))
  | C_print_stats -> emit t (O_msg (Fmt.str "%a" Egraph.pp_stats t.eg))
  | C_push ->
    t.snapshots <-
      {
        s_eg = Egraph.copy t.eg;
        s_globals = Hashtbl.copy t.globals;
        s_rules = t.rules;
        s_rulesets = t.rulesets;
      }
      :: t.snapshots
  | C_pop -> (
    match t.snapshots with
    | [] -> error "pop without a matching push"
    | s :: rest ->
      t.eg <- s.s_eg;
      t.globals <- s.s_globals;
      t.rules <- s.s_rules;
      t.rulesets <- s.s_rulesets;
      t.snapshots <- rest;
      (* the restored graph has an older clock: scan horizons and ban
         clocks recorded against the discarded graph are meaningless now *)
      t.idx <- None;
      List.iter
        (fun r ->
          r.r_last_scan <- -1;
          r.r_banned_until <- 0)
        t.rules)

(** Execute a list of commands; outputs are appended to [t.outputs]. *)
let run_commands t cmds = List.iter (run_command t) cmds

(** Execute Egglog source text. *)
let run_string t src = run_commands t (Parser.parse_program src)

(** Outputs in execution order. *)
let outputs t = List.rev t.outputs

(** The last extraction result, if any. *)
let last_extracted t =
  List.find_map (function O_extracted (term, cost) -> Some (term, cost) | _ -> None) t.outputs

(** The most recent saturation statistics, if any. *)
let last_stats t = t.last_stats

(** Convenience: parse and run a complete program in a fresh engine. *)
let run_program ?max_nodes ?timeout (src : string) : t * output list =
  let t = create ?max_nodes ?timeout () in
  run_string t src;
  (t, outputs t)
