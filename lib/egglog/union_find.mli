(** Union-find (disjoint sets) over dense integer ids, with path halving
    and union by rank.  E-class ids are allocated with {!fresh} and merged
    with {!union}. *)

type t

(** [create ()] is an empty structure (no ids allocated). *)
val create : ?capacity:int -> unit -> t

(** Number of ids allocated so far. *)
val size : t -> int

(** Allocate a new id that is its own representative. *)
val fresh : t -> int

(** Canonical representative of [x]'s set.
    @raise Invalid_argument if [x] was never allocated. *)
val find : t -> int -> int

(** Merge two sets; returns the representative of the merged set. *)
val union : t -> int -> int -> int

(** Are the two ids in the same set? *)
val same : t -> int -> int -> bool

(** Is [x] the representative of its set? *)
val is_canonical : t -> int -> bool

(** [freeze t on] toggles read-only mode.  Freezing first compresses every
    parent chain, then {!find} stops path-halving (safe to call from
    several domains concurrently) and {!union}/{!fresh} raise
    [Invalid_argument] until thawed with [freeze t false]. *)
val freeze : t -> bool -> unit

(** Deep copy (for push/pop snapshots). *)
val copy : t -> t
