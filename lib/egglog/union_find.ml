(** Union-find (disjoint sets) over dense integer identifiers.

    The e-graph allocates e-class ids densely from 0; this structure tracks
    which ids have been unified.  Uses path halving and union by rank.  The
    structure grows on demand. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable size : int; (* number of allocated ids *)
  mutable frozen : bool;
      (* while frozen, [find] must not path-halve: the structure is being
         read concurrently from several domains (parallel rule search) and
         any write to [parent] would be a data race.  Unions are forbidden
         while frozen. *)
}

let create ?(capacity = 64) () =
  {
    parent = Array.init capacity Fun.id;
    rank = Array.make capacity 0;
    size = 0;
    frozen = false;
  }

(** Number of ids allocated so far. *)
let size t = t.size

let ensure_capacity t n =
  let cap = Array.length t.parent in
  if n > cap then begin
    let new_cap = max n (cap * 2) in
    let parent = Array.init new_cap (fun i -> if i < cap then t.parent.(i) else i) in
    let rank = Array.make new_cap 0 in
    Array.blit t.rank 0 rank 0 cap;
    t.parent <- parent;
    t.rank <- rank
  end

(** [fresh t] allocates a new id that is its own representative. *)
let fresh t =
  let id = t.size in
  ensure_capacity t (id + 1);
  t.parent.(id) <- id;
  t.rank.(id) <- 0;
  t.size <- id + 1;
  id

(** [find t x] returns the canonical representative of [x]'s set.
    Raises [Invalid_argument] if [x] was never allocated. *)
let find t x =
  if x < 0 || x >= t.size then invalid_arg "Union_find.find: id out of range";
  if t.frozen then begin
    (* read-only walk: no path halving while other domains may be reading *)
    let rec ro x =
      let p = t.parent.(x) in
      if p = x then x else ro p
    in
    ro x
  end
  else
    let rec go x =
      let p = t.parent.(x) in
      if p = x then x
      else begin
        (* path halving *)
        let gp = t.parent.(p) in
        t.parent.(x) <- gp;
        go gp
      end
    in
    go x

(** [freeze t on] toggles read-only mode: while frozen, {!find} walks
    parent chains without path halving (safe for concurrent readers) and
    {!union}/{!fresh} are rejected.  Before freezing, every chain is fully
    compressed so the concurrent walks stay O(1). *)
let freeze t on =
  if on && not t.frozen then
    (* full path compression: point every id directly at its root *)
    for x = 0 to t.size - 1 do
      t.parent.(x) <- find t x
    done;
  t.frozen <- on

(** [union t a b] merges the sets of [a] and [b] and returns the canonical
    representative of the merged set. *)
let union t a b =
  if t.frozen then invalid_arg "Union_find.union: structure is frozen";
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

(** [same t a b] is true iff [a] and [b] are in the same set. *)
let same t a b = find t a = find t b

(** [is_canonical t x] is true iff [x] is the representative of its set. *)
let is_canonical t x = find t x = x

(** [fresh] guard: allocating while frozen would race with readers. *)
let fresh t = if t.frozen then invalid_arg "Union_find.fresh: structure is frozen" else fresh t

(** Deep copy (for [push]/[pop] snapshots). *)
let copy t =
  {
    parent = Array.copy t.parent;
    rank = Array.copy t.rank;
    size = t.size;
    frozen = false;
  }
