(** Abstract syntax of the Egglog command language (the subset used by the
    DialEgg paper, plus a few conveniences).

    Supported commands:
    {ul
    {- [(sort S)] and [(sort S (Vec T))] — declare sorts;}
    {- [(datatype S variants...)] — sort plus constructors, each with an
       optional [:cost];}
    {- [(function f (args...) ret :cost n :merge e)] — functions;}
    {- [(relation r (args...))] — function returning [unit];}
    {- [(let x e)] — global binding;}
    {- [(rewrite lhs rhs :when (facts...))] and [(birewrite ...)];}
    {- [(rule (facts...) (actions...))];}
    {- [(union a b)], [(set (f args) v)], [(unstable-cost e c)], [(delete (f args))] — actions,
       also usable at top level;}
    {- [(ruleset name)] — declare a ruleset; rules join one with
       [:ruleset]; [(run n name)] runs only that ruleset;}
    {- [(run n)] — run the default ruleset for at most [n] iterations;}
    {- [(extract e)] — extract the lowest-cost term of [e]'s class;}
    {- [(check facts...)] — assert that facts are satisfiable;}
    {- [(push)] / [(pop)] — snapshot / restore the entire engine state.}} *)

type lit =
  | L_i64 of int64
  | L_f64 of float
  | L_string of string
  | L_bool of bool
  | L_unit

type expr =
  | Var of string  (** [?x] pattern variable, or a let-bound name in expression position *)
  | Wildcard  (** [?] or [_]: matches anything, binds nothing *)
  | Lit of lit
  | Call of string * expr list  (** constructor, table or primitive application *)

type fact =
  | F_eq of expr list  (** [(= e1 e2 ...)]: all exprs evaluate/match to the same value *)
  | F_expr of expr  (** pattern to match, or boolean guard *)

type action =
  | A_let of string * expr  (** rule-local binding *)
  | A_union of expr * expr
  | A_set of expr * expr  (** [(set (f args) value)] *)
  | A_expr of expr  (** evaluate for effect: inserts terms into the e-graph *)
  | A_cost of expr * expr  (** [(unstable-cost enode cost)] — the paper's extension *)
  | A_delete of expr  (** [(delete (f args))] *)
  | A_panic of string

type variant = { v_name : string; v_args : string list; v_cost : int option }

type func_decl = {
  f_name : string;
  f_args : string list;  (** argument sort names *)
  f_ret : string;  (** return sort name *)
  f_cost : int option;  (** extraction cost of this constructor *)
  f_merge : expr option;  (** merge expression using [old] and [new] *)
  f_unextractable : bool;
}

type command =
  | C_sort of string * (string * string list) option
      (** [(sort S)] or [(sort S (Container args))] *)
  | C_datatype of string * variant list
  | C_function of func_decl
  | C_relation of string * string list
  | C_let of string * expr
  | C_ruleset of string  (** declare a named ruleset *)
  | C_rewrite of {
      lhs : expr;
      rhs : expr;
      conds : fact list;
      bidirectional : bool;
      ruleset : string option;
    }
  | C_rule of {
      name : string option;
      facts : fact list;
      actions : action list;
      ruleset : string option;
    }
  | C_action of action
  | C_run of int * string option  (** iteration limit, optional ruleset *)
  | C_extract of expr * int  (** expression, number of variants (normally 1) *)
  | C_check of fact list
  | C_print_function of string * int
  | C_print_stats
  | C_push
  | C_pop

(** {1 Pretty-printing back to concrete syntax} *)

val sexp_of_expr : expr -> Sexp.t
val sexp_of_fact : fact -> Sexp.t
val sexp_of_action : action -> Sexp.t
val sexp_of_command : command -> Sexp.t

val pp_expr : Format.formatter -> expr -> unit
val pp_fact : Format.formatter -> fact -> unit
val pp_action : Format.formatter -> action -> unit

(** Free pattern variables of an expression, left to right, without dups. *)
val expr_vars : expr -> string list
