(** Flat-arena storage for e-graph function tables: values encoded as int
    codes (e-class [n] ↦ even [2n], pooled primitive [p] ↦ odd [2p+1]),
    rows as [arity+1] consecutive ints in one flat array, stamped
    monotonically so seminaive deltas are suffix scans, with congruence
    lookups through one open-addressing int-keyed hash. *)

(** {1 Value pool} *)

type pool

val create_pool : unit -> pool

(** When on, {!encode} takes the pool's mutex around interning — required
    while several domains search in parallel. *)
val set_threadsafe : pool -> bool -> unit

(** Code of a value (the caller canonicalizes first). *)
val encode : pool -> Value.t -> int

(** Value of a code. *)
val decode : pool -> int -> Value.t

val is_class_code : int -> bool
val code_of_class : int -> int

(** Class id of an even code (undefined on odd codes). *)
val class_of_code : int -> int

(** Is the code canonical under the union-find? *)
val code_canonical : Union_find.t -> pool -> int -> bool

(** Canonicalize a code (e-class codes via the union-find; pooled vectors
    embedding e-classes are re-interned). *)
val canon_code : Union_find.t -> pool -> int -> int

val pool_memory_words : pool -> int

(** {1 Tables} *)

type table

val create : arity:int -> table

(** Rows appended so far, including dead ones. *)
val n_rows : table -> int

(** Live rows. *)
val n_live : table -> int

(** Dead rows not yet dropped by {!compact}. *)
val n_dead : table -> int

(** Bumped whenever row numbers change ({!compact}); invalidates any
    external index built over row indices. *)
val version : table -> int

(** The last compaction's old-row -> new-row map (dead rows map to -1),
    when it translates exactly from [from_version] to the current
    numbering; [None] when the index is too stale.  Compaction preserves
    order, so remapped ascending row vectors stay ascending. *)
val remap_from : table -> from_version:int -> int array option

val is_dead : table -> int -> bool
val stamp : table -> int -> int
val out_code : table -> int -> int
val arg_code : table -> int -> int -> int

(** Code in column [c] of row [r]; column [arity] is the output. *)
val col_code : table -> int -> int -> int

(** Live row index for the key, or -1. *)
val find : table -> int array -> int

(** Append a live row ([key] is copied).  The key must not be live in the
    table and [stamp] must exceed every stamp present. *)
val append : table -> int array -> int -> int -> int

(** Kill row [r] and append a fresh copy with the given output code and
    stamp; returns the new row index. *)
val rewrite : table -> int -> int -> int -> int

(** Remove the live row with this key; returns whether one was removed. *)
val remove : table -> int array -> bool

(** Mark row [r] dead (its hash slot is tombstoned). *)
val kill : table -> int -> unit

(** First row index with stamp strictly greater than [since] (binary
    search; dead rows included — skip them while scanning). *)
val delta_start : table -> since:int -> int

(** Iterate live row indices in append (= stamp) order. *)
val iter_live : table -> (int -> unit) -> unit

(** Drop dead rows in place preserving order, rebuild the hash, bump
    {!version}.  No-op when nothing is dead. *)
val compact : table -> unit

val copy : table -> table
val memory_words : table -> int
