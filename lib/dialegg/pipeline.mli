(** The end-to-end DialEgg pipeline (paper Fig. 2):
    MLIR → eggify → saturate → extract → de-eggify → MLIR, per function,
    with per-phase timings (the paper's Table 2 columns). *)

exception Error of string

(** Degradation policy when a function's optimization hits a hard
    resource limit (node / time / memory) or a fault:

    - [Fail] (default): raise {!Error} — the whole module aborts;
    - [Best_effort]: keep the best result available (truncated-e-graph
      extraction after a limit, the last anytime checkpoint after an
      extraction failure, the untouched original after a stage fault) and
      continue with the remaining functions;
    - [Identity]: any hard limit or fault restores the original function
      body verbatim and continues.

    Running out of [max_iterations] is the scheduling bound, not a hard
    limit: it degrades nothing under any policy. *)
type on_limit = Fail | Best_effort | Identity

val on_limit_name : on_limit -> string
val on_limit_of_string : string -> on_limit option

type config = {
  rules : string;  (** Egglog source: user declarations, rules, cost models *)
  schedule : (string option * int) list option;
      (** staged saturation: (ruleset, iteration limit) pairs run in order;
          [None] runs the default ruleset for [max_iterations] *)
  max_iterations : int;
  max_nodes : int;  (** e-graph node budget *)
  timeout : float option;  (** per-function saturation wall-clock budget *)
  run_dce : bool;  (** clean dead ops after de-eggification *)
  verify : bool;  (** verify the rewritten module *)
  validate : bool;
      (** translation validation (see {!Validate}, default on): verify the
          input module before eggify, snapshot its abstract facts, and
          after extraction check types / shapes / result intervals still
          refine them; error diagnostics raise {!Error}
          ([dialegg-opt --no-validate] turns this off) *)
  lint : bool;
      (** statically check the rules (see {!Lint}) before saturation:
          lint errors raise {!Error}, warnings go to stderr *)
  vet : bool;
      (** statically verify the rules (see {!Vet}, default on) before
          saturation: abstract-interpretation soundness errors raise
          {!Error}, expansion/overlap warnings go to stderr.  The verdict
          is memoized by ruleset content hash, so a module or batch run
          vets its ruleset once ([dialegg-opt --no-vet] turns this off) *)
  audit : bool;
      (** cross-layer encoding audit (see {!Audit}, default on) before
          saturation: contract errors between the ruleset, the MLIR
          dialect registry and the extraction cost model raise {!Error},
          coverage warnings go to stderr.  The verdict is memoized by
          (ruleset, registry fingerprint) content hash
          ([dialegg-opt --no-audit] turns this off) *)
  vet_cache_dir : string option;
      (** on-disk vet/audit cache override (default [$DIALEGG_VET_CACHE]
          or the system temporary directory; [DIALEGG_VET_CACHE=""]
          disables) *)
  engine : Egglog.Egraph.engine;
      (** e-graph storage engine: [Arena] (flat int arrays + generic join,
          default) or [Legacy] (boxed hashtables) — [dialegg-opt --engine] *)
  jobs : int;
      (** rule-search parallelism: due rules are partitioned across this
          many OCaml domains each iteration ([1] = sequential; results
          merge in registration order, so output is identical) — [-j] *)
  seminaive : bool;
      (** seminaive e-matching: rules scan only rows created since they
          last fired (default); off = full re-matching every iteration *)
  backoff : bool;  (** egg-style backoff rule scheduler (default on) *)
  match_limit : int;  (** scheduler: base per-rule match budget *)
  ban_length : int;  (** scheduler: base ban duration in iterations *)
  max_memory_mb : float option;
      (** approximate e-graph memory budget (see {!Egglog.Limits}) *)
  on_limit : on_limit;  (** degradation policy (default [Fail]) *)
  checkpoint_every : int;
      (** anytime-checkpoint cadence in saturation iterations (0 = off;
          only used under non-[Fail] policies) *)
  inject : Faults.t option;
      (** deterministic fault injection at stage boundaries (tests /
          [dialegg-opt --inject-fault]); the [DIALEGG_INJECT_FAULT] env
          var also arms one *)
}

val default_config : config

(** Run the {!Vet} fail-fast tier over [config.rules]: prints warnings to
    stderr and returns the memoized (report, cache status); [None] when
    [config.vet] is off or there are no rules.
    @raise Error on any error-severity vet diagnostic. *)
val vet_rules_exn : config -> (Vet.report * Vet.cache_status) option

(** Run the {!Audit} fail-fast tier over [config.rules]: prints warnings
    to stderr and returns the memoized (report, cache status); [None]
    when [config.audit] is off or there are no rules.
    @raise Error on any error-severity audit diagnostic. *)
val audit_rules_exn : config -> (Audit.report * Audit.cache_status) option

(** Pre-warm [config] for a long-lived serving or batch process: run the
    lint / vet / audit fail-fast tiers once (memoizing their verdicts),
    force the egglog prelude parse, and return the config with those
    per-run tiers disabled — so every later
    {!optimize_func_report} / {!optimize_source} under the returned
    config skips straight to saturation while producing output
    byte-identical to a cold run.
    @raise Error if the rules fail any static tier. *)
val prewarmed : config -> config

type timings = {
  t_mlir_to_egg : float;  (** prelude + rules load + eggify *)
  t_egglog : float;  (** total engine time: saturation + extraction *)
  t_saturate : float;  (** the saturation part of [t_egglog] *)
  t_search : float;  (** e-matching part of [t_saturate] *)
  t_apply : float;  (** action-application part of [t_saturate] *)
  t_rebuild : float;  (** congruence-rebuild part of [t_saturate] *)
  t_egg_to_mlir : float;  (** de-eggification (+DCE) *)
  iterations : int;
  matches : int;
  stop : Egglog.Interp.stop_reason;
  n_nodes : int;  (** e-graph size after saturation *)
  peak_nodes : int;  (** largest e-graph size seen while saturating *)
  n_classes : int;
  extracted_cost : int;  (** tree cost of the extraction *)
  extracted_dag_cost : int;  (** cost with shared sub-terms counted once *)
  rule_stats : Egglog.Interp.rule_stat list;
      (** per-rule search/apply counts and times ([dialegg-opt --stats]);
          merged by rule name when timings are summed *)
}

val zero_timings : timings
val add_timings : timings -> timings -> timings
val pp_timings : Format.formatter -> timings -> unit

(** Per-rule statistics table, one row per rule, busiest first. *)
val pp_rule_stats : Format.formatter -> Egglog.Interp.rule_stat list -> unit

(** {1 Per-function outcomes and fault isolation} *)

(** What happened to one function. *)
type outcome =
  | Optimized  (** extraction replaced the body *)
  | Degraded of Faults.stage * Egglog.Diag.t
      (** a stage failed; the original body was kept (identity fallback) *)

type func_report = {
  fr_name : string;
  fr_outcome : outcome;
  fr_stop : Egglog.Interp.stop_reason;  (** why saturation stopped *)
  fr_timings : timings;
}

type report = {
  r_funcs : func_report list;
  r_timings : timings;
  r_vet : (Vet.report * Vet.cache_status) option;
      (** the ruleset's static verification verdict and whether it was
          recomputed or served from the memo ([None] when vetting is off
          or there are no rules) *)
  r_audit : (Audit.report * Audit.cache_status) option;
      (** the encoding audit's verdict and cache provenance ([None] when
          the audit is off or there are no rules) *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** One line per function: outcome, stop reason, iterations, peak size. *)
val pp_report : Format.formatter -> report -> unit

(** No degradations and no hard stops (saturated or iteration-bounded
    only). *)
val report_clean : report -> bool

(** Optimize one [func.func] in place and report what happened.  Under
    [on_limit = Fail] failures raise {!Error}; under the other policies
    every stage runs inside a fault handler and failures degrade to the
    original function body. *)
val optimize_func_report :
  ?config:config -> ?hooks:Translate.hooks -> Mlir.Ir.op -> func_report

(** Optimize one [func.func] in place. *)
val optimize_func : ?config:config -> ?hooks:Translate.hooks -> Mlir.Ir.op -> timings

(** Optimize every function of a module in place (or only those named in
    [only]), with per-function fault isolation under non-[Fail]
    policies. *)
val optimize_module_report :
  ?config:config -> ?hooks:Translate.hooks -> ?only:string list -> Mlir.Ir.op -> report

(** Optimize every function of a module in place (or only those named in
    [only]); summed timings. *)
val optimize_module :
  ?config:config -> ?hooks:Translate.hooks -> ?only:string list -> Mlir.Ir.op -> timings

(** Optimize MLIR source text end to end — parse, verify the input,
    optimize, print — the exact sequence the sequential [dialegg-opt] CLI
    performs, so callers (notably batch-driver workers) produce
    byte-identical output to a sequential run under the same [config].
    @raise Mlir.Parser.Syntax_error on parse failure
    @raise Error when the input fails verification, or per [config]'s
    [on_limit] policy. *)
val optimize_source :
  ?config:config ->
  ?hooks:Translate.hooks ->
  ?only:string list ->
  ?file:string ->
  string ->
  string * report

(** Parse and re-print [src] unchanged: the output a fully-degraded
    [Identity] run would produce.  The batch driver's last-resort
    fallback when a job's retry budget is exhausted. *)
val identity_source : string -> string
