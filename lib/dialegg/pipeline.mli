(** The end-to-end DialEgg pipeline (paper Fig. 2):
    MLIR → eggify → saturate → extract → de-eggify → MLIR, per function,
    with per-phase timings (the paper's Table 2 columns). *)

exception Error of string

type config = {
  rules : string;  (** Egglog source: user declarations, rules, cost models *)
  schedule : (string option * int) list option;
      (** staged saturation: (ruleset, iteration limit) pairs run in order;
          [None] runs the default ruleset for [max_iterations] *)
  max_iterations : int;
  max_nodes : int;  (** e-graph node budget *)
  timeout : float option;  (** per-function saturation wall-clock budget *)
  run_dce : bool;  (** clean dead ops after de-eggification *)
  verify : bool;  (** verify the rewritten module *)
  validate : bool;
      (** translation validation (see {!Validate}, default on): verify the
          input module before eggify, snapshot its abstract facts, and
          after extraction check types / shapes / result intervals still
          refine them; error diagnostics raise {!Error}
          ([dialegg-opt --no-validate] turns this off) *)
  lint : bool;
      (** statically check the rules (see {!Lint}) before saturation:
          lint errors raise {!Error}, warnings go to stderr *)
  seminaive : bool;
      (** seminaive e-matching: rules scan only rows created since they
          last fired (default); off = full re-matching every iteration *)
  backoff : bool;  (** egg-style backoff rule scheduler (default on) *)
  match_limit : int;  (** scheduler: base per-rule match budget *)
  ban_length : int;  (** scheduler: base ban duration in iterations *)
}

val default_config : config

type timings = {
  t_mlir_to_egg : float;  (** prelude + rules load + eggify *)
  t_egglog : float;  (** total engine time: saturation + extraction *)
  t_saturate : float;  (** the saturation part of [t_egglog] *)
  t_search : float;  (** e-matching part of [t_saturate] *)
  t_apply : float;  (** action-application part of [t_saturate] *)
  t_egg_to_mlir : float;  (** de-eggification (+DCE) *)
  iterations : int;
  matches : int;
  stop : Egglog.Interp.stop_reason;
  n_nodes : int;  (** e-graph size after saturation *)
  n_classes : int;
  extracted_cost : int;  (** tree cost of the extraction *)
  extracted_dag_cost : int;  (** cost with shared sub-terms counted once *)
  rule_stats : Egglog.Interp.rule_stat list;
      (** per-rule search/apply counts and times ([dialegg-opt --stats]);
          merged by rule name when timings are summed *)
}

val zero_timings : timings
val add_timings : timings -> timings -> timings
val pp_timings : Format.formatter -> timings -> unit

(** Per-rule statistics table, one row per rule, busiest first. *)
val pp_rule_stats : Format.formatter -> Egglog.Interp.rule_stat list -> unit

(** Optimize one [func.func] in place. *)
val optimize_func : ?config:config -> ?hooks:Translate.hooks -> Mlir.Ir.op -> timings

(** Optimize every function of a module in place (or only those named in
    [only]); summed timings. *)
val optimize_module :
  ?config:config -> ?hooks:Translate.hooks -> ?only:string list -> Mlir.Ir.op -> timings
