(** Static ruleset verifier ([dialegg-vet]).

    Analyzes a ruleset once, before any saturation runs, and reports
    {!Egglog.Diag} diagnostics from three passes:

    - {b Soundness}: each directed rule's two sides are evaluated
      symbolically under the {!Mlir.Dataflow} interval, shape and
      constant domains, with pattern variables at the weakest fact and
      shared between the sides.  If the right-hand side's fact does not
      refine the left-hand side's, the rule can change observable
      behaviour: errors [rule-range-widened], [rule-shape-changed],
      [rule-type-changed].
    - {b Termination/expansion}: rules are classified by term size and a
      rule-dependency graph (RHS-constructed terms unified against LHS
      patterns) is searched for cycles through non-contracting rules:
      warning [expansive-cycle].
    - {b Overlap/shadowing}: pairwise LHS comparison of unconditional
      rewrites: warnings [rule-shadowed] (duplicate or subsumed rule)
      and [rule-overlap] (same LHS, different RHS).

    Guards are ignored by the soundness pass (they only narrow the LHS),
    so a rule that is sound only because of its guard may be flagged;
    see DESIGN.md.  Reports are memoized by a content hash of the
    ruleset source, in-process and on disk ({!vet_cached}). *)

(** How a directed rule changes term size. *)
type classification = Contracting | Size_preserving | Expanding

val classification_name : classification -> string

(** Per-rule verdict, as printed by [--stats] and [dialegg-vet -v]. *)
type rule_info = {
  vr_name : string;  (** the rule's [:name], or a synthesized [lhs=>rhs@line] label *)
  vr_line : int;
  vr_class : classification;
  vr_interval : (Mlir.Dataflow.Interval.t * Mlir.Dataflow.Interval.t) option;
      (** symbolic (lhs, rhs) facts; [None] when the rule was not analyzable *)
  vr_shape : (Mlir.Dataflow.Shape.t * Mlir.Dataflow.Shape.t) option;
  vr_const : (Mlir.Dataflow.Constness.t * Mlir.Dataflow.Constness.t) option;
  vr_sound : bool;
}

type report = {
  v_hash : string;  (** content hash of the ruleset source, the cache key *)
  v_file : string option;
  v_rules : rule_info list;
  v_diags : Egglog.Diag.t list;
}

(** Content hash used as the memoization key (hex MD5 of the source
    prefixed with a format-version tag). *)
val hash_source : string -> string

(** Run all three passes on a ruleset source.  Never raises: a program
    the sort-checker rejects yields its check errors as the report's
    diagnostics with no per-rule results. *)
val vet : ?file:string -> string -> report

(** Where a {!vet_cached} report came from. *)
type cache_status = Hit_memory | Hit_disk | Computed

val cache_status_name : cache_status -> string

(** Like {!vet}, memoized by {!hash_source}: first in an in-process
    table, then in an on-disk cache directory ([cache_dir], defaulting
    to [$DIALEGG_VET_CACHE] or [<tmpdir>/dialegg-vet-cache]; setting
    [DIALEGG_VET_CACHE=""] disables the disk cache).  Disk writes are
    atomic (temp file + rename) and unreadable or stale entries are
    treated as misses, so a corrupt cache can never fail a build. *)
val vet_cached : ?cache_dir:string -> ?file:string -> string -> report * cache_status

(** One line per rule: name, classification, soundness verdict, and the
    symbolic interval pair when it changed. *)
val pp_classification : Format.formatter -> report -> unit

(** One-line totals: rule counts per class, errors, warnings. *)
val pp_summary : Format.formatter -> report -> unit

(** {2 Rule-model internals}

    Shared with the cross-layer encoding auditor ({!Audit}), which
    analyzes the same directed-rule decomposition against the MLIR
    dialect registry. *)

(** What one argument sort of an op constructor encodes, per {!Sigs}'s
    convention. *)
type arg_kind = K_operand | K_attr | K_region | K_type | K_other

val kind_of_sort : string -> arg_kind

(** Argument sorts of an MLIR op constructor ([fs_ret = Op], not the
    [Value] leaf and not a primitive), or [None]. *)
val op_constructor : Egglog.Check.env -> string -> string list option

(** One direction of a rewrite, or one [union] action of a [rule] with
    its let/fact bindings substituted away. *)
type directed = {
  d_name : string;
  d_span : Egglog.Sexp.span;
  d_lhs : Egglog.Ast.expr;
  d_rhs : Egglog.Ast.expr;
  d_conds : Egglog.Ast.expr list;
      (** additional LHS-side patterns (guards, other facts) *)
  d_pure : bool;  (** an unconditional rewrite — eligible for shadowing *)
}

val directed_rules :
  (Egglog.Ast.command * Egglog.Sexp.located) list -> directed list

(** The cache directory [$DIALEGG_VET_CACHE] selects ([None] = disk
    cache disabled).  The audit cache lives in the same directory with a
    different file extension and format-version magic. *)
val default_cache_dir : unit -> string option
