(** Dialect-aware linting of DialEgg rule files: the generic Egglog
    sort-checker seeded with the {!Prelude} declarations, plus lints that
    know how the eggifier and extractor behave ([bad-op-constructor],
    [dead-rule], [op-no-cost], [unstable-cost-unbound],
    [expansion-no-cost] — see [lint.ml] for their meanings). *)

(** A fresh checking environment preloaded with the DialEgg prelude. *)
val fresh_env : unit -> Egglog.Check.env

(** Mirror of the canonical parameter-order enforcement in
    {!Sigs.sig_of_function}, over declared sort names: [None] when the
    op constructor is well-formed, [Some msg] otherwise.  Shared with
    the encoding auditor. *)
val op_shape_error : string -> string list -> string option

(** Can the eggifier or a translation hook ever create a term with this
    head?  ([Op]-returning: [Value] or a well-formed op constructor;
    [Type]/[Attr]/[AttrPair]: synthesized by hooks; unknown functions:
    [true], the sort-checker already errored.) *)
val emittable : Egglog.Check.env -> string -> bool

(** Is this function declared by the DialEgg prelude? *)
val prelude_func : string -> bool

(** Lint a rules program (user declarations + rewrites).  Never raises:
    unparsable input becomes [parse-error] diagnostics. *)
val lint_rules : ?file:string -> string -> Egglog.Diag.t list

(** Lint the contents of a [.egg] file; IO failures become an [io-error]
    diagnostic. *)
val lint_file : string -> Egglog.Diag.t list
