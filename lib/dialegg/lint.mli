(** Dialect-aware linting of DialEgg rule files: the generic Egglog
    sort-checker seeded with the {!Prelude} declarations, plus lints that
    know how the eggifier and extractor behave ([bad-op-constructor],
    [dead-rule], [op-no-cost], [unstable-cost-unbound],
    [expansion-no-cost] — see [lint.ml] for their meanings). *)

(** A fresh checking environment preloaded with the DialEgg prelude. *)
val fresh_env : unit -> Egglog.Check.env

(** Lint a rules program (user declarations + rewrites).  Never raises:
    unparsable input becomes [parse-error] diagnostics. *)
val lint_rules : ?file:string -> string -> Egglog.Diag.t list

(** Lint the contents of a [.egg] file; IO failures become an [io-error]
    diagnostic. *)
val lint_file : string -> Egglog.Diag.t list
